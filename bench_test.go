// Package repro's root benchmarks regenerate every table and figure of the
// paper at a reduced dataset scale (benchScale); cmd/experiments runs the
// same code at arbitrary scales. One benchmark per experiment, plus
// ablation benches for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// benchScale keeps a full -bench=. sweep in the minutes range while
// preserving every experiment's shape; cmd/experiments -scale 1.0 runs the
// paper-sized versions.
const benchScale = 0.1

func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: benchScale,
		Seed:  1,
		// Small Tax subsets keep the Fig. 7b/8b sweeps bounded in the
		// bench harness; cmd/experiments runs the paper's 50k-200k sweep.
		TaxSizes: []int{600, 1200},
	}
}

// reportF1 attaches a custom F1 metric to the benchmark output.
func reportF1(b *testing.B, name string, f1 float64) {
	b.ReportMetric(f1, name+"-F1")
}

func BenchmarkTable3MethodComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Wins("ZeroED")), "zeroed-wins")
	}
}

func BenchmarkTable4Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var full float64
		for _, d := range res.Datasets {
			full += res.Cells["ZeroED"][d].F1
		}
		b.ReportMetric(full/float64(len(res.Datasets)), "full-mean-F1")
	}
}

func BenchmarkTable5LLMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanF1("Qwen2.5-72b"), "qwen72-mean-F1")
		b.ReportMetric(res.MeanF1("GPT-4o-mini"), "gpt4omini-mean-F1")
	}
}

func BenchmarkTable6Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var km float64
		for _, d := range res.Datasets {
			km += res.Cells["k-Means"][d].F1
		}
		b.ReportMetric(km/float64(len(res.Datasets)), "kmeans-mean-F1")
	}
}

func BenchmarkFig6RahaActiveLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var tail float64
		for _, d := range res.Datasets {
			c := res.F1[d]
			tail += c[len(c)-1]
		}
		b.ReportMetric(tail/float64(len(res.Datasets)), "raha45-mean-F1")
	}
}

func BenchmarkFig7Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if ts := res.PerSize["ZeroED"]; len(ts) > 0 {
			b.ReportMetric(ts[len(ts)-1].Seconds(), "zeroed-taxmax-sec")
		}
	}
}

func BenchmarkFig8TokenCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.ReductionAtMax(), "token-reduction-%")
	}
}

func BenchmarkFig9LabelRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var at5 float64
		for _, d := range res.Datasets {
			ms := res.Metrics[d]
			at5 += ms[len(ms)-1].F1
		}
		b.ReportMetric(at5/float64(len(res.Datasets)), "rate5pct-mean-F1")
	}
}

func BenchmarkFig10CorrAttrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var atK2 float64
		for _, d := range res.Datasets {
			atK2 += res.Metrics[d][1].F1 // k=2, the paper's default
		}
		b.ReportMetric(atK2/float64(len(res.Datasets)), "k2-mean-F1")
	}
}

func BenchmarkFig11ErrorTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.F1["ZeroED"]["ME"], "zeroed-mixed-F1")
	}
}

// ---- Ablation benches beyond the paper's Table IV ----

// benchBench generates the shared small benchmark for config ablations.
func ablationBench() *datasets.Bench { return datasets.Hospital(400, 9) }

func runConfig(b *testing.B, cfg zeroed.Config, bench *datasets.Bench) float64 {
	b.Helper()
	res, err := zeroed.New(cfg).Detect(bench.Dirty)
	if err != nil {
		b.Fatal(err)
	}
	m, err := eval.ComputeAgainst(res.Pred, bench.Dirty, bench.Clean)
	if err != nil {
		b.Fatal(err)
	}
	return m.F1
}

func BenchmarkAblationPropagation(b *testing.B) {
	bench := ablationBench()
	for i := 0; i < b.N; i++ {
		on := runConfig(b, zeroed.Config{Seed: 9}, bench)
		off := runConfig(b, zeroed.Config{Seed: 9, DisablePropagation: true}, bench)
		reportF1(b, "with-propagation", on)
		reportF1(b, "without-propagation", off)
	}
}

func BenchmarkAblationEmbeddingDim(b *testing.B) {
	bench := ablationBench()
	for i := 0; i < b.N; i++ {
		reportF1(b, "dim8", runConfig(b, zeroed.Config{Seed: 9, EmbedDim: 8}, bench))
		reportF1(b, "dim32", runConfig(b, zeroed.Config{Seed: 9, EmbedDim: 32}, bench))
	}
}

func BenchmarkAblationAugmentation(b *testing.B) {
	bench := ablationBench()
	for i := 0; i < b.N; i++ {
		reportF1(b, "augment300", runConfig(b, zeroed.Config{Seed: 9, AugmentPerAttr: 300}, bench))
		reportF1(b, "augment10", runConfig(b, zeroed.Config{Seed: 9, AugmentPerAttr: 10}, bench))
	}
}

func BenchmarkAblationMLPWidth(b *testing.B) {
	bench := ablationBench()
	for i := 0; i < b.N; i++ {
		narrow := zeroed.Config{Seed: 9}
		narrow.MLP.Hidden1, narrow.MLP.Hidden2 = 16, 8
		narrow.MLP.Epochs = 12
		reportF1(b, "mlp16x8", runConfig(b, narrow, bench))
		reportF1(b, "mlp64x32", runConfig(b, zeroed.Config{Seed: 9}, bench))
	}
}

// ---- Scaling benches: the sharded, fully-parallel detection engine ----

// BenchmarkDetectSharded compares serial detection (one worker, one scoring
// shard) against the sharded parallel engine (GOMAXPROCS workers, auto
// shards) on the scaled Tax workload of the Fig. 7b/8b sweeps. Both modes
// produce bit-identical results (pinned by TestWorkerAndShardInvariance);
// only scheduling differs, so the time/op ratio is the engine's speedup.
// On a single-CPU machine the two converge; near-linear scaling needs
// multiple cores.
func BenchmarkDetectSharded(b *testing.B) {
	bench := datasets.Tax(3000, 1)
	run := func(cfg zeroed.Config) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := zeroed.New(cfg).Detect(bench.Dirty); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(zeroed.Config{Seed: 1, Workers: 1, Shards: 1}))
	b.Run("sharded", run(zeroed.Config{Seed: 1}))
}

// BenchmarkDetectBatch compares detecting several Tax datasets one after
// another against multiplexing them over one shared worker pool. Per-
// dataset results are bit-identical (pinned by TestDetectBatchMatchesDetect).
func BenchmarkDetectBatch(b *testing.B) {
	var ds []*table.Dataset
	for seed := int64(1); seed <= 4; seed++ {
		ds = append(ds, datasets.Tax(1200, seed).Dirty)
	}
	// The sequential arm uses default Workers too, so the ratio isolates
	// what multiplexing datasets over one pool buys — not intra-run
	// parallelism.
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det := zeroed.New(zeroed.Config{Seed: 1})
			for _, d := range ds {
				if _, err := det.Detect(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := zeroed.New(zeroed.Config{Seed: 1}).DetectBatch(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectShardsIndependent measures the independent-model sharding
// mode (DetectShards): the full pipeline per row shard, merged verdicts.
func BenchmarkDetectShardsIndependent(b *testing.B) {
	bench := datasets.Tax(3000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zeroed.New(zeroed.Config{Seed: 1}).DetectShards(bench.Dirty, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZeroEDPipeline measures one end-to-end detection run, the
// number most users care about.
func BenchmarkZeroEDPipeline(b *testing.B) {
	bench := datasets.Hospital(500, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zeroed.New(zeroed.Config{Seed: 3}).Detect(bench.Dirty); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZeroEDPipelineDedupOff is the same run with the scoring dedup
// cache disabled; the delta vs BenchmarkZeroEDPipeline isolates what
// dedup-by-value-ID buys (results are bit-identical either way, pinned by
// TestScoreDedupEquivalence).
func BenchmarkZeroEDPipelineDedupOff(b *testing.B) {
	bench := datasets.Hospital(500, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zeroed.New(zeroed.Config{Seed: 3, DisableScoreDedup: true}).Detect(bench.Dirty); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMEDPipeline measures the per-tuple baseline for comparison.
func BenchmarkFMEDPipeline(b *testing.B) {
	bench := datasets.Hospital(500, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmed := baselines.NewFMED(llm.NewClient(llm.Qwen72B), bench.KB)
		if _, err := fmed.Detect(bench.Dirty); err != nil {
			b.Fatal(err)
		}
	}
}
