#!/usr/bin/env bash
# Regenerate the checked-in PGO profile (default.pgo) from the fit-only
# benchmark arm — the scaled Tax fit that dominates the repo's wall-clock.
# Run from anywhere; writes default.pgo at the repo root and prints the
# hottest functions so a stale or empty profile is obvious at a glance.
#
# CI's pgo job builds every package with -pgo=default.pgo and fails if the
# profile no longer parses or no longer names the current hot kernels, so
# re-run this script whenever the fit path's hot functions move.
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${1:-2}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go run ./cmd/benchjson -iters "$ITERS" -run 'fit-only' \
  -cpuprofile default.pgo -out "$OUT"

# Sanity: the profile must parse and must still mention the training
# kernel that PGO exists to speed up.
go tool pprof -top -nodecount=8 default.pgo
go tool pprof -top -nodecount=200 default.pgo | grep -q 'colMajorAccum' \
  || { echo "fitprofile: profile looks stale — colMajorAccum not among samples"; exit 1; }

echo "fitprofile: wrote default.pgo"
