#!/usr/bin/env bash
# End-to-end smoke for the detection service: build zeroedd, start it,
# submit a small CSV job, poll it to completion, and check the result and
# metrics endpoints; resubmit the same rows as NDJSON and assert identical
# verdicts; then fit a model over the socket, score fresh rows
# against it, and assert the scored verdicts match a direct
# `cmd/zeroed -model-in` run on the persisted artifact; round-trip the
# served repair endpoint against `cmd/zeroed -model-in -repair
# -repair-log` (change logs must match byte for byte); finally stream
# chunked rows against a registered model, trip a drift-triggered refit
# with a novel-value burst, and assert the model hot-swapped to a new
# version (old artifact retained) with zero non-200 responses. Along the
# way it checks the observability surface: X-Request-ID echo on responses,
# error envelopes, and JSON log lines; ?trace=1 span trees and
# GET /v1/jobs/{id}/trace; per-route RED series on /metrics; /readyz; and
# the /debug/traces ring on the debug listener. Exercises the same paths
# CI pins with httptest, but against the real binaries over a real socket.
set -euo pipefail

ADDR="127.0.0.1:18080"
DEBUG_ADDR="127.0.0.1:18081"
BASE="http://$ADDR"
DEBUG="http://$DEBUG_ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/zeroedd"
CLI="$WORK/zeroed"
MODELDIR="$WORK/models"
LOG="$WORK/zeroedd.log"

go build -o "$BIN" ./cmd/zeroedd
go build -o "$CLI" ./cmd/zeroed
"$BIN" -addr "$ADDR" -workers 2 -model-dir "$MODELDIR" \
  -drift-threshold 0.3 -drift-min-rows 30 -stream-chunk 16 \
  -log-format json -debug-addr "$DEBUG_ADDR" -trace-slow 0s 2> "$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

# --- Request IDs: honored, echoed, and in every error envelope. ---

RID="smoke-rid-$$"
ECHOED="$(curl -fsS -D - -o /dev/null -H "X-Request-ID: $RID" "$BASE/healthz" \
  | tr -d '\r' | grep -i '^x-request-id:' | awk '{print $2}')"
[ "$ECHOED" = "$RID" ] || { echo "e2e: X-Request-ID not echoed (got '$ECHOED')"; exit 1; }
curl -s -H "X-Request-ID: $RID-err" "$BASE/v1/jobs/j-nope" \
  | grep -q "\"request_id\":\"$RID-err\"" \
  || { echo "e2e: 404 envelope missing request_id"; exit 1; }
grep -q "\"request_id\":\"$RID\"" "$LOG" \
  || { echo "e2e: JSON log missing the request-id line"; exit 1; }
echo "e2e: request-id echoed in header, envelope, and JSON log"

# Readiness: the model dir is writable, so the server reports ready.
curl -fsS "$BASE/readyz" | grep -q '"status":"ready"' \
  || { echo "e2e: readyz not ready"; exit 1; }

# Submit a small dataset.
CSV="$(mktemp)"
printf 'city,state,zip\nchicago,IL,60601\nspringfield,IL,62701\nchicago,IL,60601\nmadison,WI,53703\nchicago,XX,60601\n' > "$CSV"
ID="$(curl -fsS -X POST --data-binary @"$CSV" "$BASE/v1/jobs?seed=1&name=smoke" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "e2e: no job id in submit response"; exit 1; }
echo "e2e: submitted $ID"

# Poll to completion.
STATE=""
for _ in $(seq 1 150); do
  STATE="$(curl -fsS "$BASE/v1/jobs/$ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "e2e: job ended $STATE"; curl -fsS "$BASE/v1/jobs/$ID"; exit 1 ;;
  esac
  sleep 0.2
done
[ "$STATE" = done ] || { echo "e2e: timeout in state '$STATE'"; exit 1; }

# The result must carry verdicts for every submitted row.
curl -fsS "$BASE/v1/jobs/$ID/result" | grep -q '"pred":' || { echo "e2e: result missing pred"; exit 1; }

# Metrics must account for the finished job.
curl -fsS "$BASE/metrics" | grep -q 'zeroedd_jobs_finished_total{outcome="done"} 1' \
  || { echo "e2e: metrics missing finished job"; exit 1; }

# The finished job's trace: the submit request's span tree, adopted by the
# job, carrying the serve phases and the fit pipeline.
TRACE="$(curl -fsS "$BASE/v1/jobs/$ID/trace")"
for SPAN in queue_wait ingest detect fit.train score; do
  echo "$TRACE" | grep -q "\"name\":\"$SPAN\"" \
    || { echo "e2e: job trace missing span $SPAN"; exit 1; }
done
echo "e2e: job trace carries the serve phases and pipeline spans"

# --- Ingest formats: the same rows as NDJSON give identical verdicts. ---

# Convert the CSV to NDJSON array framing (header line first).
NDJ="$WORK/smoke.ndjson"
awk -F, '{
  printf "[";
  for (i = 1; i <= NF; i++) printf "%s\"%s\"", (i > 1 ? "," : ""), $i;
  print "]";
}' "$CSV" > "$NDJ"
NID="$(curl -fsS -X POST -H 'Content-Type: application/x-ndjson; charset=utf-8' \
  --data-binary @"$NDJ" "$BASE/v1/jobs?seed=1&name=smoke-ndjson" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$NID" ] || { echo "e2e: no job id in ndjson submit response"; exit 1; }
NSTATE=""
for _ in $(seq 1 150); do
  NSTATE="$(curl -fsS "$BASE/v1/jobs/$NID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
  case "$NSTATE" in
    done) break ;;
    failed|canceled) echo "e2e: ndjson job ended $NSTATE"; exit 1 ;;
  esac
  sleep 0.2
done
[ "$NSTATE" = done ] || { echo "e2e: ndjson job timeout in state '$NSTATE'"; exit 1; }
PRED_CSV="$(curl -fsS "$BASE/v1/jobs/$ID/result?scores=0" | sed -n 's/.*"pred":\(\[\[.*\]\]\).*/\1/p')"
PRED_NDJ="$(curl -fsS "$BASE/v1/jobs/$NID/result?scores=0" | sed -n 's/.*"pred":\(\[\[.*\]\]\).*/\1/p')"
[ -n "$PRED_CSV" ] || { echo "e2e: could not extract csv job pred"; exit 1; }
if [ "$PRED_CSV" != "$PRED_NDJ" ]; then
  echo "e2e: NDJSON job verdicts differ from the CSV job"
  exit 1
fi
echo "e2e: NDJSON job verdicts match the CSV job"

# --- Models: fit once over the socket, score forever. ---

# Fit a model from the same CSV; the response carries the ready model's id.
MID="$(curl -fsS -X POST --data-binary @"$CSV" "$BASE/v1/models?seed=1&name=smoke" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$MID" ] || { echo "e2e: no model id in fit response"; exit 1; }
echo "e2e: fitted $MID"

# Score fresh rows (one seen, one with a novel value) synchronously.
FRESH="$CSV.fresh"
printf 'city,state,zip\nchicago,IL,60601\nnew-city-unseen,ZZ,00000\n' > "$FRESH"
SCORED="$(curl -fsS -X POST --data-binary @"$FRESH" "$BASE/v1/models/$MID/score?scores=0")"
echo "$SCORED" | grep -q '"pred":' || { echo "e2e: score response missing pred"; exit 1; }

# ?trace=1 embeds the request's span tree in the synchronous envelope.
TSCORED="$(curl -fsS -X POST --data-binary @"$FRESH" "$BASE/v1/models/$MID/score?scores=0&trace=1")"
echo "$TSCORED" | grep -q '"trace":{' || { echo "e2e: ?trace=1 score has no trace"; exit 1; }
for SPAN in ingest score score.shard; do
  echo "$TSCORED" | grep -q "\"name\":\"$SPAN\"" \
    || { echo "e2e: ?trace=1 score trace missing span $SPAN"; exit 1; }
done
echo "e2e: ?trace=1 embeds the score span tree"

# The scored verdicts must match a direct cmd/zeroed -model-in run on the
# artifact the server persisted. Normalize both to a 0/1 cell string.
SRV_MASK="$(echo "$SCORED" | sed -n 's/.*"pred":\(\[\[[^]]*\]\(,\[[^]]*\]\)*\]\).*/\1/p' \
  | tr -d '[] ' | tr ',' '\n' | sed -e 's/^true$/1/' -e 's/^false$/0/' | tr -d '\n')"
"$CLI" -dirty "$FRESH" -model-in "$MODELDIR/$MID.zedm" -out "$WORK/cli_mask.csv" >/dev/null
CLI_MASK="$(tail -n +2 "$WORK/cli_mask.csv" | tr -d ',\n')"
[ -n "$SRV_MASK" ] || { echo "e2e: could not extract server mask"; exit 1; }
if [ "$SRV_MASK" != "$CLI_MASK" ]; then
  echo "e2e: server verdicts ($SRV_MASK) != cmd/zeroed -model-in verdicts ($CLI_MASK)"
  exit 1
fi
echo "e2e: model verdicts match cmd/zeroed -model-in ($SRV_MASK)"

# Model metrics must account for the fit and the two score calls (checked
# before repair, which scores internally and bumps the same counter).
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -q 'zeroedd_models_current 1' || { echo "e2e: metrics missing model gauge"; exit 1; }
echo "$METRICS" | grep -q 'zeroedd_score_seconds_count 2' || { echo "e2e: metrics missing score latency"; exit 1; }

# --- Served repair: bit-identical to the CLI detect -> repair loop. ---

# A repair input with a typo'd novel value ("chicagoo") next to a frequent
# clean one: the model flags the novel cell and the repairer must propose
# the typo fix, so the change-log equality below is exercised on a
# nonzero log.
REPCSV="$WORK/repair.csv"
{
  printf 'city,state,zip\n'
  printf 'chicago,IL,60601\nchicago,IL,60601\nchicago,IL,60601\n'
  printf 'springfield,IL,62701\nmadison,WI,53703\nchicagoo,IL,60601\n'
} > "$REPCSV"
REPAIRED="$WORK/cli_repaired.csv"
RLOG="$WORK/cli_changes.ndjson"
"$CLI" -dirty "$REPCSV" -model-in "$MODELDIR/$MID.zedm" -repair "$REPAIRED" -repair-log "$RLOG" >/dev/null
[ -f "$REPAIRED" ] || { echo "e2e: CLI wrote no repaired CSV"; exit 1; }
[ -s "$RLOG" ] || { echo "e2e: CLI repair change log is empty"; exit 1; }
SRV_REPAIR="$(curl -fsS -X POST --data-binary @"$REPCSV" "$BASE/v1/models/$MID/repair?table=0")"
echo "$SRV_REPAIR" | grep -q '"repaired":' || { echo "e2e: repair response missing repaired count"; exit 1; }
# The server's changes array, one object per line, must equal the CLI's
# change log byte for byte (same artifact, same input bytes).
SRV_CHANGES="$(echo "$SRV_REPAIR" | sed -n 's/.*"changes":\[\(.*\)\].*/\1/p' | sed 's/},{/}\n{/g')"
if [ "$SRV_CHANGES" != "$(cat "$RLOG")" ]; then
  echo "e2e: served repair change log differs from cmd/zeroed -repair-log"
  echo "  server: $SRV_CHANGES"
  echo "  cli:    $(cat "$RLOG")"
  exit 1
fi
echo "e2e: repair change log matches cmd/zeroed -repair-log ($(grep -c . "$RLOG" || true) changes)"
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -q 'zeroedd_repair_seconds_count 1' \
  || { echo "e2e: metrics missing repair latency"; exit 1; }

# --- Streaming & drift: stream chunks, trip a refit, assert the hot swap. ---
# Every curl below uses -f, so any non-200 during streaming aborts the smoke.

# Fit a streaming model on a larger CSV (repeated clean patterns plus a few
# errors, so a refit on accumulated rows has both classes to train on).
STREAMFIT="$WORK/streamfit.csv"
{
  printf 'city,state,zip\n'
  for _ in $(seq 1 12); do
    printf 'chicago,IL,60601\nspringfield,IL,62701\nmadison,WI,53703\n'
  done
  printf 'chicago,XX,60601\nmadison,WI,99999\n'
} > "$STREAMFIT"
SMID="$(curl -fsS -X POST --data-binary @"$STREAMFIT" "$BASE/v1/models?seed=2&name=streamsmoke" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$SMID" ] || { echo "e2e: no model id in stream-fit response"; exit 1; }
echo "e2e: fitted streaming model $SMID"

# Replay the fit data as a stream: one verdict line per row, version 1, no
# drift (the observed distribution equals the fit-time one exactly).
OUT1="$(curl -fsS -X POST --data-binary @"$STREAMFIT" "$BASE/v1/models/$SMID/stream?scores=0")"
ROWS=$(($(wc -l < "$STREAMFIT") - 1))
GOT1="$(echo "$OUT1" | grep -c '"pred":')"
[ "$GOT1" -eq "$ROWS" ] || { echo "e2e: stream returned $GOT1 verdicts for $ROWS rows"; exit 1; }
echo "$OUT1" | grep -q '"done":true' || { echo "e2e: stream missing summary line"; exit 1; }
echo "$OUT1" | grep -q '"event":"refit"' && { echo "e2e: fit-identical stream tripped a refit"; exit 1; }

# A burst of all-novel rows pushes the unseen-value gauge over the
# threshold: the stream must report the triggered refit.
NOVEL="$WORK/novel.csv"
{
  printf 'city,state,zip\n'
  for i in $(seq 1 30); do printf 'newtown-%s,N%s,%s00\n' "$i" "$i" "$i"; done
} > "$NOVEL"
OUT2="$(curl -fsS -X POST --data-binary @"$NOVEL" "$BASE/v1/models/$SMID/stream?scores=0")"
GOT2="$(echo "$OUT2" | grep -c '"pred":')"
[ "$GOT2" -eq 30 ] || { echo "e2e: novel stream returned $GOT2 verdicts for 30 rows"; exit 1; }
echo "$OUT2" | grep -q '"event":"refit"' || { echo "e2e: novel burst never tripped a refit"; exit 1; }

# The background refit persists a new artifact version and hot-swaps it
# into the registry; the original artifact stays on disk for rollback.
VER=""
for _ in $(seq 1 300); do
  VER="$(curl -fsS "$BASE/v1/models/$SMID" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')"
  [ -n "$VER" ] && [ "$VER" -ge 2 ] && break
  sleep 0.2
done
[ -n "$VER" ] && [ "$VER" -ge 2 ] || { echo "e2e: model never hot-swapped (version '$VER')"; exit 1; }
[ -f "$MODELDIR/$SMID.zedm" ] || { echo "e2e: v1 artifact not retained for rollback"; exit 1; }
[ -f "$MODELDIR/$SMID.v$VER.zedm" ] || { echo "e2e: v$VER artifact not persisted"; exit 1; }
echo "e2e: drift refit hot-swapped $SMID to version $VER"

# The swapped model keeps scoring over the same endpoint, and the drift
# gauges export per model.
OUT3="$(curl -fsS -X POST --data-binary @"$NOVEL" "$BASE/v1/models/$SMID/stream?scores=0")"
echo "$OUT3" | grep -q "\"version\":$VER" || { echo "e2e: post-swap stream not scored by v$VER"; exit 1; }
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -q "zeroedd_model_drift{model=\"$SMID\",gauge=\"unseen_rate\"}" \
  || { echo "e2e: metrics missing drift gauge"; exit 1; }
# The post-swap stream may legitimately trip a further refit, so assert
# the exported version is at least the one we observed, not exactly it.
MVER="$(echo "$METRICS" | sed -n "s/^zeroedd_model_version{model=\"$SMID\"} \([0-9]*\)$/\1/p")"
[ -n "$MVER" ] && [ "$MVER" -ge "$VER" ] || { echo "e2e: metrics model version '$MVER' < $VER"; exit 1; }
echo "$METRICS" | grep -q 'zeroedd_model_refits_total{outcome="swapped"}' \
  || { echo "e2e: metrics missing refit counter"; exit 1; }

# --- Observability: RED series, build info, and the debug trace ring. ---

echo "$METRICS" | grep -qF 'zeroedd_http_requests_total{route="POST /v1/jobs",code="202"}' \
  || { echo "e2e: metrics missing RED request counter for POST /v1/jobs"; exit 1; }
echo "$METRICS" | grep -qF 'zeroedd_http_request_seconds_bucket{route="POST /v1/models/{id}/score",le="+Inf"}' \
  || { echo "e2e: metrics missing RED latency histogram for score route"; exit 1; }
echo "$METRICS" | grep -qF 'zeroedd_queue_wait_seconds_count' \
  || { echo "e2e: metrics missing queue-wait histogram"; exit 1; }
echo "$METRICS" | grep -qF 'zeroedd_build_info{version=' \
  || { echo "e2e: metrics missing build info"; exit 1; }
echo "e2e: RED series, queue-wait histogram, and build info export"

# The debug listener serves the slow-request ring (-trace-slow 0s retains
# everything); the first retained trace loads as Chrome trace_event JSON.
RING="$(curl -fsS "$DEBUG/debug/traces")"
echo "$RING" | grep -q '"seq":' || { echo "e2e: debug trace ring is empty"; exit 1; }
SEQ="$(echo "$RING" | sed -n 's/.*"seq":\([0-9]*\).*/\1/p' | head -1)"
curl -fsS "$DEBUG/debug/traces/$SEQ" | grep -q '"traceEvents":' \
  || { echo "e2e: retained trace $SEQ is not Chrome trace_event JSON"; exit 1; }
curl -fsS "$DEBUG/debug/failpoints" | grep -q '"failpoints":' \
  || { echo "e2e: debug listener missing failpoint registry"; exit 1; }
echo "e2e: debug ring serves browsable Chrome traces"

echo "e2e: OK"
