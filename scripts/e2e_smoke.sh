#!/usr/bin/env bash
# End-to-end smoke for the detection service: build zeroedd, start it,
# submit a small CSV job, poll it to completion, and check the result and
# metrics endpoints. Exercises the same path CI pins with httptest, but
# against the real binary over a real socket.
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
BIN="$(mktemp -d)/zeroedd"

go build -o "$BIN" ./cmd/zeroedd
"$BIN" -addr "$ADDR" -workers 2 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

# Submit a small dataset.
CSV="$(mktemp)"
printf 'city,state,zip\nchicago,IL,60601\nspringfield,IL,62701\nchicago,IL,60601\nmadison,WI,53703\nchicago,XX,60601\n' > "$CSV"
ID="$(curl -fsS -X POST --data-binary @"$CSV" "$BASE/v1/jobs?seed=1&name=smoke" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "e2e: no job id in submit response"; exit 1; }
echo "e2e: submitted $ID"

# Poll to completion.
STATE=""
for _ in $(seq 1 150); do
  STATE="$(curl -fsS "$BASE/v1/jobs/$ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "e2e: job ended $STATE"; curl -fsS "$BASE/v1/jobs/$ID"; exit 1 ;;
  esac
  sleep 0.2
done
[ "$STATE" = done ] || { echo "e2e: timeout in state '$STATE'"; exit 1; }

# The result must carry verdicts for every submitted row.
curl -fsS "$BASE/v1/jobs/$ID/result" | grep -q '"pred":' || { echo "e2e: result missing pred"; exit 1; }

# Metrics must account for the finished job.
curl -fsS "$BASE/metrics" | grep -q 'zeroedd_jobs_finished_total{outcome="done"} 1' \
  || { echo "e2e: metrics missing finished job"; exit 1; }

echo "e2e: OK"
