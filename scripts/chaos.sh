#!/usr/bin/env bash
# Chaos sweep for the serve layer's durability story.
#
# Part 1 runs the crash-recovery suite (internal/chaos): it re-execs the
# test binary as a real zeroedd server, arms one crash failpoint per
# disk-write site (ZEROED_FAILPOINTS=<site>:crash), drives a fit or refit
# into the crash, kill -9s servers with state committed, restarts, and
# asserts the highest intact model version recovers with bit-identical
# scores. TestFailpointCoverage fails the run if any registered failpoint
# is never exercised — adding a failpoint without chaos coverage is a CI
# failure, not a silent gap.
#
# Part 2 re-runs the fault-relevant unit suites under the race detector
# with EVERY failpoint armed as a small sleep: timing chaos on each disk
# write, artifact load, and judge call, with zero behavior change — the
# whole suite must still pass bit-for-bit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> chaos: crash-recovery suite (subprocess crash sweep + coverage)"
go test ./internal/chaos/ -count=1

echo "==> chaos: unit suites under timing faults + race detector"
FAULTS="$(go run ./cmd/zeroedd -list-failpoints | sed 's/$/:sleep(200us)/' | paste -sd, -)"
echo "    ZEROED_FAILPOINTS=$FAULTS"
ZEROED_FAILPOINTS="$FAULTS" go test -race -short -count=1 -timeout 25m \
  ./internal/faultpoint/ ./internal/retry/ ./internal/model/ \
  ./internal/llm/ ./internal/zeroed/ ./internal/serve/

echo "==> chaos: OK"
