// Command datagen materializes the synthetic benchmark datasets as CSV
// files: <name>_dirty.csv and <name>_clean.csv per dataset, plus an
// injection log.
//
// Usage:
//
//	datagen -dataset Hospital -dir ./data
//	datagen -dataset all -dir ./data -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datasets"
	"repro/internal/errgen"
)

func main() {
	var (
		name = flag.String("dataset", "all", "dataset name or 'all'")
		dir  = flag.String("dir", ".", "output directory")
		size = flag.Int("size", 0, "tuple count (0 = Table II default)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	var names []string
	if *name == "all" {
		names = datasets.Names()
	} else {
		names = []string{*name}
	}
	for _, n := range names {
		gen := datasets.ByName(n)
		if gen == nil {
			fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (have %s)\n", n, strings.Join(datasets.Names(), ", "))
			os.Exit(2)
		}
		sz := *size
		if n == "Tax" && sz == 0 && *name == "all" {
			sz = 20000 // keep the bulk export manageable; ask for Tax alone for 200k
		}
		b := gen(sz, *seed)
		lower := strings.ToLower(n)
		dirtyPath := filepath.Join(*dir, lower+"_dirty.csv")
		cleanPath := filepath.Join(*dir, lower+"_clean.csv")
		logPath := filepath.Join(*dir, lower+"_injections.txt")
		if err := b.Dirty.WriteCSVFile(dirtyPath); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := b.Clean.WriteCSVFile(cleanPath); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(logPath, []byte(errgen.FormatLog(b.Log, len(b.Log))), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		rate, err := b.ErrorRate()
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d tuples x %d attrs, %.2f%% errors -> %s, %s\n",
			b.Name, b.Dirty.NumRows(), b.Dirty.NumCols(), 100*rate, dirtyPath, cleanPath)
	}
}
