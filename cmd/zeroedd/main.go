// Command zeroedd runs the ZeroED detection service: a long-running HTTP
// server that accepts tabular uploads as asynchronous detection jobs, runs
// them on one shared bounded worker pool, and serves per-cell verdicts and
// scores. Jobs with a fixed seed return verdicts bit-identical to a
// cmd/zeroed run on the same input.
//
// Every upload endpoint accepts CSV (the default) or NDJSON — negotiated
// by the Content-Type header (parameters like "; charset=utf-8" are fine)
// or forced with ?format=csv|ndjson — and verdicts are byte-identical
// across formats and chunkings of the same rows.
//
// Usage:
//
//	zeroedd [-addr :8080] [-workers N] [-shards N]
//	        [-max-concurrent 2] [-max-queue 16]
//	        [-max-upload-bytes 33554432] [-max-rows 1000000] [-max-cols 256]
//	        [-max-models 32] [-model-dir DIR]
//	        [-stream-chunk 256] [-drift-threshold 0] [-drift-min-rows 256]
//	        [-request-timeout 0] [-refit-backoff 1s] [-refit-breaker-after 5]
//	        [-log-format text|json] [-debug-addr ADDR]
//	        [-trace-dir DIR] [-trace-slow 100ms]
//	        [-list-failpoints]
//
// Quickstart:
//
//	zeroedd -addr :8080 &
//	curl -s -X POST --data-binary @dirty.csv 'localhost:8080/v1/jobs?seed=1'
//	curl -s localhost:8080/v1/jobs/j-000001            # poll state
//	curl -s localhost:8080/v1/jobs/j-000001/result     # verdicts + scores
//
// Online scoring ("fit once, score forever"): POST /v1/models fits a model
// from an upload and registers it (persisted under -model-dir when set);
// POST /v1/models/{id}/score then scores small bodies synchronously against
// the fitted model at a latency orders of magnitude below a fit job. Score,
// stream, and repair uploads may permute the model's columns or carry
// extras (dropped and reported; missing schema columns are a typed 400):
//
//	curl -s -X POST --data-binary @dirty.csv 'localhost:8080/v1/models?seed=1'
//	curl -s -X POST --data-binary @fresh.csv 'localhost:8080/v1/models/m-000001/score'
//
// Served repair: POST /v1/models/{id}/repair scores an upload (no refit)
// and applies the repair strategies to the flagged cells, returning the
// corrected table plus a cell-level change log — bit-identical to
// `zeroed -model-in ... -repair -repair-log ...` on the same artifact and
// bytes. ?table=0 suppresses the corrected table when only the change log
// is wanted:
//
//	curl -s -X POST --data-binary @fresh.csv 'localhost:8080/v1/models/m-000001/repair'
//
// Streaming detection: POST /v1/models/{id}/stream scores a chunked CSV or
// NDJSON body row-by-row (one JSON line per row) against a registered
// model, tracking per-model drift gauges. With -drift-threshold set, a
// tripped gauge triggers a background refit on the accumulated stream and a
// zero-downtime hot swap of the model — the old artifact stays on disk for
// rollback:
//
//	curl -sN -X POST --data-binary @stream.csv 'localhost:8080/v1/models/m-000001/stream'
//
// Durability: with -model-dir set, every artifact commit is atomic
// (temp + fsync + rename + directory fsync) and a manifest.json ledger
// records committed versions; a crash or kill -9 at any instant leaves each
// artifact committed-or-absent, never torn. Startup quarantines corrupt
// files to *.corrupt (counted once, not once per boot) and recovers the
// highest intact version per model. -request-timeout bounds server-side
// work per request with a typed 503 {"error":{"code":"deadline"}};
// -refit-backoff/-refit-breaker-after contain failing drift refits while
// the model keeps serving its last good version. Fault injection for all of
// this is armed via ZEROED_FAILPOINTS (see -list-failpoints and
// internal/faultpoint).
//
// Observability: every request carries an X-Request-ID (honored or
// generated, echoed on responses and in error envelopes) and a span tree
// covering queue wait, ingest, and each pipeline stage — ?trace=1 embeds
// it in synchronous responses, GET /v1/jobs/{id}/trace serves a finished
// job's tree, and /metrics exports per-route RED series. -log-format json
// switches the structured log to JSON lines. -debug-addr starts a second,
// operator-only listener with net/http/pprof, /debug/failpoints, and
// /debug/traces (slow-request Chrome traces, also dumped under -trace-dir
// when requests cross -trace-slow; load them in chrome://tracing).
//
// SIGINT/SIGTERM shut the server down gracefully: the listener stops, and
// in-flight jobs are canceled through their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "shared worker-pool size all jobs draw from (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "per-job scoring-shard count (0 = auto); results are identical for any value")
		maxConc     = flag.Int("max-concurrent", 2, "jobs detecting concurrently (they share the one pool)")
		maxQueue    = flag.Int("max-queue", 16, "admission-queue depth; beyond it submissions get 429")
		maxBytes    = flag.Int64("max-upload-bytes", 32<<20, "request-body byte cap (413 beyond it)")
		maxRows     = flag.Int("max-rows", 1_000_000, "per-upload row cap")
		maxCols     = flag.Int("max-cols", 256, "per-upload column cap")
		maxModels   = flag.Int("max-models", 32, "fitted-model registry capacity (409 beyond it)")
		modelDir    = flag.String("model-dir", "", "persist fitted models as artifacts under this directory and restore them on startup")
		streamChunk = flag.Int("stream-chunk", 256, "rows per streaming-detection batch (chunk-invariant; latency knob only)")
		driftThresh = flag.Float64("drift-threshold", 0, "drift gauge level that triggers a background refit + hot swap (0 = never refit; gauges still export)")
		driftMin    = flag.Int("drift-min-rows", 256, "minimum streamed rows before the drift threshold may trip")

		reqTimeout   = flag.Duration("request-timeout", 0, "server-side deadline per request; beyond it fits and scores return a typed 503 \"deadline\" (0 = unbounded)")
		refitBackoff = flag.Duration("refit-backoff", time.Second, "base backoff after a failed drift refit, doubling per consecutive failure")
		refitBreaker = flag.Int("refit-breaker-after", 5, "consecutive refit failures that open a per-model breaker until the next successful install (negative = never)")

		logFormat = flag.String("log-format", "text", "structured-log format: text or json")
		debugAddr = flag.String("debug-addr", "", "serve pprof, /debug/failpoints, and /debug/traces on this extra listener (keep it internal; empty = off)")
		traceDir  = flag.String("trace-dir", "", "dump slow-request traces as Chrome trace_event JSON files under this directory")
		traceSlow = flag.Duration("trace-slow", 100*time.Millisecond, "retain traces of requests at or above this duration in the debug ring (and -trace-dir)")

		listFailpoints = flag.Bool("list-failpoints", false, "print the registered fault-injection points ("+faultpoint.EnvVar+" arms them) and exit")
	)
	flag.Parse()

	if *listFailpoints {
		for _, name := range faultpoint.List() {
			fmt.Println(name)
		}
		return
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "zeroedd: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}

	svc := serve.New(serve.Config{
		Workers:           *workers,
		Shards:            *shards,
		MaxConcurrentJobs: *maxConc,
		MaxQueuedJobs:     *maxQueue,
		MaxUploadBytes:    *maxBytes,
		MaxRows:           *maxRows,
		MaxCols:           *maxCols,
		MaxModels:         *maxModels,
		ModelDir:          *modelDir,
		StreamChunkRows:   *streamChunk,
		DriftThreshold:    *driftThresh,
		DriftMinRows:      *driftMin,
		RequestTimeout:    *reqTimeout,
		RefitBackoff:      *refitBackoff,
		RefitBreakerAfter: *refitBreaker,
		Logger:            logger,
		TraceDir:          *traceDir,
		TraceSlow:         *traceSlow,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug surface is a separate server on purpose: pprof and
	// fault-injection state never share a port with client traffic.
	if *debugAddr != "" {
		dbgSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "zeroedd: debug listener:", err)
			}
		}()
		fmt.Printf("zeroedd: debug listener on %s\n", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("zeroedd: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("zeroedd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = httpSrv.Shutdown(ctx)
		cancel()
		svc.Close() // cancels in-flight jobs and drains the runners
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "zeroedd:", err)
			svc.Close()
			os.Exit(1)
		}
	}
}
