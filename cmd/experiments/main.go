// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table3            # one experiment
//	experiments -exp all -scale 0.5    # everything at half dataset sizes
//
// Experiments: table3, table4, table5, table6, fig6, fig7, fig8, fig9,
// fig10, fig11, all. Results print in the layout of the corresponding
// table or figure; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table3..table6, fig6..fig11, all)")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier vs Table II defaults")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "ZeroED worker-pool size (0 = GOMAXPROCS); results are identical for any value")
		shards  = flag.Int("shards", 0, "ZeroED scoring-shard count (0 = auto); results are identical for any value")
		batch   = flag.Bool("batch", false, "run the Fig. 7b/8b Tax sweeps as one DetectBatch over the shared pool")
	)
	flag.Parse()

	o := experiments.Options{Scale: *scale, Seed: *seed, Out: os.Stdout,
		Workers: *workers, Shards: *shards, Batch: *batch}
	runners := map[string]func() error{
		"table3": func() error { _, err := experiments.Table3(o); return err },
		"table4": func() error { _, err := experiments.Table4(o); return err },
		"table5": func() error { _, err := experiments.Table5(o); return err },
		"table6": func() error { _, err := experiments.Table6(o); return err },
		"fig6":   func() error { _, err := experiments.Fig6(o); return err },
		"fig7":   func() error { _, err := experiments.Fig7(o); return err },
		"fig8":   func() error { _, err := experiments.Fig8(o); return err },
		"fig9":   func() error { _, err := experiments.Fig9(o); return err },
		"fig10":  func() error { _, err := experiments.Fig10(o); return err },
		"fig11":  func() error { _, err := experiments.Fig11(o); return err },
	}
	order := []string{"table3", "table4", "table5", "table6", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		fmt.Printf("\n===== %s (scale %.2f, seed %d) =====\n", id, *scale, *seed)
		if err := runners[id](); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
