package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/llm"
)

// opts builds a runOpts with the flag defaults, then applies mod.
func opts(mod func(*runOpts)) runOpts {
	o := runOpts{
		method: "zeroed", model: "Qwen2.5-72b",
		labelRate: 0.05, corrK: 2, seed: 1,
	}
	if mod != nil {
		mod(&o)
	}
	return o
}

func TestRunOnGeneratedDataset(t *testing.T) {
	dir := t.TempDir()
	mask := filepath.Join(dir, "mask.csv")
	repaired := filepath.Join(dir, "repaired.csv")
	err := run(context.Background(), opts(func(o *runOpts) {
		o.dataset = "Hospital"
		o.size = 250
		o.labelRate = 0.08
		o.seed = 5
		o.outPath = mask
		o.repairOut = repaired
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mask, repaired} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("expected output file %s: %v", p, err)
		}
	}
	b, err := os.ReadFile(mask)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "ProviderNumber") {
		t.Error("mask CSV should carry the schema header")
	}
}

func TestRunOnCSVFiles(t *testing.T) {
	dir := t.TempDir()
	dirty := filepath.Join(dir, "dirty.csv")
	clean := filepath.Join(dir, "clean.csv")
	var db, cb strings.Builder
	db.WriteString("Grade,Score\n")
	cb.WriteString("Grade,Score\n")
	for i := 0; i < 120; i++ {
		cb.WriteString("A,90\n")
		if i == 3 {
			db.WriteString("A,9000\n") // outlier
		} else {
			db.WriteString("A,90\n")
		}
	}
	if err := os.WriteFile(dirty, []byte(db.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(clean, []byte(cb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), opts(func(o *runOpts) {
		o.dirtyPath = dirty
		o.cleanPath = clean
		o.method = "dboost"
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), opts(nil)); err == nil {
		t.Error("missing input must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.dataset = "NoSuchSet" })); err == nil {
		t.Error("unknown dataset must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.dataset = "Hospital"; o.size = 100; o.model = "NoSuchModel" })); err == nil {
		t.Error("unknown model must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.dataset = "Hospital"; o.size = 100; o.method = "nosuchmethod" })); err == nil {
		t.Error("unknown method must error")
	}
	// Raha without -clean has no oracle.
	dir := t.TempDir()
	dirty := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(dirty, []byte("A\nx\ny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.dirtyPath = dirty; o.method = "raha" })); err == nil {
		t.Error("raha without clean labels must error")
	}
}

func TestRunBatchReplicas(t *testing.T) {
	err := run(context.Background(), opts(func(o *runOpts) {
		o.dataset = "Hospital"
		o.size = 150
		o.batch = "2"
		o.workers = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchCSVList(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for _, name := range []string{"a.csv", "b.csv"} {
		var sb strings.Builder
		sb.WriteString("Grade,Score\n")
		for i := 0; i < 80; i++ {
			if i == 2 {
				sb.WriteString("A,9000\n")
			} else {
				sb.WriteString("A,90\n")
			}
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	err := run(context.Background(), opts(func(o *runOpts) { o.batch = strings.Join(paths, ",") }))
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunNDJSONInput: the same rows ingested as CSV and as NDJSON (auto-
// detected from the extension, or forced with -format on a misnamed file)
// produce byte-identical masks.
func TestRunNDJSONInput(t *testing.T) {
	dir := t.TempDir()
	var csvB, ndB, cleanB strings.Builder
	ndB.WriteString(`["Grade","Score"]` + "\n")
	csvB.WriteString("Grade,Score\n")
	cleanB.WriteString("Grade,Score\n")
	for i := 0; i < 120; i++ {
		cleanB.WriteString("A,90\n")
		if i == 3 {
			csvB.WriteString("A,9000\n")
			ndB.WriteString(`["A","9000"]` + "\n")
		} else {
			csvB.WriteString("A,90\n")
			ndB.WriteString(`["A","90"]` + "\n")
		}
	}
	files := map[string]string{
		"dirty.csv":    csvB.String(),
		"dirty.ndjson": ndB.String(),
		"dirty.dat":    ndB.String(), // wrong extension; -format must rescue it
		"clean.csv":    cleanB.String(),
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	masks := make(map[string][]byte)
	for name, in := range map[string]struct{ file, format string }{
		"csv":           {"dirty.csv", ""},
		"ndjson-auto":   {"dirty.ndjson", ""},
		"ndjson-forced": {"dirty.dat", "ndjson"},
	} {
		mask := filepath.Join(dir, name+".mask.csv")
		err := run(context.Background(), opts(func(o *runOpts) {
			o.dirtyPath = filepath.Join(dir, in.file)
			o.cleanPath = filepath.Join(dir, "clean.csv")
			o.format = in.format
			o.method = "dboost"
			o.outPath = mask
		}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := os.ReadFile(mask)
		if err != nil {
			t.Fatal(err)
		}
		masks[name] = b
	}
	if string(masks["ndjson-auto"]) != string(masks["csv"]) {
		t.Error("auto-detected NDJSON mask differs from the CSV mask")
	}
	if string(masks["ndjson-forced"]) != string(masks["csv"]) {
		t.Error("-format ndjson mask differs from the CSV mask")
	}
}

func TestRunBatchValidation(t *testing.T) {
	if err := run(context.Background(), opts(func(o *runOpts) { o.batch = "3" })); err == nil {
		t.Error("replica batch without -dataset must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.batch = "2"; o.dataset = "Hospital"; o.method = "dboost" })); err == nil {
		t.Error("batch with a baseline method must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.batch = " , " })); err == nil {
		t.Error("batch listing no paths must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.batch = "0"; o.dataset = "Hospital" })); err == nil {
		t.Error("batch replica count of 0 must error")
	}
	if err := run(context.Background(), opts(func(o *runOpts) { o.batch = "x.csv"; o.dataset = "Hospital" })); err == nil ||
		!strings.Contains(err.Error(), "CSV list") {
		t.Errorf("-dataset with a -batch CSV list must be rejected, got %v", err)
	}
	for _, mod := range []func(*runOpts){
		func(o *runOpts) { o.dirtyPath = "x.csv" },
		func(o *runOpts) { o.cleanPath = "x.csv" },
		func(o *runOpts) { o.outPath = "x.csv" },
		func(o *runOpts) { o.repairOut = "x.csv" },
		func(o *runOpts) { o.format = "ndjson" },
		func(o *runOpts) { o.repairOut = "x.csv"; o.repairLog = "x.ndjson" },
	} {
		err := run(context.Background(), opts(func(o *runOpts) { o.batch = "2"; o.dataset = "Hospital"; mod(o) }))
		if err == nil || !strings.Contains(err.Error(), "-batch") {
			t.Errorf("single-run flag combined with -batch must be rejected, got %v", err)
		}
	}
}

func TestBaselineByNameAll(t *testing.T) {
	for _, name := range []string{"dboost", "nadeef", "katara", "fmed"} {
		m, err := baselineByName(name, llm.Qwen72B, nil, nil, nil, nil)
		if err != nil || m == nil {
			t.Errorf("baselineByName(%s) = %v, %v", name, m, err)
		}
	}
}

// TestRunModelOutIn: -model-out fits and persists an artifact, -model-in
// scores with it and produces the identical mask without refitting.
func TestRunModelOutIn(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "hospital.zedm")
	fitMask := filepath.Join(dir, "fit_mask.csv")
	scoreMask := filepath.Join(dir, "score_mask.csv")
	base := func(o *runOpts) {
		o.dataset = "Hospital"
		o.size = 200
		o.labelRate = 0.08
		o.seed = 5
	}
	if err := run(context.Background(), opts(func(o *runOpts) {
		base(o)
		o.modelOut = artifact
		o.outPath = fitMask
	})); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(artifact); err != nil || fi.Size() == 0 {
		t.Fatalf("artifact missing: %v", err)
	}
	if err := run(context.Background(), opts(func(o *runOpts) {
		base(o)
		o.modelIn = artifact
		o.outPath = scoreMask
	})); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(fitMask)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(scoreMask)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("score-only mask differs from fit-time mask")
	}
}

// TestRunModelFlagValidation: contradictory model-flag combinations fail
// fast.
func TestRunModelFlagValidation(t *testing.T) {
	for name, mod := range map[string]func(*runOpts){
		"in+out":            func(o *runOpts) { o.dataset = "Hospital"; o.modelIn = "a"; o.modelOut = "b" },
		"non-zeroed":        func(o *runOpts) { o.dataset = "Hospital"; o.modelIn = "a"; o.method = "dboost" },
		"batch+out":         func(o *runOpts) { o.dataset = "Hospital"; o.batch = "2"; o.modelOut = "b" },
		"batch+in":          func(o *runOpts) { o.dataset = "Hospital"; o.batch = "2"; o.modelIn = "a" },
		"missing-file":      func(o *runOpts) { o.dataset = "Hospital"; o.size = 50; o.modelIn = "/nonexistent.zedm" },
		"bad-format":        func(o *runOpts) { o.dataset = "Hospital"; o.size = 50; o.format = "xml" },
		"log-without-pass":  func(o *runOpts) { o.dataset = "Hospital"; o.size = 50; o.repairLog = "c.ndjson" },
		"stream+repair-log": func(o *runOpts) { o.stream = true; o.modelIn = "a"; o.repairOut = ""; o.repairLog = "c.ndjson" },
	} {
		if err := run(context.Background(), opts(mod)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestRunScoreOnlyRepair: -model-in with -repair and -repair-log runs the
// detect→repair loop with no refit, writing the corrected CSV plus a change
// log whose lines carry the served endpoint's exact fields.
func TestRunScoreOnlyRepair(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "hospital.zedm")
	repaired := filepath.Join(dir, "repaired.csv")
	changeLog := filepath.Join(dir, "changes.ndjson")
	base := func(o *runOpts) {
		o.dataset = "Hospital"
		o.size = 150
		o.labelRate = 0.08
		o.seed = 5
	}
	if err := run(context.Background(), opts(func(o *runOpts) { base(o); o.modelOut = artifact })); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts(func(o *runOpts) {
		base(o)
		o.modelIn = artifact
		o.repairOut = repaired
		o.repairLog = changeLog
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(repaired); err != nil {
		t.Fatalf("repaired CSV missing: %v", err)
	}
	b, err := os.ReadFile(changeLog)
	if err != nil {
		t.Fatalf("change log missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("change log is empty; the benchmark should have repairable errors")
	}
	for i, line := range lines {
		var c struct {
			Row      *int    `json:"row"`
			Col      *int    `json:"col"`
			Attr     *string `json:"attr"`
			Old      *string `json:"old"`
			New      *string `json:"new"`
			Strategy *string `json:"strategy"`
		}
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("change-log line %d is not JSON: %v", i, err)
		}
		if c.Row == nil || c.Col == nil || c.Attr == nil || c.Old == nil || c.New == nil ||
			c.Strategy == nil || *c.Strategy == "" {
			t.Fatalf("change-log line %d missing fields: %s", i, line)
		}
	}
}
