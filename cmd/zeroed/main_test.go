package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/llm"
)

func TestRunOnGeneratedDataset(t *testing.T) {
	dir := t.TempDir()
	mask := filepath.Join(dir, "mask.csv")
	repaired := filepath.Join(dir, "repaired.csv")
	err := run("", "", "Hospital", 250, "zeroed", "Qwen2.5-72b", 0.08, 2, 5, mask, repaired)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mask, repaired} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("expected output file %s: %v", p, err)
		}
	}
	b, err := os.ReadFile(mask)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "ProviderNumber") {
		t.Error("mask CSV should carry the schema header")
	}
}

func TestRunOnCSVFiles(t *testing.T) {
	dir := t.TempDir()
	dirty := filepath.Join(dir, "dirty.csv")
	clean := filepath.Join(dir, "clean.csv")
	var db, cb strings.Builder
	db.WriteString("Grade,Score\n")
	cb.WriteString("Grade,Score\n")
	for i := 0; i < 120; i++ {
		cb.WriteString("A,90\n")
		if i == 3 {
			db.WriteString("A,9000\n") // outlier
		} else {
			db.WriteString("A,90\n")
		}
	}
	if err := os.WriteFile(dirty, []byte(db.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(clean, []byte(cb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dirty, clean, "", 0, "dboost", "Qwen2.5-72b", 0.05, 2, 1, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "", 0, "zeroed", "Qwen2.5-72b", 0.05, 2, 1, "", ""); err == nil {
		t.Error("missing input must error")
	}
	if err := run("", "", "NoSuchSet", 0, "zeroed", "Qwen2.5-72b", 0.05, 2, 1, "", ""); err == nil {
		t.Error("unknown dataset must error")
	}
	if err := run("", "", "Hospital", 100, "zeroed", "NoSuchModel", 0.05, 2, 1, "", ""); err == nil {
		t.Error("unknown model must error")
	}
	if err := run("", "", "Hospital", 100, "nosuchmethod", "Qwen2.5-72b", 0.05, 2, 1, "", ""); err == nil {
		t.Error("unknown method must error")
	}
	// Raha without -clean has no oracle.
	dir := t.TempDir()
	dirty := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(dirty, []byte("A\nx\ny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dirty, "", "", 0, "raha", "Qwen2.5-72b", 0.05, 2, 1, "", ""); err == nil {
		t.Error("raha without clean labels must error")
	}
}

func TestBaselineByNameAll(t *testing.T) {
	for _, name := range []string{"dboost", "nadeef", "katara", "fmed"} {
		m, err := baselineByName(name, llm.Qwen72B, nil, nil, nil, nil)
		if err != nil || m == nil {
			t.Errorf("baselineByName(%s) = %v, %v", name, m, err)
		}
	}
}
