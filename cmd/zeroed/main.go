// Command zeroed runs error detection on a CSV dataset. It detects with
// the ZeroED pipeline by default or any of the six baselines via -method,
// and reports precision/recall/F1 when a clean ground-truth CSV is given.
//
// Usage:
//
//	zeroed -dirty data.csv [-clean truth.csv] [-method zeroed] [-out mask.csv]
//
// With -dataset NAME (-dirty omitted), a built-in synthetic benchmark is
// generated instead, e.g. -dataset Hospital.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/knowledge"
	"repro/internal/llm"
	"repro/internal/repair"
	"repro/internal/table"
	"repro/internal/zeroed"
)

func main() {
	var (
		dirtyPath = flag.String("dirty", "", "path to the dirty CSV (header row required)")
		cleanPath = flag.String("clean", "", "optional path to the clean ground-truth CSV for scoring")
		dataset   = flag.String("dataset", "", "generate a built-in benchmark instead of reading CSVs (Hospital, Flights, Beers, Rayyan, Billionaire, Movies, Tax)")
		size      = flag.Int("size", 0, "tuple count for -dataset (0 = Table II default)")
		method    = flag.String("method", "zeroed", "detector: zeroed, dboost, nadeef, katara, raha, activeclean, fmed")
		model     = flag.String("model", "Qwen2.5-72b", "simulated LLM profile for zeroed/fmed")
		labelRate = flag.Float64("label-rate", 0.05, "ZeroED LLM label rate")
		corrK     = flag.Int("corr", 2, "ZeroED correlated attribute count")
		seed      = flag.Int64("seed", 1, "random seed")
		outPath   = flag.String("out", "", "optional path to write the predicted error mask as CSV")
		repairOut = flag.String("repair", "", "optional path to write a repaired copy of the data as CSV")
	)
	flag.Parse()

	if err := run(*dirtyPath, *cleanPath, *dataset, *size, *method, *model, *labelRate, *corrK, *seed, *outPath, *repairOut); err != nil {
		fmt.Fprintln(os.Stderr, "zeroed:", err)
		os.Exit(1)
	}
}

func run(dirtyPath, cleanPath, dataset string, size int, method, model string, labelRate float64, corrK int, seed int64, outPath, repairOut string) error {
	var dirty, clean *table.Dataset
	var kb *knowledge.Base
	var fdPairs [][2]int

	switch {
	case dataset != "":
		gen := datasets.ByName(dataset)
		if gen == nil {
			return fmt.Errorf("unknown dataset %q (have %s)", dataset, strings.Join(datasets.Names(), ", "))
		}
		b := gen(size, seed)
		dirty, clean, kb, fdPairs = b.Dirty, b.Clean, b.KB, b.FDPairs
		fmt.Printf("generated %s: %d tuples x %d attributes, %.2f%% cell errors\n",
			b.Name, dirty.NumRows(), dirty.NumCols(), 100*b.ErrorRate())
	case dirtyPath != "":
		var err error
		dirty, err = table.ReadCSVFile("input", dirtyPath)
		if err != nil {
			return err
		}
		if cleanPath != "" {
			clean, err = table.ReadCSVFile("truth", cleanPath)
			if err != nil {
				return err
			}
		}
		kb = knowledge.NewBase()
	default:
		return fmt.Errorf("either -dirty or -dataset is required")
	}

	profile, ok := llm.ProfileByName(model)
	if !ok {
		return fmt.Errorf("unknown model %q", model)
	}

	var pred [][]bool
	switch strings.ToLower(method) {
	case "zeroed":
		det := zeroed.New(zeroed.Config{
			LabelRate: labelRate, CorrK: corrK, Profile: profile, Seed: seed,
		})
		res, err := det.Detect(dirty)
		if err != nil {
			return err
		}
		pred = res.Pred
		fmt.Printf("ZeroED: sampled %d cells, trained on %d cells (%d augmented), %d criteria\n",
			res.SampledCells, res.TrainingCells, res.AugmentedErrs, res.CriteriaCount)
		fmt.Printf("LLM usage: %d calls, %d input + %d output tokens; runtime %v\n",
			res.Usage.Calls, res.Usage.InputTokens, res.Usage.OutputTokens, res.Runtime.Round(1e6))
	default:
		m, err := baselineByName(method, profile, kb, fdPairs, dirty, clean)
		if err != nil {
			return err
		}
		pred, err = m.Detect(dirty)
		if err != nil {
			return err
		}
	}

	flagged := 0
	for i := range pred {
		for j := range pred[i] {
			if pred[i][j] {
				flagged++
			}
		}
	}
	fmt.Printf("flagged %d of %d cells (%.2f%%)\n", flagged, dirty.NumCells(),
		100*float64(flagged)/float64(dirty.NumCells()))

	if clean != nil {
		m, err := eval.ComputeAgainst(pred, dirty, clean)
		if err != nil {
			return err
		}
		fmt.Printf("precision %.3f, recall %.3f, F1 %.3f\n", m.Precision, m.Recall, m.F1)
	}

	if repairOut != "" {
		repaired, fixes := repair.New(repair.Config{}).Apply(dirty, pred)
		if err := repaired.WriteCSVFile(repairOut); err != nil {
			return err
		}
		fmt.Printf("applied %d repairs, wrote repaired data to %s\n", len(fixes), repairOut)
		if clean != nil {
			before, _ := table.ErrorRate(dirty, clean)
			after, _ := table.ErrorRate(repaired, clean)
			fmt.Printf("error rate: %.4f -> %.4f\n", before, after)
		}
	}

	if outPath != "" {
		mask := table.New("mask", dirty.Attrs)
		for i := range pred {
			row := make([]string, len(pred[i]))
			for j, p := range pred[i] {
				if p {
					row[j] = "1"
				} else {
					row[j] = "0"
				}
			}
			mask.AppendRow(row)
		}
		if err := mask.WriteCSVFile(outPath); err != nil {
			return err
		}
		fmt.Println("wrote mask to", outPath)
	}
	return nil
}

func baselineByName(name string, profile llm.Profile, kb *knowledge.Base, fdPairs [][2]int, dirty, clean *table.Dataset) (baselines.Method, error) {
	var oracle baselines.LabelOracle
	if clean != nil {
		mask, err := table.ErrorMask(dirty, clean)
		if err != nil {
			return nil, err
		}
		oracle = func(row int) []bool { return mask[row] }
	}
	switch strings.ToLower(name) {
	case "dboost":
		return baselines.NewDBoost(), nil
	case "nadeef":
		return baselines.NewNadeef(fdPairs), nil
	case "katara":
		return baselines.NewKatara(kb), nil
	case "raha":
		if oracle == nil {
			return nil, fmt.Errorf("raha needs -clean (it consumes human labels)")
		}
		return baselines.NewRaha(oracle), nil
	case "activeclean":
		if oracle == nil {
			return nil, fmt.Errorf("activeclean needs -clean (it consumes human labels)")
		}
		return baselines.NewActiveClean(oracle), nil
	case "fmed", "fm_ed":
		return baselines.NewFMED(llm.NewClient(profile), kb), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
