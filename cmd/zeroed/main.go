// Command zeroed runs error detection on a tabular dataset. It detects
// with the ZeroED pipeline by default or any of the six baselines via
// -method, and reports precision/recall/F1 when a clean ground-truth file
// is given.
//
// Usage:
//
//	zeroed -dirty data.csv [-clean truth.csv] [-method zeroed] [-out mask.csv]
//
// Inputs may be CSV or NDJSON (one JSON array or object per line, first
// line the header): the format is auto-detected from the file extension
// (.ndjson/.jsonl/.json select NDJSON) or forced with -format. With
// -dataset NAME (-dirty omitted), a built-in synthetic benchmark is
// generated instead, e.g. -dataset Hospital.
//
// Scaling knobs (ZeroED only): -workers bounds the shared worker pool,
// -shards splits the scoring pass into row shards; both leave results
// bit-identical and change only wall-clock. -batch detects several inputs
// concurrently over one pool: either a comma-separated list of dirty CSVs,
// or (with -dataset) a replica count, generating the replicas at seeds
// seed..seed+n-1 (every replica is detected with the same -seed config).
//
// Model artifacts (ZeroED only): -model-out FILE fits, persists the fitted
// model as a versioned artifact, and scores with it; -model-in FILE skips
// fitting entirely and scores the input with a previously saved artifact —
// verdicts and scores are bit-identical to the run that produced it. Saves
// commit atomically (temp file + fsync + rename), so a crash mid-save
// leaves the previous artifact intact, never a torn file:
//
//	zeroed -dataset Hospital -model-out hospital.zedm
//	zeroed -dirty fresh.csv -model-in hospital.zedm -out mask.csv
//
// A -model-in input may carry extra columns or a permuted header: it is
// projected onto the model's schema before scoring (extra columns are
// dropped and reported; missing schema columns are an error).
//
// Repair (ZeroED and baselines): -repair FILE applies the repair
// strategies (FD-implied values, typo correction, numeric medians,
// dominant modes) to the flagged cells and writes the corrected table;
// -repair-log FILE additionally writes one JSON line per changed cell
// (row, col, attr, old, new, strategy). Combined with -model-in this is a
// score-only detect→repair pass — no refit — bit-identical to the
// service's POST /v1/models/{id}/repair on the same artifact and bytes:
//
//	zeroed -dirty fresh.csv -model-in hospital.zedm -repair fixed.csv -repair-log changes.ndjson
//
// Streaming (ZeroED only): -stream scores -dirty (or stdin with "-") chunk
// by chunk against -model-in, emitting one JSON verdict line per row;
// verdicts are chunk-invariant. With -drift-threshold T, drifted streams
// refit the model in place on the accumulated rows and continue on the
// successor (saved to -model-out when given):
//
//	zeroed -stream -model-in hospital.zedm -dirty feed.csv -drift-threshold 0.3
//
// Profiling: -cpuprofile FILE records a pprof CPU profile over the whole
// run, -memprofile FILE writes a post-run heap profile, so hot-path work
// is measurable without editing code:
//
//	zeroed -dataset Tax -size 20000 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Tracing: -trace FILE records a span tree over the whole run — input
// read, every fit stage, the sharded scoring pass, repair, output writes —
// and saves it as Chrome trace_event JSON, loadable in chrome://tracing or
// Perfetto. Tracing is a pure observer: verdicts and score bits are
// identical with and without it:
//
//	zeroed -dataset Hospital -trace trace.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/knowledge"
	"repro/internal/llm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// runOpts carries the parsed command line.
type runOpts struct {
	dirtyPath  string
	cleanPath  string
	format     string
	dataset    string
	size       int
	method     string
	model      string
	labelRate  float64
	corrK      int
	seed       int64
	workers    int
	shards     int
	batch      string
	outPath    string
	repairOut  string
	repairLog  string
	modelOut   string
	modelIn    string
	cpuProfile string
	memProfile string
	tracePath  string

	stream         bool
	streamChunk    int
	driftThreshold float64
	driftMinRows   int
}

func main() {
	var o runOpts
	flag.StringVar(&o.dirtyPath, "dirty", "", "path to the dirty CSV (header row required)")
	flag.StringVar(&o.cleanPath, "clean", "", "optional path to the clean ground-truth CSV for scoring")
	flag.StringVar(&o.format, "format", "", "ingest format of -dirty and the -stream input: csv or ndjson (default: auto-detect from the file extension)")
	flag.StringVar(&o.dataset, "dataset", "", "generate a built-in benchmark instead of reading CSVs (Hospital, Flights, Beers, Rayyan, Billionaire, Movies, Tax)")
	flag.IntVar(&o.size, "size", 0, "tuple count for -dataset (0 = Table II default)")
	flag.StringVar(&o.method, "method", "zeroed", "detector: zeroed, dboost, nadeef, katara, raha, activeclean, fmed")
	flag.StringVar(&o.model, "model", "Qwen2.5-72b", "simulated LLM profile for zeroed/fmed")
	flag.Float64Var(&o.labelRate, "label-rate", 0.05, "ZeroED LLM label rate")
	flag.IntVar(&o.corrK, "corr", 2, "ZeroED correlated attribute count")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.workers, "workers", 0, "ZeroED worker-pool size (0 = GOMAXPROCS); results are identical for any value")
	flag.IntVar(&o.shards, "shards", 0, "ZeroED scoring-shard count (0 = auto); results are identical for any value")
	flag.StringVar(&o.batch, "batch", "", "detect a batch over one shared pool: comma-separated dirty CSVs, or a replica count with -dataset (replicas generated at seeds seed..seed+n-1)")
	flag.StringVar(&o.outPath, "out", "", "optional path to write the predicted error mask as CSV")
	flag.StringVar(&o.repairOut, "repair", "", "optional path to write a repaired copy of the data as CSV")
	flag.StringVar(&o.repairLog, "repair-log", "", "optional path to write the repair change log as JSON lines (one object per changed cell; requires -repair)")
	flag.StringVar(&o.modelOut, "model-out", "", "fit and write the model artifact to this path, then score with it (ZeroED only)")
	flag.StringVar(&o.modelIn, "model-in", "", "skip fitting: load a model artifact and score the input with it (ZeroED only; pipeline flags like -seed and -label-rate are taken from the artifact)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
	flag.StringVar(&o.tracePath, "trace", "", "write a Chrome trace_event JSON trace of the run to this file (open in chrome://tracing; results are bit-identical with tracing on or off)")
	flag.BoolVar(&o.stream, "stream", false, "streaming mode: score -dirty (or stdin with '-') chunk by chunk against -model-in, one JSON verdict line per row")
	flag.IntVar(&o.streamChunk, "stream-chunk", 256, "rows per streaming chunk (verdicts are chunk-invariant; latency knob only)")
	flag.Float64Var(&o.driftThreshold, "drift-threshold", 0, "streaming drift level that triggers an in-place refit on the accumulated rows (0 = never refit)")
	flag.IntVar(&o.driftMinRows, "drift-min-rows", 256, "minimum streamed rows before the drift threshold may trip")
	flag.Parse()

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zeroed: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "zeroed: cpuprofile:", err)
			os.Exit(1)
		}
	}

	ctx := context.Background()
	var tr *obs.Trace
	if o.tracePath != "" {
		obs.SetEnabled(true)
		ctx, tr = obs.NewTrace(ctx, "zeroed")
	}

	err := run(ctx, o)

	if o.cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if tr != nil {
		tr.Finish()
		if terr := writeTrace(o.tracePath, tr); terr != nil {
			fmt.Fprintln(os.Stderr, "zeroed: trace:", terr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "zeroed: wrote trace (%d spans, %v) to %s\n",
			tr.Spans(), tr.Duration().Round(1e6), o.tracePath)
	}
	if o.memProfile != "" {
		f, merr := os.Create(o.memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "zeroed: memprofile:", merr)
			os.Exit(1)
		}
		runtime.GC() // materialize the steady-state heap
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "zeroed: memprofile:", merr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "zeroed:", err)
		os.Exit(1)
	}
}

// writeTrace saves a finished trace as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (o runOpts) zeroedConfig() zeroed.Config {
	return zeroed.Config{
		LabelRate: o.labelRate, CorrK: o.corrK, Seed: o.seed,
		Workers: o.workers, Shards: o.shards,
	}
}

func run(ctx context.Context, o runOpts) error {
	profile, ok := llm.ProfileByName(o.model)
	if !ok {
		return fmt.Errorf("unknown model %q", o.model)
	}
	if o.format != "" && o.format != table.FormatCSV && o.format != table.FormatNDJSON {
		return fmt.Errorf("unknown -format %q (want %s or %s)", o.format, table.FormatCSV, table.FormatNDJSON)
	}
	if o.repairLog != "" && o.repairOut == "" {
		return fmt.Errorf("-repair-log requires -repair (there is no change log without a repair pass)")
	}
	if o.modelIn != "" && o.modelOut != "" && !o.stream {
		return fmt.Errorf("-model-in and -model-out cannot be combined (except with -stream, where -model-out receives the refit successor)")
	}
	if (o.modelIn != "" || o.modelOut != "") && strings.ToLower(o.method) != "zeroed" {
		return fmt.Errorf("-model-in/-model-out support only -method zeroed")
	}
	if o.stream {
		switch {
		case strings.ToLower(o.method) != "zeroed":
			return fmt.Errorf("-stream supports only -method zeroed")
		case o.modelIn == "":
			return fmt.Errorf("-stream requires -model-in (fit one first with -model-out)")
		case o.batch != "":
			return fmt.Errorf("-stream cannot be combined with -batch")
		case o.cleanPath != "" || o.outPath != "" || o.repairOut != "":
			return fmt.Errorf("-stream cannot be combined with -clean, -out, or -repair")
		case o.repairLog != "":
			return fmt.Errorf("-stream cannot be combined with -repair-log")
		}
		return runStream(ctx, o)
	}
	if o.batch != "" {
		// Flags that only apply to single-dataset runs would be silently
		// ignored in batch mode; reject the combination instead.
		for _, c := range []struct {
			name string
			set  bool
		}{
			{"-dirty", o.dirtyPath != ""},
			{"-clean", o.cleanPath != ""},
			{"-format", o.format != ""},
			{"-out", o.outPath != ""},
			{"-repair", o.repairOut != ""},
			{"-repair-log", o.repairLog != ""},
			{"-model-out", o.modelOut != ""},
			{"-model-in", o.modelIn != ""},
		} {
			if c.set {
				return fmt.Errorf("%s cannot be combined with -batch", c.name)
			}
		}
		return runBatch(ctx, o, profile)
	}

	var dirty, clean *table.Dataset
	var kb *knowledge.Base
	var fdPairs [][2]int

	_, readSpan := obs.Start(ctx, "read_input")
	switch {
	case o.dataset != "":
		gen, err := datasetGen(o.dataset)
		if err != nil {
			readSpan.End()
			return err
		}
		b := gen(o.size, o.seed)
		dirty, clean, kb, fdPairs = b.Dirty, b.Clean, b.KB, b.FDPairs
		rate, err := b.ErrorRate()
		if err != nil {
			readSpan.End()
			return err
		}
		fmt.Printf("generated %s: %d tuples x %d attributes, %.2f%% cell errors\n",
			b.Name, dirty.NumRows(), dirty.NumCols(), 100*rate)
	case o.dirtyPath != "":
		var err error
		dirty, err = table.ReadFile("input", o.dirtyPath, o.format)
		if err != nil {
			readSpan.End()
			return err
		}
		if o.cleanPath != "" {
			clean, err = table.ReadFile("truth", o.cleanPath, "")
			if err != nil {
				readSpan.End()
				return err
			}
		}
		kb = knowledge.NewBase()
	default:
		readSpan.End()
		return fmt.Errorf("either -dirty, -dataset, or -batch is required")
	}
	readSpan.SetInt("rows", int64(dirty.NumRows()))
	readSpan.End()

	var pred [][]bool
	switch strings.ToLower(o.method) {
	case "zeroed":
		cfg := o.zeroedConfig()
		cfg.Profile = profile
		det := zeroed.New(cfg)
		switch {
		case o.modelIn != "":
			// Score-only: load the fitted artifact and run the cheap phase.
			// The input header may be a permutation or superset of the model
			// schema — it is projected onto the schema before scoring, like
			// an upload to the service's score endpoint.
			_, loadSpan := obs.Start(ctx, "model.load")
			m, err := model.LoadFile(o.modelIn)
			loadSpan.End()
			if err != nil {
				return err
			}
			m.SetParallelism(o.workers, o.shards)
			proj, mapping, err := table.Project(dirty, m.Attrs())
			if err != nil {
				return err
			}
			if len(mapping.Dropped) > 0 {
				fmt.Printf("dropped %d input columns outside the model schema: %s\n",
					len(mapping.Dropped), strings.Join(mapping.Dropped, ", "))
			}
			dirty = proj
			if clean != nil {
				if clean, _, err = table.Project(clean, m.Attrs()); err != nil {
					return fmt.Errorf("projecting -clean onto the model schema: %w", err)
				}
			}
			res, err := m.ScoreContext(ctx, dirty)
			if err != nil {
				return err
			}
			pred = res.Pred
			fmt.Printf("scored %d rows with model %s (fitted on %d rows, seed %d) in %v — no refit\n",
				dirty.NumRows(), o.modelIn, m.FitRows(), m.Config().Seed, res.Runtime.Round(1e6))
		case o.modelOut != "":
			// Fit, persist the artifact, then score with the fitted model.
			m, err := det.FitContext(ctx, dirty)
			if err != nil {
				return err
			}
			_, saveSpan := obs.Start(ctx, "model.save")
			err = model.SaveFile(o.modelOut, m)
			saveSpan.End()
			if err != nil {
				return err
			}
			info := m.Info()
			fmt.Printf("ZeroED: sampled %d cells, trained on %d cells (%d augmented), %d criteria\n",
				info.SampledCells, info.TrainingCells, info.AugmentedErrs, info.CriteriaCount)
			fmt.Printf("LLM usage: %d calls, %d input + %d output tokens; fit runtime %v\n",
				info.Usage.Calls, info.Usage.InputTokens, info.Usage.OutputTokens, info.FitRuntime.Round(1e6))
			res, err := m.ScoreContext(ctx, dirty)
			if err != nil {
				return err
			}
			pred = res.Pred
			if fi, err := os.Stat(o.modelOut); err == nil {
				fmt.Printf("wrote model to %s (%d bytes); score-only pass took %v\n",
					o.modelOut, fi.Size(), res.Runtime.Round(1e6))
			}
		default:
			res, err := det.DetectContext(ctx, dirty)
			if err != nil {
				return err
			}
			pred = res.Pred
			fmt.Printf("ZeroED: sampled %d cells, trained on %d cells (%d augmented), %d criteria\n",
				res.SampledCells, res.TrainingCells, res.AugmentedErrs, res.CriteriaCount)
			fmt.Printf("LLM usage: %d calls, %d input + %d output tokens; runtime %v\n",
				res.Usage.Calls, res.Usage.InputTokens, res.Usage.OutputTokens, res.Runtime.Round(1e6))
		}
	default:
		m, err := baselineByName(o.method, profile, kb, fdPairs, dirty, clean)
		if err != nil {
			return err
		}
		pred, err = m.Detect(dirty)
		if err != nil {
			return err
		}
	}

	flagged := 0
	for i := range pred {
		for j := range pred[i] {
			if pred[i][j] {
				flagged++
			}
		}
	}
	fmt.Printf("flagged %d of %d cells (%.2f%%)\n", flagged, dirty.NumCells(),
		100*float64(flagged)/float64(dirty.NumCells()))

	if clean != nil {
		m, err := eval.ComputeAgainst(pred, dirty, clean)
		if err != nil {
			return err
		}
		fmt.Printf("precision %.3f, recall %.3f, F1 %.3f\n", m.Precision, m.Recall, m.F1)
	}

	if o.repairOut != "" {
		_, repSpan := obs.Start(ctx, "repair.apply")
		repaired, fixes := repair.New(repair.Config{}).Apply(dirty, pred)
		repSpan.SetInt("changes", int64(len(fixes)))
		repSpan.End()
		if err := repaired.WriteCSVFile(o.repairOut); err != nil {
			return err
		}
		fmt.Printf("applied %d repairs, wrote repaired data to %s\n", len(fixes), o.repairOut)
		if o.repairLog != "" {
			if err := writeRepairLog(o.repairLog, dirty.Attrs, fixes); err != nil {
				return err
			}
			fmt.Println("wrote repair change log to", o.repairLog)
		}
		if clean != nil {
			before, _ := table.ErrorRate(dirty, clean)
			after, _ := table.ErrorRate(repaired, clean)
			fmt.Printf("error rate: %.4f -> %.4f\n", before, after)
		}
	}

	if o.outPath != "" {
		_, outSpan := obs.Start(ctx, "write_out")
		mask := table.New("mask", dirty.Attrs)
		for i := range pred {
			row := make([]string, len(pred[i]))
			for j, p := range pred[i] {
				if p {
					row[j] = "1"
				} else {
					row[j] = "0"
				}
			}
			mask.MustAppendRow(row)
		}
		err := mask.WriteCSVFile(o.outPath)
		outSpan.End()
		if err != nil {
			return err
		}
		fmt.Println("wrote mask to", o.outPath)
	}
	return nil
}

// writeRepairLog writes one JSON line per applied fix — the same fields,
// in the same order, as the service's repair change log, so a served
// repair and a CLI repair on the same artifact and bytes diff empty.
func writeRepairLog(path string, attrs []string, fixes []repair.Fix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	type change struct {
		Row      int    `json:"row"`
		Col      int    `json:"col"`
		Attr     string `json:"attr"`
		Old      string `json:"old"`
		New      string `json:"new"`
		Strategy string `json:"strategy"`
	}
	for _, fx := range fixes {
		if err := enc.Encode(change{
			Row: fx.Row, Col: fx.Col, Attr: attrs[fx.Col],
			Old: fx.Old, New: fx.New, Strategy: string(fx.Strategy),
		}); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// runStream scores rows chunk by chunk against a saved model artifact,
// writing one JSON verdict line per row to stdout — the CLI twin of the
// service's POST /v1/models/{id}/stream. The input decodes through the
// shared table.RowSource layer (CSV or NDJSON, -format or extension
// auto-detect) and its header may be a permutation or superset of the
// model schema. Verdicts are chunk-invariant, so -stream-chunk only trades
// latency. With -drift-threshold set, a tripped drift gauge refits the
// model in place on the rows accumulated so far (synchronously — this is a
// CLI, not a server); the successor scores all later chunks and is saved
// to -model-out when given.
func runStream(ctx context.Context, o runOpts) error {
	_, loadSpan := obs.Start(ctx, "model.load")
	m, err := model.LoadFile(o.modelIn)
	loadSpan.End()
	if err != nil {
		return err
	}
	m.SetParallelism(o.workers, o.shards)
	ss, err := zeroed.NewStreamScorer(m, zeroed.StreamConfig{
		DriftThreshold: o.driftThreshold,
		DriftMinRows:   o.driftMinRows,
	})
	if err != nil {
		return err
	}
	attrs := m.Attrs()

	var in io.Reader
	format := o.format
	switch {
	case o.dataset != "":
		gen, err := datasetGen(o.dataset)
		if err != nil {
			return err
		}
		b := gen(o.size, o.seed)
		var buf strings.Builder
		if err := b.Dirty.WriteCSV(&buf); err != nil {
			return err
		}
		in = strings.NewReader(buf.String())
		format = table.FormatCSV
	case o.dirtyPath == "" || o.dirtyPath == "-":
		in = os.Stdin
		if format == "" {
			format = table.FormatCSV
		}
	default:
		f, err := os.Open(o.dirtyPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		if format == "" {
			format = table.FormatForPath(o.dirtyPath)
		}
	}

	raw, err := table.NewSource(format, in)
	if err != nil {
		return err
	}
	src, mapping, err := table.MapSource(attrs, raw)
	if err != nil {
		return err
	}
	if len(mapping.Dropped) > 0 {
		fmt.Fprintf(os.Stderr, "zeroed: dropping %d stream columns outside the model schema: %s\n",
			len(mapping.Dropped), strings.Join(mapping.Dropped, ", "))
	}

	enc := json.NewEncoder(os.Stdout)
	type verdict struct {
		Row     int       `json:"row"`
		Version int       `json:"version"`
		Pred    []bool    `json:"pred"`
		Scores  []float64 `json:"scores"`
	}
	refits := 0
	rows, st, err := ss.ScoreSource(ctx, nil, src, o.streamChunk,
		func(start int, res *zeroed.Result, cst zeroed.ChunkStatus) error {
			for i := range res.Pred {
				if err := enc.Encode(verdict{Row: start + i, Version: cst.Version, Pred: res.Pred[i], Scores: res.Scores[i]}); err != nil {
					return err
				}
			}
			if cst.ShouldRefit && ss.BeginRefit() {
				fmt.Fprintf(os.Stderr, "zeroed: drift tripped at row %d (unseen %.3f, shift %.3f); refitting on %d accumulated rows\n",
					start+len(res.Pred), cst.Drift.UnseenRate, cst.Drift.Shift, cst.Drift.Rows)
				m2, err := ss.Refit(ctx, nil)
				if err != nil {
					fmt.Fprintf(os.Stderr, "zeroed: refit failed, keeping the current model: %v\n", err)
					ss.AbortRefit()
					return nil
				}
				if o.modelOut != "" {
					if err := model.SaveFile(o.modelOut, m2); err != nil {
						ss.AbortRefit()
						return err
					}
				}
				if err := ss.Install(m2); err != nil {
					return err
				}
				refits++
				l := m2.Lineage()
				fmt.Fprintf(os.Stderr, "zeroed: hot-swapped to model version %d (refit on %d rows)\n", l.Version, l.RefitRows)
			}
			return nil
		})
	if err != nil {
		return err
	}
	drift, version := ss.Gauges()
	if rows > 0 {
		drift, version = st.Drift, st.Version
	}
	fmt.Fprintf(os.Stderr, "zeroed: streamed %d rows, model version %d, %d refits (unseen %.3f, shift %.3f)\n",
		rows, version, refits, drift.UnseenRate, drift.Shift)
	return nil
}

// runBatch detects several inputs concurrently over one shared worker pool
// (zeroed.DetectBatch). The batch is either a replica count over -dataset
// (seeds seed..seed+n-1) or a comma-separated list of dirty CSV paths,
// each loaded through the chunked CSV reader.
func runBatch(ctx context.Context, o runOpts, profile llm.Profile) error {
	if strings.ToLower(o.method) != "zeroed" {
		return fmt.Errorf("-batch supports only -method zeroed")
	}
	var ds []*table.Dataset
	var cleans []*table.Dataset // parallel to ds; nil entries when unscored

	if n, err := strconv.Atoi(o.batch); err == nil {
		if o.dataset == "" {
			return fmt.Errorf("-batch with a replica count requires -dataset")
		}
		if n < 1 {
			return fmt.Errorf("-batch replica count must be >= 1, got %d", n)
		}
		gen, err := datasetGen(o.dataset)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			seed := o.seed + int64(i)
			b := gen(o.size, seed)
			// Distinguish the otherwise identically named replicas in the
			// per-dataset result lines.
			b.Dirty.Name = fmt.Sprintf("%s@seed%d", b.Name, seed)
			ds = append(ds, b.Dirty)
			cleans = append(cleans, b.Clean)
		}
		fmt.Printf("generated %d %s replicas (seeds %d..%d)\n", n, o.dataset, o.seed, o.seed+int64(n)-1)
	} else {
		if o.dataset != "" {
			return fmt.Errorf("-dataset cannot be combined with a -batch CSV list (use a replica count, e.g. -batch 4)")
		}
		for _, path := range strings.Split(o.batch, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			d, err := table.ReadFile(path, path, "")
			if err != nil {
				return err
			}
			ds = append(ds, d)
			cleans = append(cleans, nil)
		}
		if len(ds) == 0 {
			return fmt.Errorf("-batch lists no CSV paths")
		}
	}

	cfg := o.zeroedConfig()
	cfg.Profile = profile
	results, err := zeroed.New(cfg).DetectBatchContext(ctx, ds)
	if err != nil {
		return err
	}
	var usage llm.Usage
	for i, res := range results {
		flagged := 0
		for _, row := range res.Pred {
			for _, p := range row {
				if p {
					flagged++
				}
			}
		}
		line := fmt.Sprintf("%-24s %d rows, flagged %d of %d cells (%.2f%%), %v",
			ds[i].Name, ds[i].NumRows(), flagged, ds[i].NumCells(),
			100*float64(flagged)/float64(ds[i].NumCells()), res.Runtime.Round(1e6))
		if cleans[i] != nil {
			m, err := eval.ComputeAgainst(res.Pred, ds[i], cleans[i])
			if err != nil {
				return err
			}
			line += fmt.Sprintf(", P=%.3f R=%.3f F1=%.3f", m.Precision, m.Recall, m.F1)
		}
		fmt.Println(line)
		usage.Add(res.Usage)
	}
	fmt.Printf("batch of %d: %d LLM calls, %d input + %d output tokens\n",
		len(ds), usage.Calls, usage.InputTokens, usage.OutputTokens)
	return nil
}

// datasetGen resolves a built-in benchmark generator by name.
func datasetGen(name string) (datasets.Generator, error) {
	gen := datasets.ByName(name)
	if gen == nil {
		return nil, fmt.Errorf("unknown dataset %q (have %s)", name, strings.Join(datasets.Names(), ", "))
	}
	return gen, nil
}

func baselineByName(name string, profile llm.Profile, kb *knowledge.Base, fdPairs [][2]int, dirty, clean *table.Dataset) (baselines.Method, error) {
	var oracle baselines.LabelOracle
	if clean != nil {
		mask, err := table.ErrorMask(dirty, clean)
		if err != nil {
			return nil, err
		}
		oracle = func(row int) []bool { return mask[row] }
	}
	switch strings.ToLower(name) {
	case "dboost":
		return baselines.NewDBoost(), nil
	case "nadeef":
		return baselines.NewNadeef(fdPairs), nil
	case "katara":
		return baselines.NewKatara(kb), nil
	case "raha":
		if oracle == nil {
			return nil, fmt.Errorf("raha needs -clean (it consumes human labels)")
		}
		return baselines.NewRaha(oracle), nil
	case "activeclean":
		if oracle == nil {
			return nil, fmt.Errorf("activeclean needs -clean (it consumes human labels)")
		}
		return baselines.NewActiveClean(oracle), nil
	case "fmed", "fm_ed":
		return baselines.NewFMED(llm.NewClient(profile), kb), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
