// Command benchjson runs the scaled end-to-end pipeline benchmarks
// in-process and writes the results as machine-readable JSON — the perf
// trajectory file the repo tracks across PRs (BENCH_PR3.json and
// successors). For each benchmark it reports ns/op, B/op, and allocs/op,
// measured with runtime.MemStats around a timed loop (process-global, so
// allocations on worker goroutines are counted).
//
// Usage:
//
//	benchjson [-iters 3] [-out BENCH_PR6.json] [-baseline old.json] [-list]
//	          [-run regexp] [-cpuprofile default.pgo]
//
// -iters is the per-benchmark iteration count (1 = smoke mode, wired into
// CI). -baseline embeds another benchjson file's results under "baseline",
// so one file carries the before/after comparison. -list prints the
// benchmark names and exits. -run restricts to benchmarks matching the
// regexp, and -cpuprofile writes a pprof CPU profile covering the timed
// loops — together they regenerate the checked-in PGO profile
// (scripts/fitprofile.sh).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/datasets"
	"repro/internal/zeroed"
)

// Measurement is one benchmark's result in go-bench units.
type Measurement struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the on-disk shape of the trajectory file.
type File struct {
	Generated  string        `json:"generated"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []Measurement `json:"benchmarks"`
	// FitScoreRatio is fit-only ns/op divided by score-only ns/op when both
	// arms ran — the factor a registered model saves per scoring request
	// versus refitting the pipeline.
	FitScoreRatio float64 `json:"fit_score_ratio,omitempty"`
	// FitStages is the per-stage breakdown of the fit-only arm (ns/op and
	// B/op per pipeline stage, averaged over the arm's iterations), from
	// FitInfo.Stages — so each PR attacks the measured dominant stage.
	FitStages []StageMeasurement `json:"fit_stages,omitempty"`
	// Baseline carries the pre-change numbers the current run is compared
	// against (another benchjson run, or numbers parsed from
	// `go test -bench -benchmem` output).
	Baseline []Measurement `json:"baseline,omitempty"`
}

// StageMeasurement is one fit stage's share of the fit-only arm.
type StageMeasurement struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
}

// bench is one runnable benchmark: setup happens in the closure factory so
// dataset generation stays outside the timed loop.
type bench struct {
	name string
	run  func() func() error
}

// fitStages accumulates FitInfo.Stages across the fit-only arm's
// iterations; main averages and emits it as File.FitStages.
var fitStages struct {
	order []string
	ns    map[string]float64
	bytes map[string]float64
	iters int
}

func recordFitStages(stages []zeroed.StageTiming) {
	if fitStages.ns == nil {
		fitStages.ns = map[string]float64{}
		fitStages.bytes = map[string]float64{}
	}
	for _, st := range stages {
		if _, seen := fitStages.ns[st.Name]; !seen {
			fitStages.order = append(fitStages.order, st.Name)
		}
		fitStages.ns[st.Name] += st.Seconds * 1e9
		fitStages.bytes[st.Name] += float64(st.AllocBytes)
	}
	fitStages.iters++
}

// benches mirrors the repo's scaled pipeline benchmarks (bench_test.go):
// the end-to-end Hospital run most users care about, and the serial vs
// sharded Tax scoring workload of the Fig. 7b/8b sweeps, plus the dedup
// ablation so the cache's contribution stays visible.
func benches() []bench {
	detect := func(cfg zeroed.Config, gen func() *datasets.Bench) func() func() error {
		return func() func() error {
			b := gen()
			return func() error {
				_, err := zeroed.New(cfg).Detect(b.Dirty)
				return err
			}
		}
	}
	hospital := func() *datasets.Bench { return datasets.Hospital(500, 3) }
	tax := func() *datasets.Bench { return datasets.Tax(3000, 1) }
	return []bench{
		{"BenchmarkZeroEDPipeline", detect(zeroed.Config{Seed: 3}, hospital)},
		{"BenchmarkZeroEDPipeline/dedup-off", detect(zeroed.Config{Seed: 3, DisableScoreDedup: true}, hospital)},
		{"BenchmarkDetectSharded/serial", detect(zeroed.Config{Seed: 1, Workers: 1, Shards: 1}, tax)},
		{"BenchmarkDetectSharded/sharded", detect(zeroed.Config{Seed: 1}, tax)},
		// The fit/score split: fit-only measures the expensive phase alone;
		// score-only fits once in setup and then re-scores the same scaled
		// Tax dataset per iteration, the registered-model serving workload.
		// The ratio between the two is the File.FitScoreRatio the model
		// registry's economics rest on.
		{benchFitOnly, func() func() error {
			b := tax()
			cfg := zeroed.Config{Seed: 1}
			return func() error {
				m, err := zeroed.New(cfg).Fit(b.Dirty)
				if err != nil {
					return err
				}
				recordFitStages(m.Info().Stages)
				return nil
			}
		}},
		{benchScoreOnly, func() func() error {
			b := tax()
			m, err := zeroed.New(zeroed.Config{Seed: 1}).Fit(b.Dirty)
			if err != nil {
				fatal(err)
			}
			return func() error {
				_, err := m.Score(b.Dirty)
				return err
			}
		}},
	}
}

// Names of the fit/score arms, referenced when deriving the ratio.
const (
	benchFitOnly   = "BenchmarkFitScore/fit-only"
	benchScoreOnly = "BenchmarkFitScore/score-only"
)

func measure(name string, iters int, factory func() func() error) (Measurement, error) {
	fn := factory()
	// One untimed warmup would double the runtime of these second-scale
	// pipeline benches for little stability gain, so the timed loop starts
	// cold — matching `go test -benchtime=Nx` semantics.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return Measurement{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return Measurement{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
	}, nil
}

func main() {
	iters := flag.Int("iters", 3, "iterations per benchmark (1 = smoke mode)")
	out := flag.String("out", "BENCH_PR6.json", "output JSON path")
	baseline := flag.String("baseline", "", "optional benchjson file whose benchmarks embed as the baseline")
	note := flag.String("note", "", "optional free-form note stored in the file")
	list := flag.Bool("list", false, "list benchmark names and exit")
	run := flag.String("run", "", "only run benchmarks matching this regexp")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the timed loops to this path")
	flag.Parse()

	bs := benches()
	if *list {
		for _, b := range bs {
			fmt.Println(b.name)
		}
		return
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fatal(fmt.Errorf("bad -run regexp: %w", err))
		}
		kept := bs[:0]
		for _, b := range bs {
			if re.MatchString(b.name) {
				kept = append(kept, b)
			}
		}
		bs = kept
		if len(bs) == 0 {
			fatal(fmt.Errorf("-run %q matches no benchmarks", *run))
		}
	}

	f := File{Generated: time.Now().UTC().Format(time.RFC3339), Note: *note}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var prev File
		if err := json.Unmarshal(raw, &prev); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
		}
		f.Baseline = prev.Benchmarks
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	for _, b := range bs {
		fmt.Fprintf(os.Stderr, "running %s (%dx)...\n", b.name, *iters)
		m, err := measure(b.name, *iters, b.run)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %s\t%.0f ns/op\t%.0f B/op\t%.0f allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		f.Benchmarks = append(f.Benchmarks, m)
	}

	var fitNs, scoreNs float64
	for _, m := range f.Benchmarks {
		switch m.Name {
		case benchFitOnly:
			fitNs = m.NsPerOp
		case benchScoreOnly:
			scoreNs = m.NsPerOp
		}
	}
	if fitNs > 0 && scoreNs > 0 {
		f.FitScoreRatio = fitNs / scoreNs
		fmt.Fprintf(os.Stderr, "fit/score ratio: %.1fx (score-only reuses the fitted model)\n", f.FitScoreRatio)
	}
	if fitStages.iters > 0 {
		n := float64(fitStages.iters)
		for _, name := range fitStages.order {
			f.FitStages = append(f.FitStages, StageMeasurement{
				Name:       name,
				NsPerOp:    fitStages.ns[name] / n,
				BytesPerOp: fitStages.bytes[name] / n,
			})
			fmt.Fprintf(os.Stderr, "  fit stage %-12s\t%.0f ns/op\t%.0f B/op\n",
				name, fitStages.ns[name]/n, fitStages.bytes[name]/n)
		}
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
