// Sharding: the parallel detection engine end to end — a chunked CSV load
// with concurrent snapshot readers, then the same dataset detected three
// ways (serial; parallel workers + scoring shards; independent row-shard
// pipelines via DetectShards) to show which modes are bit-identical.
//
//	go run ./examples/sharding
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"repro/internal/datasets"
	"repro/internal/table"
	"repro/internal/zeroed"
)

func main() {
	// Render a benchmark to CSV, then load it back through the streaming
	// reader in 500-row chunks, snapshotting between chunks the way a
	// loader hands stable views to concurrent consumers.
	bench := datasets.Hospital(2000, 3)
	var csv strings.Builder
	if err := bench.Dirty.WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}
	stream, err := table.NewCSVStream("hospital", strings.NewReader(csv.String()))
	if err != nil {
		log.Fatal(err)
	}
	chunks := 0
	for {
		n, err := stream.ReadChunk(500)
		if n > 0 {
			chunks++
			snap := stream.Dataset().Snapshot()
			fmt.Printf("chunk %d: %d rows loaded, snapshot sees %d rows, col-0 dict %d entries\n",
				chunks, n, snap.NumRows(), snap.DictSize(0))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err) // malformed CSV mid-stream, not end of input
		}
	}
	d := stream.Dataset()

	score := func(res *zeroed.Result) string {
		var sum float64
		flagged := 0
		for i, row := range res.Scores {
			for j, s := range row {
				sum += s
				if res.Pred[i][j] {
					flagged++
				}
			}
		}
		return fmt.Sprintf("flagged %d cells, score sum %.17g, runtime %v",
			flagged, sum, res.Runtime.Round(1e6))
	}

	serial, err := zeroed.New(zeroed.Config{Seed: 3, Workers: 1, Shards: 1}).Detect(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serial:           ", score(serial))

	parallel, err := zeroed.New(zeroed.Config{Seed: 3, Workers: 8, Shards: 4}).Detect(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workers=8 shards=4:", score(parallel), "(bit-identical to serial)")

	indep, err := zeroed.New(zeroed.Config{Seed: 3}).DetectShards(d, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DetectShards(4):  ", score(indep), "(independent per-shard models)")
}
