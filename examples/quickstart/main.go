// Quickstart: detect errors in a small tabular dataset with ZeroED's
// default configuration and inspect what the pipeline did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/zeroed"
)

func main() {
	// Generate a small Hospital-style benchmark: a clean ground truth plus
	// a dirty copy with typos, pattern violations, outliers, and rule
	// violations injected (Table II rates).
	bench := datasets.Hospital(500, 42)
	rate, err := bench.ErrorRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples x %d attributes, %.2f%% of cells erroneous\n",
		bench.Dirty.NumRows(), bench.Dirty.NumCols(), 100*rate)

	// Run ZeroED with paper defaults: 5%% LLM label rate, 2 correlated
	// attributes, k-means sampling, the Qwen2.5-72b profile.
	detector := zeroed.New(zeroed.Config{Seed: 42})
	result, err := detector.Detect(bench.Dirty)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline: labeled %d sampled cells, trained on %d cells (%d augmented errors), %d criteria\n",
		result.SampledCells, result.TrainingCells, result.AugmentedErrs, result.CriteriaCount)
	fmt.Printf("LLM cost: %d calls, %d input + %d output tokens\n",
		result.Usage.Calls, result.Usage.InputTokens, result.Usage.OutputTokens)

	// Score against ground truth.
	metrics, err := eval.ComputeAgainst(result.Pred, bench.Dirty, bench.Clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precision %.3f, recall %.3f, F1 %.3f\n",
		metrics.Precision, metrics.Recall, metrics.F1)

	// Show a few detected errors with their ground truth.
	fmt.Println("\nsample detections:")
	shown := 0
	for i := 0; i < bench.Dirty.NumRows() && shown < 5; i++ {
		for j := 0; j < bench.Dirty.NumCols() && shown < 5; j++ {
			if result.Pred[i][j] && bench.Dirty.Value(i, j) != bench.Clean.Value(i, j) {
				fmt.Printf("  row %d, %s: %q (truth: %q)\n",
					i, bench.Dirty.Attrs[j], bench.Dirty.Value(i, j), bench.Clean.Value(i, j))
				shown++
			}
		}
	}
}
