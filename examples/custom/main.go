// Bring-your-own-data: write a CSV, load it with the table package, run
// ZeroED without any ground truth, and inspect the flagged cells. This is
// the deployment-shaped workflow: no labels, no rules, just a dirty file.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/repair"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// employeeCSV simulates a messy HR export: note the typo in row 3
// ("Bechxlor"), the missing gender in row 4, the outlier salary in row 5,
// and the rule violation in row 6 (Springfield placed in CA).
const employeeCSV = `Name,Gender,Education,Salary,City,State
Alice Johnson,F,Master,72000,Chicago,IL
Bob Smith,M,Bachelor,65000,Chicago,IL
Carol Brown,F,Bechxlor,64000,Springfield,IL
Dave Green,,Phd,88000,Chicago,IL
Erin White,F,Master,6400000,Springfield,IL
Frank Black,M,Bachelor,61000,Springfield,CA
`

func main() {
	// Write and re-read the CSV the way a real integration would.
	dir, err := os.MkdirTemp("", "zeroed-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "employees.csv")
	if err := os.WriteFile(path, []byte(employeeCSV), 0o644); err != nil {
		log.Fatal(err)
	}
	d, err := table.ReadCSVFile("employees", path)
	if err != nil {
		log.Fatal(err)
	}

	// Replicate the tiny table so the pipeline has distributional signal —
	// real deployments run on thousands of rows.
	big := table.New(d.Name, d.Attrs)
	for copyIdx := 0; copyIdx < 60; copyIdx++ {
		for i := 0; i < d.NumRows(); i++ {
			row := append([]string(nil), d.Row(i)...)
			if copyIdx > 0 {
				// Only the first block keeps the injected problems; the
				// rest provide the clean background distribution.
				switch i {
				case 2:
					row[2] = "Bachelor"
				case 3:
					row[1] = "F"
				case 4:
					row[3] = "64000"
				case 5:
					row[5] = "IL"
				}
			}
			big.MustAppendRow(row)
		}
	}

	res, err := zeroed.New(zeroed.Config{Seed: 3, LabelRate: 0.08}).Detect(big)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scanned %d cells; flagged:\n", big.NumCells())
	for i := 0; i < d.NumRows(); i++ { // report on the first (dirty) block
		for j := 0; j < big.NumCols(); j++ {
			if res.Pred[i][j] {
				fmt.Printf("  row %d, %-9s = %q\n", i, big.Attrs[j], big.Value(i, j))
			}
		}
	}
	fmt.Printf("\nLLM cost: %d calls, %d tokens total\n", res.Usage.Calls, res.Usage.Total())

	// Close the cleaning loop: propose repairs for the flagged cells using
	// dependencies and frequent values mined from the unflagged data.
	_, fixes := repair.New(repair.Config{}).Apply(big, res.Pred)
	fmt.Println("\nproposed repairs (first dirty block):")
	for _, f := range fixes {
		if f.Row < d.NumRows() {
			fmt.Printf("  row %d, %-9s: %q -> %q (%s)\n", f.Row, big.Attrs[f.Col], f.Old, f.New, f.Strategy)
		}
	}
}
