// Scalability: sweep Tax subset sizes and compare ZeroED's token cost and
// runtime against per-tuple FM_ED prompting — the Fig. 7b/8b experiment in
// miniature. ZeroED's LLM cost is driven by the sample (label rate), not
// the dataset, so its token curve flattens while FM_ED's climbs linearly.
//
//	go run ./examples/scalability [-sizes 2000,5000,10000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/llm"
	"repro/internal/zeroed"
)

func main() {
	sizesFlag := flag.String("sizes", "2000,5000,10000", "comma-separated Tax subset sizes")
	flag.Parse()
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad size %q: %v", s, err)
		}
		sizes = append(sizes, n)
	}

	fmt.Printf("%-8s | %-28s | %-28s | %s\n", "rows", "ZeroED tokens (in/out)", "FM_ED tokens (in/out)", "reduction")
	for _, n := range sizes {
		b := datasets.Tax(n, 11)

		res, err := zeroed.New(zeroed.Config{Seed: 11, LabelRate: 0.02}).Detect(b.Dirty)
		if err != nil {
			log.Fatal(err)
		}

		client := llm.NewClient(llm.Qwen72B)
		fmed := baselines.NewFMED(client, b.KB)
		if _, err := fmed.Detect(b.Dirty); err != nil {
			log.Fatal(err)
		}
		fu := fmed.Usage()

		// The paper's Fig. 7b/8b report runtime and tokens for Tax (its
		// 0.1% error rate makes F1 uninformative, and the paper does not
		// report it either).
		reduction := 1 - float64(res.Usage.Total())/float64(fu.Total())
		fmt.Printf("%-8d | %10d / %-12d | %10d / %-12d | %.1f%%  (ZeroED runtime %v)\n",
			n, res.Usage.InputTokens, res.Usage.OutputTokens,
			fu.InputTokens, fu.OutputTokens, 100*reduction, res.Runtime.Round(1e6))
	}
}
