// Fit once, score forever: fit a ZeroED model on a benchmark, persist it
// as a versioned artifact, load it back, and score fresh rows — including
// values the fit never saw — without re-running criteria induction,
// sampling, labeling, or training.
//
//	go run ./examples/scoring
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/zeroed"
)

func main() {
	bench := datasets.Hospital(400, 9)
	d := bench.Dirty
	fmt.Printf("Hospital: %d tuples x %d attributes\n", d.NumRows(), d.NumCols())

	// Fit: the expensive phase, run exactly once.
	m, err := zeroed.New(zeroed.Config{Seed: 9, LabelRate: 0.08}).Fit(d)
	if err != nil {
		log.Fatal(err)
	}
	info := m.Info()
	fmt.Printf("fit: %d criteria, %d training cells, %v\n",
		info.CriteriaCount, info.TrainingCells, info.FitRuntime.Round(1e6))

	// Persist the artifact and load it back — the round trip is
	// bit-preserving for scoring.
	path := filepath.Join(os.TempDir(), "hospital.zedm")
	if err := model.SaveFile(path, m); err != nil {
		log.Fatal(err)
	}
	loaded, err := model.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("artifact: %s (%d bytes)\n", path, fi.Size())

	// Score the fitting data with the loaded model: identical verdicts to
	// Detect, at a fraction of the cost.
	res, err := loaded.Score(d)
	if err != nil {
		log.Fatal(err)
	}
	flagged := 0
	for _, row := range res.Pred {
		for _, p := range row {
			if p {
				flagged++
			}
		}
	}
	fmt.Printf("score: flagged %d of %d cells in %v (%.0fx faster than the fit)\n",
		flagged, d.NumCells(), res.Runtime.Round(1e6),
		float64(info.FitRuntime)/float64(res.Runtime))

	// Score brand-new rows: seen values replay the memoized feature path,
	// unseen values take the defined cold path.
	fresh := [][]string{
		d.Row(0), // a tuple the model has seen
		d.Row(1),
	}
	fresh[1][0] = "a-provider-number-never-seen-before"
	rres, err := loaded.ScoreRows(fresh)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range rres.Pred {
		errs := 0
		for _, p := range row {
			if p {
				errs++
			}
		}
		fmt.Printf("fresh row %d: %d cells flagged\n", i, errs)
	}
}
