// Serving example: run the detection service in-process, then drive it the
// way an HTTP client would — submit a CSV upload as an async job, poll its
// lifecycle, fetch per-cell verdicts, and read the operational endpoints.
// Against a standalone server the same calls work verbatim; start one with
//
//	go run ./cmd/zeroedd -addr :8080
//
// and point the requests at it.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/datasets"
	"repro/internal/serve"
)

func main() {
	// An in-process service with the same defaults as cmd/zeroedd.
	svc := serve.New(serve.Config{Workers: 0, MaxConcurrentJobs: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The upload: a generated benchmark's dirty table, rendered as CSV —
	// exactly what a client would POST from disk.
	bench := datasets.Hospital(300, 11)
	var csv bytes.Buffer
	if err := bench.Dirty.WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}

	// 1. Submit. Query params mirror the cmd/zeroed flags; a fixed seed
	// makes the job's verdicts bit-identical to a CLI run on this file.
	resp, err := http.Post(ts.URL+"/v1/jobs?seed=11&name=hospital", "text/csv", &csv)
	if err != nil {
		log.Fatal(err)
	}
	var job serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted: id=%s state=%s rows=%d cols=%d\n", job.ID, job.State, job.Rows, job.Cols)

	// 2. Poll until terminal.
	for job.State == serve.JobQueued || job.State == serve.JobRunning {
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
	}
	fmt.Printf("finished:  state=%s runtime=%dms\n", job.State, job.RuntimeMS)
	if job.State != serve.JobDone {
		log.Fatalf("job ended %s: %s", job.State, job.Error)
	}

	// 3. Fetch the verdicts.
	r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var res serve.JobResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		log.Fatal(err)
	}
	r.Body.Close()
	fmt.Printf("verdicts:  flagged %d of %d cells (%.2f%%), %d criteria, %d LLM calls\n",
		res.Flagged, res.Rows*len(res.Attrs),
		100*float64(res.Flagged)/float64(res.Rows*len(res.Attrs)),
		res.CriteriaCount, res.Usage.Calls)

	// 4. Operational endpoints.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if path == "/healthz" {
			fmt.Printf("healthz:   %s", body)
		} else {
			fmt.Printf("metrics:   %d bytes of Prometheus text\n", len(body))
		}
	}
}
