// Performance: the flat numeric core in action. Runs detection with the
// scoring dedup cache on and off, verifies the two produce bit-identical
// scores (the cache's exactness contract), and shows the low-level tile
// APIs — feature.RowFeaturesInto + nn.PredictInto — that the fused scoring
// path is built from, for anyone embedding the extractor/detector pair
// directly.
//
//	go run ./examples/performance [-rows 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/datasets"
	"repro/internal/feature"
	"repro/internal/nn"
	"repro/internal/zeroed"
)

func main() {
	rows := flag.Int("rows", 2000, "Hospital benchmark size")
	flag.Parse()
	b := datasets.Hospital(*rows, 7)

	// 1. End-to-end: dedup cache on (default) vs off. Same bits, less work.
	on, err := zeroed.New(zeroed.Config{Seed: 7}).Detect(b.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	off, err := zeroed.New(zeroed.Config{Seed: 7, DisableScoreDedup: true}).Detect(b.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	for i := range on.Scores {
		for j := range on.Scores[i] {
			if math.Float64bits(on.Scores[i][j]) != math.Float64bits(off.Scores[i][j]) {
				log.Fatalf("score (%d,%d) differs between dedup on and off", i, j)
			}
		}
	}
	fmt.Printf("dedup on:  %v\ndedup off: %v\nall %d cell scores bit-identical\n",
		on.Runtime.Round(1e6), off.Runtime.Round(1e6), len(on.Scores)*len(on.Scores[0]))

	// 2. The tile contracts underneath: one flat row-major block per row of
	// features, one batched forward pass, no per-cell allocation.
	ext := feature.NewExtractor(b.Dirty, feature.DefaultConfig())
	m, dim := b.Dirty.NumCols(), ext.Dim()
	tile := make([]float64, m*dim) // reused for every row
	scores := make([]float64, m)

	mlp := nn.New(dim, nn.Config{Epochs: 2, Seed: 1})
	X := [][]float64{make([]float64, dim), make([]float64, dim)}
	X[1][0] = 1
	if _, err := mlp.Train(X, []float64{0, 1}); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		ext.RowFeaturesInto(i, tile)     // all m cells featurized, bases computed once
		mlp.PredictInto(tile, m, scores) // batched inference over the tile
		fmt.Printf("row %d scores: %.3f...\n", i, scores[:min(3, m)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
