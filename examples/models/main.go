// Model comparison: run ZeroED with every simulated LLM profile on one
// benchmark — Table V in miniature. Stronger profiles write better
// criteria, exploit more of the distribution analysis, and label with less
// noise; the GPT-4o-mini profile's high false-positive rate sinks its
// precision, as the paper observed.
//
//	go run ./examples/models
package main

import (
	"fmt"
	"log"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/zeroed"
)

func main() {
	bench := datasets.Beers(800, 17)
	rate, err := bench.ErrorRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Beers: %d tuples x %d attributes, %.1f%% of cells erroneous\n\n",
		bench.Dirty.NumRows(), bench.Dirty.NumCols(), 100*rate)
	fmt.Printf("%-14s | %9s %9s %9s | %s\n", "model", "precision", "recall", "F1", "tokens")

	for _, p := range llm.Profiles() {
		res, err := zeroed.New(zeroed.Config{Seed: 17, Profile: p}).Detect(bench.Dirty)
		if err != nil {
			log.Fatal(err)
		}
		m, err := eval.ComputeAgainst(res.Pred, bench.Dirty, bench.Clean)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s | %9.3f %9.3f %9.3f | %d\n",
			p.Name, m.Precision, m.Recall, m.F1, res.Usage.Total())
	}
}
