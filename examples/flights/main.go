// Flights cleaning workflow: the paper's dirtiest benchmark (34.5% cell
// errors, multi-source flight times). This example runs ZeroED, breaks the
// results down per error type (the Fig. 11 view), and compares against the
// per-tuple FM_ED baseline on both quality and token cost.
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/errgen"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/zeroed"
)

func main() {
	bench := datasets.Flights(1200, 7)
	rate, err := bench.ErrorRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Flights: %d tuples x %d attributes, %.1f%% of cells erroneous\n",
		bench.Dirty.NumRows(), bench.Dirty.NumCols(), 100*rate)

	// ZeroED.
	res, err := zeroed.New(zeroed.Config{Seed: 7}).Detect(bench.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	zm, err := eval.ComputeAgainst(res.Pred, bench.Dirty, bench.Clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZeroED   : P=%.3f R=%.3f F1=%.3f  (%d tokens)\n",
		zm.Precision, zm.Recall, zm.F1, res.Usage.Total())

	// FM_ED: one LLM prompt per tuple.
	client := llm.NewClient(llm.Qwen72B)
	fmed := baselines.NewFMED(client, bench.KB)
	fpred, err := fmed.Detect(bench.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	fm, err := eval.ComputeAgainst(fpred, bench.Dirty, bench.Clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FM_ED    : P=%.3f R=%.3f F1=%.3f  (%d tokens)\n",
		fm.Precision, fm.Recall, fm.F1, fmed.Usage().Total())
	if fu := fmed.Usage().Total(); fu > 0 {
		fmt.Printf("token cost: ZeroED uses %.0f%% of FM_ED's budget\n",
			100*float64(res.Usage.Total())/float64(fu))
	}

	// Per-error-type breakdown for ZeroED (recall per type, shared
	// precision), the lens of the paper's Fig. 11.
	fmt.Println("\nZeroED recall by error type:")
	perType, err := eval.PerType(res.Pred, bench.Dirty, bench.Clean)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range errgen.AllTypes() {
		if m, ok := perType[t]; ok {
			fmt.Printf("  %-3s recall=%.3f (%d of %d caught)\n", t, m.Recall, m.TP, m.TP+m.FN)
		}
	}
}
