// Package repro is a from-scratch Go reproduction of "ZeroED: Hybrid
// Zero-Shot Error Detection Through Large Language Model Reasoning"
// (Ni et al., ICDE 2025, arXiv:2504.05345).
//
// The module root carries the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and the runnable entry points under cmd/ and examples/.
//
// Entry points: cmd/zeroed (one-shot CLI detection), cmd/zeroedd (the
// HTTP/JSON detection service over internal/serve), cmd/experiments
// (paper tables and figures), cmd/datagen (benchmark CSV export), and
// cmd/benchjson (scaling benchmarks as JSON). Every path reachable from
// untrusted input — CSV parsing, schema arity, degenerate dataset
// shapes, non-finite training values — reports errors instead of
// panicking, so the service can face adversarial uploads.
package repro
