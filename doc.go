// Package repro is a from-scratch Go reproduction of "ZeroED: Hybrid
// Zero-Shot Error Detection Through Large Language Model Reasoning"
// (Ni et al., ICDE 2025, arXiv:2504.05345).
//
// The module root carries the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and the runnable entry points under cmd/ and examples/.
package repro
