// Package repro is a from-scratch Go reproduction of "ZeroED: Hybrid
// Zero-Shot Error Detection Through Large Language Model Reasoning"
// (Ni et al., ICDE 2025, arXiv:2504.05345).
//
// The module root carries the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and the runnable entry points under cmd/ and examples/.
//
// Entry points: cmd/zeroed (one-shot CLI detection, plus -model-out /
// -model-in for producing and consuming fitted-model artifacts),
// cmd/zeroedd (the HTTP/JSON detection service over internal/serve,
// including the /v1/models registry for fit-once/score-forever online
// scoring), cmd/experiments (paper tables and figures), cmd/datagen
// (benchmark CSV export), and cmd/benchjson (scaling benchmarks as JSON).
//
// The pipeline itself is split across internal/zeroed (Fit: the expensive
// induction/labeling/training phase, returning a reusable Model; Score:
// the cheap featurize-and-infer phase, with Detect ≡ Fit+Score bit-for-
// bit) and internal/model (versioned, checksummed binary artifacts whose
// save→load→score round trip is bit-identical). Every path reachable from
// untrusted input — CSV parsing, schema arity, degenerate dataset
// shapes, non-finite training values, corrupt model artifacts — reports
// errors instead of panicking, so the service can face adversarial
// uploads.
package repro
