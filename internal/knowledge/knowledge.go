// Package knowledge models external world knowledge: the curated knowledge
// bases the KATARA baseline consults, and the pre-trained world knowledge a
// real LLM brings to per-tuple error detection (the FM_ED baseline). In
// this offline reproduction both are served by the same structure: a set of
// typed entity dictionaries populated by the dataset generators'
// vocabularies. A real LLM "knows" US states, city names, and beer styles;
// here that knowledge is made explicit and injectable, which also lets
// experiments model KATARA's coverage gaps (the paper notes KATARA finds
// nothing on Flights, Beers, and Rayyan for lack of relevant KBs).
package knowledge

import "strings"

// Base is a collection of entity dictionaries keyed by semantic type
// (e.g. "city", "state", "measure"). Lookups are case-insensitive.
type Base struct {
	types map[string]map[string]bool
}

// NewBase creates an empty knowledge base.
func NewBase() *Base {
	return &Base{types: make(map[string]map[string]bool)}
}

// AddEntities registers values under a semantic type.
func (b *Base) AddEntities(typ string, values ...string) {
	set := b.types[typ]
	if set == nil {
		set = make(map[string]bool)
		b.types[typ] = set
	}
	for _, v := range values {
		set[strings.ToLower(strings.TrimSpace(v))] = true
	}
}

// HasType reports whether the base covers a semantic type at all.
func (b *Base) HasType(typ string) bool { return len(b.types[typ]) > 0 }

// Contains reports whether value is a known entity of the given type.
func (b *Base) Contains(typ, value string) bool {
	return b.types[typ][strings.ToLower(strings.TrimSpace(value))]
}

// Entities returns the entity set for a type (shared map; treat as
// read-only).
func (b *Base) Entities(typ string) map[string]bool { return b.types[typ] }

// Types returns the number of registered semantic types.
func (b *Base) Types() int { return len(b.types) }

// CoverageFor reports, for a column of values, the fraction recognized as
// entities of the given type. KATARA uses this to decide whether a KB type
// matches a column.
func (b *Base) CoverageFor(typ string, values []string) float64 {
	set := b.types[typ]
	if len(set) == 0 || len(values) == 0 {
		return 0
	}
	hits := 0
	for _, v := range values {
		if set[strings.ToLower(strings.TrimSpace(v))] {
			hits++
		}
	}
	return float64(hits) / float64(len(values))
}

// BestType returns the semantic type with the highest coverage for the
// column, with its coverage. Returns ("", 0) on an empty base.
func (b *Base) BestType(values []string) (string, float64) {
	bestT, bestC := "", 0.0
	for typ := range b.types {
		if c := b.CoverageFor(typ, values); c > bestC || (c == bestC && typ < bestT && c > 0) {
			bestT, bestC = typ, c
		}
	}
	return bestT, bestC
}
