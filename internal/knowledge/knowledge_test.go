package knowledge

import "testing"

func TestAddAndContains(t *testing.T) {
	b := NewBase()
	b.AddEntities("City", "Chicago", " Boston ", "DENVER")
	if !b.Contains("City", "chicago") {
		t.Error("lookup must be case-insensitive")
	}
	if !b.Contains("City", "Boston") {
		t.Error("entities must be trimmed on insert")
	}
	if !b.Contains("City", "denver") {
		t.Error("entities must be lowercased on insert")
	}
	if b.Contains("City", "Paris") {
		t.Error("unknown entity must not be contained")
	}
	if b.Contains("State", "Chicago") {
		t.Error("wrong type must not match")
	}
}

func TestHasTypeAndTypes(t *testing.T) {
	b := NewBase()
	if b.HasType("City") || b.Types() != 0 {
		t.Error("empty base has no types")
	}
	b.AddEntities("City", "Chicago")
	b.AddEntities("State", "IL")
	if !b.HasType("City") || b.Types() != 2 {
		t.Errorf("Types() = %d, want 2", b.Types())
	}
}

func TestCoverageFor(t *testing.T) {
	b := NewBase()
	b.AddEntities("City", "Chicago", "Boston")
	col := []string{"Chicago", "Boston", "Chicagq", "Boston"}
	if got := b.CoverageFor("City", col); got != 0.75 {
		t.Errorf("coverage = %v, want 0.75", got)
	}
	if got := b.CoverageFor("State", col); got != 0 {
		t.Errorf("coverage for unknown type = %v, want 0", got)
	}
	if got := b.CoverageFor("City", nil); got != 0 {
		t.Errorf("coverage of empty column = %v, want 0", got)
	}
}

func TestBestType(t *testing.T) {
	b := NewBase()
	b.AddEntities("City", "Chicago", "Boston")
	b.AddEntities("State", "IL", "MA")
	typ, cov := b.BestType([]string{"Chicago", "Boston", "IL"})
	if typ != "City" || cov < 0.6 {
		t.Errorf("BestType = %s (%.2f), want City", typ, cov)
	}
	typ, cov = NewBase().BestType([]string{"x"})
	if typ != "" || cov != 0 {
		t.Error("empty base BestType should be empty")
	}
}

func TestEntitiesAccessor(t *testing.T) {
	b := NewBase()
	b.AddEntities("City", "Chicago")
	if len(b.Entities("City")) != 1 {
		t.Error("Entities should expose the set")
	}
	if b.Entities("missing") != nil {
		t.Error("Entities for unknown type should be nil")
	}
}
