// Package errgen is the error-generation substrate: it injects the five
// error types of the paper's taxonomy (missing values, typos, pattern
// violations, outliers, rule violations) into clean datasets, standing in
// for the BART error generator and the BigDaMa error-generator tooling the
// paper uses for Billionaire and Tax. It also implements the paper's
// Section IV-A rules for classifying an observed error's type, which the
// per-error-type evaluation (Fig. 11) requires.
package errgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// Type enumerates the five error categories.
type Type string

// The error taxonomy of Section II.
const (
	Missing          Type = "MV"
	Typo             Type = "T"
	PatternViolation Type = "PV"
	Outlier          Type = "O"
	RuleViolation    Type = "RV"
)

// AllTypes lists the taxonomy in the order the paper's Fig. 11 reports it.
func AllTypes() []Type {
	return []Type{Typo, Missing, PatternViolation, RuleViolation, Outlier}
}

// Spec configures injection: per-type cell rates (fraction of all cells)
// and the columns eligible for each type. Empty eligible slices mean "any
// suitable column".
type Spec struct {
	Rates map[Type]float64
	// NumericCols restricts outlier injection; when empty, numeric columns
	// are auto-detected.
	NumericCols []int
	// FDPairs lists (determinant, dependent) column pairs for rule
	// violations; when empty, strong FDs are auto-mined.
	FDPairs [][2]int
	Seed    int64
}

// Injection records one injected error.
type Injection struct {
	Row, Col int
	Type     Type
	Clean    string
	Dirty    string
}

// Inject corrupts a copy of clean according to spec and returns the dirty
// dataset plus the injection log. Cells are corrupted at most once.
func Inject(clean *table.Dataset, spec Spec) (*table.Dataset, []Injection) {
	dirty := clean.Clone()
	rng := rand.New(rand.NewSource(spec.Seed))
	touched := make(map[[2]int]bool)
	var log []Injection

	total := clean.NumCells()
	pick := func(eligibleCols []int) ([2]int, bool) {
		for attempt := 0; attempt < 200; attempt++ {
			var col int
			if len(eligibleCols) > 0 {
				col = eligibleCols[rng.Intn(len(eligibleCols))]
			} else {
				col = rng.Intn(clean.NumCols())
			}
			row := rng.Intn(clean.NumRows())
			key := [2]int{row, col}
			if !touched[key] && !text.IsNullLike(clean.Value(row, col)) {
				return key, true
			}
		}
		return [2]int{}, false
	}

	apply := func(t Type, cell [2]int, v string) {
		touched[cell] = true
		log = append(log, Injection{Row: cell[0], Col: cell[1], Type: t,
			Clean: clean.Value(cell[0], cell[1]), Dirty: v})
		dirty.SetValue(cell[0], cell[1], v)
	}

	// Missing values.
	count := int(spec.Rates[Missing] * float64(total))
	placeholders := []string{"", "", "", "NULL", "N/A", "-"}
	for i := 0; i < count; i++ {
		if cell, ok := pick(nil); ok {
			apply(Missing, cell, placeholders[rng.Intn(len(placeholders))])
		}
	}

	// Typos: keyboard-plausible edits within distance <= 2.
	count = int(spec.Rates[Typo] * float64(total))
	for i := 0; i < count; i++ {
		cell, ok := pick(nil)
		if !ok {
			continue
		}
		src := clean.Value(cell[0], cell[1])
		v := llm.Typo(rng, src)
		if v == src || text.IsNullLike(v) {
			continue
		}
		apply(Typo, cell, v)
	}

	// Pattern violations: format mangling that changes the value's shape.
	count = int(spec.Rates[PatternViolation] * float64(total))
	for i := 0; i < count; i++ {
		cell, ok := pick(nil)
		if !ok {
			continue
		}
		src := clean.Value(cell[0], cell[1])
		v := llm.MangleFormat(rng, src)
		if v == src || text.IsNullLike(v) {
			continue
		}
		apply(PatternViolation, cell, v)
	}

	// Outliers: scale numeric values far out of distribution.
	numCols := spec.NumericCols
	if len(numCols) == 0 {
		for j := 0; j < clean.NumCols(); j++ {
			if text.IsNumericColumn(clean.Column(j), 0.9) {
				numCols = append(numCols, j)
			}
		}
	}
	count = int(spec.Rates[Outlier] * float64(total))
	if len(numCols) > 0 {
		for i := 0; i < count; i++ {
			cell, ok := pick(numCols)
			if !ok {
				continue
			}
			f, okf := text.ParseFloat(clean.Value(cell[0], cell[1]))
			if !okf {
				continue
			}
			scale := []float64{100, 1000, 0.001, -10}[rng.Intn(4)]
			apply(Outlier, cell, fmt.Sprintf("%g", f*scale))
		}
	}

	// Rule violations: replace a dependent value with a *valid* value of
	// another determinant group, breaking the dependency without creating
	// a pattern anomaly.
	pairs := spec.FDPairs
	if len(pairs) == 0 {
		pairs = mineFDPairs(clean)
	}
	count = int(spec.Rates[RuleViolation] * float64(total))
	if len(pairs) > 0 {
		for i := 0; i < count; i++ {
			p := pairs[rng.Intn(len(pairs))]
			det, dep := p[0], p[1]
			cell, ok := pick([]int{dep})
			if !ok {
				continue
			}
			fd := stats.FindFD(clean, det, dep)
			cur := clean.Value(cell[0], cell[1])
			// Choose a legitimate value from a different group,
			// deterministically (sorted candidates, seeded pick).
			var alts []string
			seen := map[string]bool{}
			for _, v := range fd.Mapping {
				if v != cur && !seen[v] {
					seen[v] = true
					alts = append(alts, v)
				}
			}
			if len(alts) == 0 {
				continue
			}
			sortStringsInPlace(alts)
			apply(RuleViolation, cell, alts[rng.Intn(len(alts))])
		}
	}

	return dirty, log
}

// mineFDPairs finds strongly dependent attribute pairs in the clean data
// for rule-violation injection.
func mineFDPairs(d *table.Dataset) [][2]int {
	var out [][2]int
	for det := 0; det < d.NumCols(); det++ {
		for dep := 0; dep < d.NumCols(); dep++ {
			if det == dep {
				continue
			}
			fd := stats.FindFD(d, det, dep)
			if fd.Support >= 0.98 && len(fd.Mapping) >= 2 {
				// Skip near-key determinants: they trivially determine
				// everything.
				if float64(d.DistinctCount(det)) < 0.5*float64(d.NumRows()) {
					out = append(out, [2]int{det, dep})
				}
			}
		}
	}
	return out
}

// Classify assigns an error type to an observed (dirty, clean) pair using
// the paper's Section IV-A rules: MV for explicit/implicit placeholders;
// T for errors within edit distance <= 3 of the clean value; PV for error
// formats unseen in the clean column; RV for values that break a mined
// dependency; O otherwise (rare deviations).
type Classifier struct {
	clean         *table.Dataset
	cleanPatterns []map[string]bool // L3 patterns per column
	cleanValues   []map[string]bool
	cleanClasses  []map[byte]bool // character classes present per column
	numericCol    []bool
	fds           []stats.FDCandidate
}

func charClass(r rune) byte {
	switch {
	case r >= '0' && r <= '9':
		return 'D'
	case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		return 'L'
	case r == ' ' || r == '\t':
		return 'W'
	default:
		return 'S'
	}
}

// NewClassifier prepares pattern tables and FD evidence from the clean data.
func NewClassifier(clean *table.Dataset) *Classifier {
	c := &Classifier{clean: clean}
	c.cleanPatterns = make([]map[string]bool, clean.NumCols())
	c.cleanValues = make([]map[string]bool, clean.NumCols())
	c.cleanClasses = make([]map[byte]bool, clean.NumCols())
	c.numericCol = make([]bool, clean.NumCols())
	for j := 0; j < clean.NumCols(); j++ {
		pats := map[string]bool{}
		vals := map[string]bool{}
		classes := map[byte]bool{}
		// Set-valued profiles depend only on the distinct values: one pass
		// over the column's intern pool instead of every row.
		for _, v := range clean.Dict(j) {
			pats[text.Generalize(v, text.L3)] = true
			vals[v] = true
			for _, r := range v {
				classes[charClass(r)] = true
			}
		}
		c.cleanPatterns[j] = pats
		c.cleanValues[j] = vals
		c.cleanClasses[j] = classes
		c.numericCol[j] = text.IsNumericColumn(clean.Column(j), 0.9)
	}
	for _, p := range mineFDPairs(clean) {
		c.fds = append(c.fds, stats.FindFD(clean, p[0], p[1]))
	}
	return c
}

// Classify labels one erroneous cell. The dirty row supplies determinant
// context for rule-violation checks. Rules follow Section IV-A with a
// fixed precedence: MV, then T (edit distance <= 3), then RV (a legitimate
// value breaking a dependency), then numeric outliers, then PV (formats
// unseen in clean data), defaulting to O.
func (c *Classifier) Classify(dirtyRow []string, row, col int) Type {
	dirty := dirtyRow[col]
	cleanV := c.clean.Value(row, col)
	if text.IsNullLike(dirty) {
		return Missing
	}
	// Large numeric magnitude shifts are outliers even when the edit
	// distance is small ("50000" -> "50").
	if c.numericCol[col] {
		df, dok := text.ParseFloat(dirty)
		cf, cok := text.ParseFloat(cleanV)
		if dok && cok && cf != 0 {
			ratio := df / cf
			if ratio < 0 || ratio > 5 || ratio < 0.2 {
				return Outlier
			}
		}
	}
	// Characters from classes the clean column never uses signal a format
	// violation regardless of edit distance ("Kenya" -> "Kenya!!").
	for _, r := range dirty {
		if !c.cleanClasses[col][charClass(r)] {
			return PatternViolation
		}
	}
	if d := text.Levenshtein(dirty, cleanV); d > 0 && d <= 3 {
		return Typo
	}
	if c.cleanValues[col][dirty] {
		for _, fd := range c.fds {
			if fd.Dep != col {
				continue
			}
			det := dirtyRow[fd.Det]
			if want, ok := fd.Mapping[det]; ok && dirty != want {
				return RuleViolation
			}
		}
	}
	if c.numericCol[col] {
		if _, ok := text.ParseFloat(dirty); ok {
			return Outlier
		}
	}
	if !c.cleanPatterns[col][text.Generalize(dirty, text.L3)] {
		return PatternViolation
	}
	return Outlier
}

// TypeRates summarizes an injection log as per-type cell rates, matching
// Table II's reporting format.
func TypeRates(log []Injection, totalCells int) map[Type]float64 {
	out := map[Type]float64{}
	if totalCells == 0 {
		return out
	}
	for _, inj := range log {
		out[inj.Type] += 1.0 / float64(totalCells)
	}
	return out
}

// SingleTypeSpec builds a Spec that injects only one error type at the
// given rate — the Fig. 11 per-error-type scenarios.
func SingleTypeSpec(t Type, rate float64, seed int64) Spec {
	return Spec{Rates: map[Type]float64{t: rate}, Seed: seed}
}

// MixedSpec builds a Spec with at least three error types (the paper's
// "ME" mixed scenario).
func MixedSpec(rate float64, seed int64) Spec {
	per := rate / 4
	return Spec{Rates: map[Type]float64{
		Typo: per, Missing: per, PatternViolation: per, Outlier: per,
	}, Seed: seed}
}

// FormatLog renders a short human-readable injection summary.
func FormatLog(log []Injection, limit int) string {
	var b strings.Builder
	for i, inj := range log {
		if i >= limit {
			fmt.Fprintf(&b, "... and %d more\n", len(log)-limit)
			break
		}
		fmt.Fprintf(&b, "(%d,%d) %s: %q -> %q\n", inj.Row, inj.Col, inj.Type, inj.Clean, inj.Dirty)
	}
	return b.String()
}

func sortStringsInPlace(xs []string) { sort.Strings(xs) }
