package errgen

import (
	"testing"

	"repro/internal/table"
	"repro/internal/text"
)

// cleanData builds a clean dataset with a categorical column, a numeric
// column, and an FD (Country -> Capital).
func cleanData(n int) *table.Dataset {
	d := table.New("geo", []string{"Country", "Capital", "Population"})
	countries := [][2]string{{"France", "Paris"}, {"Japan", "Tokyo"}, {"Brazil", "Brasilia"}, {"Kenya", "Nairobi"}}
	for i := 0; i < n; i++ {
		c := countries[i%len(countries)]
		d.MustAppendRow([]string{c[0], c[1], "50000"})
	}
	return d
}

func TestInjectRates(t *testing.T) {
	clean := cleanData(400)
	spec := Spec{Rates: map[Type]float64{
		Missing: 0.02, Typo: 0.02, PatternViolation: 0.02, Outlier: 0.02, RuleViolation: 0.02,
	}, Seed: 1}
	dirty, log := Inject(clean, spec)
	rate, err := table.ErrorRate(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.05 || rate > 0.12 {
		t.Errorf("overall error rate = %v, want ~0.10", rate)
	}
	byType := map[Type]int{}
	for _, inj := range log {
		byType[inj.Type]++
		if dirty.Value(inj.Row, inj.Col) != inj.Dirty {
			t.Error("log dirty value mismatch")
		}
		if clean.Value(inj.Row, inj.Col) != inj.Clean {
			t.Error("log clean value mismatch")
		}
	}
	for _, typ := range AllTypes() {
		if byType[typ] == 0 {
			t.Errorf("no %s errors injected", typ)
		}
	}
}

func TestInjectDoesNotTouchClean(t *testing.T) {
	clean := cleanData(100)
	before := clean.Clone()
	Inject(clean, MixedSpec(0.1, 2))
	for i := 0; i < clean.NumRows(); i++ {
		for j := 0; j < clean.NumCols(); j++ {
			if clean.Value(i, j) != before.Value(i, j) {
				t.Fatal("Inject mutated the clean input")
			}
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	clean := cleanData(200)
	spec := MixedSpec(0.08, 42)
	a, la := Inject(clean, spec)
	b, lb := Inject(clean, spec)
	if len(la) != len(lb) {
		t.Fatal("same seed must give same injection count")
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumCols(); j++ {
			if a.Value(i, j) != b.Value(i, j) {
				t.Fatal("same seed must give identical dirty data")
			}
		}
	}
}

func TestInjectionLogMatchesMask(t *testing.T) {
	clean := cleanData(300)
	dirty, log := Inject(clean, MixedSpec(0.1, 3))
	mask, _ := table.ErrorMask(dirty, clean)
	for _, inj := range log {
		if !mask[inj.Row][inj.Col] {
			t.Errorf("logged injection at (%d,%d) not in error mask", inj.Row, inj.Col)
		}
	}
	n := 0
	for i := range mask {
		for j := range mask[i] {
			if mask[i][j] {
				n++
			}
		}
	}
	if n != len(log) {
		t.Errorf("mask has %d errors, log has %d", n, len(log))
	}
}

func TestRuleViolationUsesValidValues(t *testing.T) {
	clean := cleanData(200)
	spec := Spec{Rates: map[Type]float64{RuleViolation: 0.05},
		FDPairs: [][2]int{{0, 1}}, Seed: 4}
	_, log := Inject(clean, spec)
	if len(log) == 0 {
		t.Fatal("no rule violations injected despite strong FD")
	}
	valid := map[string]bool{"Paris": true, "Tokyo": true, "Brasilia": true, "Nairobi": true}
	for _, inj := range log {
		if inj.Type != RuleViolation {
			continue
		}
		if !valid[inj.Dirty] {
			t.Errorf("rule violation value %q is not a legitimate domain value", inj.Dirty)
		}
		if inj.Dirty == inj.Clean {
			t.Error("rule violation must change the value")
		}
	}
}

func TestOutliersOnlyInNumericColumns(t *testing.T) {
	clean := cleanData(200)
	spec := Spec{Rates: map[Type]float64{Outlier: 0.05}, Seed: 5}
	_, log := Inject(clean, spec)
	if len(log) == 0 {
		t.Fatal("no outliers injected")
	}
	for _, inj := range log {
		if inj.Col != 2 {
			t.Errorf("outlier injected into non-numeric column %d", inj.Col)
		}
		if _, ok := text.ParseFloat(inj.Dirty); !ok {
			t.Errorf("outlier %q is not numeric", inj.Dirty)
		}
	}
}

func TestTypoEditDistanceBound(t *testing.T) {
	clean := cleanData(300)
	spec := Spec{Rates: map[Type]float64{Typo: 0.05}, Seed: 6}
	_, log := Inject(clean, spec)
	for _, inj := range log {
		if d := text.Levenshtein(inj.Clean, inj.Dirty); d < 1 || d > 3 {
			t.Errorf("typo %q -> %q has edit distance %d, want 1..3", inj.Clean, inj.Dirty, d)
		}
	}
}

func TestClassifier(t *testing.T) {
	clean := cleanData(200)
	cls := NewClassifier(clean)
	spec := Spec{Rates: map[Type]float64{
		Missing: 0.02, Typo: 0.02, PatternViolation: 0.02, Outlier: 0.02, RuleViolation: 0.02,
	}, FDPairs: [][2]int{{0, 1}}, Seed: 7}
	dirty, log := Inject(clean, spec)
	correct, total := 0, 0
	for _, inj := range log {
		got := cls.Classify(dirty.Row(inj.Row), inj.Row, inj.Col)
		total++
		if got == inj.Type {
			correct++
		}
	}
	// Classification is heuristic (the paper's rules are too); expect
	// strong but not perfect agreement with the injector's intent.
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Errorf("classifier agreement = %v, want >= 0.7 (total %d)", acc, total)
	}
}

func TestClassifyMissing(t *testing.T) {
	clean := cleanData(50)
	cls := NewClassifier(clean)
	row := append([]string(nil), clean.Row(0)...)
	row[1] = "NULL"
	if got := cls.Classify(row, 0, 1); got != Missing {
		t.Errorf("Classify(NULL) = %s, want MV", got)
	}
}

func TestTypeRates(t *testing.T) {
	log := []Injection{{Type: Missing}, {Type: Missing}, {Type: Typo}}
	rates := TypeRates(log, 100)
	if rates[Missing] != 0.02 || rates[Typo] != 0.01 {
		t.Errorf("TypeRates = %v", rates)
	}
	if len(TypeRates(nil, 0)) != 0 {
		t.Error("empty log -> empty rates")
	}
}

func TestSingleTypeSpec(t *testing.T) {
	s := SingleTypeSpec(Typo, 0.05, 9)
	if len(s.Rates) != 1 || s.Rates[Typo] != 0.05 {
		t.Errorf("SingleTypeSpec = %+v", s)
	}
}

func TestMixedSpecHasAtLeastThreeTypes(t *testing.T) {
	s := MixedSpec(0.08, 9)
	if len(s.Rates) < 3 {
		t.Errorf("MixedSpec has %d types, want >= 3", len(s.Rates))
	}
}

func TestFormatLog(t *testing.T) {
	log := []Injection{
		{Row: 1, Col: 2, Type: Typo, Clean: "a", Dirty: "b"},
		{Row: 3, Col: 4, Type: Missing, Clean: "c", Dirty: ""},
	}
	s := FormatLog(log, 1)
	if s == "" || len(s) < 10 {
		t.Error("FormatLog produced nothing")
	}
}
