package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	e := New(32)
	a := e.Embed("Bob Johnson")
	b := e.Embed("Bob Johnson")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
	}
}

func TestDim(t *testing.T) {
	if got := New(0).Dim(); got != DefaultDim {
		t.Errorf("default dim = %d, want %d", got, DefaultDim)
	}
	if got := len(New(16).Embed("x")); got != 16 {
		t.Errorf("len(Embed) = %d, want 16", got)
	}
}

func TestEmptyAndNullEmbedToZero(t *testing.T) {
	e := New(32)
	for _, v := range []string{"", "   ", "---"} {
		vec := e.Embed(v)
		for _, x := range vec {
			if x != 0 {
				t.Errorf("Embed(%q) should be zero vector", v)
				break
			}
		}
	}
}

func TestSimilarStringsCloser(t *testing.T) {
	e := New(64)
	bachelor := e.Embed("Bachelor")
	variant := e.Embed("Bachelors") // shares nearly all n-grams
	other := e.Embed("Pneumonia")   // unrelated word
	simVariant := Cosine(bachelor, variant)
	simOther := Cosine(bachelor, other)
	if simVariant <= simOther+0.2 {
		t.Errorf("variant similarity %v should clearly exceed unrelated similarity %v", simVariant, simOther)
	}
}

func TestIdenticalCosineOne(t *testing.T) {
	e := New(32)
	v := e.Embed("surgical infection prevention")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine(v,v) = %v, want 1", got)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestShortTokens(t *testing.T) {
	e := New(32)
	// Single-character tokens are shorter than the minimum n-gram after
	// padding still works (padded "x" -> "<x>" has length 3).
	v := e.Embed("x")
	var n float64
	for _, c := range v {
		n += c * c
	}
	if n == 0 {
		t.Error("single-char token should not embed to zero")
	}
}

// Property: cosine similarity of any two embeddings lies in [-1, 1] and
// embeddings are bounded (averaged unit vectors).
func TestEmbedBoundsProperty(t *testing.T) {
	e := New(32)
	f := func(a, b string) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		va, vb := e.Embed(a), e.Embed(b)
		c := Cosine(va, vb)
		if c < -1-1e-9 || c > 1+1e-9 {
			return false
		}
		var n float64
		for _, x := range va {
			n += x * x
		}
		return n <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEmbed(b *testing.B) {
	e := New(DefaultDim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Embed("surgical infection prevention measure code")
	}
}

// FuzzEmbed checks the embedder never panics and always returns the
// configured dimensionality with bounded norm.
func FuzzEmbed(f *testing.F) {
	for _, s := range []string{"", "Bob Johnson", "日本語テスト", "\x00\xff\xfe", "a"} {
		f.Add(s)
	}
	e := New(16)
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 64 {
			s = s[:64]
		}
		v := e.Embed(s)
		if len(v) != 16 {
			t.Fatalf("dim %d, want 16", len(v))
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if norm > 1+1e-9 || math.IsNaN(norm) {
			t.Fatalf("norm %v out of bounds", norm)
		}
	})
}
