// Package embed provides the semantic embedding substrate of ZeroED's
// feature representation. The paper uses pre-trained FastText word vectors;
// offline we reproduce FastText's own construction — a word vector is the
// sum of its character n-gram vectors — with deterministic feature-hashed
// n-gram vectors instead of pre-trained ones. Similar strings still map to
// nearby vectors, which is the only property the pipeline depends on
// (clustering locality and classifier input).
package embed

import (
	"math"

	"repro/internal/text"
)

// DefaultDim is the embedding dimensionality used by the pipeline. Small
// enough to keep feature vectors compact, large enough for hashed n-grams
// to rarely collide destructively.
const DefaultDim = 32

// Embedder turns cell values into fixed-size dense vectors.
type Embedder struct {
	dim  int
	minN int
	maxN int
}

// New creates an embedder with the given dimension. Character n-grams of
// length 3..6 are used, FastText's defaults.
func New(dim int) *Embedder {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Embedder{dim: dim, minN: 3, maxN: 6}
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// fnv1a64 is the 64-bit FNV-1a hash, inlined to avoid allocations in the
// hot loop.
func fnv1a64(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// addNgram accumulates the hashed vector of one n-gram into acc. Each
// n-gram deterministically contributes ±1/sqrt(dim) per coordinate, derived
// from successive bits of iterated hashes — a random-projection sketch.
func (e *Embedder) addNgram(acc []float64, gram string) {
	h := fnv1a64(gram)
	scale := 1.0 / math.Sqrt(float64(e.dim))
	for i := 0; i < e.dim; i++ {
		if i%64 == 0 && i > 0 {
			h = fnv1a64(gram + string(rune('a'+i/64)))
		}
		if (h>>(uint(i)%64))&1 == 1 {
			acc[i] += scale
		} else {
			acc[i] -= scale
		}
	}
}

// wordVector embeds a single token as the normalized sum of its padded
// character n-gram vectors (FastText's subword model).
func (e *Embedder) wordVector(tok string) []float64 {
	acc := make([]float64, e.dim)
	padded := "<" + tok + ">"
	rs := []rune(padded)
	count := 0
	for n := e.minN; n <= e.maxN; n++ {
		if n > len(rs) {
			break
		}
		for i := 0; i+n <= len(rs); i++ {
			e.addNgram(acc, string(rs[i:i+n]))
			count++
		}
	}
	if count == 0 {
		// Token shorter than the smallest n-gram window: hash it whole.
		e.addNgram(acc, padded)
		count = 1
	}
	normalize(acc)
	return acc
}

// Embed returns the semantic vector for a cell value: tokenize, drop stop
// words, average the token vectors (Section III-B's f_sem). Null-like or
// token-free values embed to the zero vector, which keeps them clustered
// together.
func (e *Embedder) Embed(value string) []float64 {
	toks := text.Tokenize(value)
	acc := make([]float64, e.dim)
	if len(toks) == 0 {
		return acc
	}
	for _, t := range toks {
		wv := e.wordVector(t)
		for i, x := range wv {
			acc[i] += x
		}
	}
	inv := 1.0 / float64(len(toks))
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}

// Cosine returns the cosine similarity between two vectors, 0 when either
// is zero.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	inv := 1.0 / math.Sqrt(n)
	for i := range v {
		v[i] *= inv
	}
}
