package faultpoint

import (
	"errors"
	"testing"
	"time"
)

// Test failpoints, registered once for the whole package test binary.
var (
	fpA = New("test.a")
	fpB = New("test.b")
)

func TestDisarmedEvalIsNil(t *testing.T) {
	Reset()
	if err := fpA.Eval(); err != nil {
		t.Fatalf("disarmed Eval returned %v", err)
	}
	if Hits("test.a") != 0 || Evals("test.a") != 0 {
		t.Fatalf("disarmed Eval moved counters: hits=%d evals=%d", Hits("test.a"), Evals("test.a"))
	}
}

func TestErrorAction(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test.a", "error"); err != nil {
		t.Fatal(err)
	}
	err := fpA.Eval()
	var inj *Error
	if !errors.As(err, &inj) || inj.Name != "test.a" {
		t.Fatalf("armed Eval = %v, want injected *Error{test.a}", err)
	}
	if err := fpB.Eval(); err != nil {
		t.Fatalf("unarmed sibling injected %v", err)
	}
	if Hits("test.a") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("test.a"))
	}
	// Evals counts the armed-registry evaluations of both points.
	if Evals("test.b") != 1 {
		t.Fatalf("sibling evals = %d, want 1", Evals("test.b"))
	}
}

func TestErrorBudget(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test.a", "error(2)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fpA.Eval(); err == nil {
			t.Fatalf("eval %d passed inside the fault budget", i)
		}
	}
	for i := 0; i < 3; i++ {
		if err := fpA.Eval(); err != nil {
			t.Fatalf("eval after budget injected %v", err)
		}
	}
	if Hits("test.a") != 2 {
		t.Fatalf("hits = %d, want 2", Hits("test.a"))
	}
}

func TestSleepAction(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test.a", "sleep(10ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fpA.Eval(); err != nil {
		t.Fatalf("sleep action returned %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("sleep action returned after %v, want >= 10ms", d)
	}
	if Hits("test.a") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("test.a"))
	}
}

func TestDisarmRestoresFastPath(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test.a", "error"); err != nil {
		t.Fatal(err)
	}
	Disarm("test.a")
	if anyArmed.Load() {
		t.Fatal("anyArmed still set after last Disarm")
	}
	if err := fpA.Eval(); err != nil {
		t.Fatalf("disarmed Eval returned %v", err)
	}
}

func TestParseActionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "boom", "error()", "error(-1)", "error(x)", "sleep(nope)", "sleep()", "crash(1)"} {
		if _, err := parseAction(bad); err == nil {
			t.Errorf("parseAction(%q) accepted", bad)
		}
	}
	for _, good := range []string{"error", "error(3)", "sleep(5ms)", "crash"} {
		if _, err := parseAction(good); err != nil {
			t.Errorf("parseAction(%q) rejected: %v", good, err)
		}
	}
}

func TestArmUnknownName(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test.never-registered", "error"); err == nil {
		t.Fatal("Arm of an unregistered failpoint succeeded")
	}
}

func TestListIncludesRegistered(t *testing.T) {
	names := List()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["test.a"] || !found["test.b"] {
		t.Fatalf("List() = %v missing test points", names)
	}
}
