// Package faultpoint is a registry of named failure-injection points — the
// substrate of the crash-safety and chaos test suites. Code that performs a
// risky effect (a disk write, a rename, a call to a flaky backend) declares
// a package-level failpoint and evaluates it at the effect's boundary:
//
//	var fpBeforeRename = faultpoint.New("model.save.before_rename")
//	...
//	if err := fpBeforeRename.Eval(); err != nil { return err }
//
// In production nothing is armed and Eval is a single atomic load of a
// package-wide flag — no map lookups, no allocation, no locks. Under test
// (or via the ZEROED_FAILPOINTS environment variable) a failpoint can be
// armed with an action:
//
//	error        inject an error on every evaluation
//	error(N)     inject an error on the first N evaluations, then pass
//	sleep(D)     inject latency D (Go duration syntax) and pass
//	crash        print one line to stderr and exit the process with
//	             CrashExitCode — the moral equivalent of kill -9 at exactly
//	             this point in the code
//
// The environment form is a comma-separated list of name:action entries,
// e.g. ZEROED_FAILPOINTS="model.save.before_rename:crash" or
// ZEROED_FAILPOINTS="llm.judge.transient:error(2),serve.fit.persist:sleep(50ms)".
// Arming is also available programmatically (Arm/Disarm/Reset) for
// in-process tests.
//
// Every evaluation while anything is armed is counted (Evals), and every
// injected fault is counted (Hits) — the chaos suite uses the counters and
// the registry listing (List) to prove that no registered failpoint is dead
// wiring.
package faultpoint

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable that arms failpoints at process
// start.
const EnvVar = "ZEROED_FAILPOINTS"

// CrashExitCode is the exit status of a process killed by a crash action.
// It is deliberately distinctive so a chaos harness can tell "died at the
// armed failpoint" from every other way a process can end.
const CrashExitCode = 57

// Error is the injected fault returned by an armed error action.
type Error struct {
	// Name is the failpoint that injected the fault.
	Name string
}

func (e *Error) Error() string {
	return "faultpoint: injected fault at " + e.Name
}

// FP is one registered failpoint. Declare them as package-level variables
// via New so registration happens at init time and the registry is complete
// before any code runs.
type FP struct {
	name  string
	arm   atomic.Pointer[action]
	evals atomic.Int64 // evaluations while the registry had anything armed
	hits  atomic.Int64 // evaluations that actually injected a fault
}

// Name returns the failpoint's registered name.
func (f *FP) Name() string { return f.name }

// Eval evaluates the failpoint: a no-op returning nil unless this failpoint
// is armed, in which case the armed action runs (returning an injected
// error, sleeping, or crashing the process). The disarmed fast path is one
// atomic load.
func (f *FP) Eval() error {
	if !anyArmed.Load() {
		return nil
	}
	f.evals.Add(1)
	a := f.arm.Load()
	if a == nil {
		return nil
	}
	return a.run(f)
}

// action is one armed behavior.
type action struct {
	kind      byte // 'e' error, 's' sleep, 'c' crash
	remaining atomic.Int64
	limited   bool
	sleep     time.Duration
}

func (a *action) run(f *FP) error {
	switch a.kind {
	case 'e':
		if a.limited && a.remaining.Add(-1) < 0 {
			return nil // budget spent: the transient fault has passed
		}
		f.hits.Add(1)
		return &Error{Name: f.name}
	case 's':
		f.hits.Add(1)
		time.Sleep(a.sleep)
		return nil
	case 'c':
		f.hits.Add(1)
		fmt.Fprintf(os.Stderr, "faultpoint: %s: crash\n", f.name)
		os.Exit(CrashExitCode)
	}
	return nil
}

// parseAction parses the action half of a name:action entry.
func parseAction(s string) (*action, error) {
	switch {
	case s == "error":
		return &action{kind: 'e'}, nil
	case strings.HasPrefix(s, "error(") && strings.HasSuffix(s, ")"):
		n, err := strconv.Atoi(s[len("error(") : len(s)-1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("faultpoint: bad error count in %q", s)
		}
		a := &action{kind: 'e', limited: true}
		a.remaining.Store(int64(n))
		return a, nil
	case strings.HasPrefix(s, "sleep(") && strings.HasSuffix(s, ")"):
		d, err := time.ParseDuration(s[len("sleep(") : len(s)-1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultpoint: bad sleep duration in %q", s)
		}
		return &action{kind: 's', sleep: d}, nil
	case s == "crash":
		return &action{kind: 'c'}, nil
	}
	return nil, fmt.Errorf("faultpoint: unknown action %q (want error, error(N), sleep(D), or crash)", s)
}

var (
	regMu sync.Mutex
	reg   = map[string]*FP{}

	// anyArmed short-circuits Eval when the whole registry is idle. It is
	// the only state the production fast path ever reads.
	anyArmed atomic.Bool

	envOnce sync.Once
	envSpec map[string]string // parsed EnvVar entries, keyed by failpoint name
	envErr  error
)

// New registers a failpoint under a unique name and returns it. If the
// ZEROED_FAILPOINTS environment variable names it, it is armed immediately.
// New panics on duplicate registration — failpoint names are a flat global
// namespace, declared once each at package init.
func New(name string) *FP {
	parseEnv()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("faultpoint: duplicate registration of " + name)
	}
	f := &FP{name: name}
	reg[name] = f
	if spec, ok := envSpec[name]; ok {
		a, err := parseAction(spec)
		if err != nil {
			// A malformed env entry must not silently disable the fault the
			// operator asked for: fail loudly at startup.
			panic(err.Error())
		}
		f.arm.Store(a)
		anyArmed.Store(true)
	}
	return f
}

func parseEnv() {
	envOnce.Do(func() {
		envSpec = map[string]string{}
		raw := os.Getenv(EnvVar)
		if raw == "" {
			return
		}
		for _, entry := range strings.Split(raw, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			name, spec, ok := strings.Cut(entry, ":")
			if !ok || name == "" || spec == "" {
				envErr = fmt.Errorf("faultpoint: malformed %s entry %q (want name:action)", EnvVar, entry)
				panic(envErr.Error())
			}
			envSpec[name] = spec
		}
	})
}

// Arm activates a failpoint by name with the given action spec (same syntax
// as the environment variable). It replaces any previous arming.
func Arm(name, spec string) error {
	a, err := parseAction(spec)
	if err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	f, ok := reg[name]
	if !ok {
		return fmt.Errorf("faultpoint: unknown failpoint %q", name)
	}
	f.arm.Store(a)
	anyArmed.Store(true)
	return nil
}

// Disarm deactivates one failpoint. Counters are preserved.
func Disarm(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if f, ok := reg[name]; ok {
		f.arm.Store(nil)
	}
	recomputeArmedLocked()
}

// Reset disarms every failpoint and zeroes all counters — test teardown.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, f := range reg {
		f.arm.Store(nil)
		f.evals.Store(0)
		f.hits.Store(0)
	}
	anyArmed.Store(false)
}

func recomputeArmedLocked() {
	for _, f := range reg {
		if f.arm.Load() != nil {
			anyArmed.Store(true)
			return
		}
	}
	anyArmed.Store(false)
}

// List returns the names of every registered failpoint, sorted.
func List() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hits returns how many faults the named failpoint has injected.
func Hits(name string) int64 {
	regMu.Lock()
	f := reg[name]
	regMu.Unlock()
	if f == nil {
		return 0
	}
	return f.hits.Load()
}

// Evals returns how many times the named failpoint was evaluated while the
// registry had anything armed (evaluations in the fully disarmed state are
// deliberately uncounted — the production path must not pay for them).
func Evals(name string) int64 {
	regMu.Lock()
	f := reg[name]
	regMu.Unlock()
	if f == nil {
		return 0
	}
	return f.evals.Load()
}
