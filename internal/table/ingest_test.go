package table

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// messyNDJSON is the NDJSON twin of messyCSV: array and object framings
// mixed per line, non-string scalars, nulls, blank lines, repeated values
// (interning), and unicode.
const messyNDJSON = `["name","addr","note"]
["alice","1 Main St, Apt 4","hello"]
{"name":"bob","addr":"line1\nline2","note":"she said \"hi\""}

["","",""]
{"note":"hello","name":"alice","addr":"1 Main St, Apt 4"}
["Ünïcôdé",null,3.5]
`

func TestNDJSONSelfDescribing(t *testing.T) {
	d, err := ReadNDJSON("m", strings.NewReader(messyNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5 || d.NumCols() != 3 {
		t.Fatalf("shape %dx%d, want 5x3", d.NumRows(), d.NumCols())
	}
	if got := d.Value(1, 2); got != `she said "hi"` {
		t.Fatalf("escaped quotes parsed as %q", got)
	}
	if got := d.Value(4, 1); got != "" {
		t.Fatalf("null cell parsed as %q, want empty", got)
	}
	if got := d.Value(4, 2); got != "3.5" {
		t.Fatalf("number cell parsed as %q, want its JSON text", got)
	}
	// Object rows bind by key, not position: row 3's permuted object must
	// intern to the same IDs as row 0's array framing.
	if d.ValueID(0, 1) != d.ValueID(3, 1) {
		t.Fatal("repeated value not interned to one ID across framings")
	}
}

func TestNDJSONObjectHeader(t *testing.T) {
	in := `{"x":"a","y":1}
{"y":2,"x":"b"}
["c",null]
`
	d, err := ReadNDJSON("o", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.Attrs, ","); got != "x,y" {
		t.Fatalf("object header gave attrs %q, want x,y (document order)", got)
	}
	// The header object is itself the first data row.
	want := [][2]string{{"a", "1"}, {"b", "2"}, {"c", ""}}
	if d.NumRows() != len(want) {
		t.Fatalf("rows %d, want %d", d.NumRows(), len(want))
	}
	for i, w := range want {
		if d.Value(i, 0) != w[0] || d.Value(i, 1) != w[1] {
			t.Fatalf("row %d = (%q,%q), want (%q,%q)", i, d.Value(i, 0), d.Value(i, 1), w[0], w[1])
		}
	}
}

func TestNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "no header line"},
		{"blank only", "\n\n", "no header line"},
		{"scalar header", "42\n", "must be a JSON array or object"},
		{"non-string header cell", `["a",3]` + "\n", "must be a JSON string"},
		{"duplicate header key", `{"a":1,"a":2}` + "\n", `repeats attribute "a"`},
		{"empty header object", `{}` + "\n", "no attributes"},
		{"arity", "[\"a\",\"b\"]\n[1]\n", "has 1 cells, want 2"},
		{"missing attr", "[\"a\",\"b\"]\n{\"a\":1}\n", `missing attribute "b"`},
		{"unknown attr", "[\"a\",\"b\"]\n{\"a\":1,\"b\":2,\"c\":3}\n", `unknown attribute "c"`},
		{"nested cell", "[\"a\"]\n[[1,2]]\n", "must be a scalar"},
		{"not json", "[\"a\"]\nnot json\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadNDJSON("e", strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want it to mention %q", err, c.want)
			}
		})
	}
	// Header-only input is valid and empty, mirroring header-only CSV.
	d, err := ReadNDJSON("e", strings.NewReader(`["a","b"]`+"\n"))
	if err != nil || d.NumRows() != 0 || d.NumCols() != 2 {
		t.Fatalf("header-only NDJSON: %v rows=%d", err, d.NumRows())
	}
}

// TestNDJSONChunkInvariance pins the tentpole determinism contract at the
// table level: the same NDJSON bytes loaded at any chunk size (and via
// ReadAll) produce identical datasets, including dictionary IDs.
func TestNDJSONChunkInvariance(t *testing.T) {
	whole, err := ReadNDJSON("m", strings.NewReader(messyNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64} {
		s, err := NewNDJSONStream("m", strings.NewReader(messyNDJSON))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := s.ReadChunk(chunk); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		assertSameDataset(t, whole, s.Dataset())
	}
	s, err := NewNDJSONStream("m", strings.NewReader(messyNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAll(); err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, whole, s.Dataset())
}

// TestNDJSONMatchesCSV pins cross-format equality: the same logical table
// ingested as CSV and as NDJSON yields identical datasets, including
// dictionary IDs — the property the service leans on to promise identical
// verdict bytes for both formats.
func TestNDJSONMatchesCSV(t *testing.T) {
	csvIn := "a,b\nx,1\ny,2\nx,1\n"
	ndjsonIn := `["a","b"]
["x","1"]
{"a":"y","b":"2"}
["x",1]
`
	fromCSV, err := ReadCSV("t", strings.NewReader(csvIn))
	if err != nil {
		t.Fatal(err)
	}
	fromNDJSON, err := ReadNDJSON("t", strings.NewReader(ndjsonIn))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, fromCSV, fromNDJSON)
}

func TestFormatForMediaType(t *testing.T) {
	cases := []struct {
		ct, want string
		ok       bool
	}{
		{"text/csv", FormatCSV, true},
		{"text/csv; charset=utf-8", FormatCSV, true},
		{"application/csv", FormatCSV, true},
		{"TEXT/CSV", FormatCSV, true},
		{"application/x-ndjson", FormatNDJSON, true},
		{"application/x-ndjson; charset=utf-8", FormatNDJSON, true},
		{"application/ndjson", FormatNDJSON, true},
		{"application/jsonl", FormatNDJSON, true},
		{"application/json", FormatNDJSON, true},
		{"text/plain", "", false},
		{"", "", false},
		{";;;", "", false},
	}
	for _, c := range cases {
		got, ok := FormatForMediaType(c.ct)
		if got != c.want || ok != c.ok {
			t.Errorf("FormatForMediaType(%q) = (%q, %v), want (%q, %v)", c.ct, got, ok, c.want, c.ok)
		}
	}
}

func TestFormatForPath(t *testing.T) {
	for path, want := range map[string]string{
		"data.csv":      FormatCSV,
		"data.txt":      FormatCSV,
		"data":          FormatCSV,
		"data.ndjson":   FormatNDJSON,
		"data.jsonl":    FormatNDJSON,
		"data.json":     FormatNDJSON,
		"DATA.NDJSON":   FormatNDJSON,
		"a/b/data.json": FormatNDJSON,
	} {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestMapColumns(t *testing.T) {
	schema := []string{"a", "b", "c"}

	m, err := MapColumns(schema, []string{"a", "b", "c"})
	if err != nil || !m.Identity() {
		t.Fatalf("equal header: %v identity=%v", err, m != nil && m.Identity())
	}

	m, err = MapColumns(schema, []string{"c", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Identity() {
		t.Fatal("permutation must not be the identity")
	}
	row, err := m.Apply([]string{"C", "A", "B"})
	if err != nil || strings.Join(row, "") != "ABC" {
		t.Fatalf("permuted Apply = %v (%v), want [A B C]", row, err)
	}

	m, err = MapColumns(schema, []string{"x", "b", "a", "y", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(m.Dropped, ","); got != "x,y" {
		t.Fatalf("Dropped = %q, want x,y (header order)", got)
	}
	row, err = m.Apply([]string{"X", "B", "A", "Y", "C"})
	if err != nil || strings.Join(row, "") != "ABC" {
		t.Fatalf("superset Apply = %v (%v), want [A B C]", row, err)
	}
	if _, err := m.Apply([]string{"too", "short"}); err == nil {
		t.Fatal("arity mismatch must error")
	}

	_, err = MapColumns(schema, []string{"a", "c"})
	var miss *MissingColumnsError
	if !errors.As(err, &miss) {
		t.Fatalf("missing column must be a *MissingColumnsError, got %v", err)
	}
	if len(miss.Missing) != 1 || miss.Missing[0] != "b" {
		t.Fatalf("Missing = %v, want [b]", miss.Missing)
	}

	if _, err := MapColumns(schema, []string{"a", "b", "b", "c"}); err == nil ||
		!strings.Contains(err.Error(), `repeats column "b"`) {
		t.Fatalf("duplicate header: %v", err)
	}
	if _, err := MapColumns([]string{"a", "a"}, []string{"a", "b"}); err == nil ||
		!strings.Contains(err.Error(), `schema repeats column "a"`) {
		t.Fatalf("duplicate schema: %v", err)
	}
}

// TestMapSourcePermutationEqualsIdentity pins the schema-mapping property
// the score endpoints lean on: a permuted (or superset) upload, mapped onto
// the schema, loads into the exact dataset the schema-ordered upload loads
// into — same cells, same dictionary IDs.
func TestMapSourcePermutationEqualsIdentity(t *testing.T) {
	identity := "a,b\nx,1\ny,2\nx,1\n"
	permuted := "b,a\n1,x\n2,y\n1,x\n"
	superset := "junk,b,extra,a\nJ,1,E,x\nJ,2,E,y\nJ,1,E,x\n"

	want, err := ReadCSV("t", strings.NewReader(identity))
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]string{"permuted": permuted, "superset": superset} {
		raw, err := NewCSVSource(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		src, m, err := MapSource([]string{"a", "b"}, raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "superset" && len(m.Dropped) != 2 {
			t.Fatalf("superset dropped %v, want 2 columns", m.Dropped)
		}
		s := NewStream("t", src)
		if err := s.ReadAll(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameDataset(t, want, s.Dataset())
	}

	// Identity mapping returns the source untouched.
	raw, err := NewCSVSource(strings.NewReader(identity))
	if err != nil {
		t.Fatal(err)
	}
	src, m, err := MapSource([]string{"a", "b"}, raw)
	if err != nil || !m.Identity() || src != RowSource(raw) {
		t.Fatalf("identity MapSource must return the source itself (m=%+v)", m)
	}
}

func TestProject(t *testing.T) {
	d, err := ReadCSV("t", strings.NewReader("x,a,b\nX1,A1,B1\nX2,A1,B2\n"))
	if err != nil {
		t.Fatal(err)
	}
	p, m, err := Project(d, []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(m.Dropped, ","); got != "x" {
		t.Fatalf("Dropped = %q, want x", got)
	}
	if strings.Join(p.Attrs, ",") != "b,a" || p.NumRows() != 2 {
		t.Fatalf("projection shape: attrs=%v rows=%d", p.Attrs, p.NumRows())
	}
	if p.Value(1, 0) != "B2" || p.Value(1, 1) != "A1" {
		t.Fatalf("projected cells: %q,%q", p.Value(1, 0), p.Value(1, 1))
	}
	// Value IDs within a kept column are preserved from the original.
	if p.ValueID(0, 1) != d.ValueID(0, 1) || p.ValueID(1, 1) != d.ValueID(1, 1) {
		t.Fatal("projection must preserve per-column value IDs")
	}
	// The projection is a deep copy: mutating it leaves d untouched.
	p.SetValue(0, 0, "MUT")
	if d.Value(0, 2) == "MUT" {
		t.Fatal("projection leaked into the original")
	}
	// Identity projection returns the dataset itself.
	same, m2, err := Project(d, []string{"x", "a", "b"})
	if err != nil || same != d || !m2.Identity() {
		t.Fatalf("identity projection must return d itself: %v", err)
	}
	if _, _, err := Project(d, []string{"a", "missing"}); err == nil {
		t.Fatal("missing schema column must error")
	}
}

// FuzzNDJSONStream drives arbitrary bytes through both self-describing
// NDJSON load paths and pins the FuzzReadCSV properties for the second
// ingest format: no panics, and chunked load ≡ whole-input load — same
// error-ness, same cells, same dictionary IDs.
func FuzzNDJSONStream(f *testing.F) {
	f.Add([]byte(messyNDJSON))
	f.Add([]byte(`["a","b"]` + "\n" + `["1","2"]` + "\n"))
	f.Add([]byte(`{"x":"a","y":null}` + "\n" + `{"y":1,"x":"b"}` + "\n"))
	f.Add([]byte(`{"a":1,"a":2}`))
	f.Add([]byte("[\"a\"]\n[[1,2]]\n"))
	f.Add([]byte("\n\n[\"a\"]\n\n[3]\n"))
	f.Add([]byte("not json"))
	f.Add([]byte("\xff\xfe\x00 garbage"))
	f.Add(bytes.Repeat([]byte(`["a","b"]`+"\n"), 50))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("cap input size to keep executions fast")
		}
		whole, wholeErr := ReadNDJSON("f", bytes.NewReader(data))

		var chunked *Dataset
		s, chunkedErr := NewNDJSONStream("f", bytes.NewReader(data))
		if chunkedErr == nil {
			chunked = s.Dataset()
			for chunkedErr == nil {
				_, chunkedErr = s.ReadChunk(3)
			}
			if chunkedErr == io.EOF {
				chunkedErr = nil
			}
		}
		if (wholeErr == nil) != (chunkedErr == nil) {
			t.Fatalf("load modes disagree: whole=%v chunked=%v", wholeErr, chunkedErr)
		}
		if wholeErr != nil {
			return
		}
		if whole.NumRows() != chunked.NumRows() {
			t.Fatalf("chunked load has %d rows, whole has %d", chunked.NumRows(), whole.NumRows())
		}
		for j := 0; j < whole.NumCols(); j++ {
			if whole.DictSize(j) != chunked.DictSize(j) {
				t.Fatalf("col %d dict size differs: %d vs %d", j, whole.DictSize(j), chunked.DictSize(j))
			}
			for i := 0; i < whole.NumRows(); i++ {
				if whole.Value(i, j) != chunked.Value(i, j) || whole.ValueID(i, j) != chunked.ValueID(i, j) {
					t.Fatalf("cell (%d,%d) differs between load modes", i, j)
				}
			}
		}
	})
}

// FuzzMapColumns throws arbitrary schema/header pairs at the column mapper:
// it must never panic, and any mapping it accepts must project rows onto
// the schema exactly — every schema column sourced from the header position
// holding that name, extras dropped, nothing invented.
func FuzzMapColumns(f *testing.F) {
	f.Add("a,b,c", "a,b,c")
	f.Add("a,b", "b,a")
	f.Add("a,b", "x,b,a,y")
	f.Add("a,b,c", "a,c")
	f.Add("a", "a,a")
	f.Add("a,a", "a")
	f.Add("", "")
	f.Add("a b,c", "c,a b")

	f.Fuzz(func(t *testing.T, schemaCSV, headerCSV string) {
		schema := strings.Split(schemaCSV, ",")
		header := strings.Split(headerCSV, ",")
		m, err := MapColumns(schema, header)
		if err != nil {
			var miss *MissingColumnsError
			if errors.As(err, &miss) && len(miss.Missing) == 0 {
				t.Fatal("MissingColumnsError with nothing missing")
			}
			return
		}
		if len(m.Src) != len(schema) || len(m.Dropped)+len(schema) != len(header) {
			t.Fatalf("mapping shape: src=%d dropped=%d schema=%d header=%d",
				len(m.Src), len(m.Dropped), len(schema), len(header))
		}
		row := make([]string, len(header))
		for i := range row {
			row[i] = header[i] + "!"
		}
		out, err := m.Apply(row)
		if err != nil {
			t.Fatalf("Apply on a header-arity row: %v", err)
		}
		for j, a := range schema {
			if out[j] != a+"!" {
				t.Fatalf("schema col %d (%q) sourced %q, want %q", j, a, out[j], a+"!")
			}
		}
	})
}
