package table

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// messyCSV exercises the encoding edge cases the chunked reader must agree
// with the one-shot reader on: quoted commas, embedded newlines and escaped
// quotes, empty fields, repeated values (interning), and unicode.
const messyCSV = "name,addr,note\n" +
	"alice,\"1 Main St, Apt 4\",hello\n" +
	"bob,\"line1\nline2\",\"she said \"\"hi\"\"\"\n" +
	",,\n" +
	"alice,\"1 Main St, Apt 4\",hello\n" +
	"Ünïcôdé,\"\",plain\n"

// assertSameDataset checks full equality including dictionary IDs: the
// chunked loader must intern values in the same order as the one-shot path.
func assertSameDataset(t *testing.T, want, got *Dataset) {
	t.Helper()
	if want.NumRows() != got.NumRows() || want.NumCols() != got.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j, a := range want.Attrs {
		if got.Attrs[j] != a {
			t.Fatalf("attr %d = %q, want %q", j, got.Attrs[j], a)
		}
	}
	for j := 0; j < want.NumCols(); j++ {
		if want.DictSize(j) != got.DictSize(j) {
			t.Fatalf("col %d dict size %d, want %d", j, got.DictSize(j), want.DictSize(j))
		}
		for i := 0; i < want.NumRows(); i++ {
			if want.Value(i, j) != got.Value(i, j) {
				t.Fatalf("cell (%d,%d) = %q, want %q", i, j, got.Value(i, j), want.Value(i, j))
			}
			if want.ValueID(i, j) != got.ValueID(i, j) {
				t.Fatalf("cell (%d,%d) ID = %d, want %d (dict IDs must be stable across load modes)",
					i, j, got.ValueID(i, j), want.ValueID(i, j))
			}
		}
	}
}

func TestChunkedLoadEqualsWholeFileLoad(t *testing.T) {
	whole, err := ReadCSV("m", strings.NewReader(messyCSV))
	if err != nil {
		t.Fatal(err)
	}
	if whole.NumRows() != 5 {
		t.Fatalf("parsed %d rows, want 5", whole.NumRows())
	}
	if got := whole.Value(1, 2); got != `she said "hi"` {
		t.Fatalf("escaped quotes parsed as %q", got)
	}
	if got := whole.Value(2, 0); got != "" {
		t.Fatalf("empty field parsed as %q", got)
	}
	// Interning must collapse the repeated row 0 / row 3 values.
	if whole.ValueID(0, 1) != whole.ValueID(3, 1) {
		t.Fatal("repeated value not interned to one ID")
	}
	for _, chunk := range []int{1, 2, 3, 7, 64} {
		s, err := NewCSVStream("m", strings.NewReader(messyCSV))
		if err != nil {
			t.Fatal(err)
		}
		for {
			n, err := s.ReadChunk(chunk)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if n != chunk {
				t.Fatalf("full chunk returned %d rows, want %d", n, chunk)
			}
		}
		assertSameDataset(t, whole, s.Dataset())
	}
}

func TestStreamReadAllEqualsReadCSV(t *testing.T) {
	whole, err := ReadCSV("m", strings.NewReader(messyCSV))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCSVStream("m", strings.NewReader(messyCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAll(); err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, whole, s.Dataset())
	// Draining an exhausted stream keeps returning io.EOF.
	if n, err := s.ReadChunk(10); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF ReadChunk = (%d, %v), want (0, io.EOF)", n, err)
	}
}

func TestStreamRaggedRow(t *testing.T) {
	in := "a,b\n1,2\n3\n5,6\n"
	if _, err := ReadCSV("r", strings.NewReader(in)); err == nil {
		t.Fatal("ragged row must error")
	} else if !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("ragged error should name row 2, got: %v", err)
	}
	s, err := NewCSVStream("r", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.ReadChunk(100)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("chunked ragged read = (%d, %v), want parse error", n, err)
	}
	// The row before the ragged one was appended and stays readable.
	if n != 1 || s.Dataset().NumRows() != 1 || s.Dataset().Value(0, 1) != "2" {
		t.Fatalf("rows before the error must be retained: n=%d rows=%d", n, s.Dataset().NumRows())
	}
}

func TestStreamEdgeCases(t *testing.T) {
	if _, err := ReadCSV("e", strings.NewReader("")); err == nil {
		t.Error("empty input must error (no header)")
	}
	if _, err := NewCSVStream("e", strings.NewReader("")); err == nil {
		t.Error("empty stream must error (no header)")
	}
	if _, err := ReadCSV("e", strings.NewReader("a,\"b\n")); err == nil {
		t.Error("unterminated quote in header must error")
	}
	d, err := ReadCSV("e", strings.NewReader("a,b\n"))
	if err != nil || d.NumRows() != 0 || d.NumCols() != 2 {
		t.Errorf("header-only CSV: %v rows=%d", err, d.NumRows())
	}
	d, err = ReadCSV("e", strings.NewReader("a,b\r\n1,2\r\n"))
	if err != nil || d.NumRows() != 1 || d.Value(0, 1) != "2" {
		t.Errorf("CRLF CSV: %v", err)
	}
	d, err = ReadCSV("e", strings.NewReader("a,b\n1,2")) // no trailing newline
	if err != nil || d.NumRows() != 1 {
		t.Errorf("missing trailing newline: %v", err)
	}
}

func TestCompactSubsetRows(t *testing.T) {
	d := New("c", []string{"x", "y"})
	for i := 0; i < 10; i++ {
		d.MustAppendRow([]string{fmt.Sprintf("x%d", i%4), fmt.Sprintf("y%d", i)})
	}
	rows := []int{5, 6, 7, 5} // repeats allowed, order preserved
	compact := d.CompactSubsetRows(rows)
	loose := d.SubsetRows(rows)
	if compact.NumRows() != len(rows) {
		t.Fatalf("compact has %d rows, want %d", compact.NumRows(), len(rows))
	}
	for i := range rows {
		for j := 0; j < d.NumCols(); j++ {
			if compact.Value(i, j) != loose.Value(i, j) {
				t.Fatalf("cell (%d,%d): compact %q vs subset %q", i, j, compact.Value(i, j), loose.Value(i, j))
			}
			// ID round-trip within the compact dataset.
			if compact.DictValue(j, compact.ValueID(i, j)) != compact.Value(i, j) {
				t.Fatalf("compact ID round-trip broken at (%d,%d)", i, j)
			}
		}
	}
	// The whole point: dictionaries hold only the shard's values.
	if got, want := compact.DictSize(0), 3; got != want { // x1,x2,x3
		t.Errorf("compact col 0 dict size %d, want %d", got, want)
	}
	if got, want := compact.DictSize(1), 3; got != want { // y5,y6,y7
		t.Errorf("compact col 1 dict size %d, want %d", got, want)
	}
	if loose.DictSize(1) != d.DictSize(1) {
		t.Error("SubsetRows should keep the full dict (ID stability)")
	}
	// Interning still works on the compact dataset.
	if id, ok := compact.LookupID(1, "y6"); !ok || compact.DictValue(1, id) != "y6" {
		t.Error("compact LookupID broken")
	}
	compact.SetValue(0, 0, "fresh")
	if compact.Value(0, 0) != "fresh" || d.Value(5, 0) == "fresh" {
		t.Error("compact dataset must be independent of the parent")
	}
}

// TestSnapshotAndCloneDuringStreamingAppend loads a CSV chunk by chunk
// while concurrent readers walk Snapshot views and a Clone taken mid-load.
// Run under -race this pins the advertised concurrency contract: snapshots
// are consistent read views of a growing dataset, and clones are fully
// isolated from later appends.
func TestSnapshotAndCloneDuringStreamingAppend(t *testing.T) {
	const rows, chunk = 600, 40
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	for i := 0; i < rows; i++ {
		// i%17 forces heavy interning overlap across chunks.
		fmt.Fprintf(&sb, "a%d,b%d,c%d\n", i%17, i%5, i)
	}

	s, err := NewCSVStream("stream", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	snaps := make(chan *Dataset, rows/chunk+1)
	errc := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range snaps {
				for i := 0; i < snap.NumRows(); i++ {
					if got, want := snap.Value(i, 0), fmt.Sprintf("a%d", i%17); got != want {
						errc <- fmt.Errorf("snapshot cell (%d,0) = %q, want %q", i, got, want)
						return
					}
					if id := snap.ValueID(i, 2); snap.DictValue(2, id) != fmt.Sprintf("c%d", i) {
						errc <- fmt.Errorf("snapshot ID round-trip broken at row %d", i)
						return
					}
				}
				if _, ok := snap.LookupID(0, "a0"); !ok && snap.NumRows() > 0 {
					errc <- fmt.Errorf("snapshot lost interned value")
					return
				}
			}
		}()
	}

	var clone *Dataset
	cloneRows := 0
	loaded := 0
	for {
		n, err := s.ReadChunk(chunk)
		loaded += n
		if loaded > 0 {
			snaps <- s.Dataset().Snapshot()
		}
		if clone == nil && loaded >= rows/2 {
			clone = s.Dataset().Clone()
			cloneRows = clone.NumRows()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(snaps)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if loaded != rows || s.Dataset().NumRows() != rows {
		t.Fatalf("loaded %d rows, want %d", loaded, rows)
	}
	// Clone isolation: the mid-load clone never saw the later appends, and
	// mutating it does not affect the original.
	if clone.NumRows() != cloneRows || clone.NumRows() >= rows {
		t.Fatalf("clone grew after Clone(): %d rows", clone.NumRows())
	}
	clone.SetValue(0, 0, "MUTATED")
	if s.Dataset().Value(0, 0) == "MUTATED" {
		t.Fatal("mutating the clone leaked into the original")
	}
}
