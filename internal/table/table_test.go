package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Dataset {
	d := New("tax", []string{"Name", "Gender", "Education", "Salary"})
	d.MustAppendRow([]string{"Bob Johnson", "M", "Phd", "80000"})
	d.MustAppendRow([]string{"Carol Brown", "F", "Master", "6000"})
	d.MustAppendRow([]string{"DaveGreen", "M", "Bechxlor", "64000"})
	return d
}

func TestShape(t *testing.T) {
	d := sample()
	if d.NumRows() != 3 || d.NumCols() != 4 || d.NumCells() != 12 {
		t.Fatalf("shape = %dx%d (%d cells), want 3x4 (12)", d.NumRows(), d.NumCols(), d.NumCells())
	}
}

func TestValueAccess(t *testing.T) {
	d := sample()
	if got := d.Value(1, 3); got != "6000" {
		t.Errorf("Value(1,3) = %q, want 6000", got)
	}
	d.SetValue(1, 3, "60000")
	if got := d.Value(1, 3); got != "60000" {
		t.Errorf("after SetValue, Value(1,3) = %q, want 60000", got)
	}
}

func TestColIndex(t *testing.T) {
	d := sample()
	if got := d.ColIndex("Salary"); got != 3 {
		t.Errorf("ColIndex(Salary) = %d, want 3", got)
	}
	if got := d.ColIndex("missing"); got != -1 {
		t.Errorf("ColIndex(missing) = %d, want -1", got)
	}
}

func TestColumn(t *testing.T) {
	d := sample()
	col := d.Column(1)
	want := []string{"M", "F", "M"}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column(1)[%d] = %q, want %q", i, col[i], want[i])
		}
	}
	col[0] = "X"
	if d.Value(0, 1) != "M" {
		t.Error("mutating Column result must not affect dataset")
	}
}

func TestAppendRowArityError(t *testing.T) {
	d := sample()
	rows := d.NumRows()
	if err := d.AppendRow([]string{"only", "three", "fields"}); err == nil {
		t.Fatal("AppendRow with wrong arity must return an error")
	}
	if d.NumRows() != rows {
		t.Fatalf("failed AppendRow must leave the dataset unchanged: %d rows, want %d", d.NumRows(), rows)
	}
}

func TestMustAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppendRow with wrong arity must panic")
		}
	}()
	sample().MustAppendRow([]string{"only", "three", "fields"})
}

func TestCloneIsDeep(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.SetValue(0, 0, "Changed")
	if d.Value(0, 0) != "Bob Johnson" {
		t.Error("Clone must not share row storage")
	}
	c.Attrs[0] = "Renamed"
	if d.Attrs[0] != "Name" {
		t.Error("Clone must not share attribute storage")
	}
}

func TestSubset(t *testing.T) {
	d := sample()
	s := d.Subset(2)
	if s.NumRows() != 2 {
		t.Fatalf("Subset(2) rows = %d, want 2", s.NumRows())
	}
	s.SetValue(0, 0, "X")
	if d.Value(0, 0) != "Bob Johnson" {
		t.Error("Subset must copy rows")
	}
	if got := d.Subset(99).NumRows(); got != 3 {
		t.Errorf("Subset(99) rows = %d, want 3 (clamped)", got)
	}
}

func TestRowMap(t *testing.T) {
	m := sample().RowMap(2)
	if m["Name"] != "DaveGreen" || m["Education"] != "Bechxlor" {
		t.Errorf("RowMap = %v", m)
	}
}

func TestSerializeTuple(t *testing.T) {
	got := sample().SerializeTuple(0)
	want := "Name: Bob Johnson, Gender: M, Education: Phd, Salary: 80000"
	if got != want {
		t.Errorf("SerializeTuple = %q, want %q", got, want)
	}
}

func TestSerializeRows(t *testing.T) {
	got := sample().SerializeRows([]int{0, 2})
	if !strings.Contains(got, "Bob Johnson") || !strings.Contains(got, "DaveGreen") {
		t.Errorf("SerializeRows missing rows: %q", got)
	}
	if strings.Count(got, "\n") != 2 {
		t.Errorf("SerializeRows should emit one line per row: %q", got)
	}
}

func TestErrorMask(t *testing.T) {
	clean := sample()
	dirty := clean.Clone()
	dirty.SetValue(1, 3, "")
	dirty.SetValue(2, 2, "Bachelor?!")
	mask, err := ErrorMask(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !mask[1][3] || !mask[2][2] {
		t.Error("injected errors not flagged")
	}
	if mask[0][0] {
		t.Error("clean cell flagged")
	}
	rate, err := ErrorRate(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 12.0; rate != want {
		t.Errorf("ErrorRate = %v, want %v", rate, want)
	}
}

func TestErrorMaskShapeMismatch(t *testing.T) {
	if _, err := ErrorMask(sample(), sample().Subset(2)); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("tax", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != d.NumRows() || back.NumCols() != d.NumCols() {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
	for i := 0; i < d.NumRows(); i++ {
		for j := 0; j < d.NumCols(); j++ {
			if back.Value(i, j) != d.Value(i, j) {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, back.Value(i, j), d.Value(i, j))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty csv must error")
	}
}

// ---- Columnar core: ID-level accessors and intern-pool semantics ----

func TestValueIDsShareDictEntries(t *testing.T) {
	d := sample()
	// Gender column: "M", "F", "M" — two dict entries, rows 0 and 2 share one.
	if got := d.DictSize(1); got != 2 {
		t.Fatalf("DictSize(Gender) = %d, want 2", got)
	}
	if d.ValueID(0, 1) != d.ValueID(2, 1) {
		t.Error("equal values must share a value ID")
	}
	if d.ValueID(0, 1) == d.ValueID(1, 1) {
		t.Error("distinct values must have distinct IDs")
	}
	if got := d.DictValue(1, d.ValueID(1, 1)); got != "F" {
		t.Errorf("DictValue = %q, want F", got)
	}
}

func TestLookupID(t *testing.T) {
	d := sample()
	id, ok := d.LookupID(2, "Master")
	if !ok || d.DictValue(2, id) != "Master" {
		t.Errorf("LookupID(Master) = (%d, %v)", id, ok)
	}
	if _, ok := d.LookupID(2, "never-written"); ok {
		t.Error("LookupID must miss for unseen values")
	}
}

func TestSetValueRoundTripAndDictGrowth(t *testing.T) {
	d := sample()
	before := d.DictSize(3)
	d.SetValue(1, 3, "brand-new-salary")
	if got := d.Value(1, 3); got != "brand-new-salary" {
		t.Errorf("Value after SetValue = %q", got)
	}
	if got := d.DictSize(3); got != before+1 {
		t.Errorf("novel value must grow the dict: %d -> %d", before, got)
	}
	// Writing a value already in the pool must not grow it.
	d.SetValue(0, 3, "brand-new-salary")
	if got := d.DictSize(3); got != before+1 {
		t.Errorf("existing value must reuse its dict entry, dict = %d", got)
	}
	if d.ValueID(0, 3) != d.ValueID(1, 3) {
		t.Error("rewritten cells with equal values must share an ID")
	}
	// Overwritten entries stay in the pool (append-only), but DistinctCount
	// reflects only values actually present.
	if dc, ds := d.DistinctCount(3), d.DictSize(3); dc > ds {
		t.Errorf("DistinctCount %d exceeds DictSize %d", dc, ds)
	}
}

func TestForEachIDAndColumnIDs(t *testing.T) {
	d := sample()
	ids := d.ColumnIDs(1)
	var got []uint32
	d.ForEachID(1, func(row int, id uint32) {
		if ids[row] != id {
			t.Errorf("ColumnIDs[%d] = %d, ForEachID saw %d", row, ids[row], id)
		}
		got = append(got, id)
	})
	if len(got) != d.NumRows() {
		t.Fatalf("ForEachID visited %d rows, want %d", len(got), d.NumRows())
	}
	for i, id := range got {
		if d.DictValue(1, id) != d.Value(i, 1) {
			t.Errorf("row %d: id %d decodes to %q, want %q", i, id, d.DictValue(1, id), d.Value(i, 1))
		}
	}
}

func TestCloneDictIsolation(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.SetValue(0, 0, "only-in-clone")
	if _, ok := d.LookupID(0, "only-in-clone"); ok {
		t.Error("Clone must not share intern pools with the original")
	}
	if d.Value(0, 0) != "Bob Johnson" {
		t.Error("Clone must not share cell storage")
	}
	// Mutating the original after cloning must not leak either.
	d.SetValue(1, 0, "only-in-original")
	if _, ok := c.LookupID(0, "only-in-original"); ok {
		t.Error("original mutations must not appear in the clone's pool")
	}
}

func TestSubsetRows(t *testing.T) {
	d := sample()
	s := d.SubsetRows([]int{2, 0})
	if s.NumRows() != 2 {
		t.Fatalf("SubsetRows rows = %d, want 2", s.NumRows())
	}
	if s.Value(0, 0) != "DaveGreen" || s.Value(1, 0) != "Bob Johnson" {
		t.Errorf("SubsetRows order wrong: %q, %q", s.Value(0, 0), s.Value(1, 0))
	}
	s.SetValue(0, 0, "X")
	if d.Value(2, 0) != "DaveGreen" {
		t.Error("SubsetRows must not share storage")
	}
}

func TestDistinctCountIgnoresStaleDictEntries(t *testing.T) {
	d := New("t", []string{"A"})
	d.MustAppendRow([]string{"x"})
	d.MustAppendRow([]string{"y"})
	d.SetValue(1, 0, "x") // "y" is now stale in the pool
	if got := d.DistinctCount(0); got != 1 {
		t.Errorf("DistinctCount = %d, want 1", got)
	}
	if got := d.DictSize(0); got != 2 {
		t.Errorf("DictSize = %d, want 2 (append-only pool)", got)
	}
}

// Property: load → mutate via SetValue → Value/Column match plain row-major
// reference semantics exactly.
func TestColumnarMatchesRowMajorSemantics(t *testing.T) {
	f := func(writes []uint16, vals []string) bool {
		d := New("p", []string{"a", "b", "c"})
		ref := [][]string{}
		for i := 0; i < 5; i++ {
			row := []string{"a0", "b0", "c0"}
			d.MustAppendRow(row)
			ref = append(ref, append([]string(nil), row...))
		}
		for k, w := range writes {
			if len(vals) == 0 {
				break
			}
			i, j := int(w)%5, int(w/8)%3
			v := vals[k%len(vals)]
			d.SetValue(i, j, v)
			ref[i][j] = v
		}
		for i := range ref {
			for j := range ref[i] {
				if d.Value(i, j) != ref[i][j] {
					return false
				}
			}
		}
		for j := 0; j < 3; j++ {
			col := d.Column(j)
			for i := range ref {
				if col[i] != ref[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: serialization of any dataset with quoted/comma-laden values
// survives a CSV round trip.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		if strings.ContainsAny(a+b+c, "\r") {
			return true // csv normalizes \r\n; out of scope
		}
		d := New("p", []string{"x", "y", "z"})
		d.MustAppendRow([]string{a, b, c})
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("p", &buf)
		if err != nil {
			return false
		}
		return back.Value(0, 0) == a && back.Value(0, 1) == b && back.Value(0, 2) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ErrorRate is 0 for identical datasets and monotone in the
// number of corrupted cells.
func TestErrorRateProperty(t *testing.T) {
	f := func(n uint8) bool {
		clean := sample()
		dirty := clean.Clone()
		k := int(n) % 12
		cnt := 0
		for i := 0; i < clean.NumRows() && cnt < k; i++ {
			for j := 0; j < clean.NumCols() && cnt < k; j++ {
				dirty.SetValue(i, j, dirty.Value(i, j)+"~corrupt~")
				cnt++
			}
		}
		rate, err := ErrorRate(dirty, clean)
		return err == nil && rate == float64(k)/12.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNewFromDicts covers the artifact-binding constructor: pre-seeded IDs
// match the source dictionaries, appended rows intern seen values to their
// original IDs and unseen values past the seed without mutating the
// caller's backing arrays, and impossible dictionaries are rejected.
func TestNewFromDicts(t *testing.T) {
	src := New("src", []string{"a", "b"})
	src.MustAppendRow([]string{"x", "1"})
	src.MustAppendRow([]string{"y", "2"})
	src.MustAppendRow([]string{"x", "3"})

	dicts := [][]string{src.Dict(0), src.Dict(1)}
	d, err := NewFromDicts("bound", src.Attrs, dicts)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 0 {
		t.Fatalf("fresh bound dataset has %d rows", d.NumRows())
	}
	if err := d.AppendRow([]string{"y", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRow([]string{"novel", "1"}); err != nil {
		t.Fatal(err)
	}
	// Seen values keep their source IDs.
	if id, _ := src.LookupID(0, "y"); d.ValueID(0, 0) != id {
		t.Errorf("seen value re-interned to ID %d, want %d", d.ValueID(0, 0), id)
	}
	// Unseen values get IDs past the seed, and the source dicts stay
	// untouched.
	if int(d.ValueID(1, 0)) != len(dicts[0]) {
		t.Errorf("novel value got ID %d, want %d", d.ValueID(1, 0), len(dicts[0]))
	}
	if src.DictSize(0) != 2 {
		t.Errorf("source dict grew to %d entries", src.DictSize(0))
	}
	if d.Value(1, 0) != "novel" {
		t.Errorf("novel value reads back %q", d.Value(1, 0))
	}

	// Shape and uniqueness violations are errors.
	if _, err := NewFromDicts("bad", []string{"a"}, nil); err == nil {
		t.Error("dict/attr arity mismatch accepted")
	}
	if _, err := NewFromDicts("bad", []string{"a"}, [][]string{{"v", "v"}}); err == nil {
		t.Error("duplicate dict entry accepted")
	}
}
