// Package table provides the tabular dataset model used throughout the
// ZeroED reproduction: a dataset is a named relation with a flat string
// schema and string-valued cells, matching the representation used by the
// paper (Section II): D = {t1..tN} over Attrs = {a1..aM}, with D[i,j]
// denoting the cell value of attribute aj in tuple ti.
package table

import (
	"fmt"
	"strings"
)

// Cell identifies one cell of a dataset by row and column index.
type Cell struct {
	Row int
	Col int
}

// Dataset is a dirty or clean relational table. All values are strings;
// NULLs are represented as empty strings, following the paper's
// serialization convention.
type Dataset struct {
	Name  string
	Attrs []string
	Rows  [][]string
}

// New creates an empty dataset with the given schema.
func New(name string, attrs []string) *Dataset {
	return &Dataset{Name: name, Attrs: attrs}
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return len(d.Rows) }

// NumCols returns the number of attributes.
func (d *Dataset) NumCols() int { return len(d.Attrs) }

// NumCells returns the total number of cells.
func (d *Dataset) NumCells() int { return len(d.Rows) * len(d.Attrs) }

// Value returns the cell value of attribute col in tuple row.
func (d *Dataset) Value(row, col int) string { return d.Rows[row][col] }

// SetValue overwrites a single cell.
func (d *Dataset) SetValue(row, col int, v string) { d.Rows[row][col] = v }

// AppendRow adds a tuple. It panics if the arity does not match the schema,
// because that is always a programming error in this codebase.
func (d *Dataset) AppendRow(row []string) {
	if len(row) != len(d.Attrs) {
		panic(fmt.Sprintf("table: row arity %d does not match schema arity %d", len(row), len(d.Attrs)))
	}
	d.Rows = append(d.Rows, row)
}

// ColIndex returns the index of the named attribute, or -1 if absent.
func (d *Dataset) ColIndex(attr string) int {
	for i, a := range d.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// Column returns a copy of all values in the given column.
func (d *Dataset) Column(col int) []string {
	out := make([]string, len(d.Rows))
	for i, r := range d.Rows {
		out[i] = r[col]
	}
	return out
}

// Clone deep-copies the dataset. Mutating the clone never affects the
// original, which matters when injecting errors into a clean ground truth.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...)}
	c.Rows = make([][]string, len(d.Rows))
	for i, r := range d.Rows {
		c.Rows[i] = append([]string(nil), r...)
	}
	return c
}

// Subset returns a new dataset containing the first n rows (or all rows if
// n exceeds the row count). Used for scalability sweeps over Tax subsets.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.Rows) {
		n = len(d.Rows)
	}
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...)}
	c.Rows = make([][]string, n)
	for i := 0; i < n; i++ {
		c.Rows[i] = append([]string(nil), d.Rows[i]...)
	}
	return c
}

// Row returns the i-th tuple (not copied).
func (d *Dataset) Row(i int) []string { return d.Rows[i] }

// RowMap returns tuple i as an attribute→value map, the shape criteria
// evaluation uses (mirroring the paper's generated `row[attr]` accessors).
func (d *Dataset) RowMap(i int) map[string]string {
	m := make(map[string]string, len(d.Attrs))
	for j, a := range d.Attrs {
		m[a] = d.Rows[i][j]
	}
	return m
}

// SerializeTuple renders tuple i as the attribute-value pair string used in
// LLM prompts: "a1: v1, a2: v2, ...". NULLs appear as empty strings.
func (d *Dataset) SerializeTuple(i int) string {
	var b strings.Builder
	for j, a := range d.Attrs {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
		b.WriteString(": ")
		b.WriteString(d.Rows[i][j])
	}
	return b.String()
}

// SerializeRows renders the given tuples one per line, for prompt bodies.
func (d *Dataset) SerializeRows(rows []int) string {
	var b strings.Builder
	for _, i := range rows {
		b.WriteString(d.SerializeTuple(i))
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrorMask compares a dirty dataset against its ground truth and returns
// a boolean matrix where true marks an erroneous cell (D[i,j] != D*[i,j]),
// the paper's definition of a data error.
func ErrorMask(dirty, clean *Dataset) ([][]bool, error) {
	if dirty.NumRows() != clean.NumRows() || dirty.NumCols() != clean.NumCols() {
		return nil, fmt.Errorf("table: shape mismatch dirty %dx%d vs clean %dx%d",
			dirty.NumRows(), dirty.NumCols(), clean.NumRows(), clean.NumCols())
	}
	mask := make([][]bool, dirty.NumRows())
	for i := range mask {
		mask[i] = make([]bool, dirty.NumCols())
		for j := range mask[i] {
			mask[i][j] = dirty.Rows[i][j] != clean.Rows[i][j]
		}
	}
	return mask, nil
}

// ErrorRate returns the fraction of cells that differ from ground truth.
func ErrorRate(dirty, clean *Dataset) (float64, error) {
	mask, err := ErrorMask(dirty, clean)
	if err != nil {
		return 0, err
	}
	n, total := 0, 0
	for i := range mask {
		for j := range mask[i] {
			total++
			if mask[i][j] {
				n++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(n) / float64(total), nil
}
