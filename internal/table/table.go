// Package table provides the tabular dataset model used throughout the
// ZeroED reproduction: a dataset is a named relation with a flat string
// schema and string-valued cells, matching the representation used by the
// paper (Section II): D = {t1..tN} over Attrs = {a1..aM}, with D[i,j]
// denoting the cell value of attribute aj in tuple ti.
//
// Storage is columnar and dictionary-encoded: each column holds a slice of
// uint32 value IDs plus an append-only intern pool (`dict`) of the distinct
// strings ever written to that column. Equal values share one dict entry,
// so per-cell work downstream (frequencies, embeddings, criteria bits) can
// be memoized per unique value ID instead of per cell, and cell comparisons
// reduce to integer comparisons within a column. The row-oriented API
// (Value, Row, RowMap, AppendRow, ...) is preserved on top; the ID-level
// accessors (ValueID, DictSize, DictValue, ForEachID, ...) expose the
// encoded representation to hot paths.
package table

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Cell identifies one cell of a dataset by row and column index.
type Cell struct {
	Row int
	Col int
}

// column is one dictionary-encoded attribute: ids[i] indexes into dict,
// and index is the reverse mapping used for interning. The dict is
// append-only: overwriting a cell never removes the old value's entry, so
// IDs handed out earlier stay valid for the dataset's lifetime.
type column struct {
	ids   []uint32
	dict  []string
	index map[string]uint32
}

// intern returns the ID for v, adding it to the pool on first sight. The
// pooled copy is cloned so a dict entry never pins the caller's backing
// buffer (streamed CSV records keep whole lines alive otherwise).
func (c *column) intern(v string) uint32 {
	if id, ok := c.index[v]; ok {
		return id
	}
	v = strings.Clone(v)
	id := uint32(len(c.dict))
	c.dict = append(c.dict, v)
	if c.index == nil {
		c.index = make(map[string]uint32)
	}
	c.index[v] = id
	return id
}

// clone deep-copies the column; the clone's pool evolves independently.
func (c *column) clone() column {
	out := column{
		ids:   append([]uint32(nil), c.ids...),
		dict:  append([]string(nil), c.dict...),
		index: make(map[string]uint32, len(c.index)),
	}
	for v, id := range c.index {
		out.index[v] = id
	}
	return out
}

// Dataset is a dirty or clean relational table. All values are strings;
// NULLs are represented as empty strings, following the paper's
// serialization convention.
type Dataset struct {
	Name  string
	Attrs []string

	cols  []column
	nrows int

	// published is the safe cross-goroutine handoff point for snapshots of
	// a growing dataset: the appending goroutine stores a fresh Snapshot
	// through PublishSnapshot, and any other goroutine loads the latest one
	// through LatestSnapshot. The atomic pointer is the publication fence —
	// a plain reader-side Snapshot() call races with appends (slice headers
	// and lengths are read unsynchronized), which is exactly the pattern
	// this field exists to replace.
	published atomic.Pointer[Dataset]
}

// New creates an empty dataset with the given schema.
func New(name string, attrs []string) *Dataset {
	return NewWithCapacity(name, attrs, 0)
}

// NewWithCapacity creates an empty dataset preallocated for the given row
// count, which bulk loaders use to avoid repeated column growth.
func NewWithCapacity(name string, attrs []string, rows int) *Dataset {
	d := &Dataset{Name: name, Attrs: attrs, cols: make([]column, len(attrs))}
	if rows > 0 {
		for j := range d.cols {
			d.cols[j].ids = make([]uint32, 0, rows)
		}
	}
	return d
}

// NewFromDicts creates an empty dataset whose per-column intern pools are
// pre-seeded with the given dictionaries: value ID id of column j is
// dicts[j][id], exactly as in the dataset the dictionaries were captured
// from. Rows appended afterwards intern seen values to their original IDs
// and unseen values to fresh IDs past the seed — the binding step of scoring
// new data against a fitted model's artifact. The dict slices are reused
// with their capacity clamped, so appending new values never mutates the
// caller's backing arrays.
//
// A dictionary with duplicate entries or more than MaxUint32 values cannot
// have come from an intern pool and is rejected.
func NewFromDicts(name string, attrs []string, dicts [][]string) (*Dataset, error) {
	if len(dicts) != len(attrs) {
		return nil, fmt.Errorf("table: %d dictionaries for %d attributes", len(dicts), len(attrs))
	}
	d := &Dataset{Name: name, Attrs: attrs, cols: make([]column, len(attrs))}
	for j, dict := range dicts {
		if len(dict) > 1<<32-1 {
			return nil, fmt.Errorf("table: column %d dictionary has %d entries, exceeding the uint32 ID space", j, len(dict))
		}
		index := make(map[string]uint32, len(dict))
		for id, v := range dict {
			if _, dup := index[v]; dup {
				return nil, fmt.Errorf("table: column %d dictionary has duplicate entry %q", j, v)
			}
			index[v] = uint32(id)
		}
		d.cols[j] = column{dict: dict[:len(dict):len(dict)], index: index}
	}
	return d, nil
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.nrows }

// NumCols returns the number of attributes.
func (d *Dataset) NumCols() int { return len(d.Attrs) }

// NumCells returns the total number of cells.
func (d *Dataset) NumCells() int { return d.nrows * len(d.Attrs) }

// Value returns the cell value of attribute col in tuple row.
func (d *Dataset) Value(row, col int) string {
	c := &d.cols[col]
	return c.dict[c.ids[row]]
}

// SetValue overwrites a single cell, interning the value if it is new to
// the column. Existing IDs are never invalidated.
func (d *Dataset) SetValue(row, col int, v string) {
	c := &d.cols[col]
	c.ids[row] = c.intern(v)
}

// ValueID returns the dictionary ID of the cell value of attribute col in
// tuple row. IDs are stable for the dataset's lifetime and comparable only
// within one column.
func (d *Dataset) ValueID(row, col int) uint32 { return d.cols[col].ids[row] }

// DictSize returns the number of distinct values ever written to the
// column — the size of its intern pool. Per-value-ID memo tables are sized
// by this.
func (d *Dataset) DictSize(col int) int { return len(d.cols[col].dict) }

// DictValue returns the string for a value ID of the column.
func (d *Dataset) DictValue(col int, id uint32) string { return d.cols[col].dict[id] }

// Dict returns the column's intern pool, indexed by value ID. The slice is
// shared with the dataset and must not be mutated; it may grow (never
// shrink) as new values are written.
func (d *Dataset) Dict(col int) []string { return d.cols[col].dict }

// LookupID returns the ID of v in the column's pool, if v has ever been
// written to the column.
func (d *Dataset) LookupID(col int, v string) (uint32, bool) {
	id, ok := d.cols[col].index[v]
	return id, ok
}

// ColumnIDs returns the column's value IDs, indexed by row. The slice is
// shared with the dataset and must not be mutated.
func (d *Dataset) ColumnIDs(col int) []uint32 { return d.cols[col].ids }

// ForEachID calls fn for every row of the column with the row index and
// the cell's value ID, in row order.
func (d *Dataset) ForEachID(col int, fn func(row int, id uint32)) {
	for i, id := range d.cols[col].ids {
		fn(i, id)
	}
}

// DistinctCount returns the number of distinct values currently present in
// the column. Unlike DictSize it ignores pool entries that were
// overwritten away, so it matches the semantics of counting a column's
// value set.
func (d *Dataset) DistinctCount(col int) int {
	c := &d.cols[col]
	seen := make([]bool, len(c.dict))
	n := 0
	for _, id := range c.ids {
		if !seen[id] {
			seen[id] = true
			n++
		}
	}
	return n
}

// AppendRow adds a tuple. A row whose arity does not match the schema is
// rejected with an error and the dataset is left unchanged; ingestion paths
// that accept untrusted input (CSV streams, service uploads) propagate it
// as a validation failure. Code sites where the arity is a structural
// invariant use MustAppendRow.
func (d *Dataset) AppendRow(row []string) error {
	if len(row) != len(d.Attrs) {
		return fmt.Errorf("table: row arity %d does not match schema arity %d", len(row), len(d.Attrs))
	}
	for j, v := range row {
		c := &d.cols[j]
		c.ids = append(c.ids, c.intern(v))
	}
	d.nrows++
	return nil
}

// MustAppendRow is AppendRow for call sites where the row arity is
// guaranteed by construction (generators, test fixtures, rows copied from a
// same-schema dataset). It panics on a mismatch, which at such a site is
// always a programming error.
func (d *Dataset) MustAppendRow(row []string) {
	if err := d.AppendRow(row); err != nil {
		panic(err)
	}
}

// ColIndex returns the index of the named attribute, or -1 if absent.
func (d *Dataset) ColIndex(attr string) int {
	for i, a := range d.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// Column returns a copy of all values in the given column.
func (d *Dataset) Column(col int) []string {
	c := &d.cols[col]
	out := make([]string, len(c.ids))
	for i, id := range c.ids {
		out[i] = c.dict[id]
	}
	return out
}

// Clone deep-copies the dataset. Mutating the clone never affects the
// original, which matters when injecting errors into a clean ground truth.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...), nrows: d.nrows}
	c.cols = make([]column, len(d.cols))
	for j := range d.cols {
		c.cols[j] = d.cols[j].clone()
	}
	return c
}

// Snapshot returns a read-only view of the dataset's current rows that
// stays consistent while the original keeps growing through AppendRow (the
// streaming-load path): the view shares the column ID and dict storage but
// fixes its own lengths, and appends only ever write past those lengths,
// so concurrent readers of the snapshot race with nothing. Cell access is
// O(1) to produce; supporting LookupID costs one copy of each column's
// intern index per call, so on high-cardinality streams snapshot at coarse
// intervals rather than per small chunk.
//
// Contract: Snapshot must be called from the appending goroutine (or
// otherwise synchronized with appends); the returned view must be treated
// as read-only; and overwrites of existing cells (SetValue) on the original
// are NOT isolated — use Clone when the original will be mutated in place.
// When another goroutine needs a consistent view of a growing dataset, the
// appender must hand one over through PublishSnapshot/LatestSnapshot —
// calling Snapshot from the reader side races with appends.
func (d *Dataset) Snapshot() *Dataset {
	c := &Dataset{Name: d.Name, Attrs: d.Attrs, nrows: d.nrows}
	c.cols = make([]column, len(d.cols))
	for j := range d.cols {
		src := &d.cols[j]
		idx := make(map[string]uint32, len(src.index))
		for v, id := range src.index {
			idx[v] = id
		}
		c.cols[j] = column{ids: src.ids[:len(src.ids):len(src.ids)], dict: src.dict[:len(src.dict):len(src.dict)], index: idx}
	}
	return c
}

// PublishSnapshot takes a Snapshot and atomically publishes it for
// cross-goroutine readers. It must be called from the appending goroutine
// (it reads the live column storage, like Snapshot); the atomic store is
// the release fence that makes every append before the call visible to any
// goroutine that later observes the snapshot via LatestSnapshot. The
// snapshot is also returned for the appender's own use.
func (d *Dataset) PublishSnapshot() *Dataset {
	s := d.Snapshot()
	d.published.Store(s)
	return s
}

// LatestSnapshot returns the most recently published snapshot, or nil if
// PublishSnapshot has never been called. Safe from any goroutine: the
// returned view is immutable (appends to the original only ever write past
// its fixed lengths) and at least as old as the publishing append — readers
// see a consistent prefix of the stream, never a torn row.
func (d *Dataset) LatestSnapshot() *Dataset {
	return d.published.Load()
}

// Subset returns a new dataset containing the first n rows (or all rows if
// n exceeds the row count). Used for scalability sweeps over Tax subsets.
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.nrows {
		n = d.nrows
	}
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...), nrows: n}
	c.cols = make([]column, len(d.cols))
	for j := range d.cols {
		src := &d.cols[j]
		c.cols[j] = column{
			ids:   append([]uint32(nil), src.ids[:n]...),
			dict:  append([]string(nil), src.dict...),
			index: make(map[string]uint32, len(src.index)),
		}
		for v, id := range src.index {
			c.cols[j].index[v] = id
		}
	}
	return c
}

// SubsetRows returns a new dataset containing exactly the given rows, in
// the given order. Row indices may repeat; they must be in range.
func (d *Dataset) SubsetRows(rows []int) *Dataset {
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...), nrows: len(rows)}
	c.cols = make([]column, len(d.cols))
	for j := range d.cols {
		src := &d.cols[j]
		ids := make([]uint32, len(rows))
		for i, r := range rows {
			ids[i] = src.ids[r]
		}
		c.cols[j] = column{
			ids:   ids,
			dict:  append([]string(nil), src.dict...),
			index: make(map[string]uint32, len(src.index)),
		}
		for v, id := range src.index {
			c.cols[j].index[v] = id
		}
	}
	return c
}

// CompactSubsetRows returns a new dataset containing exactly the given
// rows, like SubsetRows, but with per-column dictionaries rebuilt to hold
// only the values those rows actually reference. Value IDs are therefore
// NOT comparable with the parent's — use SubsetRows when ID stability
// matters. This is the right subset for independent processing of a row
// shard (zeroed.DetectShards): per-value memo tables downstream stay
// proportional to the shard's distinct values, not the whole dataset's.
func (d *Dataset) CompactSubsetRows(rows []int) *Dataset {
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...), nrows: len(rows)}
	c.cols = make([]column, len(d.cols))
	for j := range d.cols {
		src := &d.cols[j]
		dst := &c.cols[j]
		dst.ids = make([]uint32, len(rows))
		dst.index = make(map[string]uint32)
		// remap[srcID] is dstID+1; 0 marks a source value not yet seen.
		remap := make([]uint32, len(src.dict))
		for i, r := range rows {
			sid := src.ids[r]
			m := remap[sid]
			if m == 0 {
				v := src.dict[sid]
				dst.dict = append(dst.dict, v)
				m = uint32(len(dst.dict))
				dst.index[v] = m - 1
				remap[sid] = m
			}
			dst.ids[i] = m - 1
		}
	}
	return c
}

// Row returns the i-th tuple as a freshly allocated value slice.
func (d *Dataset) Row(i int) []string {
	out := make([]string, len(d.Attrs))
	for j := range d.cols {
		c := &d.cols[j]
		out[j] = c.dict[c.ids[i]]
	}
	return out
}

// RowMap returns tuple i as an attribute→value map, the shape map-based
// criteria evaluation uses (mirroring the paper's generated `row[attr]`
// accessors). Hot paths should prefer the index-based accessors; this
// allocates a map per call.
func (d *Dataset) RowMap(i int) map[string]string {
	m := make(map[string]string, len(d.Attrs))
	for j, a := range d.Attrs {
		c := &d.cols[j]
		m[a] = c.dict[c.ids[i]]
	}
	return m
}

// SerializeTuple renders tuple i as the attribute-value pair string used in
// LLM prompts: "a1: v1, a2: v2, ...". NULLs appear as empty strings.
func (d *Dataset) SerializeTuple(i int) string {
	var b strings.Builder
	d.serializeTuple(&b, i)
	return b.String()
}

func (d *Dataset) serializeTuple(b *strings.Builder, i int) {
	for j, a := range d.Attrs {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
		b.WriteString(": ")
		c := &d.cols[j]
		b.WriteString(c.dict[c.ids[i]])
	}
}

// SerializeRows renders the given tuples one per line, for prompt bodies.
func (d *Dataset) SerializeRows(rows []int) string {
	var b strings.Builder
	for _, i := range rows {
		d.serializeTuple(&b, i)
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrorMask compares a dirty dataset against its ground truth and returns
// a boolean matrix where true marks an erroneous cell (D[i,j] != D*[i,j]),
// the paper's definition of a data error.
func ErrorMask(dirty, clean *Dataset) ([][]bool, error) {
	if dirty.NumRows() != clean.NumRows() || dirty.NumCols() != clean.NumCols() {
		return nil, fmt.Errorf("table: shape mismatch dirty %dx%d vs clean %dx%d",
			dirty.NumRows(), dirty.NumCols(), clean.NumRows(), clean.NumCols())
	}
	mask := make([][]bool, dirty.NumRows())
	for i := range mask {
		mask[i] = make([]bool, dirty.NumCols())
	}
	// Column-at-a-time comparison over IDs: resolve each dirty pool entry
	// to the clean pool once, then compare integers per cell.
	for j := 0; j < dirty.NumCols(); j++ {
		dc, cc := &dirty.cols[j], &clean.cols[j]
		// sameID[id] is the clean-pool ID holding the identical string, or
		// -1 when the dirty value never occurs in the clean pool.
		sameID := make([]int64, len(dc.dict))
		for id, v := range dc.dict {
			if cid, ok := cc.index[v]; ok {
				sameID[id] = int64(cid)
			} else {
				sameID[id] = -1
			}
		}
		for i, id := range dc.ids {
			mask[i][j] = sameID[id] != int64(cc.ids[i])
		}
	}
	return mask, nil
}

// ErrorRate returns the fraction of cells that differ from ground truth.
func ErrorRate(dirty, clean *Dataset) (float64, error) {
	mask, err := ErrorMask(dirty, clean)
	if err != nil {
		return 0, err
	}
	n, total := 0, 0
	for i := range mask {
		for j := range mask[i] {
			total++
			if mask[i][j] {
				n++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(n) / float64(total), nil
}
