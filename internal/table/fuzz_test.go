package table

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadCSV drives arbitrary bytes through both CSV load paths and pins
// three properties: no panics, chunked load ≡ whole-file load (same
// error-ness, same cells, same dictionary IDs), and write/read round-trip
// stability for anything that parses.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("name,addr\nalice,\"1 Main St, Apt 4\"\n"))
	f.Add([]byte("a,b\n\"x\ny\",\"she said \"\"hi\"\"\"\n"))
	f.Add([]byte("a,b\n1\n"))          // ragged
	f.Add([]byte("a,b\n,\n,\n"))       // empty fields
	f.Add([]byte(""))                  // no header
	f.Add([]byte("a,\"b\n"))           // unterminated quote
	f.Add([]byte("a,b\r\n1,2\r\n"))    // CRLF
	f.Add([]byte("a,a,a\nx,y,z\n"))    // duplicate attrs
	f.Add([]byte("\xff\xfe,b\n1,2\n")) // invalid utf8
	f.Add([]byte("a;b\n1;2\n"))        // wrong delimiter (single column)

	f.Fuzz(func(t *testing.T, data []byte) {
		whole, wholeErr := ReadCSV("f", bytes.NewReader(data))

		// Chunked load must agree with the one-shot load, including on
		// whether the input is malformed.
		var chunked *Dataset
		s, err := NewCSVStream("f", bytes.NewReader(data))
		chunkedErr := err
		if err == nil {
			chunked = s.Dataset()
			for chunkedErr == nil {
				_, chunkedErr = s.ReadChunk(3)
			}
			if chunkedErr == io.EOF {
				chunkedErr = nil
			}
		}
		if (wholeErr == nil) != (chunkedErr == nil) {
			t.Fatalf("load modes disagree: whole=%v chunked=%v", wholeErr, chunkedErr)
		}
		if wholeErr != nil {
			return
		}
		if whole.NumRows() != chunked.NumRows() {
			t.Fatalf("chunked load has %d rows, whole has %d", chunked.NumRows(), whole.NumRows())
		}
		for j := 0; j < whole.NumCols(); j++ {
			if whole.DictSize(j) != chunked.DictSize(j) {
				t.Fatalf("col %d dict size differs: %d vs %d", j, whole.DictSize(j), chunked.DictSize(j))
			}
			for i := 0; i < whole.NumRows(); i++ {
				if whole.Value(i, j) != chunked.Value(i, j) || whole.ValueID(i, j) != chunked.ValueID(i, j) {
					t.Fatalf("cell (%d,%d) differs between load modes", i, j)
				}
			}
		}

		// Round trip: what we serialize must parse back to the same cells.
		var buf bytes.Buffer
		if err := whole.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed dataset: %v", err)
		}
		again, err := ReadCSV("f", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing our own output: %v", err)
		}
		if again.NumRows() != whole.NumRows() || again.NumCols() != whole.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				again.NumRows(), again.NumCols(), whole.NumRows(), whole.NumCols())
		}
		for j := 0; j < whole.NumCols(); j++ {
			for i := 0; i < whole.NumRows(); i++ {
				if whole.Value(i, j) != again.Value(i, j) {
					t.Fatalf("round trip changed cell (%d,%d): %q -> %q",
						i, j, whole.Value(i, j), again.Value(i, j))
				}
			}
		}
	})
}
