package table

import (
	"fmt"
	"io"
	"mime"
	"os"
	"path/filepath"
	"strings"
)

// RowSource is the format-agnostic streaming ingest abstraction: a header
// (the column names, fixed at construction) plus chunked row delivery.
// CSV and NDJSON bodies, files, and request streams all arrive through it,
// so every consumer — dataset loading, model scoring, streaming detection —
// shares one decode layer.
//
// Next returns up to max rows (max must be positive) and io.EOF, possibly
// alongside a final short batch, once the input is exhausted. A short batch
// without an error only happens at EOF. Returned rows are freshly allocated
// and safe to retain. Rows already delivered before a decode error stay
// valid; the error describes the first offending row.
type RowSource interface {
	Header() []string
	Next(max int) ([][]string, error)
}

// Ingest format names, as used by the -format CLI flag and the service's
// ?format query parameter.
const (
	FormatCSV    = "csv"
	FormatNDJSON = "ndjson"
)

// NewSource opens a self-describing row source for one of the named
// formats: the header comes from the input itself (CSV header row; NDJSON
// first line).
func NewSource(format string, r io.Reader) (RowSource, error) {
	switch format {
	case FormatCSV:
		return NewCSVSource(r)
	case FormatNDJSON:
		return NewNDJSONSource(r, nil)
	default:
		return nil, fmt.Errorf("table: unknown ingest format %q (want %s or %s)", format, FormatCSV, FormatNDJSON)
	}
}

// FormatForMediaType maps a Content-Type header value to an ingest format.
// The raw header is parsed with mime.ParseMediaType, so parameters like
// "; charset=utf-8" never defeat the match. The second result reports
// whether the media type named a known format; callers typically fall back
// to CSV when it did not.
func FormatForMediaType(contentType string) (string, bool) {
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		return "", false
	}
	switch mt {
	case "text/csv", "application/csv":
		return FormatCSV, true
	case "application/x-ndjson", "application/ndjson", "application/jsonl", "application/json":
		return FormatNDJSON, true
	default:
		return "", false
	}
}

// FormatForPath auto-detects an ingest format from a file extension:
// .ndjson, .jsonl, and .json select NDJSON, everything else CSV.
func FormatForPath(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ndjson", ".jsonl", ".json":
		return FormatNDJSON
	default:
		return FormatCSV
	}
}

// Stream incrementally loads a RowSource into a columnar Dataset. Unlike a
// ReadAll-style loader it never materializes the full row-oriented record
// set: each delivered row is appended straight into the dataset's
// per-column ID slices and intern-pool dictionaries. Because the pools are
// append-only, value IDs handed out for early chunks stay valid as later
// chunks arrive, so row shards can be cut (SubsetRows, Snapshot) between
// chunks while the load is still in flight.
type Stream struct {
	d   *Dataset
	src RowSource
}

// NewStream starts loading src into a fresh dataset named name, with the
// source's header as the schema.
func NewStream(name string, src RowSource) *Stream {
	return &Stream{d: New(name, append([]string(nil), src.Header()...)), src: src}
}

// Dataset returns the dataset being loaded. It grows as chunks are read;
// take a Snapshot (or SubsetRows) to hand a stable view to concurrent
// readers while the stream continues.
func (s *Stream) Dataset() *Dataset { return s.d }

// ReadChunk appends up to maxRows data rows and returns the number
// appended. maxRows must be positive: a caller whose computed chunk budget
// reaches zero almost certainly wants "read nothing", and silently draining
// the whole stream instead (the historical maxRows<=0 sentinel) turned that
// arithmetic slip into an unbounded read — use ReadAll when draining is
// what you mean. It returns io.EOF once the input is exhausted and a
// wrapped decode error on malformed rows; rows appended before the error
// remain in the dataset.
func (s *Stream) ReadChunk(maxRows int) (int, error) {
	if maxRows <= 0 {
		return 0, fmt.Errorf("table: ReadChunk needs a positive row budget, got %d (use ReadAll to drain the stream)", maxRows)
	}
	return s.readChunk(maxRows)
}

// streamBatchRows bounds one Next call inside an unbudgeted drain.
const streamBatchRows = 4096

// readChunk is the budgeted read loop; maxRows <= 0 drains to EOF.
func (s *Stream) readChunk(maxRows int) (int, error) {
	appended := 0
	for maxRows <= 0 || appended < maxRows {
		budget := streamBatchRows
		if maxRows > 0 && maxRows-appended < budget {
			budget = maxRows - appended
		}
		rows, err := s.src.Next(budget)
		for _, row := range rows {
			if aerr := s.d.AppendRow(row); aerr != nil {
				return appended, aerr
			}
			appended++
		}
		if err != nil {
			return appended, err
		}
	}
	return appended, nil
}

// ReadAll drains the remaining rows into the dataset. It is the one
// explicit "no budget" entry point; ReadChunk always bounds its read.
func (s *Stream) ReadAll() error {
	_, err := s.readChunk(0)
	if err == io.EOF {
		return nil
	}
	return err
}

// Read parses a dataset from a self-describing body in the named format.
// It is the one-shot form of NewStream: chunked and whole-input loads
// produce identical datasets, including identical dictionary IDs.
func Read(name, format string, r io.Reader) (*Dataset, error) {
	src, err := NewSource(format, r)
	if err != nil {
		return nil, err
	}
	s := NewStream(name, src)
	if err := s.ReadAll(); err != nil {
		return nil, err
	}
	return s.d, nil
}

// ReadFile loads a dataset from a file path. An empty format auto-detects
// from the extension (FormatForPath).
func ReadFile(name, path, format string) (*Dataset, error) {
	if format == "" {
		format = FormatForPath(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(name, format, f)
}
