package table

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestReadChunkRejectsNonPositiveBudget is the regression test for the old
// maxRows<=0 drain-all sentinel: a caller whose computed chunk budget hit
// zero used to silently consume the entire remaining stream. Now the
// sentinel is explicit (ReadAll) and a non-positive budget is an error that
// appends nothing.
func TestReadChunkRejectsNonPositiveBudget(t *testing.T) {
	for _, budget := range []int{0, -1, -100} {
		s, err := NewCSVStream("b", strings.NewReader("a,b\n1,2\n3,4\n"))
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.ReadChunk(budget)
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("ReadChunk(%d) = (%d, %v), want a budget error", budget, n, err)
		}
		if n != 0 || s.Dataset().NumRows() != 0 {
			t.Fatalf("ReadChunk(%d) consumed %d rows (dataset has %d); a rejected budget must not drain the stream",
				budget, n, s.Dataset().NumRows())
		}
		// The stream stays usable: the rejection did not consume input.
		if n, err := s.ReadChunk(10); n != 2 || err != nil && err != io.EOF {
			t.Fatalf("read after rejected budget = (%d, %v), want 2 rows", n, err)
		}
	}
}

// TestReadChunkHeaderOnlyBody: a chunked read over a header-only body
// reports io.EOF with zero rows on the first budgeted call, and the dataset
// keeps the parsed schema.
func TestReadChunkHeaderOnlyBody(t *testing.T) {
	s, err := NewCSVStream("h", strings.NewReader("a,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.ReadChunk(16)
	if n != 0 || err != io.EOF {
		t.Fatalf("header-only ReadChunk = (%d, %v), want (0, io.EOF)", n, err)
	}
	if got := s.Dataset().NumCols(); got != 3 {
		t.Fatalf("header-only dataset has %d cols, want 3", got)
	}
	if n, err := s.ReadChunk(16); n != 0 || err != io.EOF {
		t.Fatalf("repeated header-only ReadChunk = (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestReadChunkMidRecordTruncation: a body cut off inside a quoted record
// surfaces a parse error from the budgeted read, and every complete row
// before the truncation point is retained.
func TestReadChunkMidRecordTruncation(t *testing.T) {
	in := "a,b\n1,2\n3,\"unterminated quote"
	s, err := NewCSVStream("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var lastErr error
	for {
		n, err := s.ReadChunk(1)
		total += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || errors.Is(lastErr, io.EOF) {
		t.Fatalf("truncated record must surface a parse error, got %v", lastErr)
	}
	if total != 1 || s.Dataset().NumRows() != 1 || s.Dataset().Value(0, 1) != "2" {
		t.Fatalf("rows before the truncation must be retained: read %d, dataset has %d",
			total, s.Dataset().NumRows())
	}
}
