package table

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// NDJSON ingest: one JSON value per line, in either framing —
//
//   - array framing: ["v1","v2",...] with cells in column order;
//   - object framing: {"col1":"v1","col2":"v2",...} keyed by column name.
//
// Non-string scalars keep their JSON text as the cell value; null becomes
// the empty string; nested arrays/objects are rejected (cells are scalars).
// Blank lines are skipped. Lines are capped at ndjsonMaxLine bytes.
//
// A self-describing source (schema == nil) takes its header from the first
// non-blank line: a JSON array of strings is the header row (mirroring the
// CSV header), while an object contributes its keys — in document order —
// as the header and is itself the first data row. Every later line must
// cover exactly that header. A schema-bound source (schema != nil) treats
// every line as data in the given column order; objects must supply every
// schema column and nothing else.

// NDJSON scanner limits: lines start at 64 KiB and may grow to 4 MiB.
const (
	ndjsonInitLine = 64 << 10
	ndjsonMaxLine  = 4 << 20
)

// ndjsonSource decodes an NDJSON body as a RowSource.
type ndjsonSource struct {
	sc     *bufio.Scanner
	header []string
	bound  bool       // schema-bound: every line is data
	first  [][]string // pending data row decoded during header discovery
	line   int        // physical line number, for error positions
}

// NewNDJSONSource opens an NDJSON RowSource. With a nil schema the source
// is self-describing (the first line defines the header, see the package
// comment above); with a schema every line is a data row in schema order.
// Every malformed input comes back as an error, not a panic.
func NewNDJSONSource(r io.Reader, schema []string) (RowSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, ndjsonInitLine), ndjsonMaxLine)
	n := &ndjsonSource{sc: sc}
	if schema != nil {
		n.header = append([]string(nil), schema...)
		n.bound = true
		return n, nil
	}
	raw, err := n.scanLine()
	if err == io.EOF {
		return nil, fmt.Errorf("table: ndjson has no header line")
	}
	if err != nil {
		return nil, fmt.Errorf("table: reading ndjson header: %w", err)
	}
	switch raw[0] {
	case '[':
		var cells []json.RawMessage
		if err := json.Unmarshal(raw, &cells); err != nil {
			return nil, fmt.Errorf("table: ndjson line %d: %v", n.line, err)
		}
		hdr := make([]string, len(cells))
		for i, c := range cells {
			t := trimSpaceBytes(c)
			if len(t) == 0 || t[0] != '"' {
				return nil, fmt.Errorf("table: ndjson line %d: header cell %d must be a JSON string", n.line, i)
			}
			if err := json.Unmarshal(t, &hdr[i]); err != nil {
				return nil, fmt.Errorf("table: ndjson line %d: %v", n.line, err)
			}
		}
		n.header = hdr
	case '{':
		keys, row, err := decodeObjectOrdered(raw)
		if err != nil {
			return nil, fmt.Errorf("table: ndjson line %d: %v", n.line, err)
		}
		n.header = keys
		n.first = [][]string{row}
	default:
		return nil, fmt.Errorf("table: ndjson line %d: must be a JSON array or object, got %q", n.line, raw[0])
	}
	return n, nil
}

func (n *ndjsonSource) Header() []string { return n.header }

// scanLine advances to the next non-blank line, returning its trimmed
// bytes (valid until the next scan) or io.EOF.
func (n *ndjsonSource) scanLine() ([]byte, error) {
	for n.sc.Scan() {
		n.line++
		raw := trimSpaceBytes(n.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		return raw, nil
	}
	if err := n.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

func (n *ndjsonSource) Next(max int) ([][]string, error) {
	var rows [][]string
	if len(n.first) > 0 && max > 0 {
		rows = n.first
		n.first = nil
	}
	for len(rows) < max {
		raw, err := n.scanLine()
		if err == io.EOF {
			return rows, io.EOF
		}
		if err != nil {
			return rows, err
		}
		row, err := n.decodeLine(raw)
		if err != nil {
			return rows, fmt.Errorf("table: ndjson line %d: %v", n.line, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// decodeLine decodes one data line against the header.
func (n *ndjsonSource) decodeLine(raw []byte) ([]string, error) {
	switch raw[0] {
	case '[':
		var cells []json.RawMessage
		if err := json.Unmarshal(raw, &cells); err != nil {
			return nil, err
		}
		if len(cells) != len(n.header) {
			return nil, fmt.Errorf("array has %d cells, want %d", len(cells), len(n.header))
		}
		row := make([]string, len(cells))
		for i, c := range cells {
			v, err := jsonCell(c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	case '{':
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, err
		}
		row := make([]string, len(n.header))
		for i, a := range n.header {
			c, ok := obj[a]
			if !ok {
				return nil, fmt.Errorf("object is missing attribute %q", a)
			}
			v, err := jsonCell(c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if len(obj) > len(n.header) {
			for k := range obj {
				known := false
				for _, a := range n.header {
					if k == a {
						known = true
						break
					}
				}
				if !known {
					return nil, fmt.Errorf("object has unknown attribute %q", k)
				}
			}
		}
		return row, nil
	default:
		return nil, fmt.Errorf("line must be a JSON array or object, got %q", raw[0])
	}
}

// decodeObjectOrdered decodes one JSON object preserving key order — the
// header-discovery path, where document order becomes column order.
// Duplicate keys are rejected (a map decode would silently collapse them).
func decodeObjectOrdered(raw []byte) (keys []string, row []string, err error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil {
		return nil, nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, nil, fmt.Errorf("expected a JSON object")
	}
	seen := make(map[string]bool)
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, err
		}
		k, ok := tok.(string)
		if !ok {
			return nil, nil, fmt.Errorf("bad object key %v", tok)
		}
		if seen[k] {
			return nil, nil, fmt.Errorf("object repeats attribute %q", k)
		}
		seen[k] = true
		var v json.RawMessage
		if err := dec.Decode(&v); err != nil {
			return nil, nil, err
		}
		cell, err := jsonCell(v)
		if err != nil {
			return nil, nil, err
		}
		keys = append(keys, k)
		row = append(row, cell)
	}
	if _, err := dec.Token(); err != nil { // consume the closing '}'
		return nil, nil, err
	}
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("header object has no attributes")
	}
	return keys, row, nil
}

// jsonCell renders one JSON scalar as its cell string.
func jsonCell(raw json.RawMessage) (string, error) {
	t := trimSpaceBytes(raw)
	if len(t) == 0 {
		return "", fmt.Errorf("empty cell value")
	}
	switch t[0] {
	case '"':
		var s string
		if err := json.Unmarshal(t, &s); err != nil {
			return "", err
		}
		return s, nil
	case '[', '{':
		return "", fmt.Errorf("cell value must be a scalar, got %q", t[0])
	default:
		if string(t) == "null" {
			return "", nil
		}
		return string(t), nil // numbers and booleans keep their JSON text
	}
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}

// NewNDJSONStream starts a streaming parse of a self-describing NDJSON
// body, the NDJSON twin of NewCSVStream: the header line is decoded
// immediately, data rows are left for ReadChunk/ReadAll, and chunked and
// whole-input loads produce identical datasets, including dictionary IDs.
func NewNDJSONStream(name string, r io.Reader) (*Stream, error) {
	src, err := NewNDJSONSource(r, nil)
	if err != nil {
		return nil, err
	}
	return NewStream(name, src), nil
}

// ReadNDJSON parses a dataset from a self-describing NDJSON body. It is
// the one-shot form of NewNDJSONStream.
func ReadNDJSON(name string, r io.Reader) (*Dataset, error) {
	return Read(name, FormatNDJSON, r)
}
