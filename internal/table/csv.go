package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a dataset from CSV with a header row. The dataset name is
// taken from the caller, not the file.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv has no header row")
	}
	d := NewWithCapacity(name, records[0], len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != len(d.Attrs) {
			return nil, fmt.Errorf("table: row %d has %d fields, want %d", i+1, len(rec), len(d.Attrs))
		}
		d.AppendRow(rec)
	}
	return d, nil
}

// ReadCSVFile loads a dataset from a CSV file path.
func ReadCSVFile(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// WriteCSV serializes the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Attrs); err != nil {
		return err
	}
	record := make([]string, d.NumCols())
	for i := 0; i < d.NumRows(); i++ {
		for j := range record {
			record[j] = d.Value(i, j)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a CSV file path.
func (d *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteCSV(f)
}
