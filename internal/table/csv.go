package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// csvSource decodes a headered CSV body as a RowSource.
type csvSource struct {
	cr     *csv.Reader
	header []string
	row    int // data rows delivered, for error positions
}

// NewCSVSource opens a CSV RowSource: the header row is read immediately,
// data rows are delivered by Next. Every malformed input — missing header,
// ragged rows, quoting errors — comes back as an error, not a panic.
func NewCSVSource(r io.Reader) (RowSource, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	// The record slice is reused across rows; Next copies the slice header
	// (the field strings themselves are freshly allocated by encoding/csv),
	// so nothing aliases the reader's state.
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("table: csv has no header row")
	}
	if err != nil {
		return nil, fmt.Errorf("table: reading csv header: %w", err)
	}
	return &csvSource{cr: cr, header: append([]string(nil), hdr...)}, nil
}

func (c *csvSource) Header() []string { return c.header }

func (c *csvSource) Next(max int) ([][]string, error) {
	var rows [][]string
	for len(rows) < max {
		rec, err := c.cr.Read()
		if err == io.EOF {
			return rows, io.EOF
		}
		if err != nil {
			return rows, fmt.Errorf("table: reading csv: %w", err)
		}
		if len(rec) != len(c.header) {
			return rows, fmt.Errorf("table: row %d has %d fields, want %d",
				c.row+1, len(rec), len(c.header))
		}
		rows = append(rows, append([]string(nil), rec...))
		c.row++
	}
	return rows, nil
}

// CSVStream is the CSV instantiation of Stream, kept as a named alias for
// the many call sites that predate the format-agnostic ingest layer.
type CSVStream = Stream

// NewCSVStream starts a streaming CSV parse: it reads the header row
// immediately and leaves the data rows for ReadChunk/ReadAll. The dataset
// name is taken from the caller, not the file.
func NewCSVStream(name string, r io.Reader) (*CSVStream, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return NewStream(name, src), nil
}

// ReadCSV parses a dataset from CSV with a header row. It is the one-shot
// form of CSVStream: chunked and whole-file loads produce identical
// datasets, including identical dictionary IDs.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	return Read(name, FormatCSV, r)
}

// ReadCSVFile loads a dataset from a CSV file path.
func ReadCSVFile(name, path string) (*Dataset, error) {
	return ReadFile(name, path, FormatCSV)
}

// WriteCSV serializes the dataset as CSV with a header row. Records that
// encoding/csv would render as a blank line (a single empty field — blank
// lines are skipped on read, silently dropping the record) are written as
// an explicitly quoted empty string, so WriteCSV output always parses back
// to the same cells.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	writeRecord := func(record []string) error {
		if len(record) == 1 && record[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			_, err := io.WriteString(w, "\"\"\n")
			return err
		}
		return cw.Write(record)
	}
	if err := writeRecord(d.Attrs); err != nil {
		return err
	}
	record := make([]string, d.NumCols())
	for i := 0; i < d.NumRows(); i++ {
		for j := range record {
			record[j] = d.Value(i, j)
		}
		if err := writeRecord(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a CSV file path.
func (d *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteCSV(f)
}
