package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// CSVStream incrementally parses a headered CSV into a columnar Dataset.
// Unlike a ReadAll-style loader it never materializes the full row-oriented
// record set: each record is appended straight into the dataset's per-column
// ID slices and intern-pool dictionaries as it is decoded. Because the pools
// are append-only, value IDs handed out for early chunks stay valid as later
// chunks arrive, so row shards can be cut (SubsetRows, Snapshot) between
// chunks while the load is still in flight.
type CSVStream struct {
	d  *Dataset
	cr *csv.Reader
}

// NewCSVStream starts a streaming CSV parse: it reads the header row
// immediately and leaves the data rows for ReadChunk/ReadAll. The dataset
// name is taken from the caller, not the file.
func NewCSVStream(name string, r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	// The record slice is reused across rows; AppendRow interns the field
	// strings (copying them into the pools), so nothing from the reader's
	// buffers is retained.
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("table: csv has no header row")
	}
	if err != nil {
		return nil, fmt.Errorf("table: reading csv header: %w", err)
	}
	return &CSVStream{d: New(name, append([]string(nil), hdr...)), cr: cr}, nil
}

// Dataset returns the dataset being loaded. It grows as chunks are read;
// take a Snapshot (or SubsetRows) to hand a stable view to concurrent
// readers while the stream continues.
func (s *CSVStream) Dataset() *Dataset { return s.d }

// ReadChunk appends up to maxRows data rows and returns the number
// appended. maxRows must be positive: a caller whose computed chunk budget
// reaches zero almost certainly wants "read nothing", and silently draining
// the whole stream instead (the historical maxRows<=0 sentinel) turned that
// arithmetic slip into an unbounded read — use ReadAll when draining is
// what you mean. It returns io.EOF once the input is exhausted and a
// wrapped parse error on malformed or ragged rows; rows appended before the
// error remain in the dataset.
func (s *CSVStream) ReadChunk(maxRows int) (int, error) {
	if maxRows <= 0 {
		return 0, fmt.Errorf("table: ReadChunk needs a positive row budget, got %d (use ReadAll to drain the stream)", maxRows)
	}
	return s.readChunk(maxRows)
}

// readChunk is the budgeted read loop; maxRows <= 0 drains to EOF.
func (s *CSVStream) readChunk(maxRows int) (int, error) {
	appended := 0
	for maxRows <= 0 || appended < maxRows {
		rec, err := s.cr.Read()
		if err == io.EOF {
			return appended, io.EOF
		}
		if err != nil {
			return appended, fmt.Errorf("table: reading csv: %w", err)
		}
		if len(rec) != len(s.d.Attrs) {
			return appended, fmt.Errorf("table: row %d has %d fields, want %d",
				s.d.NumRows()+1, len(rec), len(s.d.Attrs))
		}
		if err := s.d.AppendRow(rec); err != nil {
			return appended, err
		}
		appended++
	}
	return appended, nil
}

// ReadAll drains the remaining rows into the dataset. It is the one
// explicit "no budget" entry point; ReadChunk always bounds its read.
func (s *CSVStream) ReadAll() error {
	_, err := s.readChunk(0)
	if err == io.EOF {
		return nil
	}
	return err
}

// ReadCSV parses a dataset from CSV with a header row. It is the one-shot
// form of CSVStream: chunked and whole-file loads produce identical
// datasets, including identical dictionary IDs.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	s, err := NewCSVStream(name, r)
	if err != nil {
		return nil, err
	}
	if err := s.ReadAll(); err != nil {
		return nil, err
	}
	return s.d, nil
}

// ReadCSVFile loads a dataset from a CSV file path.
func ReadCSVFile(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// WriteCSV serializes the dataset as CSV with a header row. Records that
// encoding/csv would render as a blank line (a single empty field — blank
// lines are skipped on read, silently dropping the record) are written as
// an explicitly quoted empty string, so WriteCSV output always parses back
// to the same cells.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	writeRecord := func(record []string) error {
		if len(record) == 1 && record[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			_, err := io.WriteString(w, "\"\"\n")
			return err
		}
		return cw.Write(record)
	}
	if err := writeRecord(d.Attrs); err != nil {
		return err
	}
	record := make([]string, d.NumCols())
	for i := 0; i < d.NumRows(); i++ {
		for j := range record {
			record[j] = d.Value(i, j)
		}
		if err := writeRecord(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a CSV file path.
func (d *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteCSV(f)
}
