package table_test

import (
	"fmt"

	"repro/internal/table"
)

func ExampleDataset_SerializeTuple() {
	d := table.New("tax", []string{"Name", "Salary"})
	d.MustAppendRow([]string{"Carol Brown", "60000"})
	fmt.Println(d.SerializeTuple(0))
	// Output: Name: Carol Brown, Salary: 60000
}

func ExampleErrorMask() {
	clean := table.New("t", []string{"City", "State"})
	clean.MustAppendRow([]string{"Chicago", "IL"})
	dirty := clean.Clone()
	dirty.SetValue(0, 1, "CA")
	mask, _ := table.ErrorMask(dirty, clean)
	fmt.Println(mask[0][0], mask[0][1])
	// Output: false true
}
