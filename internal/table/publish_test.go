package table

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPublishSnapshotCrossGoroutine pins the safe cross-goroutine handoff:
// one goroutine appends rows and publishes snapshots, while reader
// goroutines concurrently load the latest published view and walk every
// cell of it. Run under -race this is the regression test for the old
// pattern, where a reader-side d.Snapshot() call raced with appends (the
// snapshot copy reads the live slice headers, dict lengths, and index maps
// while AppendRow grows them); routing the handoff through the atomic
// PublishSnapshot/LatestSnapshot pair is the fix. Replacing the
// LatestSnapshot call below with stream.Dataset().Snapshot() reproduces the
// pre-fix race report.
func TestPublishSnapshotCrossGoroutine(t *testing.T) {
	const rows = 2000
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "a%d,b%d,c%d\n", i%13, i%7, i)
	}
	stream, err := NewCSVStream("pub", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	d := stream.Dataset()

	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			for !done.Load() {
				snap := d.LatestSnapshot()
				if snap == nil {
					continue
				}
				if snap.NumRows() < seen {
					errc <- fmt.Errorf("published snapshot shrank from %d to %d rows", seen, snap.NumRows())
					return
				}
				seen = snap.NumRows()
				for i := 0; i < snap.NumRows(); i++ {
					if got, want := snap.Value(i, 0), fmt.Sprintf("a%d", i%13); got != want {
						errc <- fmt.Errorf("snapshot cell (%d,0) = %q, want %q", i, got, want)
						return
					}
					if id := snap.ValueID(i, 2); snap.DictValue(2, id) != fmt.Sprintf("c%d", i) {
						errc <- fmt.Errorf("snapshot ID round-trip broken at row %d", i)
						return
					}
				}
				if snap.NumRows() > 0 {
					if _, ok := snap.LookupID(1, "b0"); !ok {
						errc <- fmt.Errorf("snapshot lost an interned value")
						return
					}
				}
			}
		}()
	}

	for {
		_, err := stream.ReadChunk(37)
		d.PublishSnapshot()
		if err != nil {
			break
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if d.NumRows() != rows {
		t.Fatalf("loaded %d rows, want %d", d.NumRows(), rows)
	}
	final := d.LatestSnapshot()
	if final == nil || final.NumRows() != rows {
		t.Fatalf("final published snapshot has %v rows, want %d", final.NumRows(), rows)
	}
}

// TestLatestSnapshotBeforePublish: a dataset that never published reports
// nil rather than an inconsistent view.
func TestLatestSnapshotBeforePublish(t *testing.T) {
	d := New("n", []string{"a"})
	d.MustAppendRow([]string{"x"})
	if d.LatestSnapshot() != nil {
		t.Fatal("LatestSnapshot must be nil before the first PublishSnapshot")
	}
	if s := d.PublishSnapshot(); s.NumRows() != 1 {
		t.Fatalf("published snapshot has %d rows, want 1", s.NumRows())
	}
	if d.LatestSnapshot().NumRows() != 1 {
		t.Fatal("LatestSnapshot must return the published view")
	}
}
