package table

import (
	"fmt"
	"strings"
)

// Schema mapping: real-world uploads drift — columns arrive permuted, or
// with extra columns a model was never fitted on. MapColumns projects an
// upload header that is a superset and/or permutation of a model's schema
// onto that schema, so score/stream/repair requests bind to the model's
// dictionary-seeded dataset (NewFromDicts) without demanding byte-equal
// headers. Missing schema columns are a typed error (*MissingColumnsError);
// extra upload columns are dropped and reported in ColumnMapping.Dropped.

// MissingColumnsError reports schema columns the upload header lacks.
type MissingColumnsError struct {
	Missing []string // in schema order
}

func (e *MissingColumnsError) Error() string {
	return fmt.Sprintf("table: upload is missing schema columns: %s", strings.Join(e.Missing, ", "))
}

// ColumnMapping is a resolved header→schema projection.
type ColumnMapping struct {
	// Attrs is the target schema, in schema order.
	Attrs []string
	// Src[j] is the upload-header index supplying schema column j.
	Src []int
	// Dropped lists upload columns absent from the schema, in header order.
	Dropped []string

	width int // upload header arity, for row checks
}

// MapColumns resolves how the upload header maps onto the schema. The
// header must contain every schema column exactly once; headers (or
// schemas) that repeat a name are rejected as ambiguous. A header equal to
// the schema yields the identity mapping.
func MapColumns(schema, header []string) (*ColumnMapping, error) {
	pos := make(map[string]int, len(header))
	for i, h := range header {
		if _, dup := pos[h]; dup {
			return nil, fmt.Errorf("table: upload header repeats column %q", h)
		}
		pos[h] = i
	}
	m := &ColumnMapping{
		Attrs: append([]string(nil), schema...),
		Src:   make([]int, len(schema)),
		width: len(header),
	}
	used := make([]bool, len(header))
	var missing []string
	seen := make(map[string]bool, len(schema))
	for j, a := range schema {
		if seen[a] {
			return nil, fmt.Errorf("table: schema repeats column %q", a)
		}
		seen[a] = true
		i, ok := pos[a]
		if !ok {
			missing = append(missing, a)
			continue
		}
		m.Src[j] = i
		used[i] = true
	}
	if len(missing) > 0 {
		return nil, &MissingColumnsError{Missing: missing}
	}
	for i, h := range header {
		if !used[i] {
			m.Dropped = append(m.Dropped, h)
		}
	}
	return m, nil
}

// Identity reports whether the mapping is a no-op: the header equals the
// schema in order, with nothing dropped.
func (m *ColumnMapping) Identity() bool {
	if m.width != len(m.Attrs) || len(m.Dropped) > 0 {
		return false
	}
	for j, i := range m.Src {
		if i != j {
			return false
		}
	}
	return true
}

// Apply projects one upload row (in header order) onto the schema.
func (m *ColumnMapping) Apply(row []string) ([]string, error) {
	if len(row) != m.width {
		return nil, fmt.Errorf("table: row has %d fields, header has %d", len(row), m.width)
	}
	out := make([]string, len(m.Src))
	for j, i := range m.Src {
		out[j] = row[i]
	}
	return out, nil
}

// MapSource wraps src so its rows arrive projected onto the schema. When
// the source header already equals the schema the source is returned
// untouched (the mapping still reports Identity and Dropped).
func MapSource(schema []string, src RowSource) (RowSource, *ColumnMapping, error) {
	m, err := MapColumns(schema, src.Header())
	if err != nil {
		return nil, nil, err
	}
	if m.Identity() {
		return src, m, nil
	}
	return &mappedSource{src: src, m: m}, m, nil
}

type mappedSource struct {
	src RowSource
	m   *ColumnMapping
}

func (s *mappedSource) Header() []string { return s.m.Attrs }

func (s *mappedSource) Next(max int) ([][]string, error) {
	rows, err := s.src.Next(max)
	for i, row := range rows {
		mapped, merr := s.m.Apply(row)
		if merr != nil {
			return rows[:i], merr
		}
		rows[i] = mapped
	}
	return rows, err
}

// Project returns a dataset view of d whose columns are reordered (and
// extras dropped) to match the schema. The identity mapping returns d
// itself; otherwise the kept columns are deep-copied, so the projection's
// pools evolve independently of d's. Value IDs within each kept column are
// preserved.
func Project(d *Dataset, schema []string) (*Dataset, *ColumnMapping, error) {
	m, err := MapColumns(schema, d.Attrs)
	if err != nil {
		return nil, nil, err
	}
	if m.Identity() {
		return d, m, nil
	}
	out := &Dataset{
		Name:  d.Name,
		Attrs: append([]string(nil), schema...),
		cols:  make([]column, len(schema)),
		nrows: d.nrows,
	}
	for j, i := range m.Src {
		out.cols[j] = d.cols[i].clone()
	}
	return out, m, nil
}
