// Package randx holds small deterministic sampling utilities shared by the
// pipeline's seeded random draws.
package randx

import "math/rand"

// PartialPerm draws k distinct integers from [0, n) in O(k) time and O(k)
// space, distributed exactly like the first k entries of rand.Perm(n) — a
// partial Fisher–Yates shuffle over a virtual identity array whose
// displaced entries live in a small map. The full-shuffle path
// (rng.Perm(n)[:k]) costs O(n) allocations and swaps even when k << n,
// which dominated seeded row sampling on Tax-scale datasets.
//
// The draw consumes exactly k values from rng (one Intn per position), so
// callers holding derived per-(attribute, phase) streams stay deterministic
// for any n.
func PartialPerm(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int{}
	}
	out := make([]int, k)
	// disp[p] is the value currently sitting at position p of the virtual
	// array wherever it differs from the identity; at most k entries exist
	// at any time.
	disp := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := disp[j]
		if !ok {
			vj = j
		}
		vi, ok := disp[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		disp[j] = vi
		// Position i is consumed; dropping it bounds the map at k entries.
		// (When j == i this removes the entry just written, which is
		// correct: the position will never be read again.)
		delete(disp, i)
	}
	return out
}
