package randx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPartialPermInvariants: k distinct values, all within [0, n), same
// seed ⇒ same draw.
func TestPartialPermInvariants(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint16) bool {
		n := int(nRaw)%500 + 1
		k := int(kRaw) % (n + 10) // sometimes k > n: must clamp
		a := PartialPerm(rand.New(rand.NewSource(seed)), n, k)
		b := PartialPerm(rand.New(rand.NewSource(seed)), n, k)
		want := k
		if want > n {
			want = n
		}
		if len(a) != want || len(b) != want {
			return false
		}
		seen := make(map[int]bool, len(a))
		for i, v := range a {
			if v < 0 || v >= n || seen[v] || b[i] != v {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPartialPermFullDrawIsPermutation: k == n yields a permutation of
// 0..n-1.
func TestPartialPermFullDrawIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	p := PartialPerm(rng, n, n)
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestPartialPermEdgeCases covers empty and degenerate draws.
func TestPartialPermEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := PartialPerm(rng, 10, 0); len(got) != 0 {
		t.Errorf("k=0 should draw nothing, got %v", got)
	}
	if got := PartialPerm(rng, 10, -3); len(got) != 0 {
		t.Errorf("k<0 should draw nothing, got %v", got)
	}
	if got := PartialPerm(rng, 1, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("n=1 draw = %v, want [0]", got)
	}
}

// TestPartialPermUniform spot-checks that every element is drawn with
// roughly equal probability (a biased partial shuffle would skew the
// cluster-row and labeling samples).
func TestPartialPermUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, v := range PartialPerm(rng, n, k) {
			counts[v]++
		}
	}
	expected := float64(trials*k) / n
	for v, c := range counts {
		if ratio := float64(c) / expected; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("value %d drawn %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func BenchmarkPartialPerm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PartialPerm(rng, 200000, 30)
	}
}

func BenchmarkFullPermSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rng.Perm(200000)[:30]
	}
}
