package feature

import (
	"testing"

	"repro/internal/criteria"
	"repro/internal/table"
)

func sample() *table.Dataset {
	d := table.New("tax", []string{"Name", "Gender", "Education", "Salary"})
	names := []string{"Alice", "Bob", "Carol", "Dave"}
	genders := []string{"F", "M", "F", "M"}
	edus := []string{"Phd", "Master", "Bachelor", "Master"}
	for r := 0; r < 25; r++ {
		for i := range names {
			d.MustAppendRow([]string{names[i], genders[i], edus[i], "50000"})
		}
	}
	return d
}

func TestDimensions(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 16, CorrK: 2})
	wantBase := 1 + 2 + 3 + 16 + MaxCriteriaFeatures
	if got := e.BaseDim(); got != wantBase {
		t.Errorf("BaseDim = %d, want %d", got, wantBase)
	}
	if got := e.Dim(); got != wantBase*3 {
		t.Errorf("Dim = %d, want %d", got, wantBase*3)
	}
	f := e.Feature(0, 0)
	if len(f) != e.Dim() {
		t.Errorf("len(Feature) = %d, want %d", len(f), e.Dim())
	}
}

func TestCorrKClamp(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 99})
	if got := len(e.Correlated(0)); got != 3 {
		t.Errorf("CorrK clamp: got %d correlated attrs, want 3", got)
	}
}

func TestNameGenderCorrelation(t *testing.T) {
	e := NewExtractor(sample(), DefaultConfig())
	// Name determines Gender exactly; Gender must be among Name's top-2.
	found := false
	for _, q := range e.Correlated(0) {
		if q == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("Gender not in Name's correlated set %v", e.Correlated(0))
	}
}

func TestRowFeaturesMatchesFeature(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 2})
	rf := e.RowFeatures(3)
	for j := 0; j < 4; j++ {
		f := e.Feature(3, j)
		if len(rf[j]) != len(f) {
			t.Fatalf("row feature dim mismatch at col %d", j)
		}
		for k := range f {
			if rf[j][k] != f[k] {
				t.Fatalf("RowFeatures != Feature at col %d index %d", j, k)
			}
		}
	}
}

func TestCriteriaFeaturesWired(t *testing.T) {
	d := sample()
	d.SetValue(0, 3, "99") // a salary that will fail a range criterion
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 1})
	set := &criteria.Set{Attr: "Salary", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindRange, Attr: "Salary", Lo: 10000, Hi: 90000},
	}}
	e.SetCriteria(3, set)
	critStart := 1 + 1 + 3 + 8
	bad := e.Feature(0, 3)
	good := e.Feature(1, 3)
	if bad[critStart] != 0 {
		t.Errorf("failing criterion bit = %v, want 0", bad[critStart])
	}
	if good[critStart] != 1 {
		t.Errorf("passing criterion bit = %v, want 1", good[critStart])
	}
	// Padding is neutral 1.0.
	if bad[critStart+1] != 1 {
		t.Errorf("padding bit = %v, want 1", bad[critStart+1])
	}
}

func TestDisableCriteriaAblation(t *testing.T) {
	d := sample()
	d.SetValue(0, 3, "99")
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 1, DisableCriteria: true})
	set := &criteria.Set{Attr: "Salary", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindRange, Attr: "Salary", Lo: 10000, Hi: 90000},
	}}
	e.SetCriteria(3, set)
	critStart := 1 + 1 + 3 + 8
	f := e.Feature(0, 3)
	if f[critStart] != 1 {
		t.Error("w/o Crit. ablation must pad criteria block with neutral 1s")
	}
	if len(f) != e.Dim() {
		t.Error("ablation must not change dimensionality")
	}
}

func TestDisableCorrelatedAblation(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 2, DisableCorrelated: true})
	f := e.Feature(0, 0)
	bd := e.BaseDim()
	for i := bd; i < len(f); i++ {
		if f[i] != 0 {
			t.Fatal("w/o Corr. ablation must zero the correlated blocks")
		}
	}
}

func TestValueFrequencyFeature(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 1})
	f := e.Feature(0, 0) // "Alice" appears 25/100 times
	if f[0] != 0.25 {
		t.Errorf("value frequency = %v, want 0.25", f[0])
	}
	// Vicinity: Gender "F" given... index 1 is vicinity w.r.t. top-1
	// correlated attr; Alice co-occurs with F always and F appears 50
	// times, so count(Alice|F)/count(F) = 25/50 when Gender is top corr.
	if e.Correlated(0)[0] == 1 && f[1] != 0.5 {
		t.Errorf("vicinity frequency = %v, want 0.5", f[1])
	}
}

func TestColumnFeatures(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 1})
	rows := []int{0, 1, 2}
	feats := e.ColumnFeatures(2, rows)
	if len(feats) != 3 {
		t.Fatalf("got %d feature vectors, want 3", len(feats))
	}
	for _, f := range feats {
		if len(f) != e.Dim() {
			t.Fatal("column feature dim mismatch")
		}
	}
}

// TestFeatureMatchesMapBasedCriteria cross-checks the per-value-ID
// memoized criteria bits against the reference map-based evaluation,
// including a row-dependent FD criterion.
func TestFeatureMatchesMapBasedCriteria(t *testing.T) {
	d := sample()
	d.SetValue(0, 2, "Phd")     // break Name->Education for row 0
	d.SetValue(1, 3, "notanum") // fail numeric range
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 1})
	set := &criteria.Set{Attr: "Education", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindDomain, Attr: "Education", Name: "dom",
			Domain: map[string]bool{"phd": true, "master": true, "bachelor": true}},
		{Kind: criteria.KindFD, Attr: "Education", Name: "fd", DetAttr: "Name",
			Mapping: map[string]string{"Alice": "Phd", "Bob": "Master", "Carol": "Bachelor", "Dave": "Master"}},
	}}
	e.SetCriteria(2, set)
	critStart := 1 + 1 + 3 + 8
	for i := 0; i < 8; i++ {
		f := e.Feature(i, 2)
		rowMap := d.RowMap(i)
		for k, c := range set.Criteria {
			want := 0.0
			if c.Eval(rowMap, set.Attr) {
				want = 1.0
			}
			if f[critStart+k] != want {
				t.Errorf("row %d criterion %d: memoized bit %v, map-based %v", i, k, f[critStart+k], want)
			}
		}
	}
}

// TestFeatureAfterDictGrowth verifies that values interned after extractor
// construction (the synthetic-augmentation path) still produce correct
// features via the fallback path.
func TestFeatureAfterDictGrowth(t *testing.T) {
	d := sample()
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 1})
	set := &criteria.Set{Attr: "Salary", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindRange, Attr: "Salary", Lo: 10000, Hi: 90000},
	}}
	e.SetCriteria(3, set)
	d.SetValue(0, 3, "totally-novel-999999") // novel value: dict grows past the memos
	f := e.Feature(0, 3)
	if f[0] != 0 {
		t.Errorf("novel value frequency = %v, want 0", f[0])
	}
	critStart := 1 + 1 + 3 + 8
	if f[critStart] != 0 {
		t.Errorf("novel out-of-range value must fail the range criterion, got %v", f[critStart])
	}
	d.SetValue(0, 3, "50000") // restore
	g := e.Feature(0, 3)
	if g[critStart] != 1 {
		t.Errorf("restored value must pass the range criterion, got %v", g[critStart])
	}
}

// TestFeatureIntoZeroAllocs is the steady-state allocation regression
// guard: once the extractor is built, per-cell feature extraction must not
// allocate.
func TestFeatureIntoZeroAllocs(t *testing.T) {
	d := sample()
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 2})
	set := &criteria.Set{Attr: "Salary", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindRange, Attr: "Salary", Lo: 10000, Hi: 90000},
		{Kind: criteria.KindFD, Attr: "Salary", DetAttr: "Name",
			Mapping: map[string]string{"Alice": "50000"}},
	}}
	e.SetCriteria(3, set)
	out := make([]float64, e.Dim())
	allocs := testing.AllocsPerRun(100, func() {
		e.FeatureInto(0, 3, out)
		e.FeatureInto(1, 0, out)
	})
	if allocs != 0 {
		t.Errorf("FeatureInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestRowFeaturesIntoMatchesFeatureInto pins the tile path against the
// per-cell path element for element, including under the ablations.
func TestRowFeaturesIntoMatchesFeatureInto(t *testing.T) {
	for _, cfg := range []Config{
		{EmbedDim: 8, CorrK: 2},
		{EmbedDim: 8, CorrK: 2, DisableCorrelated: true},
		{EmbedDim: 8, CorrK: 2, DisableCriteria: true},
	} {
		d := sample()
		d.SetValue(0, 2, "Phd") // perturb one cell so rows differ
		e := NewExtractor(d, cfg)
		set := &criteria.Set{Attr: "Education", Criteria: []*criteria.Criterion{
			{Kind: criteria.KindFD, Attr: "Education", DetAttr: "Name",
				Mapping: map[string]string{"Alice": "Phd", "Bob": "Master", "Carol": "Bachelor", "Dave": "Master"}},
		}}
		e.SetCriteria(2, set)
		dim := e.Dim()
		tile := make([]float64, d.NumCols()*dim)
		cell := make([]float64, dim)
		for i := 0; i < 8; i++ {
			// Poison the tile so stale values would be caught.
			for k := range tile {
				tile[k] = -999
			}
			e.RowFeaturesInto(i, tile)
			for j := 0; j < d.NumCols(); j++ {
				e.FeatureInto(i, j, cell)
				for k := 0; k < dim; k++ {
					if tile[j*dim+k] != cell[k] {
						t.Fatalf("cfg %+v row %d col %d idx %d: tile %v != cell %v",
							cfg, i, j, k, tile[j*dim+k], cell[k])
					}
				}
			}
		}
	}
}

// TestFeaturesIntoMatchesColumnFeatures pins the column-tile path.
func TestFeaturesIntoMatchesColumnFeatures(t *testing.T) {
	e := NewExtractor(sample(), Config{EmbedDim: 8, CorrK: 1})
	rows := []int{0, 3, 7, 42}
	dim := e.Dim()
	tile := make([]float64, len(rows)*dim)
	e.FeaturesInto(2, rows, tile)
	ref := e.ColumnFeatures(2, rows)
	for idx := range rows {
		for k := 0; k < dim; k++ {
			if tile[idx*dim+k] != ref[idx][k] {
				t.Fatalf("row idx %d index %d: FeaturesInto %v != ColumnFeatures %v",
					idx, k, tile[idx*dim+k], ref[idx][k])
			}
		}
	}
}

// TestRowFeaturesIntoZeroAllocs guards the tile path's steady-state
// allocation-free contract.
func TestRowFeaturesIntoZeroAllocs(t *testing.T) {
	d := sample()
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 2})
	tile := make([]float64, d.NumCols()*e.Dim())
	allocs := testing.AllocsPerRun(100, func() {
		e.RowFeaturesInto(0, tile)
		e.RowFeaturesInto(1, tile)
	})
	if allocs != 0 {
		t.Errorf("RowFeaturesInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestDepColsCoverFeatureInputs checks the dedup-key contract: two rows
// that agree on the value IDs of DepCols(j) must produce identical feature
// vectors for attribute j, and DepCols must include the column itself plus
// its correlated set and any FD determinant.
func TestDepColsCoverFeatureInputs(t *testing.T) {
	d := sample()
	e := NewExtractor(d, Config{EmbedDim: 8, CorrK: 2})
	set := &criteria.Set{Attr: "Salary", Criteria: []*criteria.Criterion{
		{Kind: criteria.KindFD, Attr: "Salary", DetAttr: "Name",
			Mapping: map[string]string{"Alice": "50000"}},
	}}
	e.SetCriteria(3, set)
	for j := 0; j < d.NumCols(); j++ {
		dep := e.DepCols(j)
		has := map[int]bool{}
		for _, c := range dep {
			has[c] = true
		}
		if !has[j] {
			t.Errorf("DepCols(%d) = %v misses the column itself", j, dep)
		}
		for _, q := range e.Correlated(j) {
			if !has[q] {
				t.Errorf("DepCols(%d) = %v misses correlated attr %d", j, dep, q)
			}
		}
		for i := 1; i < len(dep); i++ {
			if dep[i] <= dep[i-1] {
				t.Errorf("DepCols(%d) = %v not sorted ascending", j, dep)
			}
		}
	}
	// FD determinant (Name, col 0) must be a dependency of Salary (col 3).
	found := false
	for _, c := range e.DepCols(3) {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("DepCols(3) = %v misses FD determinant column 0", e.DepCols(3))
	}
	// The behavioral contract: equal dep-IDs ⇒ equal features. Rows 0 and 4
	// are replicas in sample(), so they agree on every column.
	a := e.Feature(0, 3)
	b := e.Feature(4, 3)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("rows with identical dep IDs differ at feature index %d", k)
		}
	}
}

func BenchmarkFeatureInto(b *testing.B) {
	e := NewExtractor(sample(), DefaultConfig())
	out := make([]float64, e.Dim())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.FeatureInto(i%100, i%4, out)
	}
}

func BenchmarkRowFeatures(b *testing.B) {
	e := NewExtractor(sample(), DefaultConfig())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.RowFeatures(i % 100)
	}
}
