// Package feature implements ZeroED's feature representation (Section
// III-B). Each cell gets a base vector f_base = f_stat ⊕ f_pat ⊕ f_sem ⊕
// f_cri:
//
//   - f_stat: value frequency plus vicinity frequencies against the top-k
//     NMI-correlated attributes (the paper defines vicinity frequency over
//     all attributes; restricting to the correlated set is the same
//     efficiency argument Section III-B makes for the unified
//     representation, and keeps Tax-scale memory bounded);
//   - f_pat: pattern frequencies at generalization levels L1..L3;
//   - f_sem: hashed-subword embedding (FastText substitute);
//   - f_cri: binary criteria-adherence features, padded/truncated to a
//     fixed width so that one classifier can consume all attributes.
//
// The unified representation concatenates the cell's base vector with the
// base vectors of its correlated attributes' values in the same tuple:
// Feat(D[i,j]) = f_base(D[i,j]) ⊕ { f_base(D[i,q]) : q ∈ R_aj }.
package feature

import (
	"repro/internal/criteria"
	"repro/internal/embed"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
	"sync"
)

// MaxCriteriaFeatures is the fixed width of the criteria-adherence block.
// Attributes with fewer criteria are padded with 1.0 ("passes"), which is
// the neutral value; extra criteria beyond the cap are ignored.
const MaxCriteriaFeatures = 12

// nmiSampleCap bounds the rows used for the NMI matrix; correlations
// stabilize long before Tax-scale row counts.
const nmiSampleCap = 20000

// Config tunes the extractor.
type Config struct {
	// EmbedDim is the semantic embedding width (default embed.DefaultDim).
	EmbedDim int
	// CorrK is the number of correlated attributes per attribute
	// (the paper's default is 2).
	CorrK int
	// DisableCorrelated zeroes the correlated-attribute context — the
	// "w/o Corr." ablation of Table IV. Feature dimensions stay identical
	// so the classifier shape is unchanged.
	DisableCorrelated bool
	// DisableCriteria pads the criteria block with the neutral value —
	// the "w/o Crit." ablation.
	DisableCriteria bool
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{EmbedDim: embed.DefaultDim, CorrK: 2}
}

// Extractor derives feature vectors for every cell of one dataset.
type Extractor struct {
	d    *table.Dataset
	cfg  Config
	emb  *embed.Embedder
	cf   *stats.ColumnFrequencies
	nmi  [][]float64
	corr [][]int // top-k correlated attribute indices per attribute

	criteriaSets []*criteria.Set // per attribute, may contain nils

	// Per-column embedding memos. Each column has its own lock so that
	// per-attribute pipeline workers can share the extractor: a worker for
	// attribute j also touches the caches of j's correlated attributes.
	embMu    []sync.Mutex
	embCache []map[string][]float64
}

// NewExtractor scans the dataset, computes frequency tables and the NMI
// correlation structure, and prepares embedding caches.
func NewExtractor(d *table.Dataset, cfg Config) *Extractor {
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = embed.DefaultDim
	}
	if cfg.CorrK < 0 {
		cfg.CorrK = 0
	}
	if cfg.CorrK > d.NumCols()-1 {
		cfg.CorrK = d.NumCols() - 1
	}
	e := &Extractor{
		d:   d,
		cfg: cfg,
		emb: embed.New(cfg.EmbedDim),
		cf:  stats.NewColumnFrequencies(d),
	}
	nmiData := d
	if d.NumRows() > nmiSampleCap {
		nmiData = d.Subset(nmiSampleCap)
	}
	e.nmi = stats.NMIMatrix(nmiData)
	e.corr = make([][]int, d.NumCols())
	for j := range e.corr {
		e.corr[j] = stats.TopKCorrelated(e.nmi, j, cfg.CorrK)
		e.cf.BuildCoOccur(d, j, e.corr[j])
	}
	e.criteriaSets = make([]*criteria.Set, d.NumCols())
	e.embMu = make([]sync.Mutex, d.NumCols())
	e.embCache = make([]map[string][]float64, d.NumCols())
	for j := range e.embCache {
		e.embCache[j] = make(map[string][]float64)
	}
	return e
}

// Correlated returns the top-k NMI-correlated attribute indices for
// attribute j (the set R_aj).
func (e *Extractor) Correlated(j int) []int { return e.corr[j] }

// NMI returns the attribute correlation matrix.
func (e *Extractor) NMI() [][]float64 { return e.nmi }

// SetCriteria installs the (LLM-derived) criteria set for attribute j so
// that subsequent feature vectors carry its adherence bits.
func (e *Extractor) SetCriteria(j int, s *criteria.Set) { e.criteriaSets[j] = s }

// BaseDim returns the per-cell base feature dimensionality.
func (e *Extractor) BaseDim() int {
	return 1 + e.cfg.CorrK + 3 + e.cfg.EmbedDim + MaxCriteriaFeatures
}

// Dim returns the unified feature dimensionality: base*(1+k).
func (e *Extractor) Dim() int { return e.BaseDim() * (1 + e.cfg.CorrK) }

// base writes f_base(D[i,j]) into out (length BaseDim).
func (e *Extractor) base(i, j int, rowMap map[string]string, out []float64) {
	v := e.d.Value(i, j)
	p := 0
	// f_stat: value frequency then vicinity frequencies.
	out[p] = e.cf.ValueFrequency(j, v)
	p++
	for _, q := range e.corr[j] {
		out[p] = e.cf.VicinityFrequency(j, q, v, e.d.Value(i, q))
		p++
	}
	for p < 1+e.cfg.CorrK { // fewer correlated attrs than k (tiny schemas)
		out[p] = 0
		p++
	}
	// f_pat: L1..L3 pattern frequencies.
	out[p] = e.cf.PatternFrequency(j, v, text.L1)
	out[p+1] = e.cf.PatternFrequency(j, v, text.L2)
	out[p+2] = e.cf.PatternFrequency(j, v, text.L3)
	p += 3
	// f_sem: memoized embedding (per-column lock; see embCache).
	e.embMu[j].Lock()
	emb, ok := e.embCache[j][v]
	if !ok {
		emb = e.emb.Embed(v)
		e.embCache[j][v] = emb
	}
	e.embMu[j].Unlock()
	copy(out[p:], emb)
	p += e.cfg.EmbedDim
	// f_cri: criteria adherence, padded with the neutral pass value.
	set := e.criteriaSets[j]
	wrote := 0
	if set != nil && !e.cfg.DisableCriteria {
		for _, c := range set.Criteria {
			if wrote >= MaxCriteriaFeatures {
				break
			}
			if c.Eval(rowMap, set.Attr) {
				out[p+wrote] = 1
			} else {
				out[p+wrote] = 0
			}
			wrote++
		}
	}
	for ; wrote < MaxCriteriaFeatures; wrote++ {
		out[p+wrote] = 1
	}
}

// Feature returns the unified feature vector for cell (i, j).
func (e *Extractor) Feature(i, j int) []float64 {
	out := make([]float64, e.Dim())
	rowMap := e.d.RowMap(i)
	bd := e.BaseDim()
	e.base(i, j, rowMap, out[:bd])
	if !e.cfg.DisableCorrelated {
		for idx, q := range e.corr[j] {
			e.base(i, q, rowMap, out[(1+idx)*bd:(2+idx)*bd])
		}
	}
	return out
}

// RowFeatures returns the unified feature vectors for all cells of row i,
// computing each base vector exactly once. This is the memory-bounded path
// used for full-dataset prediction.
func (e *Extractor) RowFeatures(i int) [][]float64 {
	m := e.d.NumCols()
	bd := e.BaseDim()
	rowMap := e.d.RowMap(i)
	bases := make([][]float64, m)
	flat := make([]float64, m*bd)
	for j := 0; j < m; j++ {
		bases[j] = flat[j*bd : (j+1)*bd]
		e.base(i, j, rowMap, bases[j])
	}
	out := make([][]float64, m)
	for j := 0; j < m; j++ {
		f := make([]float64, e.Dim())
		copy(f, bases[j])
		if !e.cfg.DisableCorrelated {
			for idx, q := range e.corr[j] {
				copy(f[(1+idx)*bd:], bases[q])
			}
		}
		out[j] = f
	}
	return out
}

// ColumnFeatures materializes unified features for the given rows of one
// attribute — the clustering input for sampling (Section III-C).
func (e *Extractor) ColumnFeatures(j int, rows []int) [][]float64 {
	out := make([][]float64, len(rows))
	for idx, i := range rows {
		out[idx] = e.Feature(i, j)
	}
	return out
}
