// Package feature implements ZeroED's feature representation (Section
// III-B). Each cell gets a base vector f_base = f_stat ⊕ f_pat ⊕ f_sem ⊕
// f_cri:
//
//   - f_stat: value frequency plus vicinity frequencies against the top-k
//     NMI-correlated attributes (the paper defines vicinity frequency over
//     all attributes; restricting to the correlated set is the same
//     efficiency argument Section III-B makes for the unified
//     representation, and keeps Tax-scale memory bounded);
//   - f_pat: pattern frequencies at generalization levels L1..L3;
//   - f_sem: hashed-subword embedding (FastText substitute);
//   - f_cri: binary criteria-adherence features, padded/truncated to a
//     fixed width so that one classifier can consume all attributes.
//
// The unified representation concatenates the cell's base vector with the
// base vectors of its correlated attributes' values in the same tuple:
// Feat(D[i,j]) = f_base(D[i,j]) ⊕ { f_base(D[i,q]) : q ∈ R_aj }.
//
// Every per-value quantity — embedding, pattern frequency, criteria
// verdict — is memoized per dictionary value ID of the columnar dataset:
// computed once per unique value in a single build pass, then read
// lock-free from flat slices on the per-cell hot path. Steady-state
// feature extraction (FeatureInto) performs zero allocations.
package feature

import (
	"math/rand"
	"sort"

	"repro/internal/criteria"
	"repro/internal/embed"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// MaxCriteriaFeatures is the fixed width of the criteria-adherence block.
// Attributes with fewer criteria are padded with 1.0 ("passes"), which is
// the neutral value; extra criteria beyond the cap are ignored.
const MaxCriteriaFeatures = 12

// nmiSampleCap bounds the rows used for the NMI matrix; correlations
// stabilize long before Tax-scale row counts.
const nmiSampleCap = 20000

// nmiSampleSeed seeds the random row sample behind the NMI matrix on
// datasets larger than nmiSampleCap. A uniform sample keeps the
// correlation estimate unbiased on sorted datasets, where a first-n prefix
// would skew it; the fixed seed keeps runs reproducible.
const nmiSampleSeed = 7349

// Config tunes the extractor.
type Config struct {
	// EmbedDim is the semantic embedding width (default embed.DefaultDim).
	EmbedDim int
	// CorrK is the number of correlated attributes per attribute
	// (the paper's default is 2).
	CorrK int
	// DisableCorrelated zeroes the correlated-attribute context — the
	// "w/o Corr." ablation of Table IV. Feature dimensions stay identical
	// so the classifier shape is unchanged.
	DisableCorrelated bool
	// DisableCriteria pads the criteria block with the neutral value —
	// the "w/o Crit." ablation.
	DisableCriteria bool
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{EmbedDim: embed.DefaultDim, CorrK: 2}
}

// critSlot is one criterion of a column's active set, with its
// per-unique-value acceleration tables.
type critSlot struct {
	c      *criteria.Criterion
	rowDep bool
	// FD acceleration: detCol is the determinant attribute's index (-1
	// when absent from the schema) and wantID maps each determinant value
	// ID to the expected value ID of this column (stats.ExpectedDepIDs
	// sentinels).
	detCol int
	wantID []int64
}

// critColumn is the per-value-ID criteria memo for one attribute: bits[id]
// holds the verdict of every row-independent criterion for dict entry id
// (bit k set = slot k passes), nullish[id] its null-likeness (the FD fast
// path). Built in one pass by SetCriteria; read lock-free.
type critColumn struct {
	slots   []critSlot
	bits    []uint16
	nullish []bool
}

// Extractor derives feature vectors for every cell of one dataset.
type Extractor struct {
	d    *table.Dataset
	cfg  Config
	emb  *embed.Embedder
	cf   *stats.ColumnFrequencies
	nmi  [][]float64
	corr [][]int // top-k correlated attribute indices per attribute

	criteriaSets []*criteria.Set // per attribute, may contain nils
	critCols     []critColumn    // per attribute, rebuilt by SetCriteria

	// embByID[j] holds the embeddings of column j's dict entries,
	// flattened: entry id occupies [id*EmbedDim, (id+1)*EmbedDim). Built
	// once at construction; values interned later (synthetic augmentation)
	// fall back to embedding on the fly.
	embByID [][]float64
}

// NewExtractor scans the dataset, computes frequency tables and the NMI
// correlation structure, and prepares the per-unique-value memo tables.
func NewExtractor(d *table.Dataset, cfg Config) *Extractor {
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = embed.DefaultDim
	}
	if cfg.CorrK < 0 {
		cfg.CorrK = 0
	}
	if cfg.CorrK > d.NumCols()-1 {
		cfg.CorrK = d.NumCols() - 1
	}
	e := &Extractor{
		d:   d,
		cfg: cfg,
		emb: embed.New(cfg.EmbedDim),
		cf:  stats.NewColumnFrequencies(d),
	}
	nmiData := d
	if d.NumRows() > nmiSampleCap {
		rng := rand.New(rand.NewSource(nmiSampleSeed))
		rows := randx.PartialPerm(rng, d.NumRows(), nmiSampleCap)
		sort.Ints(rows)
		nmiData = d.SubsetRows(rows)
	}
	e.nmi = stats.NMIMatrix(nmiData)
	e.corr = make([][]int, d.NumCols())
	for j := range e.corr {
		e.corr[j] = stats.TopKCorrelated(e.nmi, j, cfg.CorrK)
		e.cf.BuildCoOccur(d, j, e.corr[j])
	}
	e.criteriaSets = make([]*criteria.Set, d.NumCols())
	e.critCols = make([]critColumn, d.NumCols())
	e.embByID = make([][]float64, d.NumCols())
	for j := range e.embByID {
		dict := d.Dict(j)
		flat := make([]float64, len(dict)*cfg.EmbedDim)
		for id, v := range dict {
			copy(flat[id*cfg.EmbedDim:], e.emb.Embed(v))
		}
		e.embByID[j] = flat
	}
	return e
}

// Correlated returns the top-k NMI-correlated attribute indices for
// attribute j (the set R_aj).
func (e *Extractor) Correlated(j int) []int { return e.corr[j] }

// NMI returns the attribute correlation matrix.
func (e *Extractor) NMI() [][]float64 { return e.nmi }

// SetCriteria installs the (LLM-derived) criteria set for attribute j so
// that subsequent feature vectors carry its adherence bits, and rebuilds
// the per-value-ID verdict memo for the column in one pass.
func (e *Extractor) SetCriteria(j int, s *criteria.Set) {
	e.criteriaSets[j] = s
	e.critCols[j] = e.buildCritColumn(j, s)
}

// buildCritColumn evaluates every row-independent criterion against every
// dict entry of column j once, and precomputes the FD expectation tables.
func (e *Extractor) buildCritColumn(j int, s *criteria.Set) critColumn {
	var cc critColumn
	if s == nil || len(s.Criteria) == 0 {
		return cc
	}
	n := len(s.Criteria)
	if n > MaxCriteriaFeatures {
		n = MaxCriteriaFeatures
	}
	cc.slots = make([]critSlot, n)
	dict := e.d.Dict(j)
	cc.nullish = make([]bool, len(dict))
	for id, v := range dict {
		cc.nullish[id] = text.IsNullLike(v)
	}
	for k := 0; k < n; k++ {
		c := s.Criteria[k]
		slot := critSlot{c: c, rowDep: c.RowDependent(), detCol: -1}
		if slot.rowDep {
			if dc := e.d.ColIndex(c.DetAttr); dc >= 0 {
				slot.detCol = dc
				slot.wantID = stats.ExpectedDepIDs(e.d, dc, j, c.Mapping, false)
			}
		}
		cc.slots[k] = slot
	}
	cc.bits = make([]uint16, len(dict))
	for id, v := range dict {
		var mask uint16
		for k := range cc.slots {
			if !cc.slots[k].rowDep && cc.slots[k].c.EvalValue(v) {
				mask |= 1 << uint(k)
			}
		}
		cc.bits[id] = mask
	}
	return cc
}

// evalFDSlot evaluates one FD criterion for cell (i, j) with value ID id,
// via the precomputed expectation table when possible.
func (e *Extractor) evalFDSlot(slot *critSlot, i, j int, id uint32, cc *critColumn) bool {
	if int(id) < len(cc.nullish) {
		if cc.nullish[id] {
			return true // null cells pass non-NotNull criteria
		}
	} else if text.IsNullLike(e.d.DictValue(j, id)) {
		return true
	}
	if slot.detCol >= 0 {
		detID := e.d.ValueID(i, slot.detCol)
		if int(detID) < len(slot.wantID) {
			w := slot.wantID[detID]
			if w == stats.DepNoEvidence {
				return true
			}
			if w != stats.DepAbsent {
				return int64(id) == w
			}
			// Expected value absent from the pool at memo-build time: it
			// may have been interned since, so defer to the reference path.
		}
	}
	return slot.c.EvalAt(e.d, i, j)
}

// BaseDim returns the per-cell base feature dimensionality.
func (e *Extractor) BaseDim() int {
	return 1 + e.cfg.CorrK + 3 + e.cfg.EmbedDim + MaxCriteriaFeatures
}

// Dim returns the unified feature dimensionality: base*(1+k).
func (e *Extractor) Dim() int { return e.BaseDim() * (1 + e.cfg.CorrK) }

// base writes f_base(D[i,j]) into out (length BaseDim). Steady state —
// every value present at construction time — is allocation-free: all
// per-value quantities come from the ID-indexed memo tables.
func (e *Extractor) base(i, j int, out []float64) {
	id := e.d.ValueID(i, j)
	p := 0
	// f_stat: value frequency then vicinity frequencies.
	out[p] = e.cf.ValueFrequencyID(j, id)
	p++
	for _, q := range e.corr[j] {
		out[p] = e.cf.VicinityFrequencyID(j, q, id, e.d.ValueID(i, q))
		p++
	}
	for p < 1+e.cfg.CorrK { // fewer correlated attrs than k (tiny schemas)
		out[p] = 0
		p++
	}
	// f_pat: L1..L3 pattern frequencies, memoized per value ID.
	out[p] = e.cf.PatternFrequencyID(j, id, text.L1)
	out[p+1] = e.cf.PatternFrequencyID(j, id, text.L2)
	out[p+2] = e.cf.PatternFrequencyID(j, id, text.L3)
	p += 3
	// f_sem: embedding memoized per value ID.
	dim := e.cfg.EmbedDim
	if flat := e.embByID[j]; (int(id)+1)*dim <= len(flat) {
		copy(out[p:p+dim], flat[int(id)*dim:])
	} else {
		// Value interned after construction (synthetic error value).
		copy(out[p:p+dim], e.emb.Embed(e.d.DictValue(j, id)))
	}
	p += dim
	// f_cri: criteria adherence, padded with the neutral pass value.
	cc := &e.critCols[j]
	wrote := 0
	if len(cc.slots) > 0 && !e.cfg.DisableCriteria {
		mask, haveMask := uint16(0), false
		if int(id) < len(cc.bits) {
			mask, haveMask = cc.bits[id], true
		}
		for k := range cc.slots {
			slot := &cc.slots[k]
			var pass bool
			switch {
			case slot.rowDep:
				pass = e.evalFDSlot(slot, i, j, id, cc)
			case haveMask:
				pass = mask&(1<<uint(k)) != 0
			default:
				pass = slot.c.EvalValue(e.d.DictValue(j, id))
			}
			if pass {
				out[p+wrote] = 1
			} else {
				out[p+wrote] = 0
			}
			wrote++
		}
	}
	for ; wrote < MaxCriteriaFeatures; wrote++ {
		out[p+wrote] = 1
	}
}

// FeatureInto writes the unified feature vector for cell (i, j) into out,
// which must have length Dim. It allocates nothing in steady state.
func (e *Extractor) FeatureInto(i, j int, out []float64) {
	bd := e.BaseDim()
	e.base(i, j, out[:bd])
	written := bd
	if !e.cfg.DisableCorrelated {
		for idx, q := range e.corr[j] {
			e.base(i, q, out[(1+idx)*bd:(2+idx)*bd])
			written += bd
		}
	}
	// Zero any unwritten tail (ablation, or fewer correlated attrs than
	// CorrK on tiny schemas) so reused buffers never leak stale values.
	for k := written; k < len(out); k++ {
		out[k] = 0
	}
}

// Feature returns the unified feature vector for cell (i, j).
func (e *Extractor) Feature(i, j int) []float64 {
	out := make([]float64, e.Dim())
	e.FeatureInto(i, j, out)
	return out
}

// RowFeaturesInto writes the unified feature vectors of every cell of row
// i into tile, a caller-owned flat row-major block of length
// NumCols()*Dim() (cell j occupies tile[j*Dim() : (j+1)*Dim()]). Each base
// vector is computed exactly once, directly into its own cell's leading
// block, and correlated-context blocks are filled by copying — no
// intermediate buffer, no allocation. This is the scoring hot path: one
// reusable tile per scoring shard serves the whole dataset.
func (e *Extractor) RowFeaturesInto(i int, tile []float64) {
	m := e.d.NumCols()
	bd := e.BaseDim()
	dim := e.Dim()
	// Pass 1: every cell's base vector lands at offset 0 of its own block.
	for j := 0; j < m; j++ {
		e.base(i, j, tile[j*dim:j*dim+bd])
	}
	// Pass 2: correlated blocks copy from the already-computed bases.
	for j := 0; j < m; j++ {
		f := tile[j*dim : (j+1)*dim]
		written := bd
		if !e.cfg.DisableCorrelated {
			for idx, q := range e.corr[j] {
				copy(f[(1+idx)*bd:(2+idx)*bd], tile[q*dim:q*dim+bd])
				written += bd
			}
		}
		for k := written; k < dim; k++ {
			f[k] = 0
		}
	}
}

// RowFeatures returns the unified feature vectors for all cells of row i,
// computing each base vector exactly once. Allocating convenience wrapper
// around RowFeaturesInto; the prediction hot path uses the tile form.
func (e *Extractor) RowFeatures(i int) [][]float64 {
	m := e.d.NumCols()
	dim := e.Dim()
	flat := make([]float64, m*dim)
	e.RowFeaturesInto(i, flat)
	out := make([][]float64, m)
	for j := 0; j < m; j++ {
		out[j] = flat[j*dim : (j+1)*dim]
	}
	return out
}

// FeaturesInto writes the unified feature vectors of attribute j for the
// given rows into tile, a caller-owned flat row-major block of length
// len(rows)*Dim(). It allocates nothing in steady state.
func (e *Extractor) FeaturesInto(j int, rows []int, tile []float64) {
	dim := e.Dim()
	for idx, i := range rows {
		e.FeatureInto(i, j, tile[idx*dim:(idx+1)*dim])
	}
}

// ColumnFeatures materializes unified features for the given rows of one
// attribute — the clustering input for sampling (Section III-C).
// Allocating convenience wrapper around FeaturesInto; the clustering stage
// consumes the flat tile directly.
func (e *Extractor) ColumnFeatures(j int, rows []int) [][]float64 {
	dim := e.Dim()
	flat := make([]float64, len(rows)*dim)
	e.FeaturesInto(j, rows, flat)
	out := make([][]float64, len(rows))
	for idx := range rows {
		out[idx] = flat[idx*dim : (idx+1)*dim]
	}
	return out
}

// DepCols returns the sorted set of column indices whose value IDs in a
// tuple fully determine FeatureInto(i, j): the cell's own column, the
// columns feeding its vicinity frequencies and correlated-context base
// vectors, those columns' own vicinity inputs, and the determinant columns
// of any FD criteria in play. Two rows that agree on these columns' value
// IDs produce bit-identical feature vectors for attribute j — the key
// contract behind the engine's score-dedup cache.
//
// The result reflects the criteria sets installed at call time; callers
// must re-derive it after SetCriteria (the engine computes it once per
// scoring pass, after criteria refinement has settled).
func (e *Extractor) DepCols(j int) []int {
	dep := map[int]bool{}
	// Base vectors included in the unified representation: the cell's own,
	// plus its correlated attributes' (unless ablated).
	baseCols := []int{j}
	if !e.cfg.DisableCorrelated {
		baseCols = append(baseCols, e.corr[j]...)
	}
	for _, b := range baseCols {
		dep[b] = true
		// f_stat vicinity frequencies pair b's value with each correlated
		// attribute's value (computed even under the Corr. ablation — the
		// ablation zeroes context blocks, not the base's own vicinity).
		for _, q := range e.corr[b] {
			dep[q] = true
		}
		// FD criteria read the determinant attribute of the same tuple.
		if !e.cfg.DisableCriteria {
			for k := range e.critCols[b].slots {
				if dc := e.critCols[b].slots[k].detCol; dc >= 0 {
					dep[dc] = true
				}
			}
		}
	}
	out := make([]int, 0, len(dep))
	for c := range dep {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
