package feature

import (
	"fmt"

	"repro/internal/criteria"
	"repro/internal/embed"
	"repro/internal/stats"
	"repro/internal/table"
)

// maxEmbedDim and maxCorrK bound the shape fields a restored snapshot may
// carry, so a corrupt artifact cannot request absurd allocations before the
// cross-checks run.
const (
	maxEmbedDim = 1 << 12
	maxCorrK    = 256
)

// Snapshot is the serializable fitted state of an Extractor: the effective
// config, the correlation structure, the row-derived frequency tables, and
// the installed (refined) criteria sets. Everything else the extractor
// memoizes per value ID — embeddings, pattern tables, criteria verdict
// bits, FD expectation tables — is a pure deterministic function of the
// column dictionaries plus this state, and is rebuilt by FromSnapshot, so
// restored extractors produce bit-identical feature vectors.
type Snapshot struct {
	Cfg Config
	// Corr[j] is the top-k correlated attribute set R_aj.
	Corr [][]int
	// Freq is the frequency-table state (counts cannot be rebuilt without
	// the fitting rows).
	Freq *stats.FreqSnapshot
	// Criteria[j] is the criteria set installed for attribute j at capture
	// time (after refinement); entries may be nil.
	Criteria []*criteria.Set
}

// Snapshot captures the extractor's fitted state. Criteria sets are shared,
// not copied — they are immutable once installed.
func (e *Extractor) Snapshot() *Snapshot {
	s := &Snapshot{
		Cfg:      e.cfg,
		Corr:     make([][]int, len(e.corr)),
		Freq:     e.cf.Snapshot(),
		Criteria: append([]*criteria.Set(nil), e.criteriaSets...),
	}
	for j := range e.corr {
		s.Corr[j] = append([]int(nil), e.corr[j]...)
	}
	return s
}

// FromSnapshot reconstructs an extractor over dataset d, whose per-column
// dictionaries must assign the fit-time IDs to every fit-time value (the
// table.NewFromDicts invariant). Per-value memo tables are rebuilt from the
// dictionaries: the rebuilt extractor covers the full current dictionary
// where the original covered only its construction-time prefix, but both
// compute the same per-value quantities, so feature vectors are
// bit-identical either way. Every shape invariant is validated up front —
// a corrupt snapshot returns an error, never an out-of-range panic on the
// feature hot path. The NMI matrix is not part of the snapshot (scoring
// never reads it); NMI() returns nil on a restored extractor.
func FromSnapshot(s *Snapshot, d *table.Dataset) (*Extractor, error) {
	if s == nil {
		return nil, fmt.Errorf("feature: nil snapshot")
	}
	m := d.NumCols()
	cfg := s.Cfg
	if cfg.EmbedDim <= 0 || cfg.EmbedDim > maxEmbedDim {
		return nil, fmt.Errorf("feature: snapshot embed dim %d out of range (0, %d]", cfg.EmbedDim, maxEmbedDim)
	}
	if cfg.CorrK < 0 || cfg.CorrK > maxCorrK {
		return nil, fmt.Errorf("feature: snapshot corr-k %d out of range [0, %d]", cfg.CorrK, maxCorrK)
	}
	if cfg.CorrK > 0 && cfg.CorrK > m-1 {
		return nil, fmt.Errorf("feature: snapshot corr-k %d impossible for %d columns", cfg.CorrK, m)
	}
	if len(s.Corr) != m {
		return nil, fmt.Errorf("feature: snapshot has correlation sets for %d columns, dataset has %d", len(s.Corr), m)
	}
	for j, corr := range s.Corr {
		if len(corr) > cfg.CorrK {
			return nil, fmt.Errorf("feature: column %d has %d correlated attributes, config allows %d", j, len(corr), cfg.CorrK)
		}
		for _, q := range corr {
			if q < 0 || q >= m {
				return nil, fmt.Errorf("feature: column %d correlates with out-of-range column %d", j, q)
			}
		}
	}
	if len(s.Criteria) != m {
		return nil, fmt.Errorf("feature: snapshot has criteria sets for %d columns, dataset has %d", len(s.Criteria), m)
	}
	for j, set := range s.Criteria {
		if set == nil {
			continue
		}
		for _, c := range set.Criteria {
			if c == nil {
				return nil, fmt.Errorf("feature: column %d criteria set contains a nil criterion", j)
			}
		}
	}
	cf, err := stats.FreqFromSnapshot(s.Freq, d)
	if err != nil {
		return nil, err
	}
	e := &Extractor{
		d:   d,
		cfg: cfg,
		emb: embed.New(cfg.EmbedDim),
		cf:  cf,
	}
	e.corr = make([][]int, m)
	for j := range s.Corr {
		e.corr[j] = append([]int(nil), s.Corr[j]...)
	}
	e.embByID = make([][]float64, m)
	for j := range e.embByID {
		dict := d.Dict(j)
		flat := make([]float64, len(dict)*cfg.EmbedDim)
		for id, v := range dict {
			copy(flat[id*cfg.EmbedDim:], e.emb.Embed(v))
		}
		e.embByID[j] = flat
	}
	e.criteriaSets = make([]*criteria.Set, m)
	e.critCols = make([]critColumn, m)
	for j, set := range s.Criteria {
		if set != nil {
			e.SetCriteria(j, set)
		}
	}
	return e, nil
}

// Rebind returns a shallow view of the extractor bound to another dataset:
// all memo tables are shared (read-only on the scoring path), only the
// dataset consulted for value IDs and string fallbacks changes. The target
// dataset must assign the fit-time IDs to every fit-time value — the
// invariant a dataset built by table.NewFromDicts from this extractor's
// dictionaries satisfies. Values the target interned beyond the fit-time
// pools take the extractor's defined cold paths (zero frequency, on-the-fly
// embedding, by-string criteria evaluation).
func (e *Extractor) Rebind(d *table.Dataset) *Extractor {
	out := *e
	out.d = d
	out.cf = e.cf.Rebind(d)
	return &out
}
