// Package chaos holds the crash-recovery test suite for the serve layer.
//
// The package itself is empty: everything lives in its tests, which re-exec
// the test binary as a real zeroedd server subprocess, arm one crash
// failpoint per disk-write site (see internal/faultpoint), drive the
// operation under test until the process dies with
// faultpoint.CrashExitCode, restart it, and assert that recovery serves the
// highest intact model version with bit-identical scores. A coverage test
// fails the suite if any registered failpoint is never exercised — a new
// failpoint must be added to the sweep before it ships.
//
// Run it directly with:
//
//	go test ./internal/chaos/
//
// or via scripts/chaos.sh, which also sweeps the non-crash actions.
package chaos
