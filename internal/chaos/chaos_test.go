package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/faultpoint"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// The suite re-execs this test binary as a real server process so a crash
// failpoint kills an actual zeroedd, not a goroutine; the parent drives it
// over HTTP, waits for faultpoint.CrashExitCode, restarts, and checks
// recovery.
const (
	envServer   = "ZEROED_CHAOS_SERVER"
	envDir      = "ZEROED_CHAOS_DIR"
	envAddrFile = "ZEROED_CHAOS_ADDR_FILE"
)

// TestChaosServerProcess is the re-exec target, not a test: with the env
// guard set it becomes the server under chaos and never returns (it is
// crashed or killed by the parent test).
func TestChaosServerProcess(t *testing.T) {
	if os.Getenv(envServer) != "1" {
		t.Skip("re-exec target for the chaos suite")
	}
	srv := serve.New(serve.Config{
		Workers:         2,
		ModelDir:        os.Getenv(envDir),
		MaxRows:         60, // tight refit accumulator: drift refits stay fast
		StreamChunkRows: 16,
		DriftThreshold:  0.15,
		DriftMinRows:    50,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos server: listen: %v\n", err)
		os.Exit(3)
	}
	if err := os.WriteFile(os.Getenv(envAddrFile), []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chaos server: addr file: %v\n", err)
		os.Exit(3)
	}
	_ = http.Serve(ln, srv.Handler())
}

// proc is one server subprocess under the parent's control.
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

// startServer launches the re-exec server over dir with the given
// ZEROED_FAILPOINTS spec ("" = no faults) and waits until it serves.
func startServer(t *testing.T, dir, faults string) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestChaosServerProcess$")
	cmd.Env = append(os.Environ(),
		envServer+"=1",
		envDir+"="+dir,
		envAddrFile+"="+addrFile,
		faultpoint.EnvVar+"="+faults,
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting chaos server: %v", err)
	}
	p := &proc{t: t, cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			p.base = string(raw)
			return p
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("chaos server never came up:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitExit blocks until the subprocess dies and asserts its exit code —
// faultpoint.CrashExitCode for an injected crash, -1 for SIGKILL.
func (p *proc) waitExit(want int) {
	p.t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		_ = p.cmd.Process.Kill()
		p.t.Fatalf("chaos server never exited:\n%s", p.out.String())
	}
	if code := p.cmd.ProcessState.ExitCode(); code != want {
		p.t.Fatalf("chaos server exit code %d, want %d\n%s", code, want, p.out.String())
	}
}

// kill9 delivers an uncatchable SIGKILL — the OS-level crash no defer or
// shutdown hook can soften — and reaps the process.
func (p *proc) kill9() {
	p.t.Helper()
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	p.waitExit(-1)
}

// benchCSV renders the standard small chaos dataset.
func benchCSV(t *testing.T, ds *table.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fitModel posts a fit and decodes the created model's status.
func fitModel(t *testing.T, base string, csv []byte, query string) serve.ModelStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/models"+query, "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("fit: status %d: %s", resp.StatusCode, raw.String())
	}
	var st serve.ModelStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// score posts a score request and decodes the result.
func score(t *testing.T, base, id string, csv []byte) serve.ScoreResult {
	t.Helper()
	resp, err := http.Post(base+"/v1/models/"+id+"/score", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatalf("score: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("score: status %d: %s", resp.StatusCode, raw.String())
	}
	var sr serve.ScoreResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// assertSameBits compares two score results cell by cell: verdicts and
// float64 bit patterns.
func assertSameBits(t *testing.T, want, got serve.ScoreResult) {
	t.Helper()
	if len(got.Pred) != len(want.Pred) {
		t.Fatalf("scored %d rows, want %d", len(got.Pred), len(want.Pred))
	}
	for i := range want.Pred {
		for j := range want.Pred[i] {
			if got.Pred[i][j] != want.Pred[i][j] {
				t.Fatalf("verdict differs at (%d,%d) after recovery", i, j)
			}
			if math.Float64bits(got.Scores[i][j]) != math.Float64bits(want.Scores[i][j]) {
				t.Fatalf("score bits differ at (%d,%d) after recovery", i, j)
			}
		}
	}
}

// listModels fetches the registry listing.
func listModels(t *testing.T, base string) []serve.ModelStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Models []serve.ModelStatus `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	return listing.Models
}

// metricsText fetches /metrics.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// dirSuffixed lists file names under dir with the given suffix.
func dirSuffixed(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// crashSweepSites enumerates every disk-write failpoint the sweep crashes
// at, with the deterministic post-restart expectation for the fit that was
// in flight: committed means its artifact survives the crash (the crash
// landed after the atomic rename), uncommitted means the artifact must be
// gone without a trace.
var crashSweepSites = []struct {
	name      string
	committed bool
}{
	{"serve.fit.persist", false},
	{"model.save.after_write", false},
	{"model.save.before_rename", false},
	{"model.save.after_rename", true},
	{"serve.manifest.write", true},
}

// TestCrashSweepRecovery is the core chaos loop: for every disk-write
// failpoint, fit a baseline model, kill -9 the server, restart with the
// site armed to crash, drive a second fit into the crash, restart clean,
// and require the baseline to score bit-identically — with the in-flight
// fit either fully committed or fully absent, never torn.
func TestCrashSweepRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses and fits models")
	}
	csv := benchCSV(t, datasets.Hospital(60, 3).Dirty)
	for _, site := range crashSweepSites {
		site := site
		t.Run(site.name, func(t *testing.T) {
			dir := t.TempDir()

			// Phase A: durable baseline, then an uncatchable kill.
			p1 := startServer(t, dir, "")
			st := fitModel(t, p1.base, csv, "?seed=7")
			baseline := score(t, p1.base, st.ID, csv)
			p1.kill9()

			// Phase B: the armed site crashes the server mid-operation.
			p2 := startServer(t, dir, site.name+":crash")
			resp, err := http.Post(p2.base+"/v1/models?seed=11", "text/csv", bytes.NewReader(csv))
			if err == nil {
				// The crash may land after the response headers; either
				// way the process must die with the crash exit code.
				resp.Body.Close()
			}
			p2.waitExit(faultpoint.CrashExitCode)

			// Phase C: clean restart recovers the baseline bit-for-bit.
			p3 := startServer(t, dir, "")
			assertSameBits(t, baseline, score(t, p3.base, st.ID, csv))
			models := listModels(t, p3.base)
			want := 1
			if site.committed {
				want = 2
			}
			if len(models) != want {
				t.Fatalf("recovered %d models after %s crash, want %d: %+v",
					len(models), site.name, want, models)
			}
			if tmp := dirSuffixed(t, dir, model.TmpSuffix); len(tmp) != 0 {
				t.Fatalf("stranded temp files after recovery: %v", tmp)
			}
			// No artifact on disk may be torn: the atomic protocol leaves
			// committed-or-absent files only.
			if text := metricsText(t, p3.base); !strings.Contains(text, "zeroedd_model_load_failures_total 0") {
				t.Fatalf("recovery hit load failures after %s crash:\n%s", site.name, text)
			}
			p3.kill9()
		})
	}
}

// TestCrashDuringRefitKeepsLastGood: a crash in the background refit's
// persist path takes the whole process down mid-swap; restart serves the
// pre-refit version bit-identically.
func TestCrashDuringRefitKeepsLastGood(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses and fits models")
	}
	bench := datasets.Hospital(60, 3)
	csv := benchCSV(t, bench.Dirty)
	dir := t.TempDir()

	p1 := startServer(t, dir, "")
	st := fitModel(t, p1.base, csv, "?seed=7")
	baseline := score(t, p1.base, st.ID, csv)
	p1.kill9()

	// All-novel rows trip the drift gauge; the triggered refit crashes at
	// its persist failpoint.
	p2 := startServer(t, dir, "serve.refit.persist:crash")
	var novel bytes.Buffer
	novel.WriteString(strings.Join(st.Attrs, ",") + "\n")
	for i := 0; i < 60; i++ {
		row := make([]string, len(st.Attrs))
		for j := range row {
			row[j] = fmt.Sprintf("novel-%d-%d", j, i%17)
		}
		novel.WriteString(strings.Join(row, ",") + "\n")
	}
	resp, err := http.Post(p2.base+"/v1/models/"+st.ID+"/stream", "text/csv", bytes.NewReader(novel.Bytes()))
	if err == nil {
		// Drain until the process dies under us; the refit crash races the
		// end of the stream response.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	p2.waitExit(faultpoint.CrashExitCode)

	p3 := startServer(t, dir, "")
	models := listModels(t, p3.base)
	if len(models) != 1 || models[0].Version != 1 {
		t.Fatalf("want the v1 baseline alone after refit crash, got %+v", models)
	}
	assertSameBits(t, baseline, score(t, p3.base, st.ID, csv))
	p3.kill9()
}

// TestKillNineMidFit: SIGKILL with a fit in flight — no failpoint, pure
// OS-level murder — must leave the directory recoverable: the committed
// baseline intact, nothing torn, temp debris swept.
func TestKillNineMidFit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses and fits models")
	}
	dir := t.TempDir()
	small := benchCSV(t, datasets.Hospital(60, 3).Dirty)
	big := benchCSV(t, datasets.Hospital(250, 5).Dirty)

	p1 := startServer(t, dir, "")
	st := fitModel(t, p1.base, small, "?seed=7")
	baseline := score(t, p1.base, st.ID, small)

	// Launch a larger fit and SIGKILL the server while it runs.
	go func() {
		resp, err := http.Post(p1.base+"/v1/models?seed=11", "text/csv", bytes.NewReader(big))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	p1.kill9()

	p2 := startServer(t, dir, "")
	assertSameBits(t, baseline, score(t, p2.base, st.ID, small))
	if tmp := dirSuffixed(t, dir, model.TmpSuffix); len(tmp) != 0 {
		t.Fatalf("stranded temp files after kill -9: %v", tmp)
	}
	if text := metricsText(t, p2.base); !strings.Contains(text, "zeroedd_model_load_failures_total 0") {
		t.Fatalf("kill -9 left a torn artifact:\n%s", text)
	}
	p2.kill9()
}

// TestFailpointCoverage fails the suite if any registered failpoint is
// neither crash-swept by the subprocess tests above nor armed and hit by
// the in-process exercisers below: a new failpoint must buy its chaos
// coverage before it ships.
func TestFailpointCoverage(t *testing.T) {
	crashSwept := map[string]bool{"serve.refit.persist": true} // TestCrashDuringRefitKeepsLastGood
	for _, site := range crashSweepSites {
		crashSwept[site.name] = true
	}
	inProcess := map[string]func(*testing.T){
		"model.load.decode":   exerciseLoadDecode,
		"llm.judge.transient": exerciseJudgeTransient,
	}
	for _, name := range faultpoint.List() {
		if !crashSwept[name] && inProcess[name] == nil {
			t.Errorf("failpoint %q is not exercised by the chaos suite: add it to the crash sweep or an in-process exerciser", name)
		}
	}
	if testing.Short() {
		t.Skip("in-process exercisers fit models")
	}
	for name, fn := range inProcess {
		t.Run(name, fn)
	}
}

// exerciseLoadDecode arms the decode failpoint and proves a poisoned load
// surfaces as a corruption, not a plain error.
func exerciseLoadDecode(t *testing.T) {
	m, err := zeroed.New(zeroed.Config{LabelRate: 0.1, CorrK: 2, Seed: 1, Workers: 2}).
		Fit(datasets.Hospital(30, 2).Dirty)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.zedm")
	if err := model.SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("model.load.decode", "error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Reset)
	before := faultpoint.Hits("model.load.decode")
	if _, err := model.LoadFile(path); !model.IsCorrupt(err) {
		t.Fatalf("poisoned load returned %v, want a corruption", err)
	}
	if faultpoint.Hits("model.load.decode") != before+1 {
		t.Fatal("decode failpoint never fired")
	}
	faultpoint.Reset()
	if _, err := model.LoadFile(path); err != nil {
		t.Fatalf("disarmed load failed: %v", err)
	}
}

// exerciseJudgeTransient arms a two-failure budget on the LLM judge and
// proves a fit rides through it via retries.
func exerciseJudgeTransient(t *testing.T) {
	if err := faultpoint.Arm("llm.judge.transient", "error(2)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Reset)
	before := faultpoint.Hits("llm.judge.transient")
	_, err := zeroed.New(zeroed.Config{LabelRate: 0.1, CorrK: 2, Seed: 1, Workers: 2}).
		Fit(datasets.Hospital(30, 2).Dirty)
	if err != nil {
		t.Fatalf("fit should survive transient judge faults: %v", err)
	}
	if got := faultpoint.Hits("llm.judge.transient"); got != before+2 {
		t.Fatalf("judge failpoint hit %d times, want 2", got-before)
	}
}
