// Package retry is a small jittered-exponential-backoff retrier for
// transient failures (a flaky LLM backend, a briefly unavailable disk).
//
// Determinism contract: the jitter draws from the policy's own seeded
// random stream, created per Do call — it never touches any RNG the caller
// owns. Retrying therefore cannot perturb seeded computation in the retried
// function: a call that eventually succeeds is bit-identical to one that
// succeeded first try, as long as the function itself is deterministic and
// failed attempts have no side effects.
package retry

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Policy tunes one retry loop. The zero value retries nothing extra
// (withDefaults turns it into 5 attempts, 5ms..1s backoff, 50% jitter).
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 5). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms); each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 1s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized (default
	// 0.5): the slept delay is d*(1-Jitter/2) + d*Jitter*u for uniform u in
	// [0,1), so the mean is unchanged and retry storms decorrelate.
	Jitter float64
	// Seed seeds the jitter stream (0 means seed 1). The stream is local to
	// each Do call; it exists so backoff timing is reproducible, and so the
	// retrier provably never draws from a caller-owned RNG.
	Seed int64
	// OnRetry, when set, observes each scheduled retry (attempt is the
	// 1-based number of the attempt that just failed).
	OnRetry func(attempt int, err error)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Do runs fn until it succeeds, the attempt budget is spent, or the context
// ends. Context errors (from the context itself, or surfaced by fn) are
// returned immediately and never retried — a canceled caller must not keep
// hammering a backend. The final error wraps fn's last error.
func Do(ctx context.Context, p Policy, fn func() error) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= p.MaxAttempts {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if serr := sleep(ctx, delay(p, rng, attempt)); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("retry: %d attempts failed: %w", p.MaxAttempts, err)
}

// delay computes the jittered backoff before retry number `attempt`
// (1-based count of failures so far).
func delay(p Policy, rng *rand.Rand, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	f := float64(d) * (1 - p.Jitter/2 + p.Jitter*rng.Float64())
	return time.Duration(f)
}

// sleep waits d, aborting early when the context ends.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
