package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	retries := 0
	p := fastPolicy()
	p.OnRetry = func(attempt int, err error) {
		retries++
		if !errors.Is(err, errFlaky) {
			t.Fatalf("OnRetry err = %v", err)
		}
	}
	err := Do(context.Background(), p, func() error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("Do = %v, want wrapped errFlaky", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want MaxAttempts=4", calls)
	}
}

func TestDoStopsOnCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, fastPolicy(), func() error {
		calls++
		cancel()
		return errFlaky
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d after cancel, want 1", calls)
	}
}

func TestDelayExponentialAndCapped(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Jitter: 0.5, MaxAttempts: 8}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := delay(p, rng, attempt)
		// Nominal delay before jitter: min(45ms, 10ms<<(attempt-1)).
		nominal := p.BaseDelay << (attempt - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		lo := time.Duration(float64(nominal) * 0.74)
		hi := time.Duration(float64(nominal) * 1.26)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside jitter band [%v, %v]", attempt, d, lo, hi)
		}
		if nominal < prevCap {
			t.Fatalf("nominal delay shrank: %v after %v", nominal, prevCap)
		}
		prevCap = nominal
	}
}

func TestJitterStreamIsLocalAndSeeded(t *testing.T) {
	// Two Do calls with the same seed sleep identical jittered delays; the
	// caller's own RNG stream is untouched by retrying.
	seq := func() []time.Duration {
		p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 7}.withDefaults()
		rng := rand.New(rand.NewSource(p.Seed))
		var ds []time.Duration
		for a := 1; a <= 3; a++ {
			ds = append(ds, delay(p, rng, a))
		}
		return ds
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter stream not reproducible: %v vs %v", a, b)
		}
	}

	callerRng := rand.New(rand.NewSource(99))
	before := callerRng.Float64()
	callerRng = rand.New(rand.NewSource(99))
	_ = Do(context.Background(), fastPolicy(), func() error { return errFlaky })
	after := callerRng.Float64()
	if before != after {
		t.Fatal("retrying perturbed a caller-owned RNG stream")
	}
}
