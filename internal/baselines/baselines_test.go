package baselines

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/table"
)

func bench(t *testing.T) *datasets.Bench {
	t.Helper()
	return datasets.Hospital(400, 21)
}

func oracleFor(b *datasets.Bench) LabelOracle {
	mask, err := b.Mask()
	if err != nil {
		panic(err)
	}
	return func(row int) []bool { return mask[row] }
}

func score(t *testing.T, m Method, b *datasets.Bench) eval.Metrics {
	t.Helper()
	pred, err := m.Detect(b.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.ComputeAgainst(pred, b.Dirty, b.Clean)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: P=%.3f R=%.3f F1=%.3f", m.Name(), res.Precision, res.Recall, res.F1)
	return res
}

func TestDBoostDetectsOutliers(t *testing.T) {
	b := bench(t)
	m := score(t, NewDBoost(), b)
	if m.F1 <= 0.1 {
		t.Errorf("dBoost F1 = %.3f, want > 0.1", m.F1)
	}
	if m.Recall >= 0.99 {
		t.Error("dBoost should not catch everything (it has no rule/missing model)")
	}
}

func TestDBoostEmptyNumericSafe(t *testing.T) {
	d := table.New("x", []string{"n"})
	for i := 0; i < 10; i++ {
		d.MustAppendRow([]string{"5"})
	}
	pred, err := NewDBoost().Detect(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		if pred[i][0] {
			t.Error("constant numeric column has no outliers")
		}
	}
}

func TestNadeefFindsRuleViolations(t *testing.T) {
	b := bench(t)
	m := score(t, NewNadeef(b.FDPairs), b)
	if m.Precision <= 0.3 {
		t.Errorf("Nadeef precision = %.3f, want > 0.3 (rules are precise)", m.Precision)
	}
	if m.Recall >= 0.95 {
		t.Error("Nadeef should miss errors outside its constraints")
	}
}

func TestNadeefNoConstraints(t *testing.T) {
	b := bench(t)
	pred, err := NewNadeef(nil).Detect(b.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	_ = pred // still runs (null + pattern rules only)
}

func TestKataraNeedsKB(t *testing.T) {
	b := bench(t)
	m := score(t, NewKatara(b.KB), b)
	if m.TP == 0 {
		t.Error("Katara with a covering KB should find something on Hospital")
	}
	// Without a KB, Katara finds nothing — the Flights/Beers/Rayyan case.
	f := datasets.Flights(300, 1)
	pred, err := NewKatara(f.KB).Detect(f.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		for j := range pred[i] {
			if pred[i][j] {
				t.Fatal("Katara without relevant KB must detect nothing")
			}
		}
	}
}

func TestRahaImprovesWithBudget(t *testing.T) {
	b := bench(t)
	oracle := oracleFor(b)
	f1 := func(budget int) float64 {
		r := NewRaha(oracle)
		r.LabelBudget = budget
		r.Seed = 5
		return score(t, r, b).F1
	}
	small := f1(2)
	large := f1(30)
	if large <= small {
		t.Errorf("Raha with 30 labels (F1 %.3f) should beat 2 labels (F1 %.3f)", large, small)
	}
}

func TestRahaRequiresOracle(t *testing.T) {
	if _, err := (&Raha{LabelBudget: 2}).Detect(bench(t).Dirty); err == nil {
		t.Error("Raha without oracle must error")
	}
}

func TestActiveCleanRecordLevel(t *testing.T) {
	b := bench(t)
	m := score(t, NewActiveClean(oracleFor(b)), b)
	// Record-level flagging: recall should be substantial, precision low.
	if m.Recall <= 0.2 {
		t.Errorf("ActiveClean recall = %.3f, want > 0.2", m.Recall)
	}
	if m.Precision >= 0.5 {
		t.Errorf("ActiveClean cell precision = %.3f, should be low (record granularity)", m.Precision)
	}
}

func TestActiveCleanRequiresOracle(t *testing.T) {
	if _, err := (&ActiveClean{Budget: 5}).Detect(bench(t).Dirty); err == nil {
		t.Error("ActiveClean without oracle must error")
	}
}

func TestFMEDTokenCostLinear(t *testing.T) {
	b := bench(t)
	run := func(rows int) int64 {
		client := llm.NewClient(llm.Qwen72B)
		m := NewFMED(client, b.KB)
		if _, err := m.Detect(b.Dirty.Subset(rows)); err != nil {
			t.Fatal(err)
		}
		return m.Usage().InputTokens
	}
	half, full := run(200), run(400)
	if full < half*3/2 {
		t.Errorf("FM_ED input tokens should grow ~linearly: %d vs %d", half, full)
	}
}

func TestFMEDDetects(t *testing.T) {
	b := bench(t)
	client := llm.NewClient(llm.Qwen72B)
	m := NewFMED(client, b.KB)
	res := score(t, m, b)
	if res.F1 <= 0.1 {
		t.Errorf("FM_ED F1 = %.3f, want > 0.1 on Hospital (nulls + KB typos)", res.F1)
	}
}

func TestAllMethodsProduceValidMasks(t *testing.T) {
	b := datasets.Beers(300, 2)
	oracle := oracleFor(b)
	methods := []Method{
		NewDBoost(),
		NewNadeef(b.FDPairs),
		NewKatara(b.KB),
		NewRaha(oracle),
		NewActiveClean(oracle),
		NewFMED(llm.NewClient(llm.Qwen72B), b.KB),
	}
	for _, m := range methods {
		pred, err := m.Detect(b.Dirty)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(pred) != b.Dirty.NumRows() || len(pred[0]) != b.Dirty.NumCols() {
			t.Fatalf("%s: mask shape wrong", m.Name())
		}
	}
}
