package baselines

import (
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// Nadeef reproduces the NADEEF rule-based cleaner: it takes user-supplied
// integrity constraints — functional dependencies and per-attribute format
// patterns — and flags cells participating in violations. Following the
// paper's setup, constraints come from "existing public code": here the
// benchmark's declared FD pairs and dominant-shape patterns mined once from
// the data (standing in for the hand-written regexes of the real rule
// files). NADEEF handles missing values and rule violations well but not
// outliers (Table I).
type Nadeef struct {
	// FDPairs are (determinant, dependent) attribute index pairs.
	FDPairs [][2]int
	// PatternAttrs restricts pattern rules to the listed attributes; nil
	// derives pattern rules for every attribute with a sufficiently
	// dominant shape.
	PatternAttrs []int
	// PatternCoverage is the minimum share a shape must hold for a pattern
	// rule to exist (default 0.95).
	PatternCoverage float64
}

// NewNadeef builds NADEEF with the benchmark's constraint set.
func NewNadeef(fdPairs [][2]int) *Nadeef {
	return &Nadeef{FDPairs: fdPairs, PatternCoverage: 0.95}
}

// Name implements Method.
func (b *Nadeef) Name() string { return "Nadeef" }

// Detect implements Method.
func (b *Nadeef) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)

	// Manual rule sets only cover the attributes someone wrote rules for.
	// Following the paper's setup (constraints imported from the public
	// rule files), coverage is the set of FD-involved attributes plus any
	// explicitly listed pattern attributes — not the whole schema.
	covered := map[int]bool{}
	for _, p := range b.FDPairs {
		covered[p[0]] = true
		covered[p[1]] = true
	}
	for _, j := range b.PatternAttrs {
		covered[j] = true
	}
	if len(covered) == 0 {
		// No constraints at all: rule-less NADEEF detects nothing.
		return pred, nil
	}

	// Not-null rules on covered attributes.
	for j := range covered {
		nullish := stats.NullishByID(d, j)
		for i, id := range d.ColumnIDs(j) {
			if nullish[id] {
				pred[i][j] = true
			}
		}
	}

	// FD rules: within each determinant group, dependent values deviating
	// from the group majority are violations. Expected dependent values are
	// resolved to IDs once per determinant pool entry.
	for _, p := range b.FDPairs {
		det, dep := p[0], p[1]
		fd := stats.FindFD(d, det, dep)
		wantID := stats.ExpectedDepIDs(d, det, dep, fd.Mapping, true)
		depNullish := stats.NullishByID(d, dep)
		detIDs, depIDs := d.ColumnIDs(det), d.ColumnIDs(dep)
		for i := range detIDs {
			w := wantID[detIDs[i]]
			if w != stats.DepNoEvidence && int64(depIDs[i]) != w && !depNullish[depIDs[i]] {
				// NADEEF marks every cell participating in the violation;
				// it cannot localize which side is wrong, which is exactly
				// why the paper finds rule-based precision limited.
				pred[i][dep] = true
				pred[i][det] = true
			}
		}
	}

	// Pattern rules: covered attributes with one overwhelmingly dominant
	// shape get a format regex; deviants are violations. Shapes are
	// computed once per unique value.
	var attrs []int
	for j := 0; j < d.NumCols(); j++ {
		if covered[j] {
			attrs = append(attrs, j)
		}
	}
	for _, j := range attrs {
		dict := d.Dict(j)
		counts := stats.CountsByID(d, j)
		nullish := stats.NullishByID(d, j)
		shapeOfID := make([]string, len(dict))
		shapeCount := map[string]int{}
		nonNull := 0
		for id, v := range dict {
			if nullish[id] {
				continue
			}
			shapeOfID[id] = shapeOf(v)
			if counts[id] > 0 {
				nonNull += counts[id]
				shapeCount[shapeOfID[id]] += counts[id]
			}
		}
		if nonNull == 0 {
			continue
		}
		bestShape, bestC := "", 0
		for s, c := range shapeCount {
			if c > bestC || (c == bestC && s < bestShape) {
				bestShape, bestC = s, c
			}
		}
		if float64(bestC)/float64(nonNull) < b.PatternCoverage {
			continue // no credible manual pattern for this attribute
		}
		for i, id := range d.ColumnIDs(j) {
			if !nullish[id] && shapeOfID[id] != bestShape {
				pred[i][j] = true
			}
		}
	}
	return pred, nil
}

// shapeOf mirrors llm.ShapeOf without importing the llm package: the
// run-length-free L2 class sequence.
func shapeOf(v string) string {
	p := text.Generalize(v, text.L2)
	out := make([]byte, 0, len(p))
	for i := 0; i < len(p); i++ {
		if p[i] == '[' {
			for i < len(p) && p[i] != ']' {
				i++
			}
			continue
		}
		out = append(out, p[i])
	}
	return string(out)
}
