package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// ActiveClean reproduces the ActiveClean baseline: a downstream model is
// trained on a small budget of human-labeled records and used to flag
// likely-dirty records; all cells of a flagged record are reported dirty.
// Its record-level granularity and simple featurization explain the paper's
// observation that it "struggles to differentiate between errors and clean
// data ... leading it to treat all data as incorrect" on some datasets —
// recall is high, cell precision tracks the per-record error density.
type ActiveClean struct {
	// Budget is the number of labeled records (default 20; the original
	// system iterates cleaning batches, so its budget exceeds Raha's).
	Budget int
	Oracle LabelOracle
	Seed   int64
}

// NewActiveClean builds the baseline with its default budget.
func NewActiveClean(oracle LabelOracle) *ActiveClean {
	return &ActiveClean{Budget: 20, Oracle: oracle}
}

// Name implements Method.
func (b *ActiveClean) Name() string { return "ActiveClean" }

// Detect implements Method.
func (b *ActiveClean) Detect(d *table.Dataset) ([][]bool, error) {
	if b.Oracle == nil {
		return nil, fmt.Errorf("activeclean: label oracle required")
	}
	n := d.NumRows()
	budget := b.Budget
	if budget < 2 {
		budget = 2
	}
	if budget > n {
		budget = n
	}
	rng := rand.New(rand.NewSource(b.Seed + 23))

	// Record featurization: per-record aggregates of simple column
	// statistics (the "simple feature extraction method" the paper calls
	// out). Frequencies and null-likeness resolve by value ID.
	cf := stats.NewColumnFrequencies(d)
	cols := d.NumCols()
	nullish := make([][]bool, cols)
	for j := 0; j < cols; j++ {
		dict := d.Dict(j)
		nullish[j] = make([]bool, len(dict))
		for id, v := range dict {
			nullish[j][id] = text.IsNullLike(v)
		}
	}
	featOf := func(i int) []float64 {
		var nulls, rareVals, rarePats float64
		for j := 0; j < cols; j++ {
			id := d.ValueID(i, j)
			if nullish[j][id] {
				nulls++
			}
			if cf.ValueFrequencyID(j, id) < 0.01 {
				rareVals++
			}
			if cf.PatternFrequencyID(j, id, text.L3) < 0.01 {
				rarePats++
			}
		}
		m := float64(cols)
		return []float64{1, nulls / m, rareVals / m, rarePats / m}
	}

	// Label a seeded sample of records; a record is dirty when any cell is.
	sample := rng.Perm(n)[:budget]
	X := make([][]float64, 0, budget)
	y := make([]float64, 0, budget)
	for _, r := range sample {
		cells := b.Oracle(r)
		dirty := 0.0
		for _, c := range cells {
			if c {
				dirty = 1
				break
			}
		}
		X = append(X, featOf(r))
		y = append(y, dirty)
	}

	pred := newMask(d)
	w, ok := logisticFit(X, y, 200, 0.5)
	for i := 0; i < n; i++ {
		var dirty bool
		if ok {
			dirty = logisticPredict(w, featOf(i)) >= 0.5
		} else {
			// Degenerate budget (single class observed): ActiveClean's
			// failure mode — treat every record as dirty.
			dirty = true
		}
		if dirty {
			for j := range pred[i] {
				pred[i][j] = true
			}
		}
	}
	return pred, nil
}

// logisticFit trains a tiny logistic regression with gradient descent.
// ok is false when the labels contain a single class.
func logisticFit(X [][]float64, y []float64, iters int, lr float64) (w []float64, ok bool) {
	var pos, neg bool
	for _, v := range y {
		if v > 0.5 {
			pos = true
		} else {
			neg = true
		}
	}
	if !pos || !neg {
		return nil, false
	}
	w = make([]float64, len(X[0]))
	for it := 0; it < iters; it++ {
		grad := make([]float64, len(w))
		for i, x := range X {
			p := logisticPredict(w, x)
			for k := range w {
				grad[k] += (p - y[i]) * x[k]
			}
		}
		for k := range w {
			w[k] -= lr * grad[k] / float64(len(X))
		}
	}
	return w, true
}

func logisticPredict(w, x []float64) float64 {
	var z float64
	for k := range w {
		z += w[k] * x[k]
	}
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
