// Package baselines reimplements the six comparison methods of the paper's
// Table III from scratch:
//
//   - dBoost (Pit-Claudel et al.): statistical outlier detection with
//     histogram and Gaussian models;
//   - NADEEF (Ebaid et al.): violations of user-supplied integrity
//     constraints (FDs) and format patterns;
//   - KATARA (Chu et al.): knowledge-base-backed column typing and
//     non-member flagging;
//   - Raha (Mahdavi et al.): a configuration-free ensemble of detection
//     strategies with clustering-based label propagation from a small
//     human labeling budget (its active-learning curve is Fig. 6);
//   - ActiveClean (Krishnan et al.): downstream-model-driven record
//     flagging from a small labeled budget;
//   - FM_ED (Narayan et al.): per-tuple LLM prompting ("Is there an error
//     in this tuple?").
//
// Methods that consume human labels (Raha, ActiveClean) take a LabelOracle,
// exactly as the paper grants every label-based baseline 2 labeled tuples.
package baselines

import (
	"repro/internal/table"
)

// Method is a cell-level error detector.
type Method interface {
	// Name returns the method's display name as used in the paper.
	Name() string
	// Detect returns the predicted error mask for the dirty dataset.
	Detect(d *table.Dataset) ([][]bool, error)
}

// LabelOracle reveals ground-truth cell labels for one tuple — the stand-in
// for the human annotator that label-based baselines rely on. Implementations
// typically close over the benchmark's error mask.
type LabelOracle func(row int) []bool

// newMask allocates a rows x cols prediction matrix.
func newMask(d *table.Dataset) [][]bool {
	m := make([][]bool, d.NumRows())
	for i := range m {
		m[i] = make([]bool, d.NumCols())
	}
	return m
}
