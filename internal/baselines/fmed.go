package baselines

import (
	"repro/internal/knowledge"
	"repro/internal/llm"
	"repro/internal/table"
)

// FMED reproduces the FM_ED baseline (Narayan et al., "Can foundation
// models wrangle your data?"): every tuple is serialized into a prompt
// asking "Is there an error in this tuple?". Because each tuple is judged
// in isolation, the method catches missing values and typos of entities
// the model "knows", but has no access to cross-tuple context (patterns,
// distributions, dependencies) — Table I's characterization — and its
// input token cost grows linearly with the dataset (Fig. 8).
type FMED struct {
	Client *llm.Client
	KB     *knowledge.Base
}

// NewFMED builds the baseline over a simulated LLM client and the model's
// world knowledge.
func NewFMED(client *llm.Client, kb *knowledge.Base) *FMED {
	return &FMED{Client: client, KB: kb}
}

// Name implements Method.
func (b *FMED) Name() string { return "FM_ED" }

// Detect implements Method. Every tuple costs one LLM call.
func (b *FMED) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)
	for i := 0; i < d.NumRows(); i++ {
		verdicts := b.Client.DetectTupleErrors(d.Attrs, d.Row(i), b.KB)
		copy(pred[i], verdicts)
	}
	return pred, nil
}

// Usage reports the token cost of all per-tuple prompts.
func (b *FMED) Usage() llm.Usage { return b.Client.Usage() }
