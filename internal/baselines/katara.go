package baselines

import (
	"repro/internal/knowledge"
	"repro/internal/table"
	"repro/internal/text"
)

// Katara reproduces the KATARA knowledge-base cleaner: each column is
// matched against the semantic types of a knowledge base; for columns with
// sufficient coverage, values outside the entity set are flagged. When no
// KB type matches a column (the paper observes exactly this on Flights,
// Beers, and Rayyan), KATARA detects nothing there.
type Katara struct {
	KB *knowledge.Base
	// MinCoverage is the column-to-type matching threshold (default 0.5).
	MinCoverage float64
}

// NewKatara builds KATARA over the given knowledge base.
func NewKatara(kb *knowledge.Base) *Katara {
	return &Katara{KB: kb, MinCoverage: 0.5}
}

// Name implements Method.
func (b *Katara) Name() string { return "Katara" }

// Detect implements Method.
func (b *Katara) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)
	if b.KB == nil || b.KB.Types() == 0 {
		return pred, nil
	}
	for j := 0; j < d.NumCols(); j++ {
		typ, cov := b.KB.BestType(d.Column(j))
		if typ == "" || cov < b.MinCoverage {
			continue
		}
		// KB membership depends only on the value: test each unique value
		// once, broadcast by value ID.
		dict := d.Dict(j)
		bad := make([]bool, len(dict))
		for id, v := range dict {
			// KATARA does not model missing values (Table I).
			bad[id] = !text.IsNullLike(v) && !b.KB.Contains(typ, v)
		}
		for i, id := range d.ColumnIDs(j) {
			if bad[id] {
				pred[i][j] = true
			}
		}
	}
	return pred, nil
}
