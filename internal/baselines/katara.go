package baselines

import (
	"repro/internal/knowledge"
	"repro/internal/table"
	"repro/internal/text"
)

// Katara reproduces the KATARA knowledge-base cleaner: each column is
// matched against the semantic types of a knowledge base; for columns with
// sufficient coverage, values outside the entity set are flagged. When no
// KB type matches a column (the paper observes exactly this on Flights,
// Beers, and Rayyan), KATARA detects nothing there.
type Katara struct {
	KB *knowledge.Base
	// MinCoverage is the column-to-type matching threshold (default 0.5).
	MinCoverage float64
}

// NewKatara builds KATARA over the given knowledge base.
func NewKatara(kb *knowledge.Base) *Katara {
	return &Katara{KB: kb, MinCoverage: 0.5}
}

// Name implements Method.
func (b *Katara) Name() string { return "Katara" }

// Detect implements Method.
func (b *Katara) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)
	if b.KB == nil || b.KB.Types() == 0 {
		return pred, nil
	}
	for j := 0; j < d.NumCols(); j++ {
		col := d.Column(j)
		typ, cov := b.KB.BestType(col)
		if typ == "" || cov < b.MinCoverage {
			continue
		}
		for i, v := range col {
			if text.IsNullLike(v) {
				continue // KATARA does not model missing values (Table I)
			}
			if !b.KB.Contains(typ, v) {
				pred[i][j] = true
			}
		}
	}
	return pred, nil
}
