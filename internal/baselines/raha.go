package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// Raha reproduces the configuration-free Raha detector: a library of
// unsupervised detection strategies is run over every cell; each cell's
// strategy-output bit vector becomes its feature; cells of each column are
// clustered; a small budget of human-labeled tuples seeds cluster labels,
// which propagate to cluster members. Detection quality therefore scales
// with the labeling budget — the paper's Fig. 6 sweeps it from 1 to 45
// tuples, and grants 2 tuples in Table III.
type Raha struct {
	// LabelBudget is the number of tuples the human labels (default 2).
	LabelBudget int
	// Oracle reveals ground-truth cell labels for a tuple.
	Oracle LabelOracle
	Seed   int64
}

// NewRaha builds Raha with the paper's minimal-effort default of 2 labeled
// tuples.
func NewRaha(oracle LabelOracle) *Raha {
	return &Raha{LabelBudget: 2, Oracle: oracle}
}

// Name implements Method.
func (b *Raha) Name() string { return "Raha" }

// Detect implements Method.
func (b *Raha) Detect(d *table.Dataset) ([][]bool, error) {
	if b.Oracle == nil {
		return nil, fmt.Errorf("raha: label oracle required")
	}
	budget := b.LabelBudget
	if budget < 1 {
		budget = 1
	}
	n := d.NumRows()
	if budget > n {
		budget = n
	}
	rng := rand.New(rand.NewSource(b.Seed + 17))

	// Run the strategy library.
	feats := strategyFeatures(d)

	// Label budget tuples (seeded sample, as Raha's tuple sampler).
	labeledRows := rng.Perm(n)[:budget]
	rowLabels := make(map[int][]bool, budget)
	for _, r := range labeledRows {
		rowLabels[r] = b.Oracle(r)
	}

	pred := newMask(d)
	for j := 0; j < d.NumCols(); j++ {
		// Cells sharing an identical strategy-output vector form one
		// cluster — the fixed point of Raha's feature clustering, since
		// the vectors are discrete. Labeled cells vote within their
		// cluster (majority, ties dirty); unlabeled clusters default to
		// the majority class (clean).
		group := make(map[string]int, 32)
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			key := bitKey(feats[i][j])
			g, ok := group[key]
			if !ok {
				g = len(group)
				group[key] = g
			}
			assign[i] = g
		}
		dirtyVotes := make(map[int]int)
		cleanVotes := make(map[int]int)
		for _, r := range labeledRows {
			g := assign[r]
			if rowLabels[r][j] {
				dirtyVotes[g]++
			} else {
				cleanVotes[g]++
			}
		}
		// Propagated labels from voted clusters train a per-column
		// classifier that generalizes to unlabeled clusters (Raha's final
		// per-column model).
		var trainX [][]float64
		var trainY []float64
		labelOfGroup := make(map[int]bool)
		for g := range dirtyVotes {
			labelOfGroup[g] = true
		}
		for g := range cleanVotes {
			if _, ok := labelOfGroup[g]; !ok {
				labelOfGroup[g] = false
			}
		}
		for g := range labelOfGroup {
			labelOfGroup[g] = dirtyVotes[g] >= cleanVotes[g] && dirtyVotes[g] > 0
		}
		for i := 0; i < n; i++ {
			g := assign[i]
			if lbl, ok := labelOfGroup[g]; ok {
				x := append([]float64{1}, feats[i][j]...)
				trainX = append(trainX, x)
				if lbl {
					trainY = append(trainY, 1)
				} else {
					trainY = append(trainY, 0)
				}
			}
		}
		w, ok := logisticFit(trainX, trainY, 150, 0.8)
		for i := 0; i < n; i++ {
			g := assign[i]
			if lbl, voted := labelOfGroup[g]; voted {
				pred[i][j] = lbl
			} else if ok {
				pred[i][j] = logisticPredict(w, append([]float64{1}, feats[i][j]...)) >= 0.5
			}
		}
	}
	return pred, nil
}

// bitKey encodes a strategy bit vector as a compact map key.
func bitKey(bits []float64) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		if v > 0.5 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// strategyFeatures runs Raha's strategy library and returns, for each cell,
// the bit vector of strategy verdicts. All strategies except the FD check
// depend only on the cell's value, so their verdicts are computed once per
// unique value (dictionary entry) and broadcast to cells by value ID; the
// FD check compares precomputed expected-value IDs per row.
func strategyFeatures(d *table.Dataset) [][][]float64 {
	n, m := d.NumRows(), d.NumCols()
	const numStrategies = 11

	// Per-column, per-unique-value verdicts for strategies 0..9.
	valueBits := make([][][numStrategies]float64, m)
	for j := 0; j < m; j++ {
		dict := d.Dict(j)
		counts := stats.CountsByID(d, j)
		nullish := stats.NullishByID(d, j)
		parsedOf, okOf, numeric := numericByID(d, j, counts, 0.9)
		patCount := map[string]int{}
		patOf := make([]string, len(dict))
		for id, v := range dict {
			patOf[id] = text.Generalize(v, text.L3)
			patCount[patOf[id]] += counts[id]
		}
		var mean, std float64
		if numeric {
			var nums []float64
			for _, id := range d.ColumnIDs(j) {
				if okOf[id] {
					nums = append(nums, parsedOf[id])
				}
			}
			mean, std = stats.MeanStd(nums)
		}
		minFreq := n / 100
		if minFreq < 3 {
			minFreq = 3
		}
		var frequent []string
		for id, v := range dict {
			if counts[id] >= minFreq && !nullish[id] {
				frequent = append(frequent, v)
			}
		}
		sortStrs(frequent)
		if len(frequent) > 100 {
			frequent = frequent[:100]
		}

		bits := make([][numStrategies]float64, len(dict))
		for id, v := range dict {
			f := &bits[id]
			s := 0
			mark := func(cond bool) {
				if cond {
					f[s] = 1
				}
				s++
			}
			mark(nullish[id])
			for _, eps := range []float64{0.001, 0.005, 0.02} {
				mark(float64(counts[id]) <= eps*float64(n))
			}
			for _, eps := range []float64{0.001, 0.005, 0.02} {
				mark(float64(patCount[patOf[id]]) <= eps*float64(n))
			}
			if numeric {
				mark(!okOf[id] && !nullish[id])
				mark(okOf[id] && std > 0 && (parsedOf[id] > mean+3*std || parsedOf[id] < mean-3*std))
			} else {
				s += 2
			}
			// Typo proximity to a frequent value: once per unique value,
			// not once per cell.
			typo := false
			if !nullish[id] && counts[id] <= 2 {
				for _, fv := range frequent {
					if dist := text.Levenshtein(v, fv); dist > 0 && dist <= 2 {
						typo = true
						break
					}
				}
			}
			mark(typo)
		}
		valueBits[j] = bits
	}

	// Mined FDs for the rule-violation strategy, with expected dependent
	// value IDs resolved per determinant value ID.
	type fdRule struct {
		det, dep int
		wantID   []int64 // stats.ExpectedDepIDs sentinels
	}
	var fds []fdRule
	for det := 0; det < m; det++ {
		if float64(d.DistinctCount(det)) > 0.5*float64(n) {
			continue
		}
		for dep := 0; dep < m; dep++ {
			if det == dep {
				continue
			}
			fd := stats.FindFD(d, det, dep)
			if fd.Support >= 0.95 && len(fd.Mapping) >= 2 {
				fds = append(fds, fdRule{det, dep, stats.ExpectedDepIDs(d, det, dep, fd.Mapping, false)})
			}
		}
	}

	out := make([][][]float64, n)
	flat := make([]float64, n*m*numStrategies)
	for i := 0; i < n; i++ {
		out[i] = make([][]float64, m)
		for j := 0; j < m; j++ {
			f := flat[(i*m+j)*numStrategies : (i*m+j+1)*numStrategies]
			id := d.ValueID(i, j)
			copy(f, valueBits[j][id][:])
			for _, fd := range fds {
				if fd.dep != j {
					continue
				}
				w := fd.wantID[d.ValueID(i, fd.det)]
				if w != stats.DepNoEvidence && int64(id) != w {
					f[numStrategies-1] = 1
					break
				}
			}
			out[i][j] = f
		}
	}
	return out
}

func sortStrs(xs []string) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}
