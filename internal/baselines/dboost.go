package baselines

import (
	"strings"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// DBoost reproduces the dBoost outlier detector: per-attribute statistical
// models (Gaussian on numeric columns, histograms on values and on
// generalized patterns elsewhere) flag cells whose value is statistically
// improbable. Like the original, it is criteria-free but limited to errors
// that manifest as statistical anomalies (Table I: pattern violations,
// rule-ish rarities, outliers — not missing values or semantic typos that
// happen to be frequent).
//
// Verdicts depend only on a cell's value, so each model is evaluated once
// per unique value (dictionary entry) and broadcast to cells by value ID.
type DBoost struct {
	// GaussStd is the Gaussian threshold in standard deviations
	// (default 3).
	GaussStd float64
	// HistEpsilon is the rarity threshold for histogram models as a
	// fraction of rows (default 0.005).
	HistEpsilon float64
}

// NewDBoost returns dBoost with the paper-era default configuration.
func NewDBoost() *DBoost { return &DBoost{GaussStd: 3, HistEpsilon: 0.005} }

// Name implements Method.
func (b *DBoost) Name() string { return "dBoost" }

// Detect implements Method.
func (b *DBoost) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)
	n := d.NumRows()
	for j := 0; j < d.NumCols(); j++ {
		counts := stats.CountsByID(d, j)
		nullish := stats.NullishByID(d, j)
		parsedOf, okOf, numeric := numericByID(d, j, counts, 0.9)
		var dirty []bool
		if numeric {
			dirty = b.verdictNumeric(d, j, nullish, parsedOf, okOf)
		} else {
			dirty = b.verdictHistogram(d, j, n, counts, nullish)
		}
		for i, id := range d.ColumnIDs(j) {
			if dirty[id] {
				pred[i][j] = true
			}
		}
	}
	return pred, nil
}

// numericByID is text.IsNumericColumn evaluated per unique value with
// occurrence weights: it returns the per-dict-entry parse results plus
// whether at least frac of the column's non-blank cells parse as numbers.
// Blankness mirrors IsNumericColumn's strings.TrimSpace test exactly.
func numericByID(d *table.Dataset, j int, counts []int, frac float64) (parsedOf []float64, okOf []bool, numeric bool) {
	dict := d.Dict(j)
	parsedOf = make([]float64, len(dict))
	okOf = make([]bool, len(dict))
	parsed, nonEmpty := 0, 0
	for id, v := range dict {
		parsedOf[id], okOf[id] = text.ParseFloat(v)
		if counts[id] > 0 && strings.TrimSpace(v) != "" {
			nonEmpty += counts[id]
			if okOf[id] {
				parsed += counts[id]
			}
		}
	}
	return parsedOf, okOf, nonEmpty > 0 && float64(parsed)/float64(nonEmpty) >= frac
}

// verdictNumeric computes per-unique-value Gaussian verdicts for a numeric
// column. The mean/std accumulate over row-ordered values so results match
// the row-major implementation bit-for-bit.
func (b *DBoost) verdictNumeric(d *table.Dataset, j int, nullish []bool, parsedOf []float64, okOf []bool) []bool {
	var nums []float64
	for _, id := range d.ColumnIDs(j) {
		if okOf[id] {
			nums = append(nums, parsedOf[id])
		}
	}
	mean, std := stats.MeanStd(nums)
	dirty := make([]bool, len(nullish))
	for id := range dirty {
		if nullish[id] {
			continue // dBoost does not model missing values (Table I)
		}
		if !okOf[id] {
			dirty[id] = true // non-numeric intruder in a numeric model
			continue
		}
		f := parsedOf[id]
		if std > 0 && (f > mean+b.GaussStd*std || f < mean-b.GaussStd*std) {
			dirty[id] = true
		}
	}
	return dirty
}

// verdictHistogram computes per-unique-value rarity verdicts from the
// value and L3-pattern histograms.
func (b *DBoost) verdictHistogram(d *table.Dataset, j, n int, counts []int, nullish []bool) []bool {
	dict := d.Dict(j)
	patIndex := map[string]int{}
	patOf := make([]int, len(dict))
	var patCounts []int
	distinct := 0
	for id, v := range dict {
		p := text.Generalize(v, text.L3)
		pid, ok := patIndex[p]
		if !ok {
			pid = len(patCounts)
			patIndex[p] = pid
			patCounts = append(patCounts, 0)
		}
		patOf[id] = pid
		patCounts[pid] += counts[id]
		if counts[id] > 0 {
			distinct++
		}
	}
	minCount := int(b.HistEpsilon * float64(n))
	if minCount < 1 {
		minCount = 1
	}
	// High-cardinality columns (names, titles) carry no histogram signal on
	// raw values; only the pattern histogram applies there.
	highCard := float64(distinct) > 0.5*float64(n)
	dirty := make([]bool, len(dict))
	for id := range dirty {
		if nullish[id] {
			continue
		}
		rareVal := !highCard && counts[id] <= minCount
		pc := patCounts[patOf[id]]
		if pc <= minCount || (rareVal && pc <= 3*minCount) {
			dirty[id] = true
		}
	}
	return dirty
}
