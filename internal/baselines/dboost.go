package baselines

import (
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// DBoost reproduces the dBoost outlier detector: per-attribute statistical
// models (Gaussian on numeric columns, histograms on values and on
// generalized patterns elsewhere) flag cells whose value is statistically
// improbable. Like the original, it is criteria-free but limited to errors
// that manifest as statistical anomalies (Table I: pattern violations,
// rule-ish rarities, outliers — not missing values or semantic typos that
// happen to be frequent).
type DBoost struct {
	// GaussStd is the Gaussian threshold in standard deviations
	// (default 3).
	GaussStd float64
	// HistEpsilon is the rarity threshold for histogram models as a
	// fraction of rows (default 0.005).
	HistEpsilon float64
}

// NewDBoost returns dBoost with the paper-era default configuration.
func NewDBoost() *DBoost { return &DBoost{GaussStd: 3, HistEpsilon: 0.005} }

// Name implements Method.
func (b *DBoost) Name() string { return "dBoost" }

// Detect implements Method.
func (b *DBoost) Detect(d *table.Dataset) ([][]bool, error) {
	pred := newMask(d)
	n := d.NumRows()
	for j := 0; j < d.NumCols(); j++ {
		col := d.Column(j)
		if text.IsNumericColumn(col, 0.9) {
			b.detectNumeric(col, j, pred)
			continue
		}
		b.detectHistogram(col, j, n, pred)
	}
	return pred, nil
}

func (b *DBoost) detectNumeric(col []string, j int, pred [][]bool) {
	nums := stats.NumericColumn(col)
	mean, std := stats.MeanStd(nums)
	for i, v := range col {
		if text.IsNullLike(v) {
			continue // dBoost does not model missing values (Table I)
		}
		f, ok := text.ParseFloat(v)
		if !ok {
			pred[i][j] = true // non-numeric intruder in a numeric model
			continue
		}
		if std > 0 && (f > mean+b.GaussStd*std || f < mean-b.GaussStd*std) {
			pred[i][j] = true
		}
	}
}

func (b *DBoost) detectHistogram(col []string, j, n int, pred [][]bool) {
	valCount := map[string]int{}
	patCount := map[string]int{}
	for _, v := range col {
		valCount[v]++
		patCount[text.Generalize(v, text.L3)]++
	}
	minCount := int(b.HistEpsilon * float64(n))
	if minCount < 1 {
		minCount = 1
	}
	// High-cardinality columns (names, titles) carry no histogram signal on
	// raw values; only the pattern histogram applies there.
	highCard := float64(len(valCount)) > 0.5*float64(n)
	for i, v := range col {
		if text.IsNullLike(v) {
			continue
		}
		rareVal := !highCard && valCount[v] <= minCount
		rarePat := patCount[text.Generalize(v, text.L3)] <= minCount
		if rarePat || (rareVal && patCount[text.Generalize(v, text.L3)] <= 3*minCount) {
			pred[i][j] = true
		}
	}
}
