// Package cluster implements the clustering-based representative sampling
// of ZeroED Section III-C: k-means with k-means++ seeding (the default),
// agglomerative clustering, and uniform random sampling (the Table VI
// comparison points), plus centroid-nearest sample extraction.
package cluster

import (
	"math"
	"math/rand"
	"sort"
)

// Result holds a clustering of n points into k groups.
type Result struct {
	// Assign[i] is the cluster id of point i.
	Assign []int
	// Centroids[c] is the mean vector of cluster c.
	Centroids [][]float64
	// Members[c] lists the point indices in cluster c.
	Members [][]int
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k groups using Lloyd's algorithm with
// k-means++ initialization. The rng makes runs reproducible. k is clamped
// to len(points). maxIter bounds the Lloyd iterations.
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) *Result {
	n := len(points)
	if n == 0 {
		return &Result{}
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	dim := len(points[0])

	// k-means++ seeding: first centroid uniform, then proportional to
	// squared distance from the nearest chosen centroid.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], centroids[0])
	}
	for len(centroids) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var idx int
		if sum == 0 {
			idx = rng.Intn(n) // all points coincide with some centroid
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), points[idx]...)
		centroids = append(centroids, c)
		for i := range d2 {
			if d := sqDist(points[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centroids {
			for j := 0; j < dim; j++ {
				centroids[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, x := range p {
				centroids[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster at the point farthest from its
				// centroid to keep k effective clusters.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1.0 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return finish(assign, centroids, points)
}

func finish(assign []int, centroids [][]float64, points [][]float64) *Result {
	members := make([][]int, len(centroids))
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	_ = points
	return &Result{Assign: assign, Centroids: centroids, Members: members}
}

// CentroidSamples returns, for each non-empty cluster, the index of the
// member nearest its centroid — ZeroED's representative sample q_cje.
// The result is sorted ascending for determinism.
func (r *Result) CentroidSamples(points [][]float64) []int {
	var out []int
	for c, mem := range r.Members {
		if len(mem) == 0 {
			continue
		}
		best, bestD := mem[0], math.Inf(1)
		for _, i := range mem {
			if d := sqDist(points[i], r.Centroids[c]); d < bestD {
				best, bestD = i, d
			}
		}
		out = append(out, best)
	}
	sort.Ints(out)
	return out
}

// RandomSample clusters points trivially: it draws k distinct indices
// uniformly and assigns every point to its nearest sampled index. This is
// the "Random" row of Table VI expressed in the same Result shape.
func RandomSample(points [][]float64, k int, rng *rand.Rand) *Result {
	n := len(points)
	if n == 0 {
		return &Result{}
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	perm := rng.Perm(n)[:k]
	centroids := make([][]float64, k)
	for c, i := range perm {
		centroids[c] = append([]float64(nil), points[i]...)
	}
	assign := make([]int, n)
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return finish(assign, centroids, points)
}

// Agglomerative performs average-linkage hierarchical clustering down to k
// clusters. To keep the O(n^2)-ish cost tractable on large attributes it
// first reduces the data to at most maxLeaves seed groups via a fine
// k-means pass, then merges those groups hierarchically — the standard
// "hybrid" trick for scalable AGC.
func Agglomerative(points [][]float64, k int, rng *rand.Rand, maxLeaves int) *Result {
	n := len(points)
	if n == 0 {
		return &Result{}
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	if maxLeaves < k {
		maxLeaves = k
	}

	// Seed groups.
	var seed *Result
	if n <= maxLeaves {
		assign := make([]int, n)
		cents := make([][]float64, n)
		for i := range points {
			assign[i] = i
			cents[i] = append([]float64(nil), points[i]...)
		}
		seed = finish(assign, cents, points)
	} else {
		seed = KMeans(points, maxLeaves, rng, 10)
	}

	type group struct {
		centroid []float64
		size     int
		members  []int
		alive    bool
	}
	groups := make([]*group, 0, len(seed.Centroids))
	for c, mem := range seed.Members {
		if len(mem) == 0 {
			continue
		}
		groups = append(groups, &group{
			centroid: append([]float64(nil), seed.Centroids[c]...),
			size:     len(mem),
			members:  append([]int(nil), mem...),
			alive:    true,
		})
	}

	aliveCount := len(groups)
	for aliveCount > k {
		// Find the closest pair of alive groups (average linkage on
		// centroids weighted by size is equivalent for merged means).
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(groups); i++ {
			if !groups[i].alive {
				continue
			}
			for j := i + 1; j < len(groups); j++ {
				if !groups[j].alive {
					continue
				}
				if d := sqDist(groups[i].centroid, groups[j].centroid); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		gi, gj := groups[bi], groups[bj]
		total := float64(gi.size + gj.size)
		for x := range gi.centroid {
			gi.centroid[x] = (gi.centroid[x]*float64(gi.size) + gj.centroid[x]*float64(gj.size)) / total
		}
		gi.members = append(gi.members, gj.members...)
		gi.size += gj.size
		gj.alive = false
		aliveCount--
	}

	assign := make([]int, n)
	var centroids [][]float64
	c := 0
	for _, g := range groups {
		if !g.alive {
			continue
		}
		for _, i := range g.members {
			assign[i] = c
		}
		centroids = append(centroids, g.centroid)
		c++
	}
	return finish(assign, centroids, points)
}
