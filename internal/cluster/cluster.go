// Package cluster implements the clustering-based representative sampling
// of ZeroED Section III-C: k-means with k-means++ seeding (the default),
// agglomerative clustering, and uniform random sampling (the Table VI
// comparison points), plus centroid-nearest sample extraction.
//
// The core operates on a flat row-major points matrix (point i occupies
// data[i*dim : (i+1)*dim]) — the layout the feature extractor's tile APIs
// produce — so the inner loops are cache-friendly and allocation-light.
// KMeansFlat accelerates Lloyd's algorithm with Hamerly-style distance
// bounds, duplicate-row deduplication, and batched column-major distance
// scans, and is guaranteed to produce the same assignments as the naive
// full-scan algorithm: every pruning certificate carries a conservative
// floating-point margin, and whenever a certificate cannot be established
// the point falls back to an exact scan whose per-centroid distances are
// bit-identical to sqDist (same loop order, same tie-breaking).
//
// The historical [][]float64 entry points remain as thin wrappers.
package cluster

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"

	"repro/internal/randx"
)

// Result holds a clustering of n points into k groups.
type Result struct {
	// Assign[i] is the cluster id of point i.
	Assign []int
	// Centroids[c] is the mean vector of cluster c.
	Centroids [][]float64
	// Members[c] lists the point indices in cluster c.
	Members [][]int
}

// boundSlack is the relative margin applied to Hamerly bound updates so
// that accumulated floating-point error can never produce a false pruning
// certificate: upper bounds are inflated and lower bounds deflated by this
// factor on every update. The quantities involved (sqDist of coordinate
// differences, sqrt, additions) carry only relative rounding error of a
// few ulps (~1e-16); 1e-9 dwarfs it while pruning everything that matters.
const boundSlack = 1e-9

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// flatten copies [][]float64 points into a flat row-major matrix.
func flatten(points [][]float64) ([]float64, int, int) {
	n := len(points)
	if n == 0 {
		return nil, 0, 0
	}
	dim := len(points[0])
	data := make([]float64, n*dim)
	for i, p := range points {
		copy(data[i*dim:], p)
	}
	return data, n, dim
}

// clampK normalizes a requested cluster count against the point count.
func clampK(k, n int) int {
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	return k
}

// newCentroidBlock allocates k centroids of width dim backed by one flat
// block.
func newCentroidBlock(k, dim int) [][]float64 {
	flat := make([]float64, k*dim)
	out := make([][]float64, k)
	for c := range out {
		out[c] = flat[c*dim : (c+1)*dim]
	}
	return out
}

// seedPlusPlus runs k-means++ seeding over the flat matrix: first centroid
// uniform, then proportional to squared distance from the nearest chosen
// centroid.
func seedPlusPlus(data []float64, n, dim, k int, rng *rand.Rand) [][]float64 {
	centroids := newCentroidBlock(k, dim)
	first := rng.Intn(n)
	copy(centroids[0], data[first*dim:(first+1)*dim])
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(data[i*dim:(i+1)*dim], centroids[0])
	}
	for chosen := 1; chosen < k; chosen++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var idx int
		if sum == 0 {
			idx = rng.Intn(n) // all points coincide with some centroid
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := centroids[chosen]
		copy(c, data[idx*dim:(idx+1)*dim])
		for i := range d2 {
			if d := sqDist(data[i*dim:(i+1)*dim], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// dedupPoints groups bit-identical rows of the flat matrix: uid[i] is the
// dense unique id of point i, reps[t] the index of the first point carrying
// unique id t. Identity is exact float64 bit equality (NaN payloads and
// zero signs included), so two points sharing a uid are indistinguishable
// to every distance computation — the foundation of the per-unique Lloyd
// and seeding paths below. Value-interned pipelines (this repo's feature
// tiles) produce heavily duplicated rows, so u is often far below n.
func dedupPoints(data []float64, n, dim int) (uid []int32, reps []int32) {
	uid = make([]int32, n)
	seen := make(map[string]int32, n)
	buf := make([]byte, dim*8)
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		for j, v := range row {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(v))
		}
		if t, ok := seen[string(buf)]; ok {
			uid[i] = t
			continue
		}
		t := int32(len(reps))
		seen[string(buf)] = t
		reps = append(reps, int32(i))
		uid[i] = t
	}
	return uid, reps
}

// seedPlusPlusDedup is seedPlusPlus with the per-point distance work
// deduplicated by unique id and batched column-major: squared distances
// are computed once per unique row (via distsToAll over the transposed
// unique-points tile, each bit-identical to sqDist) and read through uid
// for the weighted draws. The d2 value sequence, the accumulation order of
// the proportional draws, and the rng stream are exactly those of
// seedPlusPlus — duplicates always carried identical d2 entries — so the
// chosen centroids are bit-identical.
func seedPlusPlusDedup(data []float64, n, dim, k int, rng *rand.Rand, uid, reps []int32) [][]float64 {
	u := len(reps)
	ptsT := make([]float64, dim*u)
	transposeRows(ptsT, data, reps, u, dim)
	centroids := newCentroidBlock(k, dim)
	first := rng.Intn(n)
	copy(centroids[0], data[first*dim:(first+1)*dim])
	d2u := make([]float64, u)
	distsToAll(centroids[0], ptsT, u, d2u)
	dnew := make([]float64, u)
	for chosen := 1; chosen < k; chosen++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += d2u[uid[i]]
		}
		var idx int
		if sum == 0 {
			idx = rng.Intn(n) // all points coincide with some centroid
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			idx = n - 1
			for i := 0; i < n; i++ {
				acc += d2u[uid[i]]
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := centroids[chosen]
		copy(c, data[idx*dim:(idx+1)*dim])
		distsToAll(c, ptsT, u, dnew)
		for t, d := range dnew {
			if d < d2u[t] {
				d2u[t] = d
			}
		}
	}
	return centroids
}

// updateCentroids recomputes each centroid as the mean of its members,
// re-seeding empty clusters at the point farthest from its current
// centroid. Shared by the pruned and naive Lloyd loops so both see
// identical centroid sequences.
func updateCentroids(data []float64, n, dim int, assign []int, centroids [][]float64, counts []int) {
	k := len(centroids)
	for c := 0; c < k; c++ {
		counts[c] = 0
		cen := centroids[c]
		for j := range cen {
			cen[j] = 0
		}
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		counts[c]++
		cen := centroids[c]
		p := data[i*dim : (i+1)*dim]
		for j, x := range p {
			cen[j] += x
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			// Re-seed empty cluster at the point farthest from its
			// centroid to keep k effective clusters.
			far, farD := 0, -1.0
			for i := 0; i < n; i++ {
				if d := sqDist(data[i*dim:(i+1)*dim], centroids[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			copy(centroids[c], data[far*dim:(far+1)*dim])
			continue
		}
		inv := 1.0 / float64(counts[c])
		cen := centroids[c]
		for j := range cen {
			cen[j] *= inv
		}
	}
}

// distsToAll computes the exact squared distance from vec to each of the m
// vectors held column-major in tileT (coordinate j of vector t at
// tileT[j*m+t]), writing them into dist[:m]. Accumulator t receives
// (vec[0]-x_t[0])² + (vec[1]-x_t[1])² + ... strictly in ascending
// coordinate order — sqDist's exact association, so every distance is
// bit-identical to sqDist(vec, x_t) — while the column walk advances m
// independent dependency chains and four coordinates per pass amortize the
// accumulator traffic, the same instruction-count trick as nn's
// column-major kernels. (A squared difference is sign-insensitive, so
// either subtraction orientation yields identical bits.)
func distsToAll(vec, tileT []float64, m int, dist []float64) {
	d := dist[:m]
	for t := range d {
		d[t] = 0
	}
	dim := len(vec)
	j := 0
	for ; j+4 <= dim; j += 4 {
		p0, p1, p2, p3 := vec[j], vec[j+1], vec[j+2], vec[j+3]
		c0 := tileT[(j+0)*m:][:m]
		c1 := tileT[(j+1)*m:][:m]
		c2 := tileT[(j+2)*m:][:m]
		c3 := tileT[(j+3)*m:][:m]
		for t := range d {
			e0 := p0 - c0[t]
			s := d[t] + e0*e0
			e1 := p1 - c1[t]
			s += e1 * e1
			e2 := p2 - c2[t]
			s += e2 * e2
			e3 := p3 - c3[t]
			s += e3 * e3
			d[t] = s
		}
	}
	for ; j < dim; j++ {
		pj := vec[j]
		col := tileT[j*m:][:m]
		for t := range d {
			e := pj - col[t]
			d[t] += e * e
		}
	}
}

// transposeRows fills tileT (dim x m, column-major tile) from the m rows of
// data selected by rows (row t at data[rows[t]*dim:]). With rows nil, rows
// 0..m-1 are taken in order.
func transposeRows(tileT, data []float64, rows []int32, m, dim int) {
	for t := 0; t < m; t++ {
		ri := t
		if rows != nil {
			ri = int(rows[t])
		}
		row := data[ri*dim : (ri+1)*dim]
		for j, v := range row {
			tileT[j*m+t] = v
		}
	}
}

// selectBest returns the argmin over dist[:m] (first index on ties, like
// the naive scan loop), its value, and the runner-up value.
func selectBest(dist []float64, m int) (best int, bestD, secondD float64) {
	best, bestD, secondD = 0, math.Inf(1), math.Inf(1)
	for c, d := range dist[:m] {
		if d < bestD {
			secondD = bestD
			best, bestD = c, d
		} else if d < secondD {
			secondD = d
		}
	}
	return best, bestD, secondD
}

// KMeansFlat clusters n points of width dim, stored row-major in data,
// into k groups using Lloyd's algorithm with k-means++ initialization,
// accelerated by Hamerly-style upper/lower distance bounds, cached
// point/centroid squared norms, and duplicate-point deduplication: all
// per-point distance work (seeding distances, bound maintenance, centroid
// scans) runs once per bit-identical unique row and is splatted back to
// point space. Bit-equal points see identical distances, certificates, and
// scan results at every step, and the order-sensitive reductions (the
// k-means++ proportional draws and the centroid member sums) still run over
// all n points in original index order, so results (assignments and
// centroids) are identical to the naive full-scan algorithm for every
// input. k is clamped to n; maxIter bounds the Lloyd iterations.
func KMeansFlat(data []float64, n, dim, k int, rng *rand.Rand, maxIter int) *Result {
	if n == 0 {
		return &Result{}
	}
	k = clampK(k, n)
	uid, reps := dedupPoints(data, n, dim)
	u := len(reps)
	centroids := seedPlusPlusDedup(data, n, dim, k, rng, uid, reps)

	// Column-major centroid tile, rebuilt per iteration, plus the distance
	// scratch the batched exact scan writes into.
	cenT := make([]float64, dim*k)
	dist := make([]float64, k)

	// Per-unique assignment and Hamerly bounds, in distance (not squared)
	// space: ubU[t] is an upper bound on the distance from unique t to its
	// assigned centroid, lbU[t] a lower bound on the distance to every
	// other centroid. Duplicates of one unique always carried identical
	// assignment and bound trajectories, so one slot per unique loses
	// nothing.
	assignU := make([]int, u)
	for t := range assignU {
		assignU[t] = -1
	}
	ubU := make([]float64, u)
	lbU := make([]float64, u)

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	oldCentroids := newCentroidBlock(k, dim)
	drift := make([]float64, k)

	for iter := 0; iter < maxIter; iter++ {
		for c, cen := range centroids {
			for j, v := range cen {
				cenT[j*k+c] = v
			}
		}
		changed := false
		for t := 0; t < u; t++ {
			ri := int(reps[t])
			p := data[ri*dim : (ri+1)*dim]
			if a := assignU[t]; a >= 0 {
				// Certificate 1: stale bounds already separate the
				// assigned centroid from all others.
				if ubU[t] < lbU[t] {
					continue
				}
				// Certificate 2: tighten the upper bound to the exact
				// current distance and re-test.
				exact := math.Sqrt(sqDist(p, centroids[a]))
				ubU[t] = exact * (1 + boundSlack)
				if ubU[t] < lbU[t] {
					continue
				}
			}
			// Fall back to the batched exact scan (every distance
			// bit-identical to the naive loop's sqDist, same first-on-tie
			// argmin), then refresh both bounds from its distances. The
			// runner-up distance here is exact, a valid (and tighter) lower
			// bound wherever the historical norm-gap estimate was used.
			distsToAll(p, cenT, k, dist)
			best, bestD, secondD := selectBest(dist, k)
			ubU[t] = math.Sqrt(bestD) * (1 + boundSlack)
			lbU[t] = math.Sqrt(secondD) * (1 - boundSlack)
			if assignU[t] != best {
				assignU[t] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for i := 0; i < n; i++ {
			assign[i] = assignU[uid[i]]
		}
		for c, cen := range centroids {
			copy(oldCentroids[c], cen)
		}
		updateCentroids(data, n, dim, assign, centroids, counts)
		// Bound maintenance: each unique's upper bound grows by its own
		// centroid's drift, every lower bound shrinks by the largest drift.
		maxDrift := 0.0
		for c := range centroids {
			drift[c] = math.Sqrt(sqDist(oldCentroids[c], centroids[c])) * (1 + boundSlack)
			if drift[c] > maxDrift {
				maxDrift = drift[c]
			}
		}
		for t := 0; t < u; t++ {
			ubU[t] += drift[assignU[t]]
			lbU[t] -= maxDrift
		}
	}
	return finishFlat(assign, centroids)
}

// kmeansNaiveFlat is the reference full-scan Lloyd loop over the flat
// matrix: identical seeding, centroid updates, and tie-breaking as
// KMeansFlat but with no pruning. Kept (package-private) as the oracle for
// the pruned-equals-naive property test.
func kmeansNaiveFlat(data []float64, n, dim, k int, rng *rand.Rand, maxIter int) *Result {
	if n == 0 {
		return &Result{}
	}
	k = clampK(k, n)
	centroids := seedPlusPlus(data, n, dim, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			p := data[i*dim : (i+1)*dim]
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		updateCentroids(data, n, dim, assign, centroids, counts)
	}
	return finishFlat(assign, centroids)
}

func finishFlat(assign []int, centroids [][]float64) *Result {
	members := make([][]int, len(centroids))
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	return &Result{Assign: assign, Centroids: centroids, Members: members}
}

// KMeans is the [][]float64 wrapper around KMeansFlat.
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) *Result {
	data, n, dim := flatten(points)
	return KMeansFlat(data, n, dim, k, rng, maxIter)
}

// CentroidSamplesFlat returns, for each non-empty cluster, the index of
// the member nearest its centroid — ZeroED's representative sample q_cje —
// over the flat points matrix the clustering was computed on. The result
// is sorted ascending for determinism.
func (r *Result) CentroidSamplesFlat(data []float64, dim int) []int {
	var out []int
	for c, mem := range r.Members {
		if len(mem) == 0 {
			continue
		}
		best, bestD := mem[0], math.Inf(1)
		for _, i := range mem {
			if d := sqDist(data[i*dim:(i+1)*dim], r.Centroids[c]); d < bestD {
				best, bestD = i, d
			}
		}
		out = append(out, best)
	}
	sort.Ints(out)
	return out
}

// CentroidSamples is the [][]float64 wrapper around CentroidSamplesFlat.
func (r *Result) CentroidSamples(points [][]float64) []int {
	data, _, dim := flatten(points)
	return r.CentroidSamplesFlat(data, dim)
}

// RandomSampleFlat clusters points trivially: it draws k distinct indices
// uniformly (an O(k) partial Fisher–Yates draw) and assigns every point to
// its nearest sampled index. This is the "Random" row of Table VI
// expressed in the same Result shape.
func RandomSampleFlat(data []float64, n, dim, k int, rng *rand.Rand) *Result {
	if n == 0 {
		return &Result{}
	}
	k = clampK(k, n)
	perm := randx.PartialPerm(rng, n, k)
	centroids := newCentroidBlock(k, dim)
	for c, i := range perm {
		copy(centroids[c], data[i*dim:(i+1)*dim])
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		p := data[i*dim : (i+1)*dim]
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return finishFlat(assign, centroids)
}

// RandomSample is the [][]float64 wrapper around RandomSampleFlat.
func RandomSample(points [][]float64, k int, rng *rand.Rand) *Result {
	data, n, dim := flatten(points)
	return RandomSampleFlat(data, n, dim, k, rng)
}

// AgglomerativeFlat performs average-linkage hierarchical clustering down
// to k clusters over the flat matrix. To keep the O(n^2)-ish cost
// tractable on large attributes it first reduces the data to at most
// maxLeaves seed groups via a fine k-means pass, then merges those groups
// hierarchically — the standard "hybrid" trick for scalable AGC.
func AgglomerativeFlat(data []float64, n, dim, k int, rng *rand.Rand, maxLeaves int) *Result {
	if n == 0 {
		return &Result{}
	}
	k = clampK(k, n)
	if maxLeaves < k {
		maxLeaves = k
	}

	// Seed groups.
	var seed *Result
	if n <= maxLeaves {
		assign := make([]int, n)
		cents := newCentroidBlock(n, dim)
		for i := 0; i < n; i++ {
			assign[i] = i
			copy(cents[i], data[i*dim:(i+1)*dim])
		}
		seed = finishFlat(assign, cents)
	} else {
		seed = KMeansFlat(data, n, dim, maxLeaves, rng, 10)
	}

	type group struct {
		centroid []float64
		size     int
		members  []int
		alive    bool
	}
	groups := make([]*group, 0, len(seed.Centroids))
	for c, mem := range seed.Members {
		if len(mem) == 0 {
			continue
		}
		groups = append(groups, &group{
			centroid: append([]float64(nil), seed.Centroids[c]...),
			size:     len(mem),
			members:  append([]int(nil), mem...),
			alive:    true,
		})
	}

	aliveCount := len(groups)
	for aliveCount > k {
		// Find the closest pair of alive groups (average linkage on
		// centroids weighted by size is equivalent for merged means).
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(groups); i++ {
			if !groups[i].alive {
				continue
			}
			for j := i + 1; j < len(groups); j++ {
				if !groups[j].alive {
					continue
				}
				if d := sqDist(groups[i].centroid, groups[j].centroid); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		gi, gj := groups[bi], groups[bj]
		total := float64(gi.size + gj.size)
		for x := range gi.centroid {
			gi.centroid[x] = (gi.centroid[x]*float64(gi.size) + gj.centroid[x]*float64(gj.size)) / total
		}
		gi.members = append(gi.members, gj.members...)
		gi.size += gj.size
		gj.alive = false
		aliveCount--
	}

	assign := make([]int, n)
	var centroids [][]float64
	c := 0
	for _, g := range groups {
		if !g.alive {
			continue
		}
		for _, i := range g.members {
			assign[i] = c
		}
		centroids = append(centroids, g.centroid)
		c++
	}
	return finishFlat(assign, centroids)
}

// Agglomerative is the [][]float64 wrapper around AgglomerativeFlat.
func Agglomerative(points [][]float64, k int, rng *rand.Rand, maxLeaves int) *Result {
	data, n, dim := flatten(points)
	return AgglomerativeFlat(data, n, dim, k, rng, maxLeaves)
}
