package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs builds well-separated 2D clusters around (0,0), (10,0), (0,10).
func threeBlobs(rng *rand.Rand, per int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var pts [][]float64
	var truth []int
	for c, cen := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				cen[0] + rng.NormFloat64()*0.3,
				cen[1] + rng.NormFloat64()*0.3,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

// purity measures how well clusters align with the ground-truth blobs.
func purity(assign, truth []int, k int) float64 {
	counts := make(map[[2]int]int)
	for i := range assign {
		counts[[2]int{assign[i], truth[i]}]++
	}
	best := make(map[int]int)
	for key, c := range counts {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	sum := 0
	for _, c := range best {
		sum += c
	}
	return float64(sum) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := threeBlobs(rng, 40)
	res := KMeans(pts, 3, rng, 50)
	if p := purity(res.Assign, truth, 3); p < 0.99 {
		t.Errorf("k-means purity = %v, want >= 0.99", p)
	}
	if len(res.Centroids) != 3 {
		t.Errorf("centroids = %d, want 3", len(res.Centroids))
	}
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, truth := threeBlobs(rng, 40)
	res := Agglomerative(pts, 3, rng, 60)
	if p := purity(res.Assign, truth, 3); p < 0.99 {
		t.Errorf("agglomerative purity = %v, want >= 0.99", p)
	}
}

func TestAgglomerativeLargeInputReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := threeBlobs(rng, 100) // 300 points > maxLeaves
	res := Agglomerative(pts, 3, rng, 50)
	if got := len(res.Centroids); got != 3 {
		t.Errorf("clusters = %d, want 3", got)
	}
	if len(res.Assign) != 300 {
		t.Errorf("assignments = %d, want 300", len(res.Assign))
	}
}

func TestRandomSampleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := threeBlobs(rng, 10)
	res := RandomSample(pts, 5, rng)
	if len(res.Centroids) != 5 {
		t.Errorf("centroids = %d, want 5", len(res.Centroids))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 5 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestCentroidSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(rng, 20)
	res := KMeans(pts, 3, rng, 50)
	samples := res.CentroidSamples(pts)
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	seen := map[int]bool{}
	for _, s := range samples {
		if s < 0 || s >= len(pts) {
			t.Fatalf("sample index %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("duplicate sample %d", s)
		}
		seen[s] = true
	}
	// Sorted ascending.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Error("samples must be sorted")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if res := KMeans(nil, 3, rng, 10); len(res.Assign) != 0 {
		t.Error("empty input should produce empty result")
	}
	// k > n clamps.
	pts := [][]float64{{1}, {2}}
	res := KMeans(pts, 10, rng, 10)
	if len(res.Centroids) != 2 {
		t.Errorf("k clamp: centroids = %d, want 2", len(res.Centroids))
	}
	// All-identical points.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res = KMeans(same, 2, rng, 10)
	if len(res.Assign) != 4 {
		t.Error("identical points must still be assigned")
	}
	// k <= 0 becomes 1.
	res = KMeans(pts, 0, rng, 10)
	if len(res.Centroids) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", len(res.Centroids))
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(7)), 30)
	a := KMeans(pts, 3, rand.New(rand.NewSource(42)), 50)
	b := KMeans(pts, 3, rand.New(rand.NewSource(42)), 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}

// Property: every point is assigned to a valid cluster and every cluster's
// member list is consistent with the assignment.
func TestKMeansInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pts, _ := threeBlobs(rng, 15)
		k := int(kRaw)%6 + 1
		res := KMeans(pts, k, rng, 20)
		if len(res.Assign) != len(pts) {
			return false
		}
		count := 0
		for c, mem := range res.Members {
			for _, i := range mem {
				if res.Assign[i] != c {
					return false
				}
				count++
			}
		}
		return count == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// flatBlobs builds random gaussian mixtures directly in flat row-major
// layout: n points of width dim around nc random centers.
func flatBlobs(rng *rand.Rand, n, dim, nc int) []float64 {
	centers := make([]float64, nc*dim)
	for i := range centers {
		centers[i] = rng.NormFloat64() * 5
	}
	data := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(nc)
		for j := 0; j < dim; j++ {
			data[i*dim+j] = centers[c*dim+j] + rng.NormFloat64()*0.5
		}
	}
	return data
}

// TestKMeansPrunedMatchesNaive is the acceleration-correctness property
// test: the Hamerly-pruned KMeansFlat must produce exactly the assignments
// and centroids of the naive full-scan Lloyd loop, on a spread of random
// shapes including duplicate-heavy data (interned feature vectors repeat a
// lot in the real pipeline).
func TestKMeansPrunedMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, dim, nc, k, iters int }{
		{60, 2, 3, 3, 25},
		{200, 8, 5, 12, 25},
		{300, 16, 4, 7, 15},
		{100, 3, 2, 30, 10}, // many clusters, few blobs: empty-cluster reseeds
		{50, 4, 1, 5, 10},   // single blob: heavy near-ties
	} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(tc.n)))
			data := flatBlobs(rng, tc.n, tc.dim, tc.nc)
			if seed%2 == 1 {
				// Duplicate half the points onto the first half: exact
				// duplicates exercise tie-breaking.
				for i := tc.n / 2; i < tc.n; i++ {
					src := (i - tc.n/2) * tc.dim
					copy(data[i*tc.dim:(i+1)*tc.dim], data[src:src+tc.dim])
				}
			}
			if seed%4 == 2 {
				// Offset all coordinates far from the origin: norms
				// cancel catastrophically, so an unsound norm-gap
				// prefilter would silently diverge from naive here.
				for i := range data {
					data[i] += 1e9
				}
			}
			pruned := KMeansFlat(data, tc.n, tc.dim, tc.k, rand.New(rand.NewSource(seed+99)), tc.iters)
			naive := kmeansNaiveFlat(data, tc.n, tc.dim, tc.k, rand.New(rand.NewSource(seed+99)), tc.iters)
			if len(pruned.Assign) != len(naive.Assign) {
				t.Fatalf("case %+v seed %d: assign lengths differ", tc, seed)
			}
			for i := range pruned.Assign {
				if pruned.Assign[i] != naive.Assign[i] {
					t.Fatalf("case %+v seed %d: assignment of point %d differs: pruned %d, naive %d",
						tc, seed, i, pruned.Assign[i], naive.Assign[i])
				}
			}
			for c := range pruned.Centroids {
				for j := range pruned.Centroids[c] {
					if pruned.Centroids[c][j] != naive.Centroids[c][j] {
						t.Fatalf("case %+v seed %d: centroid %d[%d] differs", tc, seed, c, j)
					}
				}
			}
		}
	}
}

// TestFlatWrappersAgree pins the [][]float64 wrappers to the flat core.
func TestFlatWrappersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts, _ := threeBlobs(rng, 30)
	dim := 2
	data := make([]float64, len(pts)*dim)
	for i, p := range pts {
		copy(data[i*dim:], p)
	}
	a := KMeans(pts, 4, rand.New(rand.NewSource(5)), 20)
	b := KMeansFlat(data, len(pts), dim, 4, rand.New(rand.NewSource(5)), 20)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("KMeans wrapper and KMeansFlat disagree")
		}
	}
	sa := a.CentroidSamples(pts)
	sb := b.CentroidSamplesFlat(data, dim)
	if len(sa) != len(sb) {
		t.Fatalf("centroid sample counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("CentroidSamples wrapper and flat form disagree")
		}
	}
	ra := RandomSample(pts, 6, rand.New(rand.NewSource(6)))
	rb := RandomSampleFlat(data, len(pts), dim, 6, rand.New(rand.NewSource(6)))
	for i := range ra.Assign {
		if ra.Assign[i] != rb.Assign[i] {
			t.Fatal("RandomSample wrapper and flat form disagree")
		}
	}
	ga := Agglomerative(pts, 3, rand.New(rand.NewSource(7)), 40)
	gb := AgglomerativeFlat(data, len(pts), dim, 3, rand.New(rand.NewSource(7)), 40)
	for i := range ga.Assign {
		if ga.Assign[i] != gb.Assign[i] {
			t.Fatal("Agglomerative wrapper and flat form disagree")
		}
	}
}

func BenchmarkKMeansFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := flatBlobs(rng, 1500, 32, 8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMeansFlat(data, 1500, 32, 20, rand.New(rand.NewSource(1)), 25)
	}
}

func BenchmarkKMeansNaiveFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := flatBlobs(rng, 1500, 32, 8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kmeansNaiveFlat(data, 1500, 32, 20, rand.New(rand.NewSource(1)), 25)
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := threeBlobs(rng, 500)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 20, rand.New(rand.NewSource(1)), 25)
	}
}
