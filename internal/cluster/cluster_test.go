package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs builds well-separated 2D clusters around (0,0), (10,0), (0,10).
func threeBlobs(rng *rand.Rand, per int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var pts [][]float64
	var truth []int
	for c, cen := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				cen[0] + rng.NormFloat64()*0.3,
				cen[1] + rng.NormFloat64()*0.3,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

// purity measures how well clusters align with the ground-truth blobs.
func purity(assign, truth []int, k int) float64 {
	counts := make(map[[2]int]int)
	for i := range assign {
		counts[[2]int{assign[i], truth[i]}]++
	}
	best := make(map[int]int)
	for key, c := range counts {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	sum := 0
	for _, c := range best {
		sum += c
	}
	return float64(sum) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := threeBlobs(rng, 40)
	res := KMeans(pts, 3, rng, 50)
	if p := purity(res.Assign, truth, 3); p < 0.99 {
		t.Errorf("k-means purity = %v, want >= 0.99", p)
	}
	if len(res.Centroids) != 3 {
		t.Errorf("centroids = %d, want 3", len(res.Centroids))
	}
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, truth := threeBlobs(rng, 40)
	res := Agglomerative(pts, 3, rng, 60)
	if p := purity(res.Assign, truth, 3); p < 0.99 {
		t.Errorf("agglomerative purity = %v, want >= 0.99", p)
	}
}

func TestAgglomerativeLargeInputReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := threeBlobs(rng, 100) // 300 points > maxLeaves
	res := Agglomerative(pts, 3, rng, 50)
	if got := len(res.Centroids); got != 3 {
		t.Errorf("clusters = %d, want 3", got)
	}
	if len(res.Assign) != 300 {
		t.Errorf("assignments = %d, want 300", len(res.Assign))
	}
}

func TestRandomSampleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := threeBlobs(rng, 10)
	res := RandomSample(pts, 5, rng)
	if len(res.Centroids) != 5 {
		t.Errorf("centroids = %d, want 5", len(res.Centroids))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 5 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestCentroidSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(rng, 20)
	res := KMeans(pts, 3, rng, 50)
	samples := res.CentroidSamples(pts)
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	seen := map[int]bool{}
	for _, s := range samples {
		if s < 0 || s >= len(pts) {
			t.Fatalf("sample index %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("duplicate sample %d", s)
		}
		seen[s] = true
	}
	// Sorted ascending.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Error("samples must be sorted")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if res := KMeans(nil, 3, rng, 10); len(res.Assign) != 0 {
		t.Error("empty input should produce empty result")
	}
	// k > n clamps.
	pts := [][]float64{{1}, {2}}
	res := KMeans(pts, 10, rng, 10)
	if len(res.Centroids) != 2 {
		t.Errorf("k clamp: centroids = %d, want 2", len(res.Centroids))
	}
	// All-identical points.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res = KMeans(same, 2, rng, 10)
	if len(res.Assign) != 4 {
		t.Error("identical points must still be assigned")
	}
	// k <= 0 becomes 1.
	res = KMeans(pts, 0, rng, 10)
	if len(res.Centroids) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", len(res.Centroids))
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(7)), 30)
	a := KMeans(pts, 3, rand.New(rand.NewSource(42)), 50)
	b := KMeans(pts, 3, rand.New(rand.NewSource(42)), 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}

// Property: every point is assigned to a valid cluster and every cluster's
// member list is consistent with the assignment.
func TestKMeansInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pts, _ := threeBlobs(rng, 15)
		k := int(kRaw)%6 + 1
		res := KMeans(pts, k, rng, 20)
		if len(res.Assign) != len(pts) {
			return false
		}
		count := 0
		for c, mem := range res.Members {
			for _, i := range mem {
				if res.Assign[i] != c {
					return false
				}
				count++
			}
		}
		return count == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := threeBlobs(rng, 500)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 20, rand.New(rand.NewSource(1)), 25)
	}
}
