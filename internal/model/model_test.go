package model

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/zeroed"
)

// fitSmall fits a small Hospital model once per test binary; every test
// reads from it but none mutates it (models are read-only after fitting,
// and scoring binds fresh datasets per call).
var fitOnce struct {
	sync.Once
	m     *zeroed.Model
	bench *datasets.Bench
	err   error
}

func fitSmall(t testing.TB) (*zeroed.Model, *datasets.Bench) {
	t.Helper()
	fitOnce.Do(func() {
		fitOnce.bench = datasets.Hospital(200, 7)
		fitOnce.m, fitOnce.err = zeroed.New(zeroed.Config{
			LabelRate: 0.08, EmbedDim: 16, Seed: 7, Workers: 2,
		}).Fit(fitOnce.bench.Dirty)
	})
	if fitOnce.err != nil {
		t.Fatal(fitOnce.err)
	}
	return fitOnce.m, fitOnce.bench
}

// assertSameScores compares two results bit-for-bit.
func assertSameScores(t *testing.T, name string, a, b *zeroed.Result) {
	t.Helper()
	if len(a.Pred) != len(b.Pred) {
		t.Fatalf("%s: %d vs %d rows", name, len(a.Pred), len(b.Pred))
	}
	for i := range a.Pred {
		for j := range a.Pred[i] {
			if a.Pred[i][j] != b.Pred[i][j] {
				t.Fatalf("%s: verdict differs at (%d,%d)", name, i, j)
			}
			if math.Float64bits(a.Scores[i][j]) != math.Float64bits(b.Scores[i][j]) {
				t.Fatalf("%s: score bits differ at (%d,%d)", name, i, j)
			}
		}
	}
}

// TestSaveLoadScoreBitIdentical is the artifact half of the acceptance
// contract: save -> load -> Score is bit-identical (verdicts and float64
// score bits) to the in-memory Score, for Workers∈{1,8}.
func TestSaveLoadScoreBitIdentical(t *testing.T) {
	m, bench := fitSmall(t)
	want, err := m.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hospital.zedm")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FitRows() != bench.Dirty.NumRows() {
		t.Fatalf("loaded FitRows = %d, want %d", loaded.FitRows(), bench.Dirty.NumRows())
	}
	if loaded.Info().Usage != m.Info().Usage || loaded.Info().CriteriaCount != m.Info().CriteriaCount {
		t.Fatalf("fit diagnostics did not round-trip: %+v vs %+v", loaded.Info(), m.Info())
	}
	for _, workers := range []int{1, 8} {
		loaded.SetParallelism(workers, 0)
		got, err := loaded.Score(bench.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		assertSameScores(t, "loaded", want, got)
	}
	// New rows (seen and unseen values mixed) score identically through
	// both models too.
	rows := [][]string{bench.Dirty.Row(0), bench.Dirty.Row(1)}
	rows[1][0] = "never-interned-during-fit"
	a, err := m.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	assertSameScores(t, "loaded-fresh-rows", a, b)
}

// TestEncodeDeterministic: encoding the same model twice yields identical
// bytes (all map iteration is sorted away).
func TestEncodeDeterministic(t *testing.T) {
	m, _ := fitSmall(t)
	a, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one model differ")
	}
}

// TestDecodeRejectsWrongMagicAndVersion covers the header checks.
func TestDecodeRejectsWrongMagicAndVersion(t *testing.T) {
	m, _ := fitSmall(t)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	copy(bad, "NOPE")
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("wrong magic: got %v", err)
	}
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[4:], Version+7)
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: got %v", err)
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0xAB)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestDecodeRejectsTruncation: every proper prefix of a valid artifact is
// rejected with an error — never a panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	m, _ := fitSmall(t)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every cut inside headers and section frames, then strided cuts
	// through the bulk payloads to keep the test fast (coarser under
	// -short/-race).
	stride := 97
	if testing.Short() {
		stride = 1024
	}
	cuts := map[int]bool{}
	for i := 0; i < len(data) && i < 256; i++ {
		cuts[i] = true
	}
	for i := 256; i < len(data); i += stride {
		cuts[i] = true
	}
	cuts[len(data)-1] = true
	for cut := range cuts {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(data))
		}
	}
}

// TestDecodeRejectsBitFlips: single-byte corruption anywhere in the
// artifact is caught (header checks or per-section checksums), never
// panics, and never yields a usable model silently.
func TestDecodeRejectsBitFlips(t *testing.T) {
	m, _ := fitSmall(t)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	probes := 1 << 13
	if testing.Short() {
		probes = 1 << 10
	}
	stride := 1
	if len(data) > probes {
		stride = len(data) / probes
	}
	for pos := 0; pos < len(data); pos += stride {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", pos, len(data))
		}
	}
}

// TestLoadFileMissing: filesystem errors propagate.
func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.zedm")); err == nil {
		t.Error("missing file accepted")
	}
	// A directory is not an artifact either.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(dir, "d")); err == nil {
		t.Error("directory accepted")
	}
}
