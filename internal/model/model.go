// Package model persists fitted ZeroED detectors (zeroed.Model) as
// versioned binary artifacts — the "fit once, score forever" subsystem.
//
// Artifact layout (versions 1 and 2, all integers little-endian):
//
//	magic "ZEDM" | version u32 | section count u32
//	then exactly 5 sections, in order, each framed as
//	  section id u32 | payload length u64 | payload | CRC32(IEEE) u32
//	with the checksum covering the section's id, length, and payload.
//
// Sections: config (run configuration, fit shape, diagnostics), schema
// (attributes and per-column dictionaries), feature (correlation structure
// and frequency tables), criteria (the refined executable criteria sets),
// and net (the flat MLP weights, or the degenerate-fit fallback labels).
//
// Version 2 appends the model's lineage (refit-chain version and refit row
// count) to the config section; this build writes version 2 and reads both.
// A version-1 artifact decodes with lineage {Version: 1, RefitRows: 0}.
//
// Guarantees: encoding is deterministic (map contents are sorted), floats
// round-trip bit-exactly (raw IEEE-754 bits), and decoding is total — a
// truncated, bit-flipped, wrong-magic, wrong-version, or otherwise corrupt
// artifact returns an error; it never panics and never allocates more than
// a small multiple of the input size (every length prefix is validated
// against the bytes actually present). A loaded model scores bit-identically
// to the in-memory model that was saved (pinned by tests in this package).
package model

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/criteria"
	"repro/internal/faultpoint"
	"repro/internal/feature"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/zeroed"
)

// Failpoints at the artifact store's effect boundaries. Disarmed they cost
// one atomic load; the chaos suite arms them to kill the process at each
// point and prove recovery (see internal/faultpoint and scripts/chaos.sh).
var (
	fpSaveAfterWrite   = faultpoint.New("model.save.after_write")
	fpSaveBeforeRename = faultpoint.New("model.save.before_rename")
	fpSaveAfterRename  = faultpoint.New("model.save.after_rename")
	fpLoadDecode       = faultpoint.New("model.load.decode")
)

// TmpSuffix marks an in-progress atomic write. A crash can strand such a
// file; it is never a committed artifact and is safe to delete on startup.
const TmpSuffix = ".tmp"

// CorruptError marks artifact bytes that are structurally or semantically
// invalid — as opposed to I/O failures reading them. Callers use the
// distinction to quarantine corrupt files while leaving unreadable-but-
// possibly-fine files alone.
type CorruptError struct {
	Err error
}

func (e *CorruptError) Error() string { return e.Err.Error() }
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err marks corrupt artifact content.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Magic identifies a ZeroED model artifact.
const Magic = "ZEDM"

// Version is the artifact format version this build writes. Decode also
// accepts every earlier version back to MinVersion.
const Version = 2

// MinVersion is the oldest artifact format version Decode still reads.
const MinVersion = 1

// Section IDs, in their mandatory file order.
const (
	secConfig uint32 = iota + 1
	secSchema
	secFeature
	secCriteria
	secNet
)

var sectionOrder = []uint32{secConfig, secSchema, secFeature, secCriteria, secNet}

// maxArtifactBytes bounds how much Load will read from a stream; a larger
// artifact cannot be legitimate and would otherwise let a malicious
// endpoint exhaust memory.
const maxArtifactBytes = 1 << 31

// Encode serializes a fitted model into a standalone artifact.
func Encode(m *zeroed.Model) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil model")
	}
	st := m.State()
	var out []byte
	out = append(out, Magic...)
	out = le.AppendUint32(out, Version)
	out = le.AppendUint32(out, uint32(len(sectionOrder)))

	var w writer
	encodeConfig(&w, st)
	out = appendSection(out, secConfig, w.b)

	w = writer{}
	w.strs(st.Attrs)
	for _, dict := range st.Dicts {
		w.strs(dict)
	}
	out = appendSection(out, secSchema, w.b)

	w = writer{}
	encodeFeature(&w, st.Feature)
	out = appendSection(out, secFeature, w.b)

	w = writer{}
	encodeCriteria(&w, st.Feature.Criteria)
	out = appendSection(out, secCriteria, w.b)

	w = writer{}
	encodeNet(&w, st)
	out = appendSection(out, secNet, w.b)
	return out, nil
}

// Decode reconstructs a scoring-ready model from artifact bytes, rejecting
// anything structurally or semantically corrupt. Every Decode failure is a
// *CorruptError: the bytes themselves are bad, not the medium they came
// from.
func Decode(data []byte) (*zeroed.Model, error) {
	m, err := decode(data)
	if err != nil {
		return nil, &CorruptError{Err: err}
	}
	return m, nil
}

func decode(data []byte) (*zeroed.Model, error) {
	if len(data) < len(Magic)+8 {
		return nil, fmt.Errorf("model: artifact truncated at %d bytes", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("model: bad magic %q, want %q", data[:len(Magic)], Magic)
	}
	off := len(Magic)
	version := le.Uint32(data[off:])
	if version < MinVersion || version > Version {
		return nil, fmt.Errorf("model: unsupported artifact version %d (this build reads %d..%d)", version, MinVersion, Version)
	}
	nsec := le.Uint32(data[off+4:])
	if int(nsec) != len(sectionOrder) {
		return nil, fmt.Errorf("model: artifact declares %d sections, version %d has %d", nsec, version, len(sectionOrder))
	}
	off += 8
	payloads := make([][]byte, len(sectionOrder))
	for i, wantID := range sectionOrder {
		if len(data)-off < 12 {
			return nil, fmt.Errorf("model: artifact truncated in section %d header", i+1)
		}
		id := le.Uint32(data[off:])
		plen := le.Uint64(data[off+4:])
		if id != wantID {
			return nil, fmt.Errorf("model: section %d has id %d, want %d", i+1, id, wantID)
		}
		if plen > uint64(len(data)-off-12) || uint64(len(data)-off-12)-plen < 4 {
			return nil, fmt.Errorf("model: artifact truncated in section %d payload", i+1)
		}
		end := off + 12 + int(plen)
		want := le.Uint32(data[end:])
		if got := crc32.ChecksumIEEE(data[off:end]); got != want {
			return nil, fmt.Errorf("model: section %d checksum mismatch (artifact corrupt)", i+1)
		}
		payloads[i] = data[off+12 : end]
		off = end + 4
	}
	if off != len(data) {
		return nil, fmt.Errorf("model: %d trailing bytes after final section", len(data)-off)
	}

	st := &zeroed.ModelState{}
	if err := decodeConfig(&reader{b: payloads[0]}, st, version); err != nil {
		return nil, err
	}
	if err := decodeSchema(&reader{b: payloads[1]}, st); err != nil {
		return nil, err
	}
	snap, err := decodeFeature(&reader{b: payloads[2]})
	if err != nil {
		return nil, err
	}
	snap.Criteria, err = decodeCriteria(&reader{b: payloads[3]})
	if err != nil {
		return nil, err
	}
	st.Feature = snap
	if err := decodeNet(&reader{b: payloads[4]}, st); err != nil {
		return nil, err
	}
	return zeroed.ModelFromState(st)
}

// Save writes the artifact to w.
func Save(w io.Writer, m *zeroed.Model) error {
	data, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Load reads one artifact from r (to EOF, bounded) and decodes it.
func Load(r io.Reader) (*zeroed.Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxArtifactBytes))
	if err != nil {
		return nil, fmt.Errorf("model: reading artifact: %w", err)
	}
	return Decode(data)
}

// SaveFile writes the artifact to path with full crash safety: a reader
// observes either the previous contents or the complete new artifact, never
// a torn write (see WriteFileAtomic).
func SaveFile(path string, m *zeroed.Model) error {
	data, err := Encode(m)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// WriteFileAtomic commits data to path durably: write to path+TmpSuffix,
// fsync the file, rename over path, then fsync the directory so the rename
// itself survives power loss. A crash at any point leaves either the old
// contents or the new — plus at worst a stranded .tmp file, which is never
// read as an artifact and is reaped at the next startup.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + TmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = fpSaveAfterWrite.Eval()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fpSaveBeforeRename.Eval()
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fpSaveAfterRename.Eval(); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-committed rename inside it is
// durable. Best effort on platforms where directories refuse fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// LoadFile reads and decodes the artifact at path. Open/read failures come
// back as plain I/O errors; bad bytes come back as *CorruptError.
func LoadFile(path string) (*zeroed.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := fpLoadDecode.Eval(); err != nil {
		return nil, &CorruptError{Err: err}
	}
	return Load(f)
}

// appendSection frames one section: id, length, payload, CRC32 over all
// three.
func appendSection(dst []byte, id uint32, payload []byte) []byte {
	start := len(dst)
	dst = le.AppendUint32(dst, id)
	dst = le.AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// ---- section: config ----

func encodeConfig(w *writer, st *zeroed.ModelState) {
	c := st.Cfg
	w.f64(c.LabelRate)
	w.int(c.CorrK)
	w.int(c.EmbedDim)
	w.str(string(c.Sampler))
	w.str(c.Profile.Name)
	w.f64(c.Profile.LabelFlipClean)
	w.f64(c.Profile.LabelFlipError)
	w.f64(c.Profile.CriteriaSkill)
	w.f64(c.Profile.GuidelineSkill)
	w.i64(c.Profile.Seed)
	w.int(c.BatchSize)
	w.int(c.MLP.Hidden1)
	w.int(c.MLP.Hidden2)
	w.f64(c.MLP.LR)
	w.int(c.MLP.Epochs)
	w.int(c.MLP.BatchSize)
	w.i64(c.MLP.Seed)
	w.f64(c.MLP.L2)
	w.f64(c.Threshold)
	w.i64(c.Seed)
	w.int(c.Workers)
	w.int(c.Shards)
	w.bool(c.DisableScoreDedup)
	w.int(c.MaxPropagatedPerAttr)
	w.int(c.ClusterSampleRows)
	w.int(c.MaxClustersPerAttr)
	w.int(c.AugmentPerAttr)
	w.bool(c.DisableGuidelines)
	w.bool(c.DisableCriteria)
	w.bool(c.DisableCorrelated)
	w.bool(c.DisableVerification)
	w.bool(c.DisablePropagation)

	w.int(st.FitRows)
	w.int(st.Info.SampledCells)
	w.int(st.Info.TrainingCells)
	w.int(st.Info.AugmentedErrs)
	w.int(st.Info.CriteriaCount)
	w.i64(st.Info.Usage.InputTokens)
	w.i64(st.Info.Usage.OutputTokens)
	w.i64(st.Info.Usage.Calls)
	w.i64(int64(st.Info.FitRuntime))

	// Version 2: lineage, appended so the version-1 prefix is unchanged.
	w.int(st.Lineage.Version)
	w.int(st.Lineage.RefitRows)
}

func decodeConfig(r *reader, st *zeroed.ModelState, version uint32) error {
	var c zeroed.Config
	c.LabelRate = r.f64()
	c.CorrK = r.int()
	c.EmbedDim = r.int()
	c.Sampler = zeroed.Sampler(r.str())
	c.Profile = llm.Profile{
		Name:           r.str(),
		LabelFlipClean: r.f64(),
		LabelFlipError: r.f64(),
		CriteriaSkill:  r.f64(),
		GuidelineSkill: r.f64(),
		Seed:           r.i64(),
	}
	c.BatchSize = r.int()
	c.MLP.Hidden1 = r.int()
	c.MLP.Hidden2 = r.int()
	c.MLP.LR = r.f64()
	c.MLP.Epochs = r.int()
	c.MLP.BatchSize = r.int()
	c.MLP.Seed = r.i64()
	c.MLP.L2 = r.f64()
	c.Threshold = r.f64()
	c.Seed = r.i64()
	c.Workers = r.int()
	c.Shards = r.int()
	c.DisableScoreDedup = r.bool()
	c.MaxPropagatedPerAttr = r.int()
	c.ClusterSampleRows = r.int()
	c.MaxClustersPerAttr = r.int()
	c.AugmentPerAttr = r.int()
	c.DisableGuidelines = r.bool()
	c.DisableCriteria = r.bool()
	c.DisableCorrelated = r.bool()
	c.DisableVerification = r.bool()
	c.DisablePropagation = r.bool()
	st.Cfg = c

	st.FitRows = r.int()
	st.Info.SampledCells = r.int()
	st.Info.TrainingCells = r.int()
	st.Info.AugmentedErrs = r.int()
	st.Info.CriteriaCount = r.int()
	st.Info.Usage.InputTokens = r.i64()
	st.Info.Usage.OutputTokens = r.i64()
	st.Info.Usage.Calls = r.i64()
	st.Info.FitRuntime = time.Duration(r.i64())
	if version >= 2 {
		st.Lineage.Version = r.int()
		st.Lineage.RefitRows = r.int()
	} else {
		st.Lineage = zeroed.Lineage{Version: 1}
	}
	return r.done()
}

// ---- section: schema ----

func decodeSchema(r *reader, st *zeroed.ModelState) error {
	st.Attrs = r.strs()
	if r.err != nil {
		return r.err
	}
	st.Dicts = make([][]string, len(st.Attrs))
	for j := range st.Dicts {
		st.Dicts[j] = r.strs()
	}
	return r.done()
}

// ---- section: feature ----

func encodeFeature(w *writer, s *feature.Snapshot) {
	w.int(s.Cfg.EmbedDim)
	w.int(s.Cfg.CorrK)
	w.bool(s.Cfg.DisableCorrelated)
	w.bool(s.Cfg.DisableCriteria)
	w.u32(uint32(len(s.Corr)))
	for _, corr := range s.Corr {
		w.ints(corr)
	}
	f := s.Freq
	w.int(f.N)
	w.u32(uint32(len(f.Counts)))
	for _, c := range f.Counts {
		w.ints(c)
	}
	for lvl := 0; lvl < 3; lvl++ {
		w.u32(uint32(len(f.PatCounts[lvl])))
		for _, c := range f.PatCounts[lvl] {
			w.ints(c)
		}
	}
	w.u32(uint32(len(f.CoOccur)))
	for _, co := range f.CoOccur {
		w.int(co.J)
		w.int(co.Q)
		w.u64s(co.Keys)
		w.ints(co.Counts)
	}
}

func decodeFeature(r *reader) (*feature.Snapshot, error) {
	s := &feature.Snapshot{}
	s.Cfg.EmbedDim = r.int()
	s.Cfg.CorrK = r.int()
	s.Cfg.DisableCorrelated = r.bool()
	s.Cfg.DisableCriteria = r.bool()
	if n := r.count(4); r.err == nil {
		s.Corr = make([][]int, n)
		for j := range s.Corr {
			s.Corr[j] = r.ints()
		}
	}
	f := &stats.FreqSnapshot{}
	f.N = r.int()
	if n := r.count(4); r.err == nil {
		f.Counts = make([][]int, n)
		for j := range f.Counts {
			f.Counts[j] = r.ints()
		}
	}
	for lvl := 0; lvl < 3; lvl++ {
		if n := r.count(4); r.err == nil {
			f.PatCounts[lvl] = make([][]int, n)
			for j := range f.PatCounts[lvl] {
				f.PatCounts[lvl][j] = r.ints()
			}
		}
	}
	if n := r.count(24); r.err == nil {
		f.CoOccur = make([]stats.CoOccurSnapshot, n)
		for i := range f.CoOccur {
			f.CoOccur[i].J = r.int()
			f.CoOccur[i].Q = r.int()
			f.CoOccur[i].Keys = r.u64s()
			f.CoOccur[i].Counts = r.ints()
		}
	}
	s.Freq = f
	return s, r.done()
}

// ---- section: criteria ----

func encodeCriteria(w *writer, sets []*criteria.Set) {
	w.u32(uint32(len(sets)))
	for _, s := range sets {
		if s == nil {
			w.bool(false)
			continue
		}
		w.bool(true)
		w.str(s.Attr)
		w.u32(uint32(len(s.Criteria)))
		for _, c := range s.Criteria {
			encodeCriterion(w, c)
		}
	}
}

func decodeCriteria(r *reader) ([]*criteria.Set, error) {
	n := r.count(1)
	if r.err != nil {
		return nil, r.err
	}
	sets := make([]*criteria.Set, n)
	for j := range sets {
		if !r.bool() {
			continue
		}
		s := &criteria.Set{Attr: r.str()}
		nc := r.count(1)
		if r.err != nil {
			return nil, r.err
		}
		s.Criteria = make([]*criteria.Criterion, nc)
		for i := range s.Criteria {
			s.Criteria[i] = decodeCriterion(r)
			if r.err != nil {
				return nil, r.err
			}
		}
		sets[j] = s
	}
	return sets, r.done()
}

func encodeCriterion(w *writer, c *criteria.Criterion) {
	w.str(string(c.Kind))
	w.str(c.Attr)
	w.str(c.Name)
	w.strBoolMap(c.Patterns)
	w.strBoolMap(c.Domain)
	w.f64(c.Lo)
	w.f64(c.Hi)
	w.str(c.DetAttr)
	w.strStrMap(c.Mapping)
	w.byteBoolMap(c.AllowedClasses)
	w.int(c.MinLen)
	w.int(c.MaxLen)
	w.strs(c.TypoTargets)
	w.int(c.MaxDist)
	w.int(c.MinCount)
	w.strIntMap(c.Counts)
}

func decodeCriterion(r *reader) *criteria.Criterion {
	return &criteria.Criterion{
		Kind:           criteria.Kind(r.str()),
		Attr:           r.str(),
		Name:           r.str(),
		Patterns:       r.strBoolMap(),
		Domain:         r.strBoolMap(),
		Lo:             r.f64(),
		Hi:             r.f64(),
		DetAttr:        r.str(),
		Mapping:        r.strStrMap(),
		AllowedClasses: r.byteBoolMap(),
		MinLen:         r.int(),
		MaxLen:         r.int(),
		TypoTargets:    r.strs(),
		MaxDist:        r.int(),
		MinCount:       r.int(),
		Counts:         r.strIntMap(),
	}
}

// ---- section: net ----

func encodeNet(w *writer, st *zeroed.ModelState) {
	if st.Net != nil {
		w.bool(true)
		w.int(st.Net.In)
		w.int(st.Net.Hidden1)
		w.int(st.Net.Hidden2)
		w.f64s(st.Net.W1)
		w.f64s(st.Net.W2)
		w.f64s(st.Net.W3)
		w.f64s(st.Net.B1)
		w.f64s(st.Net.B2)
		w.f64(st.Net.B3)
		w.bool(st.Net.Trained)
	} else {
		w.bool(false)
	}
	w.u32(uint32(len(st.Fallback)))
	for _, fl := range st.Fallback {
		w.int(fl.Row)
		w.int(fl.Col)
		w.bool(fl.IsErr)
	}
}

func decodeNet(r *reader, st *zeroed.ModelState) error {
	if r.bool() {
		s := &nn.Snapshot{
			In:      r.int(),
			Hidden1: r.int(),
			Hidden2: r.int(),
			W1:      r.f64s(),
			W2:      r.f64s(),
			W3:      r.f64s(),
			B1:      r.f64s(),
			B2:      r.f64s(),
			B3:      r.f64(),
			Trained: r.bool(),
		}
		st.Net = s
	}
	if n := r.count(17); r.err == nil && n > 0 {
		st.Fallback = make([]zeroed.FallbackLabel, n)
		for i := range st.Fallback {
			st.Fallback[i].Row = r.int()
			st.Fallback[i].Col = r.int()
			st.Fallback[i].IsErr = r.bool()
		}
	}
	return r.done()
}
