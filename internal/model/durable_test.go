package model

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultpoint"
)

func TestWriteFileAtomicLeavesNoTmp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.zedm")
	if err := WriteFileAtomic(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	assertNoTmp(t, dir)

	// Overwrite commits atomically too.
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
	assertNoTmp(t, dir)
}

func assertNoTmp(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), TmpSuffix) {
			t.Fatalf("stranded temp file %s", e.Name())
		}
	}
}

// TestWriteFileAtomicFaultBeforeRename proves the commit point is the
// rename: a fault injected anywhere before it leaves the destination
// untouched (old contents intact) and no temp file behind.
func TestWriteFileAtomicFaultBeforeRename(t *testing.T) {
	for _, fp := range []string{"model.save.after_write", "model.save.before_rename"} {
		t.Run(fp, func(t *testing.T) {
			faultpoint.Reset()
			defer faultpoint.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "a.zedm")
			if err := WriteFileAtomic(path, []byte("old")); err != nil {
				t.Fatal(err)
			}
			if err := faultpoint.Arm(fp, "error"); err != nil {
				t.Fatal(err)
			}
			err := WriteFileAtomic(path, []byte("new"))
			var inj *faultpoint.Error
			if !errors.As(err, &inj) {
				t.Fatalf("WriteFileAtomic = %v, want injected fault", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "old" {
				t.Fatalf("destination after fault: %q, %v (want old contents)", got, rerr)
			}
			assertNoTmp(t, dir)
		})
	}
}

// TestWriteFileAtomicFaultAfterRename: past the commit point the new bytes
// are in place even though the caller sees the injected error — callers must
// treat a post-commit failure as "maybe committed" and clean up explicitly.
func TestWriteFileAtomicFaultAfterRename(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.zedm")
	if err := faultpoint.Arm("model.save.after_rename", "error"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new")); err == nil {
		t.Fatal("WriteFileAtomic passed with after_rename armed")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new" {
		t.Fatalf("destination after post-commit fault: %q, %v", got, err)
	}
	assertNoTmp(t, dir)
}

// TestCorruptClassification: decode failures are *CorruptError, I/O
// failures are not — the serve layer quarantines only the former.
func TestCorruptClassification(t *testing.T) {
	m, _ := fitSmall(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.zedm")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}

	// Intact artifact loads, and a missing file is an I/O error.
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(filepath.Join(dir, "absent.zedm"))
	if err == nil || IsCorrupt(err) {
		t.Fatalf("missing file: err=%v IsCorrupt=%v, want plain I/O error", err, IsCorrupt(err))
	}

	// Truncated, garbage, and empty files are all corrupt.
	data, _ := os.ReadFile(path)
	for name, bad := range map[string][]byte{
		"truncated": data[:len(data)/2],
		"garbage":   []byte("not a model at all"),
		"empty":     nil,
	} {
		p := filepath.Join(dir, name+".zedm")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(p); !IsCorrupt(err) {
			t.Fatalf("%s: err=%v, want CorruptError", name, err)
		}
	}
}

// TestLoadDecodeFaultIsCorrupt: the injected load fault classifies as
// corruption so the quarantine path is exercisable without crafting bytes.
func TestLoadDecodeFaultIsCorrupt(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	m, _ := fitSmall(t)
	path := filepath.Join(t.TempDir(), "m.zedm")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("model.load.decode", "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !IsCorrupt(err) {
		t.Fatalf("err=%v, want CorruptError from injected decode fault", err)
	}
	faultpoint.Reset()
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("disarmed reload failed: %v", err)
	}
}
