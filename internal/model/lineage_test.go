package model

import (
	"hash/crc32"
	"testing"

	"repro/internal/zeroed"
)

// asV1 converts a version-2 artifact into the version-1 layout: same
// sections, but the config payload loses the 16 lineage bytes appended in
// version 2, and the header declares version 1. This reconstructs exactly
// the bytes a pre-lineage build wrote.
func asV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	out := []byte(Magic)
	out = le.AppendUint32(out, 1)
	out = le.AppendUint32(out, uint32(len(sectionOrder)))
	off := len(Magic) + 8
	for i := range sectionOrder {
		id := le.Uint32(v2[off:])
		plen := int(le.Uint64(v2[off+4:]))
		payload := v2[off+12 : off+12+plen]
		if i == 0 {
			if plen < 16 {
				t.Fatalf("config payload too short: %d bytes", plen)
			}
			payload = payload[:plen-16]
		}
		start := len(out)
		out = le.AppendUint32(out, id)
		out = le.AppendUint64(out, uint64(len(payload)))
		out = append(out, payload...)
		out = le.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
		off += 12 + plen + 4
	}
	if off != len(v2) {
		t.Fatalf("v2 artifact has %d trailing bytes", len(v2)-off)
	}
	return out
}

// TestDecodeVersion1Artifact pins backwards compatibility: an artifact in
// the version-1 layout still decodes, reports lineage version 1, and scores
// bit-identically to the version-2 round trip.
func TestDecodeVersion1Artifact(t *testing.T) {
	m, bench := fitSmall(t)
	v2, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	v1 := asV1(t, v2)
	old, err := Decode(v1)
	if err != nil {
		t.Fatalf("version-1 artifact rejected: %v", err)
	}
	if l := old.Lineage(); l.Version != 1 || l.RefitRows != 0 {
		t.Fatalf("version-1 lineage = %+v, want {1 0}", l)
	}
	want, err := m.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := old.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	assertSameScores(t, "v1-artifact", want, got)
}

// TestLineageRoundTrip: refit provenance survives the artifact codec, and
// the default lineage of a fresh fit is version 1.
func TestLineageRoundTrip(t *testing.T) {
	m, _ := fitSmall(t)
	if l := m.Lineage(); l.Version != 1 || l.RefitRows != 0 {
		t.Fatalf("fresh fit lineage = %+v, want {1 0}", l)
	}
	m.SetLineage(zeroed.Lineage{Version: 3, RefitRows: 1234})
	defer m.SetLineage(zeroed.Lineage{}) // fitSmall's model is shared across tests
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if l := back.Lineage(); l.Version != 3 || l.RefitRows != 1234 {
		t.Fatalf("lineage round-trip = %+v, want {3 1234}", l)
	}
}
