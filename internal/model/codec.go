package model

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// The codec primitives: a little-endian append-only writer and an
// error-latching bounds-checked reader. Every variable-length structure is
// length-prefixed, every prefix is validated against the bytes actually
// remaining before anything is allocated, and map contents are written in
// sorted key order — so encoding is a pure deterministic function of the
// model state, and decoding arbitrary bytes terminates with an error
// instead of a panic or an unbounded allocation.

var le = binary.LittleEndian

// writer accumulates one section payload.
type writer struct {
	b []byte
}

func (w *writer) u32(v uint32) {
	w.b = le.AppendUint32(w.b, v)
}

func (w *writer) u64(v uint64) {
	w.b = le.AppendUint64(w.b, v)
}

func (w *writer) i64(v int64) { w.u64(uint64(v)) }

func (w *writer) int(v int) { w.i64(int64(v)) }

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

func (w *writer) strs(xs []string) {
	w.u32(uint32(len(xs)))
	for _, s := range xs {
		w.str(s)
	}
}

func (w *writer) f64s(xs []float64) {
	w.u32(uint32(len(xs)))
	for _, v := range xs {
		w.f64(v)
	}
}

func (w *writer) ints(xs []int) {
	w.u32(uint32(len(xs)))
	for _, v := range xs {
		w.int(v)
	}
}

func (w *writer) u64s(xs []uint64) {
	w.u32(uint32(len(xs)))
	for _, v := range xs {
		w.u64(v)
	}
}

// strBoolMap writes a map[string]bool in sorted key order.
func (w *writer) strBoolMap(m map[string]bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.bool(m[k])
	}
}

// strStrMap writes a map[string]string in sorted key order.
func (w *writer) strStrMap(m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

// strIntMap writes a map[string]int in sorted key order.
func (w *writer) strIntMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.int(m[k])
	}
}

// byteBoolMap writes a map[byte]bool in sorted key order.
func (w *writer) byteBoolMap(m map[byte]bool) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.b = append(w.b, byte(k))
		w.bool(m[byte(k)])
	}
}

// reader decodes one section payload. The first structural violation
// latches an error; every subsequent read returns a zero value, so decode
// code can read linearly and check err once per section.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// rem returns the bytes left to read.
func (r *reader) rem() int { return len(r.b) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.rem() {
		r.failf("model: truncated: need %d bytes, have %d", n, r.rem())
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return le.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return le.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// int reads an i64 and rejects values outside the platform int range.
func (r *reader) int() int {
	v := r.i64()
	if int64(int(v)) != v {
		r.failf("model: integer %d overflows int", v)
		return 0
	}
	return int(v)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.failf("model: invalid bool byte %d", b[0])
		return false
	}
}

func (r *reader) str() string {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a length prefix for items of at least minItemBytes each and
// validates it against the remaining payload, bounding every allocation by
// the input size.
func (r *reader) count(minItemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minItemBytes > 0 && n > r.rem()/minItemBytes {
		r.failf("model: count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func (r *reader) strs() []string {
	n := r.count(4)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) f64s() []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) ints() []int {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.int()
	}
	return out
}

func (r *reader) u64s() []uint64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

// strBoolMap reads a map written by writer.strBoolMap. Duplicate keys mark
// a corrupt artifact.
func (r *reader) strBoolMap() map[string]bool {
	n := r.count(5)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.bool()
		if r.err != nil {
			return nil
		}
		if _, dup := out[k]; dup {
			r.failf("model: duplicate map key %q", k)
			return nil
		}
		out[k] = v
	}
	return out
}

func (r *reader) strStrMap() map[string]string {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.str()
		if r.err != nil {
			return nil
		}
		if _, dup := out[k]; dup {
			r.failf("model: duplicate map key %q", k)
			return nil
		}
		out[k] = v
	}
	return out
}

func (r *reader) strIntMap() map[string]int {
	n := r.count(12)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.int()
		if r.err != nil {
			return nil
		}
		if _, dup := out[k]; dup {
			r.failf("model: duplicate map key %q", k)
			return nil
		}
		out[k] = v
	}
	return out
}

func (r *reader) byteBoolMap() map[byte]bool {
	n := r.count(2)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make(map[byte]bool, n)
	for i := 0; i < n; i++ {
		kb := r.take(1)
		v := r.bool()
		if r.err != nil {
			return nil
		}
		if _, dup := out[kb[0]]; dup {
			r.failf("model: duplicate map key %d", kb[0])
			return nil
		}
		out[kb[0]] = v
	}
	return out
}

// done asserts the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.rem() != 0 {
		return fmt.Errorf("model: %d trailing bytes in section", r.rem())
	}
	return nil
}
