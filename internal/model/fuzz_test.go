package model

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/zeroed"
)

// FuzzLoadModel feeds arbitrary bytes to the artifact decoder. The
// invariant is totality: Decode either returns an error or a model whose
// scoring path is safe — no panics, no out-of-range indexing, no unbounded
// allocation — even when the fuzzer repairs checksums and smuggles a
// structurally valid but semantically hostile artifact past the framing.
func FuzzLoadModel(f *testing.F) {
	// The seed fit is deliberately tiny (a checked-in corpus entry carries a
	// full valid artifact): under fuzzing instrumentation every worker
	// process pays this setup, so it must stay sub-second.
	bench := datasets.Hospital(30, 3)
	m, err := zeroed.New(zeroed.Config{
		LabelRate: 0.1, EmbedDim: 8, Seed: 3, Workers: 1,
		MLP: nn.Config{Hidden1: 8, Hidden2: 4, Epochs: 2, Seed: 1},
	}).Fit(bench.Dirty)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		// A decoded model must be scoreable without panicking: build one
		// row of the model's arity from novel values and score it.
		row := make([]string, len(decoded.Attrs()))
		for j := range row {
			row[j] = "fuzz"
		}
		decoded.SetParallelism(1, 1)
		if _, err := decoded.ScoreRows([][]string{row}); err != nil {
			t.Logf("scoring decoded artifact: %v", err)
		}
	})
}
