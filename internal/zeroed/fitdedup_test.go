package zeroed

import (
	"testing"

	"repro/internal/criteria"
)

// TestFitDedupEquivalence pins the fit-phase dedup contract, mirroring
// TestScoreDedupEquivalence: fitting with the per-value-ID caches (criteria
// verdict memo, guideline judgement memo) is bit-identical — every verdict,
// every score bit, every diagnostic — to fitting with them off, across
// worker and shard counts.
func TestFitDedupEquivalence(t *testing.T) {
	benches := detBenches()
	combos := [][2]int{{1, 1}, {1, 4}, {8, 1}, {8, 4}} // {workers, shards}
	if testing.Short() {
		// Smoke slice (the -race CI budget): one bench, the two extreme
		// worker/shard corners. The full grid runs in long mode.
		benches = benches[:1]
		combos = [][2]int{{1, 1}, {8, 4}}
	}
	for _, bench := range benches {
		t.Run(bench.Name, func(t *testing.T) {
			for _, wc := range combos {
				on := detConfig(wc[0], wc[1])
				off := on
				off.DisableFitDedup = true
				a, err := New(on).Detect(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				b, err := New(off).Detect(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, "fit-dedup-on-vs-off", a, b)
			}
		})
	}
}

// TestFitDedupEquivalenceUnderAblations re-checks the on ≡ off contract on
// the pipeline variants that exercise the caches' edge cases: no guidelines
// (batch-only labeling must stay uncached), no verification (no criteria
// memo in play), and no criteria at all.
func TestFitDedupEquivalenceUnderAblations(t *testing.T) {
	bench := detBenches()[0]
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-guidelines", func(c *Config) { c.DisableGuidelines = true }},
		{"no-verification", func(c *Config) { c.DisableVerification = true }},
		{"no-criteria", func(c *Config) { c.DisableCriteria = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			on := detConfig(2, 2)
			tc.mutate(&on)
			off := on
			off.DisableFitDedup = true
			a, err := New(on).Detect(bench.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(off).Detect(bench.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, tc.name, a, b)
		})
	}
}

// TestFitStageTimings pins the per-stage observability contract: a fit
// reports one timing per pipeline stage, in pipeline order, with sane
// values.
func TestFitStageTimings(t *testing.T) {
	bench := detBenches()[0]
	m, err := New(detConfig(2, 2)).Fit(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"extractor", "criteria", "sample_label", "traindata", "matrix", "train"}
	stages := m.Info().Stages
	if len(stages) != len(want) {
		t.Fatalf("got %d stage timings, want %d: %+v", len(stages), len(want), stages)
	}
	var sum float64
	for i, st := range stages {
		if st.Name != want[i] {
			t.Errorf("stage %d is %q, want %q", i, st.Name, want[i])
		}
		if st.Seconds < 0 {
			t.Errorf("stage %q has negative duration %v", st.Name, st.Seconds)
		}
		sum += st.Seconds
	}
	if total := m.Info().FitRuntime.Seconds(); sum > total {
		t.Errorf("stage durations sum to %v, more than the whole fit (%v)", sum, total)
	}
}

// TestCriteriaCountNilSet is the regression test for the stageCriteria
// aggregation panic: a nil per-attribute set must count as zero criteria.
func TestCriteriaCountNilSet(t *testing.T) {
	sets := []*criteria.Set{
		{Attr: "a", Criteria: []*criteria.Criterion{{Kind: criteria.KindNotNull, Attr: "a"}}},
		nil,
		{Attr: "c"},
	}
	if got := countCriteria(sets); got != 1 {
		t.Fatalf("countCriteria = %d, want 1", got)
	}
}
