package zeroed

// Tracing must be a pure observer: spans record wall time and alloc deltas
// out of band and never touch RNG streams, dedup caches, or any computed
// value. These tests pin that contract bit-for-bit, the same way the
// deterministic-parallelism suite pins worker/shard invariance.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestTraceOnOffBitIdentical runs the same detection with tracing disabled
// and enabled across the worker×shard grid and requires identical verdicts
// and identical float64 score bits.
func TestTraceOnOffBitIdentical(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	b := detBenches()[0]
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("w%d_s%d", workers, shards)
			t.Run(name, func(t *testing.T) {
				det := New(detConfig(workers, shards))

				obs.SetEnabled(false)
				base, err := det.Detect(b.Dirty)
				if err != nil {
					t.Fatalf("untraced detect: %v", err)
				}

				obs.SetEnabled(true)
				ctx, tr := obs.NewTrace(context.Background(), "detect")
				traced, err := det.DetectContext(ctx, b.Dirty)
				tr.Finish()
				obs.SetEnabled(false)
				if err != nil {
					t.Fatalf("traced detect: %v", err)
				}

				assertResultsIdentical(t, name, base, traced)

				// The trace must actually have observed the run: the fit
				// stages and the sharded scoring pass all hang off the root.
				tree := tr.Tree()
				for _, want := range []string{"fit", "fit.criteria", "fit.train", "score", "score.shard"} {
					if tree.Find(want) == nil {
						t.Fatalf("span %q missing from trace", want)
					}
				}
			})
		}
	}
}

// TestTraceSpanlessContextIsFree pins the disabled-and-enabled-but-untraced
// fast paths: a context with no span must never collect anything even while
// the global gate is on.
func TestTraceSpanlessContextIsFree(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(true)
	_, sp := obs.Start(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("span created without a trace in the context")
	}
}
