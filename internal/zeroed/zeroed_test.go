package zeroed

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/table"
)

// smallBench builds a small Hospital-style benchmark for fast pipeline
// tests.
func smallBench(t *testing.T) *datasets.Bench {
	t.Helper()
	return datasets.Hospital(300, 11)
}

// skipIfShort skips tests that run the full pipeline several times over;
// single-run coverage stays on under -short.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-run pipeline test; skipped under -short")
	}
}

func fastConfig() Config {
	cfg := Config{
		LabelRate: 0.08,
		EmbedDim:  16,
		Seed:      1,
	}
	if testing.Short() {
		// Fewer detector epochs under -short; the pipeline's behavior is
		// identical, it just converges less tightly.
		cfg.MLP = nn.DefaultConfig()
		cfg.MLP.Epochs = 6
	}
	return cfg
}

func TestDetectEndToEnd(t *testing.T) {
	b := smallBench(t)
	det := New(fastConfig())
	res, err := det.Detect(b.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != b.Dirty.NumRows() || len(res.Pred[0]) != b.Dirty.NumCols() {
		t.Fatal("prediction mask shape mismatch")
	}
	m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Hospital(300): P=%.3f R=%.3f F1=%.3f (sampled %d, trained on %d, %d criteria)",
		m.Precision, m.Recall, m.F1, res.SampledCells, res.TrainingCells, res.CriteriaCount)
	if m.F1 < 0.5 {
		t.Errorf("F1 = %.3f, want >= 0.5 on the easy Hospital benchmark", m.F1)
	}
	if res.Usage.Calls == 0 || res.Usage.Total() == 0 {
		t.Error("LLM usage accounting missing")
	}
	if res.SampledCells == 0 || res.TrainingCells == 0 {
		t.Error("pipeline diagnostics missing")
	}
}

func TestDetectEmptyDataset(t *testing.T) {
	det := New(fastConfig())
	if _, err := det.Detect(table.New("x", []string{"a"})); err == nil {
		t.Error("empty dataset must error")
	}
}

func TestConfigDefaults(t *testing.T) {
	det := New(Config{})
	cfg := det.Config()
	if cfg.LabelRate != 0.05 || cfg.CorrK != 2 || cfg.BatchSize != 20 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Profile.Name != "Qwen2.5-72b" {
		t.Errorf("default profile = %s, want Qwen2.5-72b", cfg.Profile.Name)
	}
	if cfg.Sampler != SamplerKMeans {
		t.Errorf("default sampler = %s", cfg.Sampler)
	}
}

func TestAblationsRunAndDegrade(t *testing.T) {
	skipIfShort(t)
	b := smallBench(t)
	base := fastConfig()
	f1 := func(cfg Config) float64 {
		res, err := New(cfg).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
		if err != nil {
			t.Fatal(err)
		}
		return m.F1
	}
	full := f1(base)

	for _, abl := range []struct {
		name string
		mod  func(*Config)
	}{
		{"w/o Guid.", func(c *Config) { c.DisableGuidelines = true }},
		{"w/o Crit.", func(c *Config) { c.DisableCriteria = true }},
		{"w/o Corr.", func(c *Config) { c.DisableCorrelated = true }},
		{"w/o Veri.", func(c *Config) { c.DisableVerification = true }},
	} {
		cfg := base
		abl.mod(&cfg)
		got := f1(cfg)
		t.Logf("%s: F1=%.3f (full %.3f)", abl.name, got, full)
		if got <= 0 {
			t.Errorf("%s: ablated pipeline must still detect something", abl.name)
		}
	}
}

func TestSamplersAllWork(t *testing.T) {
	skipIfShort(t)
	b := smallBench(t)
	for _, s := range []Sampler{SamplerKMeans, SamplerAgglomerative, SamplerRandom} {
		cfg := fastConfig()
		cfg.Sampler = s
		res, err := New(cfg).Detect(b.Dirty)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("sampler %s: F1=%.3f", s, m.F1)
		if m.F1 <= 0.2 {
			t.Errorf("sampler %s: F1 = %.3f too low", s, m.F1)
		}
	}
}

func TestTokenUsageScalesWithLabelRate(t *testing.T) {
	skipIfShort(t)
	b := smallBench(t)
	usage := func(rate float64) int64 {
		cfg := fastConfig()
		cfg.LabelRate = rate
		res, err := New(cfg).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		return res.Usage.Total()
	}
	lo, hi := usage(0.02), usage(0.10)
	if hi <= lo {
		t.Errorf("higher label rate should cost more tokens: %d vs %d", lo, hi)
	}
}

func TestWeakModelDoesWorse(t *testing.T) {
	skipIfShort(t)
	b := smallBench(t)
	f1For := func(p llm.Profile) float64 {
		cfg := fastConfig()
		cfg.Profile = p
		res, err := New(cfg).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
		if err != nil {
			t.Fatal(err)
		}
		return m.F1
	}
	strong := f1For(llm.Qwen72B)
	weak := f1For(llm.GPT4oMini)
	t.Logf("Qwen72B F1=%.3f, GPT4oMini F1=%.3f", strong, weak)
	if weak >= strong {
		t.Errorf("GPT-4o-mini profile (F1 %.3f) should underperform Qwen2.5-72b (F1 %.3f)", weak, strong)
	}
}

func TestDeterministicRuns(t *testing.T) {
	b := datasets.Hospital(150, 3)
	run := func() [][]bool {
		res, err := New(fastConfig()).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pred
	}
	a, c := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				t.Fatal("same config+seed must produce identical predictions")
			}
		}
	}
}

func TestDetectDoesNotMutateInput(t *testing.T) {
	b := datasets.Hospital(150, 5)
	before := b.Dirty.Clone()
	if _, err := New(fastConfig()).Detect(b.Dirty); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < before.NumRows(); i++ {
		for j := 0; j < before.NumCols(); j++ {
			if b.Dirty.Value(i, j) != before.Value(i, j) {
				t.Fatalf("Detect mutated the input at (%d,%d)", i, j)
			}
		}
	}
}

func TestCapPropagatedKeepsErrors(t *testing.T) {
	var pool []cellLabel
	for i := 0; i < 100; i++ {
		pool = append(pool, cellLabel{row: i, isErr: i < 10})
	}
	capped := capPropagated(pool, 50, newTestRng())
	if len(capped) != 50 {
		t.Fatalf("capped to %d, want 50", len(capped))
	}
	errs := 0
	for _, c := range capped {
		if c.isErr {
			errs++
		}
	}
	if errs != 10 {
		t.Errorf("kept %d error cells, want all 10", errs)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(9)) }

func TestWorkerCountInvariance(t *testing.T) {
	skipIfShort(t)
	b := datasets.Hospital(150, 13)
	run := func(workers int) [][]bool {
		cfg := fastConfig()
		cfg.Workers = workers
		res, err := New(cfg).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pred
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("prediction at (%d,%d) differs between 1 and 4 workers", i, j)
			}
		}
	}
}

func TestLargeDatasetUsesRowSample(t *testing.T) {
	skipIfShort(t)
	// With ClusterSampleRows below the row count, the pipeline must still
	// produce a full prediction mask.
	b := datasets.Hospital(400, 15)
	cfg := fastConfig()
	cfg.ClusterSampleRows = 150
	res, err := New(cfg).Detect(b.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != 400 {
		t.Fatalf("mask rows = %d, want 400", len(res.Pred))
	}
	m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 <= 0.2 {
		t.Errorf("sampled clustering F1 = %.3f, want > 0.2", m.F1)
	}
}

func TestMaxClustersCapRespected(t *testing.T) {
	skipIfShort(t)
	b := datasets.Hospital(300, 16)
	cfg := fastConfig()
	cfg.LabelRate = 0.5 // would be 150 clusters/attr uncapped
	cfg.MaxClustersPerAttr = 10
	res, err := New(cfg).Detect(b.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	// 20 attributes x at most 10 samples each.
	if res.SampledCells > 20*10 {
		t.Errorf("sampled %d cells, cap allows at most 200", res.SampledCells)
	}
}
