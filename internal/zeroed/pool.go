package zeroed

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is an exported handle on one shared bounded worker pool, for callers
// that multiplex many detection runs arriving over time — a serving process
// admitting jobs, for example — onto a single machine-wide worker budget
// via Detector.DetectOn. Every stage of every run scheduled on the pool
// draws from the same token budget, so N concurrent jobs never oversubscribe
// the machine beyond the pool's worker count. A Pool is safe for concurrent
// use and needs no shutdown.
type Pool struct {
	wp *workPool
}

// NewPool creates a shared pool with the given worker budget; zero or
// negative means runtime.GOMAXPROCS(0), mirroring Config.Workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{wp: newWorkPool(workers)}
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return cap(p.wp.tokens) + 1 }

// workPool is the one bounded worker budget shared by every stage of the
// detection engine. A single pool spans criteria generation, sampling and
// labeling, training-data construction, feature building, and sharded
// scoring — and, through DetectBatch, all of those stages across several
// concurrent dataset runs — so nested fan-out never oversubscribes the
// machine beyond the configured worker count.
//
// The design is caller-runs with best-effort helpers: forN always executes
// work on the calling goroutine and additionally spawns helper goroutines
// while free worker tokens exist. Because the caller never blocks on a
// token, arbitrarily nested forN calls (a batch of engines, each running
// staged fan-outs) cannot deadlock; when the budget is exhausted the inner
// loops simply degrade to serial execution on their callers.
//
// The pool imposes no ordering: correctness relies on the engine's
// determinism contract — every unit of work writes disjoint slots and draws
// randomness from its own derived stream — so results are bit-identical for
// any worker count.
type workPool struct {
	// tokens holds workers-1 helper slots; the calling goroutine of each
	// forN is the implicit extra worker.
	tokens chan struct{}
}

// newWorkPool creates a pool with the given worker budget. Config
// normalization (withDefaults) guarantees workers >= 1 everywhere in this
// package.
func newWorkPool(workers int) *workPool {
	if workers < 1 {
		workers = 1
	}
	return &workPool{tokens: make(chan struct{}, workers-1)}
}

// forN runs fn(0..n-1), distributing iterations across the caller plus as
// many helper workers as the shared budget allows, and returns after every
// iteration completed. Iterations are claimed from an atomic cursor, so the
// partition adapts to uneven unit costs.
func (p *workPool) forN(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for s := 0; s < n-1; s++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.tokens
					wg.Done()
				}()
				run()
			}()
		default:
			break spawn // budget exhausted: the caller handles the rest
		}
	}
	run()
	wg.Wait()
}
