package zeroed

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/table"
)

// StreamScorer drives long-lived streaming detection over one model slot:
// chunks of raw rows are scored against the current model (through its warm
// score cache), every cell value is folded into per-model drift gauges
// against the model's fit-time frequency snapshot, and the scored rows
// accumulate into a dictionary-bound dataset that a drift-triggered refit
// trains a successor on.
//
// Chunking invariance: each chunk is scored by Model.ScoreRowsOn, which
// binds its own scoring dataset per call, so a verdict depends only on the
// model and the row's cell values — the same byte stream split at any chunk
// boundaries yields the identical verdict sequence. Drift observation is
// per cell value, equally chunk-invariant.
//
// Concurrency: ScoreChunk is safe for concurrent callers. Scoring runs
// outside the scorer's lock (the model is safe for concurrent scoring);
// drift observation and stream accumulation serialize under it. The refit
// path reads the accumulated rows through the dataset's published-snapshot
// handoff (table.PublishSnapshot / LatestSnapshot), never touching the live
// columns from the fitting goroutine.
type StreamScorer struct {
	cfg StreamConfig

	mu      sync.Mutex
	m       *Model
	version int
	drift   *stats.DriftTracker
	accum   *table.Dataset

	// Refit failure containment (guarded by mu): consecutive failed refits
	// push the next attempt out exponentially; enough of them trip the
	// per-model circuit breaker. Either way the last good model keeps
	// serving — a failing refit must never hot-loop the fit pipeline.
	refitFails int
	retryAt    time.Time
	broken     bool

	refitting atomic.Bool
}

// StreamConfig tunes one streaming scorer.
type StreamConfig struct {
	// DriftThreshold trips a refit when either drift gauge (unseen-value
	// rate or distribution shift) exceeds it. <= 0 disables tripping; the
	// gauges still accumulate.
	DriftThreshold float64
	// DriftMinRows is the minimum accumulated stream size before the
	// threshold may trip (default 256): early chunks are too small to
	// estimate a distribution.
	DriftMinRows int
	// MaxAccumRows bounds the accumulated refit dataset (default 100000).
	// Beyond it rows keep scoring and keep moving the gauges, but are no
	// longer retained for refitting.
	MaxAccumRows int
	// RefitBackoffBase is the delay before retrying after the first failed
	// refit (default 1s); each consecutive failure doubles it.
	RefitBackoffBase time.Duration
	// RefitBackoffMax caps the refit backoff (default 5m).
	RefitBackoffMax time.Duration
	// RefitBreakerAfter trips the per-model circuit breaker after this many
	// consecutive refit failures (default 5): no further refits trip until a
	// successful Install resets it. Negative disables the breaker.
	RefitBreakerAfter int
	// Clock overrides time.Now for backoff bookkeeping (tests).
	Clock func() time.Time
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.DriftMinRows <= 0 {
		c.DriftMinRows = 256
	}
	if c.MaxAccumRows <= 0 {
		c.MaxAccumRows = 100_000
	}
	if c.RefitBackoffBase <= 0 {
		c.RefitBackoffBase = time.Second
	}
	if c.RefitBackoffMax <= 0 {
		c.RefitBackoffMax = 5 * time.Minute
	}
	if c.RefitBreakerAfter == 0 {
		c.RefitBreakerAfter = 5
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// RefitHealth is the failure-containment state of one stream's refit loop,
// exported for gauges and admin introspection.
type RefitHealth struct {
	// ConsecutiveFailures counts refit failures since the last successful
	// Install.
	ConsecutiveFailures int
	// BackoffUntil is the time before which drift will not trip another
	// refit (zero when no backoff is pending).
	BackoffUntil time.Time
	// BreakerOpen reports a tripped circuit breaker: refits stay disabled
	// until a successful Install (e.g. an operator-driven manual refit).
	BreakerOpen bool
}

// ChunkStatus reports the stream state after one scored chunk.
type ChunkStatus struct {
	// Version is the model version the chunk was scored by.
	Version int
	// Drift is the gauge reading after folding the chunk in.
	Drift stats.DriftGauges
	// ShouldRefit is set when the drift threshold tripped and no refit is
	// already running; the caller decides whether (and where) to run it.
	ShouldRefit bool
}

// NewStreamScorer starts a stream against a fitted model. The version is
// taken from the model's lineage. Degenerate models cannot score unseen
// rows and are rejected.
func NewStreamScorer(m *Model, cfg StreamConfig) (*StreamScorer, error) {
	if m == nil {
		return nil, fmt.Errorf("zeroed: nil model")
	}
	if m.Degenerate() {
		return nil, fmt.Errorf("zeroed: degenerate model cannot drive a stream")
	}
	ss := &StreamScorer{cfg: cfg.withDefaults()}
	if err := ss.install(m); err != nil {
		return nil, err
	}
	return ss, nil
}

// install binds the scorer to a model: fresh drift tracker against the
// model's fit-time frequency snapshot, fresh accumulator seeded with the
// model's dictionaries. Caller holds mu (or is the constructor).
func (ss *StreamScorer) install(m *Model) error {
	ref, err := m.bind()
	if err != nil {
		return err
	}
	drift, err := stats.NewDriftTracker(m.ext.Snapshot().Freq, ref)
	if err != nil {
		return err
	}
	accum, err := m.bind()
	if err != nil {
		return err
	}
	accum.Name = "stream"
	ss.m = m
	ss.version = m.Lineage().Version
	ss.drift = drift
	ss.accum = accum
	return nil
}

// Model returns the current model and its version.
func (ss *StreamScorer) Model() (*Model, int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.m, ss.version
}

// Gauges returns the current drift reading and the model version it is
// accumulating against.
func (ss *StreamScorer) Gauges() (stats.DriftGauges, int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.drift.Gauges(), ss.version
}

// ScoreChunk scores one chunk of raw rows (in the model's attribute order)
// against the current model, then folds the rows into the drift gauges and
// the refit accumulator. The verdicts are computed before the fold, so a
// concurrent hot-swap never tears a chunk: every row of the chunk is scored
// by the one model captured at entry, reported in the status version.
func (ss *StreamScorer) ScoreChunk(ctx context.Context, p *Pool, rows [][]string) (*Result, ChunkStatus, error) {
	ss.mu.Lock()
	m, version := ss.m, ss.version
	ss.mu.Unlock()

	ctx, span := obs.Start(ctx, "stream.chunk")
	defer span.End()
	span.SetInt("rows", int64(len(rows)))
	span.SetInt("version", int64(version))

	var res *Result
	var err error
	if p != nil {
		res, err = m.ScoreRowsOn(ctx, p, rows)
	} else {
		res, err = m.ScoreRowsContext(ctx, rows)
	}
	if err != nil {
		return nil, ChunkStatus{Version: version}, err
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, r := range rows {
		// Arity was validated by scoring; a mismatch here is unreachable.
		if err := ss.drift.ObserveRow(r); err != nil {
			return nil, ChunkStatus{Version: version}, err
		}
		if ss.accum.NumRows() < ss.cfg.MaxAccumRows {
			ss.accum.MustAppendRow(r)
		}
	}
	ss.accum.PublishSnapshot()
	st := ChunkStatus{Version: ss.version, Drift: ss.drift.Gauges()}
	if ss.drift.Trip(ss.cfg.DriftThreshold, ss.cfg.DriftMinRows) &&
		!ss.refitting.Load() && ss.refitAllowedLocked() {
		st.ShouldRefit = true
	}
	return res, st, nil
}

// ScoreSource drains a table.RowSource through ScoreChunk: rows arrive in
// chunks of chunkRows (default 256 when <= 0), each chunk is scored against
// the current model, and emit — when non-nil — runs once per scored chunk
// with the chunk's first row index, its result, and the post-chunk status.
// emit may Refit/Install synchronously between chunks (the CLI's in-place
// refit does exactly that: the next chunk scores on the successor); a
// non-nil emit error aborts the drain. Verdicts stay chunk-invariant for
// any chunkRows. Returns the total rows scored and the last chunk status.
func (ss *StreamScorer) ScoreSource(ctx context.Context, p *Pool, src table.RowSource, chunkRows int, emit func(start int, res *Result, st ChunkStatus) error) (int, ChunkStatus, error) {
	if chunkRows <= 0 {
		chunkRows = 256
	}
	rows := 0
	var last ChunkStatus
	for {
		chunk, rerr := src.Next(chunkRows)
		if len(chunk) > 0 {
			res, st, err := ss.ScoreChunk(ctx, p, chunk)
			if err != nil {
				return rows, last, err
			}
			last = st
			if emit != nil {
				if err := emit(rows, res, st); err != nil {
					return rows, last, err
				}
			}
			rows += len(chunk)
		}
		if rerr == io.EOF {
			return rows, last, nil
		}
		if rerr != nil {
			return rows, last, rerr
		}
	}
}

// refitAllowedLocked reports whether failure containment permits another
// refit attempt right now. Caller holds mu.
func (ss *StreamScorer) refitAllowedLocked() bool {
	if ss.broken {
		return false
	}
	return ss.retryAt.IsZero() || !ss.cfg.Clock().Before(ss.retryAt)
}

// RefitHealth returns the current failure-containment state.
func (ss *StreamScorer) RefitHealth() RefitHealth {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return RefitHealth{
		ConsecutiveFailures: ss.refitFails,
		BackoffUntil:        ss.retryAt,
		BreakerOpen:         ss.broken,
	}
}

// BeginRefit claims the single refit slot. It returns false when a refit is
// already in flight; the winner must end with Install or AbortRefit.
func (ss *StreamScorer) BeginRefit() bool {
	return ss.refitting.CompareAndSwap(false, true)
}

// AbortRefit releases the refit slot without swapping, after a failed fit.
// The old model keeps serving and the gauges keep accumulating, but the
// failure is recorded: the next trip is pushed out by exponential backoff
// (RefitBackoffBase doubling up to RefitBackoffMax), and RefitBreakerAfter
// consecutive failures open the circuit breaker until the next successful
// Install.
func (ss *StreamScorer) AbortRefit() {
	ss.mu.Lock()
	ss.refitFails++
	backoff := ss.cfg.RefitBackoffBase
	for i := 1; i < ss.refitFails; i++ {
		backoff *= 2
		if backoff >= ss.cfg.RefitBackoffMax {
			backoff = ss.cfg.RefitBackoffMax
			break
		}
	}
	ss.retryAt = ss.cfg.Clock().Add(backoff)
	if ss.cfg.RefitBreakerAfter > 0 && ss.refitFails >= ss.cfg.RefitBreakerAfter {
		ss.broken = true
	}
	ss.mu.Unlock()
	ss.refitting.Store(false)
}

// Refit trains a successor model on the accumulated stream. It runs from
// the refit goroutine: the rows are taken from the accumulator's latest
// published snapshot (the cross-goroutine handoff — streaming appends keep
// going while the fit runs) and cloned before fitting, because the fit
// pipeline mutates its dataset in place during training-data synthesis.
//
// The successor reuses the prior model's configuration and seed, and —
// because the accumulator is seeded with the prior dictionaries — its
// dictionaries extend the prior model's. Fitting is deterministic given the
// accumulated dataset: an independent Fit over the same accumulated rows
// with the same dictionary seeding produces a bit-identical successor
// (pinned by TestStreamRefitMatchesFromScratchFit).
//
// Refit does not swap anything: the caller persists/installs the returned
// model via Install, so in-flight chunks keep scoring on the old model
// until the swap is complete.
func (ss *StreamScorer) Refit(ctx context.Context, p *Pool) (*Model, error) {
	if !ss.refitting.Load() {
		return nil, fmt.Errorf("zeroed: Refit without BeginRefit")
	}
	ss.mu.Lock()
	prior, version := ss.m, ss.version
	accum := ss.accum
	ss.mu.Unlock()

	snap := accum.LatestSnapshot()
	if snap == nil || snap.NumRows() == 0 {
		return nil, fmt.Errorf("zeroed: no accumulated rows to refit on")
	}
	ds := snap.Clone()
	ds.Name = "refit"
	det := New(prior.cfg)
	var m2 *Model
	var err error
	if p != nil {
		m2, err = det.FitOn(ctx, p, ds)
	} else {
		m2, err = det.FitContext(ctx, ds)
	}
	if err != nil {
		return nil, fmt.Errorf("zeroed: refit failed: %w", err)
	}
	if m2.Degenerate() {
		return nil, fmt.Errorf("zeroed: refit produced a degenerate model (accumulated stream is single-class); keeping the old model")
	}
	m2.SetLineage(Lineage{Version: version + 1, RefitRows: ds.NumRows()})
	return m2, nil
}

// Install hot-swaps the successor in: subsequent chunks score on it, the
// drift gauges and the accumulator reset against its dictionaries, and the
// refit slot reopens. In-flight ScoreChunk calls that captured the old
// model finish on it untouched — the swap replaces the pointer, it never
// mutates the old model.
// A successful install also resets refit-failure containment: the breaker
// closes and any pending backoff clears.
func (ss *StreamScorer) Install(m *Model) error {
	if m == nil || m.Degenerate() {
		return fmt.Errorf("zeroed: cannot install a nil or degenerate model")
	}
	ss.mu.Lock()
	err := ss.install(m)
	if err == nil {
		ss.refitFails = 0
		ss.retryAt = time.Time{}
		ss.broken = false
	}
	ss.mu.Unlock()
	ss.refitting.Store(false)
	return err
}
