package zeroed

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/table"
)

// tinyCfg shrinks the pipeline so degenerate-shape runs stay fast while
// exercising every stage.
func tinyCfg() Config {
	return Config{
		Seed:     1,
		Workers:  1,
		EmbedDim: 8,
		MLP:      nn.Config{Hidden1: 4, Hidden2: 3, Epochs: 2, BatchSize: 8, Seed: 1},
	}
}

func mustCSV(t *testing.T, csv string) *table.Dataset {
	t.Helper()
	d, err := table.ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDetectDegenerateShapes pins "clean error or defined verdict, never a
// panic" across the degenerate shapes reachable from untrusted uploads:
// one row, one cell, all-identical columns (zero-entropy NMI,
// zero-variance features), and cluster counts k >= n.
func TestDetectDegenerateShapes(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		cfg  func(Config) Config
	}{
		{"one row", "a,b\n1,2\n", nil},
		{"one cell", "a\nv\n", nil},
		{"identical column", "a,b\nx,1\nx,2\nx,3\nx,4\nx,5\n", nil},
		{"all cells identical", "a,b\n" + strings.Repeat("s,s\n", 20), nil},
		{"two rows high label rate (k>=n)", "a,b\n1,2\n3,4\n", func(c Config) Config {
			c.LabelRate = 1.0 // forces clustersPerAttr >= sampled rows
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyCfg()
			if tc.cfg != nil {
				cfg = tc.cfg(cfg)
			}
			res, err := New(cfg).Detect(mustCSV(t, tc.csv))
			if err != nil {
				t.Logf("clean error (acceptable): %v", err)
				return
			}
			if res == nil || res.Pred == nil {
				t.Fatal("nil result without error")
			}
		})
	}
}

// TestDetectContextCanceled pins that a pre-canceled context aborts
// immediately with the context error and no partial result.
func TestDetectContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(tinyCfg()).DetectContext(ctx, mustCSV(t, "a,b\n1,2\n3,4\n5,6\n"))
	if err == nil {
		t.Fatal("canceled context must abort detection")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run must not return a partial result")
	}
}

// TestDetectOnSharedPool pins that DetectOn over one shared pool is
// bit-identical to Detect with its own pool, for two jobs sharing the pool.
func TestDetectOnSharedPool(t *testing.T) {
	csv := "a,b\nx,1\ny,2\nx,3\nz,4\ny,5\nx,6\n"
	want, err := New(tinyCfg()).Detect(mustCSV(t, csv))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2)
	for run := 0; run < 2; run++ {
		got, err := New(tinyCfg()).DetectOn(context.Background(), pool, mustCSV(t, csv))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Pred {
			for j := range want.Pred[i] {
				if got.Pred[i][j] != want.Pred[i][j] || got.Scores[i][j] != want.Scores[i][j] {
					t.Fatalf("run %d: cell (%d,%d) differs between DetectOn and Detect", run, i, j)
				}
			}
		}
	}
}
