package zeroed

import (
	"math/rand"

	"repro/internal/criteria"
)

// stageTrainingData implements Algorithm 1 (Step 3): in-cluster label
// propagation, contrastive criteria refinement, mutual verification between
// refined criteria and propagated labels, and LLM error augmentation. The
// attributes are independent, so the stage fans out per attribute on the
// shared pool — each attribute draws from its own phaseTrainData stream and
// fills its own result slot — and the slots are concatenated in attribute
// order afterwards, keeping the training set identical for any worker
// count. It also updates the extractor's criteria features with the refined
// sets (the "update criteria feat" arrow of Fig. 3).
func (e *engine) stageTrainingData() {
	m := e.d.NumCols()
	// posOf maps a dataset row id to its position within clusterRows
	// (cluster assignments are indexed by position).
	posOf := make(map[int]int, len(e.clusterRows))
	for pos, row := range e.clusterRows {
		posOf[row] = pos
	}
	perTrain := make([][]cellLabel, m)
	perSynth := make([][]syntheticCell, m)
	e.pool.forN(m, func(j int) {
		if e.ctx.Err() != nil {
			return
		}
		arng := attrRng(e.cfg.Seed, j, phaseTrainData)
		perTrain[j], perSynth[j] = e.attrTrainingData(j, posOf, arng)
	})
	for j := 0; j < m; j++ {
		e.training = append(e.training, perTrain[j]...)
		e.synth = append(e.synth, perSynth[j]...)
	}
	e.res.AugmentedErrs = len(e.synth)
	e.res.TrainingCells = len(e.training) + len(e.synth)
}

// attrTrainingData runs Algorithm 1 for one attribute. It touches only
// attribute j's slots of the shared engine state (criteria set, extractor
// criteria memo), so concurrent attributes never conflict.
func (e *engine) attrTrainingData(j int, posOf map[int]int, arng *rand.Rand) ([]cellLabel, []syntheticCell) {
	cfg := e.cfg
	d := e.d
	var training []cellLabel
	var synth []syntheticCell

	// Line 1: PropagateLabels — every member of a cluster inherits the
	// centroid sample's LLM label.
	var propagated []cellLabel
	if cfg.DisablePropagation {
		propagated = append(propagated, e.labeled[j]...)
	} else {
		labelOfCluster := map[int]bool{}
		haveLabel := map[int]bool{}
		cl := e.clusterings[j]
		for _, lc := range e.labeled[j] {
			c := cl.Assign[posOf[lc.row]]
			labelOfCluster[c] = lc.isErr
			haveLabel[c] = true
		}
		for pos, c := range cl.Assign {
			if haveLabel[c] {
				propagated = append(propagated, cellLabel{row: e.clusterRows[pos], col: j, isErr: labelOfCluster[c]})
			}
		}
		propagated = capPropagated(propagated, cfg.MaxPropagatedPerAttr, arng)
	}

	if cfg.DisableVerification {
		return propagated, nil
	}

	// Lines 4-7: contrastive in-context criteria refinement from the
	// LLM-labeled samples.
	var cleanVals, errVals []string
	for _, lc := range e.labeled[j] {
		v := d.Value(lc.row, lc.col)
		if lc.isErr {
			errVals = append(errVals, v)
		} else {
			cleanVals = append(cleanVals, v)
		}
	}
	refined := e.critSets[j]
	if refined != nil && (len(cleanVals) > 0 || len(errVals) > 0) {
		refined = e.client.RefineCriteria(refined, cleanVals, errVals)
	}

	// Lines 8-14: verify criteria against propagated-clean rows with the
	// paper's 0.5 accuracy threshold (index-based evaluation; no per-row
	// map materialization).
	var rightRows []int
	for _, lc := range propagated {
		if !lc.isErr {
			rightRows = append(rightRows, lc.row)
		}
	}
	// The verification and pass-rate passes below evaluate the same
	// criteria against heavily duplicated cell values; by default they run
	// through a per-value-ID verdict memo (criteria.SetMemo), whose cached
	// booleans are exactly what EvalAt would recompute — aggregates are
	// bit-identical with the memo on or off.
	var memo *criteria.SetMemo
	if refined != nil {
		if cfg.DisableFitDedup {
			refined = criteria.VerifySetAt(refined, d, j, rightRows, 0.5)
		} else {
			memo = criteria.NewSetMemo(d, j, refined).Verify(rightRows, 0.5)
			refined = memo.Set()
		}
		// Update criteria features with the verified refined set.
		e.ext.SetCriteria(j, refined)
		e.critSets[j] = refined
	}
	passRate := func(row int) float64 {
		if memo != nil {
			return memo.PassRateAt(row)
		}
		return refined.PassRateAt(d, row, j)
	}

	// Lines 15-20: verify propagated-clean cells against the surviving
	// criteria with the 0.5 pass-rate threshold. Symmetrically,
	// propagated-*error* cells that pass every surviving criterion are
	// dropped too: clusters are imperfect, and an error label on a
	// fully-conforming cell is almost always propagation noise. (The
	// paper verifies only the clean side explicitly; the symmetric
	// check follows the same mutual-verification argument.)
	directlyLabeled := map[int]bool{}
	for _, lc := range e.labeled[j] {
		directlyLabeled[lc.row] = true
	}
	for _, lc := range propagated {
		if lc.isErr {
			if refined != nil && len(refined.Criteria) > 0 &&
				!directlyLabeled[lc.row] && passRate(lc.row) == 1 {
				continue
			}
			training = append(training, lc)
			continue
		}
		if refined == nil || passRate(lc.row) >= 0.5 {
			training = append(training, lc)
		}
	}

	// Lines 24-25: LLM error augmentation toward class balance.
	cleanCount, errCount := 0, 0
	for _, lc := range propagated {
		if lc.isErr {
			errCount++
		} else {
			cleanCount++
		}
	}
	want := cleanCount/2 - errCount
	if want > cfg.AugmentPerAttr {
		want = cfg.AugmentPerAttr
	}
	if want > 0 && len(cleanVals) > 0 {
		genErrs := e.client.AugmentErrors(d.Attrs[j], cleanVals, errVals, want)
		// Host each synthetic error in a random propagated-clean row.
		hosts := make([]int, 0, len(propagated))
		for _, lc := range propagated {
			if !lc.isErr {
				hosts = append(hosts, lc.row)
			}
		}
		if len(hosts) > 0 {
			for _, v := range genErrs {
				synth = append(synth, syntheticCell{row: hosts[arng.Intn(len(hosts))], col: j, value: v})
			}
		}
	}
	return training, synth
}

// capPropagated downsamples the propagated pool to the configured cap,
// always keeping all error-labeled cells (the minority class) and filling
// the remainder with a seeded sample of clean cells.
func capPropagated(propagated []cellLabel, cap int, rng *rand.Rand) []cellLabel {
	if len(propagated) <= cap {
		return propagated
	}
	var errs, cleans []cellLabel
	for _, lc := range propagated {
		if lc.isErr {
			errs = append(errs, lc)
		} else {
			cleans = append(cleans, lc)
		}
	}
	out := errs
	room := cap - len(errs)
	if room <= 0 {
		return errs
	}
	rng.Shuffle(len(cleans), func(i, j int) { cleans[i], cleans[j] = cleans[j], cleans[i] })
	if room > len(cleans) {
		room = len(cleans)
	}
	return append(out, cleans[:room]...)
}
