package zeroed

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/feature"
	"repro/internal/nn"
)

// TestScoreDedupEquivalence pins the dedup cache's exactness contract:
// scoring with the cache on is bit-identical — every verdict, every score
// bit — to scoring with it off, across shard counts.
func TestScoreDedupEquivalence(t *testing.T) {
	benches := detBenches()
	if testing.Short() {
		benches = benches[:1]
	}
	for _, bench := range benches {
		t.Run(bench.Name, func(t *testing.T) {
			for _, shards := range []int{1, 4} {
				on := detConfig(2, shards)
				off := on
				off.DisableScoreDedup = true
				a, err := New(on).Detect(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				b, err := New(off).Detect(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, "dedup-on-vs-off", a, b)
			}
		})
	}
}

// scorerFixture builds a trained shardScorer over a small real dataset.
func scorerFixture(t testing.TB, dedup bool) (*shardScorer, int) {
	t.Helper()
	bench := datasets.Hospital(120, 3)
	d := bench.Dirty
	ext := feature.NewExtractor(d, feature.Config{EmbedDim: 8, CorrK: 2})
	dim := ext.Dim()
	// Train a tiny MLP on synthetic two-class data of the right width; the
	// scorer only needs a fitted model, not a good one.
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, 24)
	y := make([]float64, 24)
	for i := range X {
		X[i] = make([]float64, dim)
		for k := range X[i] {
			X[i][k] = rng.Float64()
		}
		if i%2 == 0 {
			y[i] = 1
		}
	}
	cfg := nn.Config{Hidden1: 8, Hidden2: 4, Epochs: 2, Seed: 1}
	mlp := nn.New(dim, cfg)
	if _, err := mlp.Train(X, y); err != nil {
		t.Fatal(err)
	}
	n, m := d.NumRows(), d.NumCols()
	var depCols [][]int
	if dedup {
		depCols = make([][]int, m)
		for j := range depCols {
			depCols[j] = ext.DepCols(j)
		}
	}
	return newShardScorer(ext, mlp, d, depCols, 0.4, newMatrix(n, m), newMask(d), nil), n
}

// TestFusedScoringZeroAllocSteadyState is the hot-path allocation guard:
// once the dedup cache is warm, scoring a cell performs zero allocations —
// and with dedup disabled the fused tile path is allocation-free from the
// first row.
func TestFusedScoringZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode bypasses sync.Pool caching; alloc counts are meaningless")
	}
	for _, tc := range []struct {
		name  string
		dedup bool
	}{
		{"dedup-warm", true},
		{"dedup-off", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, n := scorerFixture(t, tc.dedup)
			// Warm pass: fills the dedup cache (and the nn scratch pool).
			sc.scoreRows(context.Background(), 0, n)
			if allocs := testing.AllocsPerRun(50, func() { sc.scoreRows(context.Background(), 0, n) }); allocs != 0 {
				t.Errorf("steady-state scoring allocates %.2f times per %d-row pass, want 0", allocs, n)
			}
		})
	}
}

// TestShardScorerDedupMatchesDirect compares every cached score against a
// direct RowFeaturesInto+PredictInto computation, cell by cell.
func TestShardScorerDedupMatchesDirect(t *testing.T) {
	sc, n := scorerFixture(t, true)
	ref, _ := scorerFixture(t, false)
	sc.scoreRows(context.Background(), 0, n)
	ref.scoreRows(context.Background(), 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < sc.m; j++ {
			if sc.scores[i][j] != ref.scores[i][j] {
				t.Fatalf("cell (%d,%d): dedup score %v != direct score %v",
					i, j, sc.scores[i][j], ref.scores[i][j])
			}
			if sc.pred[i][j] != ref.pred[i][j] {
				t.Fatalf("cell (%d,%d): dedup verdict differs", i, j)
			}
		}
	}
	// The cache must actually be deduplicating on this replicated dataset.
	cached := 0
	for j := range sc.caches {
		cached += len(sc.caches[j])
	}
	if cached >= n*sc.m {
		t.Errorf("dedup cache holds %d entries for %d cells — no dedup happened", cached, n*sc.m)
	}
}
