package zeroed

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/criteria"
	"repro/internal/feature"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/table"
)

// Pipeline phases, used to derive independent per-(attribute, phase) random
// streams so that no stage's randomness depends on execution order.
const (
	phaseCriteria  = 1 // criteria generation
	phaseSample    = 2 // clustering, guideline generation, labeling
	phaseTrainData = 3 // propagation caps, augmentation host selection
)

// attrRng derives the deterministic random source for one attribute and
// pipeline phase, so parallel and sequential execution produce identical
// results for any worker or shard count.
func attrRng(seed int64, attr, phase int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(attr)*7919 + int64(phase)*104729))
}

// engine is one staged run of the ZeroED pipeline over a single dataset.
// Every stage fans its per-attribute (or per-row-shard) units out on one
// shared bounded worker pool, so the stages of one run — and, under
// DetectBatch, the stages of many concurrent runs — draw from the same
// worker budget instead of oversubscribing the machine.
//
// Determinism contract: each unit writes only its own slots (indexed by
// attribute or row), every stochastic step draws from a per-(attribute,
// phase) stream via attrRng, and cross-unit aggregation happens in index
// order after the stage joins. Results are therefore bit-identical for any
// Workers and Shards setting.
type engine struct {
	cfg    Config
	ctx    context.Context
	pool   *workPool
	d      *table.Dataset
	client *llm.Client
	rng    *rand.Rand // engine-level stream: cluster-row sampling only
	res    *Result

	ext             *feature.Extractor
	critSets        []*criteria.Set
	clusterRows     []int // rows participating in clustering (sorted)
	clustersPerAttr int
	clusterings     []*cluster.Result
	labeled         [][]cellLabel // LLM-labeled samples per attribute
	training        []cellLabel
	synth           []syntheticCell
}

// Detect runs the full ZeroED pipeline on a dirty dataset and returns
// per-cell error predictions. It never consults ground truth.
func (dt *Detector) Detect(d *table.Dataset) (*Result, error) {
	return dt.DetectContext(context.Background(), d)
}

// DetectContext is Detect with cooperative cancellation: the context is
// checked between pipeline stages, between per-attribute and per-shard work
// units, and per training epoch, so a canceled job releases its workers
// promptly (within the current unit of work). A canceled run returns an
// error wrapping the context's error; cancellation never produces a partial
// Result.
func (dt *Detector) DetectContext(ctx context.Context, d *table.Dataset) (*Result, error) {
	return dt.detect(ctx, d, newWorkPool(dt.cfg.Workers))
}

// DetectOn runs detection on an externally owned shared pool (NewPool).
// Serving layers use this to multiplex many concurrently admitted jobs over
// one machine-wide worker budget: every job draws from the pool's tokens
// instead of spawning its own workers. Results are bit-identical to Detect
// for any pool size.
func (dt *Detector) DetectOn(ctx context.Context, p *Pool, d *table.Dataset) (*Result, error) {
	return dt.detect(ctx, d, p.wp)
}

// detect runs one full detection over an externally owned pool (shared
// across the datasets of a DetectBatch, or across the jobs of a serving
// process). It is literally Fit composed with Score — the pipeline fits a
// model, then the model scores the same dataset — which is what makes the
// contract Detect(ds) ≡ Score(Fit(ds), ds) hold bit-for-bit.
func (dt *Detector) detect(ctx context.Context, d *table.Dataset, pool *workPool) (*Result, error) {
	start := time.Now()
	m, err := dt.fit(ctx, d, pool)
	if err != nil {
		return nil, err
	}
	// The fit dataset needs no re-interning: the model's dictionaries ARE
	// its pools, so every cell ID is already bound — score it directly
	// instead of paying Score's O(cells) copy. Score(Fit(ds), ds) through
	// the public API takes the copying path and lands on the same IDs,
	// which is why the two are bit-identical.
	res, err := m.scoreBound(ctx, pool, d)
	if err != nil {
		return nil, err
	}
	res.Usage = m.info.Usage
	res.SampledCells = m.info.SampledCells
	res.TrainingCells = m.info.TrainingCells
	res.AugmentedErrs = m.info.AugmentedErrs
	res.CriteriaCount = m.info.CriteriaCount
	res.Runtime = time.Since(start)
	return res, nil
}

// fit runs the expensive phase of the pipeline — criteria induction,
// sampling, LLM labeling, training-data construction, and detector training
// — and packages everything scoring needs into a reusable Model.
func (dt *Detector) fit(ctx context.Context, d *table.Dataset, pool *workPool) (*Model, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if d.NumRows() == 0 || d.NumCols() == 0 {
		return nil, fmt.Errorf("zeroed: empty dataset")
	}
	// The fit span carries every stage span below it. Spans observe wall
	// time and allocs strictly out of band — RNG streams, dedup caches, and
	// every computed value are untouched, so tracing on ≡ tracing off
	// bit-for-bit (pinned by TestTraceOnOffBitIdentical).
	ctx, fitSpan := obs.Start(ctx, "fit")
	defer fitSpan.End()
	fitSpan.SetInt("rows", int64(d.NumRows()))
	fitSpan.SetInt("cols", int64(d.NumCols()))
	e := &engine{
		cfg:    dt.cfg,
		ctx:    ctx,
		pool:   pool,
		d:      d,
		client: llm.NewClient(dt.cfg.Profile),
		rng:    rand.New(rand.NewSource(dt.cfg.Seed)),
		res:    &Result{},
	}
	var mlp *nn.MLP
	var flatX []float64
	var nTrain int
	var yTrain []float64
	stages := []struct {
		name string
		fn   func() error
	}{
		{"extractor", func() error { e.stageExtractor(); return nil }},
		{"criteria", func() error { e.stageCriteria(); return nil }},
		{"sample_label", e.stageSampleAndLabel},
		{"traindata", func() error { e.stageTrainingData(); return nil }},
		{"matrix", func() error { flatX, nTrain, yTrain = e.stageTrainingMatrix(); return nil }},
		{"train", func() error {
			var err error
			mlp, err = e.stageTrain(flatX, nTrain, yTrain)
			return err
		}},
	}
	timings := make([]StageTiming, 0, len(stages))
	var ms0, ms1 runtime.MemStats
	for _, stage := range stages {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("zeroed: detection canceled: %w", err)
		}
		_, span := obs.Start(ctx, "fit."+stage.name)
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if err := stage.fn(); err != nil {
			span.End()
			return nil, err
		}
		runtime.ReadMemStats(&ms1)
		span.End()
		// The span and the StageTiming record the same phase: the timing
		// keeps feeding FitInfo.Stages (benchjson fit_stages, the
		// zeroedd_fit_stage_seconds family), the span feeds the trace tree.
		timings = append(timings, StageTiming{
			Name:       stage.name,
			Seconds:    time.Since(t0).Seconds(),
			AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
		})
	}
	// A stage interrupted mid-flight leaves partial state; surface the
	// cancellation rather than a half-fitted model.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("zeroed: detection canceled: %w", err)
	}
	m := &Model{
		cfg:     dt.cfg,
		attrs:   append([]string(nil), d.Attrs...),
		dicts:   make([][]string, d.NumCols()),
		fitRows: d.NumRows(),
		ext:     e.ext,
		mlp:     mlp,
		info: FitInfo{
			SampledCells:  e.res.SampledCells,
			TrainingCells: e.res.TrainingCells,
			AugmentedErrs: e.res.AugmentedErrs,
			CriteriaCount: e.res.CriteriaCount,
			Usage:         e.client.Usage(),
			FitRuntime:    time.Since(start),
			Stages:        timings,
		},
	}
	// The dictionaries are captured post-fit (including values interned by
	// synthetic-error featurization) with their capacity clamped, so scoring
	// datasets seeded from them can grow without mutating the fit dataset's
	// pools — and vice versa.
	for j := range m.dicts {
		dict := d.Dict(j)
		m.dicts[j] = dict[:len(dict):len(dict)]
	}
	// Rebind the extractor to a rows-free dataset over the captured pools:
	// scoring rebinds per call anyway, and holding the fit dataset's row
	// matrices alive for the model's lifetime would pin the whole upload in
	// a serving registry. (Restored models are bound the same way.)
	proto, err := table.NewFromDicts(d.Name, m.attrs, m.dicts)
	if err != nil {
		return nil, err // unreachable: intern pools are duplicate-free
	}
	m.ext = e.ext.Rebind(proto)
	if mlp == nil {
		for _, c := range e.training {
			m.fallback = append(m.fallback, FallbackLabel{Row: c.row, Col: c.col, IsErr: c.isErr})
		}
	}
	return m, nil
}

// corrFor returns the correlated-attribute set of attribute j, honoring the
// "w/o Corr." ablation (which removes correlated-attribute context from
// features, criteria reasoning, and guideline generation alike).
func (e *engine) corrFor(j int) []int {
	if e.cfg.DisableCorrelated {
		return nil
	}
	return e.ext.Correlated(j)
}

// stageExtractor builds the feature extractor: frequency tables, NMI
// correlation structure, and the per-unique-value memo tables (Step 1 of
// the paper, before criteria reasoning).
func (e *engine) stageExtractor() {
	e.ext = feature.NewExtractor(e.d, feature.Config{
		EmbedDim:          e.cfg.EmbedDim,
		CorrK:             e.cfg.CorrK,
		DisableCorrelated: e.cfg.DisableCorrelated,
		DisableCriteria:   e.cfg.DisableCriteria,
	})
}

// stageCriteria generates every attribute's criteria set (Step 1's criteria
// reasoning). All criteria must exist before any clustering: attribute j's
// features embed the criteria bits of its correlated attributes.
func (e *engine) stageCriteria() {
	m := e.d.NumCols()
	e.critSets = make([]*criteria.Set, m)
	if e.cfg.DisableCriteria {
		return
	}
	e.pool.forN(m, func(j int) {
		if e.ctx.Err() != nil {
			return
		}
		arng := attrRng(e.cfg.Seed, j, phaseCriteria)
		sample := randomRows(arng, e.d.NumRows(), 30)
		e.critSets[j] = e.client.GenerateCriteria(e.d, j, sample, e.corrFor(j))
		e.ext.SetCriteria(j, e.critSets[j])
	})
	if e.ctx.Err() != nil {
		return
	}
	e.res.CriteriaCount = countCriteria(e.critSets)
}

// countCriteria sums the criteria across per-attribute sets. A nil set (an
// LLM substrate that produced no criteria for the attribute) contributes
// zero criteria rather than panicking the summary.
func countCriteria(sets []*criteria.Set) int {
	total := 0
	for _, s := range sets {
		if s != nil {
			total += len(s.Criteria)
		}
	}
	return total
}

// stageSampleAndLabel clusters each attribute's feature vectors, samples
// the cluster representatives, and labels them with the LLM under generated
// guidelines (Step 2). Labeling runs through the transient-retry path; a
// batch that exhausts its retry budget fails the whole stage (reported
// deterministically: lowest attribute index wins).
func (e *engine) stageSampleAndLabel() error {
	n, m := e.d.NumRows(), e.d.NumCols()
	e.clustersPerAttr = int(float64(n) * e.cfg.LabelRate)
	if e.clustersPerAttr < 2 {
		e.clustersPerAttr = 2
	}
	if e.clustersPerAttr > e.cfg.MaxClustersPerAttr {
		e.clustersPerAttr = e.cfg.MaxClustersPerAttr
	}
	// On large datasets, cluster a seeded row sample instead of the whole
	// column; sampling/labeling/propagation live inside the sample,
	// prediction still covers every cell.
	e.clusterRows = seq(n)
	if n > e.cfg.ClusterSampleRows {
		e.clusterRows = randomRows(e.rng, n, e.cfg.ClusterSampleRows)
		sort.Ints(e.clusterRows)
	}
	if e.clustersPerAttr > len(e.clusterRows)/2 {
		e.clustersPerAttr = max(2, len(e.clusterRows)/2)
	}

	e.labeled = make([][]cellLabel, m)
	e.clusterings = make([]*cluster.Result, m)
	sampledPerAttr := make([]int, m)
	labelErrs := make([]error, m)
	dim := e.ext.Dim()
	e.pool.forN(m, func(j int) {
		if e.ctx.Err() != nil {
			return
		}
		arng := attrRng(e.cfg.Seed, j, phaseSample)
		// One flat row-major feature tile per attribute: the clustering
		// core consumes it directly, with no per-row slice headers.
		nPts := len(e.clusterRows)
		feats := make([]float64, nPts*dim)
		e.ext.FeaturesInto(j, e.clusterRows, feats)
		var cl *cluster.Result
		switch e.cfg.Sampler {
		case SamplerRandom:
			cl = cluster.RandomSampleFlat(feats, nPts, dim, e.clustersPerAttr, arng)
		case SamplerAgglomerative:
			cl = cluster.AgglomerativeFlat(feats, nPts, dim, e.clustersPerAttr, arng, 4*e.clustersPerAttr)
		default:
			cl = cluster.KMeansFlat(feats, nPts, dim, e.clustersPerAttr, arng, 8)
		}
		e.clusterings[j] = cl
		samples := cl.CentroidSamplesFlat(feats, dim) // indices into clusterRows
		sampledPerAttr[j] = len(samples)

		sampleRows := make([]int, len(samples))
		for i, s := range samples {
			sampleRows[i] = e.clusterRows[s]
		}
		var guideline *llm.Guideline
		if !e.cfg.DisableGuidelines {
			prof := e.client.DistributionAnalysis(e.d, j, randomRows(arng, n, 20))
			guideline = e.client.GenerateGuideline(e.d, j, e.corrFor(j), prof, samplesHead(sampleRows, 20))
		}
		// Guideline judgements are a pure function of the cell's value-ID
		// tuple, so by default they dedup through a per-attribute memo
		// shared across the attribute's batches; verdicts, noise, and token
		// charging are bit-identical either way.
		var memo *llm.JudgeMemo
		if !e.cfg.DisableFitDedup {
			memo = llm.NewJudgeMemo(e.d, j, guideline)
		}
		for s := 0; s < len(sampleRows); s += e.cfg.BatchSize {
			if e.ctx.Err() != nil {
				return
			}
			end := min(s+e.cfg.BatchSize, len(sampleRows))
			batch := sampleRows[s:end]
			verdicts, err := e.client.LabelBatchTransient(e.ctx, e.d, j, batch, guideline, memo)
			if err != nil {
				labelErrs[j] = err
				return
			}
			for bi, row := range batch {
				e.labeled[j] = append(e.labeled[j], cellLabel{row: row, col: j, isErr: verdicts[bi]})
			}
		}
	})
	for _, err := range labelErrs {
		if err != nil {
			return fmt.Errorf("zeroed: labeling failed: %w", err)
		}
	}
	for _, s := range sampledPerAttr {
		e.res.SampledCells += s
	}
	return nil
}

// stageTrainingMatrix materializes the flat feature tile for the verified
// training cells plus the synthetic augmented errors — sample i occupies
// flat[i*dim : (i+1)*dim], the layout nn.TrainFlat consumes directly. Real
// cells are featurized in parallel (pure reads of the memo tables);
// synthetic cells substitute values into the shared dataset in place, so
// they run serially after the parallel pass.
func (e *engine) stageTrainingMatrix() ([]float64, int, []float64) {
	dim := e.ext.Dim()
	total := len(e.training) + len(e.synth)
	flat := make([]float64, total*dim) // one block for all training vectors
	y := make([]float64, total)
	nt := len(e.training)
	e.pool.forN(nt, func(i int) {
		c := e.training[i]
		e.ext.FeatureInto(c.row, c.col, flat[i*dim:(i+1)*dim])
		if c.isErr {
			y[i] = 1
		}
	})
	for s, sc := range e.synth {
		i := nt + s
		featureWithSubstitution(e.ext, e.d, sc, flat[i*dim:(i+1)*dim])
		y[i] = 1
	}
	return flat, total, y
}

// stageTrain trains the MLP detector on the verified training tile
// (Step 4's training half; scoring lives on the fitted Model). Degenerate
// labeling (all clean or all dirty) yields no trainable signal and returns
// a nil model — the Model falls back to the propagated labels themselves.
func (e *engine) stageTrain(flatX []float64, n int, y []float64) (*nn.MLP, error) {
	if !hasBothClasses(y) {
		return nil, nil
	}
	mlp := nn.New(e.ext.Dim(), e.cfg.MLP)
	if _, err := mlp.TrainFlatContext(e.ctx, flatX, n, y); err != nil {
		return nil, fmt.Errorf("zeroed: training detector: %w", err)
	}
	return mlp, nil
}

// rowRange is one contiguous scoring shard.
type rowRange struct{ lo, hi int }

// shardRanges partitions n rows into at most the given number of contiguous
// non-empty shards of near-equal size.
func shardRanges(n, shards int) []rowRange {
	out := make([]rowRange, 0, shards)
	for s := 0; s < shards; s++ {
		lo, hi := n*s/shards, n*(s+1)/shards
		if lo < hi {
			out = append(out, rowRange{lo, hi})
		}
	}
	return out
}

// featureWithSubstitution computes the feature vector of a synthetic
// augmented-error cell by temporarily substituting the value in place.
// Frequency tables keep their original counts, which is the realistic
// treatment: a novel error value has (near-)zero observed frequency. The
// substituted value is interned into the column's pool past the
// extractor's memo tables, so its per-value quantities are computed on the
// fly.
func featureWithSubstitution(ext *feature.Extractor, d *table.Dataset, s syntheticCell, out []float64) {
	orig := d.Value(s.row, s.col)
	d.SetValue(s.row, s.col, s.value)
	ext.FeatureInto(s.row, s.col, out)
	d.SetValue(s.row, s.col, orig)
}

func hasBothClasses(y []float64) bool {
	var pos, neg bool
	for _, v := range y {
		if v > 0.5 {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

// randomRows draws k distinct row indices (or all rows when k >= n) via an
// O(k) partial Fisher–Yates draw — no O(n) permutation materialized, which
// matters for the small per-attribute samples on Tax-scale datasets.
func randomRows(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return seq(n)
	}
	return randx.PartialPerm(rng, n, k)
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func samplesHead(xs []int, k int) []int {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
