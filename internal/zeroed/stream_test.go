package zeroed

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/datasets"
)

// fitStreamModel fits a small Hospital model once per test binary for the
// streaming tests.
var streamFitOnce struct {
	sync.Once
	m     *Model
	bench *datasets.Bench
	err   error
}

func fitStreamModel(t testing.TB) (*Model, *datasets.Bench) {
	t.Helper()
	streamFitOnce.Do(func() {
		streamFitOnce.bench = datasets.Hospital(200, 7)
		streamFitOnce.m, streamFitOnce.err = New(Config{
			LabelRate: 0.08, EmbedDim: 16, Seed: 7, Workers: 2,
		}).Fit(streamFitOnce.bench.Dirty)
	})
	if streamFitOnce.err != nil {
		t.Fatal(streamFitOnce.err)
	}
	return streamFitOnce.m, streamFitOnce.bench
}

// benchRows materializes the first n dirty rows as raw tuples.
func benchRows(b *datasets.Bench, n int) [][]string {
	if n > b.Dirty.NumRows() {
		n = b.Dirty.NumRows()
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		rows[i] = b.Dirty.Row(i)
	}
	return rows
}

// TestStreamChunkingInvariance pins the tentpole contract: the same row
// stream split at arbitrary chunk boundaries produces the identical verdict
// and score sequence — chunk boundaries are a transport detail, not a
// scoring input.
func TestStreamChunkingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	m, bench := fitStreamModel(t)
	rows := benchRows(bench, 120)
	// Mutate a few cells so the stream carries unseen values (cold path).
	rows[5][0] = "chunk-invariance-novel-1"
	rows[77][2] = "chunk-invariance-novel-2"

	score := func(chunks []int) ([][]bool, [][]float64) {
		ss, err := NewStreamScorer(m, StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var pred [][]bool
		var scores [][]float64
		i := 0
		for i < len(rows) {
			n := chunks[0]
			chunks = append(chunks[1:], chunks[0]) // cycle the sizes
			if i+n > len(rows) {
				n = len(rows) - i
			}
			res, _, err := ss.ScoreChunk(context.Background(), nil, rows[i:i+n])
			if err != nil {
				t.Fatal(err)
			}
			pred = append(pred, res.Pred...)
			scores = append(scores, res.Scores...)
			i += n
		}
		return pred, scores
	}

	wantPred, wantScores := score([]int{len(rows)})
	for _, chunks := range [][]int{{1}, {3}, {7, 1, 13}, {64}} {
		pred, scores := score(chunks)
		if len(pred) != len(wantPred) {
			t.Fatalf("chunks %v scored %d rows, want %d", chunks, len(pred), len(wantPred))
		}
		for i := range wantPred {
			for j := range wantPred[i] {
				if pred[i][j] != wantPred[i][j] {
					t.Fatalf("chunks %v: verdict differs at (%d,%d)", chunks, i, j)
				}
				if math.Float64bits(scores[i][j]) != math.Float64bits(wantScores[i][j]) {
					t.Fatalf("chunks %v: score bits differ at (%d,%d)", chunks, i, j)
				}
			}
		}
	}
}

// TestStreamDriftGaugesAndTrip: replaying fit-like rows keeps the gauges
// low; a burst of novel values raises the unseen rate and trips the
// threshold exactly once per refit slot.
func TestStreamDriftGaugesAndTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	m, bench := fitStreamModel(t)
	ss, err := NewStreamScorer(m, StreamConfig{DriftThreshold: 0.3, DriftMinRows: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the entire fitting dataset: the observed distribution matches
	// the fit-time one exactly, so both gauges read zero. (A partial replay
	// would legitimately read a non-zero shift — sampling variance.)
	_, st, err := ss.ScoreChunk(context.Background(), nil, benchRows(bench, bench.Dirty.NumRows()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift.UnseenRate != 0 || st.Drift.Shift > 1e-9 || st.ShouldRefit {
		t.Fatalf("fit-identical stream reads %+v, want zero gauges and no trip", st.Drift)
	}

	novel := make([][]string, 150)
	for i := range novel {
		row := make([]string, bench.Dirty.NumCols())
		for j := range row {
			row[j] = "novel-" + string(rune('a'+j)) + "-" + string(rune('0'+i%10))
		}
		novel[i] = row
	}
	_, st, err = ss.ScoreChunk(context.Background(), nil, novel)
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift.UnseenRate < 0.3 {
		t.Fatalf("novel burst unseen rate = %g, want > 0.3", st.Drift.UnseenRate)
	}
	if !st.ShouldRefit {
		t.Fatal("drift threshold should have tripped")
	}
	if !ss.BeginRefit() {
		t.Fatal("refit slot should be free")
	}
	if ss.BeginRefit() {
		t.Fatal("refit slot must be exclusive")
	}
	// With a refit in flight, further chunks must not re-trip.
	_, st, err = ss.ScoreChunk(context.Background(), nil, novel[:10])
	if err != nil {
		t.Fatal(err)
	}
	if st.ShouldRefit {
		t.Fatal("ShouldRefit must stay false while a refit is in flight")
	}
	ss.AbortRefit()
	if !ss.BeginRefit() {
		t.Fatal("aborting must reopen the refit slot")
	}
	ss.AbortRefit()
}

// TestStreamRefitMatchesFromScratchFit pins the successor contract: a
// drift-triggered refit is bit-identical to an independent from-scratch
// Fit over the same accumulated dataset. The accumulated dataset reuses the
// prior model's dictionaries (it is seeded from them), so dictionary-ID
// assignment is part of the fit input — that is the documented delta
// against fitting freshly materialized rows, and within it the refit is
// exactly reproducible.
func TestStreamRefitMatchesFromScratchFit(t *testing.T) {
	if testing.Short() {
		t.Skip("fits three models")
	}
	m, _ := fitStreamModel(t)
	ss, err := NewStreamScorer(m, StreamConfig{DriftThreshold: 0.2, DriftMinRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Stream a drifted benchmark: same schema, different seed.
	drifted := datasets.Hospital(220, 13)
	rows := make([][]string, drifted.Dirty.NumRows())
	for i := range rows {
		rows[i] = drifted.Dirty.Row(i)
	}
	for i := 0; i < len(rows); i += 32 {
		hi := i + 32
		if hi > len(rows) {
			hi = len(rows)
		}
		if _, _, err := ss.ScoreChunk(context.Background(), nil, rows[i:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if !ss.BeginRefit() {
		t.Fatal("refit slot should be free")
	}
	successor, err := ss.Refit(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if l := successor.Lineage(); l.Version != 2 || l.RefitRows != len(rows) {
		t.Fatalf("successor lineage = %+v, want version 2 over %d rows", l, len(rows))
	}

	// Independent from-scratch fit over the same accumulated rows with the
	// same dictionary seeding and config.
	snap := ss.accum.LatestSnapshot()
	if snap == nil || snap.NumRows() != len(rows) {
		t.Fatalf("accumulator snapshot has %d rows, want %d", snap.NumRows(), len(rows))
	}
	ds := snap.Clone()
	ds.Name = "refit"
	scratch, err := New(m.Config()).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	a, err := successor.ScoreRows(rows[:60])
	if err != nil {
		t.Fatal(err)
	}
	b, err := scratch.ScoreRows(rows[:60])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pred {
		for j := range a.Pred[i] {
			if a.Pred[i][j] != b.Pred[i][j] {
				t.Fatalf("refit verdict differs from from-scratch fit at (%d,%d)", i, j)
			}
			if math.Float64bits(a.Scores[i][j]) != math.Float64bits(b.Scores[i][j]) {
				t.Fatalf("refit score bits differ from from-scratch fit at (%d,%d)", i, j)
			}
		}
	}

	// Install hot-swaps: version advances and the gauges reset.
	if err := ss.Install(successor); err != nil {
		t.Fatal(err)
	}
	if _, v := ss.Model(); v != 2 {
		t.Fatalf("installed version = %d, want 2", v)
	}
	if g, _ := ss.Gauges(); g.Rows != 0 {
		t.Fatalf("gauges must reset on install, still carry %d rows", g.Rows)
	}
	if !ss.BeginRefit() {
		t.Fatal("install must reopen the refit slot")
	}
	ss.AbortRefit()
}

// TestStreamScorerRejectsDegenerate: degenerate models cannot stream.
func TestStreamScorerRejectsDegenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	clean := datasets.Hospital(60, 3).Clean
	dm, err := New(Config{LabelRate: 0.1, EmbedDim: 8, Seed: 3, Workers: 2}).Fit(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !dm.Degenerate() {
		t.Skip("clean fit unexpectedly non-degenerate")
	}
	if _, err := NewStreamScorer(dm, StreamConfig{}); err == nil {
		t.Fatal("degenerate model must be rejected")
	}
}
