package zeroed

// Tests for the Fit/Score split: Detect must be exactly Fit composed with
// Score (bit-identical verdicts and float64 score bits for any worker and
// shard count), ModelState must round-trip losslessly, and scoring new rows
// — including rows with values never seen during fitting — must be defined
// and deterministic.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/table"
)

// assertScoresIdentical compares predictions and scores bit-for-bit without
// requiring the diagnostic fields (Score-only results carry none).
func assertScoresIdentical(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if len(a.Pred) != len(b.Pred) || len(a.Scores) != len(b.Scores) {
		t.Fatalf("%s: result shape differs: %d/%d vs %d/%d rows",
			name, len(a.Pred), len(a.Scores), len(b.Pred), len(b.Scores))
	}
	for i := range a.Pred {
		for j := range a.Pred[i] {
			if a.Pred[i][j] != b.Pred[i][j] {
				t.Fatalf("%s: verdict differs at (%d,%d)", name, i, j)
			}
			if math.Float64bits(a.Scores[i][j]) != math.Float64bits(b.Scores[i][j]) {
				t.Fatalf("%s: score differs at (%d,%d): %.17g vs %.17g",
					name, i, j, a.Scores[i][j], b.Scores[i][j])
			}
		}
	}
}

// TestDetectEqualsFitScore pins the tentpole contract: Detect(ds) ≡
// Score(Fit(ds), ds), for Workers∈{1,8} crossed with shard settings.
// Detect's own worker/shard invariance is pinned by
// TestWorkerAndShardInvariance, so one Detect reference per dataset
// suffices; -short trims the matrix to keep the race-enabled CI job inside
// its budget.
func TestDetectEqualsFitScore(t *testing.T) {
	benches := detBenches()
	configs := []struct{ workers, shards int }{{1, 1}, {8, 3}, {8, 0}, {1, 4}}
	if testing.Short() {
		benches = benches[:1]
		configs = configs[1:2] // one parallel config; full mode covers the matrix
	}
	for _, bench := range benches {
		t.Run(bench.Name, func(t *testing.T) {
			det, err := New(detConfig(2, 0)).Detect(bench.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range configs {
				m, err := New(detConfig(tc.workers, tc.shards)).Fit(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				scored, err := m.Score(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("%s/w%d-s%d", bench.Name, tc.workers, tc.shards)
				assertScoresIdentical(t, name, det, scored)
				if m.Info().SampledCells != det.SampledCells ||
					m.Info().TrainingCells != det.TrainingCells ||
					m.Info().AugmentedErrs != det.AugmentedErrs ||
					m.Info().CriteriaCount != det.CriteriaCount ||
					m.Info().Usage != det.Usage {
					t.Fatalf("%s: fit diagnostics differ from Detect's", name)
				}
			}
		})
	}
}

// TestModelStateRoundTrip: State -> ModelFromState is lossless for scoring —
// the restored model (whose memo tables are rebuilt from the dictionaries
// rather than copied) scores bit-identically, for Workers∈{1,8}.
func TestModelStateRoundTrip(t *testing.T) {
	bench := datasets.Hospital(180, 7)
	m, err := New(detConfig(2, 0)).Fit(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ModelFromState(m.State())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		restored.SetParallelism(workers, 0)
		got, err := restored.Score(bench.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		assertScoresIdentical(t, "restored", want, got)
	}
}

// TestScoreRowsMatchesScore: scoring the fitting rows through the raw-tuple
// API returns exactly the dataset-path verdicts, and unseen values take the
// cold path without panicking.
func TestScoreRowsMatchesScore(t *testing.T) {
	bench := datasets.Hospital(160, 5)
	d := bench.Dirty
	m, err := New(detConfig(2, 0)).Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]string, d.NumRows())
	for i := range rows {
		rows[i] = d.Row(i)
	}
	got, err := m.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresIdentical(t, "score-rows", want, got)

	// Fresh rows with values the fit never interned: defined verdicts, and
	// deterministic across calls.
	novel := [][]string{
		append([]string(nil), rows[0]...),
		make([]string, d.NumCols()),
	}
	novel[0][0] = "value-never-seen-during-fit-xyzzy"
	for j := range novel[1] {
		novel[1][j] = "??totally-novel??"
	}
	a, err := m.ScoreRows(novel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ScoreRows(novel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pred) != 2 {
		t.Fatalf("scored %d rows, want 2", len(a.Pred))
	}
	assertScoresIdentical(t, "novel-rows", a, b)
}

// TestScoreWarmCacheEquivalence pins the model-lifetime warm cache: a
// second Score call (served largely from scores the first call computed)
// is bit-identical to the first, to a dedup-disabled model's scoring, and
// to Detect — including rows carrying values the fit never saw, which are
// excluded from the shared cache by the stable-ID check.
func TestScoreWarmCacheEquivalence(t *testing.T) {
	bench := datasets.Hospital(200, 7)
	cfg := detConfig(4, 0)
	det, err := New(cfg).Detect(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg).Fit(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := cfg
	cfgOff.DisableScoreDedup = true
	mOff, err := New(cfgOff).Fit(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	off, err := mOff.Score(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresIdentical(t, "cold-vs-detect", det, cold)
	assertScoresIdentical(t, "warm-vs-cold", cold, warm)
	assertScoresIdentical(t, "dedup-off", cold, off)

	novel := [][]string{bench.Dirty.Row(0), bench.Dirty.Row(1)}
	novel[1][0] = "warm-cache-novel-value"
	a, err := m.ScoreRows(novel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ScoreRows(novel) // second call hits the warm cache
	if err != nil {
		t.Fatal(err)
	}
	c, err := mOff.ScoreRows(novel)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresIdentical(t, "novel-warm", a, b)
	assertScoresIdentical(t, "novel-dedup-off", a, c)
}

// TestScoreInputValidation: schema and arity violations are errors, not
// panics.
func TestScoreInputValidation(t *testing.T) {
	bench := datasets.Hospital(150, 5)
	m, err := New(detConfig(1, 0)).Fit(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ScoreRows([][]string{{"too", "short"}}); err == nil {
		t.Error("short row accepted")
	}
	other := table.New("other", []string{"a", "b"})
	other.MustAppendRow([]string{"1", "2"})
	if _, err := m.Score(other); err == nil {
		t.Error("mismatched schema accepted")
	}
	if _, err := m.ScoreRows(nil); err == nil {
		t.Error("empty row set accepted")
	}
}

// TestFitDegenerate: a constant dataset yields a degenerate (label-replay)
// model whose Score still matches Detect on the fitting data, and whose
// state round-trips.
func TestFitDegenerate(t *testing.T) {
	d := table.New("const", []string{"a", "b"})
	for i := 0; i < 40; i++ {
		d.MustAppendRow([]string{"same", "thing"})
	}
	// Without verification there is no error augmentation, so an all-clean
	// labeling stays single-class and the fit degenerates to label replay.
	cfg := Config{Seed: 3, Workers: 2, DisableVerification: true}
	det, err := New(cfg).Detect(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg).Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degenerate() {
		t.Fatal("constant dataset fitted a non-degenerate model")
	}
	scored, err := m.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresIdentical(t, "degenerate", det, scored)
	restored, err := ModelFromState(m.State())
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	assertScoresIdentical(t, "degenerate-restored", det, again)
}
