package zeroed

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/criteria"
	"repro/internal/feature"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/table"
)

// Detect runs the full ZeroED pipeline on a dirty dataset and returns
// per-cell error predictions. It never consults ground truth.
func (dt *Detector) Detect(d *table.Dataset) (*Result, error) {
	start := time.Now()
	cfg := dt.cfg
	if d.NumRows() == 0 || d.NumCols() == 0 {
		return nil, fmt.Errorf("zeroed: empty dataset")
	}
	client := llm.NewClient(cfg.Profile)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	// ---- Step 1: feature representation with criteria reasoning ----
	ext := feature.NewExtractor(d, feature.Config{
		EmbedDim:          cfg.EmbedDim,
		CorrK:             cfg.CorrK,
		DisableCorrelated: cfg.DisableCorrelated,
		DisableCriteria:   cfg.DisableCriteria,
	})
	m := d.NumCols()
	// The "w/o Corr." ablation removes correlated-attribute calculation
	// everywhere: features, criteria reasoning, and guideline generation.
	corrFor := func(j int) []int {
		if cfg.DisableCorrelated {
			return nil
		}
		return ext.Correlated(j)
	}
	critSets := make([]*criteria.Set, m)
	if !cfg.DisableCriteria {
		// All criteria must exist before any clustering: attribute j's
		// features embed the criteria bits of its correlated attributes.
		parallelFor(m, cfg.Workers, func(j int) {
			arng := dt.attrRng(j, 1)
			sample := randomRows(arng, d.NumRows(), 30)
			critSets[j] = client.GenerateCriteria(d, j, sample, corrFor(j))
			ext.SetCriteria(j, critSets[j])
		})
		for j := 0; j < m; j++ {
			res.CriteriaCount += len(critSets[j].Criteria)
		}
	}

	// ---- Step 2: representative sampling + holistic LLM labeling ----
	n := d.NumRows()
	clustersPerAttr := int(float64(n) * cfg.LabelRate)
	if clustersPerAttr < 2 {
		clustersPerAttr = 2
	}
	if clustersPerAttr > cfg.MaxClustersPerAttr {
		clustersPerAttr = cfg.MaxClustersPerAttr
	}
	// On large datasets, cluster a seeded row sample instead of the whole
	// column; sampling/labeling/propagation live inside the sample,
	// prediction still covers every cell.
	clusterRows := seq(n)
	if n > cfg.ClusterSampleRows {
		clusterRows = randomRows(rng, n, cfg.ClusterSampleRows)
		sortInts(clusterRows)
	}
	if clustersPerAttr > len(clusterRows)/2 {
		clustersPerAttr = max(2, len(clusterRows)/2)
	}

	labeled := make([][]cellLabel, m) // LLM-labeled samples per attribute
	clusterings := make([]*cluster.Result, m)
	guidelines := make([]*llm.Guideline, m)
	sampledPerAttr := make([]int, m)
	parallelFor(m, cfg.Workers, func(j int) {
		arng := dt.attrRng(j, 2)
		feats := ext.ColumnFeatures(j, clusterRows)
		var cl *cluster.Result
		switch cfg.Sampler {
		case SamplerRandom:
			cl = cluster.RandomSample(feats, clustersPerAttr, arng)
		case SamplerAgglomerative:
			cl = cluster.Agglomerative(feats, clustersPerAttr, arng, 4*clustersPerAttr)
		default:
			cl = cluster.KMeans(feats, clustersPerAttr, arng, 8)
		}
		clusterings[j] = cl
		samples := cl.CentroidSamples(feats) // indices into clusterRows
		sampledPerAttr[j] = len(samples)

		sampleRows := make([]int, len(samples))
		for i, s := range samples {
			sampleRows[i] = clusterRows[s]
		}
		if !cfg.DisableGuidelines {
			prof := client.DistributionAnalysis(d, j, randomRows(arng, n, 20))
			guidelines[j] = client.GenerateGuideline(d, j, corrFor(j), prof, samplesHead(sampleRows, 20))
		}
		for s := 0; s < len(sampleRows); s += cfg.BatchSize {
			e := min(s+cfg.BatchSize, len(sampleRows))
			batch := sampleRows[s:e]
			verdicts := client.LabelBatch(d, j, batch, guidelines[j])
			for bi, row := range batch {
				labeled[j] = append(labeled[j], cellLabel{row: row, col: j, isErr: verdicts[bi]})
			}
		}
	})
	for _, s := range sampledPerAttr {
		res.SampledCells += s
	}

	// ---- Step 3: training data construction (Algorithm 1) ----
	training, synth := dt.buildTrainingData(d, client, ext, critSets, clusterings, clusterRows, labeled, rng)
	res.AugmentedErrs = len(synth)
	res.TrainingCells = len(training) + len(synth)

	// ---- Step 4: detector training and prediction ----
	dim := ext.Dim()
	total := len(training) + len(synth)
	flat := make([]float64, total*dim) // one block for all training vectors
	X := make([][]float64, 0, total)
	y := make([]float64, 0, total)
	for _, c := range training {
		f := flat[len(X)*dim : (len(X)+1)*dim]
		ext.FeatureInto(c.row, c.col, f)
		X = append(X, f)
		if c.isErr {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	for _, s := range synth {
		f := flat[len(X)*dim : (len(X)+1)*dim]
		featureWithSubstitution(ext, d, s, f)
		X = append(X, f)
		y = append(y, 1)
	}

	pred := newMask(d)
	scores := make([][]float64, d.NumRows())
	if hasBothClasses(y) {
		mlp := nn.New(ext.Dim(), cfg.MLP)
		if _, err := mlp.Train(X, y); err != nil {
			return nil, fmt.Errorf("zeroed: training detector: %w", err)
		}
		parallelFor(d.NumRows(), cfg.Workers, func(i int) {
			rowFeats := ext.RowFeatures(i)
			scores[i] = mlp.PredictBatch(rowFeats)
			for j, p := range scores[i] {
				pred[i][j] = p >= cfg.Threshold
			}
		})
	} else {
		// Degenerate labeling (all clean or all dirty): fall back to the
		// labels themselves propagated through clusters.
		for _, c := range training {
			pred[c.row][c.col] = c.isErr
		}
		for i := range scores {
			scores[i] = make([]float64, d.NumCols())
		}
	}

	res.Pred = pred
	res.Scores = scores
	res.Usage = client.Usage()
	res.Runtime = time.Since(start)
	return res, nil
}

// featureWithSubstitution computes the feature vector of a synthetic
// augmented-error cell by temporarily substituting the value in place.
// Frequency tables keep their original counts, which is the realistic
// treatment: a novel error value has (near-)zero observed frequency. The
// substituted value is interned into the column's pool past the
// extractor's memo tables, so its per-value quantities are computed on the
// fly.
func featureWithSubstitution(ext *feature.Extractor, d *table.Dataset, s syntheticCell, out []float64) {
	orig := d.Value(s.row, s.col)
	d.SetValue(s.row, s.col, s.value)
	ext.FeatureInto(s.row, s.col, out)
	d.SetValue(s.row, s.col, orig)
}

func hasBothClasses(y []float64) bool {
	var pos, neg bool
	for _, v := range y {
		if v > 0.5 {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

// randomRows draws k distinct row indices (or all rows when k >= n).
func randomRows(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return seq(n)
	}
	return rng.Perm(n)[:k]
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func samplesHead(xs []int, k int) []int {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}

func sortInts(xs []int) { sort.Ints(xs) }

// attrRng derives the deterministic random source for one attribute and
// pipeline phase, so parallel execution and sequential execution produce
// identical results.
func (dt *Detector) attrRng(attr, phase int) *rand.Rand {
	return rand.New(rand.NewSource(dt.cfg.Seed + int64(attr)*7919 + int64(phase)*104729))
}

// parallelFor runs fn(0..n-1) across at most workers goroutines. Every
// iteration owns disjoint state (per-attribute slots or per-row outputs),
// so no synchronization beyond the join is needed.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
