package zeroed

// The deterministic-parallelism suite: the engine promises that worker
// count, scoring-shard count, and batch scheduling change wall-clock only —
// never results. These tests pin that promise bit-for-bit: predictions are
// compared cell by cell and scores both bitwise and as a score sum rendered
// to 17 significant digits (float64 round-trip precision).

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/datasets"
	"repro/internal/table"
)

// detBenches are small Hospital and Beers subsets; both run fast enough for
// the race-enabled CI job while exercising every pipeline stage.
func detBenches() []*datasets.Bench {
	return []*datasets.Bench{
		datasets.Hospital(240, 7),
		datasets.Beers(260, 11),
	}
}

// detConfig is the suite's seeded base configuration.
func detConfig(workers, shards int) Config {
	return Config{
		LabelRate: 0.08,
		EmbedDim:  16,
		Seed:      7,
		Workers:   workers,
		Shards:    shards,
	}
}

// scoreSum17 renders the ordered sum of every cell score to 17 significant
// digits — enough to distinguish any two different float64 values.
func scoreSum17(res *Result) string {
	var sum float64
	for _, row := range res.Scores {
		for _, s := range row {
			sum += s
		}
	}
	return fmt.Sprintf("%.17g", sum)
}

// assertResultsIdentical compares two results bit-for-bit: every verdict,
// every score (as raw float64 bits), and the diagnostics.
func assertResultsIdentical(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if len(a.Pred) != len(b.Pred) || len(a.Scores) != len(b.Scores) {
		t.Fatalf("%s: result shape differs: %d/%d vs %d/%d rows",
			name, len(a.Pred), len(a.Scores), len(b.Pred), len(b.Scores))
	}
	for i := range a.Pred {
		for j := range a.Pred[i] {
			if a.Pred[i][j] != b.Pred[i][j] {
				t.Fatalf("%s: verdict differs at (%d,%d)", name, i, j)
			}
			if math.Float64bits(a.Scores[i][j]) != math.Float64bits(b.Scores[i][j]) {
				t.Fatalf("%s: score differs at (%d,%d): %.17g vs %.17g",
					name, i, j, a.Scores[i][j], b.Scores[i][j])
			}
		}
	}
	if sa, sb := scoreSum17(a), scoreSum17(b); sa != sb {
		t.Fatalf("%s: score sums differ to 17 digits: %s vs %s", name, sa, sb)
	}
	if a.SampledCells != b.SampledCells || a.TrainingCells != b.TrainingCells ||
		a.AugmentedErrs != b.AugmentedErrs || a.CriteriaCount != b.CriteriaCount {
		t.Fatalf("%s: diagnostics differ: %+v vs %+v", name, a, b)
	}
	if a.Usage != b.Usage {
		t.Fatalf("%s: LLM usage differs: %+v vs %+v", name, a.Usage, b.Usage)
	}
}

// TestWorkerAndShardInvariance is the core determinism guarantee: seeded
// Detect produces byte-identical results for Workers=1 vs Workers=8 and for
// Shards=1 vs Shards=4.
func TestWorkerAndShardInvariance(t *testing.T) {
	for _, bench := range detBenches() {
		t.Run(bench.Name, func(t *testing.T) {
			ref, err := New(detConfig(1, 1)).Detect(bench.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct {
				name            string
				workers, shards int
			}{
				{"workers8/shards1", 8, 1},
				{"workers1/shards4", 1, 4},
				{"workers8/shards4", 8, 4},
				{"workers3/shardsAuto", 3, 0},
			} {
				got, err := New(detConfig(tc.workers, tc.shards)).Detect(bench.Dirty)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, tc.name, ref, got)
			}
			t.Logf("%s: score sum %s invariant across workers and shards", bench.Name, scoreSum17(ref))
		})
	}
}

// TestDetectBatchMatchesDetect pins the batch guarantee: multiplexing
// several datasets over one shared pool returns, per dataset, exactly what
// an individual Detect returns.
func TestDetectBatchMatchesDetect(t *testing.T) {
	benches := detBenches()
	ds := make([]*table.Dataset, len(benches))
	for i, b := range benches {
		// Clone: Detect runs feature substitution in place, so the batch
		// and individual runs must each own their copy to stay independent
		// in this test's concurrent setting.
		ds[i] = b.Dirty.Clone()
	}
	det := New(detConfig(4, 0))
	batch, err := det.DetectBatch(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range benches {
		solo, err := New(detConfig(2, 2)).Detect(b.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "batch:"+b.Name, solo, batch[i])
	}
}

// TestDetectShardsDeterministic covers the independent-model sharding mode:
// fixed shard count ⇒ identical merged results for any worker count, full
// row coverage, and summed diagnostics.
func TestDetectShardsDeterministic(t *testing.T) {
	bench := datasets.Hospital(300, 7)
	run := func(workers int) *Result {
		res, err := New(detConfig(workers, 0)).DetectShards(bench.Dirty, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)
	if len(a.Pred) != bench.Dirty.NumRows() {
		t.Fatalf("merged mask has %d rows, want %d", len(a.Pred), bench.Dirty.NumRows())
	}
	for _, row := range a.Pred {
		if len(row) != bench.Dirty.NumCols() {
			t.Fatalf("merged mask row has %d cols, want %d", len(row), bench.Dirty.NumCols())
		}
	}
	assertResultsIdentical(t, "shards4 workers1-vs-8", a, b)
	if a.Usage.Calls == 0 || a.SampledCells == 0 {
		t.Error("merged diagnostics missing")
	}
}

// TestDetectShardsSingleEqualsDetect: one shard is exactly Detect.
func TestDetectShardsSingleEqualsDetect(t *testing.T) {
	bench := datasets.Hospital(180, 5)
	full, err := New(detConfig(2, 0)).Detect(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	one, err := New(detConfig(2, 0)).DetectShards(bench.Dirty, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "shards1", full, one)
}

// TestWorkersNormalizedOnce: the Workers default is applied in the single
// withDefaults normalization spot.
func TestWorkersNormalizedOnce(t *testing.T) {
	if got, want := New(Config{}).Config().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Workers = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(Config{Workers: -3}).Config().Workers; got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative Workers normalized to %d, want GOMAXPROCS", got)
	}
	if got := New(Config{Workers: 5}).Config().Workers; got != 5 {
		t.Errorf("explicit Workers = %d, want 5", got)
	}
}

// TestShardRangesPartition: shardRanges covers [0, n) exactly once, in
// order, for a spread of shapes.
func TestShardRangesPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {1, 8}, {5, 2}, {7, 7}, {10, 3}, {100, 16}, {101, 16},
	} {
		ranges := shardRanges(tc.n, tc.shards)
		next := 0
		for _, r := range ranges {
			if r.lo != next || r.hi <= r.lo {
				t.Fatalf("shardRanges(%d,%d): bad range %+v at cursor %d", tc.n, tc.shards, r, next)
			}
			next = r.hi
		}
		if next != tc.n {
			t.Fatalf("shardRanges(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.shards, next, tc.n)
		}
		if len(ranges) > tc.shards {
			t.Fatalf("shardRanges(%d,%d) produced %d ranges", tc.n, tc.shards, len(ranges))
		}
	}
}

// TestPoolNestedForN exercises the shared pool under nesting (the
// DetectBatch shape) and checks full coverage without deadlock even when
// the budget is saturated.
func TestPoolNestedForN(t *testing.T) {
	pool := newWorkPool(3)
	outer, inner := 8, 64
	hits := make([][]int32, outer)
	for i := range hits {
		hits[i] = make([]int32, inner)
	}
	pool.forN(outer, func(i int) {
		pool.forN(inner, func(j int) {
			hits[i][j]++
		})
	})
	for i := range hits {
		for j := range hits[i] {
			if hits[i][j] != 1 {
				t.Fatalf("unit (%d,%d) ran %d times, want exactly once", i, j, hits[i][j])
			}
		}
	}
}
