// Package zeroed implements the paper's primary contribution: the ZeroED
// hybrid zero-shot error detection framework (Section III). The pipeline
// runs in four steps — error-reason-aware feature representation,
// clustering-based sampling with holistic LLM labeling, training-data
// construction with mutual verification and augmentation (Algorithm 1),
// and MLP detector training — and requires no pre-existing labels or
// criteria. The LLM substrate is injectable (see internal/llm), and every
// design choice the paper ablates is a configuration flag.
package zeroed

import (
	"runtime"
	"time"

	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/table"
)

// Sampler selects the clustering strategy for representative sampling
// (the Table VI comparison).
type Sampler string

// Sampling strategies.
const (
	SamplerKMeans        Sampler = "kmeans"
	SamplerAgglomerative Sampler = "agc"
	SamplerRandom        Sampler = "random"
)

// Config controls a ZeroED run. Zero values select the paper's defaults.
type Config struct {
	// LabelRate is the fraction of tuples sampled per attribute for LLM
	// labeling; the per-attribute cluster count is rows*LabelRate
	// (default 0.05, the paper's default).
	LabelRate float64
	// CorrK is the number of correlated attributes (default 2).
	CorrK int
	// EmbedDim is the semantic embedding width (default 32).
	EmbedDim int
	// Sampler selects the sampling strategy (default k-means).
	Sampler Sampler
	// Profile selects the simulated LLM (default Qwen2.5-72b).
	Profile llm.Profile
	// BatchSize is the labeling batch size in tuples (default 20).
	BatchSize int
	// MLP configures the detector network.
	MLP nn.Config
	// Threshold is the error-probability decision threshold (default 0.4;
	// the MLP is precision-heavy, so a sub-0.5 threshold trades surplus
	// precision for recall).
	Threshold float64
	// Seed drives sampling and training randomness.
	Seed int64
	// Workers bounds pipeline parallelism. Zero or negative means
	// runtime.GOMAXPROCS(0); withDefaults normalizes it, so everything
	// downstream can assume Workers >= 1. One bounded worker pool of this
	// size is shared by every stage of a run (and by every run of a
	// DetectBatch). Results are bit-identical regardless of worker count:
	// every stochastic step uses a per-(attribute, phase) derived stream
	// and writes disjoint output slots.
	Workers int
	// Shards partitions the scoring pass (per-row feature extraction + MLP
	// inference over every cell) into contiguous row shards that are
	// scheduled as independent units on the shared pool, then merged into
	// one verdict mask. Zero means auto (a few shards per worker). The
	// fitted model is shared by all shards, so output is bit-identical for
	// every shard count; see Detector.DetectShards for the
	// independent-model-per-shard alternative.
	Shards int
	// DisableScoreDedup turns off the scoring dedup cache. By default each
	// scoring shard memoizes cell scores behind the cell's value-ID tuple
	// over its feature dependency columns (feature.DepCols), so repeated
	// (value, correlated-context) combinations — common after value
	// interning — are featurized and scored once per shard. Cached scores
	// are the exact float64 the model would recompute, so results are
	// bit-identical with the cache on or off (pinned by
	// TestScoreDedupEquivalence); the flag exists for benchmarking and as
	// an escape hatch.
	DisableScoreDedup bool
	// DisableFitDedup turns off the fit-phase dedup caches. By default the
	// fit stages memoize per value-ID wherever a computation is provably a
	// function of the participating value IDs: criteria verdicts during
	// verification and training-cell selection (keyed by the cell's own
	// value ID, plus the FD determinant's ID for row-dependent criteria) and
	// guideline-driven label judgements (keyed by the cell's own value ID
	// plus its FD determinants' IDs). Batch-context labeling (the
	// "w/o Guid." ablation) is inherently batch-dependent and is never
	// cached. Cached entries are the exact values the stages would
	// recompute, so fitting is bit-identical with the caches on or off
	// (pinned by TestFitDedupEquivalence); the flag exists for benchmarking
	// and as an escape hatch.
	DisableFitDedup bool

	// MaxPropagatedPerAttr caps in-cluster label propagation per attribute
	// to bound training-set size on large datasets (default 2000).
	MaxPropagatedPerAttr int
	// ClusterSampleRows bounds the rows participating in clustering and
	// propagation per attribute (default 6000). On larger datasets a
	// seeded row sample is clustered instead of the full column; labeling,
	// propagation, and training stay within the sample while prediction
	// covers every cell. This keeps the k-means cost independent of
	// dataset size, which is what makes Tax-scale runs tractable.
	ClusterSampleRows int
	// MaxClustersPerAttr caps the per-attribute cluster count so the LLM
	// labeling budget stays bounded on very large datasets (default 500).
	MaxClustersPerAttr int
	// AugmentPerAttr caps LLM error augmentation per attribute
	// (default 300).
	AugmentPerAttr int

	// Ablations (Table IV).
	DisableGuidelines   bool // w/o Guid.: label without ED guidelines
	DisableCriteria     bool // w/o Crit.: no criteria reasoning features
	DisableCorrelated   bool // w/o Corr.: no correlated-attribute context
	DisableVerification bool // w/o Veri.: no refinement/verification/augmentation
	DisablePropagation  bool // extra ablation: train on LLM labels only
}

// withDefaults fills unset fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.LabelRate <= 0 {
		c.LabelRate = 0.05
	}
	if c.CorrK <= 0 {
		c.CorrK = 2
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 32
	}
	if c.Sampler == "" {
		c.Sampler = SamplerKMeans
	}
	if c.Profile.Name == "" {
		c.Profile = llm.Qwen72B
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.4
	}
	if c.MaxPropagatedPerAttr <= 0 {
		c.MaxPropagatedPerAttr = 2000
	}
	if c.ClusterSampleRows <= 0 {
		c.ClusterSampleRows = 6000
	}
	if c.MaxClustersPerAttr <= 0 {
		c.MaxClustersPerAttr = 500
	}
	if c.AugmentPerAttr <= 0 {
		c.AugmentPerAttr = 300
	}
	if c.MLP.Hidden1 == 0 {
		c.MLP = nn.DefaultConfig()
		c.MLP.Epochs = 12
	}
	c.MLP.Seed = c.Seed + 101
	// The one spot that normalizes the worker budget; no other code checks
	// for Workers <= 0.
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// shardCount resolves the scoring-shard count for an n-row dataset: the
// configured Shards, defaulting to a few shards per worker so the pool can
// balance uneven shard costs, and never more than the row count.
func (c Config) shardCount(n int) int {
	s := c.Shards
	if s <= 0 {
		s = 4 * c.Workers
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Result is the outcome of one detection run.
type Result struct {
	// Pred[i][j] is true when cell (i,j) is predicted erroneous.
	Pred [][]bool
	// Scores[i][j] is the MLP's error probability (present when the run
	// reaches detector training).
	Scores [][]float64
	// Usage is the LLM token accounting for the whole run.
	Usage llm.Usage
	// Runtime is the end-to-end wall-clock duration.
	Runtime time.Duration
	// Diagnostics.
	SampledCells  int
	TrainingCells int
	AugmentedErrs int
	CriteriaCount int
}

// Detector runs the ZeroED pipeline.
type Detector struct {
	cfg Config
}

// New creates a detector; unset config fields assume the paper's defaults.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (dt *Detector) Config() Config { return dt.cfg }

// cellLabel is one labeled training cell.
type cellLabel struct {
	row, col int
	isErr    bool
}

// syntheticCell is an augmented error: a clean row with one substituted
// dirty value, used only as a training example.
type syntheticCell struct {
	row, col int
	value    string
}

// newMask allocates a rows x cols boolean matrix over one flat backing
// block (two allocations total, not rows+1).
func newMask(d *table.Dataset) [][]bool {
	rows, cols := d.NumRows(), d.NumCols()
	flat := make([]bool, rows*cols)
	m := make([][]bool, rows)
	for i := range m {
		m[i] = flat[i*cols : (i+1)*cols]
	}
	return m
}

// newMatrix allocates a rows x cols float64 matrix over one flat backing
// block; the scoring shards fill disjoint row ranges of it in place.
func newMatrix(rows, cols int) [][]float64 {
	flat := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i] = flat[i*cols : (i+1)*cols]
	}
	return m
}
