package zeroed

import (
	"testing"
	"time"
)

// TestRefitBackoffAndBreaker pins the failure-containment contract: each
// failed refit pushes the next attempt out exponentially, enough failures
// open the breaker, and a successful Install resets everything.
func TestRefitBackoffAndBreaker(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	m, _ := fitStreamModel(t)
	now := time.Unix(1000, 0)
	ss, err := NewStreamScorer(m, StreamConfig{
		RefitBackoffBase:  time.Second,
		RefitBackoffMax:   4 * time.Second,
		RefitBreakerAfter: 3,
		Clock:             func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	allowed := func() bool {
		ss.mu.Lock()
		defer ss.mu.Unlock()
		return ss.refitAllowedLocked()
	}
	fail := func() {
		t.Helper()
		if !ss.BeginRefit() {
			t.Fatal("refit slot not free")
		}
		ss.AbortRefit()
	}

	if !allowed() {
		t.Fatal("fresh scorer blocks refits")
	}

	// Failure 1: 1s backoff.
	fail()
	h := ss.RefitHealth()
	if h.ConsecutiveFailures != 1 || h.BreakerOpen || !h.BackoffUntil.Equal(now.Add(time.Second)) {
		t.Fatalf("after failure 1: %+v", h)
	}
	if allowed() {
		t.Fatal("refit allowed inside backoff window")
	}
	now = now.Add(time.Second)
	if !allowed() {
		t.Fatal("refit blocked after backoff elapsed")
	}

	// Failure 2: backoff doubles.
	fail()
	if h = ss.RefitHealth(); !h.BackoffUntil.Equal(now.Add(2 * time.Second)) {
		t.Fatalf("after failure 2: %+v, want 2s backoff", h)
	}
	now = now.Add(2 * time.Second)

	// Failure 3: breaker opens; no amount of waiting reopens it.
	fail()
	if h = ss.RefitHealth(); !h.BreakerOpen || h.ConsecutiveFailures != 3 {
		t.Fatalf("after failure 3: %+v, want open breaker", h)
	}
	now = now.Add(time.Hour)
	if allowed() {
		t.Fatal("open breaker still allows refits")
	}

	// A successful (here: manual) install closes the breaker and clears the
	// counters — the model slot is healthy again.
	if !ss.BeginRefit() {
		t.Fatal("breaker must not block an operator-driven refit slot claim")
	}
	if err := ss.Install(m); err != nil {
		t.Fatal(err)
	}
	if h = ss.RefitHealth(); h.ConsecutiveFailures != 0 || h.BreakerOpen || !h.BackoffUntil.IsZero() {
		t.Fatalf("after install: %+v, want reset health", h)
	}
	if !allowed() {
		t.Fatal("refits blocked after successful install")
	}
}

// TestRefitBackoffCaps pins the RefitBackoffMax clamp.
func TestRefitBackoffCaps(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	m, _ := fitStreamModel(t)
	now := time.Unix(0, 0)
	ss, err := NewStreamScorer(m, StreamConfig{
		RefitBackoffBase:  time.Second,
		RefitBackoffMax:   3 * time.Second,
		RefitBreakerAfter: -1, // disabled: backoff alone contains the loop
		Clock:             func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !ss.BeginRefit() {
			t.Fatal("refit slot not free")
		}
		ss.AbortRefit()
	}
	h := ss.RefitHealth()
	if h.BreakerOpen {
		t.Fatalf("breaker opened while disabled: %+v", h)
	}
	if !h.BackoffUntil.Equal(now.Add(3 * time.Second)) {
		t.Fatalf("backoff %v, want capped at 3s", h.BackoffUntil.Sub(now))
	}
}
