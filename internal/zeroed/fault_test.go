package zeroed

// Fault-injection determinism: transient LLM-judge failures retried to
// success must not move a single bit of the result — verdicts, float64
// score bits, or token accounting. This is the determinism half of the
// chaos acceptance contract (see internal/faultpoint and internal/retry).

import (
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/faultpoint"
)

func TestDetectBitIdenticalUnderTransientJudgeFaults(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	bench := datasets.Hospital(180, 7)
	cfg := detConfig(2, 1)

	clean, err := New(cfg).Detect(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}

	// Arm a budget of transient faults: the first 3 labeling calls fail
	// before charging tokens, then the backend "recovers".
	if err := faultpoint.Arm("llm.judge.transient", "error(3)"); err != nil {
		t.Fatal(err)
	}
	faulted, err := New(cfg).Detect(bench.Dirty)
	if err != nil {
		t.Fatalf("Detect under transient faults: %v", err)
	}
	if hits := faultpoint.Hits("llm.judge.transient"); hits != 3 {
		t.Fatalf("judge failpoint injected %d faults, want 3 (fault path not exercised)", hits)
	}

	assertResultsIdentical(t, "transient-faults", clean, faulted)
	if clean.Usage != faulted.Usage {
		t.Fatalf("token usage drifted under retries: %+v vs %+v (failed attempts must not charge)",
			clean.Usage, faulted.Usage)
	}
}

func TestFitFailsCleanlyWhenRetriesExhausted(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Arm("llm.judge.transient", "error"); err != nil {
		t.Fatal(err)
	}
	bench := datasets.Hospital(120, 3)
	_, err := New(detConfig(2, 1)).Fit(bench.Dirty)
	if err == nil {
		t.Fatal("Fit succeeded with the judge permanently failing")
	}
	if !strings.Contains(err.Error(), "labeling") {
		t.Fatalf("Fit error %q does not name the labeling stage", err)
	}
}
