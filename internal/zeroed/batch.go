package zeroed

import (
	"context"
	"fmt"
	"time"

	"repro/internal/table"
)

// DetectBatch runs the full pipeline on several datasets, multiplexing
// every stage of every run over one shared bounded worker pool of
// Config.Workers workers. Each dataset is detected with the detector's own
// (defaulted) configuration and seed, so DetectBatch(ds)[i] is bit-identical
// to Detect(ds[i]) — batching changes scheduling, never results. Token
// usage is accounted per dataset, as if each had its own client.
//
// The entries of ds must be distinct datasets (not the same object twice):
// synthetic-error featurization temporarily substitutes values in place,
// so concurrent runs may not share a dataset. Clone to detect one dataset
// under several slots.
func (dt *Detector) DetectBatch(ds []*table.Dataset) ([]*Result, error) {
	return dt.DetectBatchContext(context.Background(), ds)
}

// DetectBatchContext is DetectBatch with cooperative cancellation; a
// canceled context aborts every run of the batch.
func (dt *Detector) DetectBatchContext(ctx context.Context, ds []*table.Dataset) ([]*Result, error) {
	pool := newWorkPool(dt.cfg.Workers)
	results := make([]*Result, len(ds))
	errs := make([]error, len(ds))
	pool.forN(len(ds), func(i int) {
		results[i], errs[i] = dt.detect(ctx, ds[i], pool)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("zeroed: dataset %d (%s): %w", i, ds[i].Name, err)
		}
	}
	return results, nil
}

// DetectShards partitions the dataset into the given number of contiguous
// row shards (via CompactSubsetRows), runs the full pipeline independently
// on every shard concurrently over one shared pool, and merges the
// per-cell verdicts, scores, and usage back into a single Result with the
// original row indexing.
//
// This is the high-throughput mode for data that arrives in independent
// chunks (a streaming CSV load, a partitioned table): each shard fits its
// own criteria, labels, and detector from its own rows, and shard
// dictionaries are compacted to the shard's own values, so clustering, LLM
// labeling budget, and per-value memo tables all stay proportional to the
// shard, not the dataset. It trades the
// whole-dataset statistics away — unlike Config.Shards, which shares one
// fitted model across scoring shards and is guaranteed bit-identical to an
// unsharded run, DetectShards verdicts may differ from Detect's. For a
// fixed shard count the merged result is still deterministic and
// independent of worker count.
func (dt *Detector) DetectShards(d *table.Dataset, shards int) (*Result, error) {
	if shards > d.NumRows() {
		shards = d.NumRows()
	}
	if shards <= 1 {
		return dt.Detect(d)
	}
	start := time.Now()
	ranges := shardRanges(d.NumRows(), shards)
	parts := make([]*table.Dataset, len(ranges))
	for s, r := range ranges {
		rows := make([]int, 0, r.hi-r.lo)
		for i := r.lo; i < r.hi; i++ {
			rows = append(rows, i)
		}
		parts[s] = d.CompactSubsetRows(rows)
	}
	results, err := dt.DetectBatch(parts)
	if err != nil {
		return nil, err
	}
	merged := &Result{
		Pred:   make([][]bool, 0, d.NumRows()),
		Scores: make([][]float64, 0, d.NumRows()),
	}
	for _, r := range results {
		merged.Pred = append(merged.Pred, r.Pred...)
		merged.Scores = append(merged.Scores, r.Scores...)
		merged.Usage.Add(r.Usage)
		merged.SampledCells += r.SampledCells
		merged.TrainingCells += r.TrainingCells
		merged.AugmentedErrs += r.AugmentedErrs
		merged.CriteriaCount += r.CriteriaCount
	}
	merged.Runtime = time.Since(start)
	return merged, nil
}
