//go:build !race

package zeroed

// raceEnabled reports whether this test binary runs under the race
// detector; see race_test.go.
const raceEnabled = false
