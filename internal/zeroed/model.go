package zeroed

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/table"
)

// Model is a fitted ZeroED detector: everything the cheap Score phase needs,
// detached from the expensive Fit phase that produced it — the trained MLP,
// the feature extractor's per-value-ID memo state, the induced (refined)
// criteria, the column dictionaries and frequency statistics of the fitting
// data, and the configuration and seed of the run.
//
// Contract: Detect(ds) ≡ Score(Fit(ds), ds) bit-for-bit (verdicts and
// float64 score bits, for any worker and shard count), and a model that
// round-trips through the internal/model artifact codec scores
// bit-identically to the in-memory original. New rows are scored by
// interning their values into the model's dictionaries: values seen during
// fitting resolve to their fit-time IDs and replay the memoized feature
// path, unseen values take the extractor's defined cold path (zero
// frequency, on-the-fly embedding, by-string criteria evaluation).
//
// A Model is safe for concurrent scoring: every Score call binds its own
// scoring dataset and the shared memo tables are read-only.
type Model struct {
	cfg     Config
	attrs   []string
	dicts   [][]string // per-column intern pools at fit time, capacity-clamped
	fitRows int
	ext     *feature.Extractor
	mlp     *nn.MLP // nil on a degenerate fit (single-class training data)
	// fallback carries the propagated labels of a degenerate fit; Score
	// applies them positionally, so they are only meaningful when scoring
	// the fitting dataset itself.
	fallback []FallbackLabel
	info     FitInfo
	lineage  Lineage

	// cacheOnce/cache is the model-lifetime warm score cache: value-ID
	// tuples over feature.DepCols are stable across every dataset bound to
	// the model's dictionaries, so scores computed in one Score call replay
	// bit-identically in later ones. Built lazily on first scoring use;
	// disabled by Config.DisableScoreDedup.
	cacheOnce sync.Once
	cache     *sharedScoreCache
}

// FitInfo is the diagnostic record of the fit that produced a model.
type FitInfo struct {
	SampledCells  int
	TrainingCells int
	AugmentedErrs int
	CriteriaCount int
	Usage         llm.Usage
	FitRuntime    time.Duration
	// Stages is the per-stage wall time and allocation breakdown of the fit
	// (extractor, criteria, sample_label, traindata, matrix, train), in
	// pipeline order. Diagnostics of the fitting process, not scoring state:
	// the artifact codec deliberately does not serialize it, so a restored
	// model reports no stage breakdown.
	Stages []StageTiming
}

// StageTiming records the wall-clock duration and allocation volume of one
// fit pipeline stage. AllocBytes is the runtime's cumulative-allocation
// delta across the stage (bytes allocated, not bytes retained).
type StageTiming struct {
	Name       string
	Seconds    float64
	AllocBytes uint64
}

// FallbackLabel is one propagated training label of a degenerate fit
// (single-class training data, no trainable detector).
type FallbackLabel struct {
	Row, Col int
	IsErr    bool
}

// Lineage records where a model sits in a refit chain. A freshly fitted
// model is version 1 with no refit provenance; a drift-triggered successor
// carries its predecessor's version plus one and the row count of the
// accumulated stream it was refitted on.
type Lineage struct {
	// Version is 1-based; 0 (a pre-lineage artifact) reads as version 1.
	Version int
	// RefitRows is the accumulated-stream row count a refit trained on;
	// 0 for an original fit.
	RefitRows int
}

// Fit runs the expensive phase of the pipeline — criteria induction,
// clustering-based sampling, LLM labeling, training-data construction, and
// detector training — and returns a reusable fitted model. Fit never scores
// the dataset; compose with Score, or use Detect for the one-shot form.
func (dt *Detector) Fit(d *table.Dataset) (*Model, error) {
	return dt.FitContext(context.Background(), d)
}

// FitContext is Fit with cooperative cancellation, with the same
// checkpoints as DetectContext.
func (dt *Detector) FitContext(ctx context.Context, d *table.Dataset) (*Model, error) {
	return dt.fit(ctx, d, newWorkPool(dt.cfg.Workers))
}

// FitOn runs Fit on an externally owned shared pool (NewPool), for serving
// layers that multiplex many fits over one machine-wide worker budget.
func (dt *Detector) FitOn(ctx context.Context, p *Pool, d *table.Dataset) (*Model, error) {
	return dt.fit(ctx, d, p.wp)
}

// Attrs returns the schema the model was fitted on.
func (m *Model) Attrs() []string { return m.attrs }

// FitRows returns the row count of the fitting dataset.
func (m *Model) FitRows() int { return m.fitRows }

// Config returns the effective configuration of the fit.
func (m *Model) Config() Config { return m.cfg }

// Info returns the fit diagnostics.
func (m *Model) Info() FitInfo { return m.info }

// Degenerate reports whether the fit found only one label class and the
// model therefore scores by replaying propagated labels instead of a
// trained detector.
func (m *Model) Degenerate() bool { return m.mlp == nil }

// Lineage returns the model's position in its refit chain. Models fitted
// before lineage existed (or restored from version-1 artifacts) report
// version 1.
func (m *Model) Lineage() Lineage {
	l := m.lineage
	if l.Version <= 0 {
		l.Version = 1
	}
	return l
}

// SetLineage stamps the refit provenance onto a model, which the streaming
// refit path does before persisting a successor artifact. It does not
// affect scoring.
func (m *Model) SetLineage(l Lineage) { m.lineage = l }

// SetParallelism overrides the worker and shard counts used by subsequent
// Score calls — scheduling knobs only; results are bit-identical for any
// setting. Zero or negative workers means GOMAXPROCS, zero shards means
// auto, mirroring Config.
func (m *Model) SetParallelism(workers, shards int) {
	c := m.cfg
	c.Workers = workers
	c.Shards = shards
	m.cfg = c.withDefaults()
}

// Score runs the cheap phase on a dataset with the model's schema: every
// cell is featurized against the model's memo state and scored by the
// fitted detector, with no criteria induction, sampling, labeling, or
// training. The returned Result carries Pred, Scores, and the scoring
// Runtime; fit diagnostics live in Info.
func (m *Model) Score(d *table.Dataset) (*Result, error) {
	return m.ScoreContext(context.Background(), d)
}

// ScoreContext is Score with cooperative cancellation (checked per scoring
// shard unit and every few hundred rows within a shard).
func (m *Model) ScoreContext(ctx context.Context, d *table.Dataset) (*Result, error) {
	return m.scoreOn(ctx, newWorkPool(m.cfg.Workers), d)
}

// ScoreOn is Score on an externally owned shared pool (NewPool).
func (m *Model) ScoreOn(ctx context.Context, p *Pool, d *table.Dataset) (*Result, error) {
	return m.scoreOn(ctx, p.wp, d)
}

// ScoreRows scores raw tuples (in the model's attribute order) without an
// intermediate dataset: rows are interned directly into a dataset bound to
// the model's dictionaries. A row whose arity does not match the schema is
// rejected.
func (m *Model) ScoreRows(rows [][]string) (*Result, error) {
	return m.ScoreRowsContext(context.Background(), rows)
}

// ScoreRowsContext is ScoreRows with cooperative cancellation.
func (m *Model) ScoreRowsContext(ctx context.Context, rows [][]string) (*Result, error) {
	return m.scoreRowsOn(ctx, newWorkPool(m.cfg.Workers), rows)
}

// ScoreRowsOn is ScoreRows on an externally owned shared pool.
func (m *Model) ScoreRowsOn(ctx context.Context, p *Pool, rows [][]string) (*Result, error) {
	return m.scoreRowsOn(ctx, p.wp, rows)
}

// bind creates the empty scoring dataset seeded with the model's
// dictionaries, so appended rows intern seen values to their fit-time IDs.
func (m *Model) bind() (*table.Dataset, error) {
	return table.NewFromDicts("score", m.attrs, m.dicts)
}

// checkSchema verifies that a dataset's attributes match the fitted schema
// exactly (same names, same order).
func (m *Model) checkSchema(attrs []string) error {
	if len(attrs) != len(m.attrs) {
		return fmt.Errorf("zeroed: dataset has %d attributes, model was fitted on %d", len(attrs), len(m.attrs))
	}
	for j, a := range attrs {
		if a != m.attrs[j] {
			return fmt.Errorf("zeroed: attribute %d is %q, model was fitted on %q", j, a, m.attrs[j])
		}
	}
	return nil
}

// scoreOn re-interns the dataset's cells against the model's dictionaries
// and scores the bound copy. For the fitting dataset this reproduces the
// fit-time value IDs exactly (the pools were captured from it), which is
// what makes Detect ≡ Fit + Score bit-identical.
func (m *Model) scoreOn(ctx context.Context, pool *workPool, d *table.Dataset) (*Result, error) {
	if err := m.checkSchema(d.Attrs); err != nil {
		return nil, err
	}
	sd, err := m.bind()
	if err != nil {
		return nil, err
	}
	_, bindSpan := obs.Start(ctx, "score.bind")
	row := make([]string, d.NumCols())
	for i := 0; i < d.NumRows(); i++ {
		for j := range row {
			row[j] = d.Value(i, j)
		}
		sd.MustAppendRow(row)
	}
	bindSpan.End()
	return m.scoreBound(ctx, pool, sd)
}

func (m *Model) scoreRowsOn(ctx context.Context, pool *workPool, rows [][]string) (*Result, error) {
	sd, err := m.bind()
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := sd.AppendRow(r); err != nil {
			return nil, fmt.Errorf("zeroed: row %d: %w", i, err)
		}
	}
	return m.scoreBound(ctx, pool, sd)
}

// scoreBound scores every cell of a dataset already bound to the model's
// dictionaries. Scoring is sharded exactly as in the engine: contiguous row
// shards run as independent units on the pool, each with its own fused
// shardScorer over the shared rebound extractor and fitted MLP, writing
// disjoint row ranges — bit-identical for every worker and shard count, and
// for dedup on vs off.
func (m *Model) scoreBound(ctx context.Context, pool *workPool, sd *table.Dataset) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	n, cols := sd.NumRows(), sd.NumCols()
	if n == 0 || cols == 0 {
		return nil, fmt.Errorf("zeroed: empty dataset")
	}
	ctx, scoreSpan := obs.Start(ctx, "score")
	defer scoreSpan.End()
	scoreSpan.SetInt("rows", int64(n))
	scoreSpan.SetInt("cols", int64(cols))
	pred := newMask(sd)
	scores := newMatrix(n, cols)
	if m.mlp != nil {
		ext := m.ext.Rebind(sd)
		var shared *sharedScoreCache
		if !m.cfg.DisableScoreDedup {
			m.cacheOnce.Do(func() {
				stable := make([]uint32, len(m.dicts))
				for j := range m.dicts {
					stable[j] = uint32(len(m.dicts[j]))
				}
				m.cache = newSharedScoreCache(stable, len(m.attrs))
			})
			shared = m.cache
		}
		scoreCells(ctx, pool, m.cfg, ext, m.mlp, sd, pred, scores, shared)
	} else {
		// Degenerate fit: replay the propagated labels. They are positional
		// in the fitting dataset; rows beyond it carry no evidence and stay
		// unflagged.
		for _, fl := range m.fallback {
			if fl.Row >= 0 && fl.Row < n && fl.Col >= 0 && fl.Col < cols {
				pred[fl.Row][fl.Col] = fl.IsErr
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("zeroed: scoring canceled: %w", err)
	}
	return &Result{Pred: pred, Scores: scores, Runtime: time.Since(start)}, nil
}

// scoreCells runs the sharded scoring pass over every cell of d into the
// shared pred/scores matrices. Shared by the engine's Detect composition
// and by standalone Model.Score calls; shared, when non-nil, is the
// model-lifetime warm cache spanning shards and calls.
func scoreCells(ctx context.Context, pool *workPool, cfg Config, ext *feature.Extractor,
	mlp *nn.MLP, d *table.Dataset, pred [][]bool, scores [][]float64, shared *sharedScoreCache) {
	n, cols := d.NumRows(), d.NumCols()
	// depCols[j] is the value-ID tuple that keys column j's dedup cache;
	// derived once per scoring pass, after criteria refinement has settled.
	var depCols [][]int
	if !cfg.DisableScoreDedup {
		depCols = make([][]int, cols)
		for j := range depCols {
			depCols[j] = ext.DepCols(j)
		}
	}
	shards := shardRanges(n, cfg.shardCount(n))
	pool.forN(len(shards), func(s int) {
		if ctx.Err() != nil {
			return
		}
		_, span := obs.Start(ctx, "score.shard")
		span.SetInt("lo", int64(shards[s].lo))
		span.SetInt("hi", int64(shards[s].hi))
		sc := newShardScorer(ext, mlp, d, depCols, cfg.Threshold, scores, pred, shared)
		sc.scoreRows(ctx, shards[s].lo, shards[s].hi)
		span.End()
	})
}

// ModelState is the fully exported form of a Model, the unit the
// internal/model artifact codec serializes. State and ModelFromState are
// inverses up to memo-table coverage: a restored model's per-value tables
// span the full artifact dictionaries where the original's spanned its
// construction-time prefix, and both compute identical per-value
// quantities, so scoring is bit-identical.
type ModelState struct {
	Cfg      Config
	Attrs    []string
	Dicts    [][]string
	FitRows  int
	Feature  *feature.Snapshot
	Net      *nn.Snapshot // nil on a degenerate fit
	Fallback []FallbackLabel
	Info     FitInfo
	Lineage  Lineage
}

// State captures the model's complete serializable state. Dictionaries and
// criteria are shared (they are immutable); numeric tables are copied.
func (m *Model) State() *ModelState {
	st := &ModelState{
		Cfg:      m.cfg,
		Attrs:    append([]string(nil), m.attrs...),
		Dicts:    m.dicts,
		FitRows:  m.fitRows,
		Feature:  m.ext.Snapshot(),
		Fallback: append([]FallbackLabel(nil), m.fallback...),
		Info:     m.info,
		Lineage:  m.Lineage(),
	}
	if m.mlp != nil {
		st.Net = m.mlp.Snapshot()
	}
	return st
}

// maxRestoredWorkers caps the scheduling knobs a restored artifact may
// carry; beyond it the values cannot be a real machine's configuration.
const maxRestoredWorkers = 1 << 16

// ModelFromState reconstructs a scoring-ready model, validating every
// cross-component invariant — a corrupt or adversarial state surfaces as an
// error here, never as a panic on the scoring hot path.
func ModelFromState(st *ModelState) (*Model, error) {
	if st == nil {
		return nil, fmt.Errorf("zeroed: nil model state")
	}
	if len(st.Attrs) == 0 {
		return nil, fmt.Errorf("zeroed: model state has no attributes")
	}
	if st.FitRows <= 0 {
		return nil, fmt.Errorf("zeroed: model state has non-positive fit row count %d", st.FitRows)
	}
	cfg := st.Cfg
	if math.IsNaN(cfg.Threshold) || math.IsInf(cfg.Threshold, 0) || cfg.Threshold < 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("zeroed: model state threshold %v out of range [0, 1)", cfg.Threshold)
	}
	if cfg.Workers > maxRestoredWorkers || cfg.Shards > maxRestoredWorkers {
		return nil, fmt.Errorf("zeroed: model state workers/shards %d/%d exceed %d", cfg.Workers, cfg.Shards, maxRestoredWorkers)
	}
	cfg = cfg.withDefaults()
	proto, err := table.NewFromDicts("model", st.Attrs, st.Dicts)
	if err != nil {
		return nil, err
	}
	ext, err := feature.FromSnapshot(st.Feature, proto)
	if err != nil {
		return nil, err
	}
	if st.Lineage.Version < 0 || st.Lineage.RefitRows < 0 {
		return nil, fmt.Errorf("zeroed: model state lineage %+v is negative", st.Lineage)
	}
	m := &Model{
		cfg:     cfg,
		attrs:   st.Attrs,
		dicts:   st.Dicts,
		fitRows: st.FitRows,
		ext:     ext,
		info:    st.Info,
		lineage: st.Lineage,
	}
	if st.Net != nil {
		mlp, err := nn.FromSnapshot(st.Net)
		if err != nil {
			return nil, err
		}
		if mlp.InputDim() != ext.Dim() {
			return nil, fmt.Errorf("zeroed: detector input dim %d does not match feature dim %d", mlp.InputDim(), ext.Dim())
		}
		m.mlp = mlp
	} else {
		for i, fl := range st.Fallback {
			if fl.Row < 0 || fl.Row >= st.FitRows || fl.Col < 0 || fl.Col >= len(st.Attrs) {
				return nil, fmt.Errorf("zeroed: fallback label %d at (%d,%d) outside the %dx%d fit shape",
					i, fl.Row, fl.Col, st.FitRows, len(st.Attrs))
			}
		}
		m.fallback = st.Fallback
	}
	return m, nil
}
