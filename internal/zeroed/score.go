package zeroed

import (
	"context"
	"sync"

	"repro/internal/feature"
	"repro/internal/nn"
	"repro/internal/table"
)

// maxSharedCacheEntries bounds one column's model-lifetime score cache so a
// long-lived serving model cannot grow without bound on endlessly novel
// value combinations; beyond the cap new entries are computed but not
// retained.
const maxSharedCacheEntries = 1 << 20

// sharedScoreCache is a model-lifetime, concurrency-safe score memo shared
// by every Score call against one fitted model — the "score forever" side
// of the fit/score split. Keys are the same packed value-ID tuples the
// per-shard dedup cache uses, and they are only admitted when every
// participating ID is below the fit-time dictionary size: those IDs are
// stable across all datasets bound to the model's dictionaries
// (table.NewFromDicts), so a key means the same value combination — and
// therefore the bit-identical feature vector and score — in every call.
// Values interned per scoring call (novel data) get per-call IDs and are
// deliberately never cached here.
type sharedScoreCache struct {
	// stableIDs[c] is column c's fit-time dictionary size; IDs below it are
	// call-invariant.
	stableIDs []uint32
	cols      []sharedScoreCol
}

type sharedScoreCol struct {
	mu sync.RWMutex
	m  map[string]float64
}

func newSharedScoreCache(stableIDs []uint32, cols int) *sharedScoreCache {
	c := &sharedScoreCache{stableIDs: stableIDs, cols: make([]sharedScoreCol, cols)}
	for j := range c.cols {
		c.cols[j].m = make(map[string]float64)
	}
	return c
}

// load returns the cached score for a stable key, if present.
func (c *sharedScoreCache) load(j int, key []byte) (float64, bool) {
	col := &c.cols[j]
	col.mu.RLock()
	v, ok := col.m[string(key)] // no-alloc lookup; the conversion is free
	col.mu.RUnlock()
	return v, ok
}

// store retains a freshly computed score under a stable key, up to the
// per-column cap.
func (c *sharedScoreCache) store(j int, key []byte, v float64) {
	col := &c.cols[j]
	col.mu.Lock()
	if len(col.m) < maxSharedCacheEntries {
		col.m[string(key)] = v
	}
	col.mu.Unlock()
}

// shardScorer is one scoring shard's fused, allocation-free workspace for
// Step 4: per row it fills one reusable flat feature tile
// (feature.RowFeaturesInto) and runs batched inference over it
// (nn.PredictInto) — no per-cell slice materialization, no per-row
// allocation.
//
// When dedup is enabled (depCols non-nil), the scorer also memoizes scores
// per column behind a value-ID key: FeatureInto(i, j) is a pure function
// of the tuple's value IDs over feature.DepCols(j), so two rows that agree
// on those IDs receive bit-identical feature vectors and therefore
// bit-identical MLP outputs. Each repeated (own value, correlated context)
// combination — which value interning makes very common — is featurized
// and scored once per shard and replayed from the cache afterwards. The
// cached value is the exact float64 the model produced, so scoring with
// the cache is bit-identical to scoring without it, for every shard count.
type shardScorer struct {
	ext       *feature.Extractor
	mlp       *nn.MLP
	d         *table.Dataset
	m, dim    int
	threshold float64

	// Shared output matrices; shards write disjoint row ranges.
	scores [][]float64
	pred   [][]bool

	// depCols[j] keys column j's cache; nil disables dedup entirely.
	depCols [][]int
	caches  []map[string]float64
	// shared is the model-lifetime cache spanning shards and Score calls
	// (nil outside model scoring or when dedup is disabled). Checked after
	// the lock-free local cache; only keys whose IDs are all fit-time
	// stable participate.
	shared *sharedScoreCache

	tile       []float64 // m x dim row feature tile, reused across rows
	ptile      []float64 // compacted tile of this row's cache-miss columns
	pout       []float64 // PredictInto output for ptile
	missJ      []int     // columns missing from the cache this row
	missStable []bool    // whether each miss column's key is shared-cacheable
	keyBuf     []byte    // packed value-ID keys for every column of one row
	keyOff     []int     // keyBuf offset of each miss column's key
}

// newShardScorer builds a scorer over the shared extractor, fitted model,
// and output matrices. depCols enables the dedup cache when non-nil.
func newShardScorer(ext *feature.Extractor, mlp *nn.MLP, d *table.Dataset,
	depCols [][]int, threshold float64, scores [][]float64, pred [][]bool,
	shared *sharedScoreCache) *shardScorer {
	m := d.NumCols()
	dim := ext.Dim()
	s := &shardScorer{
		ext: ext, mlp: mlp, d: d, m: m, dim: dim,
		threshold: threshold, scores: scores, pred: pred,
		depCols: depCols, shared: shared,
		tile:   make([]float64, m*dim),
		ptile:  make([]float64, m*dim),
		pout:   make([]float64, m),
		missJ:  make([]int, 0, m),
		keyOff: make([]int, m),
	}
	if depCols != nil {
		s.caches = make([]map[string]float64, m)
		keyCap := 0
		for j := range s.caches {
			s.caches[j] = make(map[string]float64)
			keyCap += 4 * len(depCols[j])
		}
		s.keyBuf = make([]byte, 0, keyCap)
		s.missStable = make([]bool, m)
	}
	return s
}

// scoreRows scores every cell of rows [lo, hi). The context is polled every
// few hundred rows so a canceled job stops mid-shard instead of finishing a
// potentially large row range; a partially scored shard is fine because the
// engine discards all output once it observes the cancellation.
func (s *shardScorer) scoreRows(ctx context.Context, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i&0xff == 0 && ctx.Err() != nil {
			return
		}
		s.scoreRow(i)
	}
}

// scoreRow scores all m cells of row i into the shared matrices. Steady
// state (warm cache, or dedup off) allocates nothing; cache misses
// allocate only their interned key strings and map growth.
func (s *shardScorer) scoreRow(i int) {
	scoresRow := s.scores[i]
	if s.depCols == nil {
		s.ext.RowFeaturesInto(i, s.tile)
		s.mlp.PredictInto(s.tile, s.m, scoresRow)
	} else {
		s.missJ = s.missJ[:0]
		s.keyBuf = s.keyBuf[:0]
		for j := 0; j < s.m; j++ {
			start := len(s.keyBuf)
			stable := s.shared != nil
			for _, c := range s.depCols[j] {
				id := s.d.ValueID(i, c)
				if stable && id >= s.shared.stableIDs[c] {
					stable = false // per-call ID: never shared-cacheable
				}
				s.keyBuf = append(s.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			key := s.keyBuf[start:]
			// The conversion in the map index does not allocate (compiler
			// optimizes map[string] lookups keyed by string([]byte)).
			if v, ok := s.caches[j][string(key)]; ok {
				scoresRow[j] = v
				s.keyBuf = s.keyBuf[:start]
				continue
			}
			if stable {
				if v, ok := s.shared.load(j, key); ok {
					scoresRow[j] = v
					s.keyBuf = s.keyBuf[:start]
					continue
				}
			}
			s.keyOff[len(s.missJ)] = start
			s.missStable[len(s.missJ)] = stable
			s.missJ = append(s.missJ, j)
		}
		if len(s.missJ) > 0 {
			// Featurize the whole row once (bases computed once, shared by
			// the correlated-context blocks), compact the missing columns'
			// vectors, and run one batched forward pass over them.
			s.ext.RowFeaturesInto(i, s.tile)
			for mi, j := range s.missJ {
				copy(s.ptile[mi*s.dim:(mi+1)*s.dim], s.tile[j*s.dim:(j+1)*s.dim])
			}
			s.mlp.PredictInto(s.ptile, len(s.missJ), s.pout)
			for mi, j := range s.missJ {
				v := s.pout[mi]
				scoresRow[j] = v
				end := len(s.keyBuf)
				if mi+1 < len(s.missJ) {
					end = s.keyOff[mi+1]
				}
				key := s.keyBuf[s.keyOff[mi]:end]
				s.caches[j][string(key)] = v
				if s.missStable[mi] {
					s.shared.store(j, key, v)
				}
			}
		}
	}
	predRow := s.pred[i]
	for j, p := range scoresRow {
		predRow[j] = p >= s.threshold
	}
}
