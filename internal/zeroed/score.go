package zeroed

import (
	"context"

	"repro/internal/feature"
	"repro/internal/nn"
	"repro/internal/table"
)

// shardScorer is one scoring shard's fused, allocation-free workspace for
// Step 4: per row it fills one reusable flat feature tile
// (feature.RowFeaturesInto) and runs batched inference over it
// (nn.PredictInto) — no per-cell slice materialization, no per-row
// allocation.
//
// When dedup is enabled (depCols non-nil), the scorer also memoizes scores
// per column behind a value-ID key: FeatureInto(i, j) is a pure function
// of the tuple's value IDs over feature.DepCols(j), so two rows that agree
// on those IDs receive bit-identical feature vectors and therefore
// bit-identical MLP outputs. Each repeated (own value, correlated context)
// combination — which value interning makes very common — is featurized
// and scored once per shard and replayed from the cache afterwards. The
// cached value is the exact float64 the model produced, so scoring with
// the cache is bit-identical to scoring without it, for every shard count.
type shardScorer struct {
	ext       *feature.Extractor
	mlp       *nn.MLP
	d         *table.Dataset
	m, dim    int
	threshold float64

	// Shared output matrices; shards write disjoint row ranges.
	scores [][]float64
	pred   [][]bool

	// depCols[j] keys column j's cache; nil disables dedup entirely.
	depCols [][]int
	caches  []map[string]float64

	tile   []float64 // m x dim row feature tile, reused across rows
	ptile  []float64 // compacted tile of this row's cache-miss columns
	pout   []float64 // PredictInto output for ptile
	missJ  []int     // columns missing from the cache this row
	keyBuf []byte    // packed value-ID keys for every column of one row
	keyOff []int     // keyBuf offset of each miss column's key
}

// newShardScorer builds a scorer over the shared extractor, fitted model,
// and output matrices. depCols enables the dedup cache when non-nil.
func newShardScorer(ext *feature.Extractor, mlp *nn.MLP, d *table.Dataset,
	depCols [][]int, threshold float64, scores [][]float64, pred [][]bool) *shardScorer {
	m := d.NumCols()
	dim := ext.Dim()
	s := &shardScorer{
		ext: ext, mlp: mlp, d: d, m: m, dim: dim,
		threshold: threshold, scores: scores, pred: pred,
		depCols: depCols,
		tile:    make([]float64, m*dim),
		ptile:   make([]float64, m*dim),
		pout:    make([]float64, m),
		missJ:   make([]int, 0, m),
		keyOff:  make([]int, m),
	}
	if depCols != nil {
		s.caches = make([]map[string]float64, m)
		keyCap := 0
		for j := range s.caches {
			s.caches[j] = make(map[string]float64)
			keyCap += 4 * len(depCols[j])
		}
		s.keyBuf = make([]byte, 0, keyCap)
	}
	return s
}

// scoreRows scores every cell of rows [lo, hi). The context is polled every
// few hundred rows so a canceled job stops mid-shard instead of finishing a
// potentially large row range; a partially scored shard is fine because the
// engine discards all output once it observes the cancellation.
func (s *shardScorer) scoreRows(ctx context.Context, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i&0xff == 0 && ctx.Err() != nil {
			return
		}
		s.scoreRow(i)
	}
}

// scoreRow scores all m cells of row i into the shared matrices. Steady
// state (warm cache, or dedup off) allocates nothing; cache misses
// allocate only their interned key strings and map growth.
func (s *shardScorer) scoreRow(i int) {
	scoresRow := s.scores[i]
	if s.depCols == nil {
		s.ext.RowFeaturesInto(i, s.tile)
		s.mlp.PredictInto(s.tile, s.m, scoresRow)
	} else {
		s.missJ = s.missJ[:0]
		s.keyBuf = s.keyBuf[:0]
		for j := 0; j < s.m; j++ {
			start := len(s.keyBuf)
			for _, c := range s.depCols[j] {
				id := s.d.ValueID(i, c)
				s.keyBuf = append(s.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			// The conversion in the map index does not allocate (compiler
			// optimizes map[string] lookups keyed by string([]byte)).
			if v, ok := s.caches[j][string(s.keyBuf[start:])]; ok {
				scoresRow[j] = v
				s.keyBuf = s.keyBuf[:start]
			} else {
				s.keyOff[len(s.missJ)] = start
				s.missJ = append(s.missJ, j)
			}
		}
		if len(s.missJ) > 0 {
			// Featurize the whole row once (bases computed once, shared by
			// the correlated-context blocks), compact the missing columns'
			// vectors, and run one batched forward pass over them.
			s.ext.RowFeaturesInto(i, s.tile)
			for mi, j := range s.missJ {
				copy(s.ptile[mi*s.dim:(mi+1)*s.dim], s.tile[j*s.dim:(j+1)*s.dim])
			}
			s.mlp.PredictInto(s.ptile, len(s.missJ), s.pout)
			for mi, j := range s.missJ {
				v := s.pout[mi]
				scoresRow[j] = v
				end := len(s.keyBuf)
				if mi+1 < len(s.missJ) {
					end = s.keyOff[mi+1]
				}
				s.caches[j][string(s.keyBuf[s.keyOff[mi]:end])] = v
			}
		}
	}
	predRow := s.pred[i]
	for j, p := range scoresRow {
		predRow[j] = p >= s.threshold
	}
}
