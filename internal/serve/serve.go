// Package serve exposes the ZeroED detection engine as a long-running
// HTTP/JSON job service — detection as a service over the sharded engine.
//
// Design contract ("validate at the boundary, errors not panics"): every
// request-reachable code path returns a structured JSON error instead of
// panicking, uploads are streamed straight into the columnar dataset's
// intern pools (never materializing a row-oriented copy) under byte, row,
// and column limits, and a bounded admission queue multiplexes all accepted
// jobs onto one shared worker pool so concurrent clients cannot
// oversubscribe the machine. Detection results uphold the engine's
// determinism guarantee: a job with a fixed seed produces verdicts and
// scores bit-identical to a cmd/zeroed run on the same input, for any
// worker, shard, or concurrency configuration.
//
// Every upload endpoint is format-agnostic: bodies are CSV or NDJSON
// (negotiated from the Content-Type media type or forced with ?format=...)
// and enter through the shared table.RowSource ingest layer. Model-bound
// endpoints (score, stream, repair) accept headers that are permutations or
// supersets of the model's columns via table.MapColumns: extra columns are
// dropped (and reported), missing columns are a typed 400.
//
// API (see the README "Serving" section for the full reference):
//
//	POST   /v1/jobs          submit a CSV/NDJSON body -> 202 {id, state}
//	GET    /v1/jobs          list retained jobs, newest first
//	GET    /v1/jobs/{id}     job lifecycle status
//	GET    /v1/jobs/{id}/result   per-cell verdicts + scores (done jobs)
//	DELETE /v1/jobs/{id}     cancel a queued/running job; delete a finished one
//	POST   /v1/models        fit + register a model -> 201 {id, version, ...}
//	POST   /v1/models/{id}/score    score a CSV/NDJSON body synchronously
//	POST   /v1/models/{id}/stream   streaming detection with drift tracking
//	POST   /v1/models/{id}/repair   score with no refit, then apply repair
//	                         strategies: corrected table + cell change log
//	DELETE /v1/models/{id}   evict a model (artifacts reaped after in-flight
//	                         requests drain)
//	GET    /v1/jobs/{id}/trace    span tree of a finished job's pipeline
//	GET    /healthz          liveness
//	GET    /readyz           readiness (model-dir writability, model count)
//	GET    /metrics          Prometheus text metrics
//
// Observability: every request carries a correlation ID (X-Request-ID,
// honored or generated, echoed on the response and inside every error
// envelope), runs under a span tree covering queue wait, ingest, and each
// pipeline stage (?trace=1 embeds it in synchronous responses), and is
// counted in per-route RED metrics. Slow requests are retained as Chrome
// trace_event JSON, browsable through the gated DebugHandler.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// Config tunes the service. Zero values select serving defaults.
type Config struct {
	// Workers is the shared worker-pool size every concurrent job draws
	// from (0 = GOMAXPROCS). This is the machine-wide parallelism bound.
	Workers int
	// Shards is the per-job scoring-shard count (0 = auto). Results are
	// bit-identical for any value.
	Shards int
	// MaxConcurrentJobs bounds how many admitted jobs detect at once
	// (default 2). They share the one pool, so this trades per-job latency
	// against cross-job fairness, never total load.
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds the admission queue (default 16); submissions
	// beyond it are rejected with 429 rather than buffered without bound.
	MaxQueuedJobs int
	// MaxUploadBytes caps a request body (default 32 MiB); larger uploads
	// are rejected with 413.
	MaxUploadBytes int64
	// MaxRows caps the parsed row count of one upload (default 1e6).
	MaxRows int
	// MaxCols caps the column count of one upload (default 256).
	MaxCols int
	// MaxRetainedJobs bounds the finished-job table (default 256); the
	// oldest finished jobs are evicted first. Live jobs are never evicted.
	MaxRetainedJobs int
	// MaxModels bounds the fitted-model registry (default 32); fits beyond
	// it are rejected with 409 until a model is DELETEd.
	MaxModels int
	// ModelDir, when set, persists fitted models as versioned artifacts
	// under this directory and restores them on startup. Empty keeps the
	// registry in-memory only.
	ModelDir string
	// StreamChunkRows is how many rows a /stream request scores per batch
	// (default 256). Verdicts are chunk-invariant, so this trades verdict
	// latency against per-batch overhead, never correctness. A stream
	// request may override it per call with ?chunk=N.
	StreamChunkRows int
	// DriftThreshold trips a background refit when a streaming model's
	// drift gauges (unseen-value rate or distribution shift) exceed it.
	// 0 disables drift-triggered refits; the gauges still export.
	DriftThreshold float64
	// DriftMinRows is the minimum streamed row count before the drift
	// threshold may trip (default 256).
	DriftMinRows int
	// RequestTimeout bounds one request's server-side work (fit, score,
	// stream). A request that exceeds it gets a typed 503 deadline error
	// with a Retry-After hint — never a generic 500. 0 disables.
	RequestTimeout time.Duration
	// RefitBackoff is the backoff after the first failed drift refit
	// (default 1s); consecutive failures double it (capped at 100x).
	RefitBackoff time.Duration
	// RefitBreakerAfter opens a per-model circuit breaker after this many
	// consecutive refit failures (default 5; negative disables). An open
	// breaker stops drift-triggered refits — the last good model keeps
	// serving — until a successful refit or operator action installs a
	// fresh model.
	RefitBreakerAfter int
	// Logger receives the structured access, panic, and model-lifecycle
	// log lines (nil = text to stderr).
	Logger *slog.Logger
	// TraceDir, when set, dumps each retained slow-request trace as a
	// Chrome trace_event JSON file under this directory.
	TraceDir string
	// TraceSlow is the retention threshold: requests at or above this
	// duration keep their trace in the debug ring (and TraceDir). 0 retains
	// every request's trace.
	TraceSlow time.Duration
	// TraceRing bounds how many slow-request traces the debug ring retains
	// (default 32).
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = 16
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1_000_000
	}
	if c.MaxCols <= 0 {
		c.MaxCols = 256
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 32
	}
	if c.StreamChunkRows <= 0 {
		c.StreamChunkRows = 256
	}
	if c.DriftMinRows <= 0 {
		c.DriftMinRows = 256
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 32
	}
	return c
}

// Server is the detection service: an http.Handler plus the job manager and
// fitted-model registry behind it.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mgr     *manager
	reg     *registry
	met     *metrics
	mux     *http.ServeMux
	ring    *obs.Ring
	streams streamTable
}

// New creates a service with its runner goroutines started and any
// persisted model artifacts restored from Config.ModelDir. Tracing is
// enabled process-wide here: the engine's bit-identity contract makes span
// collection a pure observer, so the service always traces.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	obs.SetEnabled(true)
	log := newLogger(cfg)
	met := &metrics{}
	s := &Server{
		cfg: cfg, log: log, met: met,
		mgr:  newManager(cfg, met, log),
		reg:  newRegistry(cfg, met, log),
		ring: obs.NewRing(cfg.TraceRing),
	}
	s.mgr.retain = s.retainTrace
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/models", s.handleModelFit)
	mux.HandleFunc("GET /v1/models", s.handleModelList)
	mux.HandleFunc("GET /v1/models/{id}", s.handleModelInfo)
	mux.HandleFunc("POST /v1/models/{id}/score", s.handleModelScore)
	mux.HandleFunc("POST /v1/models/{id}/stream", s.handleModelStream)
	mux.HandleFunc("POST /v1/models/{id}/repair", s.handleModelRepair)
	mux.HandleFunc("DELETE /v1/models/{id}", s.handleModelDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler: the observability middleware
// (request IDs, tracing, RED metrics, access log, last-resort panic
// recovery, request timeout) wrapped around the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(s.serveHTTP)
}

// Close cancels all in-flight jobs and stops the runners.
func (s *Server) Close() { s.mgr.close() }

// apiError is the structured error envelope every failure path returns.
// RequestID carries the request's correlation ID so a client can quote one
// string and an operator can grep straight to the matching log lines.
type apiError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone is not a server error
}

// writeErr emits the structured error envelope. The request resolves the
// correlation ID; every error path passes it so no envelope ships without
// one.
func writeErr(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, map[string]apiError{"error": apiErrorFor(r, code, msg)})
}

// apiErrorFor builds an envelope body stamped with the request's ID — used
// directly by the stream endpoint, whose in-band NDJSON error lines bypass
// writeErr.
func apiErrorFor(r *http.Request, code, msg string) apiError {
	var rid string
	if r != nil {
		rid = reqIDFrom(r.Context())
	}
	return apiError{Code: code, Message: msg, RequestID: rid}
}

// Backpressure retry hints, in seconds: a queue slot frees as soon as a
// runner pops a job, a fit slot only when a whole fit finishes.
const (
	retryAfterQueue = 1
	retryAfterFit   = 5
)

// writeBusy is the single 429 path. Every backpressure rejection — job
// queue full, fit semaphore saturated — carries the same structured error
// envelope plus a Retry-After hint, so clients get one retry contract.
func writeBusy(w http.ResponseWriter, r *http.Request, code, msg string, retryAfterSec int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeErr(w, r, http.StatusTooManyRequests, code, msg)
}

// retryAfterDeadline hints how long a deadline-exceeded client should wait
// before retrying, in seconds.
const retryAfterDeadline = 2

// writeDeadline is the single request-timeout path: a typed 503 with a
// Retry-After hint. The deadline is a capacity signal (the work was sound,
// the box was slow), so it must never surface as a generic 500.
func (s *Server) writeDeadline(w http.ResponseWriter, r *http.Request) {
	s.met.deadlines.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterDeadline))
	writeErr(w, r, http.StatusServiceUnavailable, "deadline",
		fmt.Sprintf("request exceeded the %s server-side deadline", s.cfg.RequestTimeout))
}

// requestFailure classifies a handler error against the request context:
// deadline (write the typed 503), client gone (write nothing), or neither
// (the caller maps its own domain errors).
type requestFailure int

const (
	failOther requestFailure = iota
	failDeadline
	failClientGone
)

func (s *Server) classifyFailure(r *http.Request) requestFailure {
	switch {
	case errors.Is(r.Context().Err(), context.DeadlineExceeded):
		return failDeadline
	case r.Context().Err() != nil:
		return failClientGone
	default:
		return failOther
	}
}

// writeIngestErr maps an upload-ingestion failure to its structured
// response: 413 for oversized bodies, a typed 400 "missing_columns" when a
// model-bound upload lacks schema columns, and 400 "bad_upload" for
// everything malformed.
func writeIngestErr(w http.ResponseWriter, r *http.Request, err error, maxBytes int64) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, r, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("upload exceeds the %d-byte limit", maxBytes))
		return
	}
	var missing *table.MissingColumnsError
	if errors.As(err, &missing) {
		writeErr(w, r, http.StatusBadRequest, "missing_columns", err.Error())
		return
	}
	writeErr(w, r, http.StatusBadRequest, "bad_upload", err.Error())
}

// jobConfig resolves a job's zeroed configuration. It mirrors cmd/zeroed's
// flag handling so that equal (input, seed, knobs) pairs produce bit-equal
// verdicts across the CLI and the service.
func (m *manager) jobConfig(p JobParams) (zeroed.Config, error) {
	profile, ok := llm.ProfileByName(p.Profile)
	if !ok {
		return zeroed.Config{}, fmt.Errorf("unknown model %q", p.Profile)
	}
	return zeroed.Config{
		LabelRate: p.LabelRate,
		CorrK:     p.CorrK,
		Threshold: p.Threshold,
		Seed:      p.Seed,
		Workers:   m.cfg.Workers,
		Shards:    m.cfg.Shards,
		Profile:   profile,
	}, nil
}

// parseParams validates the submit-time query parameters.
func parseParams(r *http.Request) (JobParams, error) {
	q := r.URL.Query()
	p := JobParams{
		Name:      q.Get("name"),
		Seed:      1,
		LabelRate: 0.05,
		CorrK:     2,
		Threshold: 0, // zeroed default (0.4) via withDefaults
		Profile:   "Qwen2.5-72b",
	}
	if p.Name == "" {
		p.Name = "upload"
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed %q: %v", v, err)
		}
		p.Seed = n
	}
	if v := q.Get("label_rate"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			return p, fmt.Errorf("bad label_rate %q: must be a float in (0, 1]", v)
		}
		p.LabelRate = f
	}
	if v := q.Get("corr"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 64 {
			return p, fmt.Errorf("bad corr %q: must be an int in [0, 64]", v)
		}
		p.CorrK = n
	}
	if v := q.Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f >= 1 {
			return p, fmt.Errorf("bad threshold %q: must be a float in (0, 1)", v)
		}
		p.Threshold = f
	}
	if v := q.Get("model"); v != "" {
		if _, ok := llm.ProfileByName(v); !ok {
			return p, fmt.Errorf("unknown model %q", v)
		}
		p.Profile = v
	}
	return p, nil
}

// ingestLimits bound one upload ingestion.
type ingestLimits struct {
	maxRows int
	maxCols int
}

// requestFormat resolves an upload's ingest format: the ?format query
// parameter wins; otherwise the Content-Type media type decides, parsed
// with mime.ParseMediaType (inside table.FormatForMediaType) so parameters
// like "; charset=utf-8" never defeat the match. Absent or unrecognized
// media types default to CSV, the historical wire format.
func requestFormat(r *http.Request) (string, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		if f != table.FormatCSV && f != table.FormatNDJSON {
			return "", fmt.Errorf("unknown format %q (want %s or %s)", f, table.FormatCSV, table.FormatNDJSON)
		}
		return f, nil
	}
	if f, ok := table.FormatForMediaType(r.Header.Get("Content-Type")); ok {
		return f, nil
	}
	return table.FormatCSV, nil
}

// uploadSource opens the negotiated row source over a request body. With a
// nil schema the source is self-describing (jobs, fits). With a model
// schema (score, stream, repair) rows arrive projected onto it: a CSV
// header may be a permutation or superset of the model's columns — extras
// are dropped and reported in the returned mapping, missing columns are a
// typed *table.MissingColumnsError — and NDJSON lines bind directly to the
// schema (arrays in model order, objects keyed by attribute name).
func uploadSource(r *http.Request, body io.Reader, schema []string) (table.RowSource, *table.ColumnMapping, error) {
	format, err := requestFormat(r)
	if err != nil {
		return nil, nil, err
	}
	if format == table.FormatNDJSON {
		src, err := table.NewNDJSONSource(body, schema)
		return src, nil, err
	}
	src, err := table.NewCSVSource(body)
	if err != nil {
		return nil, nil, err
	}
	if schema != nil {
		return table.MapSource(schema, src)
	}
	return src, nil, nil
}

// ingestSource streams a row source straight into a columnar dataset via
// table.NewStream — rows are interned into the per-column dictionaries as
// they are decoded, never materialized as a record set — enforcing the row
// and column limits as the stream advances. Every malformed input (missing
// header, ragged rows, quoting or JSON errors, oversized shapes, empty
// data) comes back as an error, not a panic.
func ingestSource(name string, src table.RowSource, lim ingestLimits) (*table.Dataset, error) {
	stream := table.NewStream(name, src)
	ds := stream.Dataset()
	if lim.maxCols > 0 && ds.NumCols() > lim.maxCols {
		return nil, fmt.Errorf("serve: %d columns exceeds the limit of %d", ds.NumCols(), lim.maxCols)
	}
	const chunk = 4096
	for {
		_, err := stream.ReadChunk(chunk)
		if lim.maxRows > 0 && ds.NumRows() > lim.maxRows {
			return nil, fmt.Errorf("serve: row count exceeds the limit of %d", lim.maxRows)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("serve: dataset has no data rows")
	}
	return ds, nil
}

// ingestCSV is the CSV-only ingest path, retained for callers (and fuzz
// corpora) that feed raw CSV bytes without a request.
func ingestCSV(name string, r io.Reader, lim ingestLimits) (*table.Dataset, error) {
	src, err := table.NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return ingestSource(name, src, lim)
}

// ingestUpload is the shared entry point for the whole-body endpoints
// (jobs, fit, score, repair): negotiate the format, open the source, map it
// onto the schema when given, and stream it into a dataset under limits.
func (s *Server) ingestUpload(name string, r *http.Request, body io.Reader, schema []string) (*table.Dataset, *table.ColumnMapping, error) {
	_, span := obs.Start(r.Context(), "ingest")
	defer span.End()
	src, mapping, err := uploadSource(r, body, schema)
	if err != nil {
		return nil, nil, err
	}
	ds, err := ingestSource(name, src, ingestLimits{maxRows: s.cfg.MaxRows, maxCols: s.cfg.MaxCols})
	if err != nil {
		return nil, nil, err
	}
	span.SetInt("rows", int64(ds.NumRows()))
	span.SetInt("cols", int64(ds.NumCols()))
	if mapping != nil && len(mapping.Dropped) > 0 {
		s.met.mappedUploads.Add(1)
		s.met.droppedColumns.Add(int64(len(mapping.Dropped)))
	}
	return ds, mapping, nil
}

// handleSubmit accepts a CSV or NDJSON upload and enqueues a detection job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	// Advisory fast-path: when the queue is already full, reject before
	// paying for the upload parse. submit re-checks authoritatively under
	// its lock, so a slot freed in between still admits the job.
	if s.mgr.queueFull() {
		writeBusy(w, r, "queue_full", errQueueFull.Error(), retryAfterQueue)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, _, err := s.ingestUpload(params.Name, r, body, nil)
	if err != nil {
		writeIngestErr(w, r, err, s.cfg.MaxUploadBytes)
		return
	}
	j, err := s.mgr.submit(r.Context(), ds, params)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			writeBusy(w, r, "queue_full", err.Error(), retryAfterQueue)
			return
		}
		writeErr(w, r, http.StatusServiceUnavailable, "shutting_down", err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.list()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// JobResult is the wire form of a finished job's verdicts.
type JobResult struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Attrs   []string `json:"attrs"`
	Rows    int      `json:"rows"`
	Flagged int      `json:"flagged"`
	// Pred[i][j] is the verdict for cell (i, j); Scores[i][j] the error
	// probability. Scores round-trip through JSON bit-exactly (Go encodes
	// the shortest representation that decodes to the same float64).
	Pred   [][]bool    `json:"pred"`
	Scores [][]float64 `json:"scores,omitempty"`

	SampledCells  int       `json:"sampled_cells"`
	TrainingCells int       `json:"training_cells"`
	AugmentedErrs int       `json:"augmented_errs"`
	CriteriaCount int       `json:"criteria_count"`
	Usage         llm.Usage `json:"usage"`
	RuntimeMS     int64     `json:"runtime_ms"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown job id")
		return
	}
	j.mu.Lock()
	state, res, errMsg := j.state, j.res, j.errMsg
	id, name, attrs := j.id, j.params.Name, j.attrs
	j.mu.Unlock()
	switch state {
	case JobQueued, JobRunning:
		writeErr(w, r, http.StatusConflict, "not_done", fmt.Sprintf("job is %s", state))
		return
	case JobFailed, JobCanceled:
		writeErr(w, r, http.StatusConflict, fmt.Sprintf("job_%s", state), errMsg)
		return
	}
	out := JobResult{
		ID:            id,
		Name:          name,
		Attrs:         attrs,
		Rows:          len(res.Pred),
		Pred:          res.Pred,
		SampledCells:  res.SampledCells,
		TrainingCells: res.TrainingCells,
		AugmentedErrs: res.AugmentedErrs,
		CriteriaCount: res.CriteriaCount,
		Usage:         res.Usage,
		RuntimeMS:     res.Runtime.Milliseconds(),
	}
	if r.URL.Query().Get("scores") != "0" {
		out.Scores = res.Scores
	}
	for _, row := range res.Pred {
		for _, p := range row {
			if p {
				out.Flagged++
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, ok := s.mgr.cancelJob(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": state})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "time": time.Now().UTC().Format(time.RFC3339)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, s.mgr.counts(), s.reg.count(), s.modelGauges())
}
