package serve

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// JobState is the lifecycle state of one detection job.
type JobState string

// Job lifecycle: Queued -> Running -> one of Done/Failed/Canceled. A queued
// job may go straight to Canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// JobParams are the per-job detection knobs a client may set at submit
// time. They mirror the cmd/zeroed flags, so a job with the same seed and
// input is bit-identical to a CLI run.
type JobParams struct {
	// Name labels the job (default: the submitted dataset name, "upload").
	Name string
	// Seed drives all pipeline randomness (default 1, like cmd/zeroed).
	Seed int64
	// LabelRate is the LLM label rate (default 0.05).
	LabelRate float64
	// CorrK is the correlated-attribute count (default 2).
	CorrK int
	// Threshold is the decision threshold (default 0.4).
	Threshold float64
	// Profile is the simulated LLM profile name (default Qwen2.5-72b).
	Profile string
}

// job is one submitted detection unit. The mutex guards every mutable
// field; reads for status reporting snapshot under it.
type job struct {
	mu sync.Mutex

	id      string
	params  JobParams
	ds      *table.Dataset
	attrs   []string
	rows    int
	cols    int
	state   JobState
	errMsg  string
	res     *zeroed.Result
	created time.Time
	started time.Time
	done    time.Time
	cancel  context.CancelFunc

	// trace is the submit request's trace, adopted by the job because it
	// outlives the request: the middleware leaves it open and the job
	// finalizes it. qspan spans the admission-queue wait; traceTree is the
	// finished snapshot served by GET /v1/jobs/{id}/trace.
	trace     *obs.Trace
	qspan     *obs.Span
	rid       string
	traceTree *obs.Node
}

// snapshot returns a consistent copy of the job's reportable state.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:      j.id,
		Name:    j.params.Name,
		State:   j.state,
		Rows:    j.rows,
		Cols:    j.cols,
		Seed:    j.params.Seed,
		Error:   j.errMsg,
		Created: j.created,
	}
	if !j.started.IsZero() {
		s.Started = &j.started
	}
	if !j.done.IsZero() {
		s.Finished = &j.done
	}
	if j.res != nil {
		s.RuntimeMS = j.res.Runtime.Milliseconds()
	}
	return s
}

// JobStatus is the wire form of a job's lifecycle state.
type JobStatus struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	State     JobState   `json:"state"`
	Rows      int        `json:"rows"`
	Cols      int        `json:"cols"`
	Seed      int64      `json:"seed"`
	Error     string     `json:"error,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	RuntimeMS int64      `json:"runtime_ms,omitempty"`
}

// manager owns the job table, the bounded admission queue, and the runner
// goroutines that multiplex admitted jobs onto one shared zeroed.Pool.
// Admission is two-stage by design: the queue bounds how many jobs wait,
// the runner count bounds how many detect concurrently, and the shared pool
// bounds how many worker goroutines those concurrent jobs can occupy in
// total — so N clients can never oversubscribe the machine.
type manager struct {
	cfg  Config
	pool *zeroed.Pool
	met  *metrics
	log  *slog.Logger

	// retain, when set (by serve.New), offers a finished job trace for
	// slow-request retention in the debug ring.
	retain func(tr *obs.Trace, route, rid string, dur time.Duration)

	mu     sync.Mutex
	cond   *sync.Cond // signals runners when queue gains a job or close() runs
	closed bool
	jobs   map[string]*job
	order  []string // insertion order, for finished-job eviction
	queue  []*job   // FIFO of admitted jobs not yet picked up by a runner
	nextID int64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

func newManager(cfg Config, met *metrics, log *slog.Logger) *manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		cfg:     cfg,
		pool:    zeroed.NewPool(cfg.Workers),
		met:     met,
		log:     log,
		jobs:    make(map[string]*job),
		baseCtx: ctx,
		stop:    cancel,
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.MaxConcurrentJobs; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// close cancels every in-flight job and waits for the runners to drain.
// Jobs still queued at close time are finalized as canceled by the runners
// (the base context is already canceled, so each aborts at its first stage
// boundary).
func (m *manager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.cond.Broadcast()
	m.wg.Wait()
}

// errQueueFull is returned by submit when the admission queue is at
// capacity; the HTTP layer maps it to 429.
var errQueueFull = fmt.Errorf("serve: job queue is full, retry later")

// submit admits a parsed dataset as a queued job, or rejects it when the
// bounded queue is full. Only jobs actually waiting count against the
// queue bound — canceling a queued job frees its slot immediately.
//
// The submit request's trace is adopted here: the job outlives the request,
// so the middleware must not finish the trace at response time. A
// queue_wait span opens now and closes when a runner picks the job up.
func (m *manager) submit(ctx context.Context, ds *table.Dataset, p JobParams) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	if len(m.queue) >= m.cfg.MaxQueuedJobs {
		return nil, errQueueFull
	}
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("j-%06d", m.nextID),
		params:  p,
		ds:      ds,
		attrs:   append([]string(nil), ds.Attrs...),
		rows:    ds.NumRows(),
		cols:    ds.NumCols(),
		state:   JobQueued,
		created: time.Now(),
	}
	if tr := obs.TraceFromContext(ctx); tr != nil {
		tr.Adopt()
		j.trace = tr
		j.rid = reqIDFrom(ctx)
		_, j.qspan = obs.Start(ctx, "queue_wait")
	}
	m.queue = append(m.queue, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.met.submitted.Add(1)
	m.met.rowsIngested.Add(int64(j.rows))
	m.evictLocked()
	m.cond.Signal()
	return j, nil
}

// queueFull is the advisory pre-ingestion check: when the queue is already
// at capacity there is no point parsing an upload that submit would reject.
// The authoritative check stays inside submit, under the same lock as the
// enqueue.
func (m *manager) queueFull() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) >= m.cfg.MaxQueuedJobs
}

// evictLocked drops the oldest finished jobs beyond the retention cap so a
// long-running server's job table stays bounded. Live (queued/running) jobs
// are never evicted.
func (m *manager) evictLocked() {
	if len(m.jobs) <= m.cfg.MaxRetainedJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > m.cfg.MaxRetainedJobs && j.finished() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
}

// get returns a job by ID.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list snapshots every retained job, newest first.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j, ok := m.jobs[ids[i]]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// cancelJob cancels a queued or running job; finished jobs are removed from
// the table instead. Returns the resulting state, or false for unknown IDs.
func (m *manager) cancelJob(id string) (JobState, bool) {
	j, ok := m.get(id)
	if !ok {
		return "", false
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.errMsg = "canceled before start"
		j.done = time.Now()
		j.ds = nil
		m.finishTraceLocked(j)
		j.mu.Unlock()
		// Free the admission slot right away; a runner that races the
		// removal and pops the job anyway skips it on the state check.
		m.mu.Lock()
		m.dropQueuedLocked(j)
		m.mu.Unlock()
		m.met.canceled.Add(1)
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel() // runner observes the context error and finalizes state
		}
	default: // finished: DELETE removes the record entirely
		j.mu.Unlock()
		m.mu.Lock()
		delete(m.jobs, id)
		m.dropOrderLocked(id)
		m.mu.Unlock()
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	return st, true
}

// dropQueuedLocked removes a job from the waiting queue, if still there.
func (m *manager) dropQueuedLocked(j *job) {
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// dropOrderLocked removes one id from the insertion-order list so deleted
// jobs do not accumulate there for the life of the process.
func (m *manager) dropOrderLocked(id string) {
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// counts tallies retained jobs by state, for /metrics gauges.
func (m *manager) counts() map[JobState]int {
	out := map[JobState]int{}
	for _, s := range m.list() {
		out[s.State]++
	}
	return out
}

// runner is one job-execution goroutine. It pops admitted jobs off the
// bounded queue and runs each on the shared pool with a per-job cancelable
// context. A panic that escapes the engine despite the validation layers is
// converted into a failed job, never a crashed server.
func (m *manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = append(m.queue[:0], m.queue[1:]...)
		m.mu.Unlock()
		m.runJob(j)
	}
}

func (m *manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != JobQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.qspan.End()
	m.met.queueWait.observe(j.started.Sub(j.created).Seconds())
	ds, p := j.ds, j.params
	trace := j.trace
	j.mu.Unlock()
	defer cancel()

	// Re-root the detection context on the adopted trace so the engine's
	// fit/score spans land in the submit request's tree.
	dctx := ctx
	if trace != nil {
		dctx = obs.ContextWithSpan(ctx, trace.Root())
	}
	dctx, dspan := obs.Start(dctx, "detect")
	res, err := m.detect(dctx, ds, p)
	dspan.End()

	j.mu.Lock()
	j.done = time.Now()
	j.ds = nil // the dataset is only needed for the run; drop it early
	j.cancel = nil
	switch {
	case err != nil && (ctx.Err() != nil || m.baseCtx.Err() != nil):
		j.state = JobCanceled
		j.errMsg = err.Error()
		m.met.canceled.Add(1)
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
		m.met.failed.Add(1)
	default:
		j.state = JobDone
		j.res = res
		m.met.done.Add(1)
		m.met.detectRuns.Add(1)
		m.met.detectNanos.Add(int64(res.Runtime))
	}
	m.finishTraceLocked(j)
	j.mu.Unlock()
}

// finishTraceLocked (j.mu held) finalizes an adopted trace: ends the
// queue-wait span if still open, snapshots the tree for
// GET /v1/jobs/{id}/trace, and offers the trace for slow-request retention.
func (m *manager) finishTraceLocked(j *job) {
	if j.trace == nil {
		return
	}
	j.qspan.End()
	j.trace.Finish()
	j.traceTree = j.trace.Tree()
	if m.retain != nil {
		m.retain(j.trace, "POST /v1/jobs", j.rid, j.trace.Duration())
	}
	j.trace = nil
	j.qspan = nil
}

// detect runs one job's detection on the shared pool, converting any stray
// panic into an error.
func (m *manager) detect(ctx context.Context, ds *table.Dataset, p JobParams) (res *zeroed.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: detection panicked: %v\n%s", r, debug.Stack())
		}
	}()
	cfg, err := m.jobConfig(p)
	if err != nil {
		return nil, err
	}
	return zeroed.New(cfg).DetectOn(ctx, m.pool, ds)
}
