package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// testServer spins up a service over httptest with tight limits suitable
// for unit tests.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

// benchCSV renders a generated benchmark's dirty dataset as CSV bytes.
func benchCSV(t *testing.T, ds *table.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postCSV submits a CSV body and decodes the response envelope.
func postCSV(t *testing.T, url string, body []byte) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return st, resp
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case JobDone, JobFailed, JobCanceled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func getResult(t *testing.T, base, id string) JobResult {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("result status %d: %s", resp.StatusCode, b)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// TestServiceMatchesDetectorBitIdentical is the determinism e2e: for
// Workers in {1, 8}, concurrent service jobs over the same upload must
// return verdicts AND float64 score bits identical to a direct
// Detector.Detect with the same seed — the same contract cmd/zeroed runs
// under, so service == CLI.
func TestServiceMatchesDetectorBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e determinism pin is not -short")
	}
	b := datasets.Hospital(200, 5)
	csv := benchCSV(t, b.Dirty)
	const seed = 9

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Reference run: exactly what cmd/zeroed computes. The dataset is
			// re-parsed from the same CSV bytes the service receives, so both
			// sides see identical dictionaries.
			ref, err := table.ReadCSV("upload", bytes.NewReader(csv))
			if err != nil {
				t.Fatal(err)
			}
			want, err := zeroed.New(zeroed.Config{Seed: seed, Workers: workers}).Detect(ref)
			if err != nil {
				t.Fatal(err)
			}

			ts, _ := testServer(t, Config{Workers: workers, MaxConcurrentJobs: 3})
			// Concurrent identical submissions: every job must match the
			// reference bit-for-bit regardless of scheduling.
			const jobs = 3
			ids := make([]string, jobs)
			var wg sync.WaitGroup
			for i := 0; i < jobs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					st, resp := postCSV(t, ts.URL+fmt.Sprintf("/v1/jobs?seed=%d", seed), csv)
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("submit %d: status %d", i, resp.StatusCode)
						return
					}
					ids[i] = st.ID
				}(i)
			}
			wg.Wait()
			for _, id := range ids {
				if id == "" {
					t.Fatal("a submission failed")
				}
				st := waitDone(t, ts.URL, id)
				if st.State != JobDone {
					t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
				}
				jr := getResult(t, ts.URL, id)
				if len(jr.Pred) != len(want.Pred) {
					t.Fatalf("pred rows = %d, want %d", len(jr.Pred), len(want.Pred))
				}
				for i := range want.Pred {
					for j := range want.Pred[i] {
						if jr.Pred[i][j] != want.Pred[i][j] {
							t.Fatalf("job %s verdict (%d,%d) = %v, want %v", id, i, j, jr.Pred[i][j], want.Pred[i][j])
						}
						if jr.Scores[i][j] != want.Scores[i][j] {
							t.Fatalf("job %s score (%d,%d) = %v, want %v (bit mismatch)", id, i, j, jr.Scores[i][j], want.Scores[i][j])
						}
					}
				}
			}
		})
	}
}

// TestAdversarialUploads pins the boundary-validation contract: every
// malformed upload gets a structured 4xx, never a panic or a 500.
func TestAdversarialUploads(t *testing.T) {
	ts, _ := testServer(t, Config{MaxRows: 50, MaxCols: 4, MaxUploadBytes: 4096})
	cases := []struct {
		name   string
		url    string
		body   string
		status int
	}{
		{"empty body", "/v1/jobs", "", http.StatusBadRequest},
		{"header only", "/v1/jobs", "a,b,c\n", http.StatusBadRequest},
		{"ragged row", "/v1/jobs", "a,b\n1,2\n3\n", http.StatusBadRequest},
		{"bare quote", "/v1/jobs", "a,b\n\"1,2\n", http.StatusBadRequest},
		{"too many columns", "/v1/jobs", "a,b,c,d,e\n1,2,3,4,5\n", http.StatusBadRequest},
		{"too many rows", "/v1/jobs", "a\n" + strings.Repeat("1\n", 51), http.StatusBadRequest},
		{"oversized body", "/v1/jobs", "a,b\n" + strings.Repeat(strings.Repeat("x", 200)+",y\n", 30), http.StatusRequestEntityTooLarge},
		{"bad seed", "/v1/jobs?seed=abc", "a,b\n1,2\n", http.StatusBadRequest},
		{"bad label rate", "/v1/jobs?label_rate=2", "a,b\n1,2\n", http.StatusBadRequest},
		{"bad threshold", "/v1/jobs?threshold=1.5", "a,b\n1,2\n", http.StatusBadRequest},
		{"unknown model", "/v1/jobs?model=nope", "a,b\n1,2\n", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "text/csv", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, b)
			}
			var env map[string]apiError
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("error body is not the structured envelope: %v", err)
			}
			if env["error"].Code == "" || env["error"].Message == "" {
				t.Fatalf("error envelope missing code/message: %+v", env)
			}
		})
	}
}

// TestDegenerateDatasetsServeCleanly covers inputs that are well-formed
// CSV but degenerate for the pipeline: they must finish as done or failed
// with an error message — the process must not crash and the job must not
// wedge.
func TestDegenerateDatasetsServeCleanly(t *testing.T) {
	ts, _ := testServer(t, Config{MaxConcurrentJobs: 2})
	cases := []struct {
		name string
		csv  string
	}{
		{"single row", "a,b\n1,2\n"},
		{"single column single value", "a\nx\nx\nx\nx\n"},
		{"all identical rows", "a,b\n" + strings.Repeat("same,same\n", 30)},
		{"single cell", "a\nv\n"},
		{"empty strings", "a,b\n" + strings.Repeat(",\n", 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, resp := postCSV(t, ts.URL+"/v1/jobs?seed=3", []byte(tc.csv))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status %d", resp.StatusCode)
			}
			end := waitDone(t, ts.URL, st.ID)
			if end.State != JobDone && end.State != JobFailed {
				t.Fatalf("state = %s, want done or failed", end.State)
			}
			if end.State == JobFailed && end.Error == "" {
				t.Fatal("failed job must carry an error message")
			}
		})
	}
}

// TestCancelRunningJob exercises DELETE-as-cancel on a job big enough to
// still be in flight.
func TestCancelRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation e2e is not -short")
	}
	b := datasets.Tax(4000, 3)
	csv := benchCSV(t, b.Dirty)
	ts, _ := testServer(t, Config{Workers: 1, MaxConcurrentJobs: 1})

	st, resp := postCSV(t, ts.URL+"/v1/jobs?seed=1", csv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	end := waitDone(t, ts.URL, st.ID)
	if end.State != JobCanceled {
		t.Fatalf("state after DELETE = %s, want canceled", end.State)
	}
	// The result endpoint reports the cancellation as a structured conflict.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result status after cancel = %d, want 409", rresp.StatusCode)
	}
}

// TestQueueBackpressure pins the 429 admission contract with a full queue.
func TestQueueBackpressure(t *testing.T) {
	ts, svc := testServer(t, Config{Workers: 1, MaxConcurrentJobs: 1, MaxQueuedJobs: 1})
	// Occupy the single runner long enough to observe the full queue.
	big := benchCSV(t, datasets.Hospital(300, 2).Dirty)
	first, resp := postCSV(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	// Fill the queue (the runner may have popped the first job already, so
	// allow one extra accepted submission before demanding a 429).
	small := []byte("a,b\n1,2\n3,4\n")
	saw429 := false
	for i := 0; i < 4 && !saw429; i++ {
		_, r := postCSV(t, ts.URL+"/v1/jobs", small)
		if r.StatusCode == http.StatusTooManyRequests {
			saw429 = true
		} else if r.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: unexpected status %d", i, r.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("queue never pushed back with 429")
	}
	_ = svc
	waitDone(t, ts.URL, first.ID)
}

// TestCancelQueuedFreesSlot pins that DELETE on queued jobs releases their
// admission slots immediately: after canceling the waiting jobs, a new
// submission must be accepted even though the runner is still busy.
func TestCancelQueuedFreesSlot(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1, MaxConcurrentJobs: 1, MaxQueuedJobs: 2})
	big := benchCSV(t, datasets.Hospital(300, 2).Dirty)
	small := []byte("a,b\n1,2\n3,4\n")

	first, resp := postCSV(t, ts.URL+"/v1/jobs", big) // occupies the runner
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	// Fill the queue to capacity, tolerating the race where the runner has
	// not yet popped the first job.
	var queued []string
	for len(queued) < 2 {
		st, r := postCSV(t, ts.URL+"/v1/jobs", small)
		if r.StatusCode == http.StatusTooManyRequests {
			break
		}
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit: %d", r.StatusCode)
		}
		queued = append(queued, st.ID)
	}
	// Cancel every waiting job: their slots must free up instantly.
	for _, id := range queued {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	_, r := postCSV(t, ts.URL+"/v1/jobs", small)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after canceling queued jobs = %d, want 202 (slots must free immediately)", r.StatusCode)
	}
	waitDone(t, ts.URL, first.ID)
}

// TestDeleteDoesNotLeakOrder pins that DELETEing finished jobs shrinks the
// retained-job bookkeeping instead of accumulating stale ids forever.
func TestDeleteDoesNotLeakOrder(t *testing.T) {
	ts, svc := testServer(t, Config{Workers: 1, MaxConcurrentJobs: 1})
	small := []byte("a,b\n1,2\n3,4\n")
	for i := 0; i < 5; i++ {
		st, resp := postCSV(t, ts.URL+"/v1/jobs", small)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		waitDone(t, ts.URL, st.ID)
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	svc.mgr.mu.Lock()
	orderLen, jobsLen := len(svc.mgr.order), len(svc.mgr.jobs)
	svc.mgr.mu.Unlock()
	if jobsLen != 0 {
		t.Errorf("jobs table has %d entries after deleting everything", jobsLen)
	}
	if orderLen != 0 {
		t.Errorf("order list leaks %d stale ids after deletes", orderLen)
	}
}

// TestHealthzAndMetrics smoke-tests the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	ts, _ := testServer(t, Config{})
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}

	st, _ := postCSV(t, ts.URL+"/v1/jobs", []byte("a,b\nx,1\ny,2\nx,3\n"))
	waitDone(t, ts.URL, st.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"zeroedd_jobs_submitted_total 1",
		"zeroedd_rows_ingested_total 3",
		"zeroedd_detect_seconds_count",
		`zeroedd_jobs_current{state="queued"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestUnknownJobRoutes pins 404s for unknown IDs on every job route.
func TestUnknownJobRoutes(t *testing.T) {
	ts, _ := testServer(t, Config{})
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodGet, "/v1/jobs/nope/result"},
		{http.MethodDelete, "/v1/jobs/nope"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
	}
}
