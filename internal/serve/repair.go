package serve

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/repair"
)

// The served detect→repair loop: POST /v1/models/{id}/repair scores an
// uploaded table against a registered model — the cheap phase only, no
// refit — then applies the repair strategies (FD-implied values, typo
// correction, numeric medians, dominant modes) to the flagged cells and
// returns the corrected table with a cell-level change log. The same
// artifact and the same upload bytes always produce the same corrected
// table and change log, bit-for-bit identical to running `zeroed
// -model-in ... -repair` on the same inputs.

// RepairChange is one cell-level entry of the change log. Field names
// match the JSON lines `zeroed -repair-log` emits.
type RepairChange struct {
	Row      int    `json:"row"`
	Col      int    `json:"col"`
	Attr     string `json:"attr"`
	Old      string `json:"old"`
	New      string `json:"new"`
	Strategy string `json:"strategy"`
}

// RepairResult is the wire form of one served detect→repair call.
type RepairResult struct {
	ModelID string   `json:"model_id"`
	Attrs   []string `json:"attrs"`
	Rows    int      `json:"rows"`
	// Flagged counts cells the detector predicted erroneous; Repaired
	// counts the subset the repairer changed (repair never invents data,
	// so cells without confident evidence stay untouched).
	Flagged  int            `json:"flagged"`
	Repaired int            `json:"repaired"`
	Changes  []RepairChange `json:"changes"`
	// Table is the corrected table in schema order, header excluded.
	// Suppressed by ?table=0 when the caller only wants the change log.
	Table [][]string `json:"table,omitempty"`
	// DroppedCols lists upload columns outside the model schema that the
	// header mapping dropped before scoring.
	DroppedCols []string `json:"dropped_cols,omitempty"`
	ScoreMS     int64    `json:"score_ms"`
	RepairMS    int64    `json:"repair_ms"`
	// Trace is the request's span tree, embedded when the client asked for
	// it with ?trace=1.
	Trace *obs.Node `json:"trace,omitempty"`
}

// handleModelRepair scores an uploaded CSV or NDJSON body against a
// registered model and repairs the flagged cells. Like score, the upload
// header may be a permutation or superset of the model schema, the model
// is pinned for the duration of the request, and no refit happens.
func (s *Server) handleModelRepair(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.acquire(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	defer s.reg.release(id)
	if e.m.Degenerate() {
		writeErr(w, r, http.StatusConflict, "degenerate_model",
			"model was fitted on single-class data and cannot score new rows; refit on richer data")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, mapping, err := s.ingestUpload("repair", r, body, e.m.Attrs())
	if err != nil {
		writeIngestErr(w, r, err, s.cfg.MaxUploadBytes)
		return
	}
	res, err := s.scoreModel(r, e, ds)
	if err != nil {
		switch s.classifyFailure(r) {
		case failDeadline:
			s.writeDeadline(w, r)
			return
		case failClientGone:
			return
		}
		if errors.Is(err, errInternalPanic) {
			writeErr(w, r, http.StatusInternalServerError, "internal", "internal error during scoring")
			return
		}
		writeErr(w, r, http.StatusBadRequest, "score_failed", err.Error())
		return
	}
	s.met.scoreRuns.Add(1)
	s.met.scoreNanos.Add(int64(res.Runtime))

	start := time.Now()
	_, repSpan := obs.Start(r.Context(), "repair.apply")
	fixed, fixes := repair.New(repair.Config{}).Apply(ds, res.Pred)
	repSpan.SetInt("changes", int64(len(fixes)))
	repSpan.End()
	repairDur := time.Since(start)
	s.met.repairRuns.Add(1)
	s.met.repairNanos.Add(int64(repairDur))
	s.met.repairedCells.Add(int64(len(fixes)))

	out := RepairResult{
		ModelID:  e.id,
		Attrs:    e.m.Attrs(),
		Rows:     ds.NumRows(),
		Repaired: len(fixes),
		Changes:  make([]RepairChange, 0, len(fixes)),
		ScoreMS:  res.Runtime.Milliseconds(),
		RepairMS: repairDur.Milliseconds(),
	}
	for _, row := range res.Pred {
		for _, p := range row {
			if p {
				out.Flagged++
			}
		}
	}
	attrs := e.m.Attrs()
	for _, f := range fixes {
		out.Changes = append(out.Changes, RepairChange{
			Row: f.Row, Col: f.Col, Attr: attrs[f.Col],
			Old: f.Old, New: f.New, Strategy: string(f.Strategy),
		})
	}
	if mapping != nil {
		out.DroppedCols = mapping.Dropped
	}
	if r.URL.Query().Get("table") != "0" {
		out.Table = make([][]string, fixed.NumRows())
		for i := range out.Table {
			row := make([]string, fixed.NumCols())
			for j := range row {
				row[j] = fixed.Value(i, j)
			}
			out.Table[i] = row
		}
	}
	if wantTrace(r) {
		out.Trace = traceTree(r)
	}
	writeJSON(w, http.StatusOK, out)
}
