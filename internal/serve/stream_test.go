package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// streamOut is one parsed NDJSON stream response.
type streamOut struct {
	status  int
	lines   []streamLine
	events  int
	summary *streamSummary
	errLine string
	raw     []string // raw verdict-line bytes, for byte-identity checks
}

// postStream sends a stream request and parses the NDJSON frames.
func postStream(t *testing.T, url, contentType string, body []byte) streamOut {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := streamOut{status: resp.StatusCode}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("unparseable stream line %q: %v", line, err)
		}
		switch {
		case probe["error"] != nil:
			out.errLine = line
		case probe["event"] != nil:
			out.events++
		case probe["done"] != nil:
			var sum streamSummary
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			out.summary = &sum
		default:
			var l streamLine
			if err := json.Unmarshal([]byte(line), &l); err != nil {
				t.Fatal(err)
			}
			out.lines = append(out.lines, l)
			out.raw = append(out.raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// fitHTTPModel fits one model over the wire and returns its status.
func fitHTTPModel(t *testing.T, base string, csv []byte, query string) ModelStatus {
	t.Helper()
	var st ModelStatus
	postModelCSV(t, base+"/v1/models"+query, csv, http.StatusCreated, &st)
	return st
}

// rowsCSV renders raw rows under a header as CSV bytes.
func rowsCSV(t *testing.T, attrs []string, rows [][]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(strings.Join(attrs, ",") + "\n")
	for _, r := range rows {
		buf.WriteString(strings.Join(r, ",") + "\n")
	}
	return buf.Bytes()
}

// dsRows materializes the first n rows of a dataset, cycling when n exceeds
// the dataset (values stay within the fit dictionaries).
func dsRows(ds *table.Dataset, n int) [][]string {
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		rows[i] = ds.Row(i % ds.NumRows())
	}
	return rows
}

// novelRows builds rows whose every cell is unseen at fit time.
func novelRows(cols, n int) [][]string {
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = fmt.Sprintf("novel-%d-%d", j, i%17)
		}
		rows[i] = row
	}
	return rows
}

// TestStreamEndpointChunkInvariance pins the transport half of the
// chunking-invariance contract: the same body streamed with different
// server-side chunk sizes yields byte-identical verdict lines.
func TestStreamEndpointChunkInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(150, 5)
	csv := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csv, "?seed=5")

	// A couple of unseen values exercise the cold path across chunk splits.
	bodyRows := dsRows(bench.Dirty, 90)
	bodyRows[7][0] = "stream-novel-a"
	bodyRows[71][2] = "stream-novel-b"
	body := rowsCSV(t, st.Attrs, bodyRows)

	base := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?chunk=64", "text/csv", body)
	if base.status != http.StatusOK || base.errLine != "" {
		t.Fatalf("stream status %d, err %q", base.status, base.errLine)
	}
	if len(base.lines) != 90 || base.summary == nil || base.summary.Rows != 90 {
		t.Fatalf("stream returned %d lines, summary %+v", len(base.lines), base.summary)
	}
	for _, chunk := range []string{"1", "7", "90"} {
		got := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?chunk="+chunk, "text/csv", body)
		if got.status != http.StatusOK || got.errLine != "" {
			t.Fatalf("chunk=%s status %d, err %q", chunk, got.status, got.errLine)
		}
		if len(got.raw) != len(base.raw) {
			t.Fatalf("chunk=%s returned %d lines, want %d", chunk, len(got.raw), len(base.raw))
		}
		for i := range base.raw {
			if got.raw[i] != base.raw[i] {
				t.Fatalf("chunk=%s line %d differs:\n  %s\n  %s", chunk, i, got.raw[i], base.raw[i])
			}
		}
	}
}

// TestStreamNDJSONBody: NDJSON array and object framings score identically
// to the CSV framing of the same rows.
func TestStreamNDJSONBody(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(120, 3)
	csv := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csv, "?seed=3")

	rows := dsRows(bench.Dirty, 40)
	want := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv", rowsCSV(t, st.Attrs, rows))
	if want.status != http.StatusOK || want.errLine != "" {
		t.Fatalf("csv stream status %d, err %q", want.status, want.errLine)
	}

	var arr, obj bytes.Buffer
	for _, r := range rows {
		a, _ := json.Marshal(r)
		arr.Write(a)
		arr.WriteByte('\n')
		m := map[string]string{}
		for j, attr := range st.Attrs {
			m[attr] = r[j]
		}
		o, _ := json.Marshal(m)
		obj.Write(o)
		obj.WriteByte('\n')
	}
	for name, body := range map[string][]byte{"array": arr.Bytes(), "object": obj.Bytes()} {
		got := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?format=ndjson", "application/x-ndjson", body)
		if got.status != http.StatusOK || got.errLine != "" {
			t.Fatalf("%s stream status %d, err %q", name, got.status, got.errLine)
		}
		if len(got.raw) != len(want.raw) {
			t.Fatalf("%s stream returned %d lines, want %d", name, len(got.raw), len(want.raw))
		}
		for i := range want.raw {
			if got.raw[i] != want.raw[i] {
				t.Fatalf("%s stream line %d differs from CSV framing", name, i)
			}
		}
	}
}

// TestStreamRejections pins the stream endpoint's boundary validation.
func TestStreamRejections(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(120, 3)
	st := fitHTTPModel(t, ts.URL, benchCSV(t, bench.Dirty), "?seed=3")

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown model", "/v1/models/m-404404/stream", "a,b\n1,2\n", http.StatusNotFound},
		{"wrong header", "/v1/models/" + st.ID + "/stream", "x,y\n1,2\n", http.StatusBadRequest},
		{"bad chunk", "/v1/models/" + st.ID + "/stream?chunk=0", "", http.StatusBadRequest},
		{"bad format", "/v1/models/" + st.ID + "/stream?format=xml", "", http.StatusBadRequest},
		{"empty body", "/v1/models/" + st.ID + "/stream", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "text/csv", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestDeleteDefersArtifactsUntilPinsDrain is the deterministic half of the
// evict-while-scoring regression: while a request pins a model, DELETE
// evicts the id (new requests 404) but must leave the artifact files on
// disk; the last release reaps them.
func TestDeleteDefersArtifactsUntilPinsDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	dir := t.TempDir()
	ts, svc := testServer(t, Config{Workers: 2, ModelDir: dir})
	bench := datasets.Hospital(120, 3)
	st := fitHTTPModel(t, ts.URL, benchCSV(t, bench.Dirty), "?seed=3")
	artifact := filepath.Join(dir, artifactFile(st.ID, 1))
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact missing after fit: %v", err)
	}

	e, ok := svc.reg.acquire(st.ID) // simulate an in-flight score
	if !ok {
		t.Fatal("acquire failed")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	// Evicted: new requests 404 ...
	if _, ok := svc.reg.get(st.ID); ok {
		t.Fatal("model still visible after delete")
	}
	// ... but the pinned request's artifact survives until the pin drains.
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact reaped while pinned: %v", err)
	}
	if e.m == nil {
		t.Fatal("pinned entry lost its model")
	}
	svc.reg.release(st.ID)
	if _, err := os.Stat(artifact); !os.IsNotExist(err) {
		t.Fatalf("artifact not reaped after last release: %v", err)
	}
}

// TestDeleteWhileScoringConcurrent hammers /score from several goroutines
// while the model is deleted mid-flight: every response must be a complete
// 200 or a clean 404 — never a 5xx or a torn body. Run with -race.
func TestDeleteWhileScoringConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	dir := t.TempDir()
	ts, _ := testServer(t, Config{Workers: 4, ModelDir: dir})
	bench := datasets.Hospital(120, 3)
	csv := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csv, "?seed=3")
	body := rowsCSV(t, st.Attrs, dsRows(bench.Dirty, 30))

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				resp, err := http.Post(ts.URL+"/v1/models/"+st.ID+"/score", "text/csv", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var sr ScoreResult
					if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || sr.Rows != 30 {
						errs <- fmt.Sprintf("torn 200 body: rows=%d err=%v", sr.Rows, err)
					}
				case http.StatusNotFound:
					// deleted; fine
				default:
					errs <- fmt.Sprintf("status %d", resp.StatusCode)
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					return
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let scoring get in flight
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// All pins drained: the artifact must be gone.
	if _, err := os.Stat(filepath.Join(dir, artifactFile(st.ID, 1))); !os.IsNotExist(err) {
		t.Fatalf("artifact survived delete after pins drained: %v", err)
	}
}

// TestRetryAfterUnified pins the shared 429 contract: both backpressure
// paths — fit semaphore and job queue — answer with the structured error
// envelope AND a Retry-After header.
func TestRetryAfterUnified(t *testing.T) {
	ts, svc := testServer(t, Config{Workers: 1, MaxConcurrentJobs: 1, MaxQueuedJobs: 1})
	small := []byte("a,b\n1,2\n3,4\n")

	// Fit path: saturate the fit semaphore directly, then fit.
	svc.reg.fitSem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/models", "text/csv", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	var envelope map[string]apiError
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-svc.reg.fitSem
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated fit path status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("fit 429 Retry-After = %q, want \"5\"", got)
	}
	if envelope["error"].Code != "busy_fitting" || envelope["error"].Message == "" {
		t.Fatalf("fit 429 envelope = %+v", envelope)
	}

	// Queue path: occupy the single runner, fill the queue, then submit.
	big := benchCSV(t, datasets.Hospital(300, 2).Dirty)
	first, r0 := postCSV(t, ts.URL+"/v1/jobs", big)
	if r0.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r0.StatusCode)
	}
	var saw *http.Response
	for i := 0; i < 4 && saw == nil; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "text/csv", bytes.NewReader(small))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw = resp
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if saw == nil {
		t.Fatal("queue never pushed back with 429")
	}
	envelope = map[string]apiError{}
	if err := json.NewDecoder(saw.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	saw.Body.Close()
	if got := saw.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("queue 429 Retry-After = %q, want \"1\"", got)
	}
	if envelope["error"].Code != "queue_full" || envelope["error"].Message == "" {
		t.Fatalf("queue 429 envelope = %+v", envelope)
	}
	waitDone(t, ts.URL, first.ID)
}

// TestStreamHotSwapUnderLoad is the tentpole acceptance test: more than a
// thousand rows streamed by concurrent clients across a drift-triggered
// refit, with zero dropped or failed rows, every verdict line bit-identical
// to scoring the same row against the artifact of the version the line
// claims — no torn chunks — and the hot-swapped version visible in the
// registry with the old artifact retained for rollback.
func TestStreamHotSwapUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("fits several models")
	}
	dir := t.TempDir()
	ts, _ := testServer(t, Config{
		Workers:         4,
		ModelDir:        dir,
		MaxRows:         400, // bounds the refit accumulator, keeps refits fast
		StreamChunkRows: 64,
		DriftThreshold:  0.15,
		// The shift gauge over a PARTIAL replay of the fit data reads high
		// (sampling variance), so tripping is deferred until the warm phase
		// has streamed in full.
		DriftMinRows: 400,
	})
	bench := datasets.Hospital(250, 5)
	csv := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csv, "?seed=5")

	// Phase 1: fill the refit accumulator with fit-like rows (zero unseen
	// mass, shift stays far below the threshold — no trip).
	warm := dsRows(bench.Dirty, 400)
	out := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv", rowsCSV(t, st.Attrs, warm))
	if out.status != http.StatusOK || out.errLine != "" || len(out.lines) != 400 {
		t.Fatalf("warm stream: status %d err %q lines %d", out.status, out.errLine, len(out.lines))
	}
	if out.summary.Refits != 0 || out.summary.Drift.UnseenRate != 0 {
		t.Fatalf("warm stream tripped: %+v", out.summary)
	}

	// Phase 2: three concurrent streams — one all-novel (drives the
	// unseen-value gauge over the threshold), two fit-like — racing the
	// background refit and the hot swap.
	sets := [][][]string{
		novelRows(len(st.Attrs), 250),
		dsRows(bench.Dirty, 250),
		dsRows(bench.Dirty, 250),
	}
	outs := make([]streamOut, len(sets))
	var wg sync.WaitGroup
	for i, rows := range sets {
		wg.Add(1)
		go func(i int, rows [][]string) {
			defer wg.Done()
			outs[i] = postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?chunk=32", "text/csv", rowsCSV(t, st.Attrs, rows))
		}(i, rows)
	}
	wg.Wait()
	totalRows := 400
	refitEvents := 0
	for i, o := range outs {
		if o.status != http.StatusOK || o.errLine != "" {
			t.Fatalf("stream %d: status %d err %q", i, o.status, o.errLine)
		}
		if len(o.lines) != len(sets[i]) {
			t.Fatalf("stream %d: %d verdict lines for %d rows (dropped rows)", i, len(o.lines), len(sets[i]))
		}
		for j, l := range o.lines {
			if l.Row != j {
				t.Fatalf("stream %d: line %d claims row %d", i, j, l.Row)
			}
		}
		totalRows += len(o.lines)
		refitEvents += o.events + o.summary.Refits
	}
	if totalRows < 1000 {
		t.Fatalf("streamed only %d rows, want >= 1000", totalRows)
	}
	if refitEvents == 0 {
		t.Fatal("no stream reported a triggered refit")
	}

	// The swap lands asynchronously; wait for the registry version to
	// advance and for all started refits to settle.
	deadline := time.Now().Add(120 * time.Second)
	var info ModelStatus
	for {
		if time.Now().After(deadline) {
			t.Fatalf("model never hot-swapped: %+v", info)
		}
		resp, err := http.Get(ts.URL + "/v1/models/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.Version >= 2 && refitsSettled(t, ts.URL) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if info.RefitRows == 0 {
		t.Fatalf("hot-swapped model has no refit lineage: %+v", info)
	}

	// Every served version's artifact is on disk — v1 retained for rollback.
	models := map[int]*zeroed.Model{}
	loadVersion := func(v int) *zeroed.Model {
		if m, ok := models[v]; ok {
			return m
		}
		m, err := model.LoadFile(filepath.Join(dir, artifactFile(st.ID, v)))
		if err != nil {
			t.Fatalf("artifact for served version %d missing: %v", v, err)
		}
		models[v] = m
		return m
	}

	// Bit-identity per line: group each response's consecutive same-version
	// runs and score them against that version's artifact. A torn chunk —
	// half old model, half new — cannot pass this.
	verify := func(rows [][]string, o streamOut) {
		for start := 0; start < len(o.lines); {
			end := start
			for end < len(o.lines) && o.lines[end].Version == o.lines[start].Version {
				end++
			}
			m := loadVersion(o.lines[start].Version)
			res, err := m.ScoreRows(rows[start:end])
			if err != nil {
				t.Fatal(err)
			}
			for i := start; i < end; i++ {
				for j := range o.lines[i].Pred {
					if o.lines[i].Pred[j] != res.Pred[i-start][j] {
						t.Fatalf("row %d verdict differs from version-%d artifact", i, o.lines[i].Version)
					}
					if math.Float64bits(o.lines[i].Scores[j]) != math.Float64bits(res.Scores[i-start][j]) {
						t.Fatalf("row %d score bits differ from version-%d artifact", i, o.lines[i].Version)
					}
				}
			}
			start = end
		}
	}
	verify(warm, out)
	for i := range outs {
		verify(sets[i], outs[i])
	}

	// Metrics: drift gauges and the swapped version are exported.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		fmt.Sprintf("zeroedd_model_version{model=%q} %d", st.ID, info.Version),
		fmt.Sprintf("zeroedd_model_drift{model=%q,gauge=\"unseen_rate\"}", st.ID),
		fmt.Sprintf("zeroedd_model_drift{model=%q,gauge=\"shift\"}", st.ID),
		"zeroedd_stream_rows_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// refitsSettled reports whether every started refit has finished (swapped
// or failed), read from the metrics endpoint.
func refitsSettled(t *testing.T, base string) bool {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	counts := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "zeroedd_model_refits_total{outcome=") {
			continue
		}
		var outcome string
		var n int
		if _, err := fmt.Sscanf(line, "zeroedd_model_refits_total{outcome=%q} %d", &outcome, &n); err == nil {
			counts[outcome] = n
		}
	}
	return counts["started"] == counts["swapped"]+counts["failed"]
}
