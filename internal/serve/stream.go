package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/zeroed"
)

// Streaming detection: POST /v1/models/{id}/stream accepts a chunked CSV or
// NDJSON body and answers with one JSON line per input row, scored against
// the registered model through its warm score cache. Verdicts are
// chunk-invariant — the same rows split at any transport boundaries produce
// byte-identical verdict lines — because scoring binds a fresh
// dictionary-seeded dataset per chunk (see zeroed.StreamScorer).
//
// Every streamed cell also feeds the model's drift gauges (unseen-value
// rate and score-distribution shift against the fit-time frequency
// snapshot, exported as zeroedd_model_drift). When a gauge trips the
// configured threshold, a background refit trains a successor on the rows
// accumulated so far (bounded by Config.MaxRows), persists it as a new
// versioned artifact, and hot-swaps it into the registry: in-flight chunks
// finish on the old model, later chunks score on the successor, and the old
// artifact stays on disk for rollback.

// streamTable holds one StreamScorer per model id, created lazily on the
// first stream request and dropped on DELETE. All concurrent streams of one
// model share the scorer, so their rows pool into one drift estimate and
// one refit accumulator.
type streamTable struct {
	mu sync.Mutex
	m  map[string]*zeroed.StreamScorer
}

// scorerFor returns the model's stream scorer, creating it on first use.
func (s *Server) scorerFor(id string, e *regEntry) (*zeroed.StreamScorer, error) {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	if s.streams.m == nil {
		s.streams.m = make(map[string]*zeroed.StreamScorer)
	}
	if ss, ok := s.streams.m[id]; ok {
		return ss, nil
	}
	ss, err := zeroed.NewStreamScorer(e.m, zeroed.StreamConfig{
		DriftThreshold:    s.cfg.DriftThreshold,
		DriftMinRows:      s.cfg.DriftMinRows,
		MaxAccumRows:      s.cfg.MaxRows,
		RefitBackoffBase:  s.cfg.RefitBackoff,
		RefitBreakerAfter: s.cfg.RefitBreakerAfter,
	})
	if err != nil {
		return nil, err
	}
	s.streams.m[id] = ss
	return ss, nil
}

func (s *Server) dropScorer(id string) {
	s.streams.mu.Lock()
	delete(s.streams.m, id)
	s.streams.mu.Unlock()
}

// driftReadings snapshots every live stream scorer's gauges for /metrics.
func (s *Server) driftReadings() map[string]stats.DriftGauges {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	out := make(map[string]stats.DriftGauges, len(s.streams.m))
	for id, ss := range s.streams.m {
		g, _ := ss.Gauges()
		out[id] = g
	}
	return out
}

// healthReadings snapshots every live stream scorer's refit-failure
// containment state for /metrics.
func (s *Server) healthReadings() map[string]zeroed.RefitHealth {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	out := make(map[string]zeroed.RefitHealth, len(s.streams.m))
	for id, ss := range s.streams.m {
		out[id] = ss.RefitHealth()
	}
	return out
}

// streamLine is one NDJSON verdict frame: the verdict for input row Row,
// scored by model version Version. Scores round-trip through JSON
// bit-exactly, so equal rows always render equal bytes.
type streamLine struct {
	Row     int       `json:"row"`
	Version int       `json:"version"`
	Pred    []bool    `json:"pred"`
	Scores  []float64 `json:"scores,omitempty"`
}

// streamSummary is the final NDJSON frame of a stream response.
type streamSummary struct {
	Done    bool              `json:"done"`
	Model   string            `json:"model"`
	Version int               `json:"version"`
	Rows    int               `json:"rows"`
	Drift   stats.DriftGauges `json:"drift"`
	Refits  int               `json:"refits,omitempty"`
}

// handleModelStream scores a chunked CSV or NDJSON body row-by-row against
// a registered model, writing one JSON line per row as chunks arrive. The
// body decodes through the shared table.RowSource layer: a CSV header may
// be a permutation or superset of the model's schema (table.MapSource
// projects it), NDJSON lines bind directly to the schema.
func (s *Server) handleModelStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.acquire(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	defer s.reg.release(id)
	if e.m.Degenerate() {
		writeErr(w, r, http.StatusConflict, "degenerate_model",
			"model was fitted on single-class data and cannot score new rows; refit on richer data")
		return
	}
	ss, err := s.scorerFor(id, e)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "stream_failed", err.Error())
		return
	}
	chunkRows := s.cfg.StreamChunkRows
	if v := r.URL.Query().Get("chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > s.cfg.MaxRows {
			writeErr(w, r, http.StatusBadRequest, "bad_param",
				fmt.Sprintf("bad chunk %q: must be an int in [1, %d]", v, s.cfg.MaxRows))
			return
		}
		chunkRows = n
	}
	src, _, err := uploadSource(r, r.Body, e.m.Attrs())
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_stream", err.Error())
		return
	}
	withScores := r.URL.Query().Get("scores") != "0"

	// Verdicts are written while the body is still being read, so the
	// HTTP/1.x server must not close the unread request body at the first
	// response write. Best-effort: HTTP/2 is always full-duplex.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	// From here on the response is a 200 NDJSON stream; failures surface as
	// a terminal {"error": ...} line, not a status rewrite.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	s.met.streamRequests.Add(1)

	rows, refits := 0, 0
	var st zeroed.ChunkStatus
	for {
		chunk, rerr := src.Next(chunkRows)
		if len(chunk) > 0 {
			res, cst, err := s.scoreChunk(r.Context(), ss, chunk)
			if err != nil {
				switch s.classifyFailure(r) {
				case failDeadline:
					// The 200 is already on the wire: the deadline surfaces
					// as a typed terminal NDJSON line instead of a status.
					s.met.deadlines.Add(1)
					_ = enc.Encode(map[string]apiError{"error": apiErrorFor(r, "deadline",
						fmt.Sprintf("stream exceeded the %s server-side deadline", s.cfg.RequestTimeout))})
					return
				case failClientGone:
					return // client gone
				}
				_ = enc.Encode(map[string]apiError{"error": apiErrorFor(r, "score_failed", err.Error())})
				return
			}
			st = cst
			for i := range res.Pred {
				line := streamLine{Row: rows + i, Version: cst.Version, Pred: res.Pred[i]}
				if withScores {
					line.Scores = res.Scores[i]
				}
				if err := enc.Encode(line); err != nil {
					return // client gone
				}
			}
			rows += len(chunk)
			s.met.streamRows.Add(int64(len(chunk)))
			_ = rc.Flush()
			if cst.ShouldRefit && ss.BeginRefit() {
				refits++
				s.met.refitsStarted.Add(1)
				_ = enc.Encode(map[string]any{"event": "refit", "model": id, "version": cst.Version})
				go s.runRefit(id, ss)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			_ = enc.Encode(map[string]apiError{"error": apiErrorFor(r, "bad_stream", rerr.Error())})
			return
		}
		// A long-lived stream ends gracefully when its model is deleted:
		// the chunk that was in flight finished above, nothing tears.
		if _, ok := s.reg.get(id); !ok {
			_ = enc.Encode(map[string]apiError{"error": apiErrorFor(r, "model_deleted", "model was deleted mid-stream")})
			return
		}
	}
	drift := st.Drift
	version := st.Version
	if rows == 0 {
		drift, version = ss.Gauges()
	}
	_ = enc.Encode(streamSummary{Done: true, Model: id, Version: version, Rows: rows, Drift: drift, Refits: refits})
}

// scoreChunk scores one stream chunk on the shared pool, converting stray
// panics into errors like every other request-reachable path.
func (s *Server) scoreChunk(ctx context.Context, ss *zeroed.StreamScorer, chunk [][]string) (res *zeroed.Result, st zeroed.ChunkStatus, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("stream scoring panicked", "request_id", reqIDFrom(ctx),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			err = errInternalPanic
		}
	}()
	return ss.ScoreChunk(ctx, s.mgr.pool, chunk)
}

// runRefit is the background half of a drift trip: fit a successor on the
// accumulated stream (bounded by the fit semaphore, like client-driven
// fits), persist it as the next artifact version, and hot-swap registry and
// scorer. Any failure aborts the refit and keeps the old model serving; the
// drift gauges keep accumulating so a later chunk can trip again.
func (s *Server) runRefit(id string, ss *zeroed.StreamScorer) {
	ok := false
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("refit panicked", "model", id,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
		}
		if !ok {
			s.met.refitFailures.Add(1)
			ss.AbortRefit()
		}
	}()
	s.reg.fitSem <- struct{}{}
	defer func() { <-s.reg.fitSem }()
	m2, err := ss.Refit(context.Background(), s.mgr.pool)
	if err != nil {
		s.log.Error("refit failed", "model", id, "err", err)
		return
	}
	data, err := model.Encode(m2)
	if err != nil {
		s.log.Error("refit failed to encode", "model", id, "err", err)
		return
	}
	version := m2.Lineage().Version
	if s.cfg.ModelDir != "" {
		err := fpRefitPersist.Eval()
		if err == nil {
			err = s.persistArtifact(artifactFile(id, version), data)
		}
		if err != nil {
			s.log.Error("refit failed to persist", "model", id, "err", err)
			// A post-commit failure may have left the successor artifact on
			// disk without a swap; remove it so restart recovers the version
			// that was actually serving.
			_ = os.Remove(filepath.Join(s.cfg.ModelDir, artifactFile(id, version)))
			return
		}
	}
	if _, swapped := s.reg.swap(id, m2, len(data)); !swapped {
		// Deleted while the refit ran: discard the successor and its
		// artifact; the DELETE already reaped (or doomed) the older files.
		if s.cfg.ModelDir != "" {
			_ = os.Remove(filepath.Join(s.cfg.ModelDir, artifactFile(id, version)))
		}
		return
	}
	if err := ss.Install(m2); err != nil {
		s.log.Error("refit failed to install", "model", id, "err", err)
		return
	}
	ok = true
	s.met.refitsSwapped.Add(1)
	s.log.Info("refit swapped", "model", id, "version", version)
	if s.cfg.ModelDir != "" {
		s.reg.writeManifest(s.met)
	}
}
