package serve

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/zeroed"
)

// Streaming detection: POST /v1/models/{id}/stream accepts a chunked CSV or
// NDJSON body and answers with one JSON line per input row, scored against
// the registered model through its warm score cache. Verdicts are
// chunk-invariant — the same rows split at any transport boundaries produce
// byte-identical verdict lines — because scoring binds a fresh
// dictionary-seeded dataset per chunk (see zeroed.StreamScorer).
//
// Every streamed cell also feeds the model's drift gauges (unseen-value
// rate and score-distribution shift against the fit-time frequency
// snapshot, exported as zeroedd_model_drift). When a gauge trips the
// configured threshold, a background refit trains a successor on the rows
// accumulated so far (bounded by Config.MaxRows), persists it as a new
// versioned artifact, and hot-swaps it into the registry: in-flight chunks
// finish on the old model, later chunks score on the successor, and the old
// artifact stays on disk for rollback.

// streamTable holds one StreamScorer per model id, created lazily on the
// first stream request and dropped on DELETE. All concurrent streams of one
// model share the scorer, so their rows pool into one drift estimate and
// one refit accumulator.
type streamTable struct {
	mu sync.Mutex
	m  map[string]*zeroed.StreamScorer
}

// scorerFor returns the model's stream scorer, creating it on first use.
func (s *Server) scorerFor(id string, e *regEntry) (*zeroed.StreamScorer, error) {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	if s.streams.m == nil {
		s.streams.m = make(map[string]*zeroed.StreamScorer)
	}
	if ss, ok := s.streams.m[id]; ok {
		return ss, nil
	}
	ss, err := zeroed.NewStreamScorer(e.m, zeroed.StreamConfig{
		DriftThreshold:    s.cfg.DriftThreshold,
		DriftMinRows:      s.cfg.DriftMinRows,
		MaxAccumRows:      s.cfg.MaxRows,
		RefitBackoffBase:  s.cfg.RefitBackoff,
		RefitBreakerAfter: s.cfg.RefitBreakerAfter,
	})
	if err != nil {
		return nil, err
	}
	s.streams.m[id] = ss
	return ss, nil
}

func (s *Server) dropScorer(id string) {
	s.streams.mu.Lock()
	delete(s.streams.m, id)
	s.streams.mu.Unlock()
}

// driftReadings snapshots every live stream scorer's gauges for /metrics.
func (s *Server) driftReadings() map[string]stats.DriftGauges {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	out := make(map[string]stats.DriftGauges, len(s.streams.m))
	for id, ss := range s.streams.m {
		g, _ := ss.Gauges()
		out[id] = g
	}
	return out
}

// healthReadings snapshots every live stream scorer's refit-failure
// containment state for /metrics.
func (s *Server) healthReadings() map[string]zeroed.RefitHealth {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	out := make(map[string]zeroed.RefitHealth, len(s.streams.m))
	for id, ss := range s.streams.m {
		out[id] = ss.RefitHealth()
	}
	return out
}

// streamLine is one NDJSON verdict frame: the verdict for input row Row,
// scored by model version Version. Scores round-trip through JSON
// bit-exactly, so equal rows always render equal bytes.
type streamLine struct {
	Row     int       `json:"row"`
	Version int       `json:"version"`
	Pred    []bool    `json:"pred"`
	Scores  []float64 `json:"scores,omitempty"`
}

// streamSummary is the final NDJSON frame of a stream response.
type streamSummary struct {
	Done    bool              `json:"done"`
	Model   string            `json:"model"`
	Version int               `json:"version"`
	Rows    int               `json:"rows"`
	Drift   stats.DriftGauges `json:"drift"`
	Refits  int               `json:"refits,omitempty"`
}

// rowSource yields raw rows in the model's attribute order, up to max per
// call. It returns io.EOF (possibly alongside a last batch) at end of body.
type rowSource interface {
	next(max int) ([][]string, error)
}

// handleModelStream scores a chunked CSV or NDJSON body row-by-row against
// a registered model, writing one JSON line per row as chunks arrive.
func (s *Server) handleModelStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.acquire(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	defer s.reg.release(id)
	if e.m.Degenerate() {
		writeErr(w, http.StatusConflict, "degenerate_model",
			"model was fitted on single-class data and cannot score new rows; refit on richer data")
		return
	}
	ss, err := s.scorerFor(id, e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "stream_failed", err.Error())
		return
	}
	chunkRows := s.cfg.StreamChunkRows
	if v := r.URL.Query().Get("chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > s.cfg.MaxRows {
			writeErr(w, http.StatusBadRequest, "bad_param",
				fmt.Sprintf("bad chunk %q: must be an int in [1, %d]", v, s.cfg.MaxRows))
			return
		}
		chunkRows = n
	}
	src, err := newRowSource(r, e.m.Attrs())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_stream", err.Error())
		return
	}
	withScores := r.URL.Query().Get("scores") != "0"

	// Verdicts are written while the body is still being read, so the
	// HTTP/1.x server must not close the unread request body at the first
	// response write. Best-effort: HTTP/2 is always full-duplex.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	// From here on the response is a 200 NDJSON stream; failures surface as
	// a terminal {"error": ...} line, not a status rewrite.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	s.met.streamRequests.Add(1)

	rows, refits := 0, 0
	var st zeroed.ChunkStatus
	for {
		chunk, rerr := src.next(chunkRows)
		if len(chunk) > 0 {
			res, cst, err := s.scoreChunk(r.Context(), ss, chunk)
			if err != nil {
				switch s.classifyFailure(r) {
				case failDeadline:
					// The 200 is already on the wire: the deadline surfaces
					// as a typed terminal NDJSON line instead of a status.
					s.met.deadlines.Add(1)
					_ = enc.Encode(map[string]apiError{"error": {Code: "deadline",
						Message: fmt.Sprintf("stream exceeded the %s server-side deadline", s.cfg.RequestTimeout)}})
					return
				case failClientGone:
					return // client gone
				}
				_ = enc.Encode(map[string]apiError{"error": {Code: "score_failed", Message: err.Error()}})
				return
			}
			st = cst
			for i := range res.Pred {
				line := streamLine{Row: rows + i, Version: cst.Version, Pred: res.Pred[i]}
				if withScores {
					line.Scores = res.Scores[i]
				}
				if err := enc.Encode(line); err != nil {
					return // client gone
				}
			}
			rows += len(chunk)
			s.met.streamRows.Add(int64(len(chunk)))
			_ = rc.Flush()
			if cst.ShouldRefit && ss.BeginRefit() {
				refits++
				s.met.refitsStarted.Add(1)
				_ = enc.Encode(map[string]any{"event": "refit", "model": id, "version": cst.Version})
				go s.runRefit(id, ss)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			_ = enc.Encode(map[string]apiError{"error": {Code: "bad_stream", Message: rerr.Error()}})
			return
		}
		// A long-lived stream ends gracefully when its model is deleted:
		// the chunk that was in flight finished above, nothing tears.
		if _, ok := s.reg.get(id); !ok {
			_ = enc.Encode(map[string]apiError{"error": {Code: "model_deleted", Message: "model was deleted mid-stream"}})
			return
		}
	}
	drift := st.Drift
	version := st.Version
	if rows == 0 {
		drift, version = ss.Gauges()
	}
	_ = enc.Encode(streamSummary{Done: true, Model: id, Version: version, Rows: rows, Drift: drift, Refits: refits})
}

// scoreChunk scores one stream chunk on the shared pool, converting stray
// panics into errors like every other request-reachable path.
func (s *Server) scoreChunk(ctx context.Context, ss *zeroed.StreamScorer, chunk [][]string) (res *zeroed.Result, st zeroed.ChunkStatus, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(os.Stderr, "zeroedd: stream scoring panicked: %v\n%s", rec, debug.Stack())
			err = errInternalPanic
		}
	}()
	return ss.ScoreChunk(ctx, s.mgr.pool, chunk)
}

// runRefit is the background half of a drift trip: fit a successor on the
// accumulated stream (bounded by the fit semaphore, like client-driven
// fits), persist it as the next artifact version, and hot-swap registry and
// scorer. Any failure aborts the refit and keeps the old model serving; the
// drift gauges keep accumulating so a later chunk can trip again.
func (s *Server) runRefit(id string, ss *zeroed.StreamScorer) {
	ok := false
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(os.Stderr, "zeroedd: refit panicked: %v\n%s", rec, debug.Stack())
		}
		if !ok {
			s.met.refitFailures.Add(1)
			ss.AbortRefit()
		}
	}()
	s.reg.fitSem <- struct{}{}
	defer func() { <-s.reg.fitSem }()
	m2, err := ss.Refit(context.Background(), s.mgr.pool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeroedd: refit of %s failed: %v\n", id, err)
		return
	}
	data, err := model.Encode(m2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeroedd: refit of %s failed to encode: %v\n", id, err)
		return
	}
	version := m2.Lineage().Version
	if s.cfg.ModelDir != "" {
		err := fpRefitPersist.Eval()
		if err == nil {
			err = s.persistArtifact(artifactFile(id, version), data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "zeroedd: refit of %s failed to persist: %v\n", id, err)
			// A post-commit failure may have left the successor artifact on
			// disk without a swap; remove it so restart recovers the version
			// that was actually serving.
			_ = os.Remove(filepath.Join(s.cfg.ModelDir, artifactFile(id, version)))
			return
		}
	}
	if _, swapped := s.reg.swap(id, m2, len(data)); !swapped {
		// Deleted while the refit ran: discard the successor and its
		// artifact; the DELETE already reaped (or doomed) the older files.
		if s.cfg.ModelDir != "" {
			_ = os.Remove(filepath.Join(s.cfg.ModelDir, artifactFile(id, version)))
		}
		return
	}
	if err := ss.Install(m2); err != nil {
		fmt.Fprintf(os.Stderr, "zeroedd: refit of %s failed to install: %v\n", id, err)
		return
	}
	ok = true
	s.met.refitsSwapped.Add(1)
	if s.cfg.ModelDir != "" {
		s.reg.writeManifest(s.met)
	}
}

// newRowSource picks the body decoder: NDJSON when the Content-Type or the
// format query parameter says so, CSV otherwise.
func newRowSource(r *http.Request, attrs []string) (rowSource, error) {
	format := r.URL.Query().Get("format")
	if format == "" {
		switch r.Header.Get("Content-Type") {
		case "application/x-ndjson", "application/jsonl", "application/json":
			format = "ndjson"
		default:
			format = "csv"
		}
	}
	switch format {
	case "csv":
		return newCSVSource(r.Body, attrs)
	case "ndjson":
		return newNDJSONSource(r.Body, attrs), nil
	default:
		return nil, fmt.Errorf("unknown stream format %q (want csv or ndjson)", format)
	}
}

// csvSource decodes a CSV stream whose header must match the model schema.
type csvSource struct {
	r *csv.Reader
}

func newCSVSource(body io.Reader, attrs []string) (*csvSource, error) {
	cr := csv.NewReader(body)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %v", err)
	}
	if len(header) != len(attrs) {
		return nil, fmt.Errorf("CSV header has %d columns, model expects %d", len(header), len(attrs))
	}
	for i, h := range header {
		if h != attrs[i] {
			return nil, fmt.Errorf("CSV header column %d is %q, model expects %q", i, h, attrs[i])
		}
	}
	cr.FieldsPerRecord = len(attrs)
	return &csvSource{r: cr}, nil
}

func (c *csvSource) next(max int) ([][]string, error) {
	var rows [][]string
	for len(rows) < max {
		rec, err := c.r.Read()
		if err == io.EOF {
			return rows, io.EOF
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	return rows, nil
}

// ndjsonSource decodes one JSON value per line: either an array of cell
// values in attribute order, or an object keyed by attribute name (every
// attribute required). Non-string scalars are rendered as their JSON text;
// null becomes the empty string.
type ndjsonSource struct {
	sc    *bufio.Scanner
	attrs []string
	line  int
}

func newNDJSONSource(body io.Reader, attrs []string) *ndjsonSource {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	return &ndjsonSource{sc: sc, attrs: attrs}
}

func (n *ndjsonSource) next(max int) ([][]string, error) {
	var rows [][]string
	for len(rows) < max {
		if !n.sc.Scan() {
			if err := n.sc.Err(); err != nil {
				return rows, err
			}
			return rows, io.EOF
		}
		n.line++
		raw := n.sc.Bytes()
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		row, err := n.decodeLine(raw)
		if err != nil {
			return rows, fmt.Errorf("NDJSON line %d: %v", n.line, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (n *ndjsonSource) decodeLine(raw []byte) ([]string, error) {
	t := trimSpaceBytes(raw)
	switch t[0] {
	case '[':
		var cells []json.RawMessage
		if err := json.Unmarshal(t, &cells); err != nil {
			return nil, err
		}
		if len(cells) != len(n.attrs) {
			return nil, fmt.Errorf("array has %d cells, model expects %d", len(cells), len(n.attrs))
		}
		row := make([]string, len(cells))
		for i, c := range cells {
			v, err := jsonCell(c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	case '{':
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(t, &obj); err != nil {
			return nil, err
		}
		row := make([]string, len(n.attrs))
		for i, a := range n.attrs {
			c, ok := obj[a]
			if !ok {
				return nil, fmt.Errorf("object is missing attribute %q", a)
			}
			v, err := jsonCell(c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if len(obj) > len(n.attrs) {
			for k := range obj {
				known := false
				for _, a := range n.attrs {
					if k == a {
						known = true
						break
					}
				}
				if !known {
					return nil, fmt.Errorf("object has unknown attribute %q", k)
				}
			}
		}
		return row, nil
	default:
		return nil, fmt.Errorf("line must be a JSON array or object, got %q", t[0])
	}
}

// jsonCell renders one JSON scalar as its cell string.
func jsonCell(raw json.RawMessage) (string, error) {
	t := trimSpaceBytes(raw)
	if len(t) == 0 {
		return "", fmt.Errorf("empty cell value")
	}
	switch t[0] {
	case '"':
		var s string
		if err := json.Unmarshal(t, &s); err != nil {
			return "", err
		}
		return s, nil
	case '[', '{':
		return "", fmt.Errorf("cell value must be a scalar, got %q", t[0])
	default:
		if string(t) == "null" {
			return "", nil
		}
		return string(t), nil // numbers and booleans keep their JSON text
	}
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}
