package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/zeroed"
)

// metrics aggregates service counters. Everything is lock-free atomics;
// per-state gauges are derived from the job table at render time so they
// are exact, not drift-prone increments.
type metrics struct {
	submitted    atomic.Int64
	done         atomic.Int64
	failed       atomic.Int64
	canceled     atomic.Int64
	rowsIngested atomic.Int64
	detectRuns   atomic.Int64
	detectNanos  atomic.Int64

	// Model registry: fit and score are separate phases with separate
	// latency summaries — the whole point of the registry is that score
	// stays orders of magnitude below fit.
	modelsFitted      atomic.Int64
	modelLoadFailures atomic.Int64
	fitRuns           atomic.Int64
	fitNanos          atomic.Int64
	scoreRuns         atomic.Int64
	scoreNanos        atomic.Int64

	// Per-stage fit wall-clock, accumulated from FitInfo.Stages across
	// fits. Stage names arrive with the fit, so this is the one map-backed
	// family; fits are rare enough that a mutex is fine.
	stageMu      sync.Mutex
	stageSeconds map[string]float64
	stageOrder   []string
}

// addFitStages folds one fit's per-stage breakdown into the cumulative
// stage counters.
func (m *metrics) addFitStages(stages []zeroed.StageTiming) {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	if m.stageSeconds == nil {
		m.stageSeconds = map[string]float64{}
	}
	for _, st := range stages {
		if _, seen := m.stageSeconds[st.Name]; !seen {
			m.stageOrder = append(m.stageOrder, st.Name)
		}
		m.stageSeconds[st.Name] += st.Seconds
	}
}

// render writes the Prometheus text exposition of the counters plus the
// jobs-by-state and model-count gauges.
func (m *metrics) render(w io.Writer, byState map[JobState]int, modelCount int) {
	fmt.Fprintln(w, "# HELP zeroedd_jobs_submitted_total Jobs accepted into the admission queue.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_submitted_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_submitted_total %d\n", m.submitted.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_finished_total Jobs finished, by outcome.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_finished_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"canceled\"} %d\n", m.canceled.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_current Retained jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_current gauge")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "zeroedd_jobs_current{state=%q} %d\n", st, byState[st])
	}

	fmt.Fprintln(w, "# HELP zeroedd_rows_ingested_total Data rows parsed from accepted uploads.")
	fmt.Fprintln(w, "# TYPE zeroedd_rows_ingested_total counter")
	fmt.Fprintf(w, "zeroedd_rows_ingested_total %d\n", m.rowsIngested.Load())

	fmt.Fprintln(w, "# HELP zeroedd_detect_seconds Total detection wall-clock across completed jobs.")
	fmt.Fprintln(w, "# TYPE zeroedd_detect_seconds summary")
	fmt.Fprintf(w, "zeroedd_detect_seconds_sum %g\n", time.Duration(m.detectNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_detect_seconds_count %d\n", m.detectRuns.Load())

	fmt.Fprintln(w, "# HELP zeroedd_models_current Fitted models currently registered.")
	fmt.Fprintln(w, "# TYPE zeroedd_models_current gauge")
	fmt.Fprintf(w, "zeroedd_models_current %d\n", modelCount)

	fmt.Fprintln(w, "# HELP zeroedd_models_fitted_total Models fitted and registered over the process lifetime.")
	fmt.Fprintln(w, "# TYPE zeroedd_models_fitted_total counter")
	fmt.Fprintf(w, "zeroedd_models_fitted_total %d\n", m.modelsFitted.Load())

	fmt.Fprintln(w, "# HELP zeroedd_model_load_failures_total Persisted artifacts skipped as corrupt or unreadable at startup.")
	fmt.Fprintln(w, "# TYPE zeroedd_model_load_failures_total counter")
	fmt.Fprintf(w, "zeroedd_model_load_failures_total %d\n", m.modelLoadFailures.Load())

	fmt.Fprintln(w, "# HELP zeroedd_fit_seconds Fit-phase wall-clock across model fits.")
	fmt.Fprintln(w, "# TYPE zeroedd_fit_seconds summary")
	fmt.Fprintf(w, "zeroedd_fit_seconds_sum %g\n", time.Duration(m.fitNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_fit_seconds_count %d\n", m.fitRuns.Load())

	m.stageMu.Lock()
	if len(m.stageOrder) > 0 {
		fmt.Fprintln(w, "# HELP zeroedd_fit_stage_seconds Fit wall-clock by pipeline stage, cumulative across fits.")
		fmt.Fprintln(w, "# TYPE zeroedd_fit_stage_seconds counter")
		for _, name := range m.stageOrder {
			fmt.Fprintf(w, "zeroedd_fit_stage_seconds{stage=%q} %g\n", name, m.stageSeconds[name])
		}
	}
	m.stageMu.Unlock()

	fmt.Fprintln(w, "# HELP zeroedd_score_seconds Score-phase wall-clock across model scoring calls.")
	fmt.Fprintln(w, "# TYPE zeroedd_score_seconds summary")
	fmt.Fprintf(w, "zeroedd_score_seconds_sum %g\n", time.Duration(m.scoreNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_score_seconds_count %d\n", m.scoreRuns.Load())
}
