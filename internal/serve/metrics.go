package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics aggregates service counters. Everything is lock-free atomics;
// per-state gauges are derived from the job table at render time so they
// are exact, not drift-prone increments.
type metrics struct {
	submitted    atomic.Int64
	done         atomic.Int64
	failed       atomic.Int64
	canceled     atomic.Int64
	rowsIngested atomic.Int64
	detectRuns   atomic.Int64
	detectNanos  atomic.Int64
}

// render writes the Prometheus text exposition of the counters plus the
// jobs-by-state gauges.
func (m *metrics) render(w io.Writer, byState map[JobState]int) {
	fmt.Fprintln(w, "# HELP zeroedd_jobs_submitted_total Jobs accepted into the admission queue.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_submitted_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_submitted_total %d\n", m.submitted.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_finished_total Jobs finished, by outcome.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_finished_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"canceled\"} %d\n", m.canceled.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_current Retained jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_current gauge")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "zeroedd_jobs_current{state=%q} %d\n", st, byState[st])
	}

	fmt.Fprintln(w, "# HELP zeroedd_rows_ingested_total Data rows parsed from accepted uploads.")
	fmt.Fprintln(w, "# TYPE zeroedd_rows_ingested_total counter")
	fmt.Fprintf(w, "zeroedd_rows_ingested_total %d\n", m.rowsIngested.Load())

	fmt.Fprintln(w, "# HELP zeroedd_detect_seconds Total detection wall-clock across completed jobs.")
	fmt.Fprintln(w, "# TYPE zeroedd_detect_seconds summary")
	fmt.Fprintf(w, "zeroedd_detect_seconds_sum %g\n", time.Duration(m.detectNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_detect_seconds_count %d\n", m.detectRuns.Load())
}
