package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/zeroed"
)

// metrics aggregates service counters. Everything is lock-free atomics;
// per-state gauges are derived from the job table at render time so they
// are exact, not drift-prone increments.
type metrics struct {
	submitted    atomic.Int64
	done         atomic.Int64
	failed       atomic.Int64
	canceled     atomic.Int64
	rowsIngested atomic.Int64
	detectRuns   atomic.Int64
	detectNanos  atomic.Int64

	// Model registry: fit and score are separate phases with separate
	// latency summaries — the whole point of the registry is that score
	// stays orders of magnitude below fit.
	modelsFitted      atomic.Int64
	modelLoadFailures atomic.Int64
	fitRuns           atomic.Int64
	fitNanos          atomic.Int64
	scoreRuns         atomic.Int64
	scoreNanos        atomic.Int64

	// Durability and failure containment (see durability.go).
	modelsQuarantined     atomic.Int64
	manifestWriteFailures atomic.Int64
	manifestMissing       atomic.Int64
	deadlines             atomic.Int64

	// Streaming detection and drift-triggered refits.
	streamRequests atomic.Int64
	streamRows     atomic.Int64
	refitsStarted  atomic.Int64
	refitsSwapped  atomic.Int64
	refitFailures  atomic.Int64

	// Schema-mapped uploads (headers that were permutations or supersets
	// of the model schema) and the extra columns they dropped.
	mappedUploads  atomic.Int64
	droppedColumns atomic.Int64

	// Served detect→repair loop.
	repairRuns    atomic.Int64
	repairNanos   atomic.Int64
	repairedCells atomic.Int64

	// Per-stage fit wall-clock, accumulated from FitInfo.Stages across
	// fits. Stage names arrive with the fit, so this is the one map-backed
	// family; fits are rare enough that a mutex is fine.
	stageMu      sync.Mutex
	stageSeconds map[string]float64
	stageOrder   []string

	// RED: per-route request rate, error rate (via the code label), and
	// duration histograms, observed by the middleware around every request.
	red redTable

	// queueWait is the admission-queue wait histogram — time from submit to
	// runner pickup, split out from handler time so queueing pressure is
	// visible separately from detection cost.
	queueWait histogram
}

// latencyBuckets are the shared histogram bounds, in seconds. They span
// sub-10ms scores to multi-second fits on large uploads.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket Prometheus histogram. A mutex over a small
// int64 slice: observation cost is one lock and one increment, far below
// the request work it measures. The bucket slice is lazily sized on first
// observe so the zero value is usable.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // len(latencyBuckets)+1; last is +Inf
	sum    float64
	n      int64
}

func (h *histogram) observe(sec float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]int64, len(latencyBuckets)+1)
	}
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += sec
	h.n++
}

// render writes the cumulative-bucket exposition for one histogram series.
// labels is the rendered label set without the le pair ("" or
// `route="POST /v1/jobs"`).
func (h *histogram) render(w io.Writer, name, labels string) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	if counts == nil {
		counts = make([]int64, len(latencyBuckets)+1)
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, n)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, n)
	}
}

// routeRED holds one route's request counters by status code plus its
// duration histogram.
type routeRED struct {
	codes map[int]int64
	hist  histogram
}

// redTable is the per-route RED store. Routes are mux patterns (bounded by
// the route table, plus "unmatched"), so the map stays small.
type redTable struct {
	mu      sync.Mutex
	byRoute map[string]*routeRED
}

func (t *redTable) observe(route string, code int, dur time.Duration) {
	t.mu.Lock()
	if t.byRoute == nil {
		t.byRoute = map[string]*routeRED{}
	}
	rr := t.byRoute[route]
	if rr == nil {
		rr = &routeRED{codes: map[int]int64{}}
		t.byRoute[route] = rr
	}
	rr.codes[code]++
	t.mu.Unlock()
	rr.hist.observe(dur.Seconds())
}

// render writes the RED families: request totals by route and code, and
// per-route duration histograms.
func (t *redTable) render(w io.Writer) {
	t.mu.Lock()
	routes := make([]string, 0, len(t.byRoute))
	for r := range t.byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	type codeCount struct {
		code int
		n    int64
	}
	counts := make(map[string][]codeCount, len(routes))
	for _, r := range routes {
		rr := t.byRoute[r]
		cc := make([]codeCount, 0, len(rr.codes))
		for c, n := range rr.codes {
			cc = append(cc, codeCount{c, n})
		}
		sort.Slice(cc, func(i, j int) bool { return cc[i].code < cc[j].code })
		counts[r] = cc
	}
	t.mu.Unlock()

	fmt.Fprintln(w, "# HELP zeroedd_http_requests_total HTTP requests served, by route pattern and status code.")
	fmt.Fprintln(w, "# TYPE zeroedd_http_requests_total counter")
	for _, r := range routes {
		for _, cc := range counts[r] {
			fmt.Fprintf(w, "zeroedd_http_requests_total{route=%q,code=\"%d\"} %d\n", r, cc.code, cc.n)
		}
	}
	fmt.Fprintln(w, "# HELP zeroedd_http_request_seconds HTTP request duration by route pattern, queue wait included.")
	fmt.Fprintln(w, "# TYPE zeroedd_http_request_seconds histogram")
	t.mu.Lock()
	hists := make([]*routeRED, len(routes))
	for i, r := range routes {
		hists[i] = t.byRoute[r]
	}
	t.mu.Unlock()
	for i, r := range routes {
		hists[i].hist.render(w, "zeroedd_http_request_seconds", fmt.Sprintf("route=%q", r))
	}
}

// addFitStages folds one fit's per-stage breakdown into the cumulative
// stage counters.
func (m *metrics) addFitStages(stages []zeroed.StageTiming) {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	if m.stageSeconds == nil {
		m.stageSeconds = map[string]float64{}
	}
	for _, st := range stages {
		if _, seen := m.stageSeconds[st.Name]; !seen {
			m.stageOrder = append(m.stageOrder, st.Name)
		}
		m.stageSeconds[st.Name] += st.Seconds
	}
}

// modelGauge carries one registered model's per-model gauges to render:
// its current version and — when a stream has touched it — its live drift
// reading.
type modelGauge struct {
	id        string
	version   int
	hasDrift  bool
	drift     stats.DriftGauges
	hasHealth bool
	health    zeroed.RefitHealth
}

// modelGauges snapshots every registered model's version plus the drift
// gauges of the ones with live stream scorers, sorted by id for stable
// exposition output.
func (s *Server) modelGauges() []modelGauge {
	drift := s.driftReadings()
	health := s.healthReadings()
	list := s.reg.list()
	out := make([]modelGauge, 0, len(list))
	for _, st := range list {
		g := modelGauge{id: st.ID, version: st.Version}
		if d, ok := drift[st.ID]; ok {
			g.hasDrift, g.drift = true, d
		}
		if h, ok := health[st.ID]; ok {
			g.hasHealth, g.health = true, h
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// render writes the Prometheus text exposition of the counters plus the
// jobs-by-state and model-count gauges.
func (m *metrics) render(w io.Writer, byState map[JobState]int, modelCount int, models []modelGauge) {
	bm := readBuildMeta
	pgo := 0
	if bm.pgo {
		pgo = 1
	}
	fmt.Fprintln(w, "# HELP zeroedd_build_info Build identity of the running binary; always 1.")
	fmt.Fprintln(w, "# TYPE zeroedd_build_info gauge")
	fmt.Fprintf(w, "zeroedd_build_info{version=%q,go_version=%q,pgo=\"%d\"} 1\n", bm.version, bm.goVersion, pgo)

	m.red.render(w)

	fmt.Fprintln(w, "# HELP zeroedd_queue_wait_seconds Admission-queue wait from job submit to runner pickup.")
	fmt.Fprintln(w, "# TYPE zeroedd_queue_wait_seconds histogram")
	m.queueWait.render(w, "zeroedd_queue_wait_seconds", "")

	fmt.Fprintln(w, "# HELP zeroedd_jobs_submitted_total Jobs accepted into the admission queue.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_submitted_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_submitted_total %d\n", m.submitted.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_finished_total Jobs finished, by outcome.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_finished_total counter")
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(w, "zeroedd_jobs_finished_total{outcome=\"canceled\"} %d\n", m.canceled.Load())

	fmt.Fprintln(w, "# HELP zeroedd_jobs_current Retained jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE zeroedd_jobs_current gauge")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		fmt.Fprintf(w, "zeroedd_jobs_current{state=%q} %d\n", st, byState[st])
	}

	fmt.Fprintln(w, "# HELP zeroedd_rows_ingested_total Data rows parsed from accepted uploads.")
	fmt.Fprintln(w, "# TYPE zeroedd_rows_ingested_total counter")
	fmt.Fprintf(w, "zeroedd_rows_ingested_total %d\n", m.rowsIngested.Load())

	fmt.Fprintln(w, "# HELP zeroedd_detect_seconds Total detection wall-clock across completed jobs.")
	fmt.Fprintln(w, "# TYPE zeroedd_detect_seconds summary")
	fmt.Fprintf(w, "zeroedd_detect_seconds_sum %g\n", time.Duration(m.detectNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_detect_seconds_count %d\n", m.detectRuns.Load())

	fmt.Fprintln(w, "# HELP zeroedd_models_current Fitted models currently registered.")
	fmt.Fprintln(w, "# TYPE zeroedd_models_current gauge")
	fmt.Fprintf(w, "zeroedd_models_current %d\n", modelCount)

	fmt.Fprintln(w, "# HELP zeroedd_models_fitted_total Models fitted and registered over the process lifetime.")
	fmt.Fprintln(w, "# TYPE zeroedd_models_fitted_total counter")
	fmt.Fprintf(w, "zeroedd_models_fitted_total %d\n", m.modelsFitted.Load())

	fmt.Fprintln(w, "# HELP zeroedd_model_load_failures_total Persisted artifacts skipped as corrupt or unreadable at startup.")
	fmt.Fprintln(w, "# TYPE zeroedd_model_load_failures_total counter")
	fmt.Fprintf(w, "zeroedd_model_load_failures_total %d\n", m.modelLoadFailures.Load())

	fmt.Fprintln(w, "# HELP zeroedd_models_quarantined_total Corrupt artifacts renamed aside to *.corrupt at startup.")
	fmt.Fprintln(w, "# TYPE zeroedd_models_quarantined_total counter")
	fmt.Fprintf(w, "zeroedd_models_quarantined_total %d\n", m.modelsQuarantined.Load())

	fmt.Fprintln(w, "# HELP zeroedd_manifest_write_failures_total Registry manifest writes that failed (soft: artifacts remain the source of truth).")
	fmt.Fprintln(w, "# TYPE zeroedd_manifest_write_failures_total counter")
	fmt.Fprintf(w, "zeroedd_manifest_write_failures_total %d\n", m.manifestWriteFailures.Load())

	fmt.Fprintln(w, "# HELP zeroedd_manifest_missing_total Manifest-committed artifact versions found missing or unloadable at startup.")
	fmt.Fprintln(w, "# TYPE zeroedd_manifest_missing_total counter")
	fmt.Fprintf(w, "zeroedd_manifest_missing_total %d\n", m.manifestMissing.Load())

	fmt.Fprintln(w, "# HELP zeroedd_request_deadlines_total Requests that exceeded the configured request timeout.")
	fmt.Fprintln(w, "# TYPE zeroedd_request_deadlines_total counter")
	fmt.Fprintf(w, "zeroedd_request_deadlines_total %d\n", m.deadlines.Load())

	fmt.Fprintln(w, "# HELP zeroedd_fit_seconds Fit-phase wall-clock across model fits.")
	fmt.Fprintln(w, "# TYPE zeroedd_fit_seconds summary")
	fmt.Fprintf(w, "zeroedd_fit_seconds_sum %g\n", time.Duration(m.fitNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_fit_seconds_count %d\n", m.fitRuns.Load())

	m.stageMu.Lock()
	if len(m.stageOrder) > 0 {
		fmt.Fprintln(w, "# HELP zeroedd_fit_stage_seconds Fit wall-clock by pipeline stage, cumulative across fits.")
		fmt.Fprintln(w, "# TYPE zeroedd_fit_stage_seconds counter")
		for _, name := range m.stageOrder {
			fmt.Fprintf(w, "zeroedd_fit_stage_seconds{stage=%q} %g\n", name, m.stageSeconds[name])
		}
	}
	m.stageMu.Unlock()

	fmt.Fprintln(w, "# HELP zeroedd_score_seconds Score-phase wall-clock across model scoring calls.")
	fmt.Fprintln(w, "# TYPE zeroedd_score_seconds summary")
	fmt.Fprintf(w, "zeroedd_score_seconds_sum %g\n", time.Duration(m.scoreNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_score_seconds_count %d\n", m.scoreRuns.Load())

	fmt.Fprintln(w, "# HELP zeroedd_stream_requests_total Streaming detection requests accepted.")
	fmt.Fprintln(w, "# TYPE zeroedd_stream_requests_total counter")
	fmt.Fprintf(w, "zeroedd_stream_requests_total %d\n", m.streamRequests.Load())

	fmt.Fprintln(w, "# HELP zeroedd_stream_rows_total Rows scored through streaming detection.")
	fmt.Fprintln(w, "# TYPE zeroedd_stream_rows_total counter")
	fmt.Fprintf(w, "zeroedd_stream_rows_total %d\n", m.streamRows.Load())

	fmt.Fprintln(w, "# HELP zeroedd_mapped_uploads_total Uploads whose header needed schema mapping (permutation or superset of the model schema).")
	fmt.Fprintln(w, "# TYPE zeroedd_mapped_uploads_total counter")
	fmt.Fprintf(w, "zeroedd_mapped_uploads_total %d\n", m.mappedUploads.Load())

	fmt.Fprintln(w, "# HELP zeroedd_dropped_columns_total Extra upload columns dropped by schema mapping.")
	fmt.Fprintln(w, "# TYPE zeroedd_dropped_columns_total counter")
	fmt.Fprintf(w, "zeroedd_dropped_columns_total %d\n", m.droppedColumns.Load())

	fmt.Fprintln(w, "# HELP zeroedd_repair_seconds Repair-phase wall-clock across served repair calls (excludes the scoring pass).")
	fmt.Fprintln(w, "# TYPE zeroedd_repair_seconds summary")
	fmt.Fprintf(w, "zeroedd_repair_seconds_sum %g\n", time.Duration(m.repairNanos.Load()).Seconds())
	fmt.Fprintf(w, "zeroedd_repair_seconds_count %d\n", m.repairRuns.Load())

	fmt.Fprintln(w, "# HELP zeroedd_repaired_cells_total Cells changed by served repair calls.")
	fmt.Fprintln(w, "# TYPE zeroedd_repaired_cells_total counter")
	fmt.Fprintf(w, "zeroedd_repaired_cells_total %d\n", m.repairedCells.Load())

	fmt.Fprintln(w, "# HELP zeroedd_model_refits_total Drift-triggered background refits, by outcome.")
	fmt.Fprintln(w, "# TYPE zeroedd_model_refits_total counter")
	fmt.Fprintf(w, "zeroedd_model_refits_total{outcome=\"started\"} %d\n", m.refitsStarted.Load())
	fmt.Fprintf(w, "zeroedd_model_refits_total{outcome=\"swapped\"} %d\n", m.refitsSwapped.Load())
	fmt.Fprintf(w, "zeroedd_model_refits_total{outcome=\"failed\"} %d\n", m.refitFailures.Load())

	if len(models) > 0 {
		fmt.Fprintln(w, "# HELP zeroedd_model_version Current hot-swapped version of each registered model.")
		fmt.Fprintln(w, "# TYPE zeroedd_model_version gauge")
		for _, g := range models {
			fmt.Fprintf(w, "zeroedd_model_version{model=%q} %d\n", g.id, g.version)
		}
	}
	withHealth := false
	for _, g := range models {
		if g.hasHealth {
			withHealth = true
			break
		}
	}
	if withHealth {
		fmt.Fprintln(w, "# HELP zeroedd_model_refit_breaker Per-model refit circuit breaker: 1 when open (refits disabled until a successful install).")
		fmt.Fprintln(w, "# TYPE zeroedd_model_refit_breaker gauge")
		for _, g := range models {
			if !g.hasHealth {
				continue
			}
			open := 0
			if g.health.BreakerOpen {
				open = 1
			}
			fmt.Fprintf(w, "zeroedd_model_refit_breaker{model=%q} %d\n", g.id, open)
		}
		fmt.Fprintln(w, "# HELP zeroedd_model_refit_consecutive_failures Consecutive failed refits since the last successful install (drives exponential backoff).")
		fmt.Fprintln(w, "# TYPE zeroedd_model_refit_consecutive_failures gauge")
		for _, g := range models {
			if !g.hasHealth {
				continue
			}
			fmt.Fprintf(w, "zeroedd_model_refit_consecutive_failures{model=%q} %d\n", g.id, g.health.ConsecutiveFailures)
		}
	}
	withDrift := false
	for _, g := range models {
		if g.hasDrift {
			withDrift = true
			break
		}
	}
	if withDrift {
		fmt.Fprintln(w, "# HELP zeroedd_model_drift Streaming drift gauges per model: unseen-value rate and distribution shift against the fit-time snapshot.")
		fmt.Fprintln(w, "# TYPE zeroedd_model_drift gauge")
		for _, g := range models {
			if !g.hasDrift {
				continue
			}
			fmt.Fprintf(w, "zeroedd_model_drift{model=%q,gauge=\"unseen_rate\"} %g\n", g.id, g.drift.UnseenRate)
			fmt.Fprintf(w, "zeroedd_model_drift{model=%q,gauge=\"shift\"} %g\n", g.id, g.drift.Shift)
			fmt.Fprintf(w, "zeroedd_model_drift{model=%q,gauge=\"rows\"} %d\n", g.id, g.drift.Rows)
		}
	}
}
