package serve

import (
	"encoding/json"
	"errors"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/model"
)

// Durability layer of the model registry: every artifact commit goes through
// model.WriteFileAtomic (temp + fsync + rename + dir fsync), a manifest
// records which versions were committed so "highest intact version wins" is
// an explicit, torn-write-proof contract, and startup quarantines corrupt
// artifacts instead of re-tripping over them on every boot.

// Failpoints at the serve layer's own effect boundaries.
var (
	fpFitPersist    = faultpoint.New("serve.fit.persist")
	fpRefitPersist  = faultpoint.New("serve.refit.persist")
	fpManifestWrite = faultpoint.New("serve.manifest.write")
)

// corruptSuffix marks a quarantined artifact. The file keeps its full
// original name ("m-000001.v2.zedm.corrupt"), so an operator can inspect or
// restore it; parseArtifactName no longer matches it, so later boots skip it
// without re-counting the corruption.
const corruptSuffix = ".corrupt"

// manifestFile is the registry's commit ledger inside the model directory.
const manifestFile = "manifest.json"

// manifest records the highest committed artifact version per model id. It
// is advisory-but-explicit: the atomic rename already guarantees every
// on-disk artifact is intact-or-absent, so recovery unions the manifest with
// a directory scan — the manifest's job is to make a missing or quarantined
// committed version loudly observable instead of silently serving an older
// one.
type manifest struct {
	Models map[string]int `json:"models"`
}

// loadManifest reads the ledger; absent means first boot (or a pre-manifest
// directory) and returns an empty manifest.
func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return &manifest{Models: map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	if m.Models == nil {
		m.Models = map[string]int{}
	}
	return &m, nil
}

// writeManifest atomically rewrites the ledger from the registry's current
// state. A manifest write failure is soft: the registry stays correct (the
// artifacts themselves are the source of truth), so the failure is logged
// and counted, never propagated into the request that committed the
// artifact.
func (r *registry) writeManifest(met *metrics) {
	if r.dir == "" {
		return
	}
	r.mu.Lock()
	m := manifest{Models: make(map[string]int, len(r.models))}
	for id, e := range r.models {
		m.Models[id] = e.version
	}
	r.mu.Unlock()
	data, err := json.MarshalIndent(&m, "", "  ")
	if err == nil {
		err = fpManifestWrite.Eval()
	}
	if err == nil {
		err = model.WriteFileAtomic(filepath.Join(r.dir, manifestFile), append(data, '\n'))
	}
	if err != nil {
		r.log.Error("manifest write failed, registry unaffected", "dir", r.dir, "err", err)
		met.manifestWriteFailures.Add(1)
	}
}

// quarantine renames a corrupt artifact aside, once. Later boots skip the
// renamed file entirely — one corruption event is one log line and one
// counter increment, not one per restart.
func quarantine(path string, met *metrics, log *slog.Logger) {
	if err := os.Rename(path, path+corruptSuffix); err != nil {
		log.Error("failed to quarantine corrupt artifact", "path", path, "err", err)
		return
	}
	log.Warn("quarantined corrupt artifact",
		"path", path, "renamed_to", filepath.Base(path)+corruptSuffix)
	met.modelsQuarantined.Add(1)
}

// sweepTmp removes stranded atomic-write temp files — debris of a crash
// mid-save, never a committed artifact.
func sweepTmp(dir string, entries []fs.DirEntry, log *slog.Logger) {
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), model.TmpSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if err := os.Remove(path); err == nil {
			log.Warn("removed stranded temp file", "path", path)
		}
	}
}
