package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/zeroed"
)

// postModelCSV posts a CSV body to a model endpoint and decodes into out
// when the status matches want.
func postModelCSV(t *testing.T, url string, body []byte, want int, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("%s: status %d, want %d: %s", url, resp.StatusCode, want, raw.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestModelFitScoreMatchesDetector pins the registry's core guarantee:
// fitting a model over HTTP and scoring the same CSV against it returns
// verdicts and float64 score bits identical to a direct Detect on the same
// bytes — and the score call, which skips the fit phase entirely, reports a
// runtime far below the fit's.
func TestModelFitScoreMatchesDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(220, 7)
	csv := benchCSV(t, bench.Dirty)

	var st ModelStatus
	postModelCSV(t, ts.URL+"/v1/models?seed=5&name=hosp", csv, http.StatusCreated, &st)
	if st.ID == "" || st.FitRows != bench.Dirty.NumRows() {
		t.Fatalf("bad model status: %+v", st)
	}

	var sr ScoreResult
	postModelCSV(t, ts.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &sr)

	// The service ingests through the same CSV path, so compare against a
	// Detect over a re-parsed dataset carrying the same name (the simulated
	// LLM derives its streams from it, exactly like the CLI does).
	ds, err := ingestCSV("hosp", bytes.NewReader(csv), ingestLimits{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := zeroed.New(zeroed.Config{LabelRate: 0.05, CorrK: 2, Seed: 5, Workers: 2}).Detect(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Pred) != len(ref.Pred) {
		t.Fatalf("scored %d rows, want %d", len(sr.Pred), len(ref.Pred))
	}
	for i := range ref.Pred {
		for j := range ref.Pred[i] {
			if sr.Pred[i][j] != ref.Pred[i][j] {
				t.Fatalf("verdict differs at (%d,%d)", i, j)
			}
			if math.Float64bits(sr.Scores[i][j]) != math.Float64bits(ref.Scores[i][j]) {
				t.Fatalf("score bits differ at (%d,%d)", i, j)
			}
		}
	}
	if sr.ScoreMS > st.FitMS && st.FitMS > 0 {
		t.Errorf("score took %dms, fit %dms: scoring should not retrain", sr.ScoreMS, st.FitMS)
	}

	// Fresh rows with unseen values score without refitting.
	fresh := []byte(strings.Join(bench.Dirty.Attrs, ",") + "\n")
	row := make([]string, bench.Dirty.NumCols())
	for j := range row {
		row[j] = "novel-value"
	}
	fresh = append(fresh, []byte(strings.Join(row, ",")+"\n")...)
	var sf ScoreResult
	postModelCSV(t, ts.URL+"/v1/models/"+st.ID+"/score", fresh, http.StatusOK, &sf)
	if sf.Rows != 1 {
		t.Fatalf("scored %d fresh rows, want 1", sf.Rows)
	}

	// A schema mismatch is a structured 400, not a panic.
	postModelCSV(t, ts.URL+"/v1/models/"+st.ID+"/score", []byte("a,b\n1,2\n"), http.StatusBadRequest, nil)

	// Listing and metrics account for the model.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models []ModelStatus `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Models) != 1 || listing.Models[0].ID != st.ID {
		t.Fatalf("listing = %+v", listing.Models)
	}
	met, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(met.Body)
	met.Body.Close()
	for _, want := range []string{
		"zeroedd_models_current 1",
		"zeroedd_models_fitted_total 1",
		"zeroedd_score_seconds_count 2",
		`zeroedd_fit_stage_seconds{stage="extractor"}`,
		`zeroedd_fit_stage_seconds{stage="criteria"}`,
		`zeroedd_fit_stage_seconds{stage="sample_label"}`,
		`zeroedd_fit_stage_seconds{stage="traindata"}`,
		`zeroedd_fit_stage_seconds{stage="matrix"}`,
		`zeroedd_fit_stage_seconds{stage="train"}`,
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// DELETE evicts; scoring afterwards is a 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	postModelCSV(t, ts.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusNotFound, nil)
}

// TestModelPersistenceAcrossRestarts: with ModelDir set, a fitted model's
// artifact survives a server restart and scores identically afterwards.
func TestModelPersistenceAcrossRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	dir := t.TempDir()
	bench := datasets.Hospital(150, 3)
	csv := benchCSV(t, bench.Dirty)

	ts1, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	var st ModelStatus
	postModelCSV(t, ts1.URL+"/v1/models?seed=3", csv, http.StatusCreated, &st)
	var before ScoreResult
	postModelCSV(t, ts1.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &before)
	if _, err := os.Stat(filepath.Join(dir, st.ID+artifactExt)); err != nil {
		t.Fatalf("artifact not persisted: %v", err)
	}

	// Drop a corrupt artifact alongside; the restart must skip it and count
	// the failure, not crash or refuse to start.
	if err := os.WriteFile(filepath.Join(dir, "m-999999"+artifactExt), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	var after ScoreResult
	postModelCSV(t, ts2.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &after)
	if len(after.Pred) != len(before.Pred) {
		t.Fatalf("restored model scored %d rows, want %d", len(after.Pred), len(before.Pred))
	}
	for i := range before.Pred {
		for j := range before.Pred[i] {
			if before.Pred[i][j] != after.Pred[i][j] {
				t.Fatalf("restored verdict differs at (%d,%d)", i, j)
			}
			if math.Float64bits(before.Scores[i][j]) != math.Float64bits(after.Scores[i][j]) {
				t.Fatalf("restored score bits differ at (%d,%d)", i, j)
			}
		}
	}
	met, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(met.Body)
	met.Body.Close()
	if !strings.Contains(mbuf.String(), "zeroedd_model_load_failures_total 1") {
		t.Error("corrupt artifact not counted as load failure")
	}
}

// TestModelRegistryBounds: the registry cap rejects fits with a structured
// 409, unknown IDs are 404s, and malformed uploads are 400s.
func TestModelRegistryBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("fits models over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 1, MaxModels: 1})
	bench := datasets.Hospital(100, 3)
	csv := benchCSV(t, bench.Dirty)
	var st ModelStatus
	postModelCSV(t, ts.URL+"/v1/models", csv, http.StatusCreated, &st)
	postModelCSV(t, ts.URL+"/v1/models", csv, http.StatusConflict, nil)

	postModelCSV(t, ts.URL+"/v1/models/m-404404/score", csv, http.StatusNotFound, nil)
	resp, err := http.Get(ts.URL + "/v1/models/m-404404")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model info status %d", resp.StatusCode)
	}
	postModelCSV(t, ts.URL+"/v1/models/"+st.ID+"/score", []byte("\x00\xff"), http.StatusBadRequest, nil)
	postModelCSV(t, ts.URL+"/v1/models?seed=abc", csv, http.StatusBadRequest, nil)
}
