package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/faultpoint"
)

// metricsText fetches the full /metrics body as a string.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// dirNames lists the file names in dir matching the given suffix.
func dirNames(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// readManifest decodes manifest.json from the model dir.
func readManifest(t *testing.T, dir string) manifest {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest.json unparseable: %v\n%s", err, raw)
	}
	return m
}

// TestQuarantineOnceAcrossRestarts: a corrupt artifact (garbage or
// zero-byte) is renamed to *.corrupt and counted exactly once; the next
// boot sees a clean directory and counts nothing.
func TestQuarantineOnceAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m-000007"+artifactExt), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m-000008"+artifactExt), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// A stranded atomic-write temp file from a crashed save is reaped too.
	if err := os.WriteFile(filepath.Join(dir, "m-000009"+artifactExt+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	ts1, _ := testServer(t, Config{Workers: 1, ModelDir: dir})
	text := metricsText(t, ts1.URL)
	if !strings.Contains(text, "zeroedd_models_quarantined_total 2") {
		t.Fatalf("first boot should quarantine 2 artifacts:\n%s", text)
	}
	if !strings.Contains(text, "zeroedd_model_load_failures_total 2") {
		t.Fatalf("first boot should count 2 load failures:\n%s", text)
	}
	if got := dirNames(t, dir, corruptSuffix); len(got) != 2 {
		t.Fatalf("want 2 quarantined files, got %v", got)
	}
	if got := dirNames(t, dir, artifactExt); len(got) != 0 {
		t.Fatalf("corrupt originals should be renamed away, got %v", got)
	}
	if got := dirNames(t, dir, ".tmp"); len(got) != 0 {
		t.Fatalf("stranded temp files should be swept, got %v", got)
	}

	// Second boot: the quarantined files no longer parse as artifacts, so
	// the same corruption is NOT re-counted (satellite: counted once, not
	// once per restart).
	ts2, _ := testServer(t, Config{Workers: 1, ModelDir: dir})
	text = metricsText(t, ts2.URL)
	if !strings.Contains(text, "zeroedd_models_quarantined_total 0") {
		t.Fatalf("second boot re-counted quarantined artifacts:\n%s", text)
	}
	if !strings.Contains(text, "zeroedd_model_load_failures_total 0") {
		t.Fatalf("second boot re-counted load failures:\n%s", text)
	}
	if got := dirNames(t, dir, corruptSuffix); len(got) != 2 {
		t.Fatalf("quarantined files should be left in place, got %v", got)
	}
}

// TestManifestLedger: a fit writes the commit ledger; a manifest that
// claims a version no artifact backs makes the loss loudly observable at
// the next boot, and the ledger is rewritten to match reality.
func TestManifestLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	dir := t.TempDir()
	ts1, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	csv := benchCSV(t, datasets.Hospital(120, 3).Dirty)
	st := fitHTTPModel(t, ts1.URL, csv, "?seed=3")

	man := readManifest(t, dir)
	if man.Models[st.ID] != 1 {
		t.Fatalf("manifest after fit: %+v, want %s -> 1", man.Models, st.ID)
	}

	// Rewrite the ledger to claim a version 3 that never hit the disk —
	// the moral equivalent of an artifact lost to a torn volume.
	man.Models[st.ID] = 3
	raw, _ := json.Marshal(&man)
	if err := os.WriteFile(filepath.Join(dir, manifestFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	text := metricsText(t, ts2.URL)
	if !strings.Contains(text, "zeroedd_manifest_missing_total 1") {
		t.Fatalf("missing committed version not counted:\n%s", text)
	}
	// The model still serves from the highest intact version.
	var sr ScoreResult
	postModelCSV(t, ts2.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &sr)
	// And the ledger now reflects what actually restored.
	if man = readManifest(t, dir); man.Models[st.ID] != 1 {
		t.Fatalf("manifest not rewritten after recovery: %+v", man.Models)
	}
}

// TestHighestIntactVersionWins: with v1 and v2 intact and v3 corrupt on
// disk, a restart serves v2 bit-identically, quarantines v3, and records
// v2 in the manifest.
func TestHighestIntactVersionWins(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	dir := t.TempDir()
	ts1, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	csv := benchCSV(t, datasets.Hospital(120, 3).Dirty)
	st := fitHTTPModel(t, ts1.URL, csv, "?seed=3")
	var before ScoreResult
	postModelCSV(t, ts1.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &before)

	// Fake a committed refit: copy v1's artifact to the v2 slot (a valid
	// model), and leave a torn v3 behind.
	v1, err := os.ReadFile(filepath.Join(dir, artifactFile(st.ID, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, artifactFile(st.ID, 2)), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, artifactFile(st.ID, 3)), v1[:len(v1)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	resp, err := http.Get(ts2.URL + "/v1/models/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var info ModelStatus
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != 2 {
		t.Fatalf("restored version %d, want 2 (highest intact)", info.Version)
	}
	var after ScoreResult
	postModelCSV(t, ts2.URL+"/v1/models/"+st.ID+"/score", csv, http.StatusOK, &after)
	for i := range before.Pred {
		for j := range before.Pred[i] {
			if before.Pred[i][j] != after.Pred[i][j] {
				t.Fatalf("recovered verdict differs at (%d,%d)", i, j)
			}
			if math.Float64bits(before.Scores[i][j]) != math.Float64bits(after.Scores[i][j]) {
				t.Fatalf("recovered score bits differ at (%d,%d)", i, j)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, artifactFile(st.ID, 3)+corruptSuffix)); err != nil {
		t.Fatalf("torn v3 not quarantined: %v", err)
	}
	if man := readManifest(t, dir); man.Models[st.ID] != 2 {
		t.Fatalf("manifest after recovery: %+v, want %s -> 2", man.Models, st.ID)
	}
	text := metricsText(t, ts2.URL)
	if !strings.Contains(text, "zeroedd_models_quarantined_total 1") {
		t.Fatalf("torn v3 not counted as quarantined:\n%s", text)
	}
}

// deadlineErr decodes a structured error envelope and asserts the typed
// deadline shape: 503, code "deadline", Retry-After set.
func assertDeadline(t *testing.T, resp *http.Response) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw.String())
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("deadline response missing Retry-After")
	}
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "deadline" {
		t.Fatalf("error code %q, want \"deadline\"", env.Error.Code)
	}
}

// TestRequestDeadlineFit: a fit that exceeds -request-timeout returns the
// typed 503, never a generic 500.
func TestRequestDeadlineFit(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a fit over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 2, RequestTimeout: 50 * time.Millisecond})
	csv := benchCSV(t, datasets.Hospital(150, 3).Dirty)
	resp, err := http.Post(ts.URL+"/v1/models?seed=3", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	assertDeadline(t, resp)
	if !strings.Contains(metricsText(t, ts.URL), "zeroedd_request_deadlines_total 1") {
		t.Error("deadline not counted in metrics")
	}
}

// slowBody yields head immediately, then rest after delay — a client whose
// upload outlives the server-side request deadline.
func slowBody(head, rest []byte, delay time.Duration) io.Reader {
	pr, pw := io.Pipe()
	go func() {
		pw.Write(head)
		time.Sleep(delay)
		pw.Write(rest)
		pw.Close()
	}()
	return pr
}

// TestRequestDeadlineScoreAndStream: a score whose body arrives after the
// deadline gets the typed 503; a stream — whose 200 is already on the wire
// — gets a terminal typed error line instead.
func TestRequestDeadlineScoreAndStream(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	dir := t.TempDir()
	tsFit, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	csv := benchCSV(t, datasets.Hospital(120, 3).Dirty)
	st := fitHTTPModel(t, tsFit.URL, csv, "?seed=3")

	// Same directory, now behind a tight request deadline.
	ts, _ := testServer(t, Config{Workers: 2, ModelDir: dir, RequestTimeout: 100 * time.Millisecond})
	header := []byte(strings.Join(st.Attrs, ",") + "\n")
	row := []byte(strings.Join(dsRows(datasets.Hospital(120, 3).Dirty, 1)[0], ",") + "\n")

	resp, err := http.Post(ts.URL+"/v1/models/"+st.ID+"/score", "text/csv",
		slowBody(header, row, 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	assertDeadline(t, resp)

	resp, err = http.Post(ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv",
		slowBody(header, row, 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200 (error arrives in-band)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var errLine string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, `"error"`) {
			errLine = line
		}
	}
	if !strings.Contains(errLine, `"deadline"`) {
		t.Fatalf("stream should end with a typed deadline line, got:\n%s", body)
	}
	if !strings.Contains(metricsText(t, ts.URL), "zeroedd_request_deadlines_total 2") {
		t.Error("score+stream deadlines not counted in metrics")
	}
}

// TestClientDisconnectMidFit: a client that vanishes mid-fit leaves the
// registry and the model directory exactly as they were — no phantom
// registration, no stranded artifact or temp file — and the very next fit
// succeeds.
func TestClientDisconnectMidFit(t *testing.T) {
	if testing.Short() {
		t.Skip("fits models over HTTP")
	}
	dir := t.TempDir()
	ts, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	csv := benchCSV(t, datasets.Hospital(250, 5).Dirty)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/models?seed=4", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Skip("fit finished before the disconnect; nothing to assert")
	}

	// The abandoned fit unwinds asynchronously; poll for a quiescent,
	// consistent state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		zedms := dirNames(t, dir, artifactExt)
		tmps := dirNames(t, dir, ".tmp")
		var listing struct {
			Models []ModelStatus `json:"models"`
		}
		resp, err := http.Get(ts.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(zedms) == 0 && len(tmps) == 0 && len(listing.Models) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inconsistent state after disconnect: artifacts %v tmp %v registry %d",
				zedms, tmps, len(listing.Models))
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The server is fully healthy: the next fit lands and persists.
	st := fitHTTPModel(t, ts.URL, benchCSV(t, datasets.Hospital(120, 3).Dirty), "?seed=3")
	if _, err := os.Stat(filepath.Join(dir, artifactFile(st.ID, 1))); err != nil {
		t.Fatalf("post-disconnect fit not persisted: %v", err)
	}
	if man := readManifest(t, dir); man.Models[st.ID] != 1 {
		t.Fatalf("manifest after post-disconnect fit: %+v", man.Models)
	}
}

// TestRefitFailureBackoffKeepsServing: when every drift-triggered refit
// fails at the persist boundary, the model keeps serving its last good
// version (zero non-200s under concurrent load), the failure is counted,
// and the backoff/breaker state is exported as gauges.
func TestRefitFailureBackoffKeepsServing(t *testing.T) {
	if testing.Short() {
		t.Skip("fits models over HTTP")
	}
	if err := faultpoint.Arm("serve.refit.persist", "error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Reset)

	dir := t.TempDir()
	ts, _ := testServer(t, Config{
		Workers:           4,
		ModelDir:          dir,
		MaxRows:           400,
		StreamChunkRows:   64,
		DriftThreshold:    0.15,
		DriftMinRows:      400,
		RefitBreakerAfter: 1,
	})
	bench := datasets.Hospital(250, 5)
	csv := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csv, "?seed=5")

	warm := dsRows(bench.Dirty, 400)
	out := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv", rowsCSV(t, st.Attrs, warm))
	if out.status != http.StatusOK || out.errLine != "" {
		t.Fatalf("warm stream: status %d err %q", out.status, out.errLine)
	}

	// Novel rows trip the drift gauge and start a refit that is doomed to
	// fail at persist; concurrently, hammer the score endpoint — every
	// response must stay 200 on the last good version.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv",
			rowsCSV(t, st.Attrs, novelRows(len(st.Attrs), 250)))
	}()
	errs := make([]error, 20)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/models/"+st.ID+"/score", "text/csv", bytes.NewReader(csv))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("score %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Wait for the doomed refit to settle as a counted failure.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if strings.Contains(metricsText(t, ts.URL), `zeroedd_model_refits_total{outcome="failed"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refit failure never counted:\n%s", metricsText(t, ts.URL))
		}
		time.Sleep(100 * time.Millisecond)
	}

	text := metricsText(t, ts.URL)
	for _, want := range []string{
		fmt.Sprintf("zeroedd_model_refit_breaker{model=%q} 1", st.ID),
		fmt.Sprintf("zeroedd_model_refit_consecutive_failures{model=%q} 1", st.ID),
		fmt.Sprintf("zeroedd_model_version{model=%q} 1", st.ID),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The failed successor's artifact must not be on disk, and the
	// registry still serves version 1.
	if _, err := os.Stat(filepath.Join(dir, artifactFile(st.ID, 2))); err == nil {
		t.Error("failed refit left a v2 artifact on disk")
	}
	var info ModelStatus
	resp, err := http.Get(ts.URL + "/v1/models/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != 1 {
		t.Fatalf("version %d after failed refit, want 1", info.Version)
	}
}
