package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// The serve-layer observability spine: a request-ID + tracing + RED-metrics
// middleware wrapped around the mux, per-request span trees exported through
// ?trace=1 envelopes and GET /v1/jobs/{id}/trace, slow-request Chrome traces
// retained in a ring (browsable at GET /debug/traces on the gated debug
// listener), and structured access/panic logging through log/slog.

// requestIDHeader is the correlation header: honored when the client sends
// a well-formed value, generated otherwise, echoed on every response and
// carried in every error envelope and log line.
const requestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// ridCounter numbers generated request IDs within the process.
var ridCounter atomic.Int64

// ridEpoch distinguishes processes, so IDs from a restarted server do not
// collide in aggregated logs. Set once at init.
var ridEpoch = func() string {
	return fmt.Sprintf("%x-%x", os.Getpid(), time.Now().UnixNano()&0xffffff)
}()

// requestID resolves the request's correlation ID: a client-supplied
// X-Request-ID survives when it is printable and bounded (anything else
// would let hostile bytes into logs and headers), otherwise a fresh ID is
// generated.
func requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("r-%s-%06d", ridEpoch, ridCounter.Add(1))
}

// validRequestID accepts 1..128 bytes of [A-Za-z0-9._-].
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// reqIDFrom returns the request ID stored by the middleware, or "".
func reqIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the access log and RED
// metrics. Unwrap exposes the underlying writer so http.ResponseController
// (flush, full-duplex on the stream endpoint) keeps working through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel resolves the registered mux pattern for a request before
// serving it (r.Pattern is only populated on the request the matched
// handler sees, not on the middleware's). Unmatched requests — 404s, 405s —
// share one label so hostile paths cannot mint unbounded metric series.
func (s *Server) routeLabel(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// serveHTTP is the middleware around the mux: request-ID resolution and
// echo, an always-on per-request trace rooted at the route, the request
// timeout, last-resort panic recovery (stack through slog, structured 500),
// RED metrics, the access log line, and slow-request trace retention.
func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestID(r)
	w.Header().Set(requestIDHeader, rid)
	route := s.routeLabel(r)

	ctx := context.WithValue(r.Context(), requestIDKey{}, rid)
	ctx, tr := obs.NewTrace(ctx, route)
	tr.Root().SetAttr("request_id", rid)
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}

	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("panic recovered",
				"request_id", rid, "route", route,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			writeErr(sw, r, http.StatusInternalServerError, "internal",
				fmt.Sprintf("internal error: %v", rec))
		}
		code := sw.status
		if code == 0 {
			code = http.StatusOK // handler wrote nothing (client gone)
		}
		dur := time.Since(start)
		s.met.red.observe(route, code, dur)
		s.log.Info("request",
			"request_id", rid, "route", route, "code", code,
			"dur_ms", float64(dur.Microseconds())/1e3)
		// Job submissions adopt their trace (it finishes with the job);
		// every other trace finishes with the response.
		if tr != nil && !tr.Adopted() {
			tr.Finish()
			s.retainTrace(tr, route, rid, dur)
		}
	}()

	s.mux.ServeHTTP(sw, r)
}

// retainTrace keeps a finished trace when it crossed the slow threshold:
// into the ring behind GET /debug/traces, and as a Chrome trace_event file
// under Config.TraceDir when set.
func (s *Server) retainTrace(tr *obs.Trace, route, rid string, dur time.Duration) {
	if tr == nil || dur < s.cfg.TraceSlow {
		return
	}
	data, spans := tr.ChromeJSON()
	ret := &obs.Retained{
		Name:      route,
		RequestID: rid,
		DurMS:     float64(dur.Microseconds()) / 1e3,
		Spans:     spans,
		Chrome:    data,
	}
	seq := s.ring.Add(ret)
	if s.cfg.TraceDir != "" {
		if err := os.MkdirAll(s.cfg.TraceDir, 0o755); err == nil {
			path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("trace-%06d.json", seq))
			if werr := os.WriteFile(path, data, 0o644); werr != nil {
				s.log.Warn("trace dump failed", "request_id", rid, "path", path, "err", werr)
			}
		} else {
			s.log.Warn("trace dir unavailable", "dir", s.cfg.TraceDir, "err", err)
		}
	}
}

// wantTrace reports whether a synchronous endpoint should embed its span
// tree in the response envelope.
func wantTrace(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}

// traceTree snapshots the request's trace for a ?trace=1 envelope. The
// request's own spans are all ended by the time the handler encodes its
// response; only the root is still open, reported at its elapsed-so-far
// duration.
func traceTree(r *http.Request) *obs.Node {
	return obs.TraceFromContext(r.Context()).Tree()
}

// handleJobTrace serves the span tree of a finished job: the submit
// request's trace, adopted by the job and finished when the job settled.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown job id")
		return
	}
	j.mu.Lock()
	state, tree := j.state, j.traceTree
	id := j.id
	j.mu.Unlock()
	switch state {
	case JobQueued, JobRunning:
		writeErr(w, r, http.StatusConflict, "not_done", fmt.Sprintf("job is %s", state))
		return
	}
	if tree == nil {
		writeErr(w, r, http.StatusNotFound, "no_trace", "job ran without tracing enabled")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": state, "trace": tree})
}

// handleReadyz is the readiness sibling of /healthz: ready means the model
// directory (when configured) is writable — a fit that cannot persist is
// not a server you want traffic on — and reports the loaded-model count.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	models := s.reg.count()
	if s.cfg.ModelDir != "" {
		if err := probeWritable(s.cfg.ModelDir); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "unready", "models": models, "error": err.Error(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": models})
}

// probeWritable verifies a directory accepts writes by creating and
// removing a probe file (the suffix avoids both the artifact scanner and
// the stranded-temp sweeper).
func probeWritable(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".readyz-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// DebugHandler returns the gated debug surface served on -debug-addr: the
// full net/http/pprof suite, the fault-injection registry, and the retained
// slow-request traces. It is a separate handler by design — operators bind
// it to localhost or an internal interface, never the service port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	mux.HandleFunc("GET /debug/traces/{seq}", s.handleTraceGet)
	return mux
}

// handleFailpoints reports every registered fault-injection point with its
// evaluation and hit counters — the live view of the faultpoint registry.
func (s *Server) handleFailpoints(w http.ResponseWriter, r *http.Request) {
	type fp struct {
		Name  string `json:"name"`
		Evals int64  `json:"evals"`
		Hits  int64  `json:"hits"`
	}
	names := faultpoint.List()
	out := make([]fp, 0, len(names))
	for _, name := range names {
		out = append(out, fp{Name: name, Evals: faultpoint.Evals(name), Hits: faultpoint.Hits(name)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"failpoints": out})
}

// handleTraceList lists the retained slow-request traces, newest first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.ring.List()})
}

// handleTraceGet serves one retained trace as Chrome trace_event JSON,
// ready for chrome://tracing or Perfetto.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_param", "trace seq must be an integer")
		return
	}
	ret, ok := s.ring.Get(seq)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "trace evicted or never retained")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(ret.Chrome)
}

// buildMeta resolves the build-info labels once: the module version (VCS
// revision when the version is a devel placeholder), the Go toolchain, and
// whether the binary was profile-guided-optimized (-pgo build setting).
type buildMeta struct {
	version   string
	goVersion string
	pgo       bool
}

var readBuildMeta = func() buildMeta {
	bm := buildMeta{version: "unknown", goVersion: ""}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bm
	}
	bm.goVersion = info.GoVersion
	if v := info.Main.Version; v != "" && v != "(devel)" {
		bm.version = v
	}
	var revision string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "-pgo":
			bm.pgo = s.Value != "" && s.Value != "off"
		}
	}
	if bm.version == "unknown" && revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		bm.version = revision
	}
	return bm
}()

// newLogger resolves the service logger: the configured one, or text to
// stderr.
func newLogger(cfg Config) *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
