package serve

import (
	"bytes"
	"testing"

	"repro/internal/nn"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// FuzzDetect drives arbitrary small CSV bytes through the full
// request-reachable path — boundary ingestion (limits, arity validation)
// followed by an end-to-end Detect — and asserts the service robustness
// contract: every input yields an error or a result, never a panic. The
// engine configuration is shrunk (tiny MLP, one worker) so individual
// executions stay fast; the code paths exercised are the same ones a real
// job runs.
func FuzzDetect(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("a\nx\n"))
	f.Add([]byte("name,age\nalice,30\nbob,-1\nalice,\n"))
	f.Add([]byte("a,b\n\"q\"\"x\",2\n,\n"))
	f.Add([]byte("h\n" + "0\n0\n0\n0\n0\n0\n0\n0\n"))
	f.Add([]byte("x,y,z\n1,2,3\n1,2,3\n4,5,6\n7,8,9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip("cap input size to keep executions fast")
		}
		ds, err := ingestCSV("fuzz", bytes.NewReader(data), ingestLimits{maxRows: 40, maxCols: 6})
		if err != nil {
			return // rejected at the boundary: exactly the contract
		}
		cfg := zeroed.Config{
			Seed:     1,
			Workers:  1,
			EmbedDim: 8,
			MLP:      nn.Config{Hidden1: 4, Hidden2: 3, Epochs: 2, BatchSize: 8, Seed: 1},
		}
		// Error or result are both fine; a panic fails the fuzz run.
		if _, err := zeroed.New(cfg).Detect(ds); err != nil {
			t.Logf("detect error (acceptable): %v", err)
		}
	})
}

// FuzzStreamNDJSON throws arbitrary bytes at the schema-bound NDJSON row
// source the streaming endpoint decodes with: it must never panic, never
// emit a row with the wrong arity, and never return more rows per call
// than asked for — the memory bound the streaming endpoint relies on to
// stay O(chunk), not O(body).
func FuzzStreamNDJSON(f *testing.F) {
	f.Add([]byte(`["a","b"]`))
	f.Add([]byte(`{"x":"a","y":null}`))
	f.Add([]byte("\n\n[1,2]\n{\"x\":\"v\",\"y\":3.5}\n"))
	f.Add([]byte(`[{"deep":[1,2]},"b"]`))
	f.Add([]byte(`{"x":"a","y":"b","z":"unknown"}`))
	f.Add([]byte(`["only one cell"]`))
	f.Add([]byte("[\"a\",\"b\"]\nnot json at all\n[\"c\",\"d\"]"))
	f.Add([]byte("\xff\xfe\x00 garbage"))
	f.Add(bytes.Repeat([]byte(`["a","b"]`+"\n"), 100))
	attrs := []string{"x", "y"}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := table.NewNDJSONSource(bytes.NewReader(data), attrs)
		if err != nil {
			t.Fatalf("schema-bound source must open without reading the body: %v", err)
		}
		const max = 8
		for i := 0; i < 1<<20; i++ { // hard stop: Next must terminate
			rows, err := src.Next(max)
			if len(rows) > max {
				t.Fatalf("next(%d) returned %d rows", max, len(rows))
			}
			for _, row := range rows {
				if len(row) != len(attrs) {
					t.Fatalf("row has %d cells, model expects %d", len(row), len(attrs))
				}
			}
			if err != nil {
				return // io.EOF or a decode error: both are clean exits
			}
		}
		t.Fatal("ndjson source never terminated")
	})
}
