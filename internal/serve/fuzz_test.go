package serve

import (
	"bytes"
	"testing"

	"repro/internal/nn"
	"repro/internal/zeroed"
)

// FuzzDetect drives arbitrary small CSV bytes through the full
// request-reachable path — boundary ingestion (limits, arity validation)
// followed by an end-to-end Detect — and asserts the service robustness
// contract: every input yields an error or a result, never a panic. The
// engine configuration is shrunk (tiny MLP, one worker) so individual
// executions stay fast; the code paths exercised are the same ones a real
// job runs.
func FuzzDetect(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("a\nx\n"))
	f.Add([]byte("name,age\nalice,30\nbob,-1\nalice,\n"))
	f.Add([]byte("a,b\n\"q\"\"x\",2\n,\n"))
	f.Add([]byte("h\n" + "0\n0\n0\n0\n0\n0\n0\n0\n"))
	f.Add([]byte("x,y,z\n1,2,3\n1,2,3\n4,5,6\n7,8,9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip("cap input size to keep executions fast")
		}
		ds, err := ingestCSV("fuzz", bytes.NewReader(data), ingestLimits{maxRows: 40, maxCols: 6})
		if err != nil {
			return // rejected at the boundary: exactly the contract
		}
		cfg := zeroed.Config{
			Seed:     1,
			Workers:  1,
			EmbedDim: 8,
			MLP:      nn.Config{Hidden1: 4, Hidden2: 3, Epochs: 2, BatchSize: 8, Seed: 1},
		}
		// Error or result are both fine; a panic fails the fuzz run.
		if _, err := zeroed.New(cfg).Detect(ds); err != nil {
			t.Logf("detect error (acceptable): %v", err)
		}
	})
}
