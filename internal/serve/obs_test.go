package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/obs"
)

// metricFamilies fetches /metrics and returns the sorted set of series
// names (label sets and values stripped).
func metricFamilies(t *testing.T, base string) ([]string, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	seen := map[string]bool{}
	sc := bufio.NewScanner(io.TeeReader(resp.Body, &body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		seen[name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, body.String()
}

// TestMetricNamesPinned is the exposition-surface regression test: after
// traffic has touched every subsystem (job, fit, score, repair, stream),
// /metrics must export exactly this set of series names. A rename, a
// dropped family, or an accidental new family fails loudly here instead of
// silently breaking dashboards.
func TestMetricNamesPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full traffic over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 2, MaxConcurrentJobs: 2})
	bench := datasets.Hospital(160, 3)
	csv := benchCSV(t, bench.Dirty)

	// One job through the async path...
	st, _ := postCSV(t, ts.URL+"/v1/jobs?seed=1", csv)
	waitDone(t, ts.URL, st.ID)
	// ...and one model through fit, score, repair, and stream, so the
	// conditional families (fit stages, model version, drift, refit health)
	// are all live.
	var ms ModelStatus
	postModelCSV(t, ts.URL+"/v1/models?seed=2", csv, http.StatusCreated, &ms)
	postModelCSV(t, ts.URL+"/v1/models/"+ms.ID+"/score", csv, http.StatusOK, nil)
	postModelCSV(t, ts.URL+"/v1/models/"+ms.ID+"/repair?table=0", csv, http.StatusOK, nil)
	postStream(t, ts.URL+"/v1/models/"+ms.ID+"/stream", "text/csv", csv)

	want := []string{
		"zeroedd_build_info",
		"zeroedd_detect_seconds_count",
		"zeroedd_detect_seconds_sum",
		"zeroedd_dropped_columns_total",
		"zeroedd_fit_seconds_count",
		"zeroedd_fit_seconds_sum",
		"zeroedd_fit_stage_seconds",
		"zeroedd_http_request_seconds_bucket",
		"zeroedd_http_request_seconds_count",
		"zeroedd_http_request_seconds_sum",
		"zeroedd_http_requests_total",
		"zeroedd_jobs_current",
		"zeroedd_jobs_finished_total",
		"zeroedd_jobs_submitted_total",
		"zeroedd_manifest_missing_total",
		"zeroedd_manifest_write_failures_total",
		"zeroedd_mapped_uploads_total",
		"zeroedd_model_drift",
		"zeroedd_model_load_failures_total",
		"zeroedd_model_refit_breaker",
		"zeroedd_model_refit_consecutive_failures",
		"zeroedd_model_refits_total",
		"zeroedd_model_version",
		"zeroedd_models_current",
		"zeroedd_models_fitted_total",
		"zeroedd_models_quarantined_total",
		"zeroedd_queue_wait_seconds_bucket",
		"zeroedd_queue_wait_seconds_count",
		"zeroedd_queue_wait_seconds_sum",
		"zeroedd_repair_seconds_count",
		"zeroedd_repair_seconds_sum",
		"zeroedd_repaired_cells_total",
		"zeroedd_request_deadlines_total",
		"zeroedd_rows_ingested_total",
		"zeroedd_score_seconds_count",
		"zeroedd_score_seconds_sum",
		"zeroedd_stream_requests_total",
		"zeroedd_stream_rows_total",
	}
	got, body := metricFamilies(t, ts.URL)
	if !equalStrings(got, want) {
		t.Errorf("metric family set drifted:\n got: %v\nwant: %v", got, want)
	}

	// Spot-check the RED series carry real labels: the submit route with its
	// 202, and a per-route latency histogram bucket.
	for _, series := range []string{
		`zeroedd_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
		`zeroedd_http_requests_total{route="POST /v1/models/{id}/score",code="200"} 1`,
		`zeroedd_http_request_seconds_bucket{route="POST /v1/jobs",le="+Inf"} 1`,
		`zeroedd_build_info{version=`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJobTraceSpanTree pins the served span-tree contract: a finished job's
// trace (adopted from the submit request, finished with the job) contains
// every serve phase — queue_wait, ingest, detect with the fit pipeline
// under it — and the phases account for time inside the root, never more
// than it.
func TestJobTraceSpanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a detection job over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(160, 3)
	st, _ := postCSV(t, ts.URL+"/v1/jobs?seed=4", benchCSV(t, bench.Dirty))
	waitDone(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var out struct {
		ID    string    `json:"id"`
		State JobState  `json:"state"`
		Trace *obs.Node `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != st.ID || out.State != JobDone {
		t.Fatalf("trace envelope = %s/%s, want %s/%s", out.ID, out.State, st.ID, JobDone)
	}
	root := out.Trace
	if root == nil {
		t.Fatal("no trace in envelope")
	}
	if root.Name != "POST /v1/jobs" {
		t.Errorf("root span %q, want the route pattern", root.Name)
	}
	if root.Attrs["request_id"] == "" {
		t.Error("root span missing request_id attr")
	}

	var phases int64
	for _, name := range []string{"queue_wait", "ingest", "detect"} {
		n := root.Find(name)
		if n == nil {
			t.Fatalf("span %q missing from job trace", name)
		}
		phases += n.DurUS
	}
	// The pipeline spans ride under detect.
	for _, name := range []string{"fit", "fit.train", "score"} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing from job trace", name)
		}
	}
	// queue_wait + ingest + detect happen sequentially inside the root, so
	// their sum can never exceed the root's duration (small slack for the
	// microsecond rounding of each span).
	if phases > root.DurUS+10 {
		t.Errorf("phase durations sum to %dus, exceeding root %dus", phases, root.DurUS)
	}
	if detect := root.Find("detect"); detect.DurUS <= 0 {
		t.Error("detect span has no duration")
	}
}

// TestRequestIDEchoAndEnvelope pins the correlation contract: a well-formed
// client X-Request-ID is honored (response header + error envelope), a
// missing or hostile one is replaced with a generated ID, and both appear
// in the envelope of a plain 404.
func TestRequestIDEchoAndEnvelope(t *testing.T) {
	ts, _ := testServer(t, Config{})

	get := func(header string) (*http.Response, apiError) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-404404", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(requestIDHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp, env.Error
	}

	resp, apiErr := get("trace-me-42")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(requestIDHeader); got != "trace-me-42" {
		t.Errorf("header echo %q, want the client ID back", got)
	}
	if apiErr.RequestID != "trace-me-42" || apiErr.Code != "not_found" {
		t.Errorf("envelope = %+v, want request_id trace-me-42 and code not_found", apiErr)
	}

	resp, apiErr = get("")
	gen := resp.Header.Get(requestIDHeader)
	if !strings.HasPrefix(gen, "r-") {
		t.Errorf("generated ID %q, want r- prefix", gen)
	}
	if apiErr.RequestID != gen {
		t.Errorf("envelope request_id %q != header %q", apiErr.RequestID, gen)
	}

	resp, _ = get("bad id with spaces")
	if got := resp.Header.Get(requestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Errorf("hostile ID echoed as %q, want a generated replacement", got)
	}
}

// TestReadyz covers both readiness verdicts: ready with a writable (or
// absent) model dir and the loaded-model count, unready when the dir cannot
// accept writes.
func TestReadyz(t *testing.T) {
	ts, _ := testServer(t, Config{ModelDir: t.TempDir()})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ready" || out.Models != 0 {
		t.Errorf("readyz = %+v, want ready with 0 models", out)
	}
}

// TestTraceQueryEmbedsSpans pins ?trace=1 on a synchronous endpoint: the
// fit response gains a trace field whose tree contains the ingest and fit
// pipeline spans, and the same request without ?trace=1 has none.
func TestTraceQueryEmbedsSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	ts, _ := testServer(t, Config{Workers: 2, ModelDir: t.TempDir()})
	csv := benchCSV(t, datasets.Hospital(160, 3).Dirty)

	var traced struct {
		ModelStatus
		Trace *obs.Node `json:"trace"`
	}
	postModelCSV(t, ts.URL+"/v1/models?seed=6&trace=1", csv, http.StatusCreated, &traced)
	if traced.Trace == nil {
		t.Fatal("?trace=1 fit response has no trace")
	}
	for _, name := range []string{"ingest", "fit", "fit.train", "encode", "persist"} {
		if traced.Trace.Find(name) == nil {
			t.Errorf("span %q missing from ?trace=1 fit response", name)
		}
	}

	var plain struct {
		ModelStatus
		Trace *obs.Node `json:"trace"`
	}
	postModelCSV(t, ts.URL+"/v1/models?seed=7", csv, http.StatusCreated, &plain)
	if plain.Trace != nil {
		t.Error("fit response without ?trace=1 embedded a trace")
	}
}

// TestDebugTraceRing pins the slow-request ring: with TraceSlow at zero
// every request is retained, GET /debug/traces lists it, and GET
// /debug/traces/{seq} serves loadable Chrome trace_event JSON.
func TestDebugTraceRing(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model over HTTP")
	}
	svcTS, svc := testServer(t, Config{Workers: 2})
	dbg := httptest.NewServer(svc.DebugHandler())
	t.Cleanup(dbg.Close)

	csv := benchCSV(t, datasets.Hospital(160, 3).Dirty)
	postModelCSV(t, svcTS.URL+"/v1/models?seed=8", csv, http.StatusCreated, nil)

	resp, err := http.Get(dbg.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Traces []obs.Retained `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no retained traces; TraceSlow defaults to 0 so every request retains")
	}
	ret := list.Traces[0]
	if ret.Name != "POST /v1/models" || ret.Spans == 0 {
		t.Errorf("retained trace = %+v, want the fit route with spans", ret)
	}

	resp2, err := http.Get(fmt.Sprintf("%s/debug/traces/%d", dbg.URL, ret.Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&chrome); err != nil {
		t.Fatalf("retained trace is not Chrome trace_event JSON: %v", err)
	}
	if len(chrome.TraceEvents) != ret.Spans {
		t.Errorf("chrome export has %d events, listing says %d spans", len(chrome.TraceEvents), ret.Spans)
	}
}
