package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// The model registry: fit once over the wire, score forever. POST /v1/models
// runs the expensive Fit phase synchronously (bounded by a fit semaphore and
// the shared worker pool) and registers the fitted model under an ID —
// persisted as a versioned artifact when Config.ModelDir is set, and
// reloaded from there on startup. POST /v1/models/{id}/score then scores
// small CSV bodies against the registered model with no criteria induction,
// sampling, labeling, or training — the p50 score latency sits orders of
// magnitude below a fit job (tracked by the score-latency metric).

// artifactExt is the on-disk suffix of persisted model artifacts.
const artifactExt = ".zedm"

// artifactFile names the on-disk artifact for one model version: the
// original fit keeps the bare "id.zedm" name (backwards compatible with
// pre-versioning artifacts), refit successors append ".vN". Old versions
// are retained on disk for rollback until the model is deleted.
func artifactFile(id string, version int) string {
	if version <= 1 {
		return id + artifactExt
	}
	return fmt.Sprintf("%s.v%d%s", id, version, artifactExt)
}

// parseArtifactName splits an artifact filename into (id, version).
func parseArtifactName(name string) (string, int, bool) {
	if !strings.HasSuffix(name, artifactExt) {
		return "", 0, false
	}
	base := strings.TrimSuffix(name, artifactExt)
	if i := strings.LastIndex(base, ".v"); i > 0 {
		if v, err := strconv.Atoi(base[i+2:]); err == nil && v >= 2 {
			return base[:i], v, true
		}
	}
	return base, 1, true
}

// regEntry is one registered fitted model at one version. All fields are
// immutable after registration; a hot-swap replaces the whole entry under
// the registry lock, so in-flight requests holding the old entry keep
// scoring on the old model untouched.
type regEntry struct {
	id      string
	name    string
	m       *zeroed.Model
	created time.Time
	bytes   int
	version int
}

// registry owns the fitted-model table. The fit semaphore bounds how many
// expensive fits run at once (they still share the one worker pool with
// detection jobs; the semaphore bounds peak memory, not CPU).
//
// Pinning: handlers that score against an entry hold a per-id pin
// (acquire/release) for the duration of the request. DELETE evicts the id
// from the table immediately — new requests 404 — but defers removal of the
// on-disk artifacts until the last pin drains, so an in-flight score or
// stream never races the files out from under a concurrent reload or
// rollback.
type registry struct {
	mu     sync.Mutex
	models map[string]*regEntry
	order  []string // insertion order, oldest first
	nextID int64
	max    int
	dir    string
	log    *slog.Logger
	pins   map[string]int      // in-flight scoring requests per id
	doomed map[string][]string // deleted-while-pinned id -> artifact paths

	fitSem chan struct{}
}

func newRegistry(cfg Config, met *metrics, log *slog.Logger) *registry {
	r := &registry{
		models: make(map[string]*regEntry),
		max:    cfg.MaxModels,
		dir:    cfg.ModelDir,
		log:    log,
		pins:   make(map[string]int),
		doomed: make(map[string][]string),
		fitSem: make(chan struct{}, cfg.MaxConcurrentJobs),
	}
	r.loadDir(met)
	return r
}

// loadDir restores persisted artifacts from the model directory: for each
// model id, the highest intact version wins. Recovery unions the manifest
// (the commit ledger) with a directory scan — the atomic save protocol
// guarantees every scanned artifact is complete-or-absent, and the manifest
// makes a missing or corrupt committed version loudly observable. Corrupt
// files are quarantined to *.corrupt (renamed once, counted once — later
// boots skip them entirely), stranded *.tmp files from a crash mid-save are
// reaped, and the manifest is rewritten to match what actually restored.
func (r *registry) loadDir(met *metrics) {
	if r.dir == "" {
		return
	}
	entries, err := os.ReadDir(r.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return // directory absent: first boot, nothing to restore
	}
	if err != nil {
		// Unreadable directory is NOT a first boot — surface it in the
		// load-failure metric instead of silently serving an empty registry.
		r.log.Error("model dir unreadable", "dir", r.dir, "err", err)
		met.modelLoadFailures.Add(1)
		return
	}
	sweepTmp(r.dir, entries, r.log)
	man, err := loadManifest(r.dir)
	if err != nil {
		// A corrupt manifest never blocks recovery: the artifacts are the
		// source of truth and the scan below restores from them alone.
		r.log.Error("manifest unreadable, recovering from directory scan", "dir", r.dir, "err", err)
		met.manifestWriteFailures.Add(1)
		man = &manifest{Models: map[string]int{}}
	}
	// Group artifacts by model id: each id may carry several versions
	// (id.zedm is version 1, id.vN.zedm a refit successor). The registry
	// restores the highest version that decodes, falling back to older ones
	// — that is the on-disk rollback story for a corrupt refit artifact.
	versions := make(map[string][]int)
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, v, ok := parseArtifactName(e.Name())
		if !ok {
			continue
		}
		if _, seen := versions[id]; !seen {
			ids = append(ids, id)
		}
		versions[id] = append(versions[id], v)
	}
	// Manifest entries with no surviving file still advance the scan: the
	// per-version load below reports them as missing.
	for id := range man.Models {
		if _, seen := versions[id]; !seen {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	// Advance the ID counter past EVERY artifact on disk — including files
	// skipped below as corrupt or beyond capacity — so a freshly assigned
	// ID can never collide with (and overwrite) an existing artifact.
	for _, id := range ids {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "m-"), 10, 64); err == nil && n > r.nextID {
			r.nextID = n
		}
	}
	for _, id := range ids {
		if len(r.models) >= r.max {
			break
		}
		vs := versions[id]
		sort.Sort(sort.Reverse(sort.IntSlice(vs)))
		restored := 0
		for _, v := range vs {
			path := filepath.Join(r.dir, artifactFile(id, v))
			m, err := model.LoadFile(path)
			if err != nil {
				met.modelLoadFailures.Add(1)
				if model.IsCorrupt(err) {
					quarantine(path, met, r.log)
				}
				continue // fall back to the previous version, if any
			}
			fi, _ := os.Stat(path)
			size := 0
			created := time.Now()
			if fi != nil {
				size = int(fi.Size())
				created = fi.ModTime() // approximate the original fit time
			}
			r.models[id] = &regEntry{id: id, name: id, m: m, created: created, bytes: size, version: v}
			r.order = append(r.order, id)
			restored = v
			break
		}
		// The manifest said version N was committed; restoring anything
		// less means a committed artifact vanished or rotted — say so
		// explicitly instead of silently serving the older version.
		if committed := man.Models[id]; committed > restored {
			r.log.Error("manifest committed version not recovered",
				"model", id, "committed", committed, "recovered", restored)
			met.manifestMissing.Add(1)
		}
	}
	// Re-anchor the ledger to reality: recovery (quarantines, fallbacks)
	// may have changed which versions are live. Skipped when the ledger
	// already matches — a clean boot performs no writes, so an armed
	// disk-write failpoint fires at the operation under test, not here.
	stale := len(man.Models) != len(r.models)
	for id, e := range r.models {
		if man.Models[id] != e.version {
			stale = true
		}
	}
	if stale {
		r.writeManifest(met)
	}
}

// full reports whether the registry is at capacity.
func (r *registry) full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models) >= r.max
}

// add registers a fitted model, re-checking capacity under the lock.
func (r *registry) add(name string, m *zeroed.Model, bytes int) (*regEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.models) >= r.max {
		return nil, fmt.Errorf("serve: model registry is full (%d models); DELETE one first", r.max)
	}
	r.nextID++
	e := &regEntry{
		id:      fmt.Sprintf("m-%06d", r.nextID),
		name:    name,
		m:       m,
		created: time.Now(),
		bytes:   bytes,
		version: m.Lineage().Version,
	}
	r.models[e.id] = e
	r.order = append(r.order, e.id)
	return e, nil
}

func (r *registry) get(id string) (*regEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	return e, ok
}

// acquire pins a model for one in-flight scoring request: as long as the
// pin is held, a concurrent DELETE evicts the id from the table but leaves
// the on-disk artifacts alone. Every acquire must be paired with release.
func (r *registry) acquire(id string) (*regEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	if !ok {
		return nil, false
	}
	r.pins[id]++
	return e, true
}

// release drops one pin. When the last pin of a deleted model drains, its
// deferred artifact files are removed (outside the lock).
func (r *registry) release(id string) {
	r.mu.Lock()
	var reap []string
	if r.pins[id]--; r.pins[id] <= 0 {
		delete(r.pins, id)
		reap = r.doomed[id]
		delete(r.doomed, id)
	}
	r.mu.Unlock()
	for _, path := range reap {
		_ = os.Remove(path)
	}
}

// swap replaces a model's registry entry with a refit successor — the
// hot-swap point. The entry pointer is replaced whole under the lock:
// requests that already acquired the old entry finish on the old model,
// requests arriving after the swap score on the successor. Returns false
// when the model was deleted while the refit ran; the caller discards the
// successor.
func (r *registry) swap(id string, m *zeroed.Model, bytes int) (*regEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.models[id]
	if !ok {
		return nil, false
	}
	e := &regEntry{
		id:      id,
		name:    old.name,
		m:       m,
		created: old.created,
		bytes:   bytes,
		version: m.Lineage().Version,
	}
	r.models[id] = e
	return e, true
}

// remove evicts a model from the registry. It returns the artifact paths
// the caller must delete — empty when in-flight requests still pin the id,
// in which case release reaps them after the last pin drains.
func (r *registry) remove(id string) ([]string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[id]
	if !ok {
		return nil, false
	}
	delete(r.models, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	var paths []string
	if r.dir != "" {
		for v := 1; v <= e.version; v++ {
			paths = append(paths, filepath.Join(r.dir, artifactFile(id, v)))
		}
	}
	if r.pins[id] > 0 {
		r.doomed[id] = paths
		return nil, true
	}
	return paths, true
}

// list snapshots every registered model, newest first.
func (r *registry) list() []ModelStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelStatus, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		if e, ok := r.models[r.order[i]]; ok {
			out = append(out, e.status())
		}
	}
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// ModelStatus is the wire form of one registered model.
type ModelStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	// Version counts hot-swapped refits: 1 is the original fit, each
	// drift-triggered refit that swaps in bumps it.
	Version   int   `json:"version"`
	RefitRows int   `json:"refit_rows,omitempty"`
	FitRows   int   `json:"fit_rows"`
	Seed      int64 `json:"seed"`
	// Degenerate marks a single-class fit that replays labels instead of
	// running a trained detector.
	Degenerate    bool      `json:"degenerate,omitempty"`
	CriteriaCount int       `json:"criteria_count"`
	TrainingCells int       `json:"training_cells"`
	FitMS         int64     `json:"fit_ms"`
	ArtifactBytes int       `json:"artifact_bytes,omitempty"`
	Created       time.Time `json:"created"`
}

func (e *regEntry) status() ModelStatus {
	info := e.m.Info()
	return ModelStatus{
		ID:            e.id,
		Name:          e.name,
		Attrs:         e.m.Attrs(),
		Version:       e.version,
		RefitRows:     e.m.Lineage().RefitRows,
		FitRows:       e.m.FitRows(),
		Seed:          e.m.Config().Seed,
		Degenerate:    e.m.Degenerate(),
		CriteriaCount: info.CriteriaCount,
		TrainingCells: info.TrainingCells,
		FitMS:         info.FitRuntime.Milliseconds(),
		ArtifactBytes: e.bytes,
		Created:       e.created,
	}
}

// ScoreResult is the wire form of one synchronous scoring call.
type ScoreResult struct {
	ModelID string   `json:"model_id"`
	Attrs   []string `json:"attrs"`
	Rows    int      `json:"rows"`
	Flagged int      `json:"flagged"`
	// Pred[i][j] is the verdict for cell (i, j); Scores[i][j] the error
	// probability, round-tripping through JSON bit-exactly.
	Pred   [][]bool    `json:"pred"`
	Scores [][]float64 `json:"scores,omitempty"`
	// DroppedCols lists upload columns outside the model schema that the
	// header mapping dropped before scoring.
	DroppedCols []string `json:"dropped_cols,omitempty"`
	ScoreMS     int64    `json:"score_ms"`
	// Trace is the request's span tree, embedded when the client asked for
	// it with ?trace=1.
	Trace *obs.Node `json:"trace,omitempty"`
}

// handleModelFit runs the Fit phase on an uploaded CSV and registers the
// fitted model. The fit is synchronous — the response carries the ready
// model's ID — and canceled if the client disconnects.
func (s *Server) handleModelFit(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	if s.reg.full() {
		writeErr(w, r, http.StatusConflict, "registry_full",
			fmt.Sprintf("model registry holds the maximum of %d models; DELETE one first", s.cfg.MaxModels))
		return
	}
	// Ingest before taking a fit slot: body reads run at the client's pace,
	// and a slow upload must not hold fit concurrency hostage.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, _, err := s.ingestUpload(params.Name, r, body, nil)
	if err != nil {
		writeIngestErr(w, r, err, s.cfg.MaxUploadBytes)
		return
	}
	cfg, err := s.mgr.jobConfig(params)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	select {
	case s.reg.fitSem <- struct{}{}:
		defer func() { <-s.reg.fitSem }()
	default:
		writeBusy(w, r, "busy_fitting", "too many fits in flight, retry later", retryAfterFit)
		return
	}
	start := time.Now()
	m, err := s.fitModel(r, cfg, ds)
	fitDur := time.Since(start) // the fit phase alone, not encode/persist
	if err != nil {
		switch s.classifyFailure(r) {
		case failDeadline:
			s.writeDeadline(w, r)
			return
		case failClientGone:
			return // client gone; nothing useful to write
		}
		if errors.Is(err, errInternalPanic) {
			writeErr(w, r, http.StatusInternalServerError, "internal", "internal error during fit")
			return
		}
		writeErr(w, r, http.StatusBadRequest, "fit_failed", err.Error())
		return
	}
	_, encSpan := obs.Start(r.Context(), "encode")
	data, err := model.Encode(m)
	encSpan.SetInt("bytes", int64(len(data)))
	encSpan.End()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "encode_failed", err.Error())
		return
	}
	e, err := s.reg.add(params.Name, m, len(data))
	if err != nil {
		writeErr(w, r, http.StatusConflict, "registry_full", err.Error())
		return
	}
	if s.cfg.ModelDir != "" {
		_, perSpan := obs.Start(r.Context(), "persist")
		err := fpFitPersist.Eval()
		if err == nil {
			err = s.persistArtifact(artifactFile(e.id, e.version), data)
		}
		perSpan.End()
		if err != nil {
			// Roll the registration back completely: a failure after the
			// commit point (rename) may have left the artifact on disk, and
			// a half-registered model must not resurrect on restart.
			if paths, ok := s.reg.remove(e.id); ok {
				for _, p := range paths {
					_ = os.Remove(p)
				}
			}
			writeErr(w, r, http.StatusInternalServerError, "persist_failed", err.Error())
			return
		}
		s.reg.writeManifest(s.met)
	}
	s.met.modelsFitted.Add(1)
	s.met.fitRuns.Add(1)
	s.met.fitNanos.Add(int64(fitDur))
	s.met.addFitStages(m.Info().Stages)
	out := e.status()
	if wantTrace(r) {
		writeJSON(w, http.StatusCreated, struct {
			ModelStatus
			Trace *obs.Node `json:"trace,omitempty"`
		}{out, traceTree(r)})
		return
	}
	writeJSON(w, http.StatusCreated, out)
}

// errInternalPanic marks a recovered server-side panic: the client gets a
// generic 500, the stack stays in the server log (stack traces are
// internals, not API responses).
var errInternalPanic = errors.New("serve: internal panic")

// fitModel runs one fit on the shared pool, converting stray panics into
// errors.
func (s *Server) fitModel(r *http.Request, cfg zeroed.Config, ds *table.Dataset) (m *zeroed.Model, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("fit panicked", "request_id", reqIDFrom(r.Context()),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			err = errInternalPanic
		}
	}()
	return zeroed.New(cfg).FitOn(r.Context(), s.mgr.pool, ds)
}

// persistArtifact durably commits the encoded artifact under the model
// directory (creating it on first use) via the atomic temp+fsync+rename
// protocol: a crash at any point leaves the directory with either no new
// artifact or the complete one, never a torn file.
func (s *Server) persistArtifact(file string, data []byte) error {
	if err := os.MkdirAll(s.cfg.ModelDir, 0o755); err != nil {
		return err
	}
	return model.WriteFileAtomic(filepath.Join(s.cfg.ModelDir, file), data)
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.list()})
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	writeJSON(w, http.StatusOK, e.status())
}

// handleModelScore scores a CSV or NDJSON body synchronously against a
// registered model — the cheap phase only, no retraining. The uploaded
// header may be a permutation or superset of the model's schema (extras
// are dropped and reported; missing columns are a typed 400). The model is
// pinned for the duration of the request: a concurrent DELETE makes the id
// 404 for new requests but never tears this one — the captured entry keeps
// scoring and its artifacts stay on disk until the pin drains.
func (s *Server) handleModelScore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.acquire(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	defer s.reg.release(id)
	// A degenerate model has no trained detector — its fallback labels are
	// positional in the fitting data and meaningless for arbitrary uploads.
	if e.m.Degenerate() {
		writeErr(w, r, http.StatusConflict, "degenerate_model",
			"model was fitted on single-class data and cannot score new rows; refit on richer data")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, mapping, err := s.ingestUpload("score", r, body, e.m.Attrs())
	if err != nil {
		writeIngestErr(w, r, err, s.cfg.MaxUploadBytes)
		return
	}
	res, err := s.scoreModel(r, e, ds)
	if err != nil {
		switch s.classifyFailure(r) {
		case failDeadline:
			s.writeDeadline(w, r)
			return
		case failClientGone:
			return
		}
		if errors.Is(err, errInternalPanic) {
			writeErr(w, r, http.StatusInternalServerError, "internal", "internal error during scoring")
			return
		}
		writeErr(w, r, http.StatusBadRequest, "score_failed", err.Error())
		return
	}
	s.met.scoreRuns.Add(1)
	s.met.scoreNanos.Add(int64(res.Runtime))
	out := ScoreResult{
		ModelID: e.id,
		Attrs:   e.m.Attrs(),
		Rows:    len(res.Pred),
		Pred:    res.Pred,
		ScoreMS: res.Runtime.Milliseconds(),
	}
	if mapping != nil {
		out.DroppedCols = mapping.Dropped
	}
	if r.URL.Query().Get("scores") != "0" {
		out.Scores = res.Scores
	}
	for _, row := range res.Pred {
		for _, p := range row {
			if p {
				out.Flagged++
			}
		}
	}
	if wantTrace(r) {
		out.Trace = traceTree(r)
	}
	writeJSON(w, http.StatusOK, out)
}

// scoreModel runs one scoring pass on the shared pool, converting stray
// panics into errors.
func (s *Server) scoreModel(r *http.Request, e *regEntry, ds *table.Dataset) (res *zeroed.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("scoring panicked", "request_id", reqIDFrom(r.Context()),
				"model", e.id, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			err = errInternalPanic
		}
	}()
	return e.m.ScoreOn(r.Context(), s.mgr.pool, ds)
}

// handleModelDelete evicts a model. The id 404s immediately for new
// requests; artifact files (all retained versions) are removed right away
// when nothing is in flight, or deferred to the last release when scores or
// streams still pin the model — so deletion never tears an in-flight
// request.
func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	paths, ok := s.reg.remove(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "not_found", "unknown model id")
		return
	}
	s.dropScorer(id)
	for _, path := range paths {
		_ = os.Remove(path)
	}
	if s.cfg.ModelDir != "" {
		s.reg.writeManifest(s.met)
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}
