package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/table"
)

// errEnvelope decodes the service's structured error responses.
type errEnvelope struct {
	Error apiError `json:"error"`
}

// postBody posts raw bytes with an explicit Content-Type and returns the
// status plus the decoded error code (empty on success).
func postBody(t *testing.T, url, contentType string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var env errEnvelope
	_ = json.Unmarshal(buf.Bytes(), &env)
	return resp.StatusCode, env.Error.Code, buf.Bytes()
}

// ndjsonBody renders rows as NDJSON array lines, prefixed with a header
// line when selfDescribing (jobs/fit bodies carry their own header; bodies
// bound to a model schema do not).
func ndjsonBody(t *testing.T, attrs []string, rows [][]string, selfDescribing bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if selfDescribing {
		if err := enc.Encode(attrs); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// dsAllRows materializes every row of a dataset.
func dsAllRows(ds *table.Dataset) [][]string {
	rows := make([][]string, ds.NumRows())
	for i := range rows {
		rows[i] = ds.Row(i)
	}
	return rows
}

// TestRequestFormatNegotiation is the parameterized regression for the
// Content-Type switch: media-type parameters like "; charset=utf-8" used to
// defeat a raw string match and silently fall back to CSV. The ?format
// query parameter always wins; unrecognized media types default to CSV.
func TestRequestFormatNegotiation(t *testing.T) {
	cases := []struct {
		name, url, contentType, want string
		wantErr                      bool
	}{
		{"bare csv", "/", "text/csv", table.FormatCSV, false},
		{"csv with charset", "/", "text/csv; charset=utf-8", table.FormatCSV, false},
		{"application csv", "/", "application/csv", table.FormatCSV, false},
		{"bare ndjson", "/", "application/x-ndjson", table.FormatNDJSON, false},
		{"ndjson with charset", "/", "application/x-ndjson; charset=utf-8", table.FormatNDJSON, false},
		{"ndjson alias", "/", "application/ndjson", table.FormatNDJSON, false},
		{"jsonl alias", "/", "application/jsonl", table.FormatNDJSON, false},
		{"json", "/", "application/json; charset=utf-8", table.FormatNDJSON, false},
		{"no content type", "/", "", table.FormatCSV, false},
		{"unknown type defaults csv", "/", "text/plain; charset=utf-8", table.FormatCSV, false},
		{"malformed type defaults csv", "/", ";;;", table.FormatCSV, false},
		{"query wins over header", "/?format=ndjson", "text/csv; charset=utf-8", table.FormatNDJSON, false},
		{"query csv wins", "/?format=csv", "application/x-ndjson", table.FormatCSV, false},
		{"bad query format", "/?format=xml", "text/csv", "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := httptest.NewRequest("POST", c.url, nil)
			if c.contentType != "" {
				r.Header.Set("Content-Type", c.contentType)
			}
			got, err := requestFormat(r)
			if c.wantErr {
				if err == nil {
					t.Fatalf("want an error, got format %q", got)
				}
				return
			}
			if err != nil || got != c.want {
				t.Fatalf("requestFormat = (%q, %v), want %q", got, err, c.want)
			}
		})
	}
}

// TestJobsNDJSONMatchesCSV pins cross-format verdict equality at the jobs
// endpoint: the same rows submitted as CSV and as self-describing NDJSON
// produce byte-identical verdicts and score bits.
func TestJobsNDJSONMatchesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two detection jobs")
	}
	ts, _ := testServer(t, Config{Workers: 2, MaxConcurrentJobs: 2})
	bench := datasets.Hospital(120, 3)
	csvBytes := benchCSV(t, bench.Dirty)
	ndjsonBytes := ndjsonBody(t, bench.Dirty.Attrs, dsAllRows(bench.Dirty), true)

	st, resp := postCSV(t, ts.URL+"/v1/jobs?seed=4", csvBytes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("csv submit status %d", resp.StatusCode)
	}
	status, _, body := postBody(t, ts.URL+"/v1/jobs?seed=4", "application/x-ndjson; charset=utf-8", ndjsonBytes)
	if status != http.StatusAccepted {
		t.Fatalf("ndjson submit status %d: %s", status, body)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}

	if s := waitDone(t, ts.URL, st.ID); s.State != JobDone {
		t.Fatalf("csv job ended %s: %s", s.State, s.Error)
	}
	if s := waitDone(t, ts.URL, st2.ID); s.State != JobDone {
		t.Fatalf("ndjson job ended %s: %s", s.State, s.Error)
	}
	a, b := getResult(t, ts.URL, st.ID), getResult(t, ts.URL, st2.ID)
	aj, _ := json.Marshal(struct {
		P [][]bool
		S [][]float64
	}{a.Pred, a.Scores})
	bj, _ := json.Marshal(struct {
		P [][]bool
		S [][]float64
	}{b.Pred, b.Scores})
	if !bytes.Equal(aj, bj) {
		t.Fatal("NDJSON job verdicts differ from the CSV job on the same rows")
	}
}

// TestScoreSchemaMapping pins the schema-mapping contract at the score
// endpoint: permuted headers score byte-identically to the schema-ordered
// upload, supersets drop (and report) the extra columns, missing schema
// columns are a typed 400, and ambiguous duplicate headers are rejected.
func TestScoreSchemaMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(150, 5)
	st := fitHTTPModel(t, ts.URL, benchCSV(t, bench.Dirty), "?seed=5")
	attrs := st.Attrs
	rows := dsRows(bench.Dirty, 60)

	verdictBits := func(raw []byte) string {
		t.Helper()
		var probe struct {
			Pred   json.RawMessage `json:"pred"`
			Scores json.RawMessage `json:"scores"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		return string(probe.Pred) + "|" + string(probe.Scores)
	}

	status, _, base := postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "text/csv", rowsCSV(t, attrs, rows))
	if status != http.StatusOK {
		t.Fatalf("identity score status %d: %s", status, base)
	}
	want := verdictBits(base)

	// Permutation: reversed column order, same cells.
	rev := make([]int, len(attrs))
	for i := range rev {
		rev[i] = len(attrs) - 1 - i
	}
	permAttrs := make([]string, len(attrs))
	permRows := make([][]string, len(rows))
	for j, i := range rev {
		permAttrs[j] = attrs[i]
	}
	for k, r := range rows {
		pr := make([]string, len(r))
		for j, i := range rev {
			pr[j] = r[i]
		}
		permRows[k] = pr
	}
	status, _, raw := postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "text/csv", rowsCSV(t, permAttrs, permRows))
	if status != http.StatusOK {
		t.Fatalf("permuted score status %d: %s", status, raw)
	}
	if verdictBits(raw) != want {
		t.Fatal("permuted upload verdicts differ from the schema-ordered upload")
	}

	// Superset: an extra leading and trailing column, dropped and reported.
	supAttrs := append(append([]string{"junk"}, attrs...), "extra")
	supRows := make([][]string, len(rows))
	for k, r := range rows {
		supRows[k] = append(append([]string{"J"}, r...), "E")
	}
	status, _, raw = postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "text/csv", rowsCSV(t, supAttrs, supRows))
	if status != http.StatusOK {
		t.Fatalf("superset score status %d: %s", status, raw)
	}
	if verdictBits(raw) != want {
		t.Fatal("superset upload verdicts differ from the schema-ordered upload")
	}
	var sr ScoreResult
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if strings.Join(sr.DroppedCols, ",") != "junk,extra" {
		t.Fatalf("DroppedCols = %v, want [junk extra]", sr.DroppedCols)
	}

	// NDJSON bound framing of the same rows: identical verdict bits.
	status, _, raw = postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "application/x-ndjson; charset=utf-8",
		ndjsonBody(t, attrs, rows, false))
	if status != http.StatusOK {
		t.Fatalf("ndjson score status %d: %s", status, raw)
	}
	if verdictBits(raw) != want {
		t.Fatal("NDJSON upload verdicts differ from the CSV upload")
	}

	// Missing schema column: typed 400.
	status, code, _ := postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "text/csv",
		rowsCSV(t, attrs[1:], nil))
	if status != http.StatusBadRequest || code != "missing_columns" {
		t.Fatalf("missing column: status %d code %q, want 400 missing_columns", status, code)
	}

	// Duplicate upload header: ambiguous, rejected.
	dupAttrs := append(append([]string(nil), attrs...), attrs[0])
	status, code, _ = postBody(t, ts.URL+"/v1/models/"+st.ID+"/score", "text/csv",
		rowsCSV(t, dupAttrs, nil))
	if status != http.StatusBadRequest || code != "bad_upload" {
		t.Fatalf("duplicate header: status %d code %q, want 400 bad_upload", status, code)
	}
}

// TestRepairEndpointMatchesLocalPipeline pins the served detect→repair
// loop's determinism contract: the endpoint's change log and corrected
// table are identical to scoring the same artifact over the same bytes and
// applying the repairer locally — the computation `zeroed -model-in
// -repair` runs — including through a schema-mapped (permuted, superset)
// upload. ?table=0 suppresses the corrected table.
func TestRepairEndpointMatchesLocalPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	dir := t.TempDir()
	ts, _ := testServer(t, Config{Workers: 2, ModelDir: dir})
	bench := datasets.Hospital(150, 5)
	csvBytes := benchCSV(t, bench.Dirty)
	st := fitHTTPModel(t, ts.URL, csvBytes, "?seed=5")

	// Local reference: load the same artifact, score the same bytes with no
	// refit, apply the same repair defaults.
	m, err := model.LoadFile(filepath.Join(dir, st.ID+".zedm"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := table.ReadCSV("repair", bytes.NewReader(csvBytes))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Score(ref)
	if err != nil {
		t.Fatal(err)
	}
	repaired, fixes := repair.New(repair.Config{}).Apply(ref, res.Pred)
	if len(fixes) == 0 {
		t.Fatal("reference repair proposed no fixes; the benchmark should have repairable errors")
	}

	assertMatches := func(raw []byte, wantDropped []string) {
		t.Helper()
		var rr RepairResult
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Rows != ref.NumRows() || rr.Repaired != len(fixes) || len(rr.Changes) != len(fixes) {
			t.Fatalf("rows=%d repaired=%d changes=%d, want rows=%d repaired=%d",
				rr.Rows, rr.Repaired, len(rr.Changes), ref.NumRows(), len(fixes))
		}
		for i, f := range fixes {
			c := rr.Changes[i]
			if c.Row != f.Row || c.Col != f.Col || c.Attr != m.Attrs()[f.Col] ||
				c.Old != f.Old || c.New != f.New || c.Strategy != string(f.Strategy) {
				t.Fatalf("change %d = %+v, want fix %+v", i, c, f)
			}
		}
		if len(rr.Table) != repaired.NumRows() {
			t.Fatalf("table has %d rows, want %d", len(rr.Table), repaired.NumRows())
		}
		for i := range rr.Table {
			for j := range rr.Table[i] {
				if rr.Table[i][j] != repaired.Value(i, j) {
					t.Fatalf("corrected cell (%d,%d) = %q, want %q", i, j, rr.Table[i][j], repaired.Value(i, j))
				}
			}
		}
		if strings.Join(rr.DroppedCols, ",") != strings.Join(wantDropped, ",") {
			t.Fatalf("DroppedCols = %v, want %v", rr.DroppedCols, wantDropped)
		}
		if rr.Flagged == 0 || rr.ModelID != st.ID {
			t.Fatalf("flagged=%d model=%q", rr.Flagged, rr.ModelID)
		}
	}

	status, _, raw := postBody(t, ts.URL+"/v1/models/"+st.ID+"/repair", "text/csv; charset=utf-8", csvBytes)
	if status != http.StatusOK {
		t.Fatalf("repair status %d: %s", status, raw)
	}
	assertMatches(raw, nil)

	// The same rows through a permuted superset header: identical changes
	// and corrected table, extras reported.
	attrs := m.Attrs()
	rows := dsAllRows(bench.Dirty)
	supAttrs := append([]string{"zz"}, attrs[len(attrs)-1])
	supAttrs = append(supAttrs, attrs[:len(attrs)-1]...)
	supRows := make([][]string, len(rows))
	for k, r := range rows {
		supRows[k] = append([]string{"Z", r[len(r)-1]}, r[:len(r)-1]...)
	}
	status, _, raw = postBody(t, ts.URL+"/v1/models/"+st.ID+"/repair", "text/csv", rowsCSV(t, supAttrs, supRows))
	if status != http.StatusOK {
		t.Fatalf("mapped repair status %d: %s", status, raw)
	}
	assertMatches(raw, []string{"zz"})

	// ?table=0 keeps the change log and drops the corrected table.
	status, _, raw = postBody(t, ts.URL+"/v1/models/"+st.ID+"/repair?table=0", "text/csv", csvBytes)
	if status != http.StatusOK {
		t.Fatalf("table=0 repair status %d: %s", status, raw)
	}
	var slim RepairResult
	if err := json.Unmarshal(raw, &slim); err != nil {
		t.Fatal(err)
	}
	if slim.Table != nil || len(slim.Changes) != len(fixes) {
		t.Fatalf("table=0: table=%d changes=%d, want no table and %d changes",
			len(slim.Table), len(slim.Changes), len(fixes))
	}

	// Unknown model id 404s like every other model endpoint.
	status, code, _ := postBody(t, ts.URL+"/v1/models/m-404404/repair", "text/csv", csvBytes)
	if status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("unknown model: status %d code %q", status, code)
	}
}

// TestStreamNDJSONChunkInvariance pins chunk invariance for the second wire
// format: the same NDJSON body split at any server-side chunk size yields
// byte-identical verdict lines.
func TestStreamNDJSONChunkInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(120, 3)
	st := fitHTTPModel(t, ts.URL, benchCSV(t, bench.Dirty), "?seed=3")

	body := ndjsonBody(t, st.Attrs, dsRows(bench.Dirty, 50), false)
	base := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?chunk=64", "application/x-ndjson", body)
	if base.status != http.StatusOK || base.errLine != "" || len(base.raw) != 50 {
		t.Fatalf("stream status %d err %q lines %d", base.status, base.errLine, len(base.raw))
	}
	for _, chunk := range []string{"1", "7", "50"} {
		got := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream?chunk="+chunk, "application/x-ndjson", body)
		if got.status != http.StatusOK || got.errLine != "" {
			t.Fatalf("chunk=%s status %d err %q", chunk, got.status, got.errLine)
		}
		if len(got.raw) != len(base.raw) {
			t.Fatalf("chunk=%s returned %d lines, want %d", chunk, len(got.raw), len(base.raw))
		}
		for i := range base.raw {
			if got.raw[i] != base.raw[i] {
				t.Fatalf("chunk=%s line %d differs", chunk, i)
			}
		}
	}
}

// TestStreamSchemaMappedCSV: a permuted-superset CSV stream body scores
// byte-identically to the schema-ordered body (the stream endpoint shares
// the mapped upload path).
func TestStreamSchemaMappedCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("fits a model")
	}
	ts, _ := testServer(t, Config{Workers: 2})
	bench := datasets.Hospital(120, 3)
	st := fitHTTPModel(t, ts.URL, benchCSV(t, bench.Dirty), "?seed=3")
	attrs := st.Attrs
	rows := dsRows(bench.Dirty, 40)

	want := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv", rowsCSV(t, attrs, rows))
	if want.status != http.StatusOK || want.errLine != "" {
		t.Fatalf("identity stream status %d err %q", want.status, want.errLine)
	}

	mapAttrs := append([]string{attrs[len(attrs)-1], "extra"}, attrs[:len(attrs)-1]...)
	mapRows := make([][]string, len(rows))
	for k, r := range rows {
		mapRows[k] = append([]string{r[len(r)-1], "E"}, r[:len(r)-1]...)
	}
	got := postStream(t, ts.URL+"/v1/models/"+st.ID+"/stream", "text/csv", rowsCSV(t, mapAttrs, mapRows))
	if got.status != http.StatusOK || got.errLine != "" {
		t.Fatalf("mapped stream status %d err %q", got.status, got.errLine)
	}
	if len(got.raw) != len(want.raw) {
		t.Fatalf("mapped stream returned %d lines, want %d", len(got.raw), len(want.raw))
	}
	for i := range want.raw {
		if got.raw[i] != want.raw[i] {
			t.Fatalf("mapped stream line %d differs from the schema-ordered body", i)
		}
	}
}
