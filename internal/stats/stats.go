// Package stats implements the statistical machinery of ZeroED's feature
// representation and attribute-correlation analysis: value, vicinity and
// pattern frequencies (Section III-B), entropy and normalized mutual
// information between attributes, and quantile/histogram summaries used by
// the distribution-analysis step of guideline generation.
package stats

import (
	"math"
	"sort"

	"repro/internal/table"
	"repro/internal/text"
)

// ColumnFrequencies precomputes per-attribute counts used by the frequency
// features so that feature extraction is O(cells), not O(cells^2).
type ColumnFrequencies struct {
	// Value[j][v] is the occurrence count of value v in attribute j.
	Value []map[string]int
	// Pattern[level-1][j][p] is the occurrence count of generalized
	// pattern p at level L1..L3 in attribute j.
	Pattern [3]map[int]map[string]int
	// CoOccur[j][q][pair] counts co-occurrences "vj\x00vq" between
	// attributes j and q; used for vicinity frequencies and NMI.
	CoOccur map[[2]int]map[[2]string]int
	n       int
}

// NewColumnFrequencies scans the dataset once and builds all count tables.
func NewColumnFrequencies(d *table.Dataset) *ColumnFrequencies {
	m := d.NumCols()
	cf := &ColumnFrequencies{
		Value:   make([]map[string]int, m),
		CoOccur: make(map[[2]int]map[[2]string]int),
		n:       d.NumRows(),
	}
	for lvl := 0; lvl < 3; lvl++ {
		cf.Pattern[lvl] = make(map[int]map[string]int, m)
	}
	for j := 0; j < m; j++ {
		cf.Value[j] = make(map[string]int)
		for lvl := 0; lvl < 3; lvl++ {
			cf.Pattern[lvl][j] = make(map[string]int)
		}
	}
	for i := 0; i < d.NumRows(); i++ {
		row := d.Row(i)
		for j := 0; j < m; j++ {
			v := row[j]
			cf.Value[j][v]++
			for lvl := 0; lvl < 3; lvl++ {
				p := text.Generalize(v, text.PatternLevel(lvl+1))
				cf.Pattern[lvl][j][p]++
			}
		}
	}
	return cf
}

// BuildCoOccur populates pairwise co-occurrence counts between attribute j
// and each attribute in others. Computed lazily because only correlated
// attribute pairs need it.
func (cf *ColumnFrequencies) BuildCoOccur(d *table.Dataset, j int, others []int) {
	for _, q := range others {
		key := [2]int{j, q}
		if _, ok := cf.CoOccur[key]; ok {
			continue
		}
		counts := make(map[[2]string]int)
		for i := 0; i < d.NumRows(); i++ {
			counts[[2]string{d.Value(i, j), d.Value(i, q)}]++
		}
		cf.CoOccur[key] = counts
	}
}

// ValueFrequency returns count(v in attr j) / N, the paper's value
// frequency for D[i,j].
func (cf *ColumnFrequencies) ValueFrequency(j int, v string) float64 {
	if cf.n == 0 {
		return 0
	}
	return float64(cf.Value[j][v]) / float64(cf.n)
}

// VicinityFrequency returns count(vj co-occurring with vq) / count(vq):
// how often the value vq in attribute q determines vj in attribute j.
// BuildCoOccur must have been called for the (j,q) pair.
func (cf *ColumnFrequencies) VicinityFrequency(j, q int, vj, vq string) float64 {
	denom := cf.Value[q][vq]
	if denom == 0 {
		return 0
	}
	co := cf.CoOccur[[2]int{j, q}]
	if co == nil {
		return 0
	}
	return float64(co[[2]string{vj, vq}]) / float64(denom)
}

// PatternFrequency returns the fraction of values in attribute j whose
// generalized pattern at the given level matches that of v.
func (cf *ColumnFrequencies) PatternFrequency(j int, v string, level text.PatternLevel) float64 {
	if cf.n == 0 {
		return 0
	}
	p := text.Generalize(v, level)
	return float64(cf.Pattern[level-1][j][p]) / float64(cf.n)
}

// Entropy computes the Shannon entropy (nats) of an attribute's empirical
// value distribution. The accumulation is order-independent (terms are
// sorted before summing) so results are bit-identical across runs despite
// Go's randomized map iteration.
func Entropy(values []string) float64 {
	counts := make(map[string]int)
	for _, v := range values {
		counts[v]++
	}
	n := float64(len(values))
	if n == 0 {
		return 0
	}
	terms := make([]float64, 0, len(counts))
	for _, c := range counts {
		p := float64(c) / n
		terms = append(terms, -p*math.Log(p))
	}
	return stableSum(terms)
}

// stableSum adds terms in sorted order, making float accumulation
// independent of the (randomized) map iteration that produced them.
func stableSum(terms []float64) float64 {
	sort.Float64s(terms)
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}

// MutualInformation computes I(X;Y) in nats from two parallel columns.
func MutualInformation(x, y []string) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	px := make(map[string]float64)
	py := make(map[string]float64)
	pxy := make(map[[2]string]float64)
	for i := range x {
		px[x[i]]++
		py[y[i]]++
		pxy[[2]string{x[i], y[i]}]++
	}
	terms := make([]float64, 0, len(pxy))
	for k, c := range pxy {
		pj := c / n
		terms = append(terms, pj*math.Log(pj/((px[k[0]]/n)*(py[k[1]]/n))))
	}
	mi := stableSum(terms)
	if mi < 0 {
		mi = 0 // guard against floating-point round-off
	}
	return mi
}

// NMI computes the normalized mutual information of Section III-B:
// I(X;Y)/sqrt(H(X)H(Y)), in [0,1]. Degenerate (constant) attributes have
// zero entropy and yield NMI 0.
func NMI(x, y []string) float64 {
	hx, hy := Entropy(x), Entropy(y)
	if hx == 0 || hy == 0 {
		return 0
	}
	v := MutualInformation(x, y) / math.Sqrt(hx*hy)
	if v > 1 {
		v = 1 // floating-point guard
	}
	return v
}

// NMIMatrix computes pairwise NMI between all attributes of d.
func NMIMatrix(d *table.Dataset) [][]float64 {
	m := d.NumCols()
	cols := make([][]string, m)
	for j := 0; j < m; j++ {
		cols[j] = d.Column(j)
	}
	mat := make([][]float64, m)
	for j := range mat {
		mat[j] = make([]float64, m)
	}
	for a := 0; a < m; a++ {
		for b := a; b < m; b++ {
			var v float64
			if a == b {
				v = 1
			} else {
				v = NMI(cols[a], cols[b])
			}
			mat[a][b] = v
			mat[b][a] = v
		}
	}
	return mat
}

// TopKCorrelated returns the indices of the k attributes with the highest
// NMI to attribute j (excluding j itself), forming the correlative
// attribute set R_aj of Section III-B. Ties break by attribute index for
// determinism.
func TopKCorrelated(nmi [][]float64, j, k int) []int {
	type pair struct {
		idx int
		v   float64
	}
	var ps []pair
	for q := range nmi[j] {
		if q == j {
			continue
		}
		ps = append(ps, pair{q, nmi[j][q]})
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].v != ps[b].v {
			return ps[a].v > ps[b].v
		}
		return ps[a].idx < ps[b].idx
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].idx
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the sorted copy of xs using
// linear interpolation. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// NumericColumn extracts all parseable numeric values from a column.
func NumericColumn(values []string) []float64 {
	var out []float64
	for _, v := range values {
		if f, ok := text.ParseFloat(v); ok {
			out = append(out, f)
		}
	}
	return out
}
