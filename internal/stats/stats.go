// Package stats implements the statistical machinery of ZeroED's feature
// representation and attribute-correlation analysis: value, vicinity and
// pattern frequencies (Section III-B), entropy and normalized mutual
// information between attributes, and quantile/histogram summaries used by
// the distribution-analysis step of guideline generation.
package stats

import (
	"math"
	"sort"

	"repro/internal/table"
	"repro/internal/text"
)

// ColumnFrequencies precomputes per-attribute counts used by the frequency
// features so that feature extraction is O(cells), not O(cells^2). All
// tables are indexed by dictionary value ID: counts live in flat slices
// sized by each column's intern pool, pattern strings are interned once per
// unique value, and co-occurrence counts are keyed by packed ID pairs.
// Lookups for values written to the dataset after construction fall back to
// zero counts, matching the semantics of a novel value.
type ColumnFrequencies struct {
	d *table.Dataset
	n int
	// counts[j][id] is the occurrence count of value ID id in attribute j.
	counts [][]int
	// patOfID[lvl][j][id] is the column-local pattern ID of dict entry id
	// at generalization level lvl+1; patCounts[lvl][j][pid] its count.
	patOfID   [3][][]uint32
	patCounts [3][][]int
	// patIndex[lvl][j] maps pattern strings to pattern IDs, for values
	// interned after the scan.
	patIndex [3][]map[string]uint32
	// coOccur[{j,q}][idj<<32|idq] counts co-occurrences between attributes
	// j and q; used for vicinity frequencies.
	coOccur map[[2]int]map[uint64]int
}

// NewColumnFrequencies scans the dataset once and builds all count tables.
// Per-value work (pattern generalization) happens once per unique value,
// not once per cell.
func NewColumnFrequencies(d *table.Dataset) *ColumnFrequencies {
	m := d.NumCols()
	cf := &ColumnFrequencies{
		d:       d,
		n:       d.NumRows(),
		counts:  make([][]int, m),
		coOccur: make(map[[2]int]map[uint64]int),
	}
	for lvl := 0; lvl < 3; lvl++ {
		cf.patOfID[lvl] = make([][]uint32, m)
		cf.patCounts[lvl] = make([][]int, m)
		cf.patIndex[lvl] = make([]map[string]uint32, m)
	}
	for j := 0; j < m; j++ {
		dict := d.Dict(j)
		cf.counts[j] = make([]int, len(dict))
		for lvl := 0; lvl < 3; lvl++ {
			cf.patOfID[lvl][j] = make([]uint32, len(dict))
			cf.patIndex[lvl][j] = make(map[string]uint32)
			for id, v := range dict {
				p := text.Generalize(v, text.PatternLevel(lvl+1))
				pid, ok := cf.patIndex[lvl][j][p]
				if !ok {
					pid = uint32(len(cf.patCounts[lvl][j]))
					cf.patIndex[lvl][j][p] = pid
					cf.patCounts[lvl][j] = append(cf.patCounts[lvl][j], 0)
				}
				cf.patOfID[lvl][j][id] = pid
			}
		}
		for _, id := range d.ColumnIDs(j) {
			cf.counts[j][id]++
			for lvl := 0; lvl < 3; lvl++ {
				cf.patCounts[lvl][j][cf.patOfID[lvl][j][id]]++
			}
		}
	}
	return cf
}

// BuildCoOccur populates pairwise co-occurrence counts between attribute j
// and each attribute in others. Computed lazily because only correlated
// attribute pairs need it.
func (cf *ColumnFrequencies) BuildCoOccur(d *table.Dataset, j int, others []int) {
	jIDs := d.ColumnIDs(j)
	for _, q := range others {
		key := [2]int{j, q}
		if _, ok := cf.coOccur[key]; ok {
			continue
		}
		counts := make(map[uint64]int)
		qIDs := d.ColumnIDs(q)
		for i := range jIDs {
			counts[uint64(jIDs[i])<<32|uint64(qIDs[i])]++
		}
		cf.coOccur[key] = counts
	}
}

// ValueFrequencyID returns count(value ID id in attr j) / N. IDs interned
// after the scan have zero frequency.
func (cf *ColumnFrequencies) ValueFrequencyID(j int, id uint32) float64 {
	if cf.n == 0 || int(id) >= len(cf.counts[j]) {
		return 0
	}
	return float64(cf.counts[j][id]) / float64(cf.n)
}

// ValueFrequency returns count(v in attr j) / N, the paper's value
// frequency for D[i,j].
func (cf *ColumnFrequencies) ValueFrequency(j int, v string) float64 {
	id, ok := cf.d.LookupID(j, v)
	if !ok {
		return 0
	}
	return cf.ValueFrequencyID(j, id)
}

// VicinityFrequencyID returns count(idj co-occurring with idq) /
// count(idq): how often the value idq in attribute q determines idj in
// attribute j. BuildCoOccur must have been called for the (j,q) pair.
func (cf *ColumnFrequencies) VicinityFrequencyID(j, q int, idj, idq uint32) float64 {
	if int(idq) >= len(cf.counts[q]) {
		return 0
	}
	denom := cf.counts[q][idq]
	if denom == 0 {
		return 0
	}
	co := cf.coOccur[[2]int{j, q}]
	if co == nil {
		return 0
	}
	return float64(co[uint64(idj)<<32|uint64(idq)]) / float64(denom)
}

// VicinityFrequency is the string-keyed form of VicinityFrequencyID.
func (cf *ColumnFrequencies) VicinityFrequency(j, q int, vj, vq string) float64 {
	idj, okj := cf.d.LookupID(j, vj)
	idq, okq := cf.d.LookupID(q, vq)
	if !okj || !okq {
		return 0
	}
	return cf.VicinityFrequencyID(j, q, idj, idq)
}

// PatternFrequencyID returns the fraction of values in attribute j whose
// generalized pattern at the given level matches that of value ID id.
func (cf *ColumnFrequencies) PatternFrequencyID(j int, id uint32, level text.PatternLevel) float64 {
	if cf.n == 0 {
		return 0
	}
	lvl := int(level) - 1
	ofID := cf.patOfID[lvl][j]
	if int(id) >= len(ofID) {
		// Value interned after the scan: resolve its pattern by string.
		return cf.patternFrequencyString(j, cf.d.DictValue(j, id), level)
	}
	return float64(cf.patCounts[lvl][j][ofID[id]]) / float64(cf.n)
}

// PatternFrequency returns the fraction of values in attribute j whose
// generalized pattern at the given level matches that of v.
func (cf *ColumnFrequencies) PatternFrequency(j int, v string, level text.PatternLevel) float64 {
	if cf.n == 0 {
		return 0
	}
	return cf.patternFrequencyString(j, v, level)
}

func (cf *ColumnFrequencies) patternFrequencyString(j int, v string, level text.PatternLevel) float64 {
	lvl := int(level) - 1
	p := text.Generalize(v, level)
	pid, ok := cf.patIndex[lvl][j][p]
	if !ok {
		return 0
	}
	return float64(cf.patCounts[lvl][j][pid]) / float64(cf.n)
}

// CountsByID returns per-value-ID occurrence counts for column j of d,
// indexed by dictionary ID (stale pool entries count zero).
func CountsByID(d *table.Dataset, j int) []int {
	counts := make([]int, d.DictSize(j))
	for _, id := range d.ColumnIDs(j) {
		counts[id]++
	}
	return counts
}

// NullishByID returns per-value-ID null-likeness for column j of d —
// computed once per unique value instead of once per cell.
func NullishByID(d *table.Dataset, j int) []bool {
	dict := d.Dict(j)
	out := make([]bool, len(dict))
	for id, v := range dict {
		out[id] = text.IsNullLike(v)
	}
	return out
}

// Sentinels of ExpectedDepIDs.
const (
	// DepNoEvidence marks determinant values carrying no mapping evidence
	// (the dependent cell passes by default).
	DepNoEvidence = int64(-2)
	// DepAbsent marks expected dependent values never written to the
	// dependent column's pool (no cell ID can equal them).
	DepAbsent = int64(-1)
)

// ExpectedDepIDs resolves an FD mapping (determinant value → expected
// dependent value) into expected dependent value IDs per determinant value
// ID, so per-row FD checks become integer comparisons. skipNullDet treats
// null-like determinants as carrying no evidence.
func ExpectedDepIDs(d *table.Dataset, det, dep int, mapping map[string]string, skipNullDet bool) []int64 {
	detDict := d.Dict(det)
	out := make([]int64, len(detDict))
	for did, dv := range detDict {
		out[did] = DepNoEvidence
		if skipNullDet && text.IsNullLike(dv) {
			continue
		}
		want, ok := mapping[dv]
		if !ok {
			continue
		}
		if wid, found := d.LookupID(dep, want); found {
			out[did] = int64(wid)
		} else {
			out[did] = DepAbsent
		}
	}
	return out
}

// Entropy computes the Shannon entropy (nats) of an attribute's empirical
// value distribution. The accumulation is order-independent (terms are
// sorted before summing) so results are bit-identical across runs despite
// Go's randomized map iteration.
func Entropy(values []string) float64 {
	counts := make(map[string]int)
	for _, v := range values {
		counts[v]++
	}
	n := float64(len(values))
	if n == 0 {
		return 0
	}
	terms := make([]float64, 0, len(counts))
	for _, c := range counts {
		p := float64(c) / n
		terms = append(terms, -p*math.Log(p))
	}
	return stableSum(terms)
}

// stableSum adds terms in sorted order, making float accumulation
// independent of the (randomized) map iteration that produced them.
func stableSum(terms []float64) float64 {
	sort.Float64s(terms)
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}

// MutualInformation computes I(X;Y) in nats from two parallel columns.
func MutualInformation(x, y []string) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	px := make(map[string]float64)
	py := make(map[string]float64)
	pxy := make(map[[2]string]float64)
	for i := range x {
		px[x[i]]++
		py[y[i]]++
		pxy[[2]string{x[i], y[i]}]++
	}
	terms := make([]float64, 0, len(pxy))
	for k, c := range pxy {
		pj := c / n
		terms = append(terms, pj*math.Log(pj/((px[k[0]]/n)*(py[k[1]]/n))))
	}
	mi := stableSum(terms)
	if mi < 0 {
		mi = 0 // guard against floating-point round-off
	}
	return mi
}

// NMI computes the normalized mutual information of Section III-B:
// I(X;Y)/sqrt(H(X)H(Y)), in [0,1]. Degenerate (constant) attributes have
// zero entropy and yield NMI 0.
func NMI(x, y []string) float64 {
	hx, hy := Entropy(x), Entropy(y)
	if hx == 0 || hy == 0 {
		return 0
	}
	v := MutualInformation(x, y) / math.Sqrt(hx*hy)
	if v > 1 {
		v = 1 // floating-point guard
	}
	return v
}

// NMIMatrix computes pairwise NMI between all attributes of d. It works
// over dictionary value IDs — counting integer IDs instead of hashing full
// value strings — and produces bit-identical results to the string-keyed
// NMI: the count multisets are the same and accumulation uses the same
// order-independent stableSum.
func NMIMatrix(d *table.Dataset) [][]float64 {
	m := d.NumCols()
	n := d.NumRows()
	ids := make([][]uint32, m)
	counts := make([][]float64, m)
	entropy := make([]float64, m)
	for j := 0; j < m; j++ {
		ids[j] = d.ColumnIDs(j)
		counts[j] = make([]float64, d.DictSize(j))
		for _, id := range ids[j] {
			counts[j][id]++
		}
		entropy[j] = entropyFromCounts(counts[j], float64(n))
	}
	mat := make([][]float64, m)
	for j := range mat {
		mat[j] = make([]float64, m)
		mat[j][j] = 1
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			var v float64
			if n > 0 && entropy[a] != 0 && entropy[b] != 0 {
				v = miIDs(ids[a], ids[b], counts[a], counts[b], float64(n)) / math.Sqrt(entropy[a]*entropy[b])
				if v > 1 {
					v = 1 // floating-point guard
				}
			}
			mat[a][b] = v
			mat[b][a] = v
		}
	}
	return mat
}

// entropyFromCounts is Entropy over a precomputed count vector (zero
// entries are skipped; they denote dict values absent from the column).
func entropyFromCounts(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	terms := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / n
		terms = append(terms, -p*math.Log(p))
	}
	return stableSum(terms)
}

// miIDs is MutualInformation over ID-encoded columns with precomputed
// marginal counts.
func miIDs(x, y []uint32, cx, cy []float64, n float64) float64 {
	joint := make(map[uint64]float64, len(cx))
	for i := range x {
		joint[uint64(x[i])<<32|uint64(y[i])]++
	}
	terms := make([]float64, 0, len(joint))
	for k, c := range joint {
		pj := c / n
		px := cx[uint32(k>>32)] / n
		py := cy[uint32(k)] / n
		terms = append(terms, pj*math.Log(pj/(px*py)))
	}
	mi := stableSum(terms)
	if mi < 0 {
		mi = 0 // guard against floating-point round-off
	}
	return mi
}

// TopKCorrelated returns the indices of the k attributes with the highest
// NMI to attribute j (excluding j itself), forming the correlative
// attribute set R_aj of Section III-B. Ties break by attribute index for
// determinism.
func TopKCorrelated(nmi [][]float64, j, k int) []int {
	type pair struct {
		idx int
		v   float64
	}
	var ps []pair
	for q := range nmi[j] {
		if q == j {
			continue
		}
		ps = append(ps, pair{q, nmi[j][q]})
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].v != ps[b].v {
			return ps[a].v > ps[b].v
		}
		return ps[a].idx < ps[b].idx
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].idx
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the sorted copy of xs using
// linear interpolation. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// NumericColumn extracts all parseable numeric values from a column.
func NumericColumn(values []string) []float64 {
	var out []float64
	for _, v := range values {
		if f, ok := text.ParseFloat(v); ok {
			out = append(out, f)
		}
	}
	return out
}
