package stats

import (
	"fmt"
	"sort"

	"repro/internal/table"
	"repro/internal/text"
)

// FreqSnapshot is the serializable state of a ColumnFrequencies table: the
// row-derived counts that cannot be rebuilt without the original rows. The
// per-value pattern strings and their ID assignment are NOT stored — they
// are a pure function of the column dictionaries and are rebuilt
// deterministically by FreqFromSnapshot, which keeps artifacts small and
// shrinks the surface a corrupt file can reach.
type FreqSnapshot struct {
	// N is the row count the counts were accumulated over.
	N int
	// Counts[j][id] is the occurrence count of value ID id in column j,
	// covering the dictionary prefix that existed at scan time.
	Counts [][]int
	// PatCounts[lvl][j][pid] is the occurrence count of column-local
	// pattern ID pid at generalization level lvl+1. Pattern IDs are
	// assigned in dictionary order, so they align with the rebuilt
	// pattern index for any append-only extension of the dictionary.
	PatCounts [3][][]int
	// CoOccur lists the pairwise co-occurrence tables, one per correlated
	// (j, q) attribute pair, keys sorted for stable serialization.
	CoOccur []CoOccurSnapshot
}

// CoOccurSnapshot is one (j, q) co-occurrence table: Keys[i] packs
// idj<<32|idq and Counts[i] its count. Keys are sorted ascending.
type CoOccurSnapshot struct {
	J, Q   int
	Keys   []uint64
	Counts []int
}

// Snapshot captures the row-derived frequency state. The copies are deep.
func (cf *ColumnFrequencies) Snapshot() *FreqSnapshot {
	s := &FreqSnapshot{N: cf.n, Counts: make([][]int, len(cf.counts))}
	for j := range cf.counts {
		s.Counts[j] = append([]int(nil), cf.counts[j]...)
	}
	for lvl := 0; lvl < 3; lvl++ {
		s.PatCounts[lvl] = make([][]int, len(cf.patCounts[lvl]))
		for j := range cf.patCounts[lvl] {
			s.PatCounts[lvl][j] = append([]int(nil), cf.patCounts[lvl][j]...)
		}
	}
	keys := make([][2]int, 0, len(cf.coOccur))
	for k := range cf.coOccur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		src := cf.coOccur[k]
		co := CoOccurSnapshot{J: k[0], Q: k[1], Keys: make([]uint64, 0, len(src))}
		for pk := range src {
			co.Keys = append(co.Keys, pk)
		}
		sort.Slice(co.Keys, func(a, b int) bool { return co.Keys[a] < co.Keys[b] })
		co.Counts = make([]int, len(co.Keys))
		for i, pk := range co.Keys {
			co.Counts[i] = src[pk]
		}
		s.CoOccur = append(s.CoOccur, co)
	}
	return s
}

// FreqFromSnapshot reconstructs a ColumnFrequencies over dataset d from a
// snapshot captured against the same (or an append-only extension of the
// same) per-column dictionaries. The pattern tables are rebuilt from d's
// dictionaries in ID order — the same assignment order the original scan
// used — and count vectors are zero-padded up to the current dictionary
// sizes, so values interned after the original scan report zero frequency,
// exactly as they do against the live table. Shape mismatches (a snapshot
// that cannot have come from these dictionaries) are errors.
func FreqFromSnapshot(s *FreqSnapshot, d *table.Dataset) (*ColumnFrequencies, error) {
	if s == nil {
		return nil, fmt.Errorf("stats: nil frequency snapshot")
	}
	m := d.NumCols()
	if len(s.Counts) != m {
		return nil, fmt.Errorf("stats: snapshot has %d count columns, dataset has %d", len(s.Counts), m)
	}
	if s.N < 0 {
		return nil, fmt.Errorf("stats: snapshot has negative row count %d", s.N)
	}
	for lvl := 0; lvl < 3; lvl++ {
		if len(s.PatCounts[lvl]) != m {
			return nil, fmt.Errorf("stats: snapshot has %d L%d pattern columns, dataset has %d", len(s.PatCounts[lvl]), lvl+1, m)
		}
	}
	cf := &ColumnFrequencies{
		d:       d,
		n:       s.N,
		counts:  make([][]int, m),
		coOccur: make(map[[2]int]map[uint64]int),
	}
	for lvl := 0; lvl < 3; lvl++ {
		cf.patOfID[lvl] = make([][]uint32, m)
		cf.patCounts[lvl] = make([][]int, m)
		cf.patIndex[lvl] = make([]map[string]uint32, m)
	}
	for j := 0; j < m; j++ {
		dict := d.Dict(j)
		if len(s.Counts[j]) > len(dict) {
			return nil, fmt.Errorf("stats: snapshot counts cover %d values of column %d, dictionary has %d", len(s.Counts[j]), j, len(dict))
		}
		cf.counts[j] = make([]int, len(dict))
		copy(cf.counts[j], s.Counts[j])
		for lvl := 0; lvl < 3; lvl++ {
			cf.patOfID[lvl][j] = make([]uint32, len(dict))
			cf.patIndex[lvl][j] = make(map[string]uint32)
			nPat := 0
			for id, v := range dict {
				p := text.Generalize(v, text.PatternLevel(lvl+1))
				pid, ok := cf.patIndex[lvl][j][p]
				if !ok {
					pid = uint32(nPat)
					cf.patIndex[lvl][j][p] = pid
					nPat++
				}
				cf.patOfID[lvl][j][id] = pid
			}
			if len(s.PatCounts[lvl][j]) > nPat {
				return nil, fmt.Errorf("stats: snapshot has %d L%d patterns for column %d, dictionary yields %d", len(s.PatCounts[lvl][j]), lvl+1, j, nPat)
			}
			cf.patCounts[lvl][j] = make([]int, nPat)
			copy(cf.patCounts[lvl][j], s.PatCounts[lvl][j])
		}
	}
	for _, co := range s.CoOccur {
		if co.J < 0 || co.J >= m || co.Q < 0 || co.Q >= m {
			return nil, fmt.Errorf("stats: snapshot co-occurrence pair (%d,%d) out of column range %d", co.J, co.Q, m)
		}
		if len(co.Keys) != len(co.Counts) {
			return nil, fmt.Errorf("stats: snapshot co-occurrence pair (%d,%d) has %d keys but %d counts", co.J, co.Q, len(co.Keys), len(co.Counts))
		}
		key := [2]int{co.J, co.Q}
		if _, dup := cf.coOccur[key]; dup {
			return nil, fmt.Errorf("stats: snapshot repeats co-occurrence pair (%d,%d)", co.J, co.Q)
		}
		tbl := make(map[uint64]int, len(co.Keys))
		for i, pk := range co.Keys {
			tbl[pk] = co.Counts[i]
		}
		cf.coOccur[key] = tbl
	}
	return cf, nil
}

// Rebind returns a shallow view of the frequency tables bound to another
// dataset. All count tables are shared (they are read-only after
// construction); only the dataset used for string fallbacks on values
// interned after the scan changes. The target dataset's dictionaries must
// assign the same IDs to the snapshot-time values — the invariant
// table.NewFromDicts establishes.
func (cf *ColumnFrequencies) Rebind(d *table.Dataset) *ColumnFrequencies {
	out := *cf
	out.d = d
	return &out
}
