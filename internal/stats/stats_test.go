package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/table"
	"repro/internal/text"
)

func sample() *table.Dataset {
	d := table.New("tax", []string{"Name", "Gender", "Salary"})
	d.MustAppendRow([]string{"Bob", "M", "80000"})
	d.MustAppendRow([]string{"Carol", "F", "60000"})
	d.MustAppendRow([]string{"Dave", "M", "64000"})
	d.MustAppendRow([]string{"Carol", "F", "60000"})
	return d
}

func TestValueFrequency(t *testing.T) {
	cf := NewColumnFrequencies(sample())
	if got := cf.ValueFrequency(0, "Carol"); got != 0.5 {
		t.Errorf("ValueFrequency(Carol) = %v, want 0.5", got)
	}
	if got := cf.ValueFrequency(0, "Zed"); got != 0 {
		t.Errorf("ValueFrequency(Zed) = %v, want 0", got)
	}
}

func TestVicinityFrequency(t *testing.T) {
	d := sample()
	cf := NewColumnFrequencies(d)
	cf.BuildCoOccur(d, 1, []int{0})
	// Carol always co-occurs with F: count(F|Carol)/count(Carol) = 2/2.
	if got := cf.VicinityFrequency(1, 0, "F", "Carol"); got != 1 {
		t.Errorf("VicinityFrequency(F|Carol) = %v, want 1", got)
	}
	// M given Carol never happens.
	if got := cf.VicinityFrequency(1, 0, "M", "Carol"); got != 0 {
		t.Errorf("VicinityFrequency(M|Carol) = %v, want 0", got)
	}
}

func TestPatternFrequency(t *testing.T) {
	cf := NewColumnFrequencies(sample())
	// All four salaries are D[5] at L3.
	if got := cf.PatternFrequency(2, "80000", text.L3); got != 1 {
		t.Errorf("PatternFrequency = %v, want 1", got)
	}
	if got := cf.PatternFrequency(2, "8000x", text.L3); got != 0 {
		t.Errorf("PatternFrequency for unseen pattern = %v, want 0", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]string{"a", "a", "a"}); got != 0 {
		t.Errorf("Entropy(constant) = %v, want 0", got)
	}
	got := Entropy([]string{"a", "b"})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("Entropy(uniform 2) = %v, want ln2", got)
	}
}

func TestNMIPerfectDependence(t *testing.T) {
	x := []string{"a", "b", "a", "b"}
	y := []string{"1", "2", "1", "2"}
	if got := NMI(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("NMI(perfectly dependent) = %v, want 1", got)
	}
}

func TestNMIIndependence(t *testing.T) {
	x := []string{"a", "a", "b", "b"}
	y := []string{"1", "2", "1", "2"}
	if got := NMI(x, y); got > 1e-9 {
		t.Errorf("NMI(independent) = %v, want ~0", got)
	}
}

func TestNMIDegenerateColumn(t *testing.T) {
	if got := NMI([]string{"a", "a"}, []string{"1", "2"}); got != 0 {
		t.Errorf("NMI with constant column = %v, want 0", got)
	}
}

// Property: NMI is symmetric and within [0,1].
func TestNMIProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		x := make([]string, n)
		y := make([]string, n)
		for i := 0; i < n; i++ {
			x[i] = string(rune('a' + xs[i]%4))
			y[i] = string(rune('p' + ys[i]%4))
		}
		a, b := NMI(x, y), NMI(y, x)
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopKCorrelated(t *testing.T) {
	nmi := [][]float64{
		{1, 0.9, 0.1, 0.5},
		{0.9, 1, 0.2, 0.3},
		{0.1, 0.2, 1, 0.7},
		{0.5, 0.3, 0.7, 1},
	}
	got := TopKCorrelated(nmi, 0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("TopKCorrelated = %v, want [1 3]", got)
	}
	// k larger than available attributes clamps.
	if got := TopKCorrelated(nmi, 0, 10); len(got) != 3 {
		t.Errorf("TopKCorrelated clamp = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("MeanStd = %v, %v, want 5, 2", mean, std)
	}
}

func TestProfileAttribute(t *testing.T) {
	d := table.New("t", []string{"Salary"})
	for i := 0; i < 99; i++ {
		d.MustAppendRow([]string{"50000"})
	}
	d.MustAppendRow([]string{""})
	p := ProfileAttribute(d, 0)
	if p.Missing != 1 {
		t.Errorf("Missing = %d, want 1", p.Missing)
	}
	if !p.Numeric {
		t.Error("mostly-numeric column should profile as numeric")
	}
	if p.TopValues[0].Value != "50000" || p.TopValues[0].Count != 99 {
		t.Errorf("TopValues = %v", p.TopValues)
	}
	if p.DominantShare < 0.9 {
		t.Errorf("DominantShare = %v, want >= 0.9", p.DominantShare)
	}
	if rep := p.Report(); len(rep) == 0 {
		t.Error("Report is empty")
	}
}

func TestFindFD(t *testing.T) {
	d := table.New("t", []string{"Country", "Capital"})
	for i := 0; i < 10; i++ {
		d.MustAppendRow([]string{"France", "Paris"})
		d.MustAppendRow([]string{"Japan", "Tokyo"})
	}
	d.MustAppendRow([]string{"France", "Lyon"}) // one violation
	fd := FindFD(d, 0, 1)
	if fd.Mapping["France"] != "Paris" || fd.Mapping["Japan"] != "Tokyo" {
		t.Errorf("Mapping = %v", fd.Mapping)
	}
	if fd.Support <= 0.9 || fd.Support >= 1 {
		t.Errorf("Support = %v, want in (0.9, 1)", fd.Support)
	}
}

func TestFindFDIgnoresNulls(t *testing.T) {
	d := table.New("t", []string{"A", "B"})
	d.MustAppendRow([]string{"", "x"})
	d.MustAppendRow([]string{"", "y"})
	fd := FindFD(d, 0, 1)
	if len(fd.Mapping) != 0 {
		t.Errorf("null determinants should be skipped, got %v", fd.Mapping)
	}
}

func TestNMIMatrixSymmetricUnitDiagonal(t *testing.T) {
	mat := NMIMatrix(sample())
	for a := range mat {
		if mat[a][a] != 1 {
			t.Errorf("diag[%d] = %v, want 1", a, mat[a][a])
		}
		for b := range mat {
			if mat[a][b] != mat[b][a] {
				t.Errorf("matrix not symmetric at (%d,%d)", a, b)
			}
		}
	}
	// Name determines Gender in the sample, so NMI should be high.
	if mat[0][1] < 0.8 {
		t.Errorf("NMI(Name,Gender) = %v, want high", mat[0][1])
	}
}

// Property: per-column value frequencies of distinct values sum to 1.
func TestValueFrequencySumsToOne(t *testing.T) {
	d := sample()
	cf := NewColumnFrequencies(d)
	for j := 0; j < d.NumCols(); j++ {
		seen := map[string]bool{}
		sum := 0.0
		for _, v := range d.Column(j) {
			if !seen[v] {
				seen[v] = true
				sum += cf.ValueFrequency(j, v)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("col %d: distinct value frequencies sum to %v, want 1", j, sum)
		}
	}
}

// Property: pattern frequency of an observed value is always positive and
// never exceeds 1.
func TestPatternFrequencyBounds(t *testing.T) {
	d := sample()
	cf := NewColumnFrequencies(d)
	for j := 0; j < d.NumCols(); j++ {
		for _, v := range d.Column(j) {
			for _, lvl := range []text.PatternLevel{text.L1, text.L2, text.L3} {
				f := cf.PatternFrequency(j, v, lvl)
				if f <= 0 || f > 1 {
					t.Fatalf("pattern frequency %v out of (0,1]", f)
				}
			}
		}
	}
}

func TestStableSumOrderIndependent(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 1e-17, -0.3}
	b := []float64{-0.3, 1e-17, 0.3, 0.2, 0.1}
	if stableSum(append([]float64(nil), a...)) != stableSum(append([]float64(nil), b...)) {
		t.Error("stableSum must be order independent")
	}
}

func TestEntropyDeterministicAcrossRuns(t *testing.T) {
	vals := []string{"a", "b", "c", "a", "b", "a", "d", "e", "f", "g"}
	first := Entropy(vals)
	for i := 0; i < 50; i++ {
		if Entropy(vals) != first {
			t.Fatal("Entropy must be bit-identical across calls")
		}
	}
}
