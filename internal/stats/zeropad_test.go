package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// TestFreqFromSnapshotZeroPadding is the property test behind the drift
// gauges' cold path: restoring a frequency snapshot against a dataset whose
// dictionaries grew after the fit (values interned by post-fit appends)
// must report the exact fit-time frequency for every fit-time value ID and
// exactly zero for every ID interned after the snapshot — for any random
// mix of seen and unseen appends.
func TestFreqFromSnapshotZeroPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		// Random fitting data over a small value universe.
		attrs := []string{"a", "b", "c"}
		fit := table.New("fit", attrs)
		fitRows := 20 + rng.Intn(60)
		for i := 0; i < fitRows; i++ {
			fit.MustAppendRow([]string{
				fmt.Sprintf("a%d", rng.Intn(8)),
				fmt.Sprintf("b%d", rng.Intn(5)),
				fmt.Sprintf("c%d", rng.Intn(12)),
			})
		}
		cf := NewColumnFrequencies(fit)
		snap := cf.Snapshot()
		fitSizes := make([]int, fit.NumCols())
		wantFreq := make([][]float64, fit.NumCols())
		for j := range fitSizes {
			fitSizes[j] = fit.DictSize(j)
			wantFreq[j] = make([]float64, fitSizes[j])
			for id := range wantFreq[j] {
				wantFreq[j][id] = cf.ValueFrequencyID(j, uint32(id))
			}
		}

		// Rebind to a dictionary-seeded dataset and grow it with a random
		// mix of fit-time values and novel ones.
		dicts := make([][]string, fit.NumCols())
		for j := range dicts {
			dicts[j] = fit.Dict(j)
		}
		grown, err := table.NewFromDicts("grown", attrs, dicts)
		if err != nil {
			t.Fatal(err)
		}
		novel := 0
		for i := 0; i < 40; i++ {
			row := make([]string, len(attrs))
			for j := range row {
				if rng.Intn(2) == 0 {
					row[j] = fmt.Sprintf("%s%d", attrs[j], rng.Intn(8))
				} else {
					novel++
					row[j] = fmt.Sprintf("novel-%d-%d", trial, novel)
				}
			}
			grown.MustAppendRow(row)
		}

		restored, err := FreqFromSnapshot(snap, grown)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := 0; j < grown.NumCols(); j++ {
			if grown.DictSize(j) < fitSizes[j] {
				t.Fatalf("trial %d: dictionary shrank", trial)
			}
			// Fit-time IDs: exact original frequencies.
			for id := 0; id < fitSizes[j]; id++ {
				got := restored.ValueFrequencyID(j, uint32(id))
				if got != wantFreq[j][id] {
					t.Fatalf("trial %d: col %d id %d frequency = %g, want %g", trial, j, id, got, wantFreq[j][id])
				}
			}
			// Post-snapshot IDs: exactly zero, for every grown entry.
			for id := fitSizes[j]; id < grown.DictSize(j); id++ {
				if got := restored.ValueFrequencyID(j, uint32(id)); got != 0 {
					t.Fatalf("trial %d: col %d post-snapshot id %d frequency = %g, want 0", trial, j, id, got)
				}
			}
		}
	}
}
