package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// fitAndTracker builds a small fitting dataset, snapshots its frequencies,
// and returns a tracker bound to the fit-time dictionaries.
func fitAndTracker(t *testing.T, rows [][]string) (*table.Dataset, *DriftTracker) {
	t.Helper()
	fit := table.New("fit", []string{"a", "b"})
	for _, r := range rows {
		fit.MustAppendRow(r)
	}
	snap := NewColumnFrequencies(fit).Snapshot()
	dicts := make([][]string, fit.NumCols())
	for j := range dicts {
		dicts[j] = fit.Dict(j)
	}
	ref, err := table.NewFromDicts("ref", fit.Attrs, dicts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDriftTracker(snap, ref)
	if err != nil {
		t.Fatal(err)
	}
	return fit, tr
}

// TestDriftTrackerIdenticalStream: replaying the fitting rows yields zero
// unseen rate and zero shift.
func TestDriftTrackerIdenticalStream(t *testing.T) {
	rows := [][]string{{"x", "1"}, {"y", "2"}, {"x", "1"}, {"z", "3"}}
	_, tr := fitAndTracker(t, rows)
	for _, r := range rows {
		if err := tr.ObserveRow(r); err != nil {
			t.Fatal(err)
		}
	}
	g := tr.Gauges()
	if g.Rows != len(rows) || g.UnseenRate != 0 {
		t.Fatalf("identical stream gauges = %+v, want 0 unseen over %d rows", g, len(rows))
	}
	if g.Shift > 1e-12 {
		t.Fatalf("identical stream shift = %g, want 0", g.Shift)
	}
	if tr.Trip(0.1, 1) {
		t.Fatal("identical stream must not trip")
	}
}

// TestDriftTrackerDisjointStream: a stream of entirely novel values drives
// both gauges to 1.
func TestDriftTrackerDisjointStream(t *testing.T) {
	_, tr := fitAndTracker(t, [][]string{{"x", "1"}, {"y", "2"}})
	for i := 0; i < 10; i++ {
		if err := tr.ObserveRow([]string{fmt.Sprintf("n%d", i), fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	g := tr.Gauges()
	if g.UnseenRate != 1 {
		t.Fatalf("disjoint unseen rate = %g, want 1", g.UnseenRate)
	}
	if math.Abs(g.Shift-1) > 1e-12 {
		t.Fatalf("disjoint shift = %g, want 1", g.Shift)
	}
	if !tr.Trip(0.5, 10) {
		t.Fatal("disjoint stream must trip at threshold 0.5")
	}
	if tr.Trip(0.5, 11) {
		t.Fatal("minRows must gate the trip")
	}
	if tr.Trip(0, 1) {
		t.Fatal("non-positive threshold must disable tripping")
	}
}

// TestDriftTrackerChunkInvariance: gauges depend only on the multiset of
// observed rows, not on the order or grouping of observations.
func TestDriftTrackerChunkInvariance(t *testing.T) {
	fitRows := [][]string{{"x", "1"}, {"y", "2"}, {"x", "3"}}
	stream := make([][]string, 0, 60)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		stream = append(stream, []string{
			[]string{"x", "y", "novel"}[rng.Intn(3)],
			fmt.Sprintf("%d", rng.Intn(6)),
		})
	}
	_, tr1 := fitAndTracker(t, fitRows)
	for _, r := range stream {
		tr1.ObserveRow(r)
	}
	_, tr2 := fitAndTracker(t, fitRows)
	perm := rng.Perm(len(stream))
	for _, i := range perm {
		tr2.ObserveRow(stream[i])
	}
	g1, g2 := tr1.Gauges(), tr2.Gauges()
	if g1 != g2 {
		t.Fatalf("gauges depend on observation order: %+v vs %+v", g1, g2)
	}
}

// TestDriftTrackerRejectsBadShapes: arity mismatches and malformed
// references are errors, not corruption.
func TestDriftTrackerRejectsBadShapes(t *testing.T) {
	_, tr := fitAndTracker(t, [][]string{{"x", "1"}})
	if err := tr.ObserveRow([]string{"only-one"}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if g := tr.Gauges(); g.Rows != 0 {
		t.Fatalf("rejected row was tracked: %+v", g)
	}
	if _, err := NewDriftTracker(nil, table.New("r", []string{"a"})); err == nil {
		t.Fatal("nil snapshot must error")
	}
	if _, err := NewDriftTracker(&FreqSnapshot{Counts: [][]int{{1}}}, nil); err == nil {
		t.Fatal("nil reference must error")
	}
	nonEmpty := table.New("r", []string{"a"})
	nonEmpty.MustAppendRow([]string{"v"})
	if _, err := NewDriftTracker(&FreqSnapshot{Counts: [][]int{{1}}}, nonEmpty); err == nil {
		t.Fatal("non-empty reference must error")
	}
}
