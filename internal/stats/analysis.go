package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
	"repro/internal/text"
)

// AttributeProfile is the structured result of "executing the LLM-generated
// distribution-analysis functions" over a whole attribute (Fig. 5 of the
// paper). It summarizes exactly the signals the guideline-generation and
// labeling steps consume: missing-value rate, dominant formats, frequent
// values, numeric range, and the strongest functional dependency evidence.
type AttributeProfile struct {
	Attr          string
	Total         int
	Missing       int
	Distinct      int
	TopValues     []ValueCount // most frequent values, descending
	RareValues    []ValueCount // values with frequency below 1%
	TopPatterns   []ValueCount // most frequent L3 patterns
	DominantShare float64      // share of the single most frequent L3 pattern
	Numeric       bool
	Min, Max      float64 // numeric range (valid when Numeric)
	Mean, Std     float64
	Q1, Q3        float64
}

// ValueCount pairs a value (or pattern) with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// topCounts returns the top-k entries of a count map by descending count,
// ties broken lexicographically for determinism.
func topCounts(m map[string]int, k int) []ValueCount {
	out := make([]ValueCount, 0, len(m))
	for v, c := range m {
		out = append(out, ValueCount{v, c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ProfileAttribute runs the full-dataset distribution analysis for one
// attribute. This is the deterministic stand-in for executing the paper's
// generated Python analysis functions over the dirty CSV.
func ProfileAttribute(d *table.Dataset, j int) *AttributeProfile {
	p := &AttributeProfile{Attr: d.Attrs[j], Total: d.NumRows()}

	// Count by value ID, then do per-value work (generalization,
	// null-likeness, numeric parsing) once per pool entry.
	dict := d.Dict(j)
	counts := make([]int, len(dict))
	for _, id := range d.ColumnIDs(j) {
		counts[id]++
	}
	valueCounts := make(map[string]int)
	patternCounts := make(map[string]int)
	for id, c := range counts {
		if c == 0 {
			continue
		}
		v := dict[id]
		valueCounts[v] = c
		patternCounts[text.Generalize(v, text.L3)] += c
		if text.IsNullLike(v) {
			p.Missing += c
		}
	}
	p.Distinct = len(valueCounts)
	p.TopValues = topCounts(valueCounts, 10)
	p.TopPatterns = topCounts(patternCounts, 5)
	if len(p.TopPatterns) > 0 && p.Total > 0 {
		p.DominantShare = float64(p.TopPatterns[0].Count) / float64(p.Total)
	}
	for v, c := range valueCounts {
		if float64(c)/float64(p.Total) < 0.01 {
			p.RareValues = append(p.RareValues, ValueCount{v, c})
		}
	}
	sort.Slice(p.RareValues, func(a, b int) bool { return p.RareValues[a].Value < p.RareValues[b].Value })
	if len(p.RareValues) > 50 {
		p.RareValues = p.RareValues[:50]
	}

	// Numeric profiling: parse each unique value once, then expand in row
	// order so the accumulation matches the row-major implementation
	// bit-for-bit.
	parsedOf := make([]float64, len(dict))
	okOf := make([]bool, len(dict))
	parsed, nonEmpty := 0, 0
	for id, c := range counts {
		if c == 0 {
			continue
		}
		v := dict[id]
		if f, ok := text.ParseFloat(v); ok {
			parsedOf[id], okOf[id] = f, true
		}
		if strings.TrimSpace(v) != "" {
			nonEmpty += c
			if okOf[id] {
				parsed += c
			}
		}
	}
	if nonEmpty > 0 && float64(parsed)/float64(nonEmpty) >= 0.85 {
		nums := make([]float64, 0, parsed)
		for _, id := range d.ColumnIDs(j) {
			if okOf[id] {
				nums = append(nums, parsedOf[id])
			}
		}
		if len(nums) > 0 {
			p.Numeric = true
			p.Min, p.Max = nums[0], nums[0]
			for _, x := range nums {
				if x < p.Min {
					p.Min = x
				}
				if x > p.Max {
					p.Max = x
				}
			}
			p.Mean, p.Std = MeanStd(nums)
			p.Q1 = Quantile(nums, 0.25)
			p.Q3 = Quantile(nums, 0.75)
		}
	}
	return p
}

// Report renders the profile as the textual "analysis results" string that
// would be embedded in the guideline-generation prompt. Its length feeds
// token accounting.
func (p *AttributeProfile) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**Analysis results for %q:**\n", p.Attr)
	fmt.Fprintf(&b, "Total records: %d\n", p.Total)
	fmt.Fprintf(&b, "Missing values: %d (%.2f%%)\n", p.Missing, 100*float64(p.Missing)/float64(max(p.Total, 1)))
	fmt.Fprintf(&b, "Distinct values: %d\n", p.Distinct)
	fmt.Fprintf(&b, "Top values: ")
	for i, vc := range p.TopValues {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%q x%d", vc.Value, vc.Count)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "Top patterns (L3): ")
	for i, vc := range p.TopPatterns {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s x%d", vc.Value, vc.Count)
	}
	fmt.Fprintf(&b, "\nDominant pattern share: %.3f\n", p.DominantShare)
	if p.Numeric {
		fmt.Fprintf(&b, "Numeric range: [%g, %g], mean %.3f, std %.3f, IQR [%.3f, %.3f]\n",
			p.Min, p.Max, p.Mean, p.Std, p.Q1, p.Q3)
	}
	fmt.Fprintf(&b, "Rare values (<1%%): %d shown\n", len(p.RareValues))
	return b.String()
}

// FDCandidate describes evidence that attribute Det functionally determines
// attribute Dep: for each determinant value the dominant dependent value
// covers Support of rows on average.
type FDCandidate struct {
	Det, Dep int
	Support  float64 // average share of the majority dependent value
	// Mapping holds, for each determinant value seen at least twice, the
	// majority dependent value.
	Mapping map[string]string
}

// FindFD measures how well column det determines column dep in d. It
// returns a candidate with the majority mapping and its average support.
// This powers both the simulated LLM's rule-violation reasoning and the
// NADEEF baseline's automatic constraint mining.
func FindFD(d *table.Dataset, det, dep int) FDCandidate {
	detDict, depDict := d.Dict(det), d.Dict(dep)
	// Null-likeness is a per-unique-value property: compute it once per
	// pool entry instead of once per row.
	nullish := NullishByID(d, det)
	groups := make([]map[uint32]int, len(detDict))
	detIDs, depIDs := d.ColumnIDs(det), d.ColumnIDs(dep)
	for i, dv := range detIDs {
		if nullish[dv] {
			continue
		}
		g := groups[dv]
		if g == nil {
			g = make(map[uint32]int)
			groups[dv] = g
		}
		g[depIDs[i]]++
	}
	cand := FDCandidate{Det: det, Dep: dep, Mapping: make(map[string]string)}
	totalWeight, weightedSupport := 0.0, 0.0
	for dv, g := range groups {
		if g == nil {
			continue
		}
		n := 0
		bestV, bestC := "", 0
		for id, c := range g {
			n += c
			v := depDict[id]
			if c > bestC || (c == bestC && v < bestV) {
				bestV, bestC = v, c
			}
		}
		if n < 2 {
			continue // singleton groups carry no dependency evidence
		}
		cand.Mapping[detDict[dv]] = bestV
		totalWeight += float64(n)
		weightedSupport += float64(bestC)
	}
	if totalWeight > 0 {
		cand.Support = weightedSupport / totalWeight
	}
	return cand
}
