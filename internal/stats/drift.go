package stats

import (
	"fmt"

	"repro/internal/table"
)

// DriftTracker compares a stream of incoming rows against the value
// distribution a model saw at fit time (its FreqSnapshot), maintaining the
// two gauges the streaming subsystem exports per model:
//
//   - UnseenRate: the fraction of observed cells whose value was never
//     interned into the fit-time dictionaries (the extractor's cold path).
//   - Shift: the mean per-column total-variation distance between the
//     fit-time value distribution and the observed stream distribution,
//     with all unseen-value mass lumped into one out-of-dictionary bucket
//     per column. 0 means the stream looks exactly like the fitting data;
//     1 means no overlap at all.
//
// Observation is per cell value, independent of how rows are chunked, so
// the gauges are invariant to chunk boundaries. A tracker is not safe for
// concurrent use; the owner serializes ObserveRow calls (the streaming
// scorer holds its own mutex).
type DriftTracker struct {
	// ref is an empty dataset bound to the fit-time dictionaries (never
	// appended to), so LookupID resolves exactly the fit-time values and
	// nothing else — the chunk-invariant seen/unseen oracle.
	ref *table.Dataset
	// fitCounts[j][id] is the fit-time occurrence count of value id in
	// column j, zero-padded to the full dictionary (values interned during
	// fitting after the frequency scan count as zero, as they do in
	// FreqFromSnapshot).
	fitCounts [][]int
	fitN      int

	obsCounts [][]int // observed occurrences of fit-time values
	obsUnseen []int   // observed occurrences of out-of-dictionary values
	obsRows   int
	obsCells  int64
	unseen    int64
}

// DriftGauges is one point-in-time reading of a tracker.
type DriftGauges struct {
	// Rows is how many stream rows the gauges were accumulated over.
	Rows int `json:"rows"`
	// UnseenRate is the fraction of observed cells carrying a value absent
	// from the fit-time dictionaries.
	UnseenRate float64 `json:"unseen_rate"`
	// Shift is the mean per-column total-variation distance between the
	// fit-time and observed value distributions, in [0, 1].
	Shift float64 `json:"shift"`
}

// NewDriftTracker builds a tracker from a fit-time frequency snapshot and
// an empty reference dataset bound to the fit-time dictionaries (as built
// by table.NewFromDicts from the model's captured pools). The reference
// must never be appended to — the tracker relies on its dictionaries
// staying exactly the fit-time value set.
func NewDriftTracker(s *FreqSnapshot, ref *table.Dataset) (*DriftTracker, error) {
	if s == nil {
		return nil, fmt.Errorf("stats: nil frequency snapshot")
	}
	if ref == nil {
		return nil, fmt.Errorf("stats: nil reference dataset")
	}
	if ref.NumRows() != 0 {
		return nil, fmt.Errorf("stats: drift reference dataset has %d rows, want an empty dictionary-bound dataset", ref.NumRows())
	}
	m := ref.NumCols()
	if len(s.Counts) != m {
		return nil, fmt.Errorf("stats: snapshot has %d count columns, reference has %d", len(s.Counts), m)
	}
	t := &DriftTracker{
		ref:       ref,
		fitCounts: make([][]int, m),
		fitN:      s.N,
		obsCounts: make([][]int, m),
		obsUnseen: make([]int, m),
	}
	for j := 0; j < m; j++ {
		size := ref.DictSize(j)
		if len(s.Counts[j]) > size {
			return nil, fmt.Errorf("stats: snapshot counts cover %d values of column %d, dictionary has %d", len(s.Counts[j]), j, size)
		}
		t.fitCounts[j] = make([]int, size)
		copy(t.fitCounts[j], s.Counts[j])
		t.obsCounts[j] = make([]int, size)
	}
	return t, nil
}

// ObserveRow folds one stream row (in reference attribute order) into the
// observed distribution. Rows whose arity does not match the schema are
// rejected untracked.
func (t *DriftTracker) ObserveRow(row []string) error {
	if len(row) != t.ref.NumCols() {
		return fmt.Errorf("stats: drift row arity %d does not match schema arity %d", len(row), t.ref.NumCols())
	}
	for j, v := range row {
		if id, ok := t.ref.LookupID(j, v); ok {
			t.obsCounts[j][id]++
		} else {
			t.obsUnseen[j]++
			t.unseen++
		}
	}
	t.obsRows++
	t.obsCells += int64(len(row))
	return nil
}

// Rows returns how many rows have been observed.
func (t *DriftTracker) Rows() int { return t.obsRows }

// Gauges computes the current drift reading. With no observations both
// gauges are zero.
func (t *DriftTracker) Gauges() DriftGauges {
	g := DriftGauges{Rows: t.obsRows}
	if t.obsCells == 0 {
		return g
	}
	g.UnseenRate = float64(t.unseen) / float64(t.obsCells)
	if t.fitN <= 0 || t.obsRows == 0 {
		return g
	}
	// Per-column total variation: ½·Σ|p−q| over the fit-time dictionary
	// plus the whole observed out-of-dictionary mass (where p is zero).
	var sum float64
	cols := len(t.fitCounts)
	for j := 0; j < cols; j++ {
		var tv float64
		for id, fc := range t.fitCounts[j] {
			p := float64(fc) / float64(t.fitN)
			q := float64(t.obsCounts[j][id]) / float64(t.obsRows)
			if p > q {
				tv += p - q
			} else {
				tv += q - p
			}
		}
		tv += float64(t.obsUnseen[j]) / float64(t.obsRows)
		sum += tv / 2
	}
	g.Shift = sum / float64(cols)
	return g
}

// Trip reports whether the stream has drifted past threshold: at least
// minRows rows observed, and either gauge above the threshold. A
// non-positive threshold disables tripping (the gauges keep accumulating).
func (t *DriftTracker) Trip(threshold float64, minRows int) bool {
	if threshold <= 0 || t.obsRows < minRows {
		return false
	}
	g := t.Gauges()
	return g.UnseenRate > threshold || g.Shift > threshold
}
