package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// withTracing runs fn with span collection enabled, restoring the previous
// state afterwards so other tests see the default.
func withTracing(t *testing.T, fn func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	fn()
}

func TestDisabledStartIsNil(t *testing.T) {
	SetEnabled(false)
	ctx, tr := NewTrace(context.Background(), "root")
	if tr != nil {
		t.Fatalf("NewTrace returned a live trace while disabled")
	}
	_, sp := Start(ctx, "child")
	if sp != nil {
		t.Fatalf("Start returned a live span while disabled")
	}
	// Every method of the nil forms must be a no-op, not a panic.
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	tr.Adopt()
	tr.Finish()
	if tr.Adopted() || tr.Tree() != nil || tr.Root() != nil || tr.Spans() != 0 {
		t.Fatalf("nil trace leaked state")
	}
	if data, n := tr.ChromeJSON(); n != 0 || len(data) == 0 {
		t.Fatalf("nil trace chrome export: spans=%d len=%d", n, len(data))
	}
}

func TestSpanTreeShape(t *testing.T) {
	withTracing(t, func() {
		ctx, tr := NewTrace(context.Background(), "request")
		ctx1, a := Start(ctx, "ingest")
		a.SetInt("rows", 42)
		_, a1 := Start(ctx1, "parse")
		a1.End()
		a.End()
		_, b := Start(ctx, "detect")
		time.Sleep(2 * time.Millisecond)
		b.End()
		tr.Finish()

		tree := tr.Tree()
		if tree == nil || tree.Name != "request" {
			t.Fatalf("root = %+v", tree)
		}
		if len(tree.Children) != 2 {
			t.Fatalf("root children = %d, want 2", len(tree.Children))
		}
		ing := tree.Find("ingest")
		if ing == nil || ing.Attrs["rows"] != "42" {
			t.Fatalf("ingest node = %+v", ing)
		}
		if tree.Find("parse") == nil {
			t.Fatalf("nested span missing")
		}
		det := tree.Find("detect")
		if det.DurUS < 1000 {
			t.Fatalf("detect dur_us = %d, want >= 1000", det.DurUS)
		}
		if tree.DurUS < det.StartUS+det.DurUS {
			t.Fatalf("root dur %d shorter than detect end %d", tree.DurUS, det.StartUS+det.DurUS)
		}
		if tr.Spans() != 4 {
			t.Fatalf("spans = %d, want 4", tr.Spans())
		}
	})
}

func TestConcurrentSpans(t *testing.T) {
	withTracing(t, func() {
		ctx, tr := NewTrace(context.Background(), "parallel")
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, sp := Start(ctx, "shard")
				sp.SetInt("i", int64(i))
				sp.End()
			}(i)
		}
		wg.Wait()
		tr.Finish()
		if got := len(tr.Tree().Children); got != 32 {
			t.Fatalf("children = %d, want 32", got)
		}
	})
}

func TestSpanCap(t *testing.T) {
	withTracing(t, func() {
		ctx, tr := NewTrace(context.Background(), "cap")
		for i := 0; i < maxSpans+10; i++ {
			_, sp := Start(ctx, "s")
			sp.End()
		}
		if tr.Spans() != maxSpans {
			t.Fatalf("spans = %d, want cap %d", tr.Spans(), maxSpans)
		}
		_, sp := Start(ctx, "over")
		if sp != nil {
			t.Fatalf("span past the cap was not dropped")
		}
	})
}

func TestChromeExportValidJSONAndLanes(t *testing.T) {
	withTracing(t, func() {
		ctx, tr := NewTrace(context.Background(), "run")
		ctx2, fit := Start(ctx, "fit")
		_, s1 := Start(ctx2, "fit.criteria")
		s1.End()
		fit.End()
		// Two overlapping siblings: force them onto distinct lanes.
		_, p1 := Start(ctx, "score.shard")
		_, p2 := Start(ctx, "score.shard")
		time.Sleep(time.Millisecond)
		p1.End()
		p2.End()
		tr.Finish()

		data, n := tr.ChromeJSON()
		if n != 5 {
			t.Fatalf("spans = %d, want 5", n)
		}
		var f struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				TID  int     `json:"tid"`
				TS   float64 `json:"ts"`
				Dur  float64 `json:"dur"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("chrome export is not valid JSON: %v\n%s", err, data)
		}
		if len(f.TraceEvents) != 5 {
			t.Fatalf("events = %d, want 5", len(f.TraceEvents))
		}
		var shardTIDs []int
		for _, ev := range f.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("event ph = %q, want X", ev.Ph)
			}
			if ev.Name == "score.shard" {
				shardTIDs = append(shardTIDs, ev.TID)
			}
		}
		if len(shardTIDs) != 2 || shardTIDs[0] == shardTIDs[1] {
			t.Fatalf("overlapping siblings share a lane: tids=%v", shardTIDs)
		}
	})
}

func TestRing(t *testing.T) {
	r := NewRing(2)
	s1 := r.Add(&Retained{Name: "a"})
	s2 := r.Add(&Retained{Name: "b"})
	s3 := r.Add(&Retained{Name: "c"})
	if s1 != 1 || s2 != 2 || s3 != 3 {
		t.Fatalf("seqs = %d %d %d", s1, s2, s3)
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "c" || list[1].Name != "b" {
		t.Fatalf("list = %+v", list)
	}
	if _, ok := r.Get(1); ok {
		t.Fatalf("evicted trace still retrievable")
	}
	if got, ok := r.Get(3); !ok || got.Name != "c" {
		t.Fatalf("Get(3) = %+v %v", got, ok)
	}
}

func TestAdoptPreventsMiddlewareFinish(t *testing.T) {
	withTracing(t, func() {
		_, tr := NewTrace(context.Background(), "job")
		if tr.Adopted() {
			t.Fatalf("fresh trace adopted")
		}
		tr.Adopt()
		if !tr.Adopted() {
			t.Fatalf("Adopt did not stick")
		}
	})
}
