// Package obs is the zero-dependency tracing spine of the pipeline: a
// context-propagated span tracer that records a tree of named phases with
// wall time, allocation deltas, and key/value attributes, cheap enough to
// leave compiled into every stage.
//
// Cost discipline (the same contract as faultpoint.Eval): when tracing is
// disabled — the default — obs.Start is one atomic load and a nil return;
// no allocation, no lock, no time syscall. When enabled, spans observe
// strictly out of band: wall clock and the runtime's cumulative heap-alloc
// counter, never RNG streams, dedup caches, or any state the pipeline
// computes with — which is what keeps tracing-on bit-identical to
// tracing-off (pinned by TestTraceOnOffBitIdentical).
//
// Usage:
//
//	ctx, tr := obs.NewTrace(ctx, "POST /v1/jobs")   // root span in ctx
//	...
//	ctx, sp := obs.Start(ctx, "fit.criteria")       // child of the ctx span
//	defer sp.End()
//	sp.SetInt("rows", int64(n))
//
// All Span and Trace methods are nil-safe, so call sites never branch on
// whether tracing is live. A Trace renders as a JSON span tree (Tree) or as
// Chrome trace_event JSON (WriteChrome) loadable in chrome://tracing.
package obs

import (
	"context"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the package-wide gate. The fast path of Start loads it once
// and bails; nothing else is touched while tracing is off.
var enabled atomic.Bool

// SetEnabled turns span collection on or off process-wide. Serving and
// -trace CLI runs enable it at startup; libraries never toggle it.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether span collection is on.
func Enabled() bool { return enabled.Load() }

// maxSpans bounds one trace's span count so a long-lived stream request
// cannot grow its trace without bound; spans beyond the cap are dropped
// (Start returns nil), never blocked on.
const maxSpans = 4096

// allocSample reads the runtime's cumulative heap-allocation counter —
// /gc/heap/allocs:bytes — which is monotone and far cheaper than a full
// ReadMemStats. The delta across a span is process-wide: concurrent spans
// attribute each other's allocations, the same approximation the fit-stage
// timings have always made.
func allocSample() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one named phase inside a trace. Mutation (children, attrs, End)
// is serialized by the owning trace's mutex — span churn is per stage or
// per request phase, tens of operations per request, so one lock is cheap.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	alloc0   uint64
	dur      time.Duration
	alloc    uint64
	attrs    []Attr
	children []*Span
	ended    bool
}

// Trace is one span tree: a root span plus everything started under it.
type Trace struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	root     *Span
	spans    int
	adopted  bool
	finished bool
}

type spanKey struct{}

// ContextWithSpan returns a context carrying the span, so Start calls
// downstream attach their spans under it. Used to hand a trace across
// goroutine boundaries (e.g. from the submit handler to the job runner).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the current span of the context, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceFromContext returns the trace the context's span belongs to, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if s := FromContext(ctx); s != nil {
		return s.tr
	}
	return nil
}

// NewTrace creates a trace rooted at name and returns a context carrying
// the root span. Returns (ctx, nil) while tracing is disabled; every method
// of the nil trace is a no-op.
func NewTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if !enabled.Load() {
		return ctx, nil
	}
	now := time.Now()
	t := &Trace{name: name, start: now}
	t.root = &Span{tr: t, name: name, start: now, alloc0: allocSample()}
	t.spans = 1
	return ContextWithSpan(ctx, t.root), t
}

// Start opens a child span under the context's current span and returns a
// context carrying it. Disabled tracing, a span-free context, or a trace at
// its span cap all return (ctx, nil); the nil span's methods are no-ops, so
// call sites stay branch-free.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	t := parent.tr
	t.mu.Lock()
	if t.spans >= maxSpans {
		t.mu.Unlock()
		return ctx, nil
	}
	t.spans++
	s := &Span{tr: t, name: name, start: time.Now(), alloc0: allocSample()}
	parent.children = append(parent.children, s)
	t.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// End closes the span, recording its wall time and allocation delta.
// Ending twice keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	alloc := allocSample()
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = dur
		if alloc >= s.alloc0 {
			s.alloc = alloc - s.alloc0
		}
	}
	s.tr.mu.Unlock()
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, itoa(value))
}

// itoa avoids strconv in the signature-level API surface; spans format
// attributes eagerly so renderers stay allocation-free of the originals.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Adopt marks the trace as owned by an asynchronous consumer (a job that
// outlives its submit request): the HTTP middleware that created the trace
// must not finish or retain it.
func (t *Trace) Adopt() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.adopted = true
	t.mu.Unlock()
}

// Adopted reports whether an asynchronous consumer took ownership.
func (t *Trace) Adopted() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.adopted
}

// Finish ends the root span. Safe to call more than once.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	fin := t.finished
	t.finished = true
	t.mu.Unlock()
	if !fin {
		t.root.End()
	}
}

// Root returns the trace's root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Duration returns the root span's duration (elapsed-so-far when the trace
// has not finished).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.ended {
		return t.root.dur
	}
	return time.Since(t.root.start)
}

// Spans returns the number of spans collected so far.
func (t *Trace) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Node is the JSON form of one span: offsets and durations in microseconds
// relative to the trace start, the allocation delta in bytes, attributes,
// and children in start order. This is the payload of ?trace=1 envelopes
// and GET /v1/jobs/{id}/trace.
type Node struct {
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"`
	DurUS      int64             `json:"dur_us"`
	AllocBytes uint64            `json:"alloc_bytes,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*Node           `json:"children,omitempty"`
}

// Tree snapshots the trace as a span tree. Unended spans (a live job being
// inspected mid-run) report their elapsed-so-far duration.
func (t *Trace) Tree() *Node {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.node(t.start, time.Now())
}

// node renders one span (caller holds the trace mutex).
func (s *Span) node(t0, now time.Time) *Node {
	d := s.dur
	if !s.ended {
		d = now.Sub(s.start)
	}
	n := &Node{
		Name:       s.name,
		StartUS:    s.start.Sub(t0).Microseconds(),
		DurUS:      d.Microseconds(),
		AllocBytes: s.alloc,
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.node(t0, now))
	}
	return n
}

// Find returns the first node named name in a depth-first walk, or nil.
// A convenience for tests and the e2e smoke's span assertions.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}
