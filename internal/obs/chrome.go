package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome trace_event export: the span tree rendered as "X" (complete)
// events that chrome://tracing, Perfetto, and speedscope all load. Every
// span becomes one event with microsecond ts/dur; the tree structure is
// conveyed through tid lanes — nested spans share their parent's lane
// (the viewers stack contained intervals), while overlapping siblings
// (pool workers scoring shards concurrently) are pushed to distinct lanes
// so they render side by side instead of garbling one track.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   float64           `json:"ts"`  // microseconds since trace start
	Dur  float64           `json:"dur"` // microseconds
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the object form of the trace_event format ({"traceEvents":
// [...]}), which every viewer accepts and which leaves room for metadata.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// flatSpan is one span snapshotted out of the tree for lane assignment.
type flatSpan struct {
	name     string
	startNS  int64
	endNS    int64
	attrs    []Attr
	children []*flatSpan
}

// WriteChrome writes the trace as Chrome trace_event JSON. Unended spans
// are clamped to "now", so a live trace still renders.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[]}` + "\n"))
		return err
	}
	t.mu.Lock()
	root := t.root.flatten(t.start, time.Now())
	t.mu.Unlock()

	la := &laneAssigner{}
	var events []chromeEvent
	var walk func(s *flatSpan, parentLane int)
	walk = func(s *flatSpan, parentLane int) {
		lane := la.assign(s.startNS, s.endNS, parentLane)
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			PID:  1,
			TID:  lane,
			TS:   float64(s.startNS) / 1e3,
			Dur:  float64(s.endNS-s.startNS) / 1e3,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
		for _, c := range s.children {
			walk(c, lane)
		}
	}
	walk(root, 0)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayUnit: "ms"})
}

// ChromeJSON renders the trace as a trace_event JSON byte slice plus the
// span count, for ring retention and file dumps.
func (t *Trace) ChromeJSON() ([]byte, int) {
	if t == nil {
		return []byte(`{"traceEvents":[]}` + "\n"), 0
	}
	var buf writerBuf
	_ = t.WriteChrome(&buf)
	return buf.b, t.Spans()
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// flatten snapshots one span subtree relative to t0 (caller holds the
// trace mutex).
func (s *Span) flatten(t0, now time.Time) *flatSpan {
	end := s.start.Add(s.dur)
	if !s.ended {
		end = now
	}
	f := &flatSpan{
		name:    s.name,
		startNS: s.start.Sub(t0).Nanoseconds(),
		endNS:   end.Sub(t0).Nanoseconds(),
		attrs:   append([]Attr(nil), s.attrs...),
	}
	if f.endNS < f.startNS {
		f.endNS = f.startNS
	}
	for _, c := range s.children {
		f.children = append(f.children, c.flatten(t0, now))
	}
	return f
}

// laneAssigner packs spans onto tid lanes: a span prefers its parent's
// lane (ancestors contain it, so they never conflict) and is bumped to the
// first lane where it partially overlaps nothing. Two intervals conflict
// only when they overlap without either containing the other — the one
// arrangement the stacking viewers cannot draw on a single track.
type laneAssigner struct {
	lanes [][][2]int64 // lanes[i] = placed [start, end) intervals
}

func (la *laneAssigner) assign(start, end int64, preferred int) int {
	if preferred < len(la.lanes) && !conflicts(la.lanes[preferred], start, end) {
		la.lanes[preferred] = append(la.lanes[preferred], [2]int64{start, end})
		return preferred
	}
	for i := range la.lanes {
		if i == preferred {
			continue
		}
		if !conflicts(la.lanes[i], start, end) {
			la.lanes[i] = append(la.lanes[i], [2]int64{start, end})
			return i
		}
	}
	la.lanes = append(la.lanes, [][2]int64{{start, end}})
	return len(la.lanes) - 1
}

func conflicts(placed [][2]int64, start, end int64) bool {
	for _, p := range placed {
		overlap := start < p[1] && p[0] < end
		if !overlap {
			continue
		}
		contained := (p[0] <= start && end <= p[1]) || (start <= p[0] && p[1] <= end)
		if !contained {
			return true
		}
	}
	return false
}
