package obs

import "sync"

// Ring is the bounded buffer of retained traces behind GET /debug/traces:
// the serve layer drops finished request traces in (subject to its
// slow-request threshold) and the newest N survive.

// Retained is one trace kept in the ring, already rendered: the Chrome
// JSON is materialized at retention time so serving it later is a byte
// copy, never a walk of live spans.
type Retained struct {
	Seq       int     `json:"seq"`
	Name      string  `json:"name"`
	RequestID string  `json:"request_id,omitempty"`
	DurMS     float64 `json:"dur_ms"`
	Spans     int     `json:"spans"`
	Chrome    []byte  `json:"-"`
}

// Ring holds the last N retained traces. Seq numbers are monotone across
// the process, so /debug/traces/{seq} URLs stay stable until evicted.
type Ring struct {
	mu   sync.Mutex
	buf  []*Retained
	next int
	seq  int
}

// NewRing creates a ring retaining up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Retained, n)}
}

// Add retains one trace, assigning and returning its sequence number.
func (r *Ring) Add(t *Retained) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.Seq = r.seq
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	return t.Seq
}

// List snapshots the retained traces, newest first.
func (r *Ring) List() []*Retained {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Retained, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if r.buf[idx] != nil {
			out = append(out, r.buf[idx])
		}
	}
	return out
}

// Get returns the retained trace with the given sequence number.
func (r *Ring) Get(seq int) (*Retained, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.buf {
		if t != nil && t.Seq == seq {
			return t, true
		}
	}
	return nil, false
}
