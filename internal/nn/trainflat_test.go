package nn

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// synthTrainingSet builds a deterministic mixed-signal training set large
// enough to exercise multiple shuffled mini-batches per epoch.
func synthTrainingSet(n, dim int, seed int64) ([][]float64, []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float64, n*dim)
	nested := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := flat[i*dim : (i+1)*dim]
		var s float64
		for j := range row {
			row[j] = rng.NormFloat64()
			s += row[j]
		}
		nested[i] = row
		if s+rng.NormFloat64()*0.3 > 0 {
			y[i] = 1
		}
	}
	return nested, y, flat
}

// TestTrainFlatMatchesTrainContext pins the tentpole contract: TrainFlat on
// the flat tile produces bit-identical weights, biases, and final loss to
// TrainContext on the equivalent nested matrix — including the Adam moment
// updates and the per-epoch shuffle stream, across multiple epochs and
// partial final batches.
func TestTrainFlatMatchesTrainContext(t *testing.T) {
	const n, dim = 203, 17 // deliberately not a multiple of the batch size
	nested, y, flat := synthTrainingSet(n, dim, 42)

	cfg := Config{Hidden1: 24, Hidden2: 12, LR: 1e-3, Epochs: 5, BatchSize: 32, Seed: 9, L2: 1e-5}
	mNested := New(dim, cfg)
	mFlat := New(dim, cfg)

	lossNested, err := mNested.TrainContext(context.Background(), nested, y)
	if err != nil {
		t.Fatalf("TrainContext: %v", err)
	}
	lossFlat, err := mFlat.TrainFlat(flat, n, y)
	if err != nil {
		t.Fatalf("TrainFlat: %v", err)
	}
	if math.Float64bits(lossNested) != math.Float64bits(lossFlat) {
		t.Fatalf("final loss differs: nested %v flat %v", lossNested, lossFlat)
	}

	sa, sb := mNested.Snapshot(), mFlat.Snapshot()
	compareBits := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %v (%x) vs %v (%x)", name, i,
					a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
			}
		}
	}
	compareBits("w1", sa.W1, sb.W1)
	compareBits("w2", sa.W2, sb.W2)
	compareBits("w3", sa.W3, sb.W3)
	compareBits("b1", sa.B1, sb.B1)
	compareBits("b2", sa.B2, sb.B2)
	if math.Float64bits(sa.B3) != math.Float64bits(sb.B3) {
		t.Fatalf("b3: %v vs %v", sa.B3, sb.B3)
	}
}

// TestTrainFlatShapeValidation pins the flat entry point's shape errors.
func TestTrainFlatShapeValidation(t *testing.T) {
	m := New(4, Config{Hidden1: 4, Hidden2: 3, Epochs: 1, Seed: 1})
	if _, err := m.TrainFlat(nil, 0, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := m.TrainFlat(make([]float64, 7), 2, make([]float64, 2)); err == nil {
		t.Fatal("misshapen tile accepted")
	}
	if _, err := m.TrainFlat(make([]float64, 8), 2, make([]float64, 3)); err == nil {
		t.Fatal("label/sample mismatch accepted")
	}
}

// TestTrainFlatFusedValidationRejectsNonFinite checks that the fused
// first-epoch validation still surfaces non-finite features and labels as
// errors.
func TestTrainFlatFusedValidationRejectsNonFinite(t *testing.T) {
	const n, dim = 40, 5
	_, y, flat := synthTrainingSet(n, dim, 7)
	flat[3*dim+2] = math.NaN()
	m := New(dim, Config{Hidden1: 8, Hidden2: 4, Epochs: 3, Seed: 2})
	if _, err := m.TrainFlat(flat, n, y); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN feature not rejected: %v", err)
	}

	_, y2, flat2 := synthTrainingSet(n, dim, 8)
	y2[11] = math.Inf(1)
	m2 := New(dim, Config{Hidden1: 8, Hidden2: 4, Epochs: 3, Seed: 2})
	if _, err := m2.TrainFlat(flat2, n, y2); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Inf label not rejected: %v", err)
	}
}
