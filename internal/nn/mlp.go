// Package nn implements the paper's error detector: a two-hidden-layer
// multilayer perceptron with ReLU activations and a sigmoid output, trained
// with the binary cross-entropy objective of Section III-D using Adam and
// mini-batches. It is written from scratch on float64 slices — no external
// ML dependencies — and is deterministic for a given seed.
//
// All weight matrices live in flat row-major []float64 buffers: layer i's
// row r occupies w[r*cols : (r+1)*cols]. The training loop updates those
// buffers in place (no flatten/unflatten round-trips), and inference
// (Predict / PredictBatch / PredictInto) is allocation-free in steady
// state, drawing activation scratch from an internal pool so that many
// goroutines can score against one fitted model concurrently.
package nn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Config controls MLP shape and training.
type Config struct {
	Hidden1   int     // width of the first hidden layer
	Hidden2   int     // width of the second hidden layer
	LR        float64 // Adam learning rate
	Epochs    int
	BatchSize int
	Seed      int64
	L2        float64 // weight decay
}

// DefaultConfig mirrors the paper's "simple MLP" setup sized for the
// feature dimensions this pipeline produces.
func DefaultConfig() Config {
	return Config{Hidden1: 64, Hidden2: 32, LR: 1e-3, Epochs: 30, BatchSize: 32, Seed: 1, L2: 1e-5}
}

// MLP is a 2-hidden-layer binary classifier. Weights are flat row-major.
type MLP struct {
	cfg     Config
	in      int
	w1      []float64 // Hidden1 x in
	w2      []float64 // Hidden2 x Hidden1
	w3      []float64 // output weights (len Hidden2)
	b1, b2  []float64
	b3      float64
	trained bool

	// scratch pools forward-pass activation buffers so concurrent
	// inference against one fitted model never allocates in steady state.
	scratch sync.Pool
}

// fwdScratch is one goroutine's activation workspace.
type fwdScratch struct {
	h1, h2 []float64
}

// New creates an MLP for the given input dimension with seeded He
// initialization.
func New(in int, cfg Config) *MLP {
	if cfg.Hidden1 <= 0 || cfg.Hidden2 <= 0 {
		def := DefaultConfig()
		if cfg.Hidden1 <= 0 {
			cfg.Hidden1 = def.Hidden1
		}
		if cfg.Hidden2 <= 0 {
			cfg.Hidden2 = def.Hidden2
		}
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{cfg: cfg, in: in}
	m.w1 = heInit(rng, cfg.Hidden1, in)
	m.w2 = heInit(rng, cfg.Hidden2, cfg.Hidden1)
	m.w3 = heInit(rng, 1, cfg.Hidden2)
	m.b1 = make([]float64, cfg.Hidden1)
	m.b2 = make([]float64, cfg.Hidden2)
	m.scratch.New = func() any {
		return &fwdScratch{
			h1: make([]float64, cfg.Hidden1),
			h2: make([]float64, cfg.Hidden2),
		}
	}
	return m
}

// heInit fills a flat rows x cols matrix with seeded He-initialized
// weights, drawn in row-major order (the same draw order as the historical
// [][]float64 initialization, so seeded weights are unchanged).
func heInit(rng *rand.Rand, rows, cols int) []float64 {
	scale := math.Sqrt(2.0 / float64(max(cols, 1)))
	w := make([]float64, rows*cols)
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
	return w
}

func sigmoid(x float64) float64 {
	// Numerically stable sigmoid.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// dotFrom accumulates s + Σ w[i]*x[i] left to right — the same
// association as a naive loop starting at s, so results are bit-identical
// to the pre-optimization code. Reslicing x to len(w) lets the compiler
// drop per-iteration bounds checks in the innermost training loops.
func dotFrom(s float64, w, x []float64) float64 {
	x = x[:len(w)]
	for i, wi := range w {
		s += wi * x[i]
	}
	return s
}

// forward computes activations; h1 and h2 receive post-ReLU activations.
func (m *MLP) forward(x []float64, h1, h2 []float64) float64 {
	in, h1n := m.in, m.cfg.Hidden1
	for i := range h1 {
		s := dotFrom(m.b1[i], m.w1[i*in:(i+1)*in], x)
		if s < 0 {
			s = 0
		}
		h1[i] = s
	}
	for i := range h2 {
		s := dotFrom(m.b2[i], m.w2[i*h1n:(i+1)*h1n], h1)
		if s < 0 {
			s = 0
		}
		h2[i] = s
	}
	return sigmoid(dotFrom(m.b3, m.w3, h2))
}

// adamState holds first/second moment estimates for one parameter tensor.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState { return &adamState{m: make([]float64, n), v: make([]float64, n)} }

func (a *adamState) step(params, grads []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	grads = grads[:len(params)]
	am := a.m[:len(params)]
	av := a.v[:len(params)]
	for i := range params {
		g := grads[i]
		am[i] = beta1*am[i] + (1-beta1)*g
		av[i] = beta2*av[i] + (1-beta2)*g*g
		params[i] -= lr * (am[i] / bc1) / (math.Sqrt(av[i]/bc2) + eps)
	}
}

// Train fits the MLP on features X and binary labels y (1 = error). It
// returns the final epoch's mean cross-entropy loss. Adam updates apply
// directly to the flat weight buffers.
func (m *MLP) Train(X [][]float64, y []float64) (float64, error) {
	return m.TrainContext(context.Background(), X, y)
}

// TrainContext is Train with cooperative cancellation: the context is
// checked once per epoch, and a canceled context aborts training with the
// context's error. Inputs are validated up front — a non-finite feature or
// label value is rejected before it can poison the weights, and a
// non-finite epoch loss (divergence, however caused) aborts with an error
// rather than training onward through NaNs.
func (m *MLP) TrainContext(ctx context.Context, X [][]float64, y []float64) (float64, error) {
	if len(X) == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("nn: %d samples but %d labels", len(X), len(y))
	}
	for i, x := range X {
		if len(x) != m.in {
			return 0, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x), m.in)
		}
		for k, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("nn: sample %d has non-finite feature %v at index %d", i, v, k)
			}
		}
		if v := y[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("nn: label %d is non-finite (%v)", i, v)
		}
	}
	h1n, h2n := m.cfg.Hidden1, m.cfg.Hidden2
	rng := rand.New(rand.NewSource(m.cfg.Seed + 7))

	optW1 := newAdam(h1n * m.in)
	optW2 := newAdam(h2n * h1n)
	optW3 := newAdam(h2n)
	optB1 := newAdam(h1n)
	optB2 := newAdam(h2n)
	optB3 := newAdam(1)

	gradW1 := make([]float64, h1n*m.in)
	gradW2 := make([]float64, h2n*h1n)
	gradW3 := make([]float64, h2n)
	gradB1 := make([]float64, h1n)
	gradB2 := make([]float64, h2n)
	gradB3 := make([]float64, 1)

	h1 := make([]float64, h1n)
	h2 := make([]float64, h2n)
	d2 := make([]float64, h2n)
	d1 := make([]float64, h1n)

	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}

	var lastLoss float64
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("nn: training canceled at epoch %d: %w", epoch, err)
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += m.cfg.BatchSize {
			end := min(start+m.cfg.BatchSize, len(idx))
			bs := float64(end - start)
			zero(gradW1)
			zero(gradW2)
			zero(gradW3)
			zero(gradB1)
			zero(gradB2)
			gradB3[0] = 0

			for _, i := range idx[start:end] {
				x := X[i]
				p := m.forward(x, h1, h2)
				t := y[i]
				epochLoss += bceLoss(t, p)
				// dL/dlogit for sigmoid + BCE.
				dOut := (p - t) / bs
				for j := range m.w3 {
					gradW3[j] += dOut * h2[j]
					d2[j] = dOut * m.w3[j]
					if h2[j] <= 0 {
						d2[j] = 0
					}
				}
				gradB3[0] += dOut
				for j := range d1 {
					d1[j] = 0
				}
				for r := 0; r < h2n; r++ {
					d2r := d2[r]
					if d2r == 0 {
						continue
					}
					// Reslice scratch views to the row length so the inner
					// loop runs without bounds checks; per-element arithmetic
					// order is unchanged.
					row := m.w2[r*h1n : (r+1)*h1n]
					g := gradW2[r*h1n : r*h1n+len(row)]
					hr := h1[:len(row)]
					dr := d1[:len(row)]
					for c, w := range row {
						g[c] += d2r * hr[c]
						dr[c] += d2r * w
					}
					gradB2[r] += d2r
				}
				for r := range d1 {
					if h1[r] <= 0 {
						d1[r] = 0
					}
				}
				for r := 0; r < h1n; r++ {
					d1r := d1[r]
					if d1r == 0 {
						continue
					}
					g := gradW1[r*m.in : r*m.in+m.in]
					xr := x[:m.in]
					for c := range g {
						g[c] += d1r * xr[c]
					}
					gradB1[r] += d1r
				}
			}

			// L2 decay + Adam updates directly on the flat weights.
			addL2(gradW1, m.w1, m.cfg.L2)
			optW1.step(m.w1, gradW1, m.cfg.LR)
			addL2(gradW2, m.w2, m.cfg.L2)
			optW2.step(m.w2, gradW2, m.cfg.LR)
			addL2(gradW3, m.w3, m.cfg.L2)
			optW3.step(m.w3, gradW3, m.cfg.LR)
			optB1.step(m.b1, gradB1, m.cfg.LR)
			optB2.step(m.b2, gradB2, m.cfg.LR)
			b3 := [1]float64{m.b3}
			optB3.step(b3[:], gradB3, m.cfg.LR)
			m.b3 = b3[0]
		}
		lastLoss = epochLoss / float64(len(idx))
		if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
			return 0, fmt.Errorf("nn: non-finite training loss %v at epoch %d", lastLoss, epoch)
		}
	}
	m.trained = true
	return lastLoss, nil
}

func bceLoss(t, p float64) float64 {
	const eps = 1e-12
	return -(t*math.Log(p+eps) + (1-t)*math.Log(1-p+eps))
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func addL2(grads, params []float64, l2 float64) {
	if l2 == 0 {
		return
	}
	for i := range grads {
		grads[i] += l2 * params[i]
	}
}

// Predict returns the error probability for a single feature vector. It is
// allocation-free in steady state and safe for concurrent use.
func (m *MLP) Predict(x []float64) float64 {
	sc := m.getScratch()
	p := m.forward(x, sc.h1, sc.h2)
	m.scratch.Put(sc)
	return p
}

// PredictInto runs batched inference over a flat row-major feature tile:
// X holds nRows vectors of the model's input dimension back to back, and
// out (length >= nRows) receives the error probability of each row. The
// activation scratch is pooled, so steady-state calls allocate nothing,
// and many goroutines may score against one fitted model concurrently.
func (m *MLP) PredictInto(X []float64, nRows int, out []float64) {
	if nRows <= 0 {
		return
	}
	dim := m.in
	sc := m.getScratch()
	for r := 0; r < nRows; r++ {
		out[r] = m.forward(X[r*dim:(r+1)*dim], sc.h1, sc.h2)
	}
	m.scratch.Put(sc)
}

// PredictBatch returns error probabilities for many feature vectors,
// reusing scratch buffers.
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	sc := m.getScratch()
	for i, x := range X {
		out[i] = m.forward(x, sc.h1, sc.h2)
	}
	m.scratch.Put(sc)
	return out
}

func (m *MLP) getScratch() *fwdScratch { return m.scratch.Get().(*fwdScratch) }

// InputDim returns the model's input dimensionality.
func (m *MLP) InputDim() int { return m.in }

// Trained reports whether Train has completed successfully.
func (m *MLP) Trained() bool { return m.trained }
