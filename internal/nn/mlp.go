// Package nn implements the paper's error detector: a two-hidden-layer
// multilayer perceptron with ReLU activations and a sigmoid output, trained
// with the binary cross-entropy objective of Section III-D using Adam and
// mini-batches. It is written from scratch on float64 slices — no external
// ML dependencies — and is deterministic for a given seed.
//
// All weight matrices live in flat row-major []float64 buffers: layer i's
// row r occupies w[r*cols : (r+1)*cols]. The training loop updates those
// buffers in place (no flatten/unflatten round-trips), and inference
// (Predict / PredictBatch / PredictInto) is allocation-free in steady
// state, drawing activation scratch from an internal pool so that many
// goroutines can score against one fitted model concurrently.
package nn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Config controls MLP shape and training.
type Config struct {
	Hidden1   int     // width of the first hidden layer
	Hidden2   int     // width of the second hidden layer
	LR        float64 // Adam learning rate
	Epochs    int
	BatchSize int
	Seed      int64
	L2        float64 // weight decay
}

// DefaultConfig mirrors the paper's "simple MLP" setup sized for the
// feature dimensions this pipeline produces.
func DefaultConfig() Config {
	return Config{Hidden1: 64, Hidden2: 32, LR: 1e-3, Epochs: 30, BatchSize: 32, Seed: 1, L2: 1e-5}
}

// MLP is a 2-hidden-layer binary classifier. Weights are flat row-major.
type MLP struct {
	cfg     Config
	in      int
	w1      []float64 // Hidden1 x in
	w2      []float64 // Hidden2 x Hidden1
	w3      []float64 // output weights (len Hidden2)
	b1, b2  []float64
	b3      float64
	trained bool

	// scratch pools forward-pass activation buffers so concurrent
	// inference against one fitted model never allocates in steady state.
	scratch sync.Pool
}

// fwdScratch is one goroutine's activation workspace.
type fwdScratch struct {
	h1, h2 []float64
}

// New creates an MLP for the given input dimension with seeded He
// initialization.
func New(in int, cfg Config) *MLP {
	if cfg.Hidden1 <= 0 || cfg.Hidden2 <= 0 {
		def := DefaultConfig()
		if cfg.Hidden1 <= 0 {
			cfg.Hidden1 = def.Hidden1
		}
		if cfg.Hidden2 <= 0 {
			cfg.Hidden2 = def.Hidden2
		}
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{cfg: cfg, in: in}
	m.w1 = heInit(rng, cfg.Hidden1, in)
	m.w2 = heInit(rng, cfg.Hidden2, cfg.Hidden1)
	m.w3 = heInit(rng, 1, cfg.Hidden2)
	m.b1 = make([]float64, cfg.Hidden1)
	m.b2 = make([]float64, cfg.Hidden2)
	m.scratch.New = func() any {
		return &fwdScratch{
			h1: make([]float64, cfg.Hidden1),
			h2: make([]float64, cfg.Hidden2),
		}
	}
	return m
}

// heInit fills a flat rows x cols matrix with seeded He-initialized
// weights, drawn in row-major order (the same draw order as the historical
// [][]float64 initialization, so seeded weights are unchanged).
func heInit(rng *rand.Rand, rows, cols int) []float64 {
	scale := math.Sqrt(2.0 / float64(max(cols, 1)))
	w := make([]float64, rows*cols)
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
	return w
}

func sigmoid(x float64) float64 {
	// Numerically stable sigmoid.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// dotFrom accumulates s + Σ w[i]*x[i] left to right — the same
// association as a naive loop starting at s, so results are bit-identical
// to the pre-optimization code. Reslicing x to len(w) lets the compiler
// drop per-iteration bounds checks in the innermost training loops.
func dotFrom(s float64, w, x []float64) float64 {
	x = x[:len(w)]
	for i, wi := range w {
		s += wi * x[i]
	}
	return s
}

// forward computes activations; h1 and h2 receive post-ReLU activations.
func (m *MLP) forward(x []float64, h1, h2 []float64) float64 {
	in := len(x)
	for i := range h1 {
		s := dotFrom(m.b1[i], m.w1[i*in:(i+1)*in], x)
		if s < 0 {
			s = 0
		}
		h1[i] = s
	}
	h1n := len(h1)
	for i := range h2 {
		s := dotFrom(m.b2[i], m.w2[i*h1n:(i+1)*h1n], h1)
		if s < 0 {
			s = 0
		}
		h2[i] = s
	}
	return sigmoid(dotFrom(m.b3, m.w3, h2))
}

// adamState holds first/second moment estimates for one parameter tensor.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState { return &adamState{m: make([]float64, n), v: make([]float64, n)} }

func (a *adamState) step(params, grads []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	grads = grads[:len(params)]
	am := a.m[:len(params)]
	av := a.v[:len(params)]
	for i := range params {
		g := grads[i]
		am[i] = beta1*am[i] + (1-beta1)*g
		av[i] = beta2*av[i] + (1-beta2)*g*g
		params[i] -= lr * (am[i] / bc1) / (math.Sqrt(av[i]/bc2) + eps)
	}
}

// Train fits the MLP on features X and binary labels y (1 = error). It
// returns the final epoch's mean cross-entropy loss. Adam updates apply
// directly to the flat weight buffers.
func (m *MLP) Train(X [][]float64, y []float64) (float64, error) {
	return m.TrainContext(context.Background(), X, y)
}

// TrainContext is Train with cooperative cancellation: the context is
// checked once per epoch, and a canceled context aborts training with the
// context's error. Inputs are validated up front — a non-finite feature or
// label value is rejected before it can poison the weights, and a
// non-finite epoch loss (divergence, however caused) aborts with an error
// rather than training onward through NaNs.
func (m *MLP) TrainContext(ctx context.Context, X [][]float64, y []float64) (float64, error) {
	if len(X) == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("nn: %d samples but %d labels", len(X), len(y))
	}
	for i, x := range X {
		if len(x) != m.in {
			return 0, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x), m.in)
		}
		if err := validateSample(x, y[i], i); err != nil {
			return 0, err
		}
	}
	return m.train(ctx, func(i int) []float64 { return X[i] }, len(X), y, false)
}

// TrainFlat fits the MLP on a flat row-major feature tile: X holds nRows
// vectors of the model's input dimension back to back — the layout
// feature.FeaturesInto and the engine's training-matrix stage produce — so
// training consumes the tile directly with no per-row slice headers. The
// produced weights are bit-identical to TrainContext on the equivalent
// nested matrix (same seed, same shuffle stream, same per-element arithmetic
// order); sample validation is fused into the first epoch's pass instead of
// running as a separate O(n·dim) sweep. A non-finite sample still aborts
// training with an error (the partially updated weights are discarded by
// every caller along with the error).
func (m *MLP) TrainFlat(X []float64, nRows int, y []float64) (float64, error) {
	return m.TrainFlatContext(context.Background(), X, nRows, y)
}

// TrainFlatContext is TrainFlat with cooperative per-epoch cancellation.
func (m *MLP) TrainFlatContext(ctx context.Context, X []float64, nRows int, y []float64) (float64, error) {
	if nRows <= 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	if len(X) != nRows*m.in {
		return 0, fmt.Errorf("nn: flat tile has %d values, want %d rows x %d dims = %d",
			len(X), nRows, m.in, nRows*m.in)
	}
	if nRows != len(y) {
		return 0, fmt.Errorf("nn: %d samples but %d labels", nRows, len(y))
	}
	in := m.in
	return m.train(ctx, func(i int) []float64 { return X[i*in : (i+1)*in] }, nRows, y, true)
}

// validateSample rejects non-finite features or labels before they can
// poison the weights.
func validateSample(x []float64, label float64, i int) error {
	for k, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("nn: sample %d has non-finite feature %v at index %d", i, v, k)
		}
	}
	if math.IsNaN(label) || math.IsInf(label, 0) {
		return fmt.Errorf("nn: label %d is non-finite (%v)", i, label)
	}
	return nil
}

// train is the shared Adam/BCE training loop behind TrainContext and
// TrainFlat: at(i) yields sample i's feature vector (a nested row or a flat
// tile window — both views see identical float64 sequences, which is why the
// two entry points produce bit-identical weights). When fusedValidate is
// set, sample validation happens on first use inside epoch 0 rather than as
// an up-front sweep.
func (m *MLP) train(ctx context.Context, at func(int) []float64, n int, y []float64, fusedValidate bool) (float64, error) {
	h1n, h2n := m.cfg.Hidden1, m.cfg.Hidden2
	in := m.in
	rng := rand.New(rand.NewSource(m.cfg.Seed + 7))

	optW1 := newAdam(h1n * in)
	optW2 := newAdam(h2n * h1n)
	optW3 := newAdam(h2n)
	optB1 := newAdam(h1n)
	optB2 := newAdam(h2n)
	optB3 := newAdam(1)

	gradW2 := make([]float64, h2n*h1n)
	gradW3 := make([]float64, h2n)
	gradB1 := make([]float64, h1n)
	gradB2 := make([]float64, h2n)
	gradB3 := make([]float64, 1)

	h1 := make([]float64, h1n)
	h2 := make([]float64, h2n)
	d2 := make([]float64, h2n)
	d1 := make([]float64, h1n)

	// Column-major working set. The hot per-sample loops walk one input
	// column at a time and update every output unit's accumulator from it:
	// each accumulator r still receives exactly b[r] + w[r][0]*x[0] +
	// w[r][1]*x[1] + ... in ascending column order — the same left-to-right
	// association as dotFrom — so the trained weights are bit-identical to
	// the historical row-major loops. The payoff is instruction-level
	// parallelism: a single row's dot product is one latency-bound chain of
	// dependent adds, while the column walk advances h1n independent chains
	// per cache-friendly sequential load. Layer 1 lives entirely in the
	// transposed layout for the duration of training — weights, gradient,
	// and Adam moments alike. L2 decay and Adam are strictly elementwise
	// (each parameter's update depends only on its own gradient and moment
	// history, plus step-count scalars), so a consistent permutation of
	// parameter order leaves every trained value bit-identical; the tile is
	// folded back to row-major m.w1 once, after the final batch. Layer 2's
	// transposed tile is refreshed after each Adam step (it is read
	// row-major in the backward pass, so it keeps its canonical layout).
	w1t := make([]float64, in*h1n)
	w2t := make([]float64, h1n*h2n)
	g1t := make([]float64, in*h1n)
	transpose(w1t, m.w1, h1n, in)
	transpose(w2t, m.w2, h2n, h1n)
	d1nzIdx := make([]int32, h1n)
	d1nzVal := make([]float64, h1n)

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	var lastLoss float64
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("nn: training canceled at epoch %d: %w", epoch, err)
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += m.cfg.BatchSize {
			end := min(start+m.cfg.BatchSize, len(idx))
			bs := float64(end - start)
			zero(g1t)
			zero(gradW2)
			zero(gradW3)
			zero(gradB1)
			zero(gradB2)
			gradB3[0] = 0

			for _, i := range idx[start:end] {
				x := at(i)
				if fusedValidate && epoch == 0 {
					if err := validateSample(x, y[i], i); err != nil {
						return 0, err
					}
				}
				// Forward, column-major: four input columns per pass, each
				// accumulator taking its four products in ascending column
				// order — the identical add sequence to dotFrom, at roughly
				// half the instructions per multiply-add (the accumulator
				// load/store and loop overhead amortize over four columns).
				copy(h1, m.b1)
				colMajorAccum(h1, w1t, x, in)
				for r, s := range h1 {
					if s < 0 {
						h1[r] = 0
					}
				}
				copy(h2, m.b2)
				colMajorAccum(h2, w2t, h1, h1n)
				for r, s := range h2 {
					if s < 0 {
						h2[r] = 0
					}
				}
				p := sigmoid(dotFrom(m.b3, m.w3, h2))

				t := y[i]
				epochLoss += bceLoss(t, p)
				// dL/dlogit for sigmoid + BCE.
				dOut := (p - t) / bs
				for j := range m.w3 {
					gradW3[j] += dOut * h2[j]
					d2[j] = dOut * m.w3[j]
					if h2[j] <= 0 {
						d2[j] = 0
					}
				}
				gradB3[0] += dOut
				for j := range d1 {
					d1[j] = 0
				}
				for r := 0; r < h2n; r++ {
					d2r := d2[r]
					if d2r == 0 {
						continue
					}
					// Reslice scratch views to the row length so the inner
					// loop runs without bounds checks; per-element arithmetic
					// order is unchanged.
					row := m.w2[r*h1n : (r+1)*h1n]
					g := gradW2[r*h1n : r*h1n+len(row)]
					hr := h1[:len(row)]
					dr := d1[:len(row)]
					for c, w := range row {
						g[c] += d2r * hr[c]
						dr[c] += d2r * w
					}
					gradB2[r] += d2r
				}
				// Compact the surviving layer-1 deltas (ReLU kills about
				// half), then scatter the outer product into the transposed
				// gradient tile column by column. Each g1t element receives
				// the same single d1[r]*x[c] add per sample as the row-major
				// loop did — only the (r, c) visit order changes, and every
				// element is visited at most once per sample, so batch
				// accumulation order per element is preserved exactly.
				k := 0
				for r, v := range d1 {
					if h1[r] <= 0 {
						continue
					}
					if v == 0 {
						continue
					}
					d1nzIdx[k] = int32(r)
					d1nzVal[k] = v
					gradB1[r] += v
					k++
				}
				nzIdx := d1nzIdx[:k]
				nzVal := d1nzVal[:k]
				scatterOuter(g1t, nzIdx, nzVal, x, in, h1n)
			}

			// L2 decay + Adam updates. Layer 1 updates in place on the
			// transposed tile (elementwise math is layout-blind); the
			// other tensors update on their canonical flat layouts.
			addL2(g1t, w1t, m.cfg.L2)
			optW1.step(w1t, g1t, m.cfg.LR)
			addL2(gradW2, m.w2, m.cfg.L2)
			optW2.step(m.w2, gradW2, m.cfg.LR)
			addL2(gradW3, m.w3, m.cfg.L2)
			optW3.step(m.w3, gradW3, m.cfg.LR)
			optB1.step(m.b1, gradB1, m.cfg.LR)
			optB2.step(m.b2, gradB2, m.cfg.LR)
			b3 := [1]float64{m.b3}
			optB3.step(b3[:], gradB3, m.cfg.LR)
			m.b3 = b3[0]
			transpose(w2t, m.w2, h2n, h1n)
		}
		lastLoss = epochLoss / float64(len(idx))
		if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
			return 0, fmt.Errorf("nn: non-finite training loss %v at epoch %d", lastLoss, epoch)
		}
	}
	// Fold the transposed layer-1 tile back to the canonical row-major
	// layout the inference path reads.
	transpose(m.w1, w1t, in, h1n)
	m.trained = true
	return lastLoss, nil
}

// colMajorAccum adds W·x into acc against the transposed weight tile wt
// (in columns of len(acc), column c at wt[c*len(acc):]). Accumulator r
// receives w[r][0]*x[0] + w[r][1]*x[1] + ... strictly in ascending column
// order — dotFrom's exact left-to-right association, so results are
// bit-identical to the row-major loops — but the columns advance len(acc)
// independent dependency chains, and processing four columns per pass
// amortizes the accumulator load/store and loop overhead across four
// multiply-adds.
func colMajorAccum(acc, wt, x []float64, in int) {
	n := len(acc)
	c := 0
	for ; c+4 <= in; c += 4 {
		x0, x1, x2, x3 := x[c], x[c+1], x[c+2], x[c+3]
		c0 := wt[(c+0)*n:][:n]
		c1 := wt[(c+1)*n:][:n]
		c2 := wt[(c+2)*n:][:n]
		c3 := wt[(c+3)*n:][:n]
		a := acc[:n]
		for r := range a {
			s := a[r] + c0[r]*x0
			s += c1[r] * x1
			s += c2[r] * x2
			s += c3[r] * x3
			a[r] = s
		}
	}
	for ; c < in; c++ {
		xc := x[c]
		col := wt[c*n:][:n]
		a := acc[:n]
		for r := range a {
			a[r] += col[r] * xc
		}
	}
}

// scatterOuter accumulates the outer product of the compacted deltas
// (nzVal at rows nzIdx) and the input x into the transposed gradient tile
// gt (in columns of width rows). Every gt element receives at most one
// d*x add per sample — the same single add the row-major loop performed —
// so batch accumulation order per element is unchanged; four input columns
// per pass amortize the index and delta loads.
func scatterOuter(gt []float64, nzIdx []int32, nzVal []float64, x []float64, in, rows int) {
	c := 0
	for ; c+4 <= in; c += 4 {
		x0, x1, x2, x3 := x[c], x[c+1], x[c+2], x[c+3]
		g0 := gt[(c+0)*rows:][:rows]
		g1 := gt[(c+1)*rows:][:rows]
		g2 := gt[(c+2)*rows:][:rows]
		g3 := gt[(c+3)*rows:][:rows]
		for j, r := range nzIdx {
			v := nzVal[j]
			g0[r] += v * x0
			g1[r] += v * x1
			g2[r] += v * x2
			g3[r] += v * x3
		}
	}
	for ; c < in; c++ {
		xc := x[c]
		col := gt[c*rows:][:rows]
		for j, r := range nzIdx {
			col[r] += nzVal[j] * xc
		}
	}
}

// transpose fills dst (a flat cols x rows matrix) with the transpose of
// src (a flat rows x cols matrix). Values are copied verbatim, so the
// column-major training tiles hold exactly the same float64 bits as the
// canonical row-major weights.
func transpose(dst, src []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		for c, v := range row {
			dst[c*rows+r] = v
		}
	}
}

func bceLoss(t, p float64) float64 {
	const eps = 1e-12
	return -(t*math.Log(p+eps) + (1-t)*math.Log(1-p+eps))
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func addL2(grads, params []float64, l2 float64) {
	if l2 == 0 {
		return
	}
	for i := range grads {
		grads[i] += l2 * params[i]
	}
}

// Predict returns the error probability for a single feature vector. It is
// allocation-free in steady state and safe for concurrent use.
func (m *MLP) Predict(x []float64) float64 {
	sc := m.getScratch()
	p := m.forward(x, sc.h1, sc.h2)
	m.scratch.Put(sc)
	return p
}

// PredictInto runs batched inference over a flat row-major feature tile:
// X holds nRows vectors of the model's input dimension back to back, and
// out (length >= nRows) receives the error probability of each row. The
// activation scratch is pooled, so steady-state calls allocate nothing,
// and many goroutines may score against one fitted model concurrently.
func (m *MLP) PredictInto(X []float64, nRows int, out []float64) {
	if nRows <= 0 {
		return
	}
	dim := m.in
	sc := m.getScratch()
	for r := 0; r < nRows; r++ {
		out[r] = m.forward(X[r*dim:(r+1)*dim], sc.h1, sc.h2)
	}
	m.scratch.Put(sc)
}

// PredictBatch returns error probabilities for many feature vectors,
// reusing scratch buffers.
func (m *MLP) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	sc := m.getScratch()
	for i, x := range X {
		out[i] = m.forward(x, sc.h1, sc.h2)
	}
	m.scratch.Put(sc)
	return out
}

func (m *MLP) getScratch() *fwdScratch { return m.scratch.Get().(*fwdScratch) }

// InputDim returns the model's input dimensionality.
func (m *MLP) InputDim() int { return m.in }

// Trained reports whether Train has completed successfully.
func (m *MLP) Trained() bool { return m.trained }
