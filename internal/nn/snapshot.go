package nn

import "fmt"

// Snapshot is the complete serializable state of a fitted MLP: the layer
// shape plus the flat row-major weight and bias buffers. It is the unit the
// model-artifact codec persists; FromSnapshot reconstructs an MLP whose
// inference is bit-identical to the snapshotted one (the forward pass is a
// pure function of these float64 buffers).
type Snapshot struct {
	In      int
	Hidden1 int
	Hidden2 int
	W1      []float64 // Hidden1 x In, row-major
	W2      []float64 // Hidden2 x Hidden1, row-major
	W3      []float64 // len Hidden2
	B1      []float64 // len Hidden1
	B2      []float64 // len Hidden2
	B3      float64
	Trained bool
}

// Snapshot captures the MLP's weights into a freshly allocated snapshot.
// The copies are deep, so later training of the source never aliases into a
// saved artifact.
func (m *MLP) Snapshot() *Snapshot {
	return &Snapshot{
		In:      m.in,
		Hidden1: m.cfg.Hidden1,
		Hidden2: m.cfg.Hidden2,
		W1:      append([]float64(nil), m.w1...),
		W2:      append([]float64(nil), m.w2...),
		W3:      append([]float64(nil), m.w3...),
		B1:      append([]float64(nil), m.b1...),
		B2:      append([]float64(nil), m.b2...),
		B3:      m.b3,
		Trained: m.trained,
	}
}

// FromSnapshot reconstructs an inference-ready MLP from a snapshot,
// validating the shape invariants so a corrupt or hand-built snapshot
// surfaces as an error rather than an out-of-range panic on the first
// forward pass. The restored model predicts bit-identically to the
// snapshotted one; its training hyperparameters are the defaults, because a
// restored artifact exists to score, not to train on.
func FromSnapshot(s *Snapshot) (*MLP, error) {
	if s == nil {
		return nil, fmt.Errorf("nn: nil snapshot")
	}
	if s.In <= 0 || s.Hidden1 <= 0 || s.Hidden2 <= 0 {
		return nil, fmt.Errorf("nn: snapshot has non-positive shape %dx%dx%d", s.In, s.Hidden1, s.Hidden2)
	}
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"w1", len(s.W1), s.Hidden1 * s.In},
		{"w2", len(s.W2), s.Hidden2 * s.Hidden1},
		{"w3", len(s.W3), s.Hidden2},
		{"b1", len(s.B1), s.Hidden1},
		{"b2", len(s.B2), s.Hidden2},
	} {
		if c.got != c.want {
			return nil, fmt.Errorf("nn: snapshot %s has %d weights, want %d", c.name, c.got, c.want)
		}
	}
	cfg := DefaultConfig()
	cfg.Hidden1 = s.Hidden1
	cfg.Hidden2 = s.Hidden2
	m := &MLP{cfg: cfg, in: s.In}
	m.w1 = append([]float64(nil), s.W1...)
	m.w2 = append([]float64(nil), s.W2...)
	m.w3 = append([]float64(nil), s.W3...)
	m.b1 = append([]float64(nil), s.B1...)
	m.b2 = append([]float64(nil), s.B2...)
	m.b3 = s.B3
	m.trained = s.Trained
	m.scratch.New = func() any {
		return &fwdScratch{
			h1: make([]float64, cfg.Hidden1),
			h2: make([]float64, cfg.Hidden2),
		}
	}
	return m, nil
}
