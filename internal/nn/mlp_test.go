package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// xorData builds the classic non-linearly-separable XOR problem with noise,
// which a linear model cannot solve — proving the hidden layers work.
func xorData(rng *rand.Rand, n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := float64(rng.Intn(2))
		b := float64(rng.Intn(2))
		X[i] = []float64{a + rng.NormFloat64()*0.05, b + rng.NormFloat64()*0.05}
		if (a == 1) != (b == 1) {
			y[i] = 1
		}
	}
	return X, y
}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 400)
	cfg := DefaultConfig()
	cfg.Epochs = 120
	m := New(2, cfg)
	loss, err := m.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.2 {
		t.Errorf("final loss = %v, want < 0.2", loss)
	}
	correct := 0
	Xt, yt := xorData(rand.New(rand.NewSource(2)), 200)
	for i, x := range Xt {
		p := m.Predict(x)
		if (p > 0.5) == (yt[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	m := New(3, DefaultConfig())
	if _, err := m.Train(nil, nil); err == nil {
		t.Error("empty training set must error")
	}
	if _, err := m.Train([][]float64{{1, 2, 3}}, []float64{1, 0}); err == nil {
		t.Error("label/sample mismatch must error")
	}
	if _, err := m.Train([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("dimension mismatch must error")
	}
	if m.Trained() {
		t.Error("failed training must not mark model trained")
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(rng, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	a := New(2, cfg)
	b := New(2, cfg)
	la, _ := a.Train(X, y)
	lb, _ := b.Train(X, y)
	if la != lb {
		t.Errorf("same seed must give identical loss: %v vs %v", la, lb)
	}
	probe := []float64{0.5, 0.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed must give identical predictions")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := xorData(rng, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X[:10])
	for i := 0; i < 10; i++ {
		if math.Abs(batch[i]-m.Predict(X[i])) > 1e-12 {
			t.Fatal("PredictBatch must match Predict")
		}
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := xorData(rng, 50)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		p := m.Predict(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Predict = %v out of [0,1]", p)
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v, want 1", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v, want 0", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %v, want 0.5", s)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	m := New(4, Config{}) // all zero: every default should kick in
	X := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}}
	y := []float64{0, 1}
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Error("model should be trained")
	}
}

// TestPredictIntoMatchesPredict pins the flat-tile inference path to the
// single-vector path bit for bit.
func TestPredictIntoMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := xorData(rng, 120)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	n := 32
	tile := make([]float64, n*2)
	for i := 0; i < n; i++ {
		copy(tile[i*2:], X[i])
	}
	out := make([]float64, n)
	m.PredictInto(tile, n, out)
	for i := 0; i < n; i++ {
		if got, want := out[i], m.Predict(X[i]); got != want {
			t.Fatalf("PredictInto[%d] = %v, Predict = %v", i, got, want)
		}
	}
	// nRows <= 0 is a no-op.
	m.PredictInto(nil, 0, nil)
}

// TestPredictZeroAlloc guards the steady-state allocation-free contract of
// the inference paths.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode bypasses sync.Pool caching; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(12))
	X, y := xorData(rng, 80)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	x := X[0]
	if allocs := testing.AllocsPerRun(200, func() { m.Predict(x) }); allocs != 0 {
		t.Errorf("Predict allocates %v per run, want 0", allocs)
	}
	tile := make([]float64, 16*2)
	out := make([]float64, 16)
	for i := 0; i < 16; i++ {
		copy(tile[i*2:], X[i])
	}
	if allocs := testing.AllocsPerRun(200, func() { m.PredictInto(tile, 16, out) }); allocs != 0 {
		t.Errorf("PredictInto allocates %v per run, want 0", allocs)
	}
}

// TestPredictConcurrentSafe runs concurrent inference against one fitted
// model; pooled scratch must keep results identical to serial calls.
func TestPredictConcurrentSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := xorData(rng, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(X))
	for i, x := range X {
		want[i] = m.Predict(x)
	}
	var wg sync.WaitGroup
	errs := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, x := range X {
					if m.Predict(x) != want[i] {
						errs[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, n := range errs {
		if n != 0 {
			t.Fatalf("goroutine %d saw %d mismatched predictions", g, n)
		}
	}
}

func BenchmarkTrainSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 200)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(2, cfg)
		if _, err := m.Train(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

// TestGradientNumerically verifies backpropagation against a finite
// difference approximation of the loss gradient, on a tiny network where
// one SGD-like step must reduce loss in the direction backprop indicates.
func TestGradientNumerically(t *testing.T) {
	cfg := Config{Hidden1: 4, Hidden2: 3, LR: 0.05, Epochs: 1, BatchSize: 1, Seed: 5}
	X := [][]float64{{0.3, -0.7}}
	y := []float64{1}

	loss := func(m *MLP) float64 {
		p := m.Predict(X[0])
		return bceLoss(y[0], p)
	}
	// Finite difference on one weight (flat index 0 = row 0, col 0).
	base := New(2, cfg)
	l0 := loss(base)
	const eps = 1e-6
	base.w1[0] += eps
	l1 := loss(base)
	base.w1[0] -= eps
	numGrad := (l1 - l0) / eps

	// One full training step on a single sample approximates a gradient
	// step: the weight must move opposite the numerical gradient (when the
	// gradient is non-negligible).
	trained := New(2, cfg)
	before := trained.w1[0]
	if _, err := trained.Train(X, y); err != nil {
		t.Fatal(err)
	}
	after := trained.w1[0]
	if numGrad > 1e-4 && after >= before {
		t.Errorf("positive gradient %v but weight moved %v -> %v", numGrad, before, after)
	}
	if numGrad < -1e-4 && after <= before {
		t.Errorf("negative gradient %v but weight moved %v -> %v", numGrad, before, after)
	}
}

// TestLossDecreasesOverEpochs checks monotone-ish optimization progress.
func TestLossDecreasesOverEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := xorData(rng, 200)
	short := Config{Hidden1: 16, Hidden2: 8, LR: 1e-3, Epochs: 2, BatchSize: 16, Seed: 7}
	long := short
	long.Epochs = 60
	a := New(2, short)
	la, _ := a.Train(X, y)
	b := New(2, long)
	lb, _ := b.Train(X, y)
	if lb >= la {
		t.Errorf("loss after 60 epochs (%v) should beat 2 epochs (%v)", lb, la)
	}
}

// TestClassImbalanceStillLearns mirrors the pipeline's real conditions:
// ~10% positive class.
func TestClassImbalanceStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		if i%10 == 0 {
			X = append(X, []float64{1 + rng.NormFloat64()*0.1, 0})
			y = append(y, 1)
		} else {
			X = append(X, []float64{rng.NormFloat64() * 0.1, 0})
			y = append(y, 0)
		}
	}
	cfg := DefaultConfig()
	cfg.Epochs = 40
	m := New(2, cfg)
	if _, err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{1, 0}); p < 0.5 {
		t.Errorf("positive-region probability = %v, want >= 0.5 despite imbalance", p)
	}
	if p := m.Predict([]float64{0, 0}); p > 0.5 {
		t.Errorf("negative-region probability = %v, want < 0.5", p)
	}
}
