//go:build !race

package nn

// raceEnabled reports whether this test binary runs under the race
// detector; see race_test.go.
const raceEnabled = false
