//go:build race

package nn

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool deliberately bypasses its caches (to widen race
// coverage), making allocation-count assertions meaningless.
const raceEnabled = true
