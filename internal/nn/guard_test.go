package nn

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func guardCfg() Config {
	return Config{Hidden1: 4, Hidden2: 3, LR: 1e-3, Epochs: 3, BatchSize: 4, Seed: 1}
}

// TestTrainRejectsNonFiniteFeatures pins that NaN/Inf feature values are
// rejected up front rather than poisoning the weights.
func TestTrainRejectsNonFiniteFeatures(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := New(3, guardCfg())
		X := [][]float64{{1, 2, 3}, {4, bad, 6}}
		y := []float64{0, 1}
		if _, err := m.Train(X, y); err == nil {
			t.Errorf("Train with feature %v must error", bad)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("error %q should name the non-finite input", err)
		}
		if m.Trained() {
			t.Error("failed Train must not mark the model trained")
		}
	}
}

// TestTrainRejectsNonFiniteLabels mirrors the feature guard on y.
func TestTrainRejectsNonFiniteLabels(t *testing.T) {
	m := New(2, guardCfg())
	if _, err := m.Train([][]float64{{1, 2}, {3, 4}}, []float64{0, math.NaN()}); err == nil {
		t.Fatal("Train with a NaN label must error")
	}
}

// TestTrainAbortsOnDivergedLoss pins the epoch-loss guard: a diverging run
// (absurd learning rate on an extreme-valued problem) must abort with a
// non-finite-loss error instead of training onward through NaNs.
func TestTrainAbortsOnDivergedLoss(t *testing.T) {
	cfg := guardCfg()
	cfg.LR = 1e300 // guarantees overflow within an epoch or two
	cfg.Epochs = 50
	m := New(2, cfg)
	X := [][]float64{{1e8, -1e8}, {-1e8, 1e8}, {1e8, 1e8}, {-1e8, -1e8}}
	y := []float64{0, 1, 0, 1}
	_, err := m.Train(X, y)
	if err == nil {
		t.Skip("this configuration converged finitely; guard not exercised")
	}
	if !strings.Contains(err.Error(), "non-finite training loss") {
		t.Fatalf("expected the non-finite loss guard, got: %v", err)
	}
	if m.Trained() {
		t.Error("diverged Train must not mark the model trained")
	}
}

// TestTrainContextCanceled pins per-epoch cancellation.
func TestTrainContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(2, guardCfg())
	_, err := m.TrainContext(ctx, [][]float64{{1, 2}, {3, 4}}, []float64{0, 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext with canceled ctx = %v, want context.Canceled", err)
	}
}
