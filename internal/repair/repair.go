// Package repair turns ZeroED detections into repair suggestions — the
// downstream half of the data-cleaning loop the paper's introduction
// motivates (and the subject of the authors' companion work on automatic
// data repair). Given a dirty dataset and a predicted error mask, the
// repairer proposes a replacement value per flagged cell using the same
// evidence the detector reasons over: functional dependencies mined from
// the unflagged portion of the data, frequent-value domains for typo
// correction, and column medians for numeric outliers. Cells without a
// confident fix are left untouched (repair must not invent data).
//
// Evidence mining and fix lookup run on the dataset's value-ID path: column
// statistics are computed once per distinct dictionary value (weighted by
// occurrence count), dependency rules are indexed by determinant value ID,
// and non-FD fixes are memoized per (column, value ID) — so repairing a
// table costs O(rows) ID scans plus O(distinct values) string work, like
// the detector's own featurization. Proposals are deterministic: the same
// dataset and mask always produce the same fixes in the same order.
package repair

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// Strategy names the evidence used for one repair.
type Strategy string

// Repair strategies, in the priority order Apply tries them.
const (
	StrategyFD     Strategy = "fd"     // dependency-implied value
	StrategyTypo   Strategy = "typo"   // nearest frequent value
	StrategyMedian Strategy = "median" // numeric column median
	StrategyMode   Strategy = "mode"   // dominant categorical value
	StrategyNone   Strategy = "none"   // no confident fix
)

// Fix is one proposed repair.
type Fix struct {
	Row, Col int
	Old, New string
	Strategy Strategy
}

// Config tunes the repairer.
type Config struct {
	// FDMinSupport is the minimum support for a mined dependency to drive
	// repairs (default 0.9).
	FDMinSupport float64
	// TypoMaxDist bounds edit distance for typo correction (default 2).
	TypoMaxDist int
	// MinFrequent is the minimum occurrences for a repair-target value
	// (default 3).
	MinFrequent int
	// ModeMinShare is the minimum share of the dominant value for
	// mode-based missing-value repair (default 0.9).
	ModeMinShare float64
}

func (c Config) withDefaults() Config {
	if c.FDMinSupport <= 0 {
		c.FDMinSupport = 0.9
	}
	if c.TypoMaxDist <= 0 {
		c.TypoMaxDist = 2
	}
	if c.MinFrequent <= 0 {
		c.MinFrequent = 3
	}
	if c.ModeMinShare <= 0 {
		c.ModeMinShare = 0.9
	}
	return c
}

// Repairer proposes fixes for flagged cells.
type Repairer struct {
	cfg Config
}

// New creates a repairer; zero config fields assume defaults.
func New(cfg Config) *Repairer { return &Repairer{cfg: cfg.withDefaults()} }

// columnEvidence is the per-attribute repair knowledge mined from cells
// the detector did NOT flag (trusting detected-clean data only).
type columnEvidence struct {
	frequent   []string // frequent values, by descending count
	counts     map[string]int
	numeric    bool
	median     float64
	mode       string
	modeShare  float64
	totalClean int
}

// memoFix caches the non-FD fix for one distinct flagged value of one
// column: typo, median, and mode repairs depend only on the old value and
// the column evidence, so every later cell holding the same value ID reuses
// the lookup.
type memoFix struct {
	val   string
	strat Strategy
}

// Propose returns repair suggestions for every flagged cell it can fix
// confidently. It does not modify the dataset.
func (r *Repairer) Propose(d *table.Dataset, mask [][]bool) []Fix {
	m := d.NumCols()
	ev := make([]columnEvidence, m)
	for j := 0; j < m; j++ {
		ev[j] = mineColumn(d, mask, j, r.cfg)
	}

	// Mine dependencies with the flagged cells nulled out (cloning keeps
	// d's value IDs intact, so the rules below can be indexed by d's IDs).
	var fds []fdRule
	cleanView := unflaggedView(d, mask)
	for det := 0; det < m; det++ {
		if ev[det].totalClean == 0 || len(ev[det].counts) > cleanView.NumRows()/2 {
			continue // near-key determinants repair nothing reliably
		}
		for dep := 0; dep < m; dep++ {
			if det == dep {
				continue
			}
			fd := stats.FindFD(cleanView, det, dep)
			if fd.Support >= r.cfg.FDMinSupport && len(fd.Mapping) >= 2 {
				fds = append(fds, newFDRule(d, det, dep, fd.Mapping))
			}
		}
	}

	memo := make([]map[uint32]memoFix, m)
	var fixes []Fix
	for i := 0; i < d.NumRows(); i++ {
		for j := 0; j < m; j++ {
			if !mask[i][j] {
				continue
			}
			old := d.Value(i, j)
			if fix, strat := r.fixCell(d, i, j, old, &ev[j], fds, mask, memo); strat != StrategyNone && fix != old {
				fixes = append(fixes, Fix{Row: i, Col: j, Old: old, New: fix, Strategy: strat})
			}
		}
	}
	return fixes
}

// fdRule is one mined dependency det -> dep, its replacement values indexed
// by the determinant's value ID in the dirty dataset.
type fdRule struct {
	det, dep int
	want     []string // want[id] replaces dep when det holds value ID id
	has      []bool   // has[id] marks a usable (non-empty) replacement
}

func newFDRule(d *table.Dataset, det, dep int, mapping map[string]string) fdRule {
	n := d.DictSize(det)
	rule := fdRule{det: det, dep: dep, want: make([]string, n), has: make([]bool, n)}
	for id := 0; id < n; id++ {
		if w, ok := mapping[d.DictValue(det, uint32(id))]; ok && w != "" {
			rule.want[id] = w
			rule.has[id] = true
		}
	}
	return rule
}

// fixCell tries the repair strategies in priority order.
func (r *Repairer) fixCell(d *table.Dataset, i, j int, old string, ev *columnEvidence, fds []fdRule, mask [][]bool, memo []map[uint32]memoFix) (string, Strategy) {
	// 1. Dependency-implied value: the strongest evidence — an unflagged
	// determinant value whose group has a dominant dependent value. This is
	// the one per-cell lookup (the determinant varies by row); it costs one
	// value-ID index per rule.
	for _, fd := range fds {
		if fd.dep != j || mask[i][fd.det] {
			continue
		}
		if id := d.ValueID(i, fd.det); fd.has[id] {
			return fd.want[id], StrategyFD
		}
	}
	// The remaining strategies depend only on (column, old value): resolve
	// once per distinct flagged value ID and replay from the memo.
	oldID := d.ValueID(i, j)
	if f, ok := memo[j][oldID]; ok {
		return f.val, f.strat
	}
	val, strat := r.fixValue(old, ev)
	if memo[j] == nil {
		memo[j] = make(map[uint32]memoFix)
	}
	memo[j][oldID] = memoFix{val: val, strat: strat}
	return val, strat
}

// fixValue resolves the value-level strategies for one distinct old value.
func (r *Repairer) fixValue(old string, ev *columnEvidence) (string, Strategy) {
	// 2. Typo correction: nearest frequent value within the edit bound.
	if !text.IsNullLike(old) {
		bestVal, bestDist := "", r.cfg.TypoMaxDist+1
		lo := strings.ToLower(old)
		for _, fv := range ev.frequent {
			dist := text.Levenshtein(lo, strings.ToLower(fv))
			if dist > 0 && dist < bestDist {
				bestVal, bestDist = fv, dist
			}
		}
		if bestVal != "" {
			return bestVal, StrategyTypo
		}
	}
	// 3. Numeric outliers: column median.
	if ev.numeric && !text.IsNullLike(old) {
		if _, ok := text.ParseFloat(old); ok {
			return formatFloat(ev.median), StrategyMedian
		}
	}
	// 4. Missing values in near-constant columns: the dominant value.
	if text.IsNullLike(old) && ev.modeShare >= r.cfg.ModeMinShare && ev.mode != "" {
		return ev.mode, StrategyMode
	}
	return "", StrategyNone
}

// Apply copies the dataset and applies all proposed fixes, returning the
// repaired copy and the fixes.
func (r *Repairer) Apply(d *table.Dataset, mask [][]bool) (*table.Dataset, []Fix) {
	fixes := r.Propose(d, mask)
	out := d.Clone()
	for _, f := range fixes {
		out.SetValue(f.Row, f.Col, f.New)
	}
	return out, fixes
}

// mineColumn builds repair evidence for one attribute from unflagged cells.
// It scans the column's value IDs once, then does all string work — null
// detection, numeric parsing, frequency ranking — per distinct dictionary
// value, weighted by its clean occurrence count.
func mineColumn(d *table.Dataset, mask [][]bool, j int, cfg Config) columnEvidence {
	ev := columnEvidence{counts: map[string]int{}}
	idCounts := make([]int, d.DictSize(j))
	for i, id := range d.ColumnIDs(j) {
		if mask[i][j] {
			continue
		}
		idCounts[id]++
	}
	numericTotal := 0
	var nums []float64
	for id, c := range idCounts {
		if c == 0 {
			continue
		}
		v := d.DictValue(j, uint32(id))
		if text.IsNullLike(v) {
			continue
		}
		ev.counts[v] = c // dictionary values are distinct; no accumulation
		ev.totalClean += c
		if f, ok := text.ParseFloat(v); ok {
			numericTotal += c
			for k := 0; k < c; k++ {
				nums = append(nums, f)
			}
		}
	}
	if ev.totalClean == 0 {
		return ev
	}
	for v, c := range ev.counts {
		if c >= cfg.MinFrequent {
			ev.frequent = append(ev.frequent, v)
		}
		if c > ev.counts[ev.mode] || (c == ev.counts[ev.mode] && v < ev.mode) {
			ev.mode = v
		}
	}
	sort.Slice(ev.frequent, func(a, b int) bool {
		ca, cb := ev.counts[ev.frequent[a]], ev.counts[ev.frequent[b]]
		if ca != cb {
			return ca > cb
		}
		return ev.frequent[a] < ev.frequent[b]
	})
	if len(ev.frequent) > 200 {
		ev.frequent = ev.frequent[:200]
	}
	ev.modeShare = float64(ev.counts[ev.mode]) / float64(ev.totalClean)
	// Numeric when at least 90% of the clean non-null occurrences parse —
	// the same threshold text.IsNumericColumn applies to raw value slices.
	if float64(numericTotal)/float64(ev.totalClean) >= 0.9 {
		ev.numeric = true
		ev.median = stats.Quantile(nums, 0.5)
	}
	return ev
}

// unflaggedView clones the dataset with flagged cells nulled out so
// dependency mining ignores them. Cloning (rather than re-interning every
// row) keeps the original value IDs valid in the view.
func unflaggedView(d *table.Dataset, mask [][]bool) *table.Dataset {
	out := d.Clone()
	for i := 0; i < out.NumRows(); i++ {
		for j := 0; j < out.NumCols(); j++ {
			if mask[i][j] {
				out.SetValue(i, j, "")
			}
		}
	}
	return out
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
