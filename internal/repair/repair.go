// Package repair turns ZeroED detections into repair suggestions — the
// downstream half of the data-cleaning loop the paper's introduction
// motivates (and the subject of the authors' companion work on automatic
// data repair). Given a dirty dataset and a predicted error mask, the
// repairer proposes a replacement value per flagged cell using the same
// evidence the detector reasons over: functional dependencies mined from
// the unflagged portion of the data, frequent-value domains for typo
// correction, and column medians for numeric outliers. Cells without a
// confident fix are left untouched (repair must not invent data).
package repair

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// Strategy names the evidence used for one repair.
type Strategy string

// Repair strategies, in the priority order Apply tries them.
const (
	StrategyFD     Strategy = "fd"     // dependency-implied value
	StrategyTypo   Strategy = "typo"   // nearest frequent value
	StrategyMedian Strategy = "median" // numeric column median
	StrategyMode   Strategy = "mode"   // dominant categorical value
	StrategyNone   Strategy = "none"   // no confident fix
)

// Fix is one proposed repair.
type Fix struct {
	Row, Col int
	Old, New string
	Strategy Strategy
}

// Config tunes the repairer.
type Config struct {
	// FDMinSupport is the minimum support for a mined dependency to drive
	// repairs (default 0.9).
	FDMinSupport float64
	// TypoMaxDist bounds edit distance for typo correction (default 2).
	TypoMaxDist int
	// MinFrequent is the minimum occurrences for a repair-target value
	// (default 3).
	MinFrequent int
	// ModeMinShare is the minimum share of the dominant value for
	// mode-based missing-value repair (default 0.9).
	ModeMinShare float64
}

func (c Config) withDefaults() Config {
	if c.FDMinSupport <= 0 {
		c.FDMinSupport = 0.9
	}
	if c.TypoMaxDist <= 0 {
		c.TypoMaxDist = 2
	}
	if c.MinFrequent <= 0 {
		c.MinFrequent = 3
	}
	if c.ModeMinShare <= 0 {
		c.ModeMinShare = 0.9
	}
	return c
}

// Repairer proposes fixes for flagged cells.
type Repairer struct {
	cfg Config
}

// New creates a repairer; zero config fields assume defaults.
func New(cfg Config) *Repairer { return &Repairer{cfg: cfg.withDefaults()} }

// columnEvidence is the per-attribute repair knowledge mined from cells
// the detector did NOT flag (trusting detected-clean data only).
type columnEvidence struct {
	frequent   []string // frequent values, by descending count
	counts     map[string]int
	numeric    bool
	median     float64
	mode       string
	modeShare  float64
	totalClean int
}

// Propose returns repair suggestions for every flagged cell it can fix
// confidently. It does not modify the dataset.
func (r *Repairer) Propose(d *table.Dataset, mask [][]bool) []Fix {
	m := d.NumCols()
	ev := make([]columnEvidence, m)
	for j := 0; j < m; j++ {
		ev[j] = mineColumn(d, mask, j, r.cfg)
	}

	// Mine dependencies on the unflagged rows only.
	var fds []fdRule
	cleanView := unflaggedSubset(d, mask)
	for det := 0; det < m; det++ {
		if ev[det].totalClean == 0 || len(ev[det].counts) > cleanView.NumRows()/2 {
			continue // near-key determinants repair nothing reliably
		}
		for dep := 0; dep < m; dep++ {
			if det == dep {
				continue
			}
			fd := stats.FindFD(cleanView, det, dep)
			if fd.Support >= r.cfg.FDMinSupport && len(fd.Mapping) >= 2 {
				fds = append(fds, fdRule{det, dep, fd.Mapping})
			}
		}
	}

	var fixes []Fix
	for i := 0; i < d.NumRows(); i++ {
		for j := 0; j < m; j++ {
			if !mask[i][j] {
				continue
			}
			old := d.Value(i, j)
			if fix, strat := r.fixCell(d, i, j, old, &ev[j], fds, mask); strat != StrategyNone && fix != old {
				fixes = append(fixes, Fix{Row: i, Col: j, Old: old, New: fix, Strategy: strat})
			}
		}
	}
	return fixes
}

type fdRule struct {
	det, dep int
	mapping  map[string]string
}

// fixCell tries the repair strategies in priority order.
func (r *Repairer) fixCell(d *table.Dataset, i, j int, old string, ev *columnEvidence, fds []fdRule, mask [][]bool) (string, Strategy) {
	// 1. Dependency-implied value: the strongest evidence — an unflagged
	// determinant value whose group has a dominant dependent value.
	for _, fd := range fds {
		if fd.dep != j || mask[i][fd.det] {
			continue
		}
		if want, ok := fd.mapping[d.Value(i, fd.det)]; ok && want != "" {
			return want, StrategyFD
		}
	}
	// 2. Typo correction: nearest frequent value within the edit bound.
	if !text.IsNullLike(old) {
		bestVal, bestDist := "", r.cfg.TypoMaxDist+1
		lo := strings.ToLower(old)
		for _, fv := range ev.frequent {
			dist := text.Levenshtein(lo, strings.ToLower(fv))
			if dist > 0 && dist < bestDist {
				bestVal, bestDist = fv, dist
			}
		}
		if bestVal != "" {
			return bestVal, StrategyTypo
		}
	}
	// 3. Numeric outliers: column median.
	if ev.numeric && !text.IsNullLike(old) {
		if _, ok := text.ParseFloat(old); ok {
			return formatFloat(ev.median), StrategyMedian
		}
	}
	// 4. Missing values in near-constant columns: the dominant value.
	if text.IsNullLike(old) && ev.modeShare >= r.cfg.ModeMinShare && ev.mode != "" {
		return ev.mode, StrategyMode
	}
	return "", StrategyNone
}

// Apply copies the dataset and applies all proposed fixes, returning the
// repaired copy and the fixes.
func (r *Repairer) Apply(d *table.Dataset, mask [][]bool) (*table.Dataset, []Fix) {
	fixes := r.Propose(d, mask)
	out := d.Clone()
	for _, f := range fixes {
		out.SetValue(f.Row, f.Col, f.New)
	}
	return out, fixes
}

// mineColumn builds repair evidence for one attribute from unflagged cells.
func mineColumn(d *table.Dataset, mask [][]bool, j int, cfg Config) columnEvidence {
	ev := columnEvidence{counts: map[string]int{}}
	var vals []string
	for i := 0; i < d.NumRows(); i++ {
		if mask[i][j] {
			continue
		}
		v := d.Value(i, j)
		if text.IsNullLike(v) {
			continue
		}
		vals = append(vals, v)
		ev.counts[v]++
	}
	ev.totalClean = len(vals)
	if ev.totalClean == 0 {
		return ev
	}
	for v, c := range ev.counts {
		if c >= cfg.MinFrequent {
			ev.frequent = append(ev.frequent, v)
		}
		if c > ev.counts[ev.mode] || (c == ev.counts[ev.mode] && v < ev.mode) {
			ev.mode = v
		}
	}
	sort.Slice(ev.frequent, func(a, b int) bool {
		ca, cb := ev.counts[ev.frequent[a]], ev.counts[ev.frequent[b]]
		if ca != cb {
			return ca > cb
		}
		return ev.frequent[a] < ev.frequent[b]
	})
	if len(ev.frequent) > 200 {
		ev.frequent = ev.frequent[:200]
	}
	ev.modeShare = float64(ev.counts[ev.mode]) / float64(ev.totalClean)
	if text.IsNumericColumn(vals, 0.9) {
		ev.numeric = true
		ev.median = stats.Quantile(stats.NumericColumn(vals), 0.5)
	}
	return ev
}

// unflaggedSubset builds a dataset view with flagged cells nulled out so
// dependency mining ignores them.
func unflaggedSubset(d *table.Dataset, mask [][]bool) *table.Dataset {
	out := table.New(d.Name, d.Attrs)
	for i := 0; i < d.NumRows(); i++ {
		row := d.Row(i) // Row returns a fresh slice; safe to mutate
		for j := range row {
			if mask[i][j] {
				row[j] = ""
			}
		}
		out.MustAppendRow(row)
	}
	return out
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
