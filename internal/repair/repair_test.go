package repair

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// geo builds a dataset with an FD (Country -> Capital), a categorical
// domain, and a numeric column; flagged holds the injected error cells.
func geo() (*table.Dataset, [][]bool) {
	d := table.New("geo", []string{"Country", "Capital", "Pop"})
	for i := 0; i < 40; i++ {
		d.MustAppendRow([]string{"France", "Paris", "67"})
		d.MustAppendRow([]string{"Japan", "Tokyo", "125"})
	}
	mask := make([][]bool, d.NumRows())
	for i := range mask {
		mask[i] = make([]bool, d.NumCols())
	}
	// Rule violation, typo, outlier, missing.
	d.SetValue(0, 1, "Tokyo")
	mask[0][1] = true
	d.SetValue(2, 1, "Parjs")
	mask[2][1] = true
	d.SetValue(4, 2, "670000")
	mask[4][2] = true
	d.SetValue(6, 0, "")
	mask[6][0] = true
	return d, mask
}

func fixAt(fixes []Fix, row, col int) (Fix, bool) {
	for _, f := range fixes {
		if f.Row == row && f.Col == col {
			return f, true
		}
	}
	return Fix{}, false
}

func TestFDRepair(t *testing.T) {
	d, mask := geo()
	fixes := New(Config{}).Propose(d, mask)
	f, ok := fixAt(fixes, 0, 1)
	if !ok {
		t.Fatal("rule violation not repaired")
	}
	if f.New != "Paris" || f.Strategy != StrategyFD {
		t.Errorf("fix = %+v, want Paris via fd", f)
	}
}

func TestTypoRepair(t *testing.T) {
	d, mask := geo()
	fixes := New(Config{}).Propose(d, mask)
	f, ok := fixAt(fixes, 2, 1)
	if !ok {
		t.Fatal("typo not repaired")
	}
	// The FD implies Paris too; either strategy is acceptable, but the
	// value must be Paris.
	if f.New != "Paris" {
		t.Errorf("typo fix = %+v, want Paris", f)
	}
}

func TestOutlierRepair(t *testing.T) {
	d, mask := geo()
	fixes := New(Config{}).Propose(d, mask)
	f, ok := fixAt(fixes, 4, 2)
	if !ok {
		t.Fatal("outlier not repaired")
	}
	if f.New != "67" {
		t.Errorf("outlier fix = %+v, want column value 67", f)
	}
}

func TestMissingRepairViaFD(t *testing.T) {
	d, mask := geo()
	fixes := New(Config{}).Propose(d, mask)
	// Row 6 is a France row with Country nulled; Capital=Paris determines
	// Country=France on clean rows.
	f, ok := fixAt(fixes, 6, 0)
	if !ok {
		t.Fatal("missing value not repaired")
	}
	if f.New != "France" {
		t.Errorf("missing fix = %+v, want France", f)
	}
}

func TestApplyProducesRepairedCopy(t *testing.T) {
	d, mask := geo()
	before := d.Clone()
	repaired, fixes := New(Config{}).Apply(d, mask)
	if len(fixes) == 0 {
		t.Fatal("no fixes applied")
	}
	// Original untouched.
	for i := 0; i < d.NumRows(); i++ {
		for j := 0; j < d.NumCols(); j++ {
			if d.Value(i, j) != before.Value(i, j) {
				t.Fatal("Apply must not mutate the input")
			}
		}
	}
	if repaired.Value(0, 1) != "Paris" {
		t.Errorf("repaired cell = %q, want Paris", repaired.Value(0, 1))
	}
}

func TestNoConfidentFixLeavesCell(t *testing.T) {
	// A high-cardinality column with no frequent values: nothing to fix to.
	d := table.New("t", []string{"ID"})
	mask := [][]bool{}
	for i := 0; i < 20; i++ {
		d.MustAppendRow([]string{string(rune('a'+i)) + "-unique-xyz"})
		mask = append(mask, []bool{i == 0})
	}
	fixes := New(Config{}).Propose(d, mask)
	if len(fixes) != 0 {
		t.Errorf("no confident fix exists, got %v", fixes)
	}
}

func TestEmptyMaskNoFixes(t *testing.T) {
	d, _ := geo()
	mask := make([][]bool, d.NumRows())
	for i := range mask {
		mask[i] = make([]bool, d.NumCols())
	}
	if fixes := New(Config{}).Propose(d, mask); len(fixes) != 0 {
		t.Errorf("clean mask should yield no fixes, got %d", len(fixes))
	}
}

// TestDetectThenRepair is the integration test for the full cleaning loop:
// ZeroED detects, the repairer fixes, and the repaired dataset is closer to
// ground truth than the dirty one.
func TestDetectThenRepair(t *testing.T) {
	bench := datasets.Hospital(300, 21)
	res, err := zeroed.New(zeroed.Config{Seed: 21, LabelRate: 0.08, EmbedDim: 16}).Detect(bench.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	repaired, fixes := New(Config{}).Apply(bench.Dirty, res.Pred)
	if len(fixes) == 0 {
		t.Fatal("expected some repairs on a dirty benchmark")
	}
	dirtyRate, err := table.ErrorRate(bench.Dirty, bench.Clean)
	if err != nil {
		t.Fatal(err)
	}
	repairedRate, err := table.ErrorRate(repaired, bench.Clean)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("error rate: dirty %.4f -> repaired %.4f (%d fixes)", dirtyRate, repairedRate, len(fixes))
	if repairedRate >= dirtyRate {
		t.Errorf("repair should reduce the error rate: %.4f -> %.4f", dirtyRate, repairedRate)
	}
	correct := 0
	for _, f := range fixes {
		if f.New == bench.Clean.Value(f.Row, f.Col) {
			correct++
		}
	}
	prec := float64(correct) / float64(len(fixes))
	t.Logf("repair precision: %.3f (%d/%d exactly match ground truth)", prec, correct, len(fixes))
	if prec < 0.3 {
		t.Errorf("repair precision = %.3f, want >= 0.3", prec)
	}
}
