// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Table III (method comparison), Table IV
// (ablations), Table V (LLM choices), Table VI (clustering methods),
// Fig. 6 (Raha active-learning curve), Fig. 7 (runtime), Fig. 8 (token
// cost), Fig. 9 (label-rate sweep), Fig. 10 (correlated-attribute sweep),
// and Fig. 11 (per-error-type performance). Each experiment returns
// structured results and can render itself in the paper's layout; the
// cmd/experiments binary and the root-level benchmarks are thin wrappers.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/table"
	"repro/internal/zeroed"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the Table II default dataset sizes (1.0 = paper
	// sizes). Smaller scales keep experiment wall-clock manageable.
	Scale float64
	// Seed drives dataset generation and method randomness.
	Seed int64
	// Out receives the rendered table/figure; nil discards output.
	Out io.Writer
	// TaxSizes overrides the Fig. 7b/8b Tax subset sweep (default: the
	// paper's 50k/100k/150k/200k, scaled).
	TaxSizes []int
	// Workers bounds ZeroED's shared worker pool (0 = GOMAXPROCS). Results
	// are identical for any value; only wall-clock changes.
	Workers int
	// Shards sets ZeroED's scoring-shard count (0 = auto). Results are
	// identical for any value.
	Shards int
	// Batch runs the Fig. 7b/8b Tax sweep's ZeroED detections as one
	// DetectBatch over the shared pool instead of serially. Per-size
	// results are bit-identical either way; the reported per-size runtimes
	// then reflect concurrent execution.
	Batch bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scaledSize converts a Table II default size under the scale factor,
// keeping at least 200 tuples so statistics stay meaningful.
func (o Options) scaledSize(def int) int {
	n := int(float64(def) * o.Scale)
	if n < 200 {
		n = 200
	}
	if n > def {
		n = def
	}
	return n
}

// defaultSizes are the Table II tuple counts.
var defaultSizes = map[string]int{
	"Hospital": 1000, "Flights": 2376, "Beers": 2410, "Rayyan": 1000,
	"Billionaire": 2615, "Movies": 7390, "Tax": 200000,
}

// comparisonBenches generates the six Table III datasets at scaled sizes.
func comparisonBenches(o Options) []*datasets.Bench {
	var out []*datasets.Bench
	for _, e := range datasets.Registry() {
		if e.Name == "Tax" {
			continue
		}
		out = append(out, e.Gen(o.scaledSize(defaultSizes[e.Name]), o.Seed))
	}
	return out
}

// zeroedConfig is the paper-default ZeroED configuration with the run's
// parallelism knobs applied.
func (o Options) zeroedConfig() zeroed.Config {
	return zeroed.Config{Seed: o.Seed, Workers: o.Workers, Shards: o.Shards}
}

// runZeroED executes ZeroED with the given config and scores it.
func runZeroED(b *datasets.Bench, cfg zeroed.Config) (eval.Metrics, *zeroed.Result, error) {
	res, err := zeroed.New(cfg).Detect(b.Dirty)
	if err != nil {
		return eval.Metrics{}, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
	if err != nil {
		return eval.Metrics{}, nil, err
	}
	return m, res, nil
}

// methodSet builds the six baselines for a benchmark, sharing the label
// oracle the paper grants label-based methods.
func methodSet(b *datasets.Bench, seed int64) ([]baselines.Method, error) {
	mask, err := b.Mask()
	if err != nil {
		return nil, err
	}
	oracle := baselines.LabelOracle(func(row int) []bool { return mask[row] })
	raha := baselines.NewRaha(oracle)
	raha.Seed = seed
	ac := baselines.NewActiveClean(oracle)
	ac.Seed = seed
	return []baselines.Method{
		baselines.NewDBoost(),
		baselines.NewNadeef(b.FDPairs),
		baselines.NewKatara(b.KB),
		ac,
		raha,
		baselines.NewFMED(llm.NewClient(llm.Qwen72B), b.KB),
	}, nil
}

// runMethod scores one baseline on one benchmark with wall-clock timing.
func runMethod(m baselines.Method, b *datasets.Bench) (eval.Metrics, time.Duration, error) {
	start := time.Now()
	pred, err := m.Detect(b.Dirty)
	el := time.Since(start)
	if err != nil {
		return eval.Metrics{}, el, fmt.Errorf("%s on %s: %w", m.Name(), b.Name, err)
	}
	met, err := eval.ComputeAgainst(pred, b.Dirty, b.Clean)
	return met, el, err
}

// taxSweep returns a per-index source of (bench, ZeroED result) pairs for
// the Fig. 7b/8b Tax subset sweep. With Options.Batch, every size is
// generated up front and detected concurrently as one DetectBatch over a
// shared worker pool — per-size results are bit-identical to serial runs
// (batching changes scheduling, never results), but reported runtimes then
// reflect concurrent execution. Serially, each call generates and detects
// one size so peak memory stays that of the largest subset.
func taxSweep(o Options, sizes []int) (func(idx int) (*datasets.Bench, *zeroed.Result, error), error) {
	if o.Batch {
		benches := make([]*datasets.Bench, len(sizes))
		ds := make([]*table.Dataset, len(sizes))
		for i, n := range sizes {
			benches[i] = datasets.Tax(n, o.Seed)
			ds[i] = benches[i].Dirty
		}
		results, err := zeroed.New(o.zeroedConfig()).DetectBatch(ds)
		if err != nil {
			return nil, err
		}
		return func(idx int) (*datasets.Bench, *zeroed.Result, error) {
			return benches[idx], results[idx], nil
		}, nil
	}
	return func(idx int) (*datasets.Bench, *zeroed.Result, error) {
		b := datasets.Tax(sizes[idx], o.Seed)
		_, zres, err := runZeroED(b, o.zeroedConfig())
		return b, zres, err
	}, nil
}

// taxSizes resolves the Fig. 7b/8b subset sweep.
func (o Options) taxSizes() []int {
	if len(o.TaxSizes) > 0 {
		return append([]int(nil), o.TaxSizes...)
	}
	var out []int
	for _, base := range []int{50000, 100000, 150000, 200000} {
		out = append(out, o.scaledSize(base))
	}
	return out
}

// benchByName generates one scaled benchmark by dataset name, or errors on
// an unregistered name.
func benchByName(name string, o Options) (*datasets.Bench, error) {
	gen := datasets.ByName(name)
	if gen == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	return gen(o.scaledSize(defaultSizes[name]), o.Seed), nil
}
