// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Table III (method comparison), Table IV
// (ablations), Table V (LLM choices), Table VI (clustering methods),
// Fig. 6 (Raha active-learning curve), Fig. 7 (runtime), Fig. 8 (token
// cost), Fig. 9 (label-rate sweep), Fig. 10 (correlated-attribute sweep),
// and Fig. 11 (per-error-type performance). Each experiment returns
// structured results and can render itself in the paper's layout; the
// cmd/experiments binary and the root-level benchmarks are thin wrappers.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/zeroed"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the Table II default dataset sizes (1.0 = paper
	// sizes). Smaller scales keep experiment wall-clock manageable.
	Scale float64
	// Seed drives dataset generation and method randomness.
	Seed int64
	// Out receives the rendered table/figure; nil discards output.
	Out io.Writer
	// TaxSizes overrides the Fig. 7b/8b Tax subset sweep (default: the
	// paper's 50k/100k/150k/200k, scaled).
	TaxSizes []int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scaledSize converts a Table II default size under the scale factor,
// keeping at least 200 tuples so statistics stay meaningful.
func (o Options) scaledSize(def int) int {
	n := int(float64(def) * o.Scale)
	if n < 200 {
		n = 200
	}
	if n > def {
		n = def
	}
	return n
}

// defaultSizes are the Table II tuple counts.
var defaultSizes = map[string]int{
	"Hospital": 1000, "Flights": 2376, "Beers": 2410, "Rayyan": 1000,
	"Billionaire": 2615, "Movies": 7390, "Tax": 200000,
}

// comparisonBenches generates the six Table III datasets at scaled sizes.
func comparisonBenches(o Options) []*datasets.Bench {
	var out []*datasets.Bench
	for _, e := range datasets.Registry() {
		if e.Name == "Tax" {
			continue
		}
		out = append(out, e.Gen(o.scaledSize(defaultSizes[e.Name]), o.Seed))
	}
	return out
}

// zeroedConfig is the paper-default ZeroED configuration.
func zeroedConfig(seed int64) zeroed.Config {
	return zeroed.Config{Seed: seed}
}

// runZeroED executes ZeroED with the given config and scores it.
func runZeroED(b *datasets.Bench, cfg zeroed.Config) (eval.Metrics, *zeroed.Result, error) {
	res, err := zeroed.New(cfg).Detect(b.Dirty)
	if err != nil {
		return eval.Metrics{}, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	m, err := eval.ComputeAgainst(res.Pred, b.Dirty, b.Clean)
	if err != nil {
		return eval.Metrics{}, nil, err
	}
	return m, res, nil
}

// methodSet builds the six baselines for a benchmark, sharing the label
// oracle the paper grants label-based methods.
func methodSet(b *datasets.Bench, seed int64) []baselines.Method {
	mask := b.Mask()
	oracle := baselines.LabelOracle(func(row int) []bool { return mask[row] })
	raha := baselines.NewRaha(oracle)
	raha.Seed = seed
	ac := baselines.NewActiveClean(oracle)
	ac.Seed = seed
	return []baselines.Method{
		baselines.NewDBoost(),
		baselines.NewNadeef(b.FDPairs),
		baselines.NewKatara(b.KB),
		ac,
		raha,
		baselines.NewFMED(llm.NewClient(llm.Qwen72B), b.KB),
	}
}

// runMethod scores one baseline on one benchmark with wall-clock timing.
func runMethod(m baselines.Method, b *datasets.Bench) (eval.Metrics, time.Duration, error) {
	start := time.Now()
	pred, err := m.Detect(b.Dirty)
	el := time.Since(start)
	if err != nil {
		return eval.Metrics{}, el, fmt.Errorf("%s on %s: %w", m.Name(), b.Name, err)
	}
	met, err := eval.ComputeAgainst(pred, b.Dirty, b.Clean)
	return met, el, err
}

// taxSizes resolves the Fig. 7b/8b subset sweep.
func (o Options) taxSizes() []int {
	if len(o.TaxSizes) > 0 {
		return append([]int(nil), o.TaxSizes...)
	}
	var out []int
	for _, base := range []int{50000, 100000, 150000, 200000} {
		out = append(out, o.scaledSize(base))
	}
	return out
}

// benchByName generates one scaled benchmark by dataset name.
func benchByName(name string, o Options) *datasets.Bench {
	gen := datasets.ByName(name)
	if gen == nil {
		panic("experiments: unknown dataset " + name)
	}
	return gen(o.scaledSize(defaultSizes[name]), o.Seed)
}
