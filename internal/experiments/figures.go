package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/errgen"
	"repro/internal/eval"
	"repro/internal/llm"
)

// Fig6Result holds Raha's active-learning curve per dataset: F1 at each
// labeling budget, plus ZeroED's (label-free) reference F1.
type Fig6Result struct {
	Budgets  []int
	Datasets []string
	// F1[dataset][budgetIndex]
	F1 map[string][]float64
	// ZeroEDF1[dataset] is the reference line.
	ZeroEDF1 map[string]float64
	// CrossAt[dataset] is the smallest budget at which Raha meets or beats
	// ZeroED, or 0 if it never does within the sweep.
	CrossAt map[string]int
}

// Fig6 reproduces the Raha-vs-labels curve of Fig. 6.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	res := &Fig6Result{
		Budgets:  []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45},
		F1:       map[string][]float64{},
		ZeroEDF1: map[string]float64{},
		CrossAt:  map[string]int{},
	}
	fmt.Fprintln(o.Out, "Fig. 6: Raha performance via active learning (#labeled tuples vs F1)")
	for _, b := range comparisonBenches(o) {
		res.Datasets = append(res.Datasets, b.Name)
		zm, _, err := runZeroED(b, o.zeroedConfig())
		if err != nil {
			return nil, err
		}
		res.ZeroEDF1[b.Name] = zm.F1

		mask, err := b.Mask()
		if err != nil {
			return nil, err
		}
		oracle := baselines.LabelOracle(func(row int) []bool { return mask[row] })
		var curve []float64
		for _, budget := range res.Budgets {
			raha := baselines.NewRaha(oracle)
			raha.LabelBudget = budget
			raha.Seed = o.Seed
			m, _, err := runMethod(raha, b)
			if err != nil {
				return nil, err
			}
			curve = append(curve, m.F1)
			if res.CrossAt[b.Name] == 0 && m.F1 >= zm.F1 {
				res.CrossAt[b.Name] = budget
			}
		}
		res.F1[b.Name] = curve
		fmt.Fprintf(o.Out, "%-12s ZeroED=%.3f Raha:", b.Name, zm.F1)
		for i, f := range curve {
			fmt.Fprintf(o.Out, " %d:%.3f", res.Budgets[i], f)
		}
		fmt.Fprintln(o.Out)
	}
	return res, nil
}

// Fig7Result holds runtimes: PerDataset[method][dataset] and the Tax
// size sweep PerSize[method][sizeIndex].
type Fig7Result struct {
	Datasets   []string
	Methods    []string
	PerDataset map[string]map[string]time.Duration
	TaxSizes   []int
	PerSize    map[string][]time.Duration
}

// Fig7 reproduces the runtime evaluation (Fig. 7): end-to-end wall-clock
// across datasets (a) and across Tax subset sizes (b).
func Fig7(o Options) (*Fig7Result, error) {
	o = o.withDefaults()
	res := &Fig7Result{
		PerDataset: map[string]map[string]time.Duration{},
		PerSize:    map[string][]time.Duration{},
	}
	fmt.Fprintln(o.Out, "Fig. 7a: runtime across datasets")
	benches := comparisonBenches(o)
	for _, b := range benches {
		res.Datasets = append(res.Datasets, b.Name)
	}
	record := func(method, ds string, d time.Duration) {
		if res.PerDataset[method] == nil {
			res.PerDataset[method] = map[string]time.Duration{}
			res.Methods = append(res.Methods, method)
		}
		res.PerDataset[method][ds] = d
	}
	for _, b := range benches {
		methods, err := methodSet(b, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			_, el, err := runMethod(m, b)
			if err != nil {
				return nil, err
			}
			record(m.Name(), b.Name, el)
		}
		_, zres, err := runZeroED(b, o.zeroedConfig())
		if err != nil {
			return nil, err
		}
		record("ZeroED", b.Name, zres.Runtime)
	}
	for _, m := range res.Methods {
		fmt.Fprintf(o.Out, "%-12s", m)
		for _, d := range res.Datasets {
			fmt.Fprintf(o.Out, " %s:%v", d, res.PerDataset[m][d].Round(time.Millisecond))
		}
		fmt.Fprintln(o.Out)
	}

	// Tax subset sweep (50k..200k scaled, or Options.TaxSizes).
	fmt.Fprintln(o.Out, "Fig. 7b: runtime across Tax subset sizes")
	res.TaxSizes = o.taxSizes()
	taxAt, err := taxSweep(o, res.TaxSizes)
	if err != nil {
		return nil, err
	}
	for idx, n := range res.TaxSizes {
		b, zres, err := taxAt(idx)
		if err != nil {
			return nil, err
		}
		methods, err := methodSet(b, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			_, el, err := runMethod(m, b)
			if err != nil {
				return nil, err
			}
			res.PerSize[m.Name()] = append(res.PerSize[m.Name()], el)
		}
		res.PerSize["ZeroED"] = append(res.PerSize["ZeroED"], zres.Runtime)
		fmt.Fprintf(o.Out, "n=%d:", n)
		for _, m := range res.Methods {
			if ts := res.PerSize[m]; len(ts) > 0 {
				fmt.Fprintf(o.Out, " %s:%v", m, ts[len(ts)-1].Round(time.Millisecond))
			}
		}
		fmt.Fprintln(o.Out)
	}
	return res, nil
}

// Fig8Result holds token costs for ZeroED and FM_ED: input/output tokens
// per dataset and per Tax subset size.
type Fig8Result struct {
	Datasets []string
	// PerDataset[method][dataset]
	PerDataset map[string]map[string]llm.Usage
	TaxSizes   []int
	PerSize    map[string][]llm.Usage
}

// Fig8 reproduces the token-consumption evaluation (Fig. 8).
func Fig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	res := &Fig8Result{
		PerDataset: map[string]map[string]llm.Usage{"ZeroED": {}, "FM_ED": {}},
		PerSize:    map[string][]llm.Usage{},
	}
	fmt.Fprintln(o.Out, "Fig. 8a: token cost across datasets (input/output)")
	for _, b := range comparisonBenches(o) {
		res.Datasets = append(res.Datasets, b.Name)
		_, zres, err := runZeroED(b, o.zeroedConfig())
		if err != nil {
			return nil, err
		}
		res.PerDataset["ZeroED"][b.Name] = zres.Usage

		client := llm.NewClient(llm.Qwen72B)
		fmed := baselines.NewFMED(client, b.KB)
		if _, err := fmed.Detect(b.Dirty); err != nil {
			return nil, err
		}
		res.PerDataset["FM_ED"][b.Name] = fmed.Usage()
		z, f := zres.Usage, fmed.Usage()
		fmt.Fprintf(o.Out, "%-12s ZeroED in=%d out=%d | FM_ED in=%d out=%d\n",
			b.Name, z.InputTokens, z.OutputTokens, f.InputTokens, f.OutputTokens)
	}

	fmt.Fprintln(o.Out, "Fig. 8b: token cost across Tax subset sizes")
	res.TaxSizes = o.taxSizes()
	taxAt, err := taxSweep(o, res.TaxSizes)
	if err != nil {
		return nil, err
	}
	for idx, n := range res.TaxSizes {
		b, zres, err := taxAt(idx)
		if err != nil {
			return nil, err
		}
		res.PerSize["ZeroED"] = append(res.PerSize["ZeroED"], zres.Usage)

		client := llm.NewClient(llm.Qwen72B)
		fmed := baselines.NewFMED(client, b.KB)
		if _, err := fmed.Detect(b.Dirty); err != nil {
			return nil, err
		}
		res.PerSize["FM_ED"] = append(res.PerSize["FM_ED"], fmed.Usage())
		z := zres.Usage
		f := fmed.Usage()
		reduction := 1 - float64(z.Total())/float64(f.Total())
		fmt.Fprintf(o.Out, "n=%d ZeroED=%d FM_ED=%d (reduction %.1f%%)\n",
			n, z.Total(), f.Total(), 100*reduction)
	}
	return res, nil
}

// ReductionAtMax returns ZeroED's token-cost reduction vs FM_ED at the
// largest Tax size (the paper reports >90%).
func (r *Fig8Result) ReductionAtMax() float64 {
	z := r.PerSize["ZeroED"]
	f := r.PerSize["FM_ED"]
	if len(z) == 0 || len(f) == 0 {
		return 0
	}
	zt, ft := z[len(z)-1].Total(), f[len(f)-1].Total()
	if ft == 0 {
		return 0
	}
	return 1 - float64(zt)/float64(ft)
}

// SweepResult holds a one-parameter sweep of ZeroED: Metrics[dataset][i]
// for parameter Values[i].
type SweepResult struct {
	Datasets []string
	Values   []float64
	Metrics  map[string][]eval.Metrics
}

// Fig9 reproduces the label-rate sweep (Fig. 9): ZeroED at 1%..5% LLM
// label rate on each dataset.
func Fig9(o Options) (*SweepResult, error) {
	o = o.withDefaults()
	res := &SweepResult{Values: []float64{0.01, 0.02, 0.03, 0.04, 0.05}, Metrics: map[string][]eval.Metrics{}}
	fmt.Fprintln(o.Out, "Fig. 9: performance under different LLM label rates")
	for _, b := range comparisonBenches(o) {
		res.Datasets = append(res.Datasets, b.Name)
		var ms []eval.Metrics
		for _, rate := range res.Values {
			cfg := o.zeroedConfig()
			cfg.LabelRate = rate
			m, _, err := runZeroED(b, cfg)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		res.Metrics[b.Name] = ms
		fmt.Fprintf(o.Out, "%-12s", b.Name)
		for i, m := range ms {
			fmt.Fprintf(o.Out, " %d%%:%.3f", int(res.Values[i]*100), m.F1)
		}
		fmt.Fprintln(o.Out)
	}
	return res, nil
}

// Fig10 reproduces the correlated-attribute sweep (Fig. 10): ZeroED with
// 1..5 correlated attributes on each dataset.
func Fig10(o Options) (*SweepResult, error) {
	o = o.withDefaults()
	res := &SweepResult{Values: []float64{1, 2, 3, 4, 5}, Metrics: map[string][]eval.Metrics{}}
	fmt.Fprintln(o.Out, "Fig. 10: performance under different correlated attribute numbers")
	for _, b := range comparisonBenches(o) {
		res.Datasets = append(res.Datasets, b.Name)
		var ms []eval.Metrics
		for _, k := range res.Values {
			cfg := o.zeroedConfig()
			cfg.CorrK = int(k)
			m, _, err := runZeroED(b, cfg)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		res.Metrics[b.Name] = ms
		fmt.Fprintf(o.Out, "%-12s", b.Name)
		for i, m := range ms {
			fmt.Fprintf(o.Out, " k=%d:%.3f", int(res.Values[i]), m.F1)
		}
		fmt.Fprintln(o.Out)
	}
	return res, nil
}

// Fig11Result holds per-error-type F1 for every method on the Beers
// scenarios: F1[method][scenario].
type Fig11Result struct {
	Scenarios []string
	Methods   []string
	F1        map[string]map[string]float64
}

// Fig11 reproduces the error-scenario evaluation (Fig. 11): the Beers
// dataset re-injected with one error type at a time (plus the mixed "ME"
// scenario), scored for every method.
func Fig11(o Options) (*Fig11Result, error) {
	o = o.withDefaults()
	res := &Fig11Result{F1: map[string]map[string]float64{}}
	clean := datasets.Beers(o.scaledSize(defaultSizes["Beers"]), o.Seed).Clean

	type scenario struct {
		name string
		spec errgen.Spec
	}
	var scenarios []scenario
	rates := map[errgen.Type]float64{
		errgen.Typo: 0.0243, errgen.Missing: 0.009, errgen.PatternViolation: 0.0914,
		errgen.RuleViolation: 0.0112, errgen.Outlier: 0.0109,
	}
	for _, t := range errgen.AllTypes() {
		sp := errgen.SingleTypeSpec(t, rates[t], o.Seed+2)
		if t == errgen.RuleViolation {
			sp.FDPairs = [][2]int{{6, 7}, {6, 8}, {6, 9}}
		}
		if t == errgen.Outlier {
			sp.NumericCols = []int{3, 4}
		}
		scenarios = append(scenarios, scenario{string(t), sp})
	}
	me := errgen.MixedSpec(0.0049*4, o.Seed+2)
	scenarios = append(scenarios, scenario{"ME", me})

	fmt.Fprintln(o.Out, "Fig. 11: performance vs error types on Beers")
	for _, sc := range scenarios {
		res.Scenarios = append(res.Scenarios, sc.name)
		dirty, _ := errgen.Inject(clean, sc.spec)
		b := &datasets.Bench{Name: "Beers-" + sc.name, Clean: clean, Dirty: dirty,
			KB: datasets.Beers(200, o.Seed).KB, FDPairs: [][2]int{{6, 7}, {6, 8}, {6, 9}}}

		record := func(method string, f1 float64) {
			if res.F1[method] == nil {
				res.F1[method] = map[string]float64{}
				res.Methods = append(res.Methods, method)
			}
			res.F1[method][sc.name] = f1
		}
		methods, err := methodSet(b, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			met, _, err := runMethod(m, b)
			if err != nil {
				return nil, err
			}
			record(m.Name(), met.F1)
		}
		met, _, err := runZeroED(b, o.zeroedConfig())
		if err != nil {
			return nil, err
		}
		record("ZeroED", met.F1)
	}
	for _, m := range res.Methods {
		fmt.Fprintf(o.Out, "%-12s", m)
		for _, sc := range res.Scenarios {
			fmt.Fprintf(o.Out, " %s:%.3f", sc, res.F1[m][sc])
		}
		fmt.Fprintln(o.Out)
	}
	return res, nil
}
