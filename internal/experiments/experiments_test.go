package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small-scale options keep experiment tests fast while preserving shape.
func testOpts() Options { return Options{Scale: 0.1, Seed: 1, TaxSizes: []int{1000, 6000}} }

// skipIfShort skips bench-scale experiment tests under -short: each runs
// full multi-method pipelines and dominates the suite's runtime.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("bench-scale experiment; skipped under -short")
	}
}

func TestTable3Shape(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 6 {
		t.Fatalf("datasets = %d, want 6", len(res.Datasets))
	}
	if len(res.Methods) != 7 {
		t.Fatalf("methods = %d, want 7", len(res.Methods))
	}
	// Headline claim: ZeroED wins most datasets.
	wins := res.Wins("ZeroED")
	t.Log(buf.String())
	if wins < 3 {
		t.Errorf("ZeroED wins %d/6 datasets, want >= 3 (paper: most)", wins)
	}
}

func TestTable4AblationsDegrade(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (4 ablations + full)", len(res.Rows))
	}
	// Mean F1 of the full pipeline should be at least that of each
	// ablation (allow small slack for the tiny scale).
	mean := func(row string) float64 {
		var s float64
		for _, d := range res.Datasets {
			s += res.Cells[row][d].F1
		}
		return s / float64(len(res.Datasets))
	}
	full := mean("ZeroED")
	for _, abl := range []string{"w/o Guid.", "w/o Crit."} {
		if a := mean(abl); a > full+0.03 {
			t.Errorf("%s mean F1 %.3f should not exceed full pipeline %.3f", abl, a, full)
		}
	}
	// Correlated context triples the feature dimension, so its benefit
	// needs realistic data volume (see EXPERIMENTS.md); at this starved
	// test scale we assert only the robust invariant — it must help on the
	// dependency-rich Hospital benchmark.
	if a := res.Cells["w/o Corr."]["Hospital"].F1; a > res.Cells["ZeroED"]["Hospital"].F1+0.03 {
		t.Errorf("w/o Corr. on Hospital F1 %.3f should not exceed full %.3f",
			a, res.Cells["ZeroED"]["Hospital"].F1)
	}
}

func TestTable5ModelOrdering(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	if len(res.Models) != 5 {
		t.Fatalf("models = %d, want 5", len(res.Models))
	}
	best := res.MeanF1("Qwen2.5-72b")
	worst := res.MeanF1("GPT-4o-mini")
	if best <= worst {
		t.Errorf("Qwen2.5-72b mean F1 %.3f should exceed GPT-4o-mini %.3f", best, worst)
	}
}

func TestTable6SamplerOrdering(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Table6(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	mean := func(s string) float64 {
		var sum float64
		for _, d := range res.Datasets {
			sum += res.Cells[s][d].F1
		}
		return sum / float64(len(res.Datasets))
	}
	if mean("k-Means") < mean("Random")-0.05 {
		t.Errorf("k-Means mean F1 %.3f should not trail Random %.3f", mean("k-Means"), mean("Random"))
	}
}

func TestFig6RahaCurveRises(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	// Averaged across datasets, the curve's tail should beat its head.
	head, tail := 0.0, 0.0
	for _, d := range res.Datasets {
		c := res.F1[d]
		head += c[0]
		tail += c[len(c)-1]
	}
	if tail <= head {
		t.Errorf("Raha curve should rise with labels: head=%.3f tail=%.3f", head, tail)
	}
}

func TestFig8TokenReduction(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	// ZeroED pays a fixed reasoning overhead (criteria, analysis,
	// guidelines) while FM_ED pays per tuple, so the reduction must grow
	// with dataset size and be positive at the larger size — the Fig. 8b
	// crossover shape. The paper's >90% reduction needs 200k rows
	// (cmd/experiments -exp fig8 -scale 1.0).
	redAt := func(i int) float64 {
		z := res.PerSize["ZeroED"][i].Total()
		f := res.PerSize["FM_ED"][i].Total()
		return 1 - float64(z)/float64(f)
	}
	small, large := redAt(0), redAt(len(res.TaxSizes)-1)
	if large <= small {
		t.Errorf("token reduction should grow with size: %.2f -> %.2f", small, large)
	}
	if large < 0.05 {
		t.Errorf("token reduction at %d rows = %.2f, want clearly positive past the crossover", res.TaxSizes[len(res.TaxSizes)-1], large)
	}
	// FM_ED must dominate on input tokens (it prompts every tuple).
	for _, d := range res.Datasets {
		z := res.PerDataset["ZeroED"][d]
		f := res.PerDataset["FM_ED"][d]
		if f.InputTokens == 0 || z.Calls == 0 {
			t.Errorf("%s: missing usage accounting", d)
		}
	}
}

func TestFig9LabelRateImproves(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	// Mean F1 at 5% should beat mean F1 at 1%.
	lo, hi := 0.0, 0.0
	for _, d := range res.Datasets {
		lo += res.Metrics[d][0].F1
		hi += res.Metrics[d][len(res.Values)-1].F1
	}
	if hi <= lo {
		t.Errorf("F1 should improve with label rate: 1%%=%.3f 5%%=%.3f", lo, hi)
	}
}

func TestFig11Scenarios(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	o := testOpts()
	o.Out = &buf
	res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	want := []string{"T", "MV", "PV", "RV", "O", "ME"}
	if strings.Join(res.Scenarios, ",") != strings.Join(want, ",") {
		t.Errorf("scenarios = %v, want %v", res.Scenarios, want)
	}
	if len(res.Methods) != 7 {
		t.Errorf("methods = %d, want 7", len(res.Methods))
	}
	// ZeroED should be strong on the mixed scenario (the paper's claim).
	if res.F1["ZeroED"]["ME"] <= res.F1["Katara"]["ME"] {
		t.Error("ZeroED should beat Katara on mixed errors")
	}
}

func TestFig7RuntimeAccounting(t *testing.T) {
	skipIfShort(t)
	o := testOpts()
	o.TaxSizes = []int{300, 600}
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 7 {
		t.Fatalf("methods = %d, want 7", len(res.Methods))
	}
	for _, m := range res.Methods {
		for _, d := range res.Datasets {
			if res.PerDataset[m][d] <= 0 {
				t.Errorf("%s on %s: missing runtime", m, d)
			}
		}
		if len(res.PerSize[m]) != 2 {
			t.Errorf("%s: missing Tax sweep runtimes", m)
		}
	}
	// Simple heuristics must be much faster than the LLM-driven methods,
	// the paper's Fig. 7a observation.
	for _, d := range res.Datasets {
		if res.PerDataset["dBoost"][d] >= res.PerDataset["ZeroED"][d] {
			t.Errorf("%s: dBoost (%v) should be faster than ZeroED (%v)",
				d, res.PerDataset["dBoost"][d], res.PerDataset["ZeroED"][d])
		}
	}
}

func TestFig10CorrSweepShape(t *testing.T) {
	skipIfShort(t)
	o := testOpts()
	res, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 5 || res.Values[0] != 1 || res.Values[4] != 5 {
		t.Fatalf("sweep values = %v", res.Values)
	}
	for _, d := range res.Datasets {
		if len(res.Metrics[d]) != 5 {
			t.Fatalf("%s: missing sweep points", d)
		}
	}
	// The paper: k=2..3 is optimal; k=1 lacks context, k=5 adds noise. The
	// k>1 benefit needs realistic data volume (unified features scale with
	// 1+k while training data does not), so at this starved scale we
	// assert structural sanity: every sweep point produces a working
	// detector, and the k=2..3 region is not catastrophically below the
	// sweep's best.
	at := func(i int) float64 {
		var s float64
		for _, d := range res.Datasets {
			s += res.Metrics[d][i].F1
		}
		return s / float64(len(res.Datasets))
	}
	best := 0.0
	for i := range res.Values {
		if v := at(i); v > best {
			best = v
		}
		if at(i) <= 0.1 {
			t.Errorf("k=%d mean F1 %.3f: detector collapsed", int(res.Values[i]), at(i))
		}
	}
	mid := at(1)
	if at(2) > mid {
		mid = at(2)
	}
	if mid < best-0.2 {
		t.Errorf("k=2..3 mean F1 %.3f too far below sweep best %.3f", mid, best)
	}
}
