package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/zeroed"
)

// Table3Result holds the method-comparison grid: Cells[method][dataset].
type Table3Result struct {
	Datasets []string
	Methods  []string
	Cells    map[string]map[string]eval.Metrics
}

// Table3 reproduces the paper's headline comparison (Table III): seven
// methods across six datasets, reporting precision/recall/F1.
func Table3(o Options) (*Table3Result, error) {
	o = o.withDefaults()
	res := &Table3Result{Cells: map[string]map[string]eval.Metrics{}}
	benches := comparisonBenches(o)
	for _, b := range benches {
		res.Datasets = append(res.Datasets, b.Name)
	}
	fmt.Fprintln(o.Out, "Table III: performance comparison of error detection methods")
	fmt.Fprintln(o.Out, eval.Header(res.Datasets))

	addRow := func(name string, cells map[string]eval.Metrics) {
		res.Methods = append(res.Methods, name)
		res.Cells[name] = cells
		row := make([]eval.Metrics, len(benches))
		for i, b := range benches {
			row[i] = cells[b.Name]
		}
		fmt.Fprintln(o.Out, eval.Row(name, row))
	}

	// Baselines.
	for mi := 0; mi < 6; mi++ {
		var name string
		cells := map[string]eval.Metrics{}
		for _, b := range benches {
			methods, err := methodSet(b, o.Seed)
			if err != nil {
				return nil, err
			}
			m := methods[mi]
			name = m.Name()
			met, _, err := runMethod(m, b)
			if err != nil {
				return nil, err
			}
			cells[b.Name] = met
		}
		addRow(name, cells)
	}

	// ZeroED.
	cells := map[string]eval.Metrics{}
	for _, b := range benches {
		met, _, err := runZeroED(b, o.zeroedConfig())
		if err != nil {
			return nil, err
		}
		cells[b.Name] = met
	}
	addRow("ZeroED", cells)
	return res, nil
}

// Wins counts the datasets on which the given method has the top F1.
func (t *Table3Result) Wins(method string) int {
	wins := 0
	for _, d := range t.Datasets {
		best, bestF1 := "", -1.0
		for _, m := range t.Methods {
			if f := t.Cells[m][d].F1; f > bestF1 {
				best, bestF1 = m, f
			}
		}
		if best == method {
			wins++
		}
	}
	return wins
}

// Ablation identifies one Table IV row.
type Ablation struct {
	Name string
	Mod  func(*zeroed.Config)
}

// Ablations lists the paper's four component removals.
func Ablations() []Ablation {
	return []Ablation{
		{"w/o Guid.", func(c *zeroed.Config) { c.DisableGuidelines = true }},
		{"w/o Crit.", func(c *zeroed.Config) { c.DisableCriteria = true }},
		{"w/o Corr.", func(c *zeroed.Config) { c.DisableCorrelated = true }},
		{"w/o Veri.", func(c *zeroed.Config) { c.DisableVerification = true }},
	}
}

// Table4Result holds ablation metrics: Cells[ablation][dataset]; the
// "ZeroED" row is the full pipeline.
type Table4Result struct {
	Datasets []string
	Rows     []string
	Cells    map[string]map[string]eval.Metrics
}

// Table4 reproduces the ablation study (Table IV).
func Table4(o Options) (*Table4Result, error) {
	o = o.withDefaults()
	res := &Table4Result{Cells: map[string]map[string]eval.Metrics{}}
	benches := comparisonBenches(o)
	for _, b := range benches {
		res.Datasets = append(res.Datasets, b.Name)
	}
	fmt.Fprintln(o.Out, "Table IV: ablation study of ZeroED")
	fmt.Fprintln(o.Out, eval.Header(res.Datasets))

	rows := append(Ablations(), Ablation{"ZeroED", func(*zeroed.Config) {}})
	for _, abl := range rows {
		cells := map[string]eval.Metrics{}
		rowMetrics := make([]eval.Metrics, len(benches))
		for i, b := range benches {
			cfg := o.zeroedConfig()
			abl.Mod(&cfg)
			met, _, err := runZeroED(b, cfg)
			if err != nil {
				return nil, err
			}
			cells[b.Name] = met
			rowMetrics[i] = met
		}
		res.Rows = append(res.Rows, abl.Name)
		res.Cells[abl.Name] = cells
		fmt.Fprintln(o.Out, eval.Row(abl.Name, rowMetrics))
	}
	return res, nil
}

// Table5Result holds the LLM-comparison grid: Cells[model][dataset].
type Table5Result struct {
	Datasets []string
	Models   []string
	Cells    map[string]map[string]eval.Metrics
}

// Table5 reproduces the model comparison (Table V): ZeroED with each
// simulated LLM profile.
func Table5(o Options) (*Table5Result, error) {
	o = o.withDefaults()
	res := &Table5Result{Cells: map[string]map[string]eval.Metrics{}}
	benches := comparisonBenches(o)
	for _, b := range benches {
		res.Datasets = append(res.Datasets, b.Name)
	}
	fmt.Fprintln(o.Out, "Table V: detection performance of ZeroED with different LLMs")
	fmt.Fprintln(o.Out, eval.Header(res.Datasets))

	for _, p := range llm.Profiles() {
		cells := map[string]eval.Metrics{}
		rowMetrics := make([]eval.Metrics, len(benches))
		for i, b := range benches {
			cfg := o.zeroedConfig()
			cfg.Profile = p
			met, _, err := runZeroED(b, cfg)
			if err != nil {
				return nil, err
			}
			cells[b.Name] = met
			rowMetrics[i] = met
		}
		res.Models = append(res.Models, p.Name)
		res.Cells[p.Name] = cells
		fmt.Fprintln(o.Out, eval.Row(p.Name, rowMetrics))
	}
	return res, nil
}

// MeanF1 averages a model's F1 across datasets.
func (t *Table5Result) MeanF1(model string) float64 {
	var s float64
	for _, d := range t.Datasets {
		s += t.Cells[model][d].F1
	}
	return s / float64(len(t.Datasets))
}

// Table6Result holds the clustering-method grid: Cells[method][dataset]
// over Flights, Billionaire, and Movies.
type Table6Result struct {
	Datasets []string
	Samplers []string
	Cells    map[string]map[string]eval.Metrics
}

// Table6 reproduces the clustering-method comparison (Table VI).
func Table6(o Options) (*Table6Result, error) {
	o = o.withDefaults()
	res := &Table6Result{Cells: map[string]map[string]eval.Metrics{}}
	names := []string{"Flights", "Billionaire", "Movies"}
	res.Datasets = names
	fmt.Fprintln(o.Out, "Table VI: performance with different clustering methods")
	fmt.Fprintln(o.Out, eval.Header(names))

	samplers := []struct {
		label string
		s     zeroed.Sampler
	}{
		{"Random", zeroed.SamplerRandom},
		{"AGC", zeroed.SamplerAgglomerative},
		{"k-Means", zeroed.SamplerKMeans},
	}
	for _, sp := range samplers {
		cells := map[string]eval.Metrics{}
		rowMetrics := make([]eval.Metrics, len(names))
		for i, n := range names {
			b, err := benchByName(n, o)
			if err != nil {
				return nil, err
			}
			cfg := o.zeroedConfig()
			cfg.Sampler = sp.s
			met, _, err := runZeroED(b, cfg)
			if err != nil {
				return nil, err
			}
			cells[n] = met
			rowMetrics[i] = met
		}
		res.Samplers = append(res.Samplers, sp.label)
		res.Cells[sp.label] = cells
		fmt.Fprintln(o.Out, eval.Row(sp.label, rowMetrics))
	}
	return res, nil
}
