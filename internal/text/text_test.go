package text

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Bob Johnson", []string{"bob", "johnson"}},
		{"the cat and the hat", []string{"cat", "hat"}},
		{"", nil},
		{"---", nil},
		{"surgical-infection prevention", []string{"surgical", "infection", "prevention"}},
		{"ABC123 def", []string{"abc123", "def"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"Bachelor", "Bechxlor", 2},
		{"same", "same", 0},
		{"日本", "日本語", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties of edit distance: symmetry, identity, triangle inequality.
func TestLevenshteinProperties(t *testing.T) {
	trim := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	sym := func(a, b string) bool {
		a, b = trim(a), trim(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool { return Levenshtein(trim(a), trim(a)) == 0 }
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	tri := func(a, b, c string) bool {
		a, b, c = trim(a), trim(b), trim(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error("triangle:", err)
	}
}

func TestGeneralize(t *testing.T) {
	// The paper's running example: "DOe123.".
	cases := []struct {
		in    string
		level PatternLevel
		want  string
	}{
		{"DOe123.", L1, "A[6]S[1]"},
		{"DOe123.", L2, "L[3]D[3]S[1]"},
		{"DOe123.", L3, "U[2]u[1]D[3]S[1]"},
		{"", L3, ""},
		{"  ", L3, "W[2]"},
		{"12:30 pm", L3, "D[2]S[1]D[2]W[1]u[2]"},
	}
	for _, c := range cases {
		if got := Generalize(c.in, c.level); got != c.want {
			t.Errorf("Generalize(%q, L%d) = %q, want %q", c.in, c.level, got, c.want)
		}
	}
}

// Property: values with identical character-class sequences share patterns,
// and L3 refines L2 refines L1 (equal L3 patterns imply equal L2 and L1).
func TestGeneralizeRefinementProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 16 {
			a = a[:16]
		}
		if len(b) > 16 {
			b = b[:16]
		}
		if Generalize(a, L3) == Generalize(b, L3) {
			return Generalize(a, L2) == Generalize(b, L2) && Generalize(a, L1) == Generalize(b, L1)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"80000", 80000, true},
		{" 6,000 ", 6000, true},
		{"$1,234.5", 1234.5, true},
		{"-3.5", -3.5, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12abc", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseFloat(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseFloat(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIsNumericColumn(t *testing.T) {
	if !IsNumericColumn([]string{"1", "2", "", "3"}, 0.9) {
		t.Error("numeric column with empties should pass")
	}
	if IsNumericColumn([]string{"1", "two", "3", "4"}, 0.9) {
		t.Error("25% non-numeric should fail a 0.9 threshold")
	}
	if IsNumericColumn([]string{"", ""}, 0.5) {
		t.Error("all-empty column is not numeric")
	}
}

func TestIsNullLike(t *testing.T) {
	for _, v := range []string{"", "NULL", "n/a", " NaN ", "-", "?"} {
		if !IsNullLike(v) {
			t.Errorf("IsNullLike(%q) = false, want true", v)
		}
	}
	for _, v := range []string{"0", "false", "Phd"} {
		if IsNullLike(v) {
			t.Errorf("IsNullLike(%q) = true, want false", v)
		}
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("The") || IsStopWord("hospital") {
		t.Error("stop word classification wrong")
	}
}

func TestTokenizeNoStopWordsProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		for _, tok := range Tokenize(s) {
			if IsStopWord(tok) || tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
