package text

import "testing"

// FuzzGeneralize checks that pattern generalization never panics and that
// refinement (L3 -> L2 -> L1) is preserved on arbitrary input.
func FuzzGeneralize(f *testing.F) {
	for _, seed := range []string{"", "DOe123.", "Bob Johnson", "12:30 p.m.", "日本語", "\x00\xff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l1 := Generalize(s, L1)
		l2 := Generalize(s, L2)
		l3 := Generalize(s, L3)
		if (s == "") != (l3 == "") {
			t.Fatalf("emptiness mismatch: %q -> %q", s, l3)
		}
		// Each level is a run-length encoding; all encode the same rune
		// count.
		if runCount(l1) > runCount(l2) || runCount(l2) > runCount(l3) {
			t.Fatalf("coarser levels cannot have more runs: %q / %q / %q", l1, l2, l3)
		}
	})
}

func runCount(pattern string) int {
	n := 0
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '[' {
			n++
		}
	}
	return n
}

// FuzzLevenshtein checks metric properties on arbitrary byte strings.
func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本", "日本語")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			t.Fatal("not symmetric")
		}
		if (d == 0) != (a == b) {
			// Invalid UTF-8 decodes to replacement runes, which can make
			// distinct byte strings rune-equal; compare as runes.
			if string([]rune(a)) != string([]rune(b)) && d == 0 {
				t.Fatalf("zero distance for distinct inputs %q %q", a, b)
			}
		}
		la, lb := len([]rune(a)), len([]rune(b))
		max := la
		if lb > max {
			max = lb
		}
		if d > max {
			t.Fatalf("distance %d exceeds longer length %d", d, max)
		}
	})
}

// FuzzTokenize checks the tokenizer never panics and never emits stop
// words or empty tokens.
func FuzzTokenize(f *testing.F) {
	f.Add("The quick brown fox")
	f.Add("")
	f.Add("a-b_c.d,e")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 128 {
			s = s[:128]
		}
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if IsStopWord(tok) {
				t.Fatalf("stop word %q leaked", tok)
			}
		}
	})
}

// FuzzParseFloat checks the lenient parser never panics.
func FuzzParseFloat(f *testing.F) {
	f.Add("$1,234.5")
	f.Add("-3e10")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		ParseFloat(s)
		IsNullLike(s)
	})
}
