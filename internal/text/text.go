// Package text implements the low-level string analysis primitives the
// ZeroED pipeline relies on: tokenization with stop-word removal (for
// semantic embeddings), Levenshtein edit distance (for typo reasoning and
// the paper's error-type classification), the three-level pattern
// generalization of Section III-B, and numeric parsing helpers.
package text

import (
	"strconv"
	"strings"
	"unicode"
)

// stopWords is a compact English stop-word list; ZeroED removes stop words
// before averaging token embeddings.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true, "he": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "to": true, "was": true, "were": true,
	"will": true, "with": true,
}

// IsStopWord reports whether the (lowercased) token is a stop word.
func IsStopWord(tok string) bool { return stopWords[strings.ToLower(tok)] }

// Tokenize splits a cell value into lowercase alphanumeric tokens with stop
// words removed. An empty result means the value carries no semantic tokens
// (e.g. pure punctuation or NULL).
func Tokenize(v string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		t := strings.ToLower(cur.String())
		cur.Reset()
		if !stopWords[t] {
			toks = append(toks, t)
		}
	}
	for _, r := range v {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// Levenshtein computes the edit distance between two strings, operating on
// runes. It is used both by the typo-aware criteria and by the paper's
// error-type taxonomy (typos are errors within edit distance <= 3 of the
// clean value).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// PatternLevel selects one of the paper's three generalization levels.
type PatternLevel int

// The three generalization levels of Section III-B: L1 collapses all valid
// characters to one class, L2 distinguishes letters/digits/symbols, and L3
// further splits letters by case.
const (
	L1 PatternLevel = 1
	L2 PatternLevel = 2
	L3 PatternLevel = 3
)

// Generalize rewrites a value into its run-length-encoded character-class
// pattern at the given level, e.g. "DOe123." at L3 is "U[2]u[1]D[3]S[1]",
// at L2 "L[3]D[3]S[1]", and at L1 "A[6]S[1]" (alphanumerics vs symbols).
func Generalize(v string, level PatternLevel) string {
	var b strings.Builder
	var prev byte
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		b.WriteByte(prev)
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(run))
		b.WriteByte(']')
		run = 0
	}
	for _, r := range v {
		c := classify(r, level)
		if c != prev {
			flush()
			prev = c
		}
		run++
	}
	flush()
	return b.String()
}

// classify maps a rune to its single-byte class code for the given level.
// Classes: A alphanumeric, L letter, U upper, u lower, D digit, S symbol,
// W whitespace.
func classify(r rune, level PatternLevel) byte {
	switch {
	case unicode.IsSpace(r):
		return 'W'
	case unicode.IsDigit(r):
		if level == L1 {
			return 'A'
		}
		return 'D'
	case unicode.IsLetter(r):
		switch level {
		case L1:
			return 'A'
		case L2:
			return 'L'
		default:
			if unicode.IsUpper(r) {
				return 'U'
			}
			return 'u'
		}
	default:
		return 'S'
	}
}

// ParseFloat attempts to interpret a cell as a number, tolerating
// surrounding whitespace, thousands separators, and a leading currency
// symbol. The second result reports success.
func ParseFloat(v string) (float64, bool) {
	s := strings.TrimSpace(v)
	s = strings.TrimPrefix(s, "$")
	s = strings.ReplaceAll(s, ",", "")
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// IsNumericColumn reports whether at least frac of the non-empty values
// parse as numbers. ZeroED's distribution analysis uses this to decide
// whether range criteria apply to an attribute.
func IsNumericColumn(values []string, frac float64) bool {
	parsed, nonEmpty := 0, 0
	for _, v := range values {
		if strings.TrimSpace(v) == "" {
			continue
		}
		nonEmpty++
		if _, ok := ParseFloat(v); ok {
			parsed++
		}
	}
	if nonEmpty == 0 {
		return false
	}
	return float64(parsed)/float64(nonEmpty) >= frac
}

// NullLikeValues are the explicit and implicit missing-value placeholders
// recognized by the missing-value criteria, mirroring the paper's "explicit
// and implicit placeholders" definition of MV errors.
var NullLikeValues = map[string]bool{
	"": true, "null": true, "nil": true, "none": true, "na": true,
	"n/a": true, "nan": true, "-": true, "?": true, "unknown": true,
	"missing": true, "empty": true,
}

// IsNullLike reports whether the value is an explicit or implicit
// missing-value placeholder.
func IsNullLike(v string) bool {
	return NullLikeValues[strings.ToLower(strings.TrimSpace(v))]
}
